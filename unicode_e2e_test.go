package nebula_test

import (
	"log"
	"testing"

	"nebula"
)

// unicodeEngine builds a Figure-1-style gene table whose names are
// multibyte (accented Latin and CJK), with the Name column matched through
// value samples — the path that runs Jaro–Winkler over UTF-8 text.
func unicodeEngine(t *testing.T) *nebula.Engine {
	t.Helper()
	db := nebula.NewDatabase()
	gt, err := db.CreateTable(&nebula.Schema{
		Name: "Gene",
		Columns: []nebula.Column{
			{Name: "GID", Type: nebula.TypeString, Indexed: true},
			{Name: "Name", Type: nebula.TypeString, Indexed: true},
			{Name: "Family", Type: nebula.TypeString},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"éclaA", "地図B", "yaaB"}
	for i, g := range [][]nebula.Value{
		{nebula.String("JW0013"), nebula.String(names[0]), nebula.String("F1")},
		{nebula.String("JW0014"), nebula.String(names[1]), nebula.String("F6")},
		{nebula.String("JW0019"), nebula.String(names[2]), nebula.String("F3")},
	} {
		if _, err := gt.Insert(g); err != nil {
			t.Fatal(err)
		}
		_ = i
	}
	repo := nebula.NewMetaRepository(db, nil)
	if err := repo.AddConcept(&nebula.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.SetPattern(nebula.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		t.Fatal(err)
	}
	// No pattern for Name: the mapper must fall back to sample similarity,
	// which runs the rune-based Jaro–Winkler over the multibyte names.
	repo.SetSample(nebula.ColumnRef{Table: "Gene", Column: "Name"}, names)
	e, err := nebula.New(db, repo, nebula.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	return e
}

// TestUnicodeDiscovery walks a multibyte annotation through the whole
// pipeline: CJK and accented tokens must map to value queries and recover
// the referenced tuples, exactly like their ASCII counterparts in the
// paper's running example.
func TestUnicodeDiscovery(t *testing.T) {
	e := unicodeEngine(t)
	gt := e.DB().MustTable("Gene")
	yaaB, _ := gt.GetByPK(nebula.String("JW0019"))

	// Like the paper's running example, a concept token ("gene") anchors
	// the value keywords around it; the values themselves are multibyte.
	err := e.AddAnnotation(&nebula.Annotation{
		ID:   "ユキ",
		Body: "実験の結果 この gene は éclaA と 地図B に相関あり",
	}, []nebula.TupleID{yaaB.ID})
	if err != nil {
		t.Fatal(err)
	}
	disc, err := e.Discover("ユキ")
	if err != nil {
		t.Fatal(err)
	}
	if len(disc.Queries) == 0 {
		t.Fatal("no keyword queries generated from the multibyte body")
	}
	found := map[string]bool{}
	for _, c := range disc.Candidates {
		found[c.Tuple.MustGet("GID").Str()] = true
	}
	for _, want := range []string{"JW0013", "JW0014"} {
		if !found[want] {
			t.Errorf("multibyte discovery missed %s (candidates %v)", want, found)
		}
	}
}

// TestUnicodeCacheKeying checks the discovery-cache key on multibyte
// bodies: whitespace normalization must be rune-correct (two bodies
// differing only in interior spacing share one cached answer) while an
// ASCII transliteration — a one-rune difference — must miss.
func TestUnicodeCacheKeying(t *testing.T) {
	e := unicodeEngine(t)
	gt := e.DB().MustTable("Gene")
	yaaB, _ := gt.GetByPK(nebula.String("JW0019"))

	add := func(id, body string) {
		t.Helper()
		if err := e.AddAnnotation(&nebula.Annotation{ID: nebula.AnnotationID(id), Body: body},
			[]nebula.TupleID{yaaB.ID}); err != nil {
			t.Fatal(err)
		}
	}
	discover := func(id string) *nebula.Discovery {
		t.Helper()
		d, err := e.Discover(nebula.AnnotationID(id))
		if err != nil {
			t.Fatal(err)
		}
		return d
	}

	add("u1", "éclaA  関連") // double interior space
	add("u2", "éclaA 関連")  // single space — same normalized key
	add("u3", "eclaA 関連")  // ASCII e — one rune differs, different key

	before := e.CacheStats().Discovery
	d1 := discover("u1")
	afterCold := e.CacheStats().Discovery
	if afterCold.Hits != before.Hits {
		t.Fatalf("cold discover hit the cache (hits %d -> %d)", before.Hits, afterCold.Hits)
	}

	d2 := discover("u2")
	afterWarm := e.CacheStats().Discovery
	if afterWarm.Hits != afterCold.Hits+1 {
		t.Errorf("whitespace-normalized multibyte body missed the cache (hits %d -> %d)",
			afterCold.Hits, afterWarm.Hits)
	}
	if len(d1.Candidates) != len(d2.Candidates) {
		t.Errorf("cached answer diverged: %d vs %d candidates", len(d1.Candidates), len(d2.Candidates))
	}

	discover("u3")
	afterMiss := e.CacheStats().Discovery
	if afterMiss.Hits != afterWarm.Hits {
		t.Errorf("transliterated body (cafe vs café class of bug) wrongly hit the cache (hits %d -> %d)",
			afterWarm.Hits, afterMiss.Hits)
	}
}
