package nebula

// ShardStat describes one shard of the engine's hash-partitioned
// synchronization domain: how much annotation-side state homes there and
// how many mutations it has absorbed. Shard assignment is pure FNV-1a over
// the annotation ID (internal/shard), so the same store reports the same
// partition on every process that uses the same shard count.
type ShardStat struct {
	// Shard is the shard index in [0, Shards).
	Shard int `json:"shard"`
	// Annotations counts the annotations homed on this shard.
	Annotations int `json:"annotations"`
	// Attachments counts the attachment edges of this shard's annotations.
	Attachments int `json:"attachments"`
	// Tuples counts the distinct database rows this shard's annotations
	// are attached to (rows themselves are not partitioned; a row attached
	// from two shards counts once in each).
	Tuples int `json:"tuples"`
	// Mutations is the shard's mutation epoch — how many annotation-side
	// mutations have been attributed to this shard since startup. It is
	// also the version stamp invalidating the shard's cached discoveries.
	Mutations uint64 `json:"mutations"`
}

// ShardStats is the whole-engine sharding snapshot behind the
// nebula_shard_* metrics and the status endpoint's "shards" block.
type ShardStats struct {
	// Shards is the configured shard count (>= 1).
	Shards int `json:"shards"`
	// PerShard has one entry per shard, in shard order.
	PerShard []ShardStat `json:"per_shard"`
}

// ShardStats returns a point-in-time snapshot of the engine's shard
// partition. Single-shard engines report one shard owning everything.
func (e *Engine) ShardStats() ShardStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := e.mu.Shards()
	out := ShardStats{Shards: n, PerShard: make([]ShardStat, n)}
	tuples := make([]map[TupleID]struct{}, n)
	for i := range out.PerShard {
		out.PerShard[i].Shard = i
		out.PerShard[i].Mutations = e.mu.Epoch(i)
		tuples[i] = make(map[TupleID]struct{})
	}
	for _, id := range e.store.IDs() {
		home := e.mu.Home(string(id))
		s := &out.PerShard[home]
		s.Annotations++
		for _, att := range e.store.Attachments(id, -1) {
			s.Attachments++
			tuples[home][att.Tuple] = struct{}{}
		}
	}
	for i := range out.PerShard {
		out.PerShard[i].Tuples = len(tuples[i])
	}
	return out
}
