package nebula

import (
	"context"
	"fmt"
	"log"

	"nebula/internal/keyword"
	"nebula/internal/segment"
	"nebula/internal/trace"
)

// This file wires the disk-backed inverted-index substrate
// (internal/segment + the tiered engine in internal/keyword) into the
// engine. With Options.Store.Dir set, the symbol-table search technique
// serves bulk postings from immutable mmap'd segment files while a small
// in-heap tail absorbs every change since the last flush; checkpoints
// flush the tail into a new segment generation instead of re-gobbing the
// whole index, and a restart maps the segments back in without a rebuild.
//
// Pairing discipline: every flush stamps a generation number (StoreSeq)
// into both the segment manifest and the snapshot written by the same
// checkpoint. On restore, a manifest carrying the snapshot's generation
// proves the segments cover the snapshot state (segments are strictly
// additive between resets, so later operator flushes only widen
// coverage); any other generation belongs to foreign history and the
// index is rebuilt into the tail instead. Correctness never rests on the
// segments being fresh — every posting is re-verified against the live
// row at lookup time — the pairing only decides whether a full re-index
// can be skipped.

// openStore opens (or creates) the segment directory and binds the tiered
// engine. expected is the manifest generation that pairs with the
// engine's initial state; see newWithState.
func (e *Engine) openStore(expected uint64) error {
	st, err := segment.Open(e.opts.Store.Dir, nil, e.opts.Store.maxSegments())
	if err != nil {
		return fmt.Errorf("nebula: open store: %w", err)
	}
	st.Logf = storeLogf
	fullPending := true
	switch {
	case expected > 0 && st.Seq() == expected:
		// The segments were flushed against exactly the state this engine
		// restores; the tail starts empty and WAL replay re-dirties
		// whatever changed past the boundary.
		fullPending = false
	case expected > 0:
		// Foreign or stale generation: discard the readers now (files are
		// garbage-collected after the next flush) and rebuild.
		st.Reset()
	default:
		// Fresh engine (no snapshot lineage): existing segments cannot be
		// trusted to cover the caller's database, so the whole database is
		// re-indexed into the tail. Leftover segment postings are harmless
		// — they either fail row verification or deduplicate against the
		// tail's own coverage.
	}
	e.segStore = st
	e.storeSeq.Store(st.Seq())
	e.tiered = keyword.NewTieredEngine(e.db, st, fullPending)
	e.refreshRowHook()
	return nil
}

// StoreEnabled reports whether the disk-backed index substrate is active.
func (e *Engine) StoreEnabled() bool { return e.segStore != nil }

// StoreStats describes the disk-backed index substrate: the segment
// store's counters plus the in-heap tail. Zero value (Enabled false) when
// disk mode is off.
type StoreStats struct {
	// Enabled reports whether Options.Store configured a directory.
	Enabled bool `json:"enabled"`
	// Store is the segment store's counter snapshot.
	Store segment.Stats `json:"store"`
	// TailTerms and TailPostings size the in-heap tail (unflushed index).
	TailTerms    int `json:"tail_terms"`
	TailPostings int `json:"tail_postings"`
	// DirtyRows counts rows mutated since their last re-indexing.
	DirtyRows int `json:"dirty_rows"`
	// FullPending reports a whole-database re-index is still outstanding.
	FullPending bool `json:"full_pending"`
}

// StoreStats returns a point-in-time view of the disk-backed index.
func (e *Engine) StoreStats() StoreStats {
	if e.segStore == nil {
		return StoreStats{}
	}
	st := StoreStats{Enabled: true, Store: e.segStore.Stats()}
	st.TailTerms, st.TailPostings, st.DirtyRows, st.FullPending = e.tiered.TailStats()
	return st
}

// prepareStoreFlush snapshots the tail for flushing. Caller holds e.mu in
// read mode alongside the snapshot capture, so the payload reflects
// exactly the captured state — a flush of it gives the paired snapshot
// full segment coverage. Returns the payload and the generation the flush
// (and the snapshot) must carry; (nil, 0) when disk mode is off.
func (e *Engine) prepareStoreFlush() (map[string][]segment.Posting, uint64) {
	if e.tiered == nil {
		return nil, 0
	}
	return e.tiered.PrepareFlush(), e.storeSeq.Load() + 1
}

// completeStoreFlush publishes the prepared payload as segment generation
// seq, after the paired snapshot is durable. A failed flush is surfaced in
// the log and otherwise ignored: the tail keeps every posting (CommitFlush
// never ran), so queries stay exact, and the generation mismatch the
// snapshot now carries simply means the next restore rebuilds the index.
func (e *Engine) completeStoreFlush(seq, walBoundary uint64, payload map[string][]segment.Posting) {
	if e.tiered == nil {
		return
	}
	e.storeFlushMu.Lock()
	defer e.storeFlushMu.Unlock()
	if err := e.segStore.Flush(seq, walBoundary, payload); err != nil {
		storeLogf("nebula: segment flush (generation %d): %v", seq, err)
		return
	}
	e.storeSeq.Store(seq)
	e.tiered.CommitFlush(payload)
}

// FlushStore flushes the in-heap index tail into a new segment file at the
// CURRENT generation — an operator lever to cap tail memory between
// checkpoints. Keeping the generation means the snapshot↔manifest pairing
// is untouched: the segments only widen their coverage, which row
// verification makes harmless. A no-op without disk mode.
func (e *Engine) FlushStore(ctx context.Context) error {
	if e.tiered == nil {
		return nil
	}
	span, _ := trace.StartSpan(ctx, "store_flush")
	defer span.End()
	// storeFlushMu is taken before reading the generation so a concurrent
	// checkpoint cannot advance it mid-flush and leave the manifest stamped
	// with a regressed number.
	e.storeFlushMu.Lock()
	defer e.storeFlushMu.Unlock()
	e.mu.RLock()
	payload := e.tiered.PrepareFlush()
	seq := e.storeSeq.Load()
	boundary := e.segStore.WALSegment()
	e.mu.RUnlock()
	if span.Enabled() {
		span.AddInt("terms", len(payload))
	}
	if len(payload) == 0 {
		return nil
	}
	if err := e.segStore.Flush(seq, boundary, payload); err != nil {
		return fmt.Errorf("nebula: segment flush: %w", err)
	}
	e.tiered.CommitFlush(payload)
	return nil
}

// CompactStore merges the oldest segments into one until the configured
// bound holds, waiting for the merge to finish (the background compaction
// a flush triggers is the same code, minus the waiting). A no-op without
// disk mode or with few segments.
func (e *Engine) CompactStore(ctx context.Context) error {
	if e.segStore == nil {
		return nil
	}
	span, _ := trace.StartSpan(ctx, "store_compact")
	defer span.End()
	before := e.segStore.Segments()
	if err := e.segStore.Compact(); err != nil {
		return fmt.Errorf("nebula: segment compaction: %w", err)
	}
	if span.Enabled() {
		span.AddInt("segments_before", before)
		span.AddInt("segments_after", e.segStore.Segments())
	}
	return nil
}

// CloseStore waits for background compaction and unmaps every segment.
// Part of graceful shutdown; the engine must not serve queries afterwards.
// A no-op without disk mode.
func (e *Engine) CloseStore() error {
	if e.segStore == nil {
		return nil
	}
	return e.segStore.Close()
}

// storeLogf routes segment-store diagnostics; swapped in tests.
var storeLogf = log.Printf
