package nebula

import (
	"fmt"
	"runtime"
	"strconv"
	"time"

	"nebula/internal/discovery"
	"nebula/internal/keyword"
	"nebula/internal/verification"
)

// Budget bounds one discovery run. The zero value imposes no bounds and
// selects the exact ungoverned pipeline — governance is free when off.
// When a bound bites, the run degrades instead of failing: it keeps the
// strongest work completed so far and records every shortcut in the
// GenerationStats/DiscoveryStats Degraded lists. Only the wall-clock
// Deadline produces an error (a typed ErrBudgetExceeded with partial
// candidates attached to the returned Discovery).
type Budget struct {
	// MaxQueries caps the keyword queries generated from one annotation
	// (Stage 1). The highest-weight queries are kept.
	MaxQueries int
	// MaxCandidates truncates the candidate list to the strongest N
	// predictions (Stage 2 output).
	MaxCandidates int
	// MaxSearchedRows stops keyword execution once this many tuples have
	// been scanned.
	MaxSearchedRows int
	// Deadline is the wall-clock budget for one discovery run; it is
	// combined (as context.WithTimeout) with whatever context the caller
	// passes to DiscoverContext/ProcessContext.
	Deadline time.Duration
}

// Enabled reports whether any bound is set.
func (b Budget) Enabled() bool {
	return b.MaxQueries > 0 || b.MaxCandidates > 0 || b.MaxSearchedRows > 0 || b.Deadline > 0
}

// Validate rejects negative bounds.
func (b Budget) Validate() error {
	if b.MaxQueries < 0 || b.MaxCandidates < 0 || b.MaxSearchedRows < 0 || b.Deadline < 0 {
		return fmt.Errorf("nebula: negative budget %+v", b)
	}
	return nil
}

// RequestOptions is the serializable per-request governance surface: the
// subset of Options a single caller — one HTTP request, one CLI invocation —
// may override without reconfiguring the engine. The zero value overrides
// nothing and selects the engine's configured behavior, so clients only
// name the knobs they care about. Field semantics match Budget and
// Options.Parallelism; DeadlineMS is a wall-clock budget in milliseconds
// (JSON has no duration type).
type RequestOptions struct {
	// MaxQueries caps Stage 1 at the N highest-weight keyword queries.
	MaxQueries int `json:"max_queries,omitempty"`
	// MaxCandidates truncates the candidate list to the strongest N.
	MaxCandidates int `json:"max_candidates,omitempty"`
	// MaxSearchedRows stops keyword execution after scanning N tuples.
	MaxSearchedRows int `json:"max_searched_rows,omitempty"`
	// DeadlineMS is the wall-clock budget in milliseconds; when it fires
	// the run returns its partial results with ErrBudgetExceeded.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Parallelism overrides the worker-pool size for this request only
	// (0 = keep the engine's configured value).
	Parallelism int `json:"parallelism,omitempty"`
	// Cache controls result caching for this request: "" keeps the
	// engine's configured behavior, "off" bypasses every cache layer
	// (the request neither consults nor populates them), "on" re-enables
	// caching for a request when the engine has caches built (it cannot
	// conjure caches on an engine configured with caching disabled).
	Cache string `json:"cache,omitempty"`
	// Trace attaches a request-scoped span tree to this run (see
	// Options.Trace). Observe-only: results are byte-identical either way.
	Trace bool `json:"trace,omitempty"`
	// Plan controls the cost-based planner for this request: "" keeps the
	// engine's configured behavior, "on" enables planning (requires a
	// top-k, from this request or the engine), "off" forces the exhaustive
	// legacy path.
	Plan string `json:"plan,omitempty"`
	// TopK, when positive, keeps only the strongest k attachments and is
	// the k the planner's early termination maintains.
	TopK int `json:"topk,omitempty"`
}

// Enabled reports whether the request overrides anything.
func (r RequestOptions) Enabled() bool {
	return r != RequestOptions{}
}

// Validate rejects negative overrides.
func (r RequestOptions) Validate() error {
	if r.MaxQueries < 0 || r.MaxCandidates < 0 || r.MaxSearchedRows < 0 || r.DeadlineMS < 0 {
		return fmt.Errorf("nebula: negative request budget %+v", r)
	}
	if r.Parallelism < 0 {
		return fmt.Errorf("nebula: negative request parallelism %d", r.Parallelism)
	}
	switch r.Cache {
	case "", "on", "off":
	default:
		return fmt.Errorf("nebula: request cache mode %q (want on or off)", r.Cache)
	}
	switch r.Plan {
	case "", "on", "off":
	default:
		return fmt.Errorf("nebula: request plan mode %q (want on or off)", r.Plan)
	}
	if r.TopK < 0 {
		return fmt.Errorf("nebula: negative request top-k %d", r.TopK)
	}
	return nil
}

// Deadline converts DeadlineMS to a duration.
func (r RequestOptions) Deadline() time.Duration {
	return time.Duration(r.DeadlineMS) * time.Millisecond
}

// apply overlays the request's non-zero overrides on a base configuration.
// Unset fields inherit the engine's values, so per-request governance can
// only be added to, never silently reset, by omitting a field.
func (r RequestOptions) apply(base Options) Options {
	if r.MaxQueries > 0 {
		base.Budget.MaxQueries = r.MaxQueries
	}
	if r.MaxCandidates > 0 {
		base.Budget.MaxCandidates = r.MaxCandidates
	}
	if r.MaxSearchedRows > 0 {
		base.Budget.MaxSearchedRows = r.MaxSearchedRows
	}
	if r.DeadlineMS > 0 {
		base.Budget.Deadline = r.Deadline()
	}
	if r.Parallelism > 0 {
		base.Parallelism = r.Parallelism
	}
	switch r.Cache {
	case "on":
		base.Cache.Disabled = false
	case "off":
		base.Cache.Disabled = true
	}
	if r.Trace {
		base.Trace = true
	}
	switch r.Plan {
	case "on":
		base.Plan = true
	case "off":
		base.Plan = false
	}
	if r.TopK > 0 {
		base.TopK = r.TopK
	}
	return base
}

// DefaultCacheBytes is the total cache budget (across the three layers)
// when caching is enabled without an explicit limit: 64 MiB.
const DefaultCacheBytes = 64 << 20

// CacheConfig governs the engine's epoch-versioned result caches: the
// relational scan cache, the keyword structured-query/mapper cache, and
// the whole-pipeline discovery cache. The zero value means *enabled*
// with the DefaultCacheBytes budget — caching is coherence-safe (every
// mutation advances an epoch the cache keys embed), so it defaults on.
type CacheConfig struct {
	// Disabled turns every cache layer off.
	Disabled bool
	// MaxBytes is the total (approximate) byte budget split across the
	// three layers; 0 selects DefaultCacheBytes.
	MaxBytes int64
}

// Validate rejects a negative budget.
func (c CacheConfig) Validate() error {
	if c.MaxBytes < 0 {
		return fmt.Errorf("nebula: negative cache budget %d", c.MaxBytes)
	}
	return nil
}

// bytes resolves the effective budget.
func (c CacheConfig) bytes() int64 {
	if c.MaxBytes > 0 {
		return c.MaxBytes
	}
	return DefaultCacheBytes
}

// ParseCacheConfig parses the operator-facing cache setting shared by
// the CLIs and the sqlish CACHE governor: "on" (enabled, default
// budget), "off" (disabled), or a positive byte count.
func ParseCacheConfig(s string) (CacheConfig, error) {
	switch s {
	case "", "on":
		return CacheConfig{}, nil
	case "off":
		return CacheConfig{Disabled: true}, nil
	}
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil || n <= 0 {
		return CacheConfig{}, fmt.Errorf("nebula: cache setting %q (want on, off, or a positive byte count)", s)
	}
	return CacheConfig{MaxBytes: n}, nil
}

// RetryPolicy re-exports the discoverer's transient-error retry policy.
type RetryPolicy = discovery.RetryPolicy

// KeywordSearcher re-exports the pluggable keyword-search technique
// interface, so deployments (and the fault-injection harness) can wrap the
// engine's searcher with middleware via Options.SearcherFactory.
type KeywordSearcher = keyword.Searcher

// Options configure an Engine.
type Options struct {
	// Epsilon is the signature-map cutoff threshold ε (§5.2.1). The paper
	// finds values between 0.5 and 0.8 work well; the default is 0.6.
	Epsilon float64
	// Alpha is the context influence range α in words (§5.2.2).
	Alpha int
	// SharedExecution enables the §6 multi-query shared executor.
	SharedExecution bool
	// FocalAdjustment enables the §6.2 ACG-based confidence adjustment.
	FocalAdjustment bool
	// AdjustmentHops extends the focal adjustment to shortest paths of up
	// to this many hops (the §6.2 extension, multiplying in-between edge
	// weights). 0 or 1 keeps the paper's default of direct edges only,
	// which it prefers as "semantically stronger" and less prone to
	// overfitting.
	AdjustmentHops int
	// Spreading enables the §6.3 approximate focal-based spreading search.
	Spreading bool
	// SpreadingK is the spreading radius; 0 selects it automatically from
	// the hop profile targeting SpreadingCoverage. Automatic selection is
	// only sound once the profile has been seeded by full-database
	// discoveries (the paper builds its Figure 7 profile from
	// entire-database searches): under spreading-only operation the profile
	// never observes candidates beyond the current radius and can only
	// shrink K.
	SpreadingK int
	// SpreadingCoverage is the desired candidate coverage when K is
	// selected automatically (Figure 7's guidance).
	SpreadingCoverage float64
	// RequireStableACG restricts spreading to a stable ACG (Def 6.1),
	// falling back to full search otherwise.
	RequireStableACG bool
	// Bounds are the initial verification thresholds β_lower/β_upper.
	Bounds Bounds
	// ACGBatchSize is the stability batch size B (Def 6.1).
	ACGBatchSize int
	// ACGMu is the stability threshold μ (Def 6.1).
	ACGMu float64
	// IncludeRelated expands keyword matches with FK–PK neighbors.
	IncludeRelated bool
	// SearchTechnique selects the underlying keyword-search technique:
	// "metadata" (default; the [7]-style approach driven by NebulaMeta) or
	// "symboltable" (a DBXplorer-style pre-built token index). The
	// technique is a black box to the rest of the pipeline, per §4.
	SearchTechnique string
	// SpamFraction, when positive, makes Discover/Process fail with a
	// spam-annotation error if an annotation's candidates exceed this
	// fraction of the database (see footnote 1 of the paper).
	SpamFraction float64
	// Budget bounds every discovery run (see Budget). Zero = unbounded,
	// the exact ungoverned pipeline.
	Budget Budget
	// Retry governs re-attempts of transient keyword-searcher errors with
	// capped exponential backoff. Zero = no retries.
	Retry RetryPolicy
	// SearcherFactory, when non-nil, overrides the keyword-search
	// technique: it receives the database to search (the full database,
	// or a spreading miniDB) and returns the technique to use. It takes
	// precedence over SearchTechnique. Deployments use it to wrap the
	// searcher with middleware — retry observers, fault injection,
	// instrumentation.
	SearcherFactory func(db *Database) KeywordSearcher
	// Parallelism sizes the worker pool used for keyword execution and for
	// the engine's batch APIs (DiscoverBatch/ProcessBatch). 0 selects
	// runtime.NumCPU(); 1 forces the exact sequential legacy path; n > 1
	// uses up to n workers. Whatever the value, results are byte-identical
	// to sequential execution — parallelism changes scheduling, never
	// output.
	Parallelism int
	// Cache governs the epoch-versioned result caches (see CacheConfig).
	// The zero value enables them with the default budget; caching never
	// changes results — only whether work is redone.
	Cache CacheConfig
	// Trace attaches a request-scoped span tree (internal/trace) to every
	// discovery/process run: per-stage monotonic timings and cost counters,
	// returned on Discovery.Trace. Observe-only — results are byte-identical
	// with tracing on or off, and when off the pipeline pays zero
	// allocations for the instrumentation points.
	Trace bool
	// Plan enables the cost-based query planner: keyword queries execute
	// in estimated confidence-per-cost order and stop early once the
	// pending queries cannot change the top TopK attachments. Requires
	// TopK > 0, shared execution, and the metadata technique; an
	// ineligible combination falls back to the exhaustive path and says
	// why in DiscoveryStats.Plan. The top-k output of a planned run is
	// byte-identical to the exhaustive run's.
	Plan bool
	// TopK, when positive, truncates every discovery's candidates to the
	// strongest k attachments (applied before Budget.MaxCandidates) and
	// is the k the planner maintains.
	TopK int
	// Ingest configures the streaming proactive pipeline: the bounded
	// discovery job queue behind async submissions and change-driven
	// re-discovery (see IngestConfig). Disabled by default.
	Ingest IngestConfig
	// Shards partitions the engine's annotation-side synchronization domain
	// (locks, mutation epochs, cache-invalidation scopes) into N hash
	// shards keyed by annotation ID: single-annotation mutations take only
	// their home shard's lock and move only its epoch, so independent
	// writers stop contending and stop invalidating each other's cached
	// discoveries. 0 or 1 selects the single-shard legacy behavior.
	// Whatever the value, results are byte-identical to the single-shard
	// engine — sharding changes contention and cache residency, never
	// output.
	Shards int
	// Store configures the disk-backed substrate for the inverted text
	// index: immutable mmap'd segment files plus a small in-heap tail,
	// flushed at checkpoints and compacted in the background (see
	// StoreConfig). Zero value = pure in-heap index, exactly as before.
	Store StoreConfig
}

// Default store parameters (see StoreConfig).
const (
	// DefaultStoreMaxSegments is the compaction trigger when no explicit
	// bound is configured: once more segments than this exist, the oldest
	// are merged.
	DefaultStoreMaxSegments = 8
)

// StoreConfig configures the disk-backed inverted-index substrate. With a
// directory set, the symbol-table search technique serves bulk postings
// from immutable checksummed segment files (mmap'd, binary-searchable
// without deserialization) while a small in-heap tail absorbs changes
// since the last flush; checkpoints flush the tail to a new segment
// instead of re-gobbing the whole index, and restart maps the segments
// back in without rebuilding. Discovery output is byte-identical to heap
// mode — the tiered index re-verifies every posting against the live row.
type StoreConfig struct {
	// Dir is the segment directory; empty disables disk mode. Created if
	// missing. Must not be shared between engines.
	Dir string
	// MaxSegments bounds the live segment count: a flush that pushes the
	// count past it triggers an oldest-first background merge. 0 selects
	// DefaultStoreMaxSegments; negative is invalid.
	MaxSegments int
}

// Enabled reports whether disk mode is configured.
func (c StoreConfig) Enabled() bool { return c.Dir != "" }

// Validate checks store configuration consistency.
func (c StoreConfig) Validate() error {
	if c.MaxSegments < 0 {
		return fmt.Errorf("nebula: negative store segment bound %d", c.MaxSegments)
	}
	return nil
}

// maxSegments returns the effective compaction trigger.
func (c StoreConfig) maxSegments() int {
	if c.MaxSegments == 0 {
		return DefaultStoreMaxSegments
	}
	return c.MaxSegments
}

// Default ingest parameters (see IngestConfig).
const (
	// DefaultIngestQueueCap bounds the ingest queue when no explicit
	// capacity is configured.
	DefaultIngestQueueCap = 1024
	// DefaultIngestCDCHops is the default change-data-capture radius.
	DefaultIngestCDCHops = 1
)

// IngestConfig configures the streaming ingest subsystem: a bounded,
// prioritized queue of asynchronous discovery jobs plus change-data-capture
// that re-queues the attachments a tuple mutation can affect. Draining the
// queue produces exactly what synchronous Process calls over the same final
// state would (see Engine.DrainIngest).
type IngestConfig struct {
	// Enabled turns the subsystem on. Off, the engine behaves exactly as
	// before: no queue, no CDC, and the async entry points return
	// ErrIngestDisabled.
	Enabled bool
	// QueueCap bounds the number of queued jobs; a live enqueue beyond it
	// fails with ErrIngestQueueFull (the serving layer's 429 +
	// Retry-After). 0 selects DefaultIngestQueueCap; negative is invalid.
	QueueCap int
	// CDCHops is the K of the change-data-capture query: a mutation
	// re-queues the annotations attached within K ACG hops of the changed
	// rows (plus, for inserts, the rows the new row references by FK). 0
	// selects DefaultIngestCDCHops; negative is invalid.
	CDCHops int
}

// Validate checks ingest configuration consistency.
func (c IngestConfig) Validate() error {
	if c.QueueCap < 0 {
		return fmt.Errorf("nebula: negative ingest queue capacity %d", c.QueueCap)
	}
	if c.CDCHops < 0 {
		return fmt.Errorf("nebula: negative ingest CDC radius %d", c.CDCHops)
	}
	return nil
}

// queueCap returns the effective queue capacity.
func (c IngestConfig) queueCap() int {
	if c.QueueCap == 0 {
		return DefaultIngestQueueCap
	}
	return c.QueueCap
}

// cdcHops returns the effective CDC radius.
func (c IngestConfig) cdcHops() int {
	if c.CDCHops == 0 {
		return DefaultIngestCDCHops
	}
	return c.CDCHops
}

// Search technique names for Options.SearchTechnique.
const (
	// TechniqueMetadata is the default metadata approach.
	TechniqueMetadata = "metadata"
	// TechniqueSymbolTable is the pre-built-index approach.
	TechniqueSymbolTable = "symboltable"
)

// DefaultOptions returns the configuration used throughout the paper's
// headline experiments: ε = 0.6, α = 3, sharing and focal adjustment on,
// spreading off (full-database search), and the β bounds the BoundsSetting
// run of §8.2 converged to (0.32, 0.86).
func DefaultOptions() Options {
	return Options{
		Epsilon:           0.6,
		Alpha:             3,
		SharedExecution:   true,
		FocalAdjustment:   true,
		Spreading:         false,
		SpreadingK:        3,
		SpreadingCoverage: 0.9,
		RequireStableACG:  false,
		Bounds:            Bounds{Lower: 0.32, Upper: 0.86},
		ACGBatchSize:      100,
		ACGMu:             0.2,
	}
}

// Validate checks option consistency.
func (o Options) Validate() error {
	if o.Epsilon < 0 || o.Epsilon > 1 {
		return fmt.Errorf("nebula: epsilon %f outside [0,1]", o.Epsilon)
	}
	if o.Alpha < 1 {
		return fmt.Errorf("nebula: alpha %d < 1", o.Alpha)
	}
	if err := verification.Bounds(o.Bounds).Validate(); err != nil {
		return fmt.Errorf("nebula: %w", err)
	}
	if o.Spreading && o.SpreadingK < 0 {
		return fmt.Errorf("nebula: negative spreading radius")
	}
	if o.SpreadingCoverage < 0 || o.SpreadingCoverage > 1 {
		return fmt.Errorf("nebula: spreading coverage %f outside [0,1]", o.SpreadingCoverage)
	}
	switch o.SearchTechnique {
	case "", TechniqueMetadata, TechniqueSymbolTable:
	default:
		return fmt.Errorf("nebula: unknown search technique %q", o.SearchTechnique)
	}
	if o.SpamFraction < 0 || o.SpamFraction > 1 {
		return fmt.Errorf("nebula: spam fraction %f outside [0,1]", o.SpamFraction)
	}
	if err := o.Budget.Validate(); err != nil {
		return err
	}
	if o.Retry.MaxRetries < 0 {
		return fmt.Errorf("nebula: negative retry count %d", o.Retry.MaxRetries)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("nebula: negative parallelism %d", o.Parallelism)
	}
	if err := o.Cache.Validate(); err != nil {
		return err
	}
	if o.TopK < 0 {
		return fmt.Errorf("nebula: negative top-k %d", o.TopK)
	}
	if err := o.Ingest.Validate(); err != nil {
		return err
	}
	if o.Shards < 0 {
		return fmt.Errorf("nebula: negative shard count %d", o.Shards)
	}
	if o.Shards > 1024 {
		return fmt.Errorf("nebula: shard count %d exceeds 1024", o.Shards)
	}
	if err := o.Store.Validate(); err != nil {
		return err
	}
	return nil
}

// resolveWorkers maps an Options.Parallelism value to a concrete worker
// count: 0 means "one worker per CPU", anything else is taken literally.
func resolveWorkers(parallelism int) int {
	if parallelism == 0 {
		return runtime.NumCPU()
	}
	return parallelism
}
