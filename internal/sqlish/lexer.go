// Package sqlish parses the small SQL-flavoured command language Nebula
// exposes on top of the engine. The paper introduces the extended command
// `[Verify | Reject] Attachement <vid>` (§7); this package generalizes that
// surface into the handful of statements a curator actually needs:
//
//	VERIFY ATTACHMENT <vid>
//	REJECT ATTACHMENT <vid>
//	LIST PENDING [LIMIT <n>]
//	ANNOTATE <table> '<pk>' AS '<annotation-id>' BODY '<text>'
//	DISCOVER '<annotation-id>'
//	PROCESS '<annotation-id>'
//	SELECT *|col[, col...] FROM <table> [WHERE col = <value> [AND ...]]
//	       [WITH ANNOTATIONS]
//
// The package only parses — execution lives in the root nebula package,
// which owns the engine.
package sqlish

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokWord
	tokString
	tokNumber
	tokSymbol
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lex splits the input into tokens. Strings use single quotes with ”
// escaping, as in SQL.
func lex(input string) ([]token, error) {
	var toks []token
	runes := []rune(input)
	i := 0
	for i < len(runes) {
		r := runes[i]
		switch {
		case unicode.IsSpace(r):
			i++
		case r == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < len(runes) {
				if runes[i] == '\'' {
					if i+1 < len(runes) && runes[i+1] == '\'' {
						sb.WriteRune('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteRune(runes[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sqlish: unterminated string at offset %d", start)
			}
			toks = append(toks, token{kind: tokString, text: sb.String(), pos: start})
		case unicode.IsDigit(r) || (r == '-' && i+1 < len(runes) && unicode.IsDigit(runes[i+1])):
			start := i
			i++
			for i < len(runes) && (unicode.IsDigit(runes[i]) || runes[i] == '.') {
				i++
			}
			toks = append(toks, token{kind: tokNumber, text: string(runes[start:i]), pos: start})
		case unicode.IsLetter(r) || r == '_':
			start := i
			for i < len(runes) && (unicode.IsLetter(runes[i]) || unicode.IsDigit(runes[i]) || runes[i] == '_') {
				i++
			}
			toks = append(toks, token{kind: tokWord, text: string(runes[start:i]), pos: start})
		case strings.ContainsRune("*,=;", r):
			toks = append(toks, token{kind: tokSymbol, text: string(r), pos: i})
			i++
		default:
			return nil, fmt.Errorf("sqlish: unexpected character %q at offset %d", r, i)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(runes)})
	return toks, nil
}
