package sqlish

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one statement. A trailing semicolon is allowed. The keyword
// ATTACHEMENT is accepted as an alias of ATTACHMENT — the paper spells the
// command that way.
func Parse(input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.acceptSymbol(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sqlish: trailing input at offset %d", p.peek().pos)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

// acceptWord consumes the next token if it is the given keyword
// (case-insensitive).
func (p *parser) acceptWord(word string) bool {
	if p.peek().kind == tokWord && strings.EqualFold(p.peek().text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectWord(word string) error {
	if !p.acceptWord(word) {
		return fmt.Errorf("sqlish: expected %s at offset %d", word, p.peek().pos)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectString() (string, error) {
	if p.peek().kind != tokString {
		return "", fmt.Errorf("sqlish: expected quoted string at offset %d", p.peek().pos)
	}
	return p.next().text, nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tokWord {
		return "", fmt.Errorf("sqlish: expected identifier at offset %d", p.peek().pos)
	}
	return p.next().text, nil
}

func (p *parser) expectInt() (int64, error) {
	if p.peek().kind != tokNumber {
		return 0, fmt.Errorf("sqlish: expected number at offset %d", p.peek().pos)
	}
	n, err := strconv.ParseInt(p.next().text, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sqlish: %w", err)
	}
	return n, nil
}

func (p *parser) statement() (Statement, error) {
	switch {
	case p.acceptWord("VERIFY"):
		vid, err := p.attachmentVID()
		if err != nil {
			return nil, err
		}
		return &VerifyStmt{VID: vid}, nil
	case p.acceptWord("REJECT"):
		vid, err := p.attachmentVID()
		if err != nil {
			return nil, err
		}
		return &RejectStmt{VID: vid}, nil
	case p.acceptWord("LIST"):
		if err := p.expectWord("PENDING"); err != nil {
			return nil, err
		}
		stmt := &ListPendingStmt{}
		if p.acceptWord("BY") {
			if err := p.expectWord("PRIORITY"); err != nil {
				return nil, err
			}
			stmt.ByPriority = true
		}
		if p.acceptWord("LIMIT") {
			n, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			if n < 0 {
				return nil, fmt.Errorf("sqlish: negative limit")
			}
			stmt.Limit = int(n)
		}
		return stmt, nil
	case p.acceptWord("ANNOTATE"):
		return p.annotate()
	case p.acceptWord("DISCOVER"):
		id, err := p.expectString()
		if err != nil {
			return nil, err
		}
		stmt := &DiscoverStmt{ID: id}
		if err := p.governors(&stmt.TimeoutMillis, &stmt.MaxCandidates, &stmt.Parallel, &stmt.Cache, &stmt.CacheBytes, &stmt.Trace, &stmt.Plan, &stmt.TopK); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.acceptWord("PROCESS"):
		id, err := p.expectString()
		if err != nil {
			return nil, err
		}
		stmt := &ProcessStmt{ID: id}
		if err := p.governors(&stmt.TimeoutMillis, &stmt.MaxCandidates, &stmt.Parallel, &stmt.Cache, &stmt.CacheBytes, &stmt.Trace, &stmt.Plan, &stmt.TopK); err != nil {
			return nil, err
		}
		return stmt, nil
	case p.acceptWord("SELECT"):
		return p.selectStmt()
	default:
		return nil, fmt.Errorf("sqlish: unknown statement at offset %d", p.peek().pos)
	}
}

// governors parses the optional `TIMEOUT <ms>`, `MAX <n>`,
// `PARALLEL <workers>`, `CACHE ON|OFF|<bytes>`, `TRACE ON|OFF`,
// `PLAN ON|OFF`, and `TOPK <k>` clauses of DISCOVER/PROCESS, in any order.
func (p *parser) governors(timeoutMillis *int64, maxCandidates *int, parallel *int, cacheMode *string, cacheBytes *int64, traced *bool, planMode *string, topK *int) error {
	for {
		switch {
		case p.acceptWord("TIMEOUT"):
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			if n <= 0 {
				return fmt.Errorf("sqlish: TIMEOUT must be positive")
			}
			*timeoutMillis = n
		case p.acceptWord("MAX"):
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			if n <= 0 {
				return fmt.Errorf("sqlish: MAX must be positive")
			}
			*maxCandidates = int(n)
		case p.acceptWord("PARALLEL"):
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			if n <= 0 {
				return fmt.Errorf("sqlish: PARALLEL must be positive")
			}
			*parallel = int(n)
		case p.acceptWord("CACHE"):
			switch {
			case p.acceptWord("ON"):
				*cacheMode = "on"
			case p.acceptWord("OFF"):
				*cacheMode = "off"
			case p.peek().kind == tokNumber:
				n, err := p.expectInt()
				if err != nil {
					return err
				}
				if n <= 0 {
					return fmt.Errorf("sqlish: CACHE byte budget must be positive")
				}
				*cacheBytes = n
			default:
				return fmt.Errorf("sqlish: expected ON, OFF, or a byte count after CACHE at offset %d", p.peek().pos)
			}
		case p.acceptWord("TRACE"):
			switch {
			case p.acceptWord("ON"):
				*traced = true
			case p.acceptWord("OFF"):
				*traced = false
			default:
				return fmt.Errorf("sqlish: expected ON or OFF after TRACE at offset %d", p.peek().pos)
			}
		case p.acceptWord("PLAN"):
			switch {
			case p.acceptWord("ON"):
				*planMode = "on"
			case p.acceptWord("OFF"):
				*planMode = "off"
			default:
				return fmt.Errorf("sqlish: expected ON or OFF after PLAN at offset %d", p.peek().pos)
			}
		case p.acceptWord("TOPK"):
			n, err := p.expectInt()
			if err != nil {
				return err
			}
			if n <= 0 {
				return fmt.Errorf("sqlish: TOPK must be positive")
			}
			*topK = int(n)
		default:
			return nil
		}
	}
}

// attachmentVID parses `ATTACHMENT <vid>` (or the paper's ATTACHEMENT).
func (p *parser) attachmentVID() (int64, error) {
	if !p.acceptWord("ATTACHMENT") && !p.acceptWord("ATTACHEMENT") {
		return 0, fmt.Errorf("sqlish: expected ATTACHMENT at offset %d", p.peek().pos)
	}
	return p.expectInt()
}

func (p *parser) annotate() (Statement, error) {
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	pk, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("AS"); err != nil {
		return nil, err
	}
	id, err := p.expectString()
	if err != nil {
		return nil, err
	}
	if err := p.expectWord("BODY"); err != nil {
		return nil, err
	}
	body, err := p.expectString()
	if err != nil {
		return nil, err
	}
	return &AnnotateStmt{Table: table, PK: pk, ID: id, Body: body}, nil
}

func (p *parser) selectStmt() (Statement, error) {
	stmt := &SelectStmt{}
	if !p.acceptSymbol("*") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			stmt.Columns = append(stmt.Columns, col)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	if err := p.expectWord("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	stmt.Table = table
	if p.acceptWord("WHERE") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if !p.acceptSymbol("=") {
				return nil, fmt.Errorf("sqlish: expected = at offset %d", p.peek().pos)
			}
			cond := Condition{Column: col}
			switch p.peek().kind {
			case tokString:
				cond.Value = p.next().text
			case tokNumber:
				cond.Value = p.next().text
				cond.IsNumber = true
			default:
				return nil, fmt.Errorf("sqlish: expected literal at offset %d", p.peek().pos)
			}
			stmt.Where = append(stmt.Where, cond)
			if !p.acceptWord("AND") {
				break
			}
		}
	}
	if p.acceptWord("WITH") {
		if err := p.expectWord("ANNOTATIONS"); err != nil {
			return nil, err
		}
		stmt.WithAnnotations = true
	}
	return stmt, nil
}
