package sqlish

import "testing"

// FuzzParse asserts the parser never panics and that accepted statements
// are non-nil. Run the seeds with `go test`; extend the corpus with
// `go test -fuzz=FuzzParse ./internal/sqlish`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"VERIFY ATTACHMENT 42",
		"REJECT ATTACHEMENT 7;",
		"LIST PENDING BY PRIORITY LIMIT 3",
		"ANNOTATE Gene 'JW0013' AS 'a' BODY 'it''s related'",
		"DISCOVER 'alice'",
		"PROCESS 'x'",
		"SELECT GID, Name FROM Gene WHERE Family = 'F1' AND Length = 1130 WITH ANNOTATIONS",
		"SELECT * FROM t",
		"select",
		"'", "''", ";", "= = =", "VERIFY ATTACHMENT 99999999999999999999",
		"LIST PENDING LIMIT -1",
		"SELECT * FROM Gene WHERE a = -3.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err == nil && stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement without error", input)
		}
	})
}
