package sqlish

import "testing"

// FuzzParseCommand asserts the parser never panics and that accepted
// statements are non-nil and re-parseable invariants hold. Run the seeds
// with `go test`; extend the corpus with
// `go test -fuzz=FuzzParseCommand ./internal/sqlish`. The checked-in corpus
// lives under testdata/fuzz/FuzzParseCommand/.
func FuzzParseCommand(f *testing.F) {
	for _, seed := range []string{
		"VERIFY ATTACHMENT 42",
		"REJECT ATTACHEMENT 7;",
		"LIST PENDING BY PRIORITY LIMIT 3",
		"ANNOTATE Gene 'JW0013' AS 'a' BODY 'it''s related'",
		"DISCOVER 'alice'",
		"DISCOVER 'alice' TIMEOUT 50 MAX 10",
		"DISCOVER 'alice' PARALLEL 4",
		"DISCOVER 'alice' MAX 5 PARALLEL 8 TIMEOUT 100",
		"PROCESS 'x'",
		"PROCESS 'x' PARALLEL 1",
		"PROCESS 'x' PARALLEL 0",
		"PROCESS 'x' PARALLEL -2",
		"PROCESS 'x' PARALLEL",
		"DISCOVER 'a' PLAN ON TOPK 10",
		"DISCOVER 'a' TOPK 5 PLAN OFF CACHE OFF",
		"PROCESS 'x' PLAN ON TOPK 3 PARALLEL 2",
		"DISCOVER 'a' PLAN",
		"DISCOVER 'a' PLAN MAYBE",
		"DISCOVER 'a' TOPK 0",
		"DISCOVER 'a' TOPK -1",
		"DISCOVER 'a' TOPK",
		"DISCOVER 'a' TOPK 99999999999999999999",
		"DISCOVER 'a' PARALLEL 99999999999999999999",
		"SELECT GID, Name FROM Gene WHERE Family = 'F1' AND Length = 1130 WITH ANNOTATIONS",
		"SELECT * FROM t",
		"select",
		"'", "''", ";", "= = =", "VERIFY ATTACHMENT 99999999999999999999",
		"LIST PENDING LIMIT -1",
		"SELECT * FROM Gene WHERE a = -3.5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		stmt, err := Parse(input)
		if err != nil {
			return
		}
		if stmt == nil {
			t.Fatalf("Parse(%q) returned nil statement without error", input)
		}
		// Accepted governors must satisfy the parser's own validation:
		// positive or absent, never negative.
		switch s := stmt.(type) {
		case *DiscoverStmt:
			if s.TimeoutMillis < 0 || s.MaxCandidates < 0 || s.Parallel < 0 {
				t.Fatalf("Parse(%q) accepted negative governor: %+v", input, s)
			}
		case *ProcessStmt:
			if s.TimeoutMillis < 0 || s.MaxCandidates < 0 || s.Parallel < 0 {
				t.Fatalf("Parse(%q) accepted negative governor: %+v", input, s)
			}
		}
	})
}
