package sqlish

import "testing"

func TestParseTraceGovernor(t *testing.T) {
	d := parseOK(t, "DISCOVER 'alice' TRACE ON").(*DiscoverStmt)
	if !d.Trace {
		t.Fatalf("got %#v", d)
	}
	d = parseOK(t, "DISCOVER 'alice' TRACE OFF;").(*DiscoverStmt)
	if d.Trace {
		t.Fatalf("got %#v", d)
	}
	// TRACE composes with the other governors in any order.
	d = parseOK(t, "DISCOVER 'alice' TRACE ON CACHE OFF TIMEOUT 250 MAX 10").(*DiscoverStmt)
	if !d.Trace || d.Cache != "off" || d.TimeoutMillis != 250 || d.MaxCandidates != 10 {
		t.Fatalf("got %#v", d)
	}
	d = parseOK(t, "DISCOVER 'alice' MAX 10 TRACE ON").(*DiscoverStmt)
	if !d.Trace || d.MaxCandidates != 10 {
		t.Fatalf("got %#v", d)
	}
	p := parseOK(t, "PROCESS 'alice' TRACE ON MAX 5").(*ProcessStmt)
	if !p.Trace || p.MaxCandidates != 5 {
		t.Fatalf("got %#v", p)
	}

	for _, bad := range []string{
		"DISCOVER 'alice' TRACE",
		"DISCOVER 'alice' TRACE MAYBE",
		"DISCOVER 'alice' TRACE 1",
		"PROCESS 'alice' TRACE",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
