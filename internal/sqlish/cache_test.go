package sqlish

import "testing"

func TestParseCacheGovernor(t *testing.T) {
	d := parseOK(t, "DISCOVER 'alice' CACHE OFF").(*DiscoverStmt)
	if d.Cache != "off" || d.CacheBytes != 0 {
		t.Fatalf("got %#v", d)
	}
	d = parseOK(t, "DISCOVER 'alice' CACHE ON;").(*DiscoverStmt)
	if d.Cache != "on" {
		t.Fatalf("got %#v", d)
	}
	d = parseOK(t, "DISCOVER 'alice' CACHE 1048576").(*DiscoverStmt)
	if d.Cache != "" || d.CacheBytes != 1048576 {
		t.Fatalf("got %#v", d)
	}
	// CACHE composes with the other governors in any order.
	d = parseOK(t, "DISCOVER 'alice' CACHE OFF TIMEOUT 250 MAX 10").(*DiscoverStmt)
	if d.Cache != "off" || d.TimeoutMillis != 250 || d.MaxCandidates != 10 {
		t.Fatalf("got %#v", d)
	}
	d = parseOK(t, "DISCOVER 'alice' MAX 10 CACHE 4096").(*DiscoverStmt)
	if d.CacheBytes != 4096 || d.MaxCandidates != 10 {
		t.Fatalf("got %#v", d)
	}
	p := parseOK(t, "PROCESS 'alice' CACHE ON MAX 5").(*ProcessStmt)
	if p.Cache != "on" || p.MaxCandidates != 5 {
		t.Fatalf("got %#v", p)
	}

	for _, bad := range []string{
		"DISCOVER 'alice' CACHE",
		"DISCOVER 'alice' CACHE MAYBE",
		"DISCOVER 'alice' CACHE 'on'",
		"DISCOVER 'alice' CACHE 0",
		"DISCOVER 'alice' CACHE -1",
		"PROCESS 'alice' CACHE",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}
