package sqlish

import (
	"reflect"
	"testing"
)

func parseOK(t *testing.T, in string) Statement {
	t.Helper()
	s, err := Parse(in)
	if err != nil {
		t.Fatalf("Parse(%q): %v", in, err)
	}
	return s
}

func TestParseVerifyReject(t *testing.T) {
	s := parseOK(t, "VERIFY ATTACHMENT 42")
	if v, ok := s.(*VerifyStmt); !ok || v.VID != 42 {
		t.Fatalf("got %#v", s)
	}
	// Case-insensitive keywords, paper's spelling, trailing semicolon.
	s = parseOK(t, "reject Attachement 7;")
	if r, ok := s.(*RejectStmt); !ok || r.VID != 7 {
		t.Fatalf("got %#v", s)
	}
	for _, bad := range []string{
		"VERIFY 42", "VERIFY ATTACHMENT", "VERIFY ATTACHMENT 'x'",
		"VERIFY ATTACHMENT 1 2",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseListPending(t *testing.T) {
	s := parseOK(t, "LIST PENDING")
	if l, ok := s.(*ListPendingStmt); !ok || l.Limit != 0 {
		t.Fatalf("got %#v", s)
	}
	s = parseOK(t, "list pending limit 10")
	if l, ok := s.(*ListPendingStmt); !ok || l.Limit != 10 {
		t.Fatalf("got %#v", s)
	}
	if _, err := Parse("LIST PENDING LIMIT -3"); err == nil {
		t.Error("negative limit should fail")
	}
	if _, err := Parse("LIST"); err == nil {
		t.Error("bare LIST should fail")
	}
}

func TestParseAnnotate(t *testing.T) {
	s := parseOK(t, "ANNOTATE Gene 'JW0013' AS 'alice' BODY 'related to JW0014'")
	a, ok := s.(*AnnotateStmt)
	if !ok {
		t.Fatalf("got %#v", s)
	}
	want := &AnnotateStmt{Table: "Gene", PK: "JW0013", ID: "alice", Body: "related to JW0014"}
	if !reflect.DeepEqual(a, want) {
		t.Fatalf("got %#v, want %#v", a, want)
	}
	// Quote escaping.
	s = parseOK(t, "ANNOTATE Gene 'JW0013' AS 'a' BODY 'it''s related'")
	if s.(*AnnotateStmt).Body != "it's related" {
		t.Errorf("escaped body = %q", s.(*AnnotateStmt).Body)
	}
	for _, bad := range []string{
		"ANNOTATE 'Gene' 'x' AS 'a' BODY 'b'",
		"ANNOTATE Gene JW0013 AS 'a' BODY 'b'",
		"ANNOTATE Gene 'x' BODY 'b'",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseDiscoverProcess(t *testing.T) {
	if d := parseOK(t, "DISCOVER 'alice'"); d.(*DiscoverStmt).ID != "alice" {
		t.Fatal("discover id")
	}
	if p := parseOK(t, "PROCESS 'alice';"); p.(*ProcessStmt).ID != "alice" {
		t.Fatal("process id")
	}
	if _, err := Parse("DISCOVER alice"); err == nil {
		t.Error("unquoted id should fail")
	}
}

func TestParseDiscoverGovernors(t *testing.T) {
	d := parseOK(t, "DISCOVER 'alice' TIMEOUT 250 MAX 10").(*DiscoverStmt)
	if d.ID != "alice" || d.TimeoutMillis != 250 || d.MaxCandidates != 10 {
		t.Fatalf("got %#v", d)
	}
	// Clauses compose in either order, and each is optional.
	p := parseOK(t, "PROCESS 'alice' MAX 5 TIMEOUT 100;").(*ProcessStmt)
	if p.TimeoutMillis != 100 || p.MaxCandidates != 5 {
		t.Fatalf("got %#v", p)
	}
	only := parseOK(t, "DISCOVER 'alice' MAX 2").(*DiscoverStmt)
	if only.TimeoutMillis != 0 || only.MaxCandidates != 2 {
		t.Fatalf("got %#v", only)
	}
	for _, bad := range []string{
		"DISCOVER 'alice' TIMEOUT",
		"DISCOVER 'alice' TIMEOUT 'soon'",
		"DISCOVER 'alice' TIMEOUT 0",
		"DISCOVER 'alice' MAX -3",
		"PROCESS 'alice' MAX 0",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseSelect(t *testing.T) {
	s := parseOK(t, "SELECT * FROM Gene")
	sel := s.(*SelectStmt)
	if sel.Table != "Gene" || len(sel.Columns) != 0 || sel.WithAnnotations {
		t.Fatalf("got %#v", sel)
	}
	s = parseOK(t, "SELECT GID, Name FROM Gene WHERE Family = 'F1' AND Length = 1130 WITH ANNOTATIONS")
	sel = s.(*SelectStmt)
	if !reflect.DeepEqual(sel.Columns, []string{"GID", "Name"}) {
		t.Errorf("columns = %v", sel.Columns)
	}
	if len(sel.Where) != 2 || sel.Where[0].Column != "Family" || sel.Where[0].Value != "F1" || sel.Where[0].IsNumber {
		t.Errorf("where = %#v", sel.Where)
	}
	if !sel.Where[1].IsNumber || sel.Where[1].Value != "1130" {
		t.Errorf("numeric literal = %#v", sel.Where[1])
	}
	if !sel.WithAnnotations {
		t.Error("WITH ANNOTATIONS not parsed")
	}
	for _, bad := range []string{
		"SELECT FROM Gene",
		"SELECT * Gene",
		"SELECT * FROM Gene WHERE Family",
		"SELECT * FROM Gene WHERE Family = ",
		"SELECT * FROM Gene WITH",
		"SELECT * FROM Gene nonsense",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseLexErrors(t *testing.T) {
	for _, bad := range []string{
		"VERIFY ATTACHMENT 'unterminated",
		"SELECT * FROM Gene WHERE a = 'x' ??",
		"",
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestLexDetails(t *testing.T) {
	toks, err := lex("a1 'it''s' -3 *,=;")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []tokenKind{tokWord, tokString, tokNumber, tokSymbol, tokSymbol, tokSymbol, tokSymbol, tokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].kind, k)
		}
	}
	if toks[1].text != "it's" {
		t.Errorf("string = %q", toks[1].text)
	}
	if toks[2].text != "-3" {
		t.Errorf("number = %q", toks[2].text)
	}
}

func TestParseListPendingByPriority(t *testing.T) {
	s := parseOK(t, "LIST PENDING BY PRIORITY LIMIT 5")
	l, ok := s.(*ListPendingStmt)
	if !ok || !l.ByPriority || l.Limit != 5 {
		t.Fatalf("got %#v", s)
	}
	if _, err := Parse("LIST PENDING BY"); err == nil {
		t.Error("bare BY should fail")
	}
}
