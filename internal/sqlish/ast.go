package sqlish

// Statement is the interface implemented by all parsed commands.
type Statement interface{ stmt() }

// VerifyStmt is `VERIFY ATTACHMENT <vid>` — accept a pending task.
type VerifyStmt struct {
	VID int64
}

// RejectStmt is `REJECT ATTACHMENT <vid>` — reject a pending task.
type RejectStmt struct {
	VID int64
}

// ListPendingStmt is `LIST PENDING [BY PRIORITY] [LIMIT n]`.
type ListPendingStmt struct {
	// Limit caps the listing; 0 means no limit.
	Limit int
	// ByPriority orders by descending confidence instead of VID.
	ByPriority bool
}

// AnnotateStmt is `ANNOTATE <table> '<pk>' AS '<id>' BODY '<text>'`: insert
// a new annotation attached to one tuple.
type AnnotateStmt struct {
	Table string
	PK    string
	ID    string
	Body  string
}

// DiscoverStmt is `DISCOVER '<annotation-id>' [TIMEOUT <ms>] [MAX <n>]
// [PARALLEL <workers>] [CACHE ON|OFF|<bytes>]`: run Stages 1–2 and report
// the candidates without routing them. TIMEOUT bounds the run's wall clock
// in milliseconds; MAX keeps only the n strongest candidates; PARALLEL
// sizes the worker pool for this statement (1 = sequential). Zero means no
// bound / the engine's configured parallelism. CACHE ON/OFF overrides the
// engine's result caching for this one run; CACHE <bytes> resizes the
// engine's overall cache budget before the run. TRACE ON records a
// request-scoped span tree and appends it to the result (observe-only —
// candidates are identical either way). PLAN ON|OFF overrides the
// cost-based planner for this one run, and TOPK <k> keeps only the
// strongest k attachments (the k the planner's early termination
// maintains).
type DiscoverStmt struct {
	ID            string
	TimeoutMillis int64
	MaxCandidates int
	Parallel      int
	// Cache is "", "on", or "off" — the per-request cache override.
	Cache string
	// CacheBytes, when positive, resizes the engine's cache budget.
	CacheBytes int64
	// Trace records a span tree for this one run (`TRACE ON`).
	Trace bool
	// Plan is "", "on", or "off" — the per-request planner override.
	Plan string
	// TopK, when positive, keeps the strongest k attachments (`TOPK <k>`).
	TopK int
}

// ProcessStmt is `PROCESS '<annotation-id>' [TIMEOUT <ms>] [MAX <n>]
// [PARALLEL <workers>] [CACHE ON|OFF|<bytes>]`: run the full pipeline
// including verification routing, under the same optional governors as
// DiscoverStmt.
type ProcessStmt struct {
	ID            string
	TimeoutMillis int64
	MaxCandidates int
	Parallel      int
	Cache         string
	CacheBytes    int64
	Trace         bool
	Plan          string
	TopK          int
}

// Condition is one `col = value` conjunct of a WHERE clause.
type Condition struct {
	Column string
	// Value holds the literal text; IsNumber tells whether it was a
	// numeric literal (the executor coerces it to the column type).
	Value    string
	IsNumber bool
}

// SelectStmt is the propagation-aware query:
// `SELECT cols FROM table [WHERE ...] [WITH ANNOTATIONS]`.
type SelectStmt struct {
	// Columns projected; empty means `*`.
	Columns []string
	Table   string
	Where   []Condition
	// WithAnnotations requests annotation propagation over the results.
	WithAnnotations bool
}

func (*VerifyStmt) stmt()      {}
func (*RejectStmt) stmt()      {}
func (*ListPendingStmt) stmt() {}
func (*AnnotateStmt) stmt()    {}
func (*DiscoverStmt) stmt()    {}
func (*ProcessStmt) stmt()     {}
func (*SelectStmt) stmt()      {}
