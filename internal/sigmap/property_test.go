package sigmap

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nebula/internal/keyword"
)

// randomBody assembles a pseudo-annotation from the fixture's vocabulary:
// concept words, identifiers, names, filler, and junk.
func randomBody(rng *rand.Rand) string {
	vocab := []string{
		"gene", "protein", "id", "name", "locus",
		"JW0013", "JW0014", "JW0019", "grpC", "yaaB", "G-Actin", "P00001",
		"observed", "expression", "under", "culture", "K12", "x99",
	}
	n := 1 + rng.Intn(20)
	words := make([]string, n)
	for i := range words {
		words[i] = vocab[rng.Intn(len(vocab))]
	}
	return strings.Join(words, " ")
}

// TestGenerateProperties fuzzes the generator over random bodies and checks
// the structural invariants of its output:
//
//  1. Determinism: the same body yields identical queries.
//  2. Query weights lie in (0, 1] and some query has weight 1 (normalized
//     relative to the maximum).
//  3. Every query has at least one value keyword and one concept keyword,
//     all table-consistent.
//  4. Every keyword text appears in the body.
func TestGenerateProperties(t *testing.T) {
	repo := fixture(t)
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 300; trial++ {
		body := randomBody(rng)
		g := NewGenerator(repo, 0.6)
		q1, _ := g.Generate(body)
		q2, _ := g.Generate(body)
		if fmt.Sprint(q1) != fmt.Sprint(q2) {
			t.Fatalf("non-deterministic output for %q", body)
		}
		maxW := 0.0
		for _, q := range q1 {
			if q.Weight <= 0 || q.Weight > 1 {
				t.Fatalf("weight %f outside (0,1] for %q", q.Weight, body)
			}
			if q.Weight > maxW {
				maxW = q.Weight
			}
			hasValue, hasConcept := false, false
			table := ""
			for _, k := range q.Keywords {
				if !strings.Contains(strings.ToLower(body), strings.ToLower(k.Text)) {
					t.Fatalf("keyword %q not in body %q", k.Text, body)
				}
				switch k.Role {
				case keyword.RoleValue:
					hasValue = true
				default:
					hasConcept = true
				}
				if table == "" {
					table = k.TargetTable
				} else if !strings.EqualFold(table, k.TargetTable) {
					t.Fatalf("table-inconsistent query %v for %q", q, body)
				}
			}
			if !hasValue || !hasConcept {
				t.Fatalf("query missing roles: %v for %q", q, body)
			}
		}
		if len(q1) > 0 && maxW != 1 {
			t.Fatalf("weights not normalized (max %f) for %q", maxW, body)
		}
	}
}
