// Package sigmap implements Stage 1 of Nebula (§5 of the paper): analyzing
// an annotation's text against the NebulaMeta repository, building the
// Concept-Map and Value-Map signature maps, overlaying them into the
// Context-Map, adjusting mapping weights by surrounding context
// (ContextBasedAdjustment, Figure 17), and generating weighted keyword
// search queries from the adjusted map (ConceptMap-To-Queries, Figure 4d).
package sigmap

import (
	"fmt"

	"nebula/internal/textutil"
)

// MappingKind mirrors the paper's shape notation for Context-Map entries.
type MappingKind int

const (
	// KindTable is a potential mapping to a table name (rectangle).
	KindTable MappingKind = iota
	// KindColumn is a potential mapping to a column name (triangle).
	KindColumn
	// KindValue is a potential mapping to a column's value domain (hexagon).
	KindValue
)

func (k MappingKind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindColumn:
		return "column"
	case KindValue:
		return "value"
	default:
		return fmt.Sprintf("MappingKind(%d)", int(k))
	}
}

// Mapping is one potential interpretation of an emphasized word: p(w,c) for
// concept mappings, d(w,c) for value mappings.
type Mapping struct {
	Kind   MappingKind
	Table  string
	Column string // empty for KindTable
	// Weight is the mapping's current weight; context adjustment mutates
	// it upward from the initial p/d estimate.
	Weight float64
}

func (m Mapping) String() string {
	switch m.Kind {
	case KindTable:
		return fmt.Sprintf("[%s %.2f]", m.Table, m.Weight)
	case KindColumn:
		return fmt.Sprintf("<%s.%s %.2f>", m.Table, m.Column, m.Weight)
	default:
		return fmt.Sprintf("{%s.%s %.2f}", m.Table, m.Column, m.Weight)
	}
}

// Entry is an emphasized word of a signature map: a token that survived the
// ε cutoff together with its candidate mappings (strongest first).
type Entry struct {
	// Token is the underlying annotation token (position included).
	Token textutil.Token
	// Mappings are the candidate interpretations, sorted by descending
	// weight; re-sorted after context adjustment.
	Mappings []Mapping
}

// Best returns the entry's highest-weight mapping.
func (e *Entry) Best() *Mapping {
	if len(e.Mappings) == 0 {
		return nil
	}
	best := &e.Mappings[0]
	for i := 1; i < len(e.Mappings); i++ {
		if e.Mappings[i].Weight > best.Weight {
			best = &e.Mappings[i]
		}
	}
	return best
}

// hasKind reports whether the entry has any mapping of the given kind.
func (e *Entry) hasKind(k MappingKind) bool {
	for _, m := range e.Mappings {
		if m.Kind == k {
			return true
		}
	}
	return false
}

// ContextMap is the overlay of the Concept-Map and Value-Map (§5.2.1 step
// 3): the token stream of the annotation with the emphasized words and
// their mappings. Non-emphasized words appear only through Tokens — they
// are the '—' positions of Figure 4(b), needed to measure word distances.
type ContextMap struct {
	// Tokens is the full token stream of the annotation.
	Tokens []textutil.Token
	// Entries maps token index -> emphasized entry.
	Entries map[int]*Entry
}

// EntriesInRange returns the emphasized entries other than center whose
// token index lies within alpha words of center, in increasing index order.
func (cm *ContextMap) EntriesInRange(center, alpha int) []*Entry {
	var out []*Entry
	for i := center - alpha; i <= center+alpha; i++ {
		if i == center {
			continue
		}
		if e, ok := cm.Entries[i]; ok {
			out = append(out, e)
		}
	}
	return out
}

// entryIndexes returns the sorted token indexes of emphasized words.
func (cm *ContextMap) entryIndexes() []int {
	out := make([]int, 0, len(cm.Entries))
	for i := range cm.Entries {
		out = append(out, i)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
