package sigmap

import (
	"fmt"
	"sort"
	"strings"

	"nebula/internal/keyword"
	"nebula/internal/meta"
)

// Query is the generated keyword search query type; it is exactly the
// keyword package's query so Stage 2 can execute it without conversion.
type Query = keyword.Query

// ConceptMapToQueries implements Figure 4(d): walk the emphasized keywords,
// form the best match each one's best mapping can participate in within its
// influence range (Type-1, else Type-2, else Type-3), and emit one keyword
// query per match. A value keyword that cannot form any match in range
// falls back to the backward search of Lines 8–12 (the "concept mentioned
// once earlier in the text" special case). Duplicates are eliminated
// keeping the highest weight, and weights are normalized into [0,1].
func (g *Generator) ConceptMapToQueries(cm *ContextMap) []Query {
	var raw []candidateQuery
	for _, wi := range cm.entryIndexes() {
		entry := cm.Entries[wi]
		best := entry.Best()
		if best == nil {
			continue
		}
		neighbors := cm.EntriesInRange(wi, g.Alpha)
		if q, ok := g.bestMatchQuery(entry, best, neighbors); ok {
			if g.isSelective(q) {
				raw = append(raw, q)
			}
			continue
		}
		// Lines 8-12: a value keyword with no usable concept in range
		// searches backward for the closest concept keyword.
		if best.Kind == KindValue {
			if q, ok := g.backwardConceptQuery(cm, wi, best); ok && g.isSelective(q) {
				raw = append(raw, q)
			}
		}
	}
	return finalizeQueries(raw)
}

// candidateQuery is a query before deduplication and normalization.
type candidateQuery struct {
	keywords []keyword.Keyword
	weight   float64
}

// key returns the structural identity used for duplicate elimination.
func (c candidateQuery) key() string {
	parts := make([]string, len(c.keywords))
	for i, k := range c.keywords {
		parts[i] = fmt.Sprintf("%d:%s:%s:%s", k.Role, strings.ToLower(k.TargetTable),
			strings.ToLower(k.TargetColumn), strings.ToLower(k.Text))
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// bestMatchQuery forms the strongest match the given mapping can join with
// its neighbors' mappings: Type-1 {table, column, value}, else Type-2
// {table, value}, else Type-3 {column, value}.
func (g *Generator) bestMatchQuery(entry *Entry, best *Mapping, neighbors []*Entry) (candidateQuery, bool) {
	switch best.Kind {
	case KindValue:
		tblEntry, tblMap := findMapping(neighbors, KindTable, best.Table, "")
		colEntry, colMap := findMapping(neighbors, KindColumn, best.Table, best.Column)
		// ConceptRefs combination alternatives ({PName, PType}): if the
		// value's column co-references with siblings and a sibling value
		// stands in range, fold it into the query — the reference is the
		// column combination, not the lone value (§5.1, source 6).
		combo := g.combinationKeywords(entry, best, neighbors)
		if tblEntry != nil && colEntry != nil && tblEntry != colEntry {
			return makeQuery(append([]keyword.Keyword{
				kw(tblEntry, tblMap), kw(colEntry, colMap), kw(entry, best)}, combo...)...), true
		}
		if tblEntry != nil {
			return makeQuery(append([]keyword.Keyword{
				kw(tblEntry, tblMap), kw(entry, best)}, combo...)...), true
		}
		if colEntry != nil {
			return makeQuery(append([]keyword.Keyword{
				kw(colEntry, colMap), kw(entry, best)}, combo...)...), true
		}
	case KindTable:
		// Drive from the concept side: find a value (and optionally a
		// column) in range on the same table.
		valEntry, valMap := findMapping(neighbors, KindValue, best.Table, "")
		if valEntry == nil {
			return candidateQuery{}, false
		}
		colEntry, colMap := findMapping(neighbors, KindColumn, valMap.Table, valMap.Column)
		if colEntry != nil && colEntry != valEntry {
			return makeQuery(kw(entry, best), kw(colEntry, colMap), kw(valEntry, valMap)), true
		}
		return makeQuery(kw(entry, best), kw(valEntry, valMap)), true
	case KindColumn:
		valEntry, valMap := findMapping(neighbors, KindValue, best.Table, best.Column)
		if valEntry == nil {
			return candidateQuery{}, false
		}
		tblEntry, tblMap := findMapping(neighbors, KindTable, best.Table, "")
		if tblEntry != nil && tblEntry != valEntry {
			return makeQuery(kw(tblEntry, tblMap), kw(entry, best), kw(valEntry, valMap)), true
		}
		return makeQuery(kw(entry, best), kw(valEntry, valMap)), true
	}
	return candidateQuery{}, false
}

// backwardConceptQuery implements the special case of §5.2.3: the concept
// keyword may appear once, earlier in the text, and not repeat before each
// value ("...the keyword gene is not repeated before JW0014 or grpC...").
// Starting at the value's position, scan backward for the closest concept
// keyword that can form a Type-2 or Type-3 match with the value's best
// mapping and emit the pair; if no earlier concept is compatible, the value
// is ignored. (The scan skips over compatible-kind-but-wrong-target
// concepts — in "gene id JW00049 and aacC" the name-valued aacC must reach
// past the GID-mapped "id" back to "gene".)
func (g *Generator) backwardConceptQuery(cm *ContextMap, wi int, best *Mapping) (candidateQuery, bool) {
	for i := wi - 1; i >= 0; i-- {
		e, ok := cm.Entries[i]
		if !ok {
			continue
		}
		if m := pickMapping(e, KindTable, best.Table, ""); m != nil {
			return makeQuery(kw(e, m), kwFromValue(cm, wi, best)), true
		}
		if m := pickMapping(e, KindColumn, best.Table, best.Column); m != nil {
			return makeQuery(kw(e, m), kwFromValue(cm, wi, best)), true
		}
	}
	return candidateQuery{}, false
}

// isSelective reports whether at least one of the query's value keywords
// targets a column selective enough to identify tuples (see
// Generator.MinSelectivity). Queries over category-like columns alone are
// dropped: they select table slices, not embedded references.
func (g *Generator) isSelective(q candidateQuery) bool {
	if g.MinSelectivity <= 0 {
		return true
	}
	for _, k := range q.keywords {
		if k.Role != keyword.RoleValue {
			continue
		}
		if g.columnSelectivity(k.TargetTable, k.TargetColumn) >= g.MinSelectivity {
			return true
		}
	}
	return false
}

// combinationKeywords finds, for a value mapping whose column participates
// in multi-column referencing alternatives, the in-range value keywords of
// the sibling columns. The owning entry itself never contributes.
func (g *Generator) combinationKeywords(entry *Entry, best *Mapping, neighbors []*Entry) []keyword.Keyword {
	siblings := g.Meta.CombinationSiblings(meta.ColumnRef{Table: best.Table, Column: best.Column})
	var out []keyword.Keyword
	for _, sib := range siblings {
		e, m := findMapping(neighbors, KindValue, sib.Table, sib.Column)
		if e == nil || e == entry {
			continue
		}
		out = append(out, kw(e, m))
	}
	return out
}

// findMapping finds, among the neighbor entries, the highest-weight mapping
// of the requested kind consistent with (table[, column]). It returns the
// owning entry and the mapping, or nils.
func findMapping(neighbors []*Entry, kind MappingKind, table, column string) (*Entry, *Mapping) {
	var bestEntry *Entry
	var bestMapping *Mapping
	for _, e := range neighbors {
		if m := pickMapping(e, kind, table, column); m != nil {
			if bestMapping == nil || m.Weight > bestMapping.Weight {
				bestEntry, bestMapping = e, m
			}
		}
	}
	return bestEntry, bestMapping
}

// pickMapping returns the entry's highest-weight mapping of the requested
// kind and target, or nil.
func pickMapping(e *Entry, kind MappingKind, table, column string) *Mapping {
	var best *Mapping
	for i := range e.Mappings {
		m := &e.Mappings[i]
		if m.Kind != kind {
			continue
		}
		if table != "" && !equalFold(m.Table, table) {
			continue
		}
		if column != "" && kind != KindTable && !equalFold(m.Column, column) {
			continue
		}
		if kind == KindValue && column == "" {
			// Any value domain on the table qualifies.
		}
		if best == nil || m.Weight > best.Weight {
			best = m
		}
	}
	return best
}

// kw converts an (entry, mapping) pair into a keyword with execution hints.
func kw(e *Entry, m *Mapping) keyword.Keyword {
	role := keyword.RoleValue
	switch m.Kind {
	case KindTable:
		role = keyword.RoleTable
	case KindColumn:
		role = keyword.RoleColumn
	}
	return keyword.Keyword{
		Text:         e.Token.Text,
		Role:         role,
		TargetTable:  m.Table,
		TargetColumn: m.Column,
		Weight:       m.Weight,
	}
}

func kwFromValue(cm *ContextMap, wi int, m *Mapping) keyword.Keyword {
	return kw(cm.Entries[wi], m)
}

func makeQuery(kws ...keyword.Keyword) candidateQuery {
	total := 0.0
	for _, k := range kws {
		total += k.Weight
	}
	return candidateQuery{keywords: kws, weight: total}
}

// finalizeQueries deduplicates (keeping the highest weight per structural
// key) and normalizes weights into [0,1] relative to the maximum (Lines
// 15-16 of Figure 4d).
func finalizeQueries(raw []candidateQuery) []Query {
	bestByKey := make(map[string]int)
	var kept []candidateQuery
	for _, c := range raw {
		k := c.key()
		if i, ok := bestByKey[k]; ok {
			if c.weight > kept[i].weight {
				kept[i] = c
			}
			continue
		}
		bestByKey[k] = len(kept)
		kept = append(kept, c)
	}
	maxW := 0.0
	for _, c := range kept {
		if c.weight > maxW {
			maxW = c.weight
		}
	}
	out := make([]Query, len(kept))
	for i, c := range kept {
		w := 1.0
		if maxW > 0 {
			w = c.weight / maxW
		}
		out[i] = Query{
			ID:       fmt.Sprintf("q%d", i+1),
			Keywords: c.keywords,
			Weight:   w,
		}
	}
	return out
}
