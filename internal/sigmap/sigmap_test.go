package sigmap

import (
	"strings"
	"testing"

	"nebula/internal/keyword"
	"nebula/internal/meta"
	"nebula/internal/relational"
	"nebula/internal/textutil"
)

// fixture builds the running-example catalog and metadata of Figures 1-4.
func fixture(t testing.TB) *meta.Repository {
	t.Helper()
	db := relational.NewDatabase()
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString, Indexed: true},
			{Name: "Length", Type: relational.TypeInt},
			{Name: "Family", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	}
	protein := &relational.Schema{
		Name: "Protein",
		Columns: []relational.Column{
			{Name: "PID", Type: relational.TypeString, Indexed: true},
			{Name: "PName", Type: relational.TypeString, Indexed: true},
			{Name: "PType", Type: relational.TypeString},
		},
		PrimaryKey: "PID",
	}
	for _, s := range []*relational.Schema{gene, protein} {
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	gt := db.MustTable("Gene")
	for _, g := range [][]relational.Value{
		{relational.String("JW0013"), relational.String("grpC"), relational.Int(1130), relational.String("F1")},
		{relational.String("JW0014"), relational.String("groP"), relational.Int(1916), relational.String("F6")},
		{relational.String("JW0019"), relational.String("yaaB"), relational.Int(905), relational.String("F3")},
	} {
		if _, err := gt.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	pt := db.MustTable("Protein")
	// Several proteins over two types, so PType's selectivity is a
	// realistic category ratio while PName stays unique.
	for _, p := range [][]relational.Value{
		{relational.String("P00001"), relational.String("G-Actin"), relational.String("structural")},
		{relational.String("P00002"), relational.String("Myosin"), relational.String("motor")},
		{relational.String("P00003"), relational.String("Keratin"), relational.String("structural")},
		{relational.String("P00004"), relational.String("Dynein"), relational.String("motor")},
		{relational.String("P00005"), relational.String("Tubulin"), relational.String("structural")},
		{relational.String("P00006"), relational.String("Kinesin"), relational.String("motor")},
	} {
		if _, err := pt.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	repo := meta.NewRepository(db, nil)
	for _, c := range []*meta.Concept{
		{Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}}},
		{Name: "Protein", Table: "Protein", ReferencedBy: [][]string{{"PID"}, {"PName", "PType"}}},
	} {
		if err := repo.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	repo.AddEquivalentNames("GID", "Gene ID")
	if err := repo.SetPattern(meta.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		t.Fatal(err)
	}
	if err := repo.SetPattern(meta.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`); err != nil {
		t.Fatal(err)
	}
	if err := repo.SetPattern(meta.ColumnRef{Table: "Protein", Column: "PID"}, `P[0-9]{5}`); err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestConceptMapEmphasizesConceptWords(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	tokens := textutil.Tokenize("this gene is near protein G-Actin")
	cm := g.ConceptMap(tokens)
	var words []string
	for _, e := range cm {
		words = append(words, e.Token.Lower)
	}
	joined := strings.Join(words, " ")
	if !strings.Contains(joined, "gene") || !strings.Contains(joined, "protein") {
		t.Errorf("concept map = %v", words)
	}
	for _, e := range cm {
		if e.Token.Lower == "near" || e.Token.Lower == "this" {
			t.Errorf("noise word emphasized: %v", e.Token)
		}
	}
}

func TestValueMapEmphasizesIdentifiers(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	tokens := textutil.Tokenize("gene JW0014 correlated with grpC")
	vm := g.ValueMap(tokens)
	emphasized := map[string]bool{}
	for _, e := range vm {
		emphasized[e.Token.Text] = true
	}
	if !emphasized["JW0014"] {
		t.Errorf("JW0014 not in value map: %v", emphasized)
	}
	if !emphasized["grpC"] {
		t.Errorf("grpC not in value map: %v", emphasized)
	}
	if emphasized["correlated"] {
		t.Error("plain word emphasized in value map")
	}
}

func TestEpsilonCutoffMonotone(t *testing.T) {
	repo := fixture(t)
	text := "From the exp, it seems this gene is correlated to JW0014 of grpC"
	sizes := map[float64]int{}
	for _, eps := range []float64{0.4, 0.6, 0.8} {
		g := NewGenerator(repo, eps)
		tokens := textutil.Tokenize(text)
		cm := g.ConceptMap(tokens)
		vm := g.ValueMap(tokens)
		sizes[eps] = len(cm) + len(vm)
	}
	if sizes[0.4] < sizes[0.6] || sizes[0.6] < sizes[0.8] {
		t.Errorf("emphasized counts not monotone in ε: %v", sizes)
	}
}

func TestOverlayMergesMaps(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	tokens := textutil.Tokenize("gene name grpC")
	cm := g.ConceptMap(tokens)
	vm := g.ValueMap(tokens)
	ctx := Overlay(tokens, cm, vm)
	if len(ctx.Entries) < 2 {
		t.Fatalf("overlay entries = %d", len(ctx.Entries))
	}
	// Entries must be cloned: adjusting the overlay must not mutate the
	// source maps.
	for i, e := range ctx.Entries {
		if src, ok := cm[i]; ok && len(e.Mappings) > 0 && len(src.Mappings) > 0 {
			e.Mappings[0].Weight = 123
			if src.Mappings[0].Weight == 123 {
				t.Fatal("overlay aliases source mappings")
			}
			break
		}
	}
}

func TestContextAdjustmentRewardsType2(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	// "gene JW0014" — table + value within range: Type-2 reward for both.
	tokens := textutil.Tokenize("gene JW0014")
	ctx := Overlay(tokens, g.ConceptMap(tokens), g.ValueMap(tokens))
	before := map[string]float64{}
	for i, e := range ctx.Entries {
		before[e.Token.Lower] = e.Mappings[0].Weight
		_ = i
	}
	g.ContextBasedAdjustment(ctx)
	for _, e := range ctx.Entries {
		if e.Best().Weight <= before[e.Token.Lower] {
			t.Errorf("%s not rewarded: %f <= %f", e.Token.Lower, e.Best().Weight, before[e.Token.Lower])
		}
	}
}

func TestContextAdjustmentType1BeatsType2(t *testing.T) {
	g := NewGenerator(fixture(t), 0.5)
	// Type-1: "gene id JW0014" (table + column + value).
	t1 := textutil.Tokenize("gene id JW0014")
	ctx1 := Overlay(t1, g.ConceptMap(t1), g.ValueMap(t1))
	g.ContextBasedAdjustment(ctx1)
	// Type-2: "gene JW0014".
	t2 := textutil.Tokenize("gene JW0014")
	ctx2 := Overlay(t2, g.ConceptMap(t2), g.ValueMap(t2))
	g.ContextBasedAdjustment(ctx2)

	w1 := valueWeight(t, ctx1, "jw0014")
	w2 := valueWeight(t, ctx2, "jw0014")
	if w1 <= w2 {
		t.Errorf("Type-1 reward %f should exceed Type-2 reward %f", w1, w2)
	}
}

func valueWeight(t *testing.T, cm *ContextMap, lower string) float64 {
	t.Helper()
	for _, e := range cm.Entries {
		if e.Token.Lower == lower {
			for _, m := range e.Mappings {
				if m.Kind == KindValue {
					return m.Weight
				}
			}
		}
	}
	t.Fatalf("no value mapping for %s", lower)
	return 0
}

func TestContextAdjustmentRespectsAlpha(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	g.Alpha = 2
	// The concept is 4 words away from the value: out of range.
	tokens := textutil.Tokenize("gene one two three four JW0014")
	ctx := Overlay(tokens, g.ConceptMap(tokens), g.ValueMap(tokens))
	before := valueWeight(t, ctx, "jw0014")
	g.ContextBasedAdjustment(ctx)
	after := valueWeight(t, ctx, "jw0014")
	if after != before {
		t.Errorf("out-of-range reward applied: %f -> %f", before, after)
	}
}

func TestGenerateAliceComment(t *testing.T) {
	// Alice's comment (Figure 1): one in-range reference and one backward
	// reference sharing the earlier "gene" concept.
	g := NewGenerator(fixture(t), 0.6)
	queries, stats := g.Generate("From the exp, it seems this gene is correlated to JW0014 of grpC")
	if len(queries) != 2 {
		t.Fatalf("queries = %v", queries)
	}
	found := map[string]bool{}
	for _, q := range queries {
		if q.Weight <= 0 || q.Weight > 1 {
			t.Errorf("weight out of range: %v", q)
		}
		var concept, value string
		for _, k := range q.Keywords {
			switch k.Role {
			case keyword.RoleTable, keyword.RoleColumn:
				concept = k.Text
			case keyword.RoleValue:
				value = k.Text
			}
		}
		if concept == "" || value == "" {
			t.Errorf("query missing roles: %v", q)
		}
		found[value] = true
	}
	if !found["JW0014"] || !found["grpC"] {
		t.Errorf("expected embedded references JW0014 and grpC: %v", found)
	}
	if stats.Queries != 2 || stats.Tokens == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestGenerateBackwardSpecialCase(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	// grpC is far beyond α words from "gene": only the backward search can
	// link them.
	queries, _ := g.Generate("gene studies were very long and detailed about many things including grpC")
	if len(queries) != 1 {
		t.Fatalf("queries = %v", queries)
	}
	var hasGene, hasGrpC bool
	for _, k := range queries[0].Keywords {
		if k.Text == "gene" {
			hasGene = true
		}
		if k.Text == "grpC" {
			hasGrpC = true
		}
	}
	if !hasGene || !hasGrpC {
		t.Errorf("backward query = %v", queries[0])
	}
}

func TestGenerateIgnoresOrphanValues(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	// An identifier with no concept keyword anywhere: ignored.
	queries, _ := g.Generate("we observed JW0014 yesterday")
	if len(queries) != 0 {
		t.Errorf("orphan value produced queries: %v", queries)
	}
}

func TestGenerateDeduplicates(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	queries, _ := g.Generate("gene JW0014 and again gene JW0014")
	if len(queries) != 1 {
		t.Errorf("duplicate queries not merged: %v", queries)
	}
}

func TestGenerateNormalizesWeights(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	queries, _ := g.Generate("gene id JW0014 also gene grpC and protein P00001")
	if len(queries) < 2 {
		t.Fatalf("queries = %v", queries)
	}
	maxW := 0.0
	for _, q := range queries {
		if q.Weight <= 0 || q.Weight > 1 {
			t.Errorf("weight out of range: %v", q)
		}
		if q.Weight > maxW {
			maxW = q.Weight
		}
	}
	if maxW != 1 {
		t.Errorf("max weight = %f, want 1 after normalization", maxW)
	}
}

func TestGenerateType1Query(t *testing.T) {
	g := NewGenerator(fixture(t), 0.5)
	queries, _ := g.Generate("the gene id JW0019 was interesting")
	if len(queries) == 0 {
		t.Fatal("no queries")
	}
	// The strongest query should be the Type-1 triple.
	best := queries[0]
	for _, q := range queries {
		if q.Weight > best.Weight {
			best = q
		}
	}
	if len(best.Keywords) != 3 {
		t.Errorf("best query is not a Type-1 triple: %v", best)
	}
}

func TestGenerateCombinationReference(t *testing.T) {
	repo := fixture(t)
	// The Protein concept declares the {PName, PType} combination. Give
	// PType an ontology so "structural" maps to its value domain.
	repo.SetOntology(meta.ColumnRef{Table: "Protein", Column: "PType"},
		[]string{"structural", "motor", "enzyme"})
	repo.SetSample(meta.ColumnRef{Table: "Protein", Column: "PName"},
		[]string{"G-Actin", "Myosin"})
	g := NewGenerator(repo, 0.6)
	queries, _ := g.Generate("the structural protein G-Actin was observed")
	if len(queries) == 0 {
		t.Fatal("no queries")
	}
	// Some query must carry BOTH value keywords (PName and PType).
	found := false
	for _, q := range queries {
		var hasName, hasType bool
		for _, k := range q.Keywords {
			if k.Role != keyword.RoleValue {
				continue
			}
			switch k.TargetColumn {
			case "PName":
				hasName = true
			case "PType":
				hasType = true
			}
		}
		if hasName && hasType {
			found = true
		}
	}
	if !found {
		t.Errorf("no combination query formed: %v", queries)
	}
	// And no query may consist of low-selectivity value keywords alone: a
	// bare {protein, structural} query selects a sixth of the table, not a
	// tuple.
	for _, q := range queries {
		selective := false
		for _, k := range q.Keywords {
			if k.Role == keyword.RoleValue && k.TargetColumn != "PType" {
				selective = true
			}
		}
		if !selective {
			t.Errorf("category-only query survived: %v", q)
		}
	}
}

func TestSelectivityFilterDropsCategoryQueries(t *testing.T) {
	repo := fixture(t)
	repo.SetOntology(meta.ColumnRef{Table: "Protein", Column: "PType"},
		[]string{"structural", "motor", "enzyme"})
	g := NewGenerator(repo, 0.6)
	// Only the category word near the concept: no embedded reference here.
	queries, _ := g.Generate("we observed the structural protein behaviour in culture")
	if len(queries) != 0 {
		t.Errorf("category-only text produced queries: %v", queries)
	}
	// With the filter disabled the query appears (the knob works).
	g2 := NewGenerator(repo, 0.6)
	g2.MinSelectivity = 0
	queries, _ = g2.Generate("we observed the structural protein behaviour in culture")
	if len(queries) == 0 {
		t.Error("disabled filter still dropped the query")
	}
}

func TestGenerateEmptyAnnotation(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	queries, stats := g.Generate("")
	if len(queries) != 0 || stats.Tokens != 0 {
		t.Errorf("empty annotation: %v %+v", queries, stats)
	}
	queries, _ = g.Generate("purely narrative prose without identifiers")
	if len(queries) != 0 {
		t.Errorf("narrative text produced queries: %v", queries)
	}
}

func TestMappingKindString(t *testing.T) {
	if KindTable.String() != "table" || KindColumn.String() != "column" || KindValue.String() != "value" {
		t.Error("MappingKind.String wrong")
	}
	m := Mapping{Kind: KindValue, Table: "Gene", Column: "GID", Weight: 0.5}
	if m.String() == "" {
		t.Error("Mapping.String empty")
	}
}

func TestEntriesInRangeOrdering(t *testing.T) {
	g := NewGenerator(fixture(t), 0.6)
	tokens := textutil.Tokenize("grpC gene JW0014")
	ctx := Overlay(tokens, g.ConceptMap(tokens), g.ValueMap(tokens))
	var geneIdx int
	for i, e := range ctx.Entries {
		if e.Token.Lower == "gene" {
			geneIdx = i
		}
	}
	neighbors := ctx.EntriesInRange(geneIdx, 3)
	if len(neighbors) != 2 {
		t.Fatalf("neighbors = %d", len(neighbors))
	}
	if neighbors[0].Token.Index > neighbors[1].Token.Index {
		t.Error("neighbors not in index order")
	}
}
