package sigmap

import (
	"context"
	"fmt"
	"sort"
	"time"

	"nebula/internal/meta"
	"nebula/internal/textutil"
	"nebula/internal/trace"
)

// Generator runs the QueryGeneration() algorithm of Figure 4(a).
type Generator struct {
	// Meta is the NebulaMeta repository to consult.
	Meta *meta.Repository
	// Epsilon is the cutoff threshold ε: a word is emphasized only if some
	// mapping weight reaches it (§5.2.1). The paper evaluates 0.4/0.6/0.8.
	Epsilon float64
	// Alpha is the influence range size α in words on each side (§5.2.2).
	Alpha int
	// Beta1..Beta3 are the context rewards for Type-1/2/3 matches, as
	// fractions (0.5 = +50%); the paper requires Beta3 < Beta2 < Beta1.
	Beta1, Beta2, Beta3 float64
	// MaxWeight caps an adjusted mapping weight to keep repeated rewards
	// bounded. Query weights are normalized afterwards anyway.
	MaxWeight float64
	// MinSelectivity is the minimum distinct-values/rows ratio a query's
	// best value column must reach. A query whose value keywords all
	// target low-selectivity columns (e.g. a protein-type word alone)
	// would select a large slice of a table rather than identify a tuple —
	// it is a category, not an embedded reference. Such keywords still
	// participate in queries through combination siblings (PName + PType).
	MinSelectivity float64
	// MaxQueries caps the number of generated queries — the Stage 1 half
	// of the discovery budget. When the cap bites, the highest-weight
	// queries are kept (in generation order) and the truncation is
	// recorded in Stats.Degraded. 0 means unlimited.
	MaxQueries int
}

// NewGenerator returns a Generator with the paper-inspired defaults.
func NewGenerator(repo *meta.Repository, epsilon float64) *Generator {
	return &Generator{
		Meta:           repo,
		Epsilon:        epsilon,
		Alpha:          3,
		Beta1:          0.5,
		Beta2:          0.3,
		Beta3:          0.15,
		MaxWeight:      2.0,
		MinSelectivity: 0.5,
	}
}

// columnSelectivity returns distinct/rows for a column, via the
// repository's shared statistics cache (generators are created per
// annotation; the statistics must not be recomputed each time).
func (g *Generator) columnSelectivity(table, column string) float64 {
	return g.Meta.ColumnSelectivity(meta.ColumnRef{Table: table, Column: column})
}

// Stats reports the work and phase timings of one generation run; the
// Figure 11 experiments consume these directly.
type Stats struct {
	// Tokens is the annotation's token count.
	Tokens int
	// ConceptEntries counts words emphasized in the Concept-Map.
	ConceptEntries int
	// ValueEntries counts words emphasized in the Value-Map.
	ValueEntries int
	// Queries counts the generated keyword queries after deduplication.
	Queries int
	// MapGeneration is the time of phase 1 (both signature maps).
	MapGeneration time.Duration
	// ContextAdjustment is the time of phase 2 (overlay + adjustment).
	ContextAdjustment time.Duration
	// QueryGeneration is the time of phase 3 (query formation).
	QueryGeneration time.Duration
	// Degraded lists human-readable reasons the generation deviated from
	// the unbounded run (currently only the MaxQueries truncation). Empty
	// for a complete run.
	Degraded []string
}

// Generate runs the full pipeline on an annotation body and returns the
// keyword queries with the run's statistics.
func (g *Generator) Generate(body string) ([]Query, Stats) {
	return g.GenerateContext(context.Background(), body)
}

// GenerateContext is Generate with request-scoped tracing: when ctx carries
// a trace span, the three phases of Figure 4(a) become child spans with
// their token/entry/query counters. Tracing is observe-only — the returned
// queries and stats are identical to Generate's.
func (g *Generator) GenerateContext(ctx context.Context, body string) ([]Query, Stats) {
	var stats Stats

	span, _ := trace.StartSpan(ctx, "map")
	start := time.Now()
	tokens := textutil.Tokenize(body)
	stats.Tokens = len(tokens)
	conceptMap := g.ConceptMap(tokens)
	valueMap := g.ValueMap(tokens)
	stats.ConceptEntries = len(conceptMap)
	stats.ValueEntries = len(valueMap)
	stats.MapGeneration = time.Since(start)
	if span.Enabled() {
		span.AddInt("tokens", stats.Tokens)
		span.AddInt("concept_entries", stats.ConceptEntries)
		span.AddInt("value_entries", stats.ValueEntries)
		span.End()
	}

	span, _ = trace.StartSpan(ctx, "adjust_context")
	start = time.Now()
	cm := Overlay(tokens, conceptMap, valueMap)
	g.ContextBasedAdjustment(cm)
	stats.ContextAdjustment = time.Since(start)
	span.End()

	span, _ = trace.StartSpan(ctx, "form_queries")
	start = time.Now()
	queries := g.ConceptMapToQueries(cm)
	if g.MaxQueries > 0 && len(queries) > g.MaxQueries {
		kept := truncateByWeight(queries, g.MaxQueries)
		stats.Degraded = append(stats.Degraded, fmt.Sprintf(
			"sigmap: query budget truncated generation from %d to %d queries (highest-weight kept)",
			len(queries), len(kept)))
		queries = kept
	}
	stats.QueryGeneration = time.Since(start)
	stats.Queries = len(queries)
	if span.Enabled() {
		span.AddInt("queries", stats.Queries)
		span.End()
	}
	return queries, stats
}

// truncateByWeight keeps the n highest-weight queries, preserving their
// original (deterministic) generation order; ties at the cut keep the
// earlier query.
func truncateByWeight(queries []Query, n int) []Query {
	idx := make([]int, len(queries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return queries[idx[a]].Weight > queries[idx[b]].Weight
	})
	keep := make(map[int]bool, n)
	for _, i := range idx[:n] {
		keep[i] = true
	}
	out := make([]Query, 0, n)
	for i, q := range queries {
		if keep[i] {
			out = append(out, q)
		}
	}
	return out
}

// ConceptMap builds the Concept-Map (Step 1 of Figure 4a): words with a
// potential mapping to a table or column name listed in ConceptRefs. A word
// is emphasized iff its best p(w,c) reaches ε; mappings below ε are pruned.
func (g *Generator) ConceptMap(tokens []textutil.Token) map[int]*Entry {
	out := make(map[int]*Entry)
	for _, tok := range tokens {
		if textutil.IsStopword(tok.Lower) {
			continue
		}
		matches := g.Meta.ConceptMatches(tok.Text)
		var mappings []Mapping
		for _, m := range matches {
			if m.Weight < g.Epsilon {
				continue
			}
			kind := KindTable
			if m.Element.Kind == meta.ColumnElement {
				kind = KindColumn
			}
			mappings = append(mappings, Mapping{
				Kind:   kind,
				Table:  m.Element.Table,
				Column: m.Element.Column,
				Weight: m.Weight,
			})
		}
		if len(mappings) > 0 {
			sortMappings(mappings)
			out[tok.Index] = &Entry{Token: tok, Mappings: mappings}
		}
	}
	return out
}

// ValueMap builds the Value-Map (Step 2): words with a potential mapping to
// the value domain of a ConceptRefs target column, cutoff at ε.
func (g *Generator) ValueMap(tokens []textutil.Token) map[int]*Entry {
	out := make(map[int]*Entry)
	for _, tok := range tokens {
		if textutil.IsStopword(tok.Lower) {
			continue
		}
		var mappings []Mapping
		for _, m := range g.Meta.ValueMatches(tok.Text) {
			if m.Weight < g.Epsilon {
				continue
			}
			mappings = append(mappings, Mapping{
				Kind:   KindValue,
				Table:  m.Column.Table,
				Column: m.Column.Column,
				Weight: m.Weight,
			})
		}
		if len(mappings) > 0 {
			sortMappings(mappings)
			out[tok.Index] = &Entry{Token: tok, Mappings: mappings}
		}
	}
	return out
}

// Overlay merges the two signature maps into the Context-Map (Step 3): a
// word emphasized in both maps carries both mapping sets.
func Overlay(tokens []textutil.Token, conceptMap, valueMap map[int]*Entry) *ContextMap {
	cm := &ContextMap{Tokens: tokens, Entries: make(map[int]*Entry)}
	for i, e := range conceptMap {
		clone := &Entry{Token: e.Token, Mappings: append([]Mapping(nil), e.Mappings...)}
		cm.Entries[i] = clone
	}
	for i, e := range valueMap {
		if existing, ok := cm.Entries[i]; ok {
			existing.Mappings = append(existing.Mappings, e.Mappings...)
			sortMappings(existing.Mappings)
			continue
		}
		cm.Entries[i] = &Entry{Token: e.Token, Mappings: append([]Mapping(nil), e.Mappings...)}
	}
	return cm
}

// ContextBasedAdjustment implements Figure 17: every mapping of every
// emphasized word is rewarded according to the strongest match type it can
// form with mappings of neighboring words inside the influence range —
// +β1% per Type-1 match ({table, column, value}); otherwise +β2% per Type-2
// match ({table, value}); otherwise +β3% per Type-3 match ({column,
// value}). Rewards are computed against a snapshot of the incoming weights
// so the outcome does not depend on word order.
func (g *Generator) ContextBasedAdjustment(cm *ContextMap) {
	type adj struct {
		entry *Entry
		idx   int
		mult  float64
	}
	var adjustments []adj
	for _, wi := range cm.entryIndexes() {
		entry := cm.Entries[wi]
		neighbors := cm.EntriesInRange(wi, g.Alpha)
		for mi := range entry.Mappings {
			m := &entry.Mappings[mi]
			if n := countType1(m, neighbors); n > 0 {
				adjustments = append(adjustments, adj{entry, mi, 1 + g.Beta1*float64(n)})
				continue
			}
			if n := countType2(m, neighbors); n > 0 {
				adjustments = append(adjustments, adj{entry, mi, 1 + g.Beta2*float64(n)})
				continue
			}
			if n := countType3(m, neighbors); n > 0 {
				adjustments = append(adjustments, adj{entry, mi, 1 + g.Beta3*float64(n)})
			}
		}
	}
	for _, a := range adjustments {
		w := a.entry.Mappings[a.idx].Weight * a.mult
		if w > g.MaxWeight {
			w = g.MaxWeight
		}
		a.entry.Mappings[a.idx].Weight = w
	}
	for _, e := range cm.Entries {
		sortMappings(e.Mappings)
	}
}

// countType1 counts Type-1 matches mapping m can form: m plus a neighbor
// pair supplying the two missing shapes of {table, column, value}, all
// referring to the same table, with the value's domain column equal to the
// column-shape's column.
func countType1(m *Mapping, neighbors []*Entry) int {
	count := 0
	switch m.Kind {
	case KindTable:
		// Need a column mapping and a value mapping on that same column.
		for i, a := range neighbors {
			for _, ma := range a.Mappings {
				if ma.Kind != KindColumn || !equalFold(ma.Table, m.Table) {
					continue
				}
				for j, b := range neighbors {
					if i == j {
						continue
					}
					for _, mb := range b.Mappings {
						if mb.Kind == KindValue && equalFold(mb.Table, m.Table) && equalFold(mb.Column, ma.Column) {
							count++
						}
					}
				}
			}
		}
	case KindColumn:
		for i, a := range neighbors {
			for _, ma := range a.Mappings {
				if ma.Kind != KindTable || !equalFold(ma.Table, m.Table) {
					continue
				}
				for j, b := range neighbors {
					if i == j {
						continue
					}
					for _, mb := range b.Mappings {
						if mb.Kind == KindValue && equalFold(mb.Table, m.Table) && equalFold(mb.Column, m.Column) {
							count++
						}
					}
				}
			}
		}
	case KindValue:
		for i, a := range neighbors {
			for _, ma := range a.Mappings {
				if ma.Kind != KindTable || !equalFold(ma.Table, m.Table) {
					continue
				}
				for j, b := range neighbors {
					if i == j {
						continue
					}
					for _, mb := range b.Mappings {
						if mb.Kind == KindColumn && equalFold(mb.Table, m.Table) && equalFold(mb.Column, m.Column) {
							count++
						}
					}
				}
			}
		}
	}
	return count
}

// countType2 counts Type-2 matches: {table, value} on the same table.
func countType2(m *Mapping, neighbors []*Entry) int {
	count := 0
	for _, n := range neighbors {
		for _, mn := range n.Mappings {
			switch {
			case m.Kind == KindTable && mn.Kind == KindValue && equalFold(mn.Table, m.Table):
				count++
			case m.Kind == KindValue && mn.Kind == KindTable && equalFold(mn.Table, m.Table):
				count++
			}
		}
	}
	return count
}

// countType3 counts Type-3 matches: {column, value} on the same column.
func countType3(m *Mapping, neighbors []*Entry) int {
	count := 0
	for _, n := range neighbors {
		for _, mn := range n.Mappings {
			switch {
			case m.Kind == KindColumn && mn.Kind == KindValue && equalFold(mn.Table, m.Table) && equalFold(mn.Column, m.Column):
				count++
			case m.Kind == KindValue && mn.Kind == KindColumn && equalFold(mn.Table, m.Table) && equalFold(mn.Column, m.Column):
				count++
			}
		}
	}
	return count
}

func sortMappings(ms []Mapping) {
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].Weight > ms[j].Weight })
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
