package verification

import (
	"fmt"

	"nebula/internal/annotation"
	"nebula/internal/discovery"
	"nebula/internal/relational"
)

// Assessment holds the four criteria of Definition 7.2 for one annotation,
// plus the raw Figure 8 counters they derive from.
type Assessment struct {
	// FN is the false-negative ratio F_N.
	FN float64
	// FP is the false-positive ratio F_P.
	FP float64
	// MF is the manual effort M_F = N_verify.
	MF float64
	// MH is the manual hit (conversion) ratio M_H = N_verify-T / N_verify.
	MH float64

	NIdeal   int
	NFocal   int
	NReject  int
	NVerify  int
	NVerifyT int
	NVerifyF int
	NAccept  int
	NAcceptT int
	NAcceptF int
}

func (a Assessment) String() string {
	return fmt.Sprintf("F_N=%.3f F_P=%.3f M_F=%.0f M_H=%.4f", a.FN, a.FP, a.MF, a.MH)
}

// Assess computes the Definition 7.2 criteria for one annotation's
// predictions, routed by the given bounds and judged by the oracle.
//
//	F_N = (N_ideal − (N_verify-T + N_accept-T + N_focal)) / N_ideal
//	F_P = N_accept-F / (N_verify-T + N_accept + N_focal)
//	M_F = N_verify
//	M_H = N_verify-T / N_verify
//
// nIdeal is the number of attachments of the annotation in the ideal
// database (focal included); nFocal is the number of focal (pre-existing
// true) attachments.
func Assess(a annotation.ID, candidates []discovery.Candidate, bounds Bounds, oracle Oracle, nIdeal, nFocal int) Assessment {
	out := Assessment{NIdeal: nIdeal, NFocal: nFocal}
	for _, c := range candidates {
		related := oracle.IsRelated(a, c.Tuple.ID)
		switch bounds.Route(c.Confidence) {
		case AutoRejected:
			out.NReject++
		case AutoAccepted:
			out.NAccept++
			if related {
				out.NAcceptT++
			} else {
				out.NAcceptF++
			}
		default:
			out.NVerify++
			if related {
				out.NVerifyT++
			} else {
				out.NVerifyF++
			}
		}
	}
	if out.NIdeal > 0 {
		out.FN = float64(out.NIdeal-(out.NVerifyT+out.NAcceptT+out.NFocal)) / float64(out.NIdeal)
		if out.FN < 0 {
			out.FN = 0
		}
	}
	if denom := out.NVerifyT + out.NAccept + out.NFocal; denom > 0 {
		out.FP = float64(out.NAcceptF) / float64(denom)
	}
	out.MF = float64(out.NVerify)
	if out.NVerify > 0 {
		out.MH = float64(out.NVerifyT) / float64(out.NVerify)
	}
	return out
}

// Average combines per-annotation assessments by arithmetic mean, as the
// experiments do ("we average the assessment measures over all the
// annotations").
func Average(as []Assessment) Assessment {
	var avg Assessment
	if len(as) == 0 {
		return avg
	}
	for _, a := range as {
		avg.FN += a.FN
		avg.FP += a.FP
		avg.MF += a.MF
		avg.MH += a.MH
	}
	n := float64(len(as))
	avg.FN /= n
	avg.FP /= n
	avg.MF /= n
	avg.MH /= n
	return avg
}

// IdealTupleOracle is an oracle over a single annotation's ground-truth
// tuple set, convenient for training examples.
type IdealTupleOracle struct {
	Annotation annotation.ID
	Tuples     map[relational.TupleID]struct{}
}

// NewIdealTupleOracle builds the oracle from a tuple list.
func NewIdealTupleOracle(a annotation.ID, tuples []relational.TupleID) IdealTupleOracle {
	set := make(map[relational.TupleID]struct{}, len(tuples))
	for _, t := range tuples {
		set[t] = struct{}{}
	}
	return IdealTupleOracle{Annotation: a, Tuples: set}
}

// IsRelated reports whether the tuple belongs to the annotation's
// ground-truth set.
func (o IdealTupleOracle) IsRelated(a annotation.ID, t relational.TupleID) bool {
	if a != o.Annotation {
		return false
	}
	_, ok := o.Tuples[t]
	return ok
}
