// Package verification implements Stage 3 of Nebula (§7): turning
// discovered candidates into verification tasks, routing them by the
// β_lower/β_upper confidence bounds (auto-reject / pending expert
// verification / auto-accept), executing the acceptance side effects
// (attachment promotion, ACG update, hop-profile update), computing the
// assessment criteria of Definition 7.2, and adaptively tuning the bounds
// with the BoundsSetting algorithm of Figure 9.
package verification

import (
	"fmt"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// Decision is the lifecycle state of a verification task.
type Decision int

const (
	// Pending awaits expert verification (β_lower ≤ conf ≤ β_upper).
	Pending Decision = iota
	// AutoAccepted was accepted automatically (conf > β_upper).
	AutoAccepted
	// AutoRejected was rejected automatically (conf < β_lower).
	AutoRejected
	// ExpertAccepted was verified positively by an expert.
	ExpertAccepted
	// ExpertRejected was verified negatively by an expert.
	ExpertRejected
)

func (d Decision) String() string {
	switch d {
	case Pending:
		return "pending"
	case AutoAccepted:
		return "auto-accepted"
	case AutoRejected:
		return "auto-rejected"
	case ExpertAccepted:
		return "expert-accepted"
	case ExpertRejected:
		return "expert-rejected"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Task is a verification task v = (v_id, a, t, confidence, evidence)
// (Definition 7.1). Its result is a Boolean decision: accept (the edge
// becomes a True Attachment) or reject (the edge is discarded).
type Task struct {
	// VID is the unique system-generated identifier.
	VID int64
	// Annotation is the annotation side of the predicted attachment.
	Annotation annotation.ID
	// Tuple is the data side of the predicted attachment.
	Tuple relational.TupleID
	// Confidence is the estimated confidence of the attachment.
	Confidence float64
	// Evidence is the set of keyword-query IDs supporting the prediction,
	// reported to help experts verify.
	Evidence []string
	// Decision is the task's current state.
	Decision Decision
}

func (t *Task) String() string {
	return fmt.Sprintf("v%d %s->%s conf=%.3f [%s]", t.VID, t.Annotation, t.Tuple, t.Confidence, t.Decision)
}

// Bounds are the two verification thresholds of Figure 8.
type Bounds struct {
	// Lower is β_lower: below it predictions are discarded automatically.
	Lower float64
	// Upper is β_upper: above it predictions are accepted automatically.
	Upper float64
}

// Validate checks 0 ≤ Lower ≤ Upper ≤ 1.
func (b Bounds) Validate() error {
	if b.Lower < 0 || b.Upper > 1 || b.Lower > b.Upper {
		return fmt.Errorf("invalid bounds [%f, %f]", b.Lower, b.Upper)
	}
	return nil
}

// Route classifies a confidence against the bounds: conf < Lower →
// AutoRejected; conf > Upper → AutoAccepted; otherwise Pending.
func (b Bounds) Route(conf float64) Decision {
	switch {
	case conf < b.Lower:
		return AutoRejected
	case conf > b.Upper:
		return AutoAccepted
	default:
		return Pending
	}
}

// Oracle answers whether an annotation is truly related to a tuple. In the
// experiments it is backed by the workload's ground truth (the paper: "this
// is under the assumption that experts do not make errors"); in production
// it is the domain expert answering a pending task.
type Oracle interface {
	IsRelated(a annotation.ID, t relational.TupleID) bool
}

// IdealOracle adapts an ideal edge set into an Oracle.
type IdealOracle annotation.IdealEdges

// IsRelated reports membership in the ideal edge set.
func (o IdealOracle) IsRelated(a annotation.ID, t relational.TupleID) bool {
	_, ok := o[annotation.EdgeKey{Annotation: a, Tuple: t}]
	return ok
}
