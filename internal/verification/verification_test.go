package verification

import (
	"fmt"
	"testing"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/discovery"
	"nebula/internal/relational"
)

func tup(i int) relational.TupleID {
	return relational.TupleID{Table: "Gene", Key: fmt.Sprintf("s:jw%04d", i)}
}

// cand fabricates a discovery candidate with a synthetic row carrying the
// right TupleID.
func cand(t *testing.T, db *relational.Database, i int, conf float64) discovery.Candidate {
	t.Helper()
	row, ok := db.Lookup(tup(i))
	if !ok {
		t.Fatalf("no tuple %d in fixture db", i)
	}
	return discovery.Candidate{Tuple: row, Confidence: conf, Evidence: []string{"q1"}}
}

func fixtureDB(t testing.TB, n int) *relational.Database {
	t.Helper()
	db := relational.NewDatabase()
	gt, err := db.CreateTable(&relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, err := gt.Insert([]relational.Value{relational.String(fmt.Sprintf("JW%04d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestBoundsRoute(t *testing.T) {
	b := Bounds{Lower: 0.32, Upper: 0.86}
	if b.Route(0.1) != AutoRejected {
		t.Error("below lower should reject")
	}
	if b.Route(0.5) != Pending {
		t.Error("between bounds should be pending")
	}
	if b.Route(0.9) != AutoAccepted {
		t.Error("above upper should accept")
	}
	// Boundary values stay pending (β_lower ≤ conf ≤ β_upper).
	if b.Route(0.32) != Pending || b.Route(0.86) != Pending {
		t.Error("boundary confidences should be pending")
	}
}

func TestBoundsValidate(t *testing.T) {
	for _, bad := range []Bounds{{Lower: -0.1, Upper: 0.5}, {Lower: 0.6, Upper: 0.5}, {Lower: 0, Upper: 1.1}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("bounds %+v should be invalid", bad)
		}
	}
	if err := (Bounds{Lower: 0.3, Upper: 0.9}).Validate(); err != nil {
		t.Errorf("valid bounds rejected: %v", err)
	}
}

func managerFixture(t *testing.T) (*relational.Database, *annotation.Store, *acg.Graph, *acg.Profile, *Manager) {
	t.Helper()
	db := fixtureDB(t, 20)
	store := annotation.NewStore()
	if err := store.Add(&annotation.Annotation{ID: "a1", Body: "test"}); err != nil {
		t.Fatal(err)
	}
	graph := acg.New(0, 0)
	// Pre-existing structure: focal tuple 0 connected to 1.
	graph.AddAnnotation("seed", []relational.TupleID{tup(0), tup(1)})
	profile := acg.NewProfile()
	m, err := NewManager(store, graph, profile, Bounds{Lower: 0.32, Upper: 0.86})
	if err != nil {
		t.Fatal(err)
	}
	// The annotation's focal: tuple 0.
	if _, err := store.Attach(annotation.Attachment{Annotation: "a1", Tuple: tup(0), Type: annotation.TrueAttachment}); err != nil {
		t.Fatal(err)
	}
	return db, store, graph, profile, m
}

func TestSubmitRouting(t *testing.T) {
	db, store, graph, profile, m := managerFixture(t)
	focal := []relational.TupleID{tup(0)}
	out, err := m.Submit("a1", focal, []discovery.Candidate{
		cand(t, db, 1, 0.95), // auto-accept
		cand(t, db, 2, 0.5),  // pending
		cand(t, db, 3, 0.1),  // auto-reject
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Accepted) != 1 || len(out.Pending) != 1 || len(out.Rejected) != 1 {
		t.Fatalf("routing: %+v", out)
	}
	// Acceptance side effects: attachment, ACG edge, profile record.
	edge, ok := store.Edge("a1", tup(1))
	if !ok || edge.Type != annotation.TrueAttachment {
		t.Error("accepted prediction not attached as true")
	}
	if graph.Weight(tup(0), tup(1)) == 0 {
		t.Error("ACG not updated")
	}
	if profile.Total() != 1 {
		t.Errorf("profile records = %d", profile.Total())
	}
	// The accepted tuple was 1 hop from the focal before the update.
	if profile.Bucket(1) != 1 {
		t.Errorf("hop bucket: %d", profile.Bucket(1))
	}
	// Rejected and pending have no attachment.
	if _, ok := store.Edge("a1", tup(2)); ok {
		t.Error("pending candidate attached prematurely")
	}
	if _, ok := store.Edge("a1", tup(3)); ok {
		t.Error("rejected candidate attached")
	}
}

func TestSubmitDegradedRoutesAcceptsToPending(t *testing.T) {
	db, store, _, _, m := managerFixture(t)
	focal := []relational.TupleID{tup(0)}
	out, err := m.SubmitDegraded("a1", focal, []discovery.Candidate{
		cand(t, db, 1, 0.95), // would auto-accept; must go pending
		cand(t, db, 2, 0.5),  // pending either way
		cand(t, db, 3, 0.1),  // auto-reject still applies
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Accepted) != 0 {
		t.Fatalf("degraded submission auto-accepted: %+v", out)
	}
	if len(out.Pending) != 2 || len(out.Rejected) != 1 {
		t.Fatalf("routing: %+v", out)
	}
	// No acceptance side effects ran.
	if _, ok := store.Edge("a1", tup(1)); ok {
		t.Error("degraded candidate attached without expert review")
	}
	// The rerouted task keeps its confidence and is expert-resolvable.
	top := out.Pending[0]
	if top.Confidence != 0.95 {
		t.Errorf("confidence lost in rerouting: %f", top.Confidence)
	}
	if err := m.Verify(top.VID, focal); err != nil {
		t.Fatal(err)
	}
	if _, ok := store.Edge("a1", tup(1)); !ok {
		t.Error("expert verification of rerouted task did not attach")
	}
}

func TestPendingLookupByVID(t *testing.T) {
	db, _, _, _, m := managerFixture(t)
	out, err := m.Submit("a1", []relational.TupleID{tup(0)}, []discovery.Candidate{
		cand(t, db, 2, 0.5),
		cand(t, db, 3, 0.6),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range out.Pending {
		got, ok := m.Pending(want.VID)
		if !ok || got != want {
			t.Errorf("Pending(%d) = %v, %v", want.VID, got, ok)
		}
	}
	if _, ok := m.Pending(99999); ok {
		t.Error("unknown VID resolved")
	}
	// Resolved tasks leave the index.
	vid := out.Pending[0].VID
	if err := m.Reject(vid); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Pending(vid); ok {
		t.Error("rejected task still pending")
	}
}

func TestSubmitUnknownAnnotation(t *testing.T) {
	db, _, _, _, m := managerFixture(t)
	if _, err := m.Submit("nope", nil, []discovery.Candidate{cand(t, db, 1, 0.9)}); err == nil {
		t.Error("unknown annotation should fail")
	}
}

func TestVerifyAndRejectCommands(t *testing.T) {
	db, store, _, _, m := managerFixture(t)
	focal := []relational.TupleID{tup(0)}
	out, err := m.Submit("a1", focal, []discovery.Candidate{
		cand(t, db, 2, 0.5),
		cand(t, db, 3, 0.6),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PendingTasks()) != 2 {
		t.Fatalf("pending = %d", len(m.PendingTasks()))
	}
	vid := out.Pending[0].VID
	if err := m.Verify(vid, focal); err != nil {
		t.Fatal(err)
	}
	if out.Pending[0].Decision != ExpertAccepted {
		t.Error("decision not updated")
	}
	if _, ok := store.Edge("a1", out.Pending[0].Tuple); !ok {
		t.Error("verified attachment missing")
	}
	if err := m.Verify(vid, focal); err == nil {
		t.Error("double verify should fail")
	}
	vid2 := out.Pending[1].VID
	if err := m.Reject(vid2); err != nil {
		t.Fatal(err)
	}
	if out.Pending[1].Decision != ExpertRejected {
		t.Error("reject decision not updated")
	}
	if err := m.Reject(vid2); err == nil {
		t.Error("double reject should fail")
	}
	if len(m.PendingTasks()) != 0 {
		t.Error("pending table not drained")
	}
}

func TestResolveWithOracle(t *testing.T) {
	db, store, _, _, m := managerFixture(t)
	focal := []relational.TupleID{tup(0)}
	_, err := m.Submit("a1", focal, []discovery.Candidate{
		cand(t, db, 2, 0.5),
		cand(t, db, 3, 0.6),
		cand(t, db, 4, 0.7),
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewIdealTupleOracle("a1", []relational.TupleID{tup(0), tup(2), tup(4)})
	acc, rej, err := m.ResolveWithOracle("a1", focal, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if len(acc) != 2 || len(rej) != 1 {
		t.Fatalf("accepted=%d rejected=%d", len(acc), len(rej))
	}
	if _, ok := store.Edge("a1", tup(2)); !ok {
		t.Error("oracle-accepted edge missing")
	}
	if _, ok := store.Edge("a1", tup(3)); ok {
		t.Error("oracle-rejected edge present")
	}
}

func TestAssess(t *testing.T) {
	db := fixtureDB(t, 20)
	// Ideal: focal tup(0) plus tuples 1..4 (N_ideal = 5, N_focal = 1).
	oracle := NewIdealTupleOracle("a1", []relational.TupleID{tup(0), tup(1), tup(2), tup(3), tup(4)})
	bounds := Bounds{Lower: 0.32, Upper: 0.86}
	candidates := []discovery.Candidate{
		cand(t, db, 1, 0.95), // accept, true  -> N_accept-T
		cand(t, db, 9, 0.90), // accept, false -> N_accept-F
		cand(t, db, 2, 0.50), // verify, true  -> N_verify-T
		cand(t, db, 8, 0.40), // verify, false -> N_verify-F
		cand(t, db, 3, 0.10), // reject (true edge lost -> F_N)
	}
	a := Assess("a1", candidates, bounds, oracle, 5, 1)
	if a.NAcceptT != 1 || a.NAcceptF != 1 || a.NVerifyT != 1 || a.NVerifyF != 1 || a.NReject != 1 {
		t.Fatalf("counters: %+v", a)
	}
	// F_N = (5 - (1+1+1))/5 = 0.4
	if a.FN != 0.4 {
		t.Errorf("FN = %f", a.FN)
	}
	// F_P = 1 / (1 + 2 + 1) = 0.25
	if a.FP != 0.25 {
		t.Errorf("FP = %f", a.FP)
	}
	if a.MF != 2 || a.MH != 0.5 {
		t.Errorf("MF=%f MH=%f", a.MF, a.MH)
	}
}

func TestAssessClampsAndZeroDenominators(t *testing.T) {
	a := Assess("a1", nil, Bounds{Lower: 0.3, Upper: 0.9}, NewIdealTupleOracle("a1", nil), 0, 0)
	if a.FN != 0 || a.FP != 0 || a.MF != 0 || a.MH != 0 {
		t.Errorf("empty assess: %+v", a)
	}
}

func TestAverage(t *testing.T) {
	avg := Average([]Assessment{
		{FN: 0.2, FP: 0.0, MF: 10, MH: 1.0},
		{FN: 0.4, FP: 0.2, MF: 20, MH: 0.5},
	})
	approx := func(got, want float64) bool { d := got - want; return d < 1e-9 && d > -1e-9 }
	if !approx(avg.FN, 0.3) || !approx(avg.FP, 0.1) || avg.MF != 15 || avg.MH != 0.75 {
		t.Errorf("avg = %+v", avg)
	}
	if z := Average(nil); z.FN != 0 {
		t.Error("empty average should be zero")
	}
}

func TestBoundsSetting(t *testing.T) {
	db := fixtureDB(t, 30)
	// Training annotations: each related to 4 tuples. Discovery returns
	// true candidates with high confidence and noise with low confidence —
	// a separable distribution the grid search can exploit.
	var training []TrainingExample
	for i := 0; i < 5; i++ {
		a := &annotation.Annotation{ID: annotation.ID(fmt.Sprintf("t%d", i)), Body: "training"}
		ideal := []relational.TupleID{tup(i), tup(i + 5), tup(i + 10), tup(i + 15)}
		training = append(training, TrainingExample{Annotation: a, Ideal: ideal})
	}
	discover := func(a *annotation.Annotation, focal []relational.TupleID) ([]discovery.Candidate, error) {
		// Recover the index from the ID.
		var i int
		fmt.Sscanf(string(a.ID), "t%d", &i)
		return []discovery.Candidate{
			cand(t, db, i+5, 0.9),   // hidden true attachment, high conf
			cand(t, db, i+10, 0.75), // hidden true attachment, mid conf
			cand(t, db, i+15, 0.7),  // hidden true attachment, mid conf
			cand(t, db, i+20, 0.2),  // noise, low conf
		}, nil
	}
	bounds, evals, err := BoundsSetting(training, discover, DefaultBoundsConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(evals) == 0 {
		t.Fatal("no evaluations")
	}
	if err := bounds.Validate(); err != nil {
		t.Fatalf("invalid bounds: %v", err)
	}
	// The separable distribution admits fully automatic bounds: noise at
	// 0.2 rejected, everything real accepted. Expect low expert effort.
	var chosen *BoundsEvaluation
	for i := range evals {
		if evals[i].Bounds == bounds {
			chosen = &evals[i]
		}
	}
	if chosen == nil {
		t.Fatal("chosen bounds missing from evaluations")
	}
	if !chosen.Feasible {
		t.Errorf("chosen bounds infeasible: %+v", chosen)
	}
	if chosen.Assessment.MF > 1 {
		t.Errorf("expert effort not minimized: %+v", chosen.Assessment)
	}
	if chosen.Assessment.FN > 0.25 || chosen.Assessment.FP > 0.25 {
		t.Errorf("quality ceilings violated: %+v", chosen.Assessment)
	}
}

func TestBoundsSettingErrors(t *testing.T) {
	discover := func(a *annotation.Annotation, focal []relational.TupleID) ([]discovery.Candidate, error) {
		return nil, nil
	}
	if _, _, err := BoundsSetting(nil, discover, DefaultBoundsConfig()); err == nil {
		t.Error("empty training should fail")
	}
	tr := []TrainingExample{{Annotation: &annotation.Annotation{ID: "x"}, Ideal: []relational.TupleID{tup(0)}}}
	cfg := DefaultBoundsConfig()
	cfg.Distortion = 0
	if _, _, err := BoundsSetting(tr, discover, cfg); err == nil {
		t.Error("zero distortion should fail")
	}
	cfg = DefaultBoundsConfig()
	cfg.Grid = nil
	if _, _, err := BoundsSetting(tr, discover, cfg); err == nil {
		t.Error("empty grid should fail")
	}
	// Discover errors propagate.
	bad := func(a *annotation.Annotation, focal []relational.TupleID) ([]discovery.Candidate, error) {
		return nil, fmt.Errorf("boom")
	}
	if _, _, err := BoundsSetting(tr, bad, DefaultBoundsConfig()); err == nil {
		t.Error("discover error should propagate")
	}
}

func TestDegenerateBoundsNoExperts(t *testing.T) {
	// β_lower = β_upper = 0.5: every prediction is decided automatically
	// (M_F = 0), reproducing the Figure 15(b) configuration.
	db := fixtureDB(t, 10)
	oracle := NewIdealTupleOracle("a1", []relational.TupleID{tup(0), tup(1)})
	b := Bounds{Lower: 0.5, Upper: 0.5}
	a := Assess("a1", []discovery.Candidate{
		cand(t, db, 1, 0.9), // accepted, true
		cand(t, db, 2, 0.8), // accepted, false -> F_P > 0
		cand(t, db, 3, 0.2), // rejected
	}, b, oracle, 2, 1)
	if a.MF != 0 {
		t.Errorf("no-expert config has MF = %f", a.MF)
	}
	if a.FP == 0 {
		t.Error("expected false positives without expert screening")
	}
}

func TestDecisionString(t *testing.T) {
	for d, want := range map[Decision]string{
		Pending: "pending", AutoAccepted: "auto-accepted", AutoRejected: "auto-rejected",
		ExpertAccepted: "expert-accepted", ExpertRejected: "expert-rejected",
	} {
		if d.String() != want {
			t.Errorf("%d.String() = %q", d, d.String())
		}
	}
	task := Task{VID: 7, Annotation: "a1", Tuple: tup(1), Confidence: 0.5}
	if task.String() == "" {
		t.Error("Task.String empty")
	}
}

func TestManagerSetBounds(t *testing.T) {
	_, _, _, _, m := managerFixture(t)
	if err := m.SetBounds(Bounds{Lower: 0.9, Upper: 0.1}); err == nil {
		t.Error("invalid bounds accepted")
	}
	if err := m.SetBounds(Bounds{Lower: 0.2, Upper: 0.8}); err != nil {
		t.Fatal(err)
	}
	if m.Bounds().Lower != 0.2 {
		t.Error("bounds not updated")
	}
	if _, err := NewManager(annotation.NewStore(), nil, nil, Bounds{Lower: 1, Upper: 0}); err == nil {
		t.Error("NewManager accepted invalid bounds")
	}
}

func TestPendingTasksByPriority(t *testing.T) {
	db, _, _, _, m := managerFixture(t)
	focal := []relational.TupleID{tup(0)}
	_, err := m.Submit("a1", focal, []discovery.Candidate{
		cand(t, db, 2, 0.40),
		cand(t, db, 3, 0.80),
		cand(t, db, 4, 0.60),
	})
	if err != nil {
		t.Fatal(err)
	}
	tasks := m.PendingTasksByPriority()
	if len(tasks) != 3 {
		t.Fatalf("tasks = %d", len(tasks))
	}
	if tasks[0].Confidence != 0.80 || tasks[1].Confidence != 0.60 || tasks[2].Confidence != 0.40 {
		t.Errorf("not priority ordered: %v %v %v",
			tasks[0].Confidence, tasks[1].Confidence, tasks[2].Confidence)
	}
}
