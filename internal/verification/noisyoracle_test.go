package verification

import (
	"testing"

	"nebula/internal/discovery"
	"nebula/internal/relational"
)

func TestNoisyOracleZeroRateIsTransparent(t *testing.T) {
	base := NewIdealTupleOracle("a1", []relational.TupleID{tup(1), tup(2)})
	noisy := NewNoisyOracle(base, 0, 7)
	for i := 0; i < 10; i++ {
		if noisy.IsRelated("a1", tup(i)) != base.IsRelated("a1", tup(i)) {
			t.Fatalf("zero-rate oracle flipped tuple %d", i)
		}
	}
}

func TestNoisyOracleDeterministicPerPair(t *testing.T) {
	base := NewIdealTupleOracle("a1", []relational.TupleID{tup(1)})
	noisy := NewNoisyOracle(base, 0.5, 99)
	for i := 0; i < 20; i++ {
		first := noisy.IsRelated("a1", tup(i))
		for k := 0; k < 3; k++ {
			if noisy.IsRelated("a1", tup(i)) != first {
				t.Fatalf("non-deterministic answer for tuple %d", i)
			}
		}
	}
}

func TestNoisyOracleFlipRate(t *testing.T) {
	var ideal []relational.TupleID
	for i := 0; i < 500; i++ {
		ideal = append(ideal, tup(i))
	}
	base := NewIdealTupleOracle("a1", ideal)
	noisy := NewNoisyOracle(base, 0.2, 3)
	flips := 0
	for i := 0; i < 1000; i++ {
		if noisy.IsRelated("a1", tup(i)) != base.IsRelated("a1", tup(i)) {
			flips++
		}
	}
	if flips < 120 || flips > 280 {
		t.Errorf("flip count %d far from expected ~200", flips)
	}
	if NewNoisyOracle(base, -1, 1).errorRate != 0 {
		t.Error("negative rate not clamped")
	}
	if NewNoisyOracle(base, 2, 1).errorRate != 1 {
		t.Error(">1 rate not clamped")
	}
}

func TestNoisyExpertDegradesAssessment(t *testing.T) {
	// All candidates land in the expert band; half are truly related. A
	// perfect expert converts exactly the true half (M_H = 0.5); a noisy
	// expert's agreement with the truth drifts away from that.
	db := fixtureDB(t, 60)
	var ideal []relational.TupleID
	for i := 0; i < 30; i++ {
		ideal = append(ideal, tup(i))
	}
	base := NewIdealTupleOracle("a1", ideal)
	bounds := Bounds{Lower: 0.3, Upper: 0.9}
	var candidates []discovery.Candidate
	for i := 0; i < 60; i++ {
		candidates = append(candidates, cand(t, db, i, 0.5))
	}
	perfect := Assess("a1", candidates, bounds, base, 30, 0)
	noisy := Assess("a1", candidates, bounds, NewNoisyOracle(base, 0.3, 11), 30, 0)
	if perfect.MH != 0.5 {
		t.Fatalf("perfect M_H = %f, want 0.5", perfect.MH)
	}
	if noisy.MH == perfect.MH {
		t.Error("noise left the hit ratio untouched (statistically implausible)")
	}
	// With noise, some truly-related tuples are rejected by the expert:
	// the verified-true count drops, raising F_N.
	if noisy.FN <= perfect.FN {
		t.Errorf("noisy F_N %f should exceed perfect %f", noisy.FN, perfect.FN)
	}
}
