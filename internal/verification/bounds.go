package verification

import (
	"fmt"
	"sort"

	"nebula/internal/annotation"
	"nebula/internal/discovery"
	"nebula/internal/relational"
)

// TrainingExample is one annotation of the D_Training dataset of Figure 9:
// an annotation together with the complete set of tuples it is related to
// (its attachments in the ideal database).
type TrainingExample struct {
	// Annotation is the training annotation.
	Annotation *annotation.Annotation
	// Ideal lists all tuples the annotation is related to.
	Ideal []relational.TupleID
}

// DiscoverFunc runs the discovery pipeline for a (distorted) annotation:
// given the annotation and its remaining focal attachments, it returns the
// predicted candidates. BoundsSetting is generic over the pipeline so the
// same algorithm tunes bounds for any engine configuration.
type DiscoverFunc func(a *annotation.Annotation, focal []relational.TupleID) ([]discovery.Candidate, error)

// BoundsConfig parameterizes the BoundsSetting algorithm.
type BoundsConfig struct {
	// Distortion is Δ: the number of attachments kept per training
	// annotation while the rest are dropped (Step 1 of Figure 9). Δ = 1
	// reproduces the paper's default ("removing all its attachments to the
	// data tuples except one").
	Distortion int
	// Grid lists the candidate threshold values explored for both bounds.
	Grid []float64
	// MaxFN and MaxFP are the acceptable ceilings for the averaged F_N and
	// F_P ("keeping F_N and F_P within an acceptable range").
	MaxFN, MaxFP float64
	// HitRatioGuided enables the M_H-guided refinement (§7's second
	// enhancement): when the chosen bounds' M_H is very high, β_upper is
	// lowered a grid step if the result stays feasible, accepting more
	// predictions automatically.
	HitRatioGuided bool
}

// DefaultBoundsConfig returns the configuration used by the experiments:
// Δ=1 and a 0.1-granularity grid. The F_N/F_P ceilings are deliberately
// tight (0.10/0.05): with looser ceilings the search happily collapses to a
// fully automatic β_lower = β_upper point, and the whole point of the
// expert band is reaching quality a single threshold cannot.
func DefaultBoundsConfig() BoundsConfig {
	return BoundsConfig{
		Distortion: 1,
		Grid: []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
			0.6, 0.7, 0.8, 0.9, 1.0},
		MaxFN:          0.10,
		MaxFP:          0.05,
		HitRatioGuided: true,
	}
}

// BoundsEvaluation records the averaged assessment of one (β_lower,
// β_upper) setting over the training set.
type BoundsEvaluation struct {
	Bounds     Bounds
	Assessment Assessment
	Feasible   bool
}

// BoundsSetting implements Figure 9. For each training annotation it builds
// the distorted version (keep Δ attachments as the focal, hide the rest),
// runs discovery once, and then evaluates every grid setting of (β_lower ≤
// β_upper) against the hidden ground truth. It returns the best setting —
// the feasible one (F_N ≤ MaxFN, F_P ≤ MaxFP) with minimal expert effort
// M_F — together with the full evaluation table for inspection. When no
// setting is feasible it falls back to minimizing F_N + F_P, then M_F.
func BoundsSetting(training []TrainingExample, discover DiscoverFunc, cfg BoundsConfig) (Bounds, []BoundsEvaluation, error) {
	if len(training) == 0 {
		return Bounds{}, nil, fmt.Errorf("bounds setting: empty training set")
	}
	if cfg.Distortion < 1 {
		return Bounds{}, nil, fmt.Errorf("bounds setting: distortion %d < 1", cfg.Distortion)
	}
	if len(cfg.Grid) == 0 {
		return Bounds{}, nil, fmt.Errorf("bounds setting: empty grid")
	}

	// Step 1 + 2 — distort and discover once per example; candidates do
	// not depend on the bounds.
	type prepared struct {
		a          annotation.ID
		candidates []discovery.Candidate
		oracle     IdealTupleOracle
		nIdeal     int
		nFocal     int
	}
	prep := make([]prepared, 0, len(training))
	for _, ex := range training {
		if len(ex.Ideal) == 0 {
			continue
		}
		delta := cfg.Distortion
		if delta > len(ex.Ideal) {
			delta = len(ex.Ideal)
		}
		focal := ex.Ideal[:delta]
		cands, err := discover(ex.Annotation, focal)
		if err != nil {
			return Bounds{}, nil, fmt.Errorf("bounds setting: discover %s: %w", ex.Annotation.ID, err)
		}
		prep = append(prep, prepared{
			a:          ex.Annotation.ID,
			candidates: cands,
			oracle:     NewIdealTupleOracle(ex.Annotation.ID, ex.Ideal),
			nIdeal:     len(ex.Ideal),
			nFocal:     delta,
		})
	}
	if len(prep) == 0 {
		return Bounds{}, nil, fmt.Errorf("bounds setting: no usable training annotations")
	}

	grid := append([]float64(nil), cfg.Grid...)
	sort.Float64s(grid)

	// Step 3 — evaluate every (lower ≤ upper) pair.
	var evals []BoundsEvaluation
	for _, lo := range grid {
		for _, hi := range grid {
			if lo > hi {
				continue
			}
			b := Bounds{Lower: lo, Upper: hi}
			per := make([]Assessment, len(prep))
			for i, p := range prep {
				per[i] = Assess(p.a, p.candidates, b, p.oracle, p.nIdeal, p.nFocal)
			}
			avg := Average(per)
			evals = append(evals, BoundsEvaluation{
				Bounds:     b,
				Assessment: avg,
				Feasible:   avg.FN <= cfg.MaxFN && avg.FP <= cfg.MaxFP,
			})
		}
	}

	best := pickBest(evals)
	if cfg.HitRatioGuided {
		best = hitRatioRefine(best, evals, grid)
	}
	return best.Bounds, evals, nil
}

// pickBest selects the feasible evaluation with minimal M_F (ties broken by
// smaller F_N + F_P, then by wider automation band). Without a feasible
// setting, it minimizes F_N + F_P and then M_F.
func pickBest(evals []BoundsEvaluation) BoundsEvaluation {
	var best *BoundsEvaluation
	better := func(a, b *BoundsEvaluation) bool {
		if a.Feasible != b.Feasible {
			return a.Feasible
		}
		if a.Feasible {
			if a.Assessment.MF != b.Assessment.MF {
				return a.Assessment.MF < b.Assessment.MF
			}
			ra, rb := a.Assessment.FN+a.Assessment.FP, b.Assessment.FN+b.Assessment.FP
			if ra != rb {
				return ra < rb
			}
			return a.Bounds.Upper-a.Bounds.Lower < b.Bounds.Upper-b.Bounds.Lower
		}
		ra, rb := a.Assessment.FN+a.Assessment.FP, b.Assessment.FN+b.Assessment.FP
		if ra != rb {
			return ra < rb
		}
		return a.Assessment.MF < b.Assessment.MF
	}
	for i := range evals {
		if best == nil || better(&evals[i], best) {
			best = &evals[i]
		}
	}
	return *best
}

// hitRatioRefine lowers β_upper one grid step when the chosen setting's
// M_H is very high (most manually verified predictions get accepted anyway)
// and the adjusted setting remains feasible.
func hitRatioRefine(best BoundsEvaluation, evals []BoundsEvaluation, grid []float64) BoundsEvaluation {
	const highHitRatio = 0.9
	if best.Assessment.MH < highHitRatio {
		return best
	}
	// Find the grid value just below the current upper bound.
	prev := -1.0
	for _, g := range grid {
		if g < best.Bounds.Upper && g >= best.Bounds.Lower {
			prev = g
		}
	}
	if prev < 0 {
		return best
	}
	for i := range evals {
		e := &evals[i]
		if e.Bounds.Lower == best.Bounds.Lower && e.Bounds.Upper == prev && e.Feasible {
			return *e
		}
	}
	return best
}
