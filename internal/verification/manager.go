package verification

import (
	"fmt"
	"sort"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/discovery"
	"nebula/internal/relational"
)

// Manager routes predictions through the verification pipeline and applies
// the acceptance side effects the paper enumerates for the `Verify
// Attachment <vid>` command: (1) attach the annotation to the tuple as a
// True Attachment, (2) update the ACG, and (3) update the metadata profile
// that guides focal-based spreading. The same actions run for
// auto-accepted predictions.
type Manager struct {
	store   *annotation.Store
	graph   *acg.Graph
	profile *acg.Profile

	bounds  Bounds
	nextVID int64
	pending map[int64]*Task
}

// NewManager builds a verification manager. graph and profile may be nil if
// the deployment does not maintain them; the corresponding side effects are
// skipped.
func NewManager(store *annotation.Store, graph *acg.Graph, profile *acg.Profile, bounds Bounds) (*Manager, error) {
	if err := bounds.Validate(); err != nil {
		return nil, err
	}
	return &Manager{
		store:   store,
		graph:   graph,
		profile: profile,
		bounds:  bounds,
		pending: make(map[int64]*Task),
	}, nil
}

// Bounds returns the current thresholds.
func (m *Manager) Bounds() Bounds { return m.bounds }

// NextVID returns the VID the next submitted task will receive. The WAL
// records it with each submission so replay reproduces identical task
// identifiers.
func (m *Manager) NextVID() int64 { return m.nextVID }

// SetNextVID pins the VID counter — the replay half of NextVID. It never
// moves the counter backwards past an issued VID's successor would allow:
// callers replaying history pass the recorded FirstVID, which by
// construction is >= every VID issued before it.
func (m *Manager) SetNextVID(v int64) {
	if v > m.nextVID {
		m.nextVID = v
	}
}

// ForceAccept applies the acceptance side effects (attach, ACG edge,
// profile update) for an attachment whose pending task no longer exists —
// the WAL-replay path for an expert verdict whose task cannot be found in
// the pending map (a snapshot written before the queue became snapshot
// state, with the submission itself pruned by a checkpoint). It is exactly
// Verify without the pending-map lookup.
func (m *Manager) ForceAccept(a annotation.ID, tuple relational.TupleID, focal []relational.TupleID) error {
	task := &Task{Annotation: a, Tuple: tuple, Decision: ExpertAccepted, Confidence: 1}
	return m.applyAcceptances(a, focal, []*Task{task})
}

// RestoreTasks reinstates a snapshot's pending expert queue and VID
// counter. The counter never moves backwards: it lands past both the
// recorded nextVID and every restored task's VID, so tasks submitted
// after a restore cannot collide with queued identifiers.
func (m *Manager) RestoreTasks(tasks []*Task, nextVID int64) {
	m.SetNextVID(nextVID)
	for _, t := range tasks {
		m.pending[t.VID] = t
		if t.VID >= m.nextVID {
			m.nextVID = t.VID + 1
		}
	}
}

// SetBounds replaces the thresholds (e.g. after a BoundsSetting run).
func (m *Manager) SetBounds(b Bounds) error {
	if err := b.Validate(); err != nil {
		return err
	}
	m.bounds = b
	return nil
}

// Outcome summarizes one Submit call.
type Outcome struct {
	// Accepted are the auto-accepted tasks (side effects applied).
	Accepted []*Task
	// Rejected are the auto-rejected tasks (discarded).
	Rejected []*Task
	// Pending are the tasks stored for expert verification.
	Pending []*Task
}

// Submit routes the discovered candidates of one annotation. Candidates
// above β_upper are accepted immediately; below β_lower they are discarded;
// the rest become pending tasks queryable via PendingTasks and resolvable
// with Verify/Reject.
//
// The hop-profile update runs against the ACG state *before* the new edges
// are added (per §6.3's profile-update protocol), so Submit measures all
// accepted tuples' distances first, then applies the graph updates.
func (m *Manager) Submit(a annotation.ID, focal []relational.TupleID, candidates []discovery.Candidate) (Outcome, error) {
	return m.submit(a, focal, candidates, false)
}

// SubmitDegraded routes the candidates of a degraded discovery run — one
// that was truncated by a budget, interrupted by a deadline, or forced off
// its configured search strategy. Confidences from such runs are computed
// against an incomplete evidence base (normalization saw only part of the
// result set), so nothing is auto-accepted: candidates that would clear
// β_upper become pending expert-verification tasks instead. Auto-rejection
// below β_lower still applies — a truncated run only ever under-reports
// confidence-inflating evidence for the tuples it did produce.
func (m *Manager) SubmitDegraded(a annotation.ID, focal []relational.TupleID, candidates []discovery.Candidate) (Outcome, error) {
	return m.submit(a, focal, candidates, true)
}

func (m *Manager) submit(a annotation.ID, focal []relational.TupleID, candidates []discovery.Candidate, degraded bool) (Outcome, error) {
	var out Outcome
	if _, ok := m.store.Get(a); !ok {
		return out, fmt.Errorf("verification: unknown annotation %q", a)
	}
	for _, c := range candidates {
		task := &Task{
			VID:        m.nextVID,
			Annotation: a,
			Tuple:      c.Tuple.ID,
			Confidence: c.Confidence,
			Evidence:   append([]string(nil), c.Evidence...),
			Decision:   m.bounds.Route(c.Confidence),
		}
		if degraded && task.Decision == AutoAccepted {
			task.Decision = Pending
		}
		m.nextVID++
		switch task.Decision {
		case AutoAccepted:
			out.Accepted = append(out.Accepted, task)
		case AutoRejected:
			out.Rejected = append(out.Rejected, task)
		default:
			m.pending[task.VID] = task
			out.Pending = append(out.Pending, task)
		}
	}
	if err := m.applyAcceptances(a, focal, out.Accepted); err != nil {
		return out, err
	}
	return out, nil
}

// Pending returns the pending task with the given VID, if any — the
// VID-keyed lookup behind `Verify/Reject Attachment <vid>`. O(1); the
// returned task is live and must not be mutated by callers.
func (m *Manager) Pending(vid int64) (*Task, bool) {
	t, ok := m.pending[vid]
	return t, ok
}

// applyAcceptances runs the acceptance side effects for a batch of tasks of
// one annotation.
func (m *Manager) applyAcceptances(a annotation.ID, focal []relational.TupleID, tasks []*Task) error {
	if len(tasks) == 0 {
		return nil
	}
	// Measure hop distances before mutating the graph.
	if m.profile != nil && m.graph != nil {
		for _, t := range tasks {
			hops, reachable := m.graph.HopsToAny(t.Tuple, focal)
			m.profile.Record(hops, reachable)
		}
	}
	for _, t := range tasks {
		if _, err := m.store.Attach(annotation.Attachment{
			Annotation: a,
			Tuple:      t.Tuple,
			Type:       annotation.TrueAttachment,
		}); err != nil {
			return fmt.Errorf("verification: %w", err)
		}
		if m.graph != nil {
			m.graph.AddAttachment(a, t.Tuple)
		}
	}
	return nil
}

// PendingTasks returns the stored pending tasks ordered by VID — the
// queryable system table of §7.
func (m *Manager) PendingTasks() []*Task {
	out := make([]*Task, 0, len(m.pending))
	for _, t := range m.pending {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].VID < out[j].VID })
	return out
}

// PendingTasksByPriority returns the pending tasks ordered for expert
// consumption: highest confidence first (the attachments most likely to
// convert), ties broken by VID. This is the ranking-and-prioritization
// surface of the paper's contribution list — experts with limited time
// work from the top.
func (m *Manager) PendingTasksByPriority() []*Task {
	out := m.PendingTasks()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].VID < out[j].VID
	})
	return out
}

// Verify implements `Verify Attachment <vid>`: the expert accepts the
// pending task, which triggers the same side effects as auto-acceptance.
// focal must be the annotation's focal at submission time (used for the
// profile update).
func (m *Manager) Verify(vid int64, focal []relational.TupleID) error {
	task, ok := m.pending[vid]
	if !ok {
		return fmt.Errorf("verification: no pending task v%d", vid)
	}
	delete(m.pending, vid)
	task.Decision = ExpertAccepted
	return m.applyAcceptances(task.Annotation, focal, []*Task{task})
}

// Reject implements `Reject Attachment <vid>`: the expert discards the
// pending task.
func (m *Manager) Reject(vid int64) error {
	task, ok := m.pending[vid]
	if !ok {
		return fmt.Errorf("verification: no pending task v%d", vid)
	}
	delete(m.pending, vid)
	task.Decision = ExpertRejected
	return nil
}

// CancelTasksForTuple discards every pending task targeting the tuple —
// the referential-integrity hook for tuple deletion. Cancelled tasks are
// marked ExpertRejected (the attachment can no longer exist). It returns
// the number of cancelled tasks.
func (m *Manager) CancelTasksForTuple(tuple relational.TupleID) int {
	n := 0
	for _, t := range m.PendingTasks() {
		if t.Tuple != tuple {
			continue
		}
		delete(m.pending, t.VID)
		t.Decision = ExpertRejected
		n++
	}
	return n
}

// CancelTasksForAnnotation discards every pending task of one annotation —
// the retraction hook for change-driven re-discovery: before an annotation
// is re-discovered its undecided tasks are superseded, because their
// confidences were computed over a database state that no longer exists.
// Cancelled tasks are marked ExpertRejected. It returns the number of
// cancelled tasks.
func (m *Manager) CancelTasksForAnnotation(a annotation.ID) int {
	n := 0
	for _, t := range m.PendingTasks() {
		if t.Annotation != a {
			continue
		}
		delete(m.pending, t.VID)
		t.Decision = ExpertRejected
		n++
	}
	return n
}

// ResolveWithOracle resolves every pending task of the annotation using an
// oracle (the experiments' simulated expert). It returns the positively and
// negatively verified tasks.
func (m *Manager) ResolveWithOracle(a annotation.ID, focal []relational.TupleID, oracle Oracle) (accepted, rejected []*Task, err error) {
	for _, t := range m.PendingTasks() {
		if t.Annotation != a {
			continue
		}
		if oracle.IsRelated(a, t.Tuple) {
			if err := m.Verify(t.VID, focal); err != nil {
				return nil, nil, err
			}
			accepted = append(accepted, t)
		} else {
			if err := m.Reject(t.VID); err != nil {
				return nil, nil, err
			}
			rejected = append(rejected, t)
		}
	}
	return accepted, rejected, nil
}
