package verification

import (
	"hash/fnv"
	"math/rand"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// NoisyOracle wraps another oracle with an error rate, modeling imperfect
// domain experts. The paper's evaluation assumes "experts do not make
// errors"; this wrapper lets deployments and experiments quantify how the
// assessment criteria degrade when they do.
//
// Decisions are deterministic per (annotation, tuple) pair for a given
// seed — the same question always receives the same (possibly wrong)
// answer, like a human with a fixed blind spot, and independent of the
// order in which tasks are resolved.
type NoisyOracle struct {
	base      Oracle
	errorRate float64
	seed      int64
}

// NewNoisyOracle wraps base with the given error probability in [0,1].
func NewNoisyOracle(base Oracle, errorRate float64, seed int64) *NoisyOracle {
	if errorRate < 0 {
		errorRate = 0
	}
	if errorRate > 1 {
		errorRate = 1
	}
	return &NoisyOracle{base: base, errorRate: errorRate, seed: seed}
}

// IsRelated returns the base oracle's answer, flipped with probability
// errorRate.
func (o *NoisyOracle) IsRelated(a annotation.ID, t relational.TupleID) bool {
	truth := o.base.IsRelated(a, t)
	if o.errorRate == 0 {
		return truth
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(a))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(t.Table))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(t.Key))
	rng := rand.New(rand.NewSource(o.seed ^ int64(h.Sum64())))
	if rng.Float64() < o.errorRate {
		return !truth
	}
	return truth
}
