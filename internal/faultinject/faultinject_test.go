package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"nebula/internal/keyword"
	"nebula/internal/relational"
)

// stub is a healthy inner searcher: one unit-confidence result per query.
type stub struct {
	batches int
}

func (s *stub) Execute(q keyword.Query) ([]keyword.Result, keyword.ExecStats, error) {
	return []keyword.Result{{Confidence: 1, Query: q.ID}}, keyword.ExecStats{StructuredQueries: 1}, nil
}

func (s *stub) ExecuteBatch(qs []keyword.Query, shared bool) (map[string][]keyword.Result, keyword.ExecStats, error) {
	return s.ExecuteBatchContext(context.Background(), qs, shared, keyword.Limits{})
}

func (s *stub) ExecuteBatchContext(ctx context.Context, qs []keyword.Query, shared bool, lim keyword.Limits) (map[string][]keyword.Result, keyword.ExecStats, error) {
	s.batches++
	out := make(map[string][]keyword.Result, len(qs))
	for _, q := range qs {
		out[q.ID] = []keyword.Result{{Confidence: 1, Query: q.ID}}
	}
	return out, keyword.ExecStats{StructuredQueries: len(qs)}, nil
}

func (s *stub) Database() *relational.Database { return nil }

func queries(n int) []keyword.Query {
	qs := make([]keyword.Query, n)
	for i := range qs {
		qs[i] = keyword.Query{ID: string(rune('a' + i)), Weight: 1}
	}
	return qs
}

func TestFailFirstIsTransientThenHeals(t *testing.T) {
	s := Wrap(&stub{}, Config{FailFirst: 2})
	for i := 0; i < 2; i++ {
		_, _, err := s.ExecuteBatch(queries(3), true)
		if err == nil {
			t.Fatalf("call %d: expected injected fault", i+1)
		}
		if !errors.Is(err, ErrInjected) {
			t.Errorf("call %d: error %v does not match ErrInjected", i+1, err)
		}
		var fe *Error
		if !errors.As(err, &fe) || !fe.Transient() {
			t.Errorf("call %d: expected transient fault, got %v", i+1, err)
		}
	}
	rs, _, err := s.ExecuteBatch(queries(3), true)
	if err != nil {
		t.Fatalf("call 3 should heal: %v", err)
	}
	if len(rs) != 3 {
		t.Errorf("healed call returned %d query results, want 3", len(rs))
	}
	if s.Injected() != 2 {
		t.Errorf("Injected() = %d, want 2", s.Injected())
	}
}

func TestFailEveryIsPersistent(t *testing.T) {
	s := Wrap(&stub{}, Config{FailEvery: 2})
	if _, _, err := s.ExecuteBatch(queries(1), false); err != nil {
		t.Fatalf("call 1: %v", err)
	}
	_, _, err := s.ExecuteBatch(queries(1), false)
	var fe *Error
	if !errors.As(err, &fe) {
		t.Fatalf("call 2: expected injected fault, got %v", err)
	}
	if fe.Transient() {
		t.Error("FailEvery fault must be persistent")
	}
	if fe.Call != 2 {
		t.Errorf("fault fired on call %d, want 2", fe.Call)
	}
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, FailProbability: 0.5}
	a, b := Wrap(&stub{}, cfg), Wrap(&stub{}, cfg)
	for i := 0; i < 50; i++ {
		_, _, errA := a.ExecuteBatch(queries(1), false)
		_, _, errB := b.ExecuteBatch(queries(1), false)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("call %d: schedules diverged (%v vs %v)", i+1, errA, errB)
		}
	}
	if a.Injected() != b.Injected() {
		t.Errorf("injected counts diverged: %d vs %d", a.Injected(), b.Injected())
	}
	if a.Injected() == 0 || a.Injected() == 50 {
		t.Errorf("p=0.5 over 50 calls injected %d faults; schedule looks degenerate", a.Injected())
	}
}

func TestPartialBatchRecordsDegraded(t *testing.T) {
	s := Wrap(&stub{}, Config{PartialEvery: 1})
	rs, stats, err := s.ExecuteBatch(queries(4), true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Errorf("partial batch answered %d queries, want 2", len(rs))
	}
	if len(stats.Degraded) != 1 {
		t.Fatalf("Degraded = %v, want one partial-batch reason", stats.Degraded)
	}
}

func TestLatencyHonorsContext(t *testing.T) {
	s := Wrap(&stub{}, Config{Latency: time.Minute})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err := s.ExecuteBatchContext(ctx, queries(1), false, keyword.Limits{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected deadline error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("latency sleep ignored the context (%v elapsed)", elapsed)
	}
}
