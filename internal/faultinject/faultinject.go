// Package faultinject wraps a keyword.Searcher with deterministic,
// seed-driven fault injection: transient and persistent errors, added
// latency, and partial batches. It exists to exercise the discovery
// pipeline's governance surfaces — retry-with-backoff, typed cancellation,
// degraded-run routing — without a flaky real substrate underneath the
// tests. Deployments can install it through Options.SearcherFactory.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"nebula/internal/keyword"
	"nebula/internal/relational"
)

// ErrInjected is the sentinel all injected faults match via errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is one injected fault. It implements the Transient() classification
// the discoverer's retry policy keys on: transient faults are retried with
// capped backoff, persistent ones surface immediately.
type Error struct {
	// Call is the 1-based batch-call ordinal the fault fired on.
	Call int
	// Persistent marks faults the retry policy must not absorb.
	Persistent bool
}

func (e *Error) Error() string {
	kind := "transient"
	if e.Persistent {
		kind = "persistent"
	}
	return fmt.Sprintf("faultinject: injected %s fault on call %d", kind, e.Call)
}

// Transient reports whether a retry may succeed.
func (e *Error) Transient() bool { return !e.Persistent }

// Is matches the ErrInjected sentinel.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Config selects which faults to inject. The zero value injects nothing.
// All schedules are keyed on the wrapper's batch-call counter and, for
// FailProbability, on a rand.Rand seeded with Seed — two searchers built
// from the same Config observe the exact same fault sequence.
type Config struct {
	// Seed drives the probabilistic schedules. The same seed always
	// reproduces the same fault sequence.
	Seed int64
	// FailFirst makes the first N batch calls fail with a transient Error
	// — the canonical retry-until-healthy scenario.
	FailFirst int
	// FailEvery makes every Nth batch call (N, 2N, ...) fail with a
	// persistent Error. 0 disables.
	FailEvery int
	// FailProbability injects a transient Error on each batch call with
	// this probability, drawn from the seeded generator. 0 disables.
	FailProbability float64
	// Latency is added before each batch call, honoring ctx: if the
	// context dies during the sleep, its error is returned with no results
	// — the searcher never ran.
	Latency time.Duration
	// PartialEvery makes every Nth batch call answer only the first half
	// of its queries (at least one), recording the drop in
	// ExecStats.Degraded. 0 disables.
	PartialEvery int
}

// Searcher wraps an inner keyword.Searcher with the configured faults.
// It is safe for concurrent use; the fault schedule serializes on an
// internal mutex so the call ordinals stay deterministic.
type Searcher struct {
	inner keyword.Searcher
	cfg   Config

	mu       sync.Mutex
	rng      *rand.Rand
	calls    int
	injected int
}

// Wrap builds a fault-injecting searcher around inner.
func Wrap(inner keyword.Searcher, cfg Config) *Searcher {
	return &Searcher{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Calls returns how many batch calls the searcher has observed.
func (s *Searcher) Calls() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

// Injected returns how many faults (errors and partial batches) have fired.
func (s *Searcher) Injected() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.injected
}

// plan advances the deterministic schedule by one batch call and decides
// what to inject.
func (s *Searcher) plan() (call int, fault *Error, partial bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	call = s.calls
	switch {
	case s.cfg.FailFirst > 0 && call <= s.cfg.FailFirst:
		fault = &Error{Call: call}
	case s.cfg.FailEvery > 0 && call%s.cfg.FailEvery == 0:
		fault = &Error{Call: call, Persistent: true}
	case s.cfg.FailProbability > 0 && s.rng.Float64() < s.cfg.FailProbability:
		fault = &Error{Call: call}
	case s.cfg.PartialEvery > 0 && call%s.cfg.PartialEvery == 0:
		partial = true
	}
	if fault != nil || partial {
		s.injected++
	}
	return call, fault, partial
}

// sleep waits the configured latency, aborting early if ctx dies.
func (s *Searcher) sleep(ctx context.Context) error {
	if s.cfg.Latency <= 0 {
		return nil
	}
	if ctx.Done() == nil {
		time.Sleep(s.cfg.Latency)
		return nil
	}
	t := time.NewTimer(s.cfg.Latency)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Execute runs one query through the inner technique, unfaulted: the
// discovery pipeline drives batches, which is where the schedules apply.
func (s *Searcher) Execute(q keyword.Query) ([]keyword.Result, keyword.ExecStats, error) {
	return s.inner.Execute(q)
}

// ExecuteBatch delegates to ExecuteBatchContext without governance.
func (s *Searcher) ExecuteBatch(qs []keyword.Query, shared bool) (map[string][]keyword.Result, keyword.ExecStats, error) {
	return s.ExecuteBatchContext(context.Background(), qs, shared, keyword.Limits{})
}

// ExecuteBatchContext applies the fault schedule, then delegates to the
// inner technique. Injected errors carry no results (the batch "failed");
// partial batches run the inner technique on a prefix of the queries and
// record the drop as a Degraded reason.
func (s *Searcher) ExecuteBatchContext(ctx context.Context, qs []keyword.Query, shared bool, lim keyword.Limits) (map[string][]keyword.Result, keyword.ExecStats, error) {
	call, fault, partial := s.plan()
	if err := s.sleep(ctx); err != nil {
		return nil, keyword.ExecStats{}, err
	}
	if fault != nil {
		return nil, keyword.ExecStats{}, fault
	}
	if partial && len(qs) > 1 {
		keep := len(qs) / 2
		if keep < 1 {
			keep = 1
		}
		rs, stats, err := s.inner.ExecuteBatchContext(ctx, qs[:keep], shared, lim)
		stats.Degraded = append(stats.Degraded,
			fmt.Sprintf("faultinject: partial batch on call %d (%d of %d queries answered)", call, keep, len(qs)))
		return rs, stats, err
	}
	return s.inner.ExecuteBatchContext(ctx, qs, shared, lim)
}

// Database returns the inner technique's bound database.
func (s *Searcher) Database() *relational.Database { return s.inner.Database() }

var _ keyword.Searcher = (*Searcher)(nil)
