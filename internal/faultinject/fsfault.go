package faultinject

import (
	"fmt"
	"io"
	"sync"

	"nebula/internal/vfs"
)

// FSError is one injected filesystem fault. It matches the package's
// ErrInjected sentinel via errors.Is, so tests distinguish injected
// failures from real ones.
type FSError struct {
	// Op names the faulted operation ("write", "sync", "rename", "create",
	// "syncdir", "remove", "truncate").
	Op string
	// Call is the 1-based per-operation ordinal the fault fired on.
	Call int
}

func (e *FSError) Error() string {
	return fmt.Sprintf("faultinject: injected %s fault on call %d", e.Op, e.Call)
}

// Is matches the ErrInjected sentinel.
func (e *FSError) Is(target error) bool { return target == ErrInjected }

// FSConfig schedules filesystem faults by deterministic per-operation
// ordinals (1-based; 0 disables). Two FS wrappers built from the same
// config over the same operation sequence observe the exact same faults,
// which is what lets the crash-recovery matrix enumerate failure points.
type FSConfig struct {
	// ShortWriteAt makes the Nth File.Write (counted across all files
	// created through this FS) write only the first half of its buffer and
	// then fail — the torn-write shape: some bytes hit the file, the
	// caller sees an error.
	ShortWriteAt int
	// FailWriteAt makes the Nth File.Write fail writing nothing.
	FailWriteAt int
	// FailSyncAt makes the Nth File.Sync fail (fsyncgate: the kernel may
	// have dropped the dirty pages while reporting them clean).
	FailSyncAt int
	// FailCreateAt makes the Nth Create fail.
	FailCreateAt int
	// FailRenameAt makes the Nth Rename fail.
	FailRenameAt int
	// FailDirSyncAt makes the Nth SyncDir fail.
	FailDirSyncAt int
	// FailRemoveAt makes the Nth Remove fail.
	FailRemoveAt int
	// FailTruncateAt makes the Nth Truncate fail (a torn-tail heal that
	// cannot reach the disk).
	FailTruncateAt int
}

// FaultFS wraps a vfs.FS with the configured fault schedule. Safe for
// concurrent use; ordinals serialize on an internal mutex.
type FaultFS struct {
	inner vfs.FS
	cfg   FSConfig

	mu        sync.Mutex
	writes    int
	syncs     int
	creates   int
	renames   int
	dirSyncs  int
	removes   int
	truncates int
	injected  int
}

// WrapFS builds a fault-injecting filesystem around inner (nil selects the
// real OS).
func WrapFS(inner vfs.FS, cfg FSConfig) *FaultFS {
	if inner == nil {
		inner = vfs.OS{}
	}
	return &FaultFS{inner: inner, cfg: cfg}
}

// Injected returns how many faults have fired.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Writes returns how many File.Write calls the FS has observed — tests use
// it to size ShortWriteAt/FailWriteAt schedules after a clean dry run.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// fire advances one op counter and reports whether the configured ordinal
// was hit.
func (f *FaultFS) fire(counter *int, at int) (int, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	*counter++
	if at > 0 && *counter == at {
		f.injected++
		return *counter, true
	}
	return *counter, false
}

// Create implements vfs.FS.
func (f *FaultFS) Create(path string) (vfs.File, error) {
	if call, hit := f.fire(&f.creates, f.cfg.FailCreateAt); hit {
		return nil, &FSError{Op: "create", Call: call}
	}
	file, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

// Open implements vfs.FS. Reads are never faulted: replay's corruption
// handling is exercised with real truncated/corrupted files, not read
// errors.
func (f *FaultFS) Open(path string) (io.ReadCloser, error) { return f.inner.Open(path) }

// ReadDir implements vfs.FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.inner.ReadDir(dir) }

// Rename implements vfs.FS.
func (f *FaultFS) Rename(oldpath, newpath string) error {
	if call, hit := f.fire(&f.renames, f.cfg.FailRenameAt); hit {
		return &FSError{Op: "rename", Call: call}
	}
	return f.inner.Rename(oldpath, newpath)
}

// Remove implements vfs.FS.
func (f *FaultFS) Remove(path string) error {
	if call, hit := f.fire(&f.removes, f.cfg.FailRemoveAt); hit {
		return &FSError{Op: "remove", Call: call}
	}
	return f.inner.Remove(path)
}

// MkdirAll implements vfs.FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.inner.MkdirAll(dir) }

// SyncDir implements vfs.FS.
func (f *FaultFS) SyncDir(dir string) error {
	if call, hit := f.fire(&f.dirSyncs, f.cfg.FailDirSyncAt); hit {
		return &FSError{Op: "syncdir", Call: call}
	}
	return f.inner.SyncDir(dir)
}

// Stat implements vfs.FS.
func (f *FaultFS) Stat(path string) (int64, error) { return f.inner.Stat(path) }

// Truncate implements vfs.FS.
func (f *FaultFS) Truncate(path string, size int64) error {
	if call, hit := f.fire(&f.truncates, f.cfg.FailTruncateAt); hit {
		return &FSError{Op: "truncate", Call: call}
	}
	return f.inner.Truncate(path, size)
}

// faultFile threads the shared write/sync schedules through one handle.
type faultFile struct {
	fs    *FaultFS
	inner vfs.File
}

func (f *faultFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	f.fs.writes++
	call := f.fs.writes
	short := f.fs.cfg.ShortWriteAt > 0 && call == f.fs.cfg.ShortWriteAt
	fail := f.fs.cfg.FailWriteAt > 0 && call == f.fs.cfg.FailWriteAt
	if short || fail {
		f.fs.injected++
	}
	f.fs.mu.Unlock()
	if short {
		// Torn write: half the buffer lands, then the device "dies".
		n, err := f.inner.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, &FSError{Op: "write", Call: call}
	}
	if fail {
		return 0, &FSError{Op: "write", Call: call}
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	if call, hit := f.fs.fire(&f.fs.syncs, f.fs.cfg.FailSyncAt); hit {
		return &FSError{Op: "sync", Call: call}
	}
	return f.inner.Sync()
}

func (f *faultFile) Close() error { return f.inner.Close() }

func (f *faultFile) Name() string { return f.inner.Name() }

var _ vfs.FS = (*FaultFS)(nil)
