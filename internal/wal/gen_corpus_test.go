package wal

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

func TestGenCorpus(t *testing.T) {
	if os.Getenv("WAL_GEN_CORPUS") == "" {
		t.Skip("set WAL_GEN_CORPUS=1 to regenerate the checked-in fuzz corpus")
	}
	dir := "testdata/fuzz/FuzzWALRecord"
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	var inputs [][]byte
	for _, rec := range sampleRecords() {
		frame, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatal(err)
		}
		inputs = append(inputs, frame)
		inputs = append(inputs, frame[:len(frame)-3])
		inputs = append(inputs, append(append([]byte(nil), frame...), frame...))
		mut := append([]byte(nil), frame...)
		mut[len(mut)-1] ^= 0x01
		inputs = append(inputs, mut)
		hdr := append([]byte(nil), frame...)
		hdr[4] ^= 0x80 // checksum word
		inputs = append(inputs, hdr)
	}
	inputs = append(inputs, []byte{})
	inputs = append(inputs, []byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0})
	for i, in := range inputs {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(in)) + ")\n"
		name := fmt.Sprintf("%s/seed-%03d", dir, i)
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("wrote %d corpus entries", len(inputs))
}
