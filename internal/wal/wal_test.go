package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nebula/internal/faultinject"
	"nebula/internal/vfs"
)

func sampleRecords() []*Record {
	return []*Record{
		{Op: OpAddAnnotation, Ann: "a1", Author: "alice", Body: "gene JW00014 regulates stress response", Kind: "comment",
			AttachTo: []TupleRef{{Table: "Gene", Key: "jw00014"}}},
		{Op: OpInsertRow, Table: "Gene", Values: []Cell{{Kind: 0, Str: "JW99999"}, {Kind: 1, Int: 1342}, {Kind: 2, Flt: 0.5}}},
		{Op: OpUpdateRow, Tuple: TupleRef{Table: "Gene", Key: "jw99999"}, Column: "Length", Value: Cell{Kind: 1, Int: 99}},
		{Op: OpSubmit, Ann: "a1", Focal: []TupleRef{{Table: "Gene", Key: "jw00014"}},
			Candidates: []CandidateRef{{Tuple: TupleRef{Table: "Protein", Key: "p00001"}, Confidence: 0.9, Evidence: []string{"q1", "q2"}}},
			Degraded:   true, FirstVID: 7},
		{Op: OpVerdict, Ann: "a1", Tuple: TupleRef{Table: "Protein", Key: "p00001"}, VID: 7, Accept: true},
		{Op: OpDeleteRow, Tuple: TupleRef{Table: "Gene", Key: "jw99999"}},
		{Op: OpDeleteTuple, Tuple: TupleRef{Table: "Gene", Key: "jw00014"}},
		{Op: OpSetBounds, Lower: 0.2, Upper: 0.85},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		frame, err := EncodeRecord(nil, rec)
		if err != nil {
			t.Fatalf("record %d: encode: %v", i, err)
		}
		got, err := DecodeRecord(bytes.NewReader(frame))
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Errorf("record %d (%v): round trip mismatch:\n got %+v\nwant %+v", i, rec.Op, got, rec)
		}
	}
}

func TestDecodeRecordCorruption(t *testing.T) {
	rec := sampleRecords()[0]
	frame, err := EncodeRecord(nil, rec)
	if err != nil {
		t.Fatal(err)
	}

	// Clean EOF on empty stream.
	if _, err := DecodeRecord(bytes.NewReader(nil)); !errors.Is(err, io.EOF) {
		t.Errorf("empty stream: want io.EOF, got %v", err)
	}
	// Every strict prefix of the frame is corrupt, never EOF, never a
	// record — a torn append must terminate replay, not be misread.
	for cut := 1; cut < len(frame); cut++ {
		if _, err := DecodeRecord(bytes.NewReader(frame[:cut])); !errors.Is(err, ErrCorruptRecord) {
			t.Fatalf("prefix %d/%d: want ErrCorruptRecord, got %v", cut, len(frame), err)
		}
	}
	// Any single flipped bit is caught by the guard or the checksum.
	for _, pos := range []int{0, 5, 9, frameHeaderSize, len(frame) - 1} {
		mut := append([]byte(nil), frame...)
		mut[pos] ^= 0x40
		if _, err := DecodeRecord(bytes.NewReader(mut)); !errors.Is(err, ErrCorruptRecord) {
			t.Errorf("flipped byte %d: want ErrCorruptRecord, got %v", pos, err)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := sampleRecords()
	var last LSN
	for _, rec := range want {
		last, err = l.Append(rec)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(last); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var got []*Record
	stats, err := Replay(dir, ReplayConfig{}, func(r *Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != len(want) || stats.CorruptTail || stats.ApplyErrors != 0 {
		t.Fatalf("stats = %+v, want %d clean records", stats, len(want))
	}
	if !reflect.DeepEqual(got, want) {
		t.Error("replayed records differ from appended records")
	}
}

func TestOpenAlwaysStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	for i := 1; i <= 3; i++ {
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := l.ActiveSegment(); got != uint64(i) {
			t.Fatalf("boot %d: active segment %d", i, got)
		}
		if _, err := l.Append(&Record{Op: OpSetBounds, Lower: float64(i)}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := ListSegments(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 {
		t.Fatalf("segments = %v", segs)
	}
	var lowers []float64
	if _, err := Replay(dir, ReplayConfig{}, func(r *Record) error {
		lowers = append(lowers, r.Lower)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lowers, []float64{1, 2, 3}) {
		t.Errorf("cross-segment replay order = %v", lowers)
	}
}

func TestRotateAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 2}); err != nil {
		t.Fatal(err)
	}
	boundary := l.ActiveSegment()
	if boundary != 2 {
		t.Fatalf("active segment after rotate = %d", boundary)
	}

	// Replay honoring the boundary sees only the post-rotation suffix.
	var lowers []float64
	stats, err := Replay(dir, ReplayConfig{FromSegment: boundary}, func(r *Record) error {
		lowers = append(lowers, r.Lower)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SkippedSegments != 1 || !reflect.DeepEqual(lowers, []float64{2}) {
		t.Errorf("boundary replay: stats=%+v lowers=%v", stats, lowers)
	}

	if err := l.PruneBefore(boundary); err != nil {
		t.Fatal(err)
	}
	segs, err := ListSegments(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(segs, []uint64{2}) {
		t.Errorf("segments after prune = %v", segs)
	}
	if st := l.Stats(); st.Rotations != 1 {
		t.Errorf("rotations = %d", st.Rotations)
	}
}

func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way into the final record.
	cut := len(data) - 3
	if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}
	n := 0
	stats, err := Replay(dir, ReplayConfig{}, func(*Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(recs)-1 || !stats.CorruptTail || stats.DiscardedBytes == 0 {
		t.Errorf("torn tail: applied=%d stats=%+v", n, stats)
	}
}

func TestInteriorCorruptionAborts(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 2}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt segment 1; segment 2 still has records, so this is not a
	// crash tail — replay must refuse rather than skip history.
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Replay(dir, ReplayConfig{}, func(*Record) error { return nil })
	if !errors.Is(err, ErrCorruptInterior) {
		t.Errorf("want ErrCorruptInterior, got %v", err)
	}
}

func TestGroupCommitAbsorption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn1, err := l.Append(&Record{Op: OpSetBounds, Lower: 1})
	if err != nil {
		t.Fatal(err)
	}
	lsn2, err := l.Append(&Record{Op: OpSetBounds, Lower: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(lsn2); err != nil {
		t.Fatal(err)
	}
	// lsn1 < lsn2 is already durable: this Sync must be absorbed, not
	// issue another fsync.
	if err := l.Sync(lsn1); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.Syncs != 1 || st.SyncAbsorbed != 1 || st.Durable != uint64(lsn2) {
		t.Errorf("stats = %+v", st)
	}
	if err := l.SyncAll(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.SyncAbsorbed != 2 {
		t.Errorf("SyncAll of durable prefix not absorbed: %+v", st)
	}
}

func TestSyncAlwaysMode(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append(&Record{Op: OpSetBounds, Lower: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Durable < uint64(lsn) || st.Syncs == 0 {
		t.Errorf("SyncAlways did not make the append durable: %+v", st)
	}
}

func TestFsyncFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	fsys := faultinject.WrapFS(nil, faultinject.FSConfig{FailSyncAt: 1})
	l, err := Open(dir, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(&Record{Op: OpSetBounds, Lower: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(lsn); !errors.Is(err, ErrFailed) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("faulted fsync: got %v", err)
	}
	// The log is now fail-stop: appends and syncs refuse.
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 2}); !errors.Is(err, ErrFailed) {
		t.Errorf("append after poison: got %v", err)
	}
	if err := l.SyncAll(); !errors.Is(err, ErrFailed) {
		t.Errorf("sync after poison: got %v", err)
	}
	l.Close()
}

func TestWriteFailurePoisonsLog(t *testing.T) {
	dir := t.TempDir()
	// First write is the appended frame (Open writes nothing).
	fsys := faultinject.WrapFS(nil, faultinject.FSConfig{ShortWriteAt: 1})
	l, err := Open(dir, Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 1}); !errors.Is(err, ErrFailed) {
		t.Fatalf("short write: got %v", err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 2}); !errors.Is(err, ErrFailed) {
		t.Errorf("append after torn write: got %v", err)
	}
	l.Close()

	// The half-written frame on disk is a torn tail: discarded at replay.
	stats, err := Replay(dir, ReplayConfig{}, func(*Record) error {
		return fmt.Errorf("nothing durable should apply")
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Records != 0 || !stats.CorruptTail {
		t.Errorf("stats = %+v", stats)
	}
}

func TestReplayApplyErrorsCountedNotFatal(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := l.Append(&Record{Op: OpSetBounds, Lower: float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n := 0
	stats, err := Replay(dir, ReplayConfig{}, func(r *Record) error {
		n++
		if int(r.Lower)%2 == 1 {
			return fmt.Errorf("deterministic apply failure")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 || stats.ApplyErrors != 2 {
		t.Errorf("applied=%d stats=%+v", n, stats)
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 1}); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	infos, err := Inspect(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Records != 1 || infos[1].Records != 2 {
		t.Errorf("infos = %+v", infos)
	}
	for _, info := range infos {
		if info.CorruptTail || info.Bytes == 0 {
			t.Errorf("segment %d: %+v", info.Segment, info)
		}
	}
}

func TestConcurrentCommitters(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, perWriter = 8, 25
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < perWriter; i++ {
				lsn, err := l.Append(&Record{Op: OpSetBounds, Lower: float64(w), Upper: float64(i)})
				if err != nil {
					errc <- err
					return
				}
				if err := l.Sync(lsn); err != nil {
					errc <- err
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appended != writers*perWriter {
		t.Fatalf("appended = %d", st.Appended)
	}
	if st.Durable != st.Appended {
		t.Fatalf("durable = %d of %d", st.Durable, st.Appended)
	}
	n := 0
	if _, err := Replay(dir, ReplayConfig{}, func(*Record) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*perWriter {
		t.Errorf("replayed %d records", n)
	}
}
