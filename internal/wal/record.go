package wal

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Op enumerates the logical mutation kinds the engine logs. Records are
// logical, not physical: each one replays deterministically against the
// engine state produced by the records before it, so snapshot + replay
// reconstructs the exact pre-crash state. Outcome-dependent operations
// (discovery submissions, oracle resolutions, bounds tuning) log their
// computed result, never the computation — replay must not depend on
// wall-clock budgets, oracles, or training runs.
type Op uint8

const (
	// OpAddAnnotation records AddAnnotation: a new annotation plus its
	// manual true attachments.
	OpAddAnnotation Op = iota + 1
	// OpDeleteTuple records DeleteTuple: full referential-integrity
	// removal of one data tuple.
	OpDeleteTuple
	// OpInsertRow records one row insert on a base table (MutateDB).
	OpInsertRow
	// OpUpdateRow records one single-column row update (MutateDB).
	OpUpdateRow
	// OpDeleteRow records one raw row delete on a base table (MutateDB;
	// distinct from OpDeleteTuple, which also detaches and cancels).
	OpDeleteRow
	// OpSubmit records the verification routing of one discovery's
	// computed candidates (Process/ProcessRequest Stage 3). FirstVID pins
	// the VID counter so replayed tasks get identical identifiers.
	OpSubmit
	// OpVerdict records one expert decision: accept or reject of a
	// pending verification task. The annotation and tuple travel with the
	// VID so acceptance effects can be re-applied even when the pending
	// task itself predates the last checkpoint.
	OpVerdict
	// OpSetBounds records a verification-threshold change (SetBounds or
	// the result of TuneBounds).
	OpSetBounds
	// OpIngestEnqueue records one ingest-queue admission (an async submit
	// or a change-driven re-discovery). The sequence number assigned live
	// travels with the record, so replay rebuilds the identical drain
	// order; a coalescing enqueue that upgraded a queued job's shape is
	// re-logged under the job's original sequence.
	OpIngestEnqueue
	// OpIngestRetract records the retraction phase of one drained ingest
	// job: the annotation's machine-derived attachments, their ACG edges,
	// and its pending verification tasks are removed before re-discovery.
	// Retraction is deterministic given the state the prior records
	// produced, so the record carries only the annotation.
	OpIngestRetract
	// OpIngestDone records the completion of one drained ingest job; the
	// submission itself was already logged as an OpSubmit. A replayed
	// queue is the enqueued jobs minus the done ones.
	OpIngestDone
)

func (o Op) String() string {
	switch o {
	case OpAddAnnotation:
		return "add_annotation"
	case OpDeleteTuple:
		return "delete_tuple"
	case OpInsertRow:
		return "insert_row"
	case OpUpdateRow:
		return "update_row"
	case OpDeleteRow:
		return "delete_row"
	case OpSubmit:
		return "submit"
	case OpVerdict:
		return "verdict"
	case OpSetBounds:
		return "set_bounds"
	case OpIngestEnqueue:
		return "ingest_enqueue"
	case OpIngestRetract:
		return "ingest_retract"
	case OpIngestDone:
		return "ingest_done"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// TupleRef names one tuple (table + canonical primary-key form). The WAL
// deliberately does not import the relational package: records must stay
// decodable by offline tooling without dragging the engine in.
type TupleRef struct {
	Table, Key string
}

func (t TupleRef) String() string { return t.Table + "/" + t.Key }

// Cell is one serialized column value. Kind mirrors relational.Type.
type Cell struct {
	Kind int
	Int  int64
	Flt  float64
	Str  string
}

// CandidateRef is one discovered candidate as routed to verification:
// enough to rebuild the verification task and its acceptance side effects.
type CandidateRef struct {
	Tuple      TupleRef
	Confidence float64
	Evidence   []string
}

// Record is one logged mutation. It is a tagged union over Op; unused
// fields stay zero and cost nothing in the gob encoding. Every record is
// encoded self-contained (its own gob stream), so replay after a torn tail
// never needs decoder state from a record that may not have survived.
type Record struct {
	Op Op

	// OpAddAnnotation
	Ann      string
	Author   string
	Body     string
	Kind     string
	AttachTo []TupleRef

	// OpDeleteTuple / OpDeleteRow / OpUpdateRow target tuple;
	// OpInsertRow uses Table + Values (the PK is one of the values).
	Tuple  TupleRef
	Table  string
	Column string
	Values []Cell
	Value  Cell

	// OpSubmit
	Focal      []TupleRef
	Candidates []CandidateRef
	Degraded   bool
	FirstVID   int64

	// OpVerdict
	VID    int64
	Accept bool

	// OpSetBounds
	Lower, Upper float64

	// OpIngestEnqueue (OpIngestRetract/OpIngestDone reuse Ann alone)
	JobKind  uint8
	Priority int
	Seq      uint64
}

// Frame layout: a fixed 12-byte header — payload length (uint32 LE),
// CRC32-Castagnoli of the payload (uint32 LE), and the two repeated XORed
// with frameGuard as a cheap header self-check — followed by the gob
// payload. The guard catches the common torn-write shape where the header
// bytes survive but belong to a different (partially overwritten) frame.
const frameHeaderSize = 12

// frameGuard mixes length and checksum into the third header word so a
// header whose fields were independently corrupted is rejected before the
// payload is even read.
const frameGuard = 0x57414c31 // "WAL1"

// maxRecordSize bounds one record's payload. The length field of a torn
// frame is attacker-controlled garbage; without a bound a flipped high bit
// would make replay try to buffer gigabytes before the CRC check fails.
const maxRecordSize = 64 << 20

// castagnoli matches the snapshot package's checksum choice.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorruptRecord reports a frame that failed integrity verification —
// short header, implausible length, header guard mismatch, truncated
// payload, or checksum failure. Replay treats it as the end of the durable
// prefix. Match with errors.Is.
var ErrCorruptRecord = errors.New("wal: corrupt record")

// EncodeRecord appends the framed record to buf and returns the extended
// slice.
func EncodeRecord(buf []byte, r *Record) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(r); err != nil {
		return nil, fmt.Errorf("wal: encode record: %w", err)
	}
	if payload.Len() > maxRecordSize {
		return nil, fmt.Errorf("wal: record payload %d bytes exceeds %d", payload.Len(), maxRecordSize)
	}
	length := uint32(payload.Len())
	sum := crc32.Checksum(payload.Bytes(), castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, length)
	buf = binary.LittleEndian.AppendUint32(buf, sum)
	buf = binary.LittleEndian.AppendUint32(buf, length^sum^frameGuard)
	return append(buf, payload.Bytes()...), nil
}

// DecodeRecord reads one framed record from r. It returns io.EOF at a
// clean end of stream (zero bytes where a frame would start) and
// ErrCorruptRecord for anything that fails verification — a partial
// header, a header that fails the guard check, a payload shorter than its
// declared length, a checksum mismatch, or an undecodable payload.
func DecodeRecord(r io.Reader) (*Record, error) {
	var head [frameHeaderSize]byte
	n, err := io.ReadFull(r, head[:])
	if n == 0 && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("%w: torn header (%d of %d bytes)", ErrCorruptRecord, n, frameHeaderSize)
	}
	length := binary.LittleEndian.Uint32(head[0:4])
	sum := binary.LittleEndian.Uint32(head[4:8])
	guard := binary.LittleEndian.Uint32(head[8:12])
	if length^sum^frameGuard != guard {
		return nil, fmt.Errorf("%w: header guard mismatch", ErrCorruptRecord)
	}
	if length > maxRecordSize {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptRecord, length)
	}
	payload := make([]byte, int(length))
	if m, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("%w: torn payload (%d of %d bytes)", ErrCorruptRecord, m, length)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorruptRecord, sum, got)
	}
	var rec Record
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
		// The checksum matched, so the bytes are what was written — but a
		// crash can tear a record into the tail of a *previous* incarnation
		// of the file on filesystems without write atomicity. Treat it as
		// corruption, not a format error.
		return nil, fmt.Errorf("%w: undecodable payload: %v", ErrCorruptRecord, err)
	}
	return &rec, nil
}
