package wal

import (
	"errors"
	"fmt"
	"io"
	"time"

	"nebula/internal/vfs"
)

// ReplayStats reports what a Replay pass found and did.
type ReplayStats struct {
	// Segments counts segment files visited (after FromSegment skipping).
	Segments int
	// SkippedSegments counts segments below FromSegment — history already
	// folded into the snapshot being replayed onto.
	SkippedSegments int
	// Records counts records decoded and handed to the apply callback.
	Records int
	// ApplyErrors counts records whose apply callback returned an error.
	// Replay continues past them: apply errors are deterministic
	// re-executions of operations that also failed on the live engine
	// (the WAL records intent before the engine validates it), so the
	// replayed state still converges on the pre-crash state.
	ApplyErrors int
	// CorruptTail reports that the LAST segment ended in a torn or
	// corrupt record, which was discarded — the expected signature of a
	// crash mid-append. Replay also truncates the segment file to its
	// durable prefix, so the tear cannot be misjudged as interior
	// corruption once later boots append to fresh segments.
	CorruptTail bool
	// DiscardedBytes counts the bytes of the discarded tail.
	DiscardedBytes int64
	// Duration is the wall time of the replay pass.
	Duration time.Duration
}

// ErrCorruptInterior reports corruption in a non-final segment: records
// exist in later segments, so the tear is not a crash tail — history has a
// hole and replaying past it would misapply every later record. Recovery
// must stop and surface this to the operator. Match with errors.Is.
var ErrCorruptInterior = errors.New("wal: corrupt record in non-final segment")

// ReplayConfig parameterizes Replay.
type ReplayConfig struct {
	// FS is the filesystem seam; nil selects the real OS.
	FS vfs.FS
	// FromSegment skips segments numbered below it — the segment boundary
	// recorded by the snapshot the replay is layered on. Zero replays
	// everything.
	FromSegment uint64
}

// Replay decodes every durable record in dir's segments, ascending, and
// hands each to apply. Torn or corrupt trailing records in the final
// segment are detected by the CRC framing, discarded — never misapplied —
// and the segment file is truncated to its durable prefix: every boot
// appends to a fresh segment, so a tail left in place would read as
// interior corruption (and refuse recovery) one restart later. The same
// corruption found in an interior segment aborts with ErrCorruptInterior.
// Apply errors are counted but do not stop the pass (see
// ReplayStats.ApplyErrors).
func Replay(dir string, cfg ReplayConfig, apply func(*Record) error) (ReplayStats, error) {
	start := time.Now()
	fsys := cfg.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	var stats ReplayStats
	segs, err := ListSegments(fsys, dir)
	if err != nil {
		return stats, err
	}
	// A corrupt tail is only legitimate in the last segment that contains
	// any data at all; find each segment's outcome first, then judge.
	type segResult struct {
		seg       uint64
		records   []*Record
		corruptAt int64 // -1 when clean
		size      int64
	}
	var results []segResult
	for _, seg := range segs {
		if seg < cfg.FromSegment {
			stats.SkippedSegments++
			continue
		}
		res := segResult{seg: seg, corruptAt: -1}
		if err := func() error {
			f, err := fsys.Open(dir + "/" + segmentName(seg))
			if err != nil {
				return fmt.Errorf("wal: open segment %d: %w", seg, err)
			}
			defer f.Close()
			cr := &countingReader{r: f}
			for {
				frameStart := cr.n
				rec, err := DecodeRecord(cr)
				if errors.Is(err, io.EOF) {
					return nil
				}
				if errors.Is(err, ErrCorruptRecord) {
					// The discarded tail starts where the failing frame
					// began, not where decoding gave up.
					res.corruptAt = frameStart
					// Drain to measure the discarded tail.
					rest, _ := io.Copy(io.Discard, cr.r)
					res.size = cr.n + rest
					return nil
				}
				if err != nil {
					return fmt.Errorf("wal: segment %d: %w", seg, err)
				}
				res.records = append(res.records, rec)
			}
		}(); err != nil {
			return stats, err
		}
		stats.Segments++
		results = append(results, res)
	}
	// Judge corruption placement: only the last segment with content may
	// have a torn tail.
	for i, res := range results {
		if res.corruptAt < 0 {
			continue
		}
		for _, later := range results[i+1:] {
			if len(later.records) > 0 || later.corruptAt >= 0 {
				return stats, fmt.Errorf("%w: segment %d torn at byte %d but segment %d has records",
					ErrCorruptInterior, res.seg, res.corruptAt, later.seg)
			}
		}
		stats.CorruptTail = true
		stats.DiscardedBytes += res.size - res.corruptAt
		// Heal the tear on disk, not just in memory: once this boot opens
		// a fresh segment, a tail left behind would make the NEXT boot see
		// corruption in a non-final segment and refuse recovery outright.
		// Failing to truncate is therefore fatal to recovery — proceeding
		// would arm exactly that trap.
		if err := fsys.Truncate(dir+"/"+segmentName(res.seg), res.corruptAt); err != nil {
			return stats, fmt.Errorf("wal: truncate torn segment %d to %d bytes: %w",
				res.seg, res.corruptAt, err)
		}
	}
	for _, res := range results {
		for _, rec := range res.records {
			stats.Records++
			if err := apply(rec); err != nil {
				stats.ApplyErrors++
			}
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// countingReader tracks bytes consumed so a corrupt frame's start offset
// can be reported for DiscardedBytes accounting.
type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// SegmentInfo describes one segment file for operator tooling (nebulactl
// wal-info).
type SegmentInfo struct {
	Segment uint64 `json:"segment"`
	Bytes   int64  `json:"bytes"`
	Records int    `json:"records"`
	// CorruptTail reports a torn/corrupt trailing record (discarded at
	// replay).
	CorruptTail bool `json:"corrupt_tail,omitempty"`
}

// Inspect scans dir's segments without applying anything and reports their
// shape — the read-only half of Replay, for tooling.
func Inspect(dir string, fsys vfs.FS) ([]SegmentInfo, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	segs, err := ListSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	var infos []SegmentInfo
	for _, seg := range segs {
		info := SegmentInfo{Segment: seg}
		if size, err := fsys.Stat(dir + "/" + segmentName(seg)); err == nil {
			info.Bytes = size
		}
		f, err := fsys.Open(dir + "/" + segmentName(seg))
		if err != nil {
			return nil, fmt.Errorf("wal: open segment %d: %w", seg, err)
		}
		for {
			_, err := DecodeRecord(f)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				info.CorruptTail = true
				break
			}
			info.Records++
		}
		f.Close()
		infos = append(infos, info)
	}
	return infos, nil
}
