package wal

// Regression tests for review findings: a torn tail must be healed on
// DISK during replay (not just skipped in memory), directory-listing
// failures must not read as "empty log", and Close must not race an
// in-flight fsync.

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"nebula/internal/faultinject"
	"nebula/internal/vfs"
)

// TestTornTailHealedAcrossBoots is the crash→boot→boot sequence that used
// to brick the log: boot 1 discards a torn tail but (before the fix) left
// it on disk and appended to a fresh segment, so boot 2 saw corruption in
// a non-final segment and refused with ErrCorruptInterior. Replay now
// truncates the torn segment to its durable prefix, so the second boot
// replays everything cleanly.
func TestTornTailHealedAcrossBoots(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for _, rec := range recs {
		if _, err := l.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 3 // tear mid-way into the final record
	if err := os.WriteFile(seg, data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	// Boot 1: the tear is detected, discarded, and healed on disk.
	stats, err := Replay(dir, ReplayConfig{}, func(*Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CorruptTail || stats.Records != len(recs)-1 {
		t.Fatalf("boot 1 stats = %+v, want corrupt tail after %d records", stats, len(recs)-1)
	}
	size, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(cut) - stats.DiscardedBytes; size.Size() != want {
		t.Fatalf("torn segment is %d bytes on disk, want truncated to durable prefix %d", size.Size(), want)
	}
	// Boot 1 continues: a fresh segment takes new appends (no checkpoint).
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Append(&Record{Op: OpSetBounds, Lower: 0.3, Upper: 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Boot 2: before the fix this refused with ErrCorruptInterior.
	n := 0
	stats2, err := Replay(dir, ReplayConfig{}, func(*Record) error { n++; return nil })
	if err != nil {
		t.Fatalf("second boot refused recovery: %v", err)
	}
	if stats2.CorruptTail || n != len(recs) {
		t.Fatalf("boot 2: applied=%d stats=%+v, want %d clean records", n, stats2, len(recs))
	}
}

// TestTornTailTruncateFailureAbortsRecovery: if the heal cannot reach the
// disk the tail would resurface as interior corruption next boot, so
// recovery must fail loudly rather than proceed.
func TestTornTailTruncateFailureAbortsRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(&Record{Op: OpSetBounds, Lower: 0.3, Upper: 0.7}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	ffs := faultinject.WrapFS(nil, faultinject.FSConfig{FailTruncateAt: 1})
	_, err = Replay(dir, ReplayConfig{FS: ffs}, func(*Record) error { return nil })
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("replay with failing truncate: want injected error, got %v", err)
	}
}

// errReadDirFS fails every directory listing with a fixed error — the
// transient-I/O / permission-failure shape.
type errReadDirFS struct {
	vfs.FS
	err error
}

func (f errReadDirFS) ReadDir(dir string) ([]string, error) { return nil, f.err }

// TestListSegmentsReadDirErrors: only a missing directory is an empty
// log. Any other listing failure must propagate — swallowing it made
// Replay silently replay nothing and let Open truncate the real first
// segment with a fresh Create.
func TestListSegmentsReadDirErrors(t *testing.T) {
	// Missing directory: empty log, no error.
	segs, err := ListSegments(nil, filepath.Join(t.TempDir(), "nope"))
	if err != nil || segs != nil {
		t.Fatalf("missing dir: got (%v, %v), want empty log", segs, err)
	}

	// Any other failure propagates through ListSegments, Replay, and Open.
	boom := errors.New("transient I/O failure")
	ffs := errReadDirFS{FS: vfs.OS{}, err: boom}
	dir := t.TempDir()
	if _, err := ListSegments(ffs, dir); !errors.Is(err, boom) {
		t.Fatalf("ListSegments: want propagated error, got %v", err)
	}
	if _, err := Replay(dir, ReplayConfig{FS: ffs}, func(*Record) error { return nil }); !errors.Is(err, boom) {
		t.Fatalf("Replay: want propagated error, got %v", err)
	}
	if _, err := Open(dir, Options{FS: ffs}); !errors.Is(err, boom) {
		t.Fatalf("Open: want propagated error, got %v", err)
	}
	if _, err := Inspect(dir, ffs); !errors.Is(err, boom) {
		t.Fatalf("Inspect: want propagated error, got %v", err)
	}
}

// TestCloseRacesSync: Close holds the sync mutex, so a committer racing a
// graceful shutdown either fsyncs before the fd closes or finds its
// records covered by Close's final fsync — it must never see a sync error
// (EBADF on a closed fd) or ack without durability.
func TestCloseRacesSync(t *testing.T) {
	for i := 0; i < 50; i++ {
		dir := t.TempDir()
		l, err := Open(dir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lsn, err := l.Append(&Record{Op: OpSetBounds, Lower: 0.1, Upper: 0.9})
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		var syncErr error
		go func() {
			defer wg.Done()
			syncErr = l.Sync(lsn)
		}()
		closeErr := l.Close()
		wg.Wait()
		if syncErr != nil {
			t.Fatalf("iteration %d: Sync racing Close errored: %v", i, syncErr)
		}
		if closeErr != nil {
			t.Fatalf("iteration %d: Close: %v", i, closeErr)
		}
		if st := l.Stats(); st.Durable != st.Appended {
			t.Fatalf("iteration %d: durable %d != appended %d after close", i, st.Durable, st.Appended)
		}
	}
}

// TestSegmentNameRejectsForeignFiles guards the parse helper the listing
// fix leans on: foreign files in the directory stay invisible.
func TestSegmentNameRejectsForeignFiles(t *testing.T) {
	for _, name := range []string{"wal-x.log", "snapshot.nebsnap", "wal-1.txt", ".wal-0000000000000001.log.tmp"} {
		if _, ok := parseSegmentName(name); ok {
			t.Errorf("parseSegmentName(%q) accepted a foreign file", name)
		}
	}
	if n, ok := parseSegmentName(segmentName(42)); !ok || n != 42 {
		t.Errorf("parseSegmentName round trip failed: %d %v", n, ok)
	}
	if !strings.HasPrefix(segmentName(42), "wal-") {
		t.Error("segment naming convention changed")
	}
}
