package wal

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
)

// FuzzWALRecord drives DecodeRecord with arbitrary byte streams — the
// exact situation recovery faces when a crash tears the log tail into
// garbage. Properties: never panic, never allocate unboundedly (the
// maxRecordSize guard), classify every stream as clean EOF / record /
// ErrCorruptRecord, and round-trip any successfully decoded record
// byte-identically through EncodeRecord.
//
// Beyond the f.Add seeds below, testdata/fuzz/FuzzWALRecord holds a
// checked-in corpus of regression inputs; `make check` runs the corpus
// (and seeds) without fuzzing, `go test -fuzz=FuzzWALRecord ./internal/wal`
// explores from them.
func FuzzWALRecord(f *testing.F) {
	for _, rec := range sampleRecords() {
		frame, err := EncodeRecord(nil, rec)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)                     // valid frame
		f.Add(frame[:len(frame)-1])      // torn payload
		f.Add(frame[:frameHeaderSize-2]) // torn header
		f.Add(append(frame, frame...))   // two frames back to back
		f.Add(append(frame, 0x00))       // trailing garbage byte
		mut := append([]byte(nil), frame...)
		mut[frameHeaderSize] ^= 0xFF
		f.Add(mut) // payload bit rot
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0, 0, 0, 0, 0}) // huge declared length

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			rec, err := DecodeRecord(r)
			if errors.Is(err, io.EOF) {
				if r.Len() != 0 {
					t.Fatalf("clean EOF with %d bytes unread", r.Len())
				}
				return
			}
			if err != nil {
				if !errors.Is(err, ErrCorruptRecord) {
					t.Fatalf("error outside the corruption taxonomy: %v", err)
				}
				return // corrupt tail ends the stream, like replay does
			}
			// A decoded record must re-encode and decode to the same value
			// (replay state must not depend on which byte stream produced
			// the record).
			frame, err := EncodeRecord(nil, rec)
			if err != nil {
				t.Fatalf("re-encode of decoded record: %v", err)
			}
			back, err := DecodeRecord(bytes.NewReader(frame))
			if err != nil {
				t.Fatalf("decode of re-encoded record: %v", err)
			}
			if !reflect.DeepEqual(rec, back) {
				t.Fatalf("round trip mismatch: %+v vs %+v", rec, back)
			}
		}
	})
}
