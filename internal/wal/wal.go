// Package wal is Nebula's write-ahead log: an append-only, CRC32-framed,
// fsync-batched record of every engine mutation. Durability becomes
// incremental — recovery is the last checkpoint snapshot plus a
// deterministic replay of the log suffix — instead of "everything since
// the last full snapshot rewrite is gone".
//
// Layout: a log is a directory of numbered segment files
// (wal-0000000000000001.log, ...). Appends go to the highest-numbered
// (active) segment; a checkpoint rotates to a fresh segment, captures the
// engine state, persists it, and prunes the segments the snapshot now
// covers. Every boot starts a new segment, so a torn tail from a crash is
// never appended over — it is discarded once, at replay, by the CRC
// framing.
//
// Group commit: Append writes the framed record into the active segment
// (buffered by the OS) and returns a log sequence number; Sync(lsn) blocks
// until that LSN is on stable storage. Concurrent committers absorb each
// other's fsyncs — whoever reaches the sync mutex first flushes everything
// appended so far, and the committers queued behind it find their LSN
// already durable and return without touching the disk. Under a serialized
// writer this degrades gracefully to one fsync per commit; SyncAlways
// forces that mode explicitly for measurement, and SyncNone drops fsync
// entirely (tests and benchmarks only — crash durability is then the OS's
// page cache).
package wal

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nebula/internal/vfs"
)

// LSN is a log sequence number: the 1-based ordinal of a record across the
// log's lifetime (it does not reset on rotation).
type LSN uint64

// SyncMode selects the fsync policy.
type SyncMode int

const (
	// SyncGroup (default): Append buffers, Sync fsyncs with absorption —
	// concurrent committers share flushes.
	SyncGroup SyncMode = iota
	// SyncAlways: every Append fsyncs before returning. The slowest and
	// strongest mode; the bench harness measures it against SyncGroup.
	SyncAlways
	// SyncNone: never fsync. Crash durability is whatever the OS flushed.
	SyncNone
)

func (m SyncMode) String() string {
	switch m {
	case SyncAlways:
		return "always"
	case SyncNone:
		return "none"
	default:
		return "group"
	}
}

// Options configure Open.
type Options struct {
	// FS is the filesystem seam; nil selects the real OS.
	FS vfs.FS
	// Sync selects the fsync policy (default SyncGroup).
	Sync SyncMode
}

// ErrClosed reports an operation on a closed log.
var ErrClosed = errors.New("wal: log closed")

// ErrFailed reports a log poisoned by an earlier fsync or write failure.
// After fsync fails the durable prefix is unknowable (the kernel may have
// dropped the dirty pages while reporting the file clean), so the log
// refuses all further appends rather than risk acking writes it cannot
// prove durable. Recovery: restart the process and let boot-time replay
// re-establish the durable prefix from disk.
var ErrFailed = errors.New("wal: log failed")

// Stats is a point-in-time snapshot of the log's counters.
type Stats struct {
	// Appended counts records appended over this log's lifetime.
	Appended uint64
	// Durable is the highest LSN known to be on stable storage.
	Durable uint64
	// Syncs counts physical fsync calls issued.
	Syncs uint64
	// SyncAbsorbed counts Sync calls satisfied by another committer's
	// fsync (the group-commit win).
	SyncAbsorbed uint64
	// SyncNanos is the cumulative wall time spent inside fsync.
	SyncNanos int64
	// Rotations counts segment rotations.
	Rotations uint64
	// ActiveSegment is the segment currently appended to.
	ActiveSegment uint64
	// AppendedBytes counts framed bytes written.
	AppendedBytes uint64
}

// Log is an open write-ahead log. Safe for concurrent use.
type Log struct {
	fs  vfs.FS
	dir string

	mu      sync.Mutex // guards file, seg, appended, appendedBytes, failed, closed
	file    vfs.File
	seg     uint64
	failed  error
	closed  bool
	pending uint64 // records appended since the last fsync

	syncMu sync.Mutex // serializes fsyncs; held while the disk works
	mode   SyncMode

	statMu  sync.Mutex
	stats   Stats
	durable uint64 // guarded by statMu; also mirrored in stats.Durable
}

// segmentName formats a segment file name; 16 digits keep lexicographic
// and numeric order identical.
func segmentName(seg uint64) string { return fmt.Sprintf("wal-%016d.log", seg) }

// parseSegmentName extracts the segment number, reporting ok=false for
// foreign files in the directory.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// ListSegments returns the segment numbers present in dir, ascending. A
// missing directory is an empty log, not an error; any OTHER ReadDir
// failure propagates — treating a transient I/O or permission error as
// "no log" would silently replay nothing (losing all logged history) and
// let Open truncate the real first segment with a fresh Create.
func ListSegments(fsys vfs.FS, dir string) ([]uint64, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: read dir %s: %w", dir, err)
	}
	var segs []uint64
	for _, name := range names {
		if n, ok := parseSegmentName(name); ok {
			segs = append(segs, n)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// Open creates a log appending to a FRESH segment numbered one past the
// highest existing segment. Existing segments are left untouched for
// Replay — Open never appends to a file that may end in a torn record.
// The directory is created if missing.
func Open(dir string, opts Options) (*Log, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	segs, err := ListSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if len(segs) > 0 {
		next = segs[len(segs)-1] + 1
	}
	l := &Log{fs: fsys, dir: dir, seg: next, mode: opts.Sync}
	if err := l.openSegment(next); err != nil {
		return nil, err
	}
	// Make the new segment's name durable so a crash immediately after
	// boot cannot lose the file the engine believes it is logging to.
	if err := fsys.SyncDir(dir); err != nil {
		return nil, fmt.Errorf("wal: sync dir %s: %w", dir, err)
	}
	return l, nil
}

func (l *Log) openSegment(seg uint64) error {
	f, err := l.fs.Create(l.path(seg))
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", seg, err)
	}
	l.file = f
	l.seg = seg
	l.statMu.Lock()
	l.stats.ActiveSegment = seg
	l.statMu.Unlock()
	return nil
}

func (l *Log) path(seg uint64) string { return l.dir + "/" + segmentName(seg) }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// ActiveSegment returns the segment currently appended to.
func (l *Log) ActiveSegment() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seg
}

// Append frames and writes one record to the active segment and returns
// its LSN. Under SyncAlways the record is fsynced before Append returns;
// under SyncGroup the caller must Sync(lsn) before acknowledging the
// mutation as durable. Append never partially applies: on a write error
// the log is poisoned (ErrFailed) because the file tail is now undefined.
func (l *Log) Append(r *Record) (LSN, error) {
	frame, err := EncodeRecord(nil, r)
	if err != nil {
		return 0, err
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: %w", ErrFailed, err)
	}
	if _, err := l.file.Write(frame); err != nil {
		l.failed = err
		l.mu.Unlock()
		return 0, fmt.Errorf("%w: append: %w", ErrFailed, err)
	}
	l.pending++
	l.statMu.Lock()
	l.stats.Appended++
	l.stats.AppendedBytes += uint64(len(frame))
	lsn := LSN(l.stats.Appended)
	l.statMu.Unlock()
	l.mu.Unlock()

	if l.mode == SyncAlways {
		if err := l.Sync(lsn); err != nil {
			return lsn, err
		}
	}
	return lsn, nil
}

// Sync blocks until lsn is durable. Concurrent callers absorb each other:
// one fsync covers every record appended before it started.
func (l *Log) Sync(lsn LSN) error {
	if l.mode == SyncNone {
		return nil
	}
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.statMu.Lock()
	if l.durable >= uint64(lsn) {
		l.stats.SyncAbsorbed++
		l.statMu.Unlock()
		return nil
	}
	l.statMu.Unlock()

	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if l.failed != nil {
		err := l.failed
		l.mu.Unlock()
		return fmt.Errorf("%w: %w", ErrFailed, err)
	}
	file := l.file
	l.statMu.Lock()
	target := l.stats.Appended
	l.statMu.Unlock()
	l.pending = 0
	l.mu.Unlock()

	start := time.Now()
	err := file.Sync()
	elapsed := time.Since(start)
	if err != nil {
		// fsync failure: the kernel may have discarded dirty pages while
		// marking them clean, so nothing appended since the last good
		// fsync can be trusted. Poison the log (fail-stop) rather than
		// retry into a lie.
		l.mu.Lock()
		l.failed = err
		l.mu.Unlock()
		return fmt.Errorf("%w: fsync: %w", ErrFailed, err)
	}
	l.statMu.Lock()
	l.stats.Syncs++
	l.stats.SyncNanos += elapsed.Nanoseconds()
	if target > l.durable {
		l.durable = target
		l.stats.Durable = target
	}
	l.statMu.Unlock()
	return nil
}

// SyncAll blocks until every record appended so far is durable. The engine
// commits with it after releasing its state lock: the LSN bookkeeping stays
// inside the log, and absorbing a concurrent committer's fsync of a *later*
// LSN is just as correct (durability is prefix-closed).
func (l *Log) SyncAll() error {
	l.statMu.Lock()
	appended := l.stats.Appended
	l.statMu.Unlock()
	return l.Sync(LSN(appended))
}

// Rotate fsyncs and closes the active segment and starts the next one.
// The caller must guarantee no concurrent Append (the engine rotates under
// its state lock, which excludes all mutators). On return every previously
// appended record is durable in a sealed segment.
func (l *Log) Rotate() error {
	// Seal the active segment: everything appended must be durable before
	// the checkpoint that motivated this rotation captures state.
	l.statMu.Lock()
	appended := l.stats.Appended
	l.statMu.Unlock()
	if err := l.Sync(LSN(appended)); err != nil && l.mode != SyncNone {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed != nil {
		return fmt.Errorf("%w: %w", ErrFailed, l.failed)
	}
	if l.mode == SyncNone {
		// Sync was a no-op above; still flush so the sealed segment's
		// replayable prefix is complete on a clean rotation.
		if err := l.file.Sync(); err != nil {
			l.failed = err
			return fmt.Errorf("%w: fsync: %w", ErrFailed, err)
		}
	}
	if err := l.file.Close(); err != nil {
		l.failed = err
		return fmt.Errorf("%w: close segment %d: %w", ErrFailed, l.seg, err)
	}
	if err := l.openSegment(l.seg + 1); err != nil {
		l.failed = err
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.failed = err
		return fmt.Errorf("%w: sync dir: %w", ErrFailed, err)
	}
	l.pending = 0
	l.statMu.Lock()
	l.stats.Rotations++
	l.statMu.Unlock()
	return nil
}

// PruneBefore removes every segment numbered below seg — the truncation
// half of a checkpoint, called only after the covering snapshot is durably
// on disk. Removal failures are returned but non-fatal to the log: stale
// segments cost disk, not correctness, because snapshots record the first
// segment they do NOT cover and replay skips the rest.
func (l *Log) PruneBefore(seg uint64) error {
	segs, err := ListSegments(l.fs, l.dir)
	if err != nil {
		return err
	}
	var firstErr error
	removed := false
	for _, s := range segs {
		if s >= seg {
			continue
		}
		if err := l.fs.Remove(l.path(s)); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: prune segment %d: %w", s, err)
		} else if err == nil {
			removed = true
		}
	}
	if removed {
		if err := l.fs.SyncDir(l.dir); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: sync dir: %w", err)
		}
	}
	return firstErr
}

// Stats returns a snapshot of the counters.
func (l *Log) Stats() Stats {
	l.statMu.Lock()
	defer l.statMu.Unlock()
	return l.stats
}

// Mode returns the fsync policy.
func (l *Log) Mode() SyncMode { return l.mode }

// Close fsyncs and closes the active segment. Further operations fail with
// ErrClosed. Close holds the sync mutex for its whole body, so it can never
// close the file descriptor out from under an in-flight fsync (which would
// fail with EBADF and poison the log); a committer that loses the race to
// Close instead finds its records already durable — Close's final fsync
// covers everything appended — and acks cleanly.
func (l *Log) Close() error {
	l.syncMu.Lock()
	defer l.syncMu.Unlock()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	file := l.file
	failed := l.failed
	l.mu.Unlock()
	if failed != nil {
		file.Close()
		return nil
	}
	if l.mode != SyncNone {
		if err := file.Sync(); err != nil {
			file.Close()
			return fmt.Errorf("wal: close fsync: %w", err)
		}
	}
	l.statMu.Lock()
	l.durable = l.stats.Appended
	l.stats.Durable = l.durable
	l.statMu.Unlock()
	return file.Close()
}
