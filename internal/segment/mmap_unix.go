//go:build unix

package segment

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The file descriptor is closed
// immediately after mapping — the mapping keeps the inode alive. Empty
// files cannot be mapped; they fall back to an empty heap buffer (which
// parse rejects as shorter than the header, the correct outcome).
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := info.Size()
	if size == 0 {
		return nil, nil, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Mapping can fail on exotic filesystems; degrade to a plain read.
		buf, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, rerr
		}
		return buf, nil, nil
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
