package segment

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

func samplePostings() map[string][]Posting {
	return map[string][]Posting{
		"alpha": {
			{Table: "genes", Column: "Name", Key: "g1"},
			{Table: "genes", Column: "Desc", Key: "g1"},
			{Table: "proteins", Column: "Name", Key: "p9"},
		},
		"beta": {
			{Table: "genes", Column: "Name", Key: "g2"},
		},
		"βeta-unicode": {
			{Table: "proteins", Column: "Desc", Key: "p1"},
		},
	}
}

func sorted(ps []Posting) []Posting {
	out := append([]Posting(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i].less(out[j]) })
	return out
}

// TestBuildRoundTrip: every term written comes back with exactly its
// postings, misses return nothing, and building the same content twice
// yields identical bytes (the determinism the identity gate rests on).
func TestBuildRoundTrip(t *testing.T) {
	terms := samplePostings()
	data := Build(terms)
	r, err := OpenBytes("mem", data)
	if err != nil {
		t.Fatal(err)
	}
	if r.Terms() != len(terms) {
		t.Fatalf("terms=%d want %d", r.Terms(), len(terms))
	}
	for term, want := range terms {
		got := r.Lookup(term, nil)
		if !reflect.DeepEqual(sorted(got), sorted(want)) {
			t.Fatalf("term %q: got %v want %v", term, got, want)
		}
	}
	if got := r.Lookup("missing", nil); len(got) != 0 {
		t.Fatalf("miss returned %v", got)
	}
	if string(Build(samplePostings())) != string(data) {
		t.Fatal("Build is not deterministic")
	}
}

// TestBuildDedupsPostings: duplicate (table, key, column) entries for a
// term collapse to one posting.
func TestBuildDedupsPostings(t *testing.T) {
	p := Posting{Table: "t", Column: "c", Key: "k"}
	data := Build(map[string][]Posting{"x": {p, p, p}})
	r, err := OpenBytes("mem", data)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Lookup("x", nil); len(got) != 1 || got[0] != p {
		t.Fatalf("got %v want exactly one %v", got, p)
	}
}

// TestOpenFileMmap: the file path maps the segment and answers the same
// lookups as the in-memory reader.
func TestOpenFileMmap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	data := Build(samplePostings())
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := r.Lookup("alpha", nil); len(got) != 3 {
		t.Fatalf("alpha postings = %v", got)
	}
	if r.Size() != int64(len(data)) {
		t.Fatalf("size=%d want %d", r.Size(), len(data))
	}
}

// TestCorruptionDetection flips every byte of a small segment in turn;
// no single-byte corruption may open successfully (the checksums cover
// the whole file).
func TestCorruptionDetection(t *testing.T) {
	data := Build(samplePostings())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := OpenBytes("mut", mut); err == nil {
			t.Fatalf("byte %d: corruption not detected", i)
		}
	}
	// Truncations at every prefix length must also fail.
	for _, cut := range []int{0, 1, headerSize - 1, headerSize, len(data) / 2, len(data) - 1} {
		if _, err := OpenBytes("trunc", data[:cut]); err == nil {
			t.Fatalf("truncation to %d not detected", cut)
		}
	}
}

// TestStoreFlushLookupRestart: flush two generations, look terms up,
// reopen from disk, and get the same answers with the same boundary.
func TestStoreFlushLookupRestart(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1, 0, map[string][]Posting{
		"alpha": {{Table: "t", Column: "c", Key: "k1"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(2, 0, map[string][]Posting{
		"alpha": {{Table: "t", Column: "c", Key: "k2"}},
		"gamma": {{Table: "t", Column: "c", Key: "k3"}},
	}); err != nil {
		t.Fatal(err)
	}
	check := func(s *Store) {
		t.Helper()
		if got := s.Lookup("alpha", nil); len(got) != 2 {
			t.Fatalf("alpha across segments = %v", got)
		}
		if got := s.Lookup("gamma", nil); len(got) != 1 {
			t.Fatalf("gamma = %v", got)
		}
		if s.Seq() != 2 {
			t.Fatalf("seq=%d want 2", s.Seq())
		}
	}
	check(s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Segments() != 2 {
		t.Fatalf("reopened segments=%d want 2", s2.Segments())
	}
	check(s2)
}

// TestStoreEmptyFlushMovesBoundary: a flush with no postings still
// publishes the new checkpoint sequence (otherwise every quiet
// checkpoint would force a reset at the next recovery).
func TestStoreEmptyFlushMovesBoundary(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(7, 3, nil); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2, err := Open(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 7 || s2.WALSegment() != 3 {
		t.Fatalf("boundary = (%d,%d) want (7,3)", s2.Seq(), s2.WALSegment())
	}
}

// TestStoreCompaction: exceeding the threshold merges the oldest
// segments; content is unchanged, boundary is unchanged, and the
// merged layout survives a reopen.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		err := s.Flush(uint64(i+1), 0, map[string][]Posting{
			fmt.Sprintf("term%d", i): {{Table: "t", Column: "c", Key: fmt.Sprintf("k%d", i)}},
			"shared":                 {{Table: "t", Column: "c", Key: fmt.Sprintf("s%d", i)}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	s.WaitCompaction()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := s.Segments(); got > 2 {
		t.Fatalf("segments=%d want <=2 after compaction", got)
	}
	if got := s.Lookup("shared", nil); len(got) != 5 {
		t.Fatalf("shared postings after compaction = %d want 5", len(got))
	}
	for i := 0; i < 5; i++ {
		if got := s.Lookup(fmt.Sprintf("term%d", i), nil); len(got) != 1 {
			t.Fatalf("term%d lost in compaction: %v", i, got)
		}
	}
	if s.Seq() != 5 {
		t.Fatalf("compaction moved seq to %d", s.Seq())
	}
	s.Close()

	s2, err := Open(dir, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Lookup("shared", nil); len(got) != 5 {
		t.Fatalf("reopened shared postings = %d want 5", len(got))
	}
}

// TestStoreFallbackToPreviousManifest: corrupting the newest manifest
// makes Open recover the previous generation and count the fallback.
func TestStoreFallbackToPreviousManifest(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1, 0, map[string][]Posting{"a": {{Table: "t", Column: "c", Key: "k1"}}}); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(2, 0, map[string][]Posting{"b": {{Table: "t", Column: "c", Key: "k2"}}}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Tear the newest manifest.
	path := filepath.Join(dir, manifestName(2))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Seq() != 1 {
		t.Fatalf("fallback seq=%d want 1", s2.Seq())
	}
	if got := s2.Lookup("a", nil); len(got) != 1 {
		t.Fatalf("previous generation term lost: %v", got)
	}
	if got := s2.Lookup("b", nil); len(got) != 0 {
		t.Fatalf("torn generation term visible: %v", got)
	}
	if st := s2.Stats(); st.Fallbacks != 1 {
		t.Fatalf("fallbacks=%d want 1", st.Fallbacks)
	}
}

// TestStoreReset: a boundary mismatch reset empties the live set; the
// next flush publishes a fresh generation and later GC reclaims the old
// files.
func TestStoreReset(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1, 0, map[string][]Posting{"a": {{Table: "t", Column: "c", Key: "k"}}}); err != nil {
		t.Fatal(err)
	}
	s.Reset()
	if s.Seq() != 0 || s.Segments() != 0 {
		t.Fatalf("reset left seq=%d segments=%d", s.Seq(), s.Segments())
	}
	if got := s.Lookup("a", nil); len(got) != 0 {
		t.Fatalf("reset store still answers: %v", got)
	}
	if err := s.Flush(5, 0, map[string][]Posting{"z": {{Table: "t", Column: "c", Key: "k"}}}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Resets != 1 || st.Seq != 5 {
		t.Fatalf("stats after reset+flush: %+v", st)
	}
	s.Close()
}

// TestManifestRoundTrip pins the manifest framing: encode/decode is
// lossless and single-byte corruption anywhere is detected.
func TestManifestRoundTrip(t *testing.T) {
	m := Manifest{
		Version:       manifestVersion,
		StoreSeq:      42,
		WALSegment:    7,
		NextSegmentID: 9,
		Segments:      []SegmentInfo{{Name: "SEG-000001.nebseg", Terms: 3, Postings: 11, Size: 512}},
	}
	data, err := encodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeManifest(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("round trip: %+v != %+v", got, m)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := decodeManifest(mut); err == nil {
			t.Fatalf("byte %d: manifest corruption not detected", i)
		}
	}
}

// TestParseRejectsCraftedCounts: a header advertising counts far beyond
// what the payload can hold is rejected before any allocation.
func TestParseRejectsCraftedCounts(t *testing.T) {
	data := Build(map[string][]Posting{"a": {{Table: "t", Column: "c", Key: "k"}}})
	mut := append([]byte(nil), data...)
	binary.LittleEndian.PutUint64(mut[16:], 1<<60) // absurd term count
	// Recompute the header CRC so only the sanity check can catch it.
	binary.LittleEndian.PutUint32(mut[76:], crc32.Checksum(mut[:76], castagnoli))
	if _, err := OpenBytes("crafted", mut); err == nil {
		t.Fatal("crafted term count accepted")
	}
}
