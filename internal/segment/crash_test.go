package segment_test

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"nebula/internal/faultinject"
	"nebula/internal/segment"
)

// The crash matrix: every write-path syscall a flush or compaction issues
// is failed (torn write, write error, fsync error, create error, rename
// error, directory-sync error, remove error), one ordinal at a time, and
// after each injected crash the directory is reopened cold. The invariant
// under test is the manifest protocol's all-or-nothing promise: recovery
// lands on either the pre-fault generation or the post-fault one — exactly
// those two, with lookups byte-identical to a store that never crashed —
// and an interrupted compaction never changes logical content at all.
// A companion matrix corrupts every byte (and truncates at every length)
// of the newest manifest and newest segment: any damage must be detected
// and recovery must fall back to the previous generation.

// renderPostings renders the sorted, deduplicated posting set per term —
// the layout-independent identity of a store's logical content.
func renderPostings(s *segment.Store, terms []string) string {
	var b strings.Builder
	for _, term := range terms {
		ps := s.Lookup(term, nil)
		keys := make([]string, 0, len(ps))
		for _, p := range ps {
			keys = append(keys, fmt.Sprintf("%s/%s.%s", p.Table, p.Key, p.Column))
		}
		sort.Strings(keys)
		uniq := keys[:0]
		for i, k := range keys {
			if i == 0 || keys[i-1] != k {
				uniq = append(uniq, k)
			}
		}
		fmt.Fprintf(&b, "%s: %s\n", term, strings.Join(uniq, ","))
	}
	return b.String()
}

// renderGens builds a throwaway store holding the given generations and
// renders it — the ground truth a recovered store must match.
func renderGens(t *testing.T, terms []string, gens ...map[string][]segment.Posting) string {
	t.Helper()
	s, err := segment.Open(t.TempDir(), nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, g := range gens {
		if err := s.Flush(uint64(i+1), 0, g); err != nil {
			t.Fatal(err)
		}
	}
	return renderPostings(s, terms)
}

// faultKinds is the syscall-failure schedule: each entry fails the i-th
// call of one operation kind.
var faultKinds = []struct {
	name string
	cfg  func(i int) faultinject.FSConfig
}{
	{"short-write", func(i int) faultinject.FSConfig { return faultinject.FSConfig{ShortWriteAt: i} }},
	{"write-error", func(i int) faultinject.FSConfig { return faultinject.FSConfig{FailWriteAt: i} }},
	{"sync-error", func(i int) faultinject.FSConfig { return faultinject.FSConfig{FailSyncAt: i} }},
	{"create-error", func(i int) faultinject.FSConfig { return faultinject.FSConfig{FailCreateAt: i} }},
	{"rename-error", func(i int) faultinject.FSConfig { return faultinject.FSConfig{FailRenameAt: i} }},
	{"dirsync-error", func(i int) faultinject.FSConfig { return faultinject.FSConfig{FailDirSyncAt: i} }},
	{"remove-error", func(i int) faultinject.FSConfig { return faultinject.FSConfig{FailRemoveAt: i} }},
}

var (
	crashGen1 = map[string][]segment.Posting{
		"alpha": {{Table: "t", Column: "c", Key: "a1"}},
		"beta":  {{Table: "t", Column: "c", Key: "b1"}},
	}
	crashGen2 = map[string][]segment.Posting{
		"beta":  {{Table: "t", Column: "c", Key: "b2"}},
		"gamma": {{Table: "t", Column: "c", Key: "g2"}},
	}
	crashTerms = []string{"alpha", "beta", "gamma"}
)

// seedGen1 creates a directory holding generation 1 (written cleanly).
func seedGen1(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := segment.Open(dir, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1, 7, crashGen1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestStoreFlushCrashMatrix fails every syscall a flush issues, one at a
// time. A failed flush must leave the live store serving generation 1
// unchanged, and a cold reopen must land on exactly the generation the
// flush reported (error → 1, success → 2) with identical lookups.
func TestStoreFlushCrashMatrix(t *testing.T) {
	wantGen1 := renderGens(t, crashTerms, crashGen1)
	wantGen2 := renderGens(t, crashTerms, crashGen1, crashGen2)
	for _, kind := range faultKinds {
		t.Run(kind.name, func(t *testing.T) {
			for i := 1; ; i++ {
				dir := seedGen1(t)
				ffs := faultinject.WrapFS(nil, kind.cfg(i))
				s, err := segment.Open(dir, ffs, 8)
				if err != nil {
					t.Fatalf("ordinal %d: open: %v", i, err)
				}
				flushErr := s.Flush(2, 9, crashGen2)
				if flushErr != nil {
					// The failed flush must not have moved the live store.
					if s.Seq() != 1 {
						t.Fatalf("ordinal %d: failed flush moved seq to %d", i, s.Seq())
					}
					if got := renderPostings(s, crashTerms); got != wantGen1 {
						t.Fatalf("ordinal %d: failed flush changed content:\n%s", i, got)
					}
				} else if s.Seq() != 2 {
					t.Fatalf("ordinal %d: successful flush left seq %d", i, s.Seq())
				}
				if err := s.Close(); err != nil {
					t.Fatalf("ordinal %d: close: %v", i, err)
				}
				fired := ffs.Injected() > 0

				// Cold recovery must land on the generation the flush
				// reported — never a torn in-between.
				re, err := segment.Open(dir, nil, 8)
				if err != nil {
					t.Fatalf("ordinal %d: reopen: %v", i, err)
				}
				want, wantSeq, wantWAL := wantGen1, uint64(1), uint64(7)
				if flushErr == nil {
					want, wantSeq, wantWAL = wantGen2, 2, 9
				}
				if re.Seq() != wantSeq || re.WALSegment() != wantWAL {
					t.Fatalf("ordinal %d (flushErr=%v): recovered (seq=%d wal=%d) want (%d,%d)",
						i, flushErr, re.Seq(), re.WALSegment(), wantSeq, wantWAL)
				}
				if got := renderPostings(re, crashTerms); got != want {
					t.Fatalf("ordinal %d (flushErr=%v): recovered content:\n%s\nwant:\n%s", i, flushErr, got, want)
				}
				re.Close()
				if !fired {
					// The ordinal is past the flush's op count: the run was
					// clean, the matrix is exhausted for this kind.
					break
				}
			}
		})
	}
}

// TestStoreCompactCrashMatrix fails every syscall a compaction issues.
// Compaction changes file layout, never logical content — so whether it
// fails midway or not, both the live store and a cold reopen must serve
// the same generation-3 content at the same sequence.
func TestStoreCompactCrashMatrix(t *testing.T) {
	gen3 := map[string][]segment.Posting{
		"alpha": {{Table: "t", Column: "c", Key: "a3"}},
		"delta": {{Table: "t", Column: "c", Key: "d3"}},
	}
	terms := append(append([]string(nil), crashTerms...), "delta")
	want := renderGens(t, terms, crashGen1, crashGen2, gen3)
	seed := func(t *testing.T) string {
		t.Helper()
		dir := t.TempDir()
		s, err := segment.Open(dir, nil, 8)
		if err != nil {
			t.Fatal(err)
		}
		for i, g := range []map[string][]segment.Posting{crashGen1, crashGen2, gen3} {
			if err := s.Flush(uint64(i+1), 0, g); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return dir
	}
	for _, kind := range faultKinds {
		t.Run(kind.name, func(t *testing.T) {
			for i := 1; ; i++ {
				dir := seed(t)
				ffs := faultinject.WrapFS(nil, kind.cfg(i))
				s, err := segment.Open(dir, ffs, 8)
				if err != nil {
					t.Fatalf("ordinal %d: open: %v", i, err)
				}
				compactErr := s.Compact()
				if s.Seq() != 3 {
					t.Fatalf("ordinal %d: compaction moved seq to %d", i, s.Seq())
				}
				if got := renderPostings(s, terms); got != want {
					t.Fatalf("ordinal %d (compactErr=%v): live content changed:\n%s", i, compactErr, got)
				}
				if err := s.Close(); err != nil {
					t.Fatalf("ordinal %d: close: %v", i, err)
				}
				fired := ffs.Injected() > 0

				re, err := segment.Open(dir, nil, 8)
				if err != nil {
					t.Fatalf("ordinal %d: reopen: %v", i, err)
				}
				if re.Seq() != 3 {
					t.Fatalf("ordinal %d (compactErr=%v): recovered seq %d want 3", i, compactErr, re.Seq())
				}
				if got := renderPostings(re, terms); got != want {
					t.Fatalf("ordinal %d (compactErr=%v): recovered content:\n%s\nwant:\n%s", i, compactErr, got, want)
				}
				re.Close()
				if !fired {
					break
				}
			}
		})
	}
}

// seedTwoGens writes generations 1 and 2 cleanly and returns the dir.
// File ids are deterministic: segment 1 and manifest 1 belong to gen 1,
// segment 2 and manifest 2 to gen 2.
func seedTwoGens(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	s, err := segment.Open(dir, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(1, 0, crashGen1); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(2, 0, crashGen2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// corruptionRecovers opens the directory after target was damaged and
// asserts recovery fell back to generation 1 exactly.
func corruptionRecovers(t *testing.T, dir, label, wantGen1 string) {
	t.Helper()
	s, err := segment.Open(dir, nil, 8)
	if err != nil {
		t.Fatalf("%s: open: %v", label, err)
	}
	defer s.Close()
	if s.Seq() != 1 {
		t.Fatalf("%s: recovered seq %d want 1 (fallback)", label, s.Seq())
	}
	if got := renderPostings(s, crashTerms); got != wantGen1 {
		t.Fatalf("%s: recovered content:\n%s\nwant:\n%s", label, got, wantGen1)
	}
	if st := s.Stats(); st.Fallbacks == 0 {
		t.Fatalf("%s: fallback not counted: %+v", label, st)
	}
}

// TestStoreManifestCorruptionMatrix flips every byte of the newest
// manifest, and truncates it at every length: every damage shape must be
// detected and recovery must fall back to the previous generation.
func TestStoreManifestCorruptionMatrix(t *testing.T) {
	wantGen1 := renderGens(t, crashTerms, crashGen1)
	dir := seedTwoGens(t)
	target := filepath.Join(dir, segment.ManifestFileName(2))
	pristine, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range pristine {
		data := append([]byte(nil), pristine...)
		data[pos] ^= 0xFF
		if err := os.WriteFile(target, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corruptionRecovers(t, dir, fmt.Sprintf("flip@%d", pos), wantGen1)
	}
	for cut := 0; cut < len(pristine); cut++ {
		if err := os.WriteFile(target, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		corruptionRecovers(t, dir, fmt.Sprintf("trunc@%d", cut), wantGen1)
	}
	// Restoring the pristine bytes restores generation 2.
	if err := os.WriteFile(target, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := segment.Open(dir, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Seq() != 2 {
		t.Fatalf("pristine manifest not adopted: seq %d", s.Seq())
	}
}

// TestStoreSegmentCorruptionMatrix flips every byte of the newest segment
// file (and truncates it at every length): the manifest referencing it
// must be rejected — checksum or size mismatch — and recovery must fall
// back to the previous generation.
func TestStoreSegmentCorruptionMatrix(t *testing.T) {
	wantGen1 := renderGens(t, crashTerms, crashGen1)
	dir := seedTwoGens(t)
	target := filepath.Join(dir, segment.SegmentFileName(2))
	pristine, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range pristine {
		data := append([]byte(nil), pristine...)
		data[pos] ^= 0xFF
		if err := os.WriteFile(target, data, 0o644); err != nil {
			t.Fatal(err)
		}
		corruptionRecovers(t, dir, fmt.Sprintf("flip@%d", pos), wantGen1)
	}
	for cut := 0; cut < len(pristine); cut += 7 {
		if err := os.WriteFile(target, pristine[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		corruptionRecovers(t, dir, fmt.Sprintf("trunc@%d", cut), wantGen1)
	}
}
