//go:build !unix

package segment

import "os"

// mapFile reads path whole on platforms without a usable mmap: the
// format still works, it just costs heap instead of address space.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
