package segment

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"nebula/internal/vfs"
)

// The manifest is the segment directory's source of truth: the set of
// live segment files, the checkpoint identity they cover, and the next
// segment file number. Manifests are numbered (MANIFEST-000001, …) and
// written through the temp/fsync/rename discipline; recovery scans them
// newest-first and uses the first one that decodes, checksums, and whose
// every listed segment opens and validates — a torn manifest or a
// missing/corrupt segment just falls back to the previous generation.

const (
	manifestMagic   = "NEBMAN1\x00"
	manifestVersion = 1
	manifestPrefix  = "MANIFEST-"
	segmentPrefix   = "SEG-"
	segmentSuffix   = ".nebseg"
)

// SegmentInfo describes one live segment file in a manifest.
type SegmentInfo struct {
	Name     string
	Terms    uint64
	Postings uint64
	Size     int64
}

// Manifest is the gob-encoded payload of a manifest file.
type Manifest struct {
	Version int
	// StoreSeq is the engine checkpoint sequence this manifest belongs
	// to; together with WALSegment it pins the snapshot generation the
	// segments are consistent with. A mismatch at open means the store
	// and the snapshot crashed on different sides of a checkpoint and
	// the segments must be discarded.
	StoreSeq   uint64
	WALSegment uint64
	// NextSegmentID numbers the next segment file so a new generation
	// never reuses a name an old manifest might still reference.
	NextSegmentID uint64
	Segments      []SegmentInfo
}

func manifestName(id uint64) string { return fmt.Sprintf("%s%06d", manifestPrefix, id) }

// SegmentFileName formats the numbered segment file name.
func SegmentFileName(id uint64) string {
	return fmt.Sprintf("%s%06d%s", segmentPrefix, id, segmentSuffix)
}

func parseNumbered(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	id, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// encodeManifest frames m: magic, version, payload length, CRC32C, gob.
func encodeManifest(m Manifest) ([]byte, error) {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 24+payload.Len())
	buf = append(buf, manifestMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(payload.Len()))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload.Bytes(), castagnoli))
	return append(buf, payload.Bytes()...), nil
}

func decodeManifest(data []byte) (Manifest, error) {
	var m Manifest
	if len(data) < 24 || string(data[:8]) != manifestMagic {
		return m, fmt.Errorf("%w: bad manifest magic", ErrCorrupt)
	}
	le := binary.LittleEndian
	if v := le.Uint32(data[8:12]); v != manifestVersion {
		return m, fmt.Errorf("%w: unsupported manifest version %d", ErrCorrupt, v)
	}
	plen := le.Uint64(data[12:20])
	if plen != uint64(len(data)-24) {
		return m, fmt.Errorf("%w: manifest payload length mismatch", ErrCorrupt)
	}
	payload := data[24:]
	if crc32.Checksum(payload, castagnoli) != le.Uint32(data[20:24]) {
		return m, fmt.Errorf("%w: manifest checksum mismatch", ErrCorrupt)
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return m, fmt.Errorf("%w: manifest gob: %v", ErrCorrupt, err)
	}
	return m, nil
}

// writeFileAtomic writes data to path via the temp/fsync/rename/dirsync
// discipline shared with the WAL and snapshot writers.
func writeFileAtomic(fsys vfs.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp := filepath.Join(dir, "."+filepath.Base(path)+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// scanDir lists manifest IDs (descending) and all segment-ish file names
// present in dir.
func scanDir(fsys vfs.FS, dir string) (manifests []uint64, files map[string]struct{}, err error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, map[string]struct{}{}, nil
		}
		return nil, nil, err
	}
	files = make(map[string]struct{}, len(names))
	for _, n := range names {
		files[n] = struct{}{}
		if id, ok := parseNumbered(n, manifestPrefix, ""); ok {
			manifests = append(manifests, id)
		}
	}
	sort.Slice(manifests, func(i, j int) bool { return manifests[i] > manifests[j] })
	return manifests, files, nil
}

func readAll(fsys vfs.FS, path string) ([]byte, error) {
	r, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return io.ReadAll(r)
}
