package segment

// ManifestFileName exposes manifest naming to the external crash-matrix
// test package (segment_test), which cannot live in-package because the
// fault-injection helper transitively imports this package.
func ManifestFileName(id uint64) string { return manifestName(id) }
