package segment

import (
	"bytes"
	"testing"
)

// FuzzSegmentDecode throws arbitrary bytes at the segment parser. The
// invariants: parse never panics or over-allocates on crafted headers;
// an accepted image must round-trip — walking every term and rebuilding
// must reproduce a segment with identical lookups; and the original
// Build output for the walked content must itself re-parse.
func FuzzSegmentDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add(Build(nil))
	f.Add(Build(map[string][]Posting{
		"alpha": {{Table: "genes", Column: "Name", Key: "g1"}},
	}))
	f.Add(Build(map[string][]Posting{
		"alpha": {{Table: "genes", Column: "Name", Key: "g1"}, {Table: "genes", Column: "Desc", Key: "g2"}},
		"beta":  {{Table: "proteins", Column: "Seq", Key: "p1"}},
		"βeta":  {{Table: "proteins", Column: "Seq", Key: "p2"}},
	}))
	long := Build(map[string][]Posting{
		"a": {{Table: "t", Column: "c", Key: string(make([]byte, 300))}},
	})
	f.Add(long)
	// A torn prefix and a bit-flipped body from a valid segment.
	torn := Build(map[string][]Posting{"x": {{Table: "t", Column: "c", Key: "k"}}})
	f.Add(torn[:len(torn)-3])
	flipped := append([]byte(nil), torn...)
	flipped[headerSize+2] ^= 0x10
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := OpenBytes("fuzz", data)
		if err != nil {
			return
		}
		// Accepted: the reader must be internally consistent.
		content := make(map[string][]Posting, r.Terms())
		var walked uint64
		r.walk(func(term string, ps []Posting) {
			content[term] = ps
			walked += uint64(len(ps))
		})
		if len(content) != r.Terms() {
			t.Fatalf("walk yielded %d terms, header says %d", len(content), r.Terms())
		}
		if walked != r.Postings() {
			t.Fatalf("walk yielded %d postings, header says %d", walked, r.Postings())
		}
		rebuilt := Build(content)
		r2, err := OpenBytes("rebuilt", rebuilt)
		if err != nil {
			t.Fatalf("rebuild of accepted segment rejected: %v", err)
		}
		for term, want := range content {
			got := r2.Lookup(term, nil)
			if !bytes.Equal(postingBytes(sorted(got)), postingBytes(sorted(want))) {
				t.Fatalf("term %q: rebuild changed postings %v -> %v", term, want, got)
			}
		}
	})
}

func postingBytes(ps []Posting) []byte {
	var b bytes.Buffer
	for _, p := range ps {
		b.WriteString(p.Table)
		b.WriteByte(0)
		b.WriteString(p.Column)
		b.WriteByte(0)
		b.WriteString(p.Key)
		b.WriteByte(1)
	}
	return b.Bytes()
}
