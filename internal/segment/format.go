// Package segment implements the immutable on-disk segment format for
// the inverted text index, plus the manifest protocol and the tiered
// store that owns a directory of segments.
//
// A segment file is a checksummed, mmap-friendly flat encoding of a
// term → postings map. The layout is designed so a reader can binary-
// search the term dictionary and decode one term's postings directly
// from the mapped bytes — no up-front deserialization of the whole
// file. All integers are little-endian.
//
//	header (80 bytes):
//	  [ 0: 8)  magic "NEBSEG1\x00"
//	  [ 8:12)  format version (u32)
//	  [12:16)  reserved (u32, zero)
//	  [16:24)  term count (u64)
//	  [24:32)  posting count (u64)
//	  [32:40)  payload length (u64) — all bytes after the header
//	  [40:44)  payload CRC32-Castagnoli (u32)
//	  [44:48)  string-table entry count (u32)
//	  [48:56)  term blob length (u64)
//	  [56:64)  postings blob length (u64)
//	  [64:72)  string blob length (u64)
//	  [72:76)  reserved (u32, zero)
//	  [76:80)  header CRC32-Castagnoli over [0:76) (u32)
//	payload (in order):
//	  term index    (termCount+1) × {termOff u64, postOff u64} fenceposts
//	  term blob     concatenated term bytes, sorted ascending
//	  postings blob per-posting {tableID u32, columnID u32, keyLen u32, key}
//	  string blob   stringCount × {len u32, bytes} — interned table/column names
//
// The fencepost index means term i's bytes are termBlob[idx[i]:idx[i+1])
// and its postings are postBlob[pidx[i]:pidx[i+1]); the final entry closes
// both blobs, so no lengths are stored per term.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
)

const (
	// Magic identifies a segment file.
	Magic = "NEBSEG1\x00"
	// FormatVersion is the current segment format version.
	FormatVersion = 1

	headerSize = 80
	fenceSize  = 16 // one term-index entry: two u64 offsets
)

// ErrCorrupt reports a segment (or manifest) that failed validation:
// bad magic, checksum mismatch, or structurally inconsistent offsets.
var ErrCorrupt = errors.New("segment: corrupt")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Posting is one occurrence of a term: a (table, column, key) triple
// identifying the cell the term was extracted from. The row itself is
// resolved — and the occurrence re-verified — at lookup time, so a
// segment can safely outlive mutations to the rows it indexes.
type Posting struct {
	Table  string
	Column string
	Key    string
}

func (p Posting) less(q Posting) bool {
	if p.Table != q.Table {
		return p.Table < q.Table
	}
	if p.Key != q.Key {
		return p.Key < q.Key
	}
	return p.Column < q.Column
}

// Build serializes a term → postings map into the segment byte format.
// Terms are sorted ascending; each term's postings are sorted and
// deduplicated by (table, key, column), so identical logical content
// always produces identical bytes.
func Build(terms map[string][]Posting) []byte {
	names := make([]string, 0, len(terms))
	for t := range terms {
		names = append(names, t)
	}
	sort.Strings(names)

	// Intern table and column names into the string table (sorted for
	// deterministic IDs).
	strSet := map[string]struct{}{}
	for _, ps := range terms {
		for _, p := range ps {
			strSet[p.Table] = struct{}{}
			strSet[p.Column] = struct{}{}
		}
	}
	strs := make([]string, 0, len(strSet))
	for s := range strSet {
		strs = append(strs, s)
	}
	sort.Strings(strs)
	strID := make(map[string]uint32, len(strs))
	for i, s := range strs {
		strID[s] = uint32(i)
	}

	var termBlob, postBlob, strBlob, idx []byte
	var postCount uint64
	u32 := func(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
	u64 := func(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

	for _, term := range names {
		idx = u64(idx, uint64(len(termBlob)))
		idx = u64(idx, uint64(len(postBlob)))
		termBlob = append(termBlob, term...)
		ps := append([]Posting(nil), terms[term]...)
		sort.Slice(ps, func(i, j int) bool { return ps[i].less(ps[j]) })
		prev := -1
		for i, p := range ps {
			if prev >= 0 && ps[prev] == p {
				continue
			}
			prev = i
			postBlob = u32(postBlob, strID[p.Table])
			postBlob = u32(postBlob, strID[p.Column])
			postBlob = u32(postBlob, uint32(len(p.Key)))
			postBlob = append(postBlob, p.Key...)
			postCount++
		}
	}
	// Closing fencepost.
	idx = u64(idx, uint64(len(termBlob)))
	idx = u64(idx, uint64(len(postBlob)))

	for _, s := range strs {
		strBlob = u32(strBlob, uint32(len(s)))
		strBlob = append(strBlob, s...)
	}

	payload := make([]byte, 0, len(idx)+len(termBlob)+len(postBlob)+len(strBlob))
	payload = append(payload, idx...)
	payload = append(payload, termBlob...)
	payload = append(payload, postBlob...)
	payload = append(payload, strBlob...)

	head := make([]byte, 0, headerSize)
	head = append(head, Magic...)
	head = u32(head, FormatVersion)
	head = u32(head, 0)
	head = u64(head, uint64(len(names)))
	head = u64(head, postCount)
	head = u64(head, uint64(len(payload)))
	head = u32(head, crc32.Checksum(payload, castagnoli))
	head = u32(head, uint32(len(strs)))
	head = u64(head, uint64(len(termBlob)))
	head = u64(head, uint64(len(postBlob)))
	head = u64(head, uint64(len(strBlob)))
	head = u32(head, 0)
	head = u32(head, crc32.Checksum(head, castagnoli))

	return append(head, payload...)
}

// parsed holds the section views a validated segment exposes. All slices
// alias the original (possibly mmap'd) buffer.
type parsed struct {
	termCount int
	postCount uint64
	idx       []byte // fencepost section
	termBlob  []byte
	postBlob  []byte
	strs      []string // decoded string table (small: table + column names)
}

// parse validates data as a segment image and returns the section views.
// Validation is a single linear pass: header checks, both checksums, and
// a structural walk of every fencepost, posting record, and string entry
// — after it succeeds, lookups can trust every offset in the file. Any
// inconsistency returns ErrCorrupt (wrapped with detail).
func parse(data []byte) (*parsed, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the %d-byte header", ErrCorrupt, len(data), headerSize)
	}
	if string(data[:8]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	le := binary.LittleEndian
	if got := crc32.Checksum(data[:76], castagnoli); got != le.Uint32(data[76:80]) {
		return nil, fmt.Errorf("%w: header checksum mismatch", ErrCorrupt)
	}
	if v := le.Uint32(data[8:12]); v != FormatVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d", ErrCorrupt, v)
	}
	termCount := le.Uint64(data[16:24])
	postCount := le.Uint64(data[24:32])
	payloadLen := le.Uint64(data[32:40])
	payloadCRC := le.Uint32(data[40:44])
	strCount := le.Uint32(data[44:48])
	termLen := le.Uint64(data[48:56])
	postLen := le.Uint64(data[56:64])
	strLen := le.Uint64(data[64:72])

	if payloadLen != uint64(len(data)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d does not match file size", ErrCorrupt, payloadLen)
	}
	// Counts are bounded by what the payload could physically hold —
	// rejects absurd values before any multiplication can overflow.
	if termCount > payloadLen/fenceSize || strCount > uint32(min64(payloadLen/4, 1<<31)) || postCount > payloadLen/12 {
		return nil, fmt.Errorf("%w: counts exceed payload capacity", ErrCorrupt)
	}
	idxLen := (termCount + 1) * fenceSize
	if idxLen+termLen+postLen+strLen != payloadLen {
		return nil, fmt.Errorf("%w: section lengths do not sum to payload length", ErrCorrupt)
	}
	payload := data[headerSize:]
	if crc32.Checksum(payload, castagnoli) != payloadCRC {
		return nil, fmt.Errorf("%w: payload checksum mismatch", ErrCorrupt)
	}
	p := &parsed{
		termCount: int(termCount),
		postCount: postCount,
		idx:       payload[:idxLen],
		termBlob:  payload[idxLen : idxLen+termLen],
		postBlob:  payload[idxLen+termLen : idxLen+termLen+postLen],
	}
	strBlob := payload[idxLen+termLen+postLen:]

	// Fenceposts: non-decreasing, opening at 0, closing at the blob ends.
	prevT, prevP := uint64(0), uint64(0)
	for i := 0; i <= p.termCount; i++ {
		t := le.Uint64(p.idx[i*fenceSize:])
		po := le.Uint64(p.idx[i*fenceSize+8:])
		if i == 0 && (t != 0 || po != 0) {
			return nil, fmt.Errorf("%w: first fencepost not at offset zero", ErrCorrupt)
		}
		if t < prevT || po < prevP || t > termLen || po > postLen {
			return nil, fmt.Errorf("%w: fencepost %d out of order or out of range", ErrCorrupt, i)
		}
		prevT, prevP = t, po
	}
	if prevT != termLen || prevP != postLen {
		return nil, fmt.Errorf("%w: final fencepost does not close the blobs", ErrCorrupt)
	}
	// Terms strictly ascending (binary search depends on it).
	for i := 1; i < p.termCount; i++ {
		if string(p.term(i-1)) >= string(p.term(i)) {
			return nil, fmt.Errorf("%w: terms not strictly ascending at %d", ErrCorrupt, i)
		}
	}
	// String table walk.
	p.strs = make([]string, 0, strCount)
	off := 0
	for i := uint32(0); i < strCount; i++ {
		if off+4 > len(strBlob) {
			return nil, fmt.Errorf("%w: string table truncated", ErrCorrupt)
		}
		n := int(le.Uint32(strBlob[off:]))
		off += 4
		if n < 0 || off+n > len(strBlob) {
			return nil, fmt.Errorf("%w: string entry %d overruns blob", ErrCorrupt, i)
		}
		p.strs = append(p.strs, string(strBlob[off:off+n]))
		off += n
	}
	if off != len(strBlob) {
		return nil, fmt.Errorf("%w: trailing bytes after string table", ErrCorrupt)
	}
	// Postings walk: every record in bounds, IDs resolvable, count exact.
	var walked uint64
	for i := 0; i < p.termCount; i++ {
		start, end := le.Uint64(p.idx[i*fenceSize+8:]), le.Uint64(p.idx[(i+1)*fenceSize+8:])
		off := start
		for off < end {
			if off+12 > end {
				return nil, fmt.Errorf("%w: posting record truncated in term %d", ErrCorrupt, i)
			}
			tid := le.Uint32(p.postBlob[off:])
			cid := le.Uint32(p.postBlob[off+4:])
			klen := uint64(le.Uint32(p.postBlob[off+8:]))
			if tid >= strCount || cid >= strCount {
				return nil, fmt.Errorf("%w: posting references string %d/%d beyond table", ErrCorrupt, tid, cid)
			}
			if off+12+klen > end {
				return nil, fmt.Errorf("%w: posting key overruns term %d postings", ErrCorrupt, i)
			}
			off += 12 + klen
			walked++
		}
	}
	if walked != postCount {
		return nil, fmt.Errorf("%w: posting count %d does not match header %d", ErrCorrupt, walked, postCount)
	}
	return p, nil
}

// term returns term i's bytes, aliasing the underlying buffer.
func (p *parsed) term(i int) []byte {
	le := binary.LittleEndian
	a := le.Uint64(p.idx[i*fenceSize:])
	b := le.Uint64(p.idx[(i+1)*fenceSize:])
	return p.termBlob[a:b]
}

// postings appends term i's postings to dst, decoding records straight
// from the (validated) blob.
func (p *parsed) postings(i int, dst []Posting) []Posting {
	le := binary.LittleEndian
	off := le.Uint64(p.idx[i*fenceSize+8:])
	end := le.Uint64(p.idx[(i+1)*fenceSize+8:])
	for off < end {
		tid := le.Uint32(p.postBlob[off:])
		cid := le.Uint32(p.postBlob[off+4:])
		klen := uint64(le.Uint32(p.postBlob[off+8:]))
		dst = append(dst, Posting{
			Table:  p.strs[tid],
			Column: p.strs[cid],
			Key:    string(p.postBlob[off+12 : off+12+klen]),
		})
		off += 12 + klen
	}
	return dst
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
