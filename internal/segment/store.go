package segment

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"nebula/internal/vfs"
)

// Store owns a directory of immutable segment files plus the manifest
// that makes a consistent subset of them live. Writers (flush,
// compaction) serialize on internal locks; lookups take a read lock for
// their whole duration, which is what makes closing a replaced reader
// safe — the write lock cannot be acquired until every in-flight lookup
// has drained.
type Store struct {
	dir         string
	fs          vfs.FS
	maxSegments int

	// Logf, when set, receives background-compaction and GC errors —
	// they are advisory (the store stays on its previous generation) and
	// must not panic a serving engine. Set before first use.
	Logf func(format string, args ...any)

	mu      sync.RWMutex
	readers []*Reader // oldest first; compaction merges a prefix
	seq     uint64    // StoreSeq of the live manifest
	walSeg  uint64
	manID   uint64 // id of the live manifest file (0 = none yet)
	closed  bool

	nextSeg atomic.Uint64 // next segment file id
	nextMan atomic.Uint64 // next manifest file id

	compactMu sync.Mutex // at most one compaction at a time
	compactWG sync.WaitGroup

	flushes          atomic.Uint64
	flushedPosts     atomic.Uint64
	compactions      atomic.Uint64
	compactErrs      atomic.Uint64
	fallbacks        atomic.Uint64
	resets           atomic.Uint64
	lookups          atomic.Uint64
	segmentsReplaced atomic.Uint64
}

// Stats is a point-in-time summary of the store.
type Stats struct {
	Segments         int    `json:"segments"`
	Terms            uint64 `json:"terms"`
	Postings         uint64 `json:"postings"`
	SizeBytes        int64  `json:"size_bytes"`
	Seq              uint64 `json:"seq"`
	WALSegment       uint64 `json:"wal_segment"`
	Flushes          uint64 `json:"flushes"`
	FlushedPostings  uint64 `json:"flushed_postings"`
	Compactions      uint64 `json:"compactions"`
	CompactErrors    uint64 `json:"compact_errors"`
	Fallbacks        uint64 `json:"fallbacks"`
	Resets           uint64 `json:"resets"`
	Lookups          uint64 `json:"lookups"`
	SegmentsReplaced uint64 `json:"segments_replaced"`
}

// Open scans dir for the newest usable manifest and maps its segments.
// A manifest that fails to decode, fails its checksum, or references a
// missing/corrupt segment is skipped (counted as a fallback) and the
// next older one is tried — recovery always lands on the last good
// generation, or an empty store when none survives. maxSegments (min 2)
// is the compaction trigger: more live segments than this schedules a
// background merge of the oldest ones.
func Open(dir string, fsys vfs.FS, maxSegments int) (*Store, error) {
	if fsys == nil {
		fsys = vfs.OS{}
	}
	if maxSegments < 2 {
		maxSegments = 2
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, fs: fsys, maxSegments: maxSegments}

	manifests, files, err := scanDir(fsys, dir)
	if err != nil {
		return nil, err
	}
	// Never reuse a file number present on disk, referenced or not.
	maxSeg, maxMan := uint64(0), uint64(0)
	for name := range files {
		if id, ok := parseNumbered(name, segmentPrefix, segmentSuffix); ok && id > maxSeg {
			maxSeg = id
		}
	}
	if len(manifests) > 0 {
		maxMan = manifests[0]
	}

	for _, id := range manifests {
		m, readers, ok := s.tryManifest(id)
		if !ok {
			s.fallbacks.Add(1)
			continue
		}
		s.readers = readers
		s.seq = m.StoreSeq
		s.walSeg = m.WALSegment
		s.manID = id
		if m.NextSegmentID > maxSeg {
			maxSeg = m.NextSegmentID - 1
		}
		break
	}
	s.nextSeg.Store(maxSeg + 1)
	s.nextMan.Store(maxMan + 1)
	return s, nil
}

// tryManifest loads manifest id and opens every segment it lists.
func (s *Store) tryManifest(id uint64) (Manifest, []*Reader, bool) {
	data, err := readAll(s.fs, filepath.Join(s.dir, manifestName(id)))
	if err != nil {
		return Manifest{}, nil, false
	}
	m, err := decodeManifest(data)
	if err != nil {
		return Manifest{}, nil, false
	}
	readers := make([]*Reader, 0, len(m.Segments))
	for _, info := range m.Segments {
		r, err := OpenFile(filepath.Join(s.dir, info.Name))
		if err != nil || r.Size() != info.Size {
			for _, o := range readers {
				o.Close()
			}
			if err == nil {
				r.Close()
			}
			return Manifest{}, nil, false
		}
		readers = append(readers, r)
	}
	return m, readers, true
}

// Seq returns the checkpoint sequence of the live manifest (0 when the
// store is empty or was reset).
func (s *Store) Seq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.seq
}

// WALSegment returns the WAL boundary recorded in the live manifest.
func (s *Store) WALSegment() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.walSeg
}

// Segments returns the number of live segments.
func (s *Store) Segments() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.readers)
}

// Reset discards all live segments without touching disk: the caller
// has determined (by checkpoint-sequence mismatch) that they belong to
// a different snapshot generation. The files are garbage-collected
// after the next successful flush publishes a manifest without them.
func (s *Store) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = nil
	s.seq = 0
	s.walSeg = 0
	s.resets.Add(1)
}

// Lookup appends the deduplicated-by-segment postings for term across
// all live segments to dst. Duplicates across segments are possible (an
// updated row reflushed) — the caller deduplicates by identity, which
// it must do anyway to merge the in-heap tail.
func (s *Store) Lookup(term string, dst []Posting) []Posting {
	s.lookups.Add(1)
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range s.readers {
		dst = r.Lookup(term, dst)
	}
	return dst
}

// Flush publishes one checkpoint generation: an optional new segment
// holding terms (omitted when empty) and a manifest binding the whole
// live set to (seq, walSeg). On any error the store's in-memory and
// on-disk state are unchanged — the caller keeps the flushed postings
// in its tail and the next open falls back to the previous manifest.
// After a successful flush the segment count may exceed the compaction
// threshold; the merge is scheduled on a background goroutine.
func (s *Store) Flush(seq, walSeg uint64, terms map[string][]Posting) error {
	var newReader *Reader
	var segName string
	var postCount uint64
	if len(terms) > 0 {
		data := Build(terms)
		segName = SegmentFileName(s.nextSeg.Add(1) - 1)
		path := filepath.Join(s.dir, segName)
		if err := writeFileAtomic(s.fs, path, data); err != nil {
			return fmt.Errorf("segment flush: %w", err)
		}
		r, err := OpenFile(path)
		if err != nil {
			_ = s.fs.Remove(path)
			return fmt.Errorf("segment flush reopen: %w", err)
		}
		newReader = r
		postCount = r.Postings()
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		if newReader != nil {
			newReader.Close()
			_ = s.fs.Remove(filepath.Join(s.dir, segName))
		}
		return fmt.Errorf("segment flush: store closed")
	}
	list := s.readers
	if newReader != nil {
		list = append(append([]*Reader(nil), s.readers...), newReader)
	}
	if err := s.writeManifestLocked(seq, walSeg, list); err != nil {
		s.mu.Unlock()
		if newReader != nil {
			newReader.Close()
			_ = s.fs.Remove(filepath.Join(s.dir, segName))
		}
		return fmt.Errorf("segment manifest: %w", err)
	}
	s.readers = list
	s.seq = seq
	s.walSeg = walSeg
	s.flushes.Add(1)
	s.flushedPosts.Add(postCount)
	s.gcLocked()
	needCompact := len(s.readers) > s.maxSegments
	s.mu.Unlock()

	if needCompact {
		s.compactWG.Add(1)
		go func() {
			defer s.compactWG.Done()
			if err := s.Compact(); err != nil {
				s.logf("segment: background compaction: %v", err)
			}
		}()
	}
	return nil
}

// writeManifestLocked publishes list as the live segment set for
// (seq, walSeg). Caller holds s.mu.
func (s *Store) writeManifestLocked(seq, walSeg uint64, list []*Reader) error {
	m := Manifest{
		Version:       manifestVersion,
		StoreSeq:      seq,
		WALSegment:    walSeg,
		NextSegmentID: s.nextSeg.Load(),
	}
	for _, r := range list {
		m.Segments = append(m.Segments, SegmentInfo{
			Name:     filepath.Base(r.Name()),
			Terms:    uint64(r.Terms()),
			Postings: r.Postings(),
			Size:     r.Size(),
		})
	}
	data, err := encodeManifest(m)
	if err != nil {
		return err
	}
	id := s.nextMan.Add(1) - 1
	if err := writeFileAtomic(s.fs, filepath.Join(s.dir, manifestName(id)), data); err != nil {
		return err
	}
	s.manID = id
	return nil
}

// Compact merges the oldest segments into one so the live set stays at
// or below the threshold, then publishes a manifest for the same
// checkpoint boundary (compaction changes the file layout, never the
// logical content). Safe to call concurrently with flushes and lookups;
// at most one compaction runs at a time.
func (s *Store) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	s.mu.RLock()
	n := len(s.readers) - s.maxSegments + 1
	if n < 2 {
		n = 2
	}
	if len(s.readers) < 2 || s.closed {
		s.mu.RUnlock()
		return nil
	}
	if n > len(s.readers) {
		n = len(s.readers)
	}
	victims := append([]*Reader(nil), s.readers[:n]...)
	s.mu.RUnlock()

	// Merge outside any lock: the victims are immutable and cannot be
	// closed underneath us — only compaction retires readers, and
	// compactMu is held.
	merged := make(map[string][]Posting)
	for _, r := range victims {
		r.walk(func(term string, ps []Posting) {
			merged[term] = append(merged[term], ps...)
		})
	}
	data := Build(merged)
	segName := SegmentFileName(s.nextSeg.Add(1) - 1)
	path := filepath.Join(s.dir, segName)
	if err := writeFileAtomic(s.fs, path, data); err != nil {
		s.compactErrs.Add(1)
		return fmt.Errorf("segment compact: %w", err)
	}
	r, err := OpenFile(path)
	if err != nil {
		_ = s.fs.Remove(path)
		s.compactErrs.Add(1)
		return fmt.Errorf("segment compact reopen: %w", err)
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		r.Close()
		_ = s.fs.Remove(path)
		return nil
	}
	// Flushes may have appended segments since the snapshot; the victims
	// are still the list prefix because appends only grow the tail end.
	list := append([]*Reader{r}, s.readers[n:]...)
	if err := s.writeManifestLocked(s.seq, s.walSeg, list); err != nil {
		s.mu.Unlock()
		r.Close()
		_ = s.fs.Remove(path)
		s.compactErrs.Add(1)
		return fmt.Errorf("segment compact manifest: %w", err)
	}
	for _, v := range victims {
		v.Close()
	}
	s.readers = list
	s.compactions.Add(1)
	s.segmentsReplaced.Add(uint64(n))
	s.gcLocked()
	s.mu.Unlock()
	return nil
}

// WaitCompaction blocks until any background compaction scheduled by a
// flush has finished.
func (s *Store) WaitCompaction() { s.compactWG.Wait() }

// gcLocked removes manifests older than the previous generation and any
// segment file referenced by neither the live nor the previous manifest
// (the previous one must stay recoverable — it is the fallback if the
// live manifest turns out torn on the next open). Caller holds s.mu.
// Removal errors are advisory.
func (s *Store) gcLocked() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	keep := map[string]struct{}{}
	for _, r := range s.readers {
		keep[filepath.Base(r.Name())] = struct{}{}
	}
	// The previous manifest's segments stay on disk as the fallback
	// generation.
	prevID := s.manID - 1
	if data, err := readAll(s.fs, filepath.Join(s.dir, manifestName(prevID))); err == nil {
		if m, err := decodeManifest(data); err == nil {
			for _, info := range m.Segments {
				keep[info.Name] = struct{}{}
			}
		}
	}
	for _, name := range names {
		var stale bool
		switch {
		case strings.HasPrefix(name, ".") && strings.HasSuffix(name, ".tmp"):
			stale = true
		case strings.HasPrefix(name, manifestPrefix):
			if id, ok := parseNumbered(name, manifestPrefix, ""); ok && id+1 < s.manID {
				stale = true
			}
		case strings.HasPrefix(name, segmentPrefix):
			_, keepIt := keep[name]
			stale = !keepIt
		}
		if stale {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				s.logf("segment: gc %s: %v", name, err)
			}
		}
	}
}

// Stats returns a point-in-time summary.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	st := Stats{
		Segments:   len(s.readers),
		Seq:        s.seq,
		WALSegment: s.walSeg,
	}
	for _, r := range s.readers {
		st.Terms += uint64(r.Terms())
		st.Postings += r.Postings()
		st.SizeBytes += r.Size()
	}
	s.mu.RUnlock()
	st.Flushes = s.flushes.Load()
	st.FlushedPostings = s.flushedPosts.Load()
	st.Compactions = s.compactions.Load()
	st.CompactErrors = s.compactErrs.Load()
	st.Fallbacks = s.fallbacks.Load()
	st.Resets = s.resets.Load()
	st.Lookups = s.lookups.Load()
	st.SegmentsReplaced = s.segmentsReplaced.Load()
	return st
}

// Close waits for background work and unmaps every segment.
func (s *Store) Close() error {
	s.compactWG.Wait()
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, r := range s.readers {
		r.Close()
	}
	s.readers = nil
	s.closed = true
	return nil
}

func (s *Store) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}
