package segment

import (
	"bytes"
	"sort"
)

// Reader is a validated, read-only view of one segment. The underlying
// bytes are memory-mapped where the platform supports it (so a segment
// costs address space, not resident heap) and read whole otherwise.
// Readers are safe for concurrent use; Close unmaps the file and must
// not race with in-flight lookups — the Store guarantees that by
// holding its write lock across reader swaps.
type Reader struct {
	name    string
	size    int64
	data    []byte
	unmap   func() error // nil when the data is a plain heap buffer
	*parsed              // section views into data
}

// OpenBytes validates data as a segment image and returns a reader over
// it. This is the common entry for in-memory use, tests, and the fuzz
// target; OpenFile layers mmap on top.
func OpenBytes(name string, data []byte) (*Reader, error) {
	p, err := parse(data)
	if err != nil {
		return nil, err
	}
	return &Reader{name: name, size: int64(len(data)), data: data, parsed: p}, nil
}

// OpenFile maps the segment at path and validates it. Reads bypass the
// vfs seam deliberately: fault injection targets the write path, and
// mmap needs a real file descriptor.
func OpenFile(path string) (*Reader, error) {
	data, unmap, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	p, perr := parse(data)
	if perr != nil {
		if unmap != nil {
			_ = unmap()
		}
		return nil, perr
	}
	return &Reader{name: path, size: int64(len(data)), data: data, unmap: unmap, parsed: p}, nil
}

// Name returns the path (or label) the reader was opened with.
func (r *Reader) Name() string { return r.name }

// Size returns the segment's byte size.
func (r *Reader) Size() int64 { return r.size }

// Terms returns the number of distinct terms in the segment.
func (r *Reader) Terms() int { return r.termCount }

// Postings returns the total posting count in the segment.
func (r *Reader) Postings() uint64 { return r.postCount }

// Mapped reports whether the segment is memory-mapped (as opposed to a
// heap buffer).
func (r *Reader) Mapped() bool { return r.unmap != nil }

// Lookup appends the postings for term to dst (which may be nil) and
// returns the extended slice. The term dictionary is binary-searched
// directly in the mapped bytes; only a hit decodes postings.
func (r *Reader) Lookup(term string, dst []Posting) []Posting {
	target := []byte(term)
	i := sort.Search(r.termCount, func(i int) bool {
		return bytes.Compare(r.term(i), target) >= 0
	})
	if i >= r.termCount || !bytes.Equal(r.term(i), target) {
		return dst
	}
	return r.postings(i, dst)
}

// walk visits every term in ascending order with its decoded postings.
// Used by compaction to merge segments; the postings slice is freshly
// allocated per term and may be retained.
func (r *Reader) walk(fn func(term string, ps []Posting)) {
	for i := 0; i < r.termCount; i++ {
		fn(string(r.term(i)), r.postings(i, nil))
	}
}

// Close releases the mapping. The reader must not be used afterwards.
func (r *Reader) Close() error {
	if r.unmap != nil {
		u := r.unmap
		r.unmap = nil
		r.data = nil
		return u()
	}
	r.data = nil
	return nil
}
