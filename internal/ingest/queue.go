// Package ingest implements the job queue behind Nebula's streaming
// proactive pipeline: a bounded, prioritized, coalescing queue of discovery
// jobs. Annotation writes enqueue initial-discovery jobs; tuple mutations
// enqueue re-discovery jobs for the attachments their ACG neighborhood can
// affect. The queue is drained in (priority desc, sequence asc) order, so
// under backpressure the freshest-critical work runs first while FIFO
// fairness breaks ties.
//
// The queue is deliberately NOT thread-safe: it lives inside the engine and
// every operation runs under the engine's lock, exactly like the annotation
// store and the ACG. Sequence numbers are assigned here and logged to the
// WAL, so a replayed queue reconstructs the identical drain order.
package ingest

import (
	"container/heap"
	"errors"
	"time"

	"nebula/internal/annotation"
)

// Kind classifies a queued discovery job.
type Kind uint8

const (
	// KindDiscover is an initial asynchronous discovery for a freshly
	// inserted annotation (the submit-async path).
	KindDiscover Kind = 1
	// KindRediscover is a change-driven re-discovery: a tuple mutation
	// landed inside the annotation's K-hop ACG neighborhood, so its
	// machine-derived attachments may be stale.
	KindRediscover Kind = 2
)

func (k Kind) String() string {
	switch k {
	case KindDiscover:
		return "discover"
	case KindRediscover:
		return "rediscover"
	default:
		return "unknown"
	}
}

// Job is one queued discovery unit: run the full pipeline (retract stale
// machine state, then discover + submit) for one annotation.
type Job struct {
	// Annotation is the job's subject.
	Annotation annotation.ID
	// Kind says why the job was queued. A coalesced job keeps the
	// strongest kind (rediscover beats discover: both drain identically,
	// but the metric distinction matters).
	Kind Kind
	// Priority orders draining: higher first. Coalescing keeps the max.
	Priority int
	// Seq is the admission sequence number, assigned by the queue and
	// persisted to the WAL; it breaks priority ties FIFO and makes replay
	// rebuild the identical drain order.
	Seq uint64
	// EnqueuedAt is when the job entered the queue — the start of the
	// enqueue→attached freshness measurement. Not persisted; restored
	// jobs restart the clock at restore time.
	EnqueuedAt time.Time
}

// ErrFull reports that a live enqueue hit the queue's capacity. Callers
// surface it as backpressure (the serving layer maps it to 429 +
// Retry-After). Replay and restore bypass the cap via Force.
var ErrFull = errors.New("ingest: queue full")

// Counters are the queue's monotonic lifetime counters, exported as
// nebula_ingest_* metrics.
type Counters struct {
	// Enqueued counts distinct jobs admitted (coalesced duplicates not
	// included).
	Enqueued uint64
	// Coalesced counts enqueues folded into an already-queued job.
	Coalesced uint64
	// Dropped counts live enqueues rejected by the capacity bound.
	Dropped uint64
	// Rediscoveries counts admitted jobs of KindRediscover.
	Rediscoveries uint64
	// Done counts jobs drained to completion.
	Done uint64
}

// Queue is the bounded prioritized coalescing job queue. Not thread-safe;
// the owning engine's lock guards every call.
type Queue struct {
	cap      int
	heap     jobHeap
	byAnn    map[annotation.ID]*item
	nextSeq  uint64
	counters Counters
}

type item struct {
	job   Job
	index int
}

// New returns an empty queue admitting at most capacity jobs (capacity <= 0
// means unbounded).
func New(capacity int) *Queue {
	return &Queue{cap: capacity, byAnn: make(map[annotation.ID]*item)}
}

// Len returns the number of queued jobs.
func (q *Queue) Len() int { return len(q.heap) }

// Cap returns the capacity bound (0 = unbounded).
func (q *Queue) Cap() int { return q.cap }

// Counters returns a copy of the lifetime counters.
func (q *Queue) Counters() Counters { return q.counters }

// NextSeq returns the sequence number the next admitted job will get.
func (q *Queue) NextSeq() uint64 { return q.nextSeq }

// Enqueue admits a job on the live path. A job for an already-queued
// annotation coalesces: priority and kind are upgraded to the max and no
// second job is created. The returned bool reports whether queue state
// changed — a no-op coalesce needs no WAL record. A fresh job beyond
// capacity returns ErrFull (counted in Dropped).
func (q *Queue) Enqueue(id annotation.ID, kind Kind, priority int, now time.Time) (Job, bool, error) {
	if it, ok := q.byAnn[id]; ok {
		changed := false
		if priority > it.job.Priority {
			it.job.Priority = priority
			changed = true
		}
		if kind > it.job.Kind {
			it.job.Kind = kind
			changed = true
		}
		if changed {
			heap.Fix(&q.heap, it.index)
		}
		q.counters.Coalesced++
		return it.job, changed, nil
	}
	if q.cap > 0 && len(q.heap) >= q.cap {
		q.counters.Dropped++
		return Job{}, false, ErrFull
	}
	j := Job{Annotation: id, Kind: kind, Priority: priority, Seq: q.nextSeq, EnqueuedAt: now}
	q.nextSeq++
	q.admit(j)
	return j, true, nil
}

// Force inserts or overwrites a job with an explicit sequence number — the
// WAL-replay and snapshot-restore path. The capacity bound is not enforced
// (the job was already admitted live before the crash), and nextSeq
// advances past the forced sequence so later live enqueues never collide.
func (q *Queue) Force(j Job) {
	if j.Seq >= q.nextSeq {
		q.nextSeq = j.Seq + 1
	}
	if it, ok := q.byAnn[j.Annotation]; ok {
		// A replayed coalesce: the WAL logs the job's upgraded shape under
		// its original sequence.
		it.job.Kind, it.job.Priority, it.job.Seq = j.Kind, j.Priority, j.Seq
		heap.Fix(&q.heap, it.index)
		return
	}
	q.admit(j)
}

// RestoreSeq advances the admission counter to at least next — the
// snapshot-restore path, so a recovered engine assigns the same sequence
// numbers the live engine would have.
func (q *Queue) RestoreSeq(next uint64) {
	if next > q.nextSeq {
		q.nextSeq = next
	}
}

func (q *Queue) admit(j Job) {
	it := &item{job: j}
	q.byAnn[j.Annotation] = it
	heap.Push(&q.heap, it)
	q.counters.Enqueued++
	if j.Kind == KindRediscover {
		q.counters.Rediscoveries++
	}
}

// PopBatch removes and returns up to n jobs in drain order (priority desc,
// sequence asc). n <= 0 drains everything queued.
func (q *Queue) PopBatch(n int) []Job {
	if n <= 0 || n > len(q.heap) {
		n = len(q.heap)
	}
	out := make([]Job, 0, n)
	for len(out) < n {
		it := heap.Pop(&q.heap).(*item)
		delete(q.byAnn, it.job.Annotation)
		out = append(out, it.job)
	}
	return out
}

// Requeue puts popped-but-unprocessed jobs back (a cancelled drain). Jobs
// keep their original sequence and enqueue time; the capacity bound is not
// re-checked — the jobs never logically left the queue.
func (q *Queue) Requeue(jobs []Job) {
	for _, j := range jobs {
		if it, ok := q.byAnn[j.Annotation]; ok {
			// Something re-enqueued the annotation while the drain held the
			// job; keep the queued entry (it coalesces the returned one).
			if j.Priority > it.job.Priority || (j.Priority == it.job.Priority && j.Seq < it.job.Seq) {
				it.job.Priority, it.job.Seq = max(it.job.Priority, j.Priority), min(it.job.Seq, j.Seq)
				heap.Fix(&q.heap, it.index)
			}
			continue
		}
		it := &item{job: j}
		q.byAnn[j.Annotation] = it
		heap.Push(&q.heap, it)
	}
}

// Position returns the annotation's 1-based drain position: 1 means the
// job drains next, Len() means last. 0 reports the annotation not queued.
// Computed against the same queue state as the enqueue when called under
// the owning lock — which is how the engine pins the admission contract
// (the position returned with a 202 is exact as of admission, not a
// post-hoc racy read).
func (q *Queue) Position(id annotation.ID) int {
	it, ok := q.byAnn[id]
	if !ok {
		return 0
	}
	pos := 1
	for _, other := range q.heap {
		if other == it {
			continue
		}
		if other.job.Priority > it.job.Priority ||
			(other.job.Priority == it.job.Priority && other.job.Seq < it.job.Seq) {
			pos++
		}
	}
	return pos
}

// NoteDone counts a completion for a job already outside the queue — the
// live drain pops first and completes after.
func (q *Queue) NoteDone() { q.counters.Done++ }

// NoteDrop counts a rejection decided by the engine before Enqueue ran
// (the async-submit path checks capacity before storing the annotation).
func (q *Queue) NoteDrop() { q.counters.Dropped++ }

// MarkDone removes the annotation's queued job if present (WAL replay of a
// completion record) and counts a completion.
func (q *Queue) MarkDone(id annotation.ID) {
	q.counters.Done++
	it, ok := q.byAnn[id]
	if !ok {
		return
	}
	heap.Remove(&q.heap, it.index)
	delete(q.byAnn, id)
}

// Remove drops the annotation's queued job without counting a completion —
// the hook for annotation deletion.
func (q *Queue) Remove(id annotation.ID) bool {
	it, ok := q.byAnn[id]
	if !ok {
		return false
	}
	heap.Remove(&q.heap, it.index)
	delete(q.byAnn, id)
	return true
}

// Jobs returns the queued jobs in drain order without removing them — the
// snapshot-capture and status-endpoint view.
func (q *Queue) Jobs() []Job {
	c := Queue{byAnn: make(map[annotation.ID]*item, len(q.heap))}
	c.heap = make(jobHeap, len(q.heap))
	for i, it := range q.heap {
		ci := &item{job: it.job, index: i}
		c.heap[i] = ci
		c.byAnn[ci.job.Annotation] = ci
	}
	return c.PopBatch(0)
}

// OldestEnqueuedAt returns the earliest enqueue time among queued jobs —
// the queue-lag metric. ok is false when the queue is empty.
func (q *Queue) OldestEnqueuedAt() (oldest time.Time, ok bool) {
	for _, it := range q.heap {
		if !ok || it.job.EnqueuedAt.Before(oldest) {
			oldest, ok = it.job.EnqueuedAt, true
		}
	}
	return oldest, ok
}

// jobHeap orders items by priority desc, then sequence asc.
type jobHeap []*item

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, j int) bool {
	if h[i].job.Priority != h[j].job.Priority {
		return h[i].job.Priority > h[j].job.Priority
	}
	return h[i].job.Seq < h[j].job.Seq
}
func (h jobHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index, h[j].index = i, j
}
func (h *jobHeap) Push(x any) {
	it := x.(*item)
	it.index = len(*h)
	*h = append(*h, it)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	it.index = -1
	*h = old[:n-1]
	return it
}
