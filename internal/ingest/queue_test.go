package ingest

import (
	"errors"
	"testing"
	"time"

	"nebula/internal/annotation"
)

func TestQueueDrainOrder(t *testing.T) {
	q := New(0)
	now := time.Now()
	mustEnqueue := func(id string, kind Kind, prio int) Job {
		t.Helper()
		j, changed, err := q.Enqueue(annID(id), kind, prio, now)
		if err != nil || !changed {
			t.Fatalf("enqueue %s: changed=%v err=%v", id, changed, err)
		}
		return j
	}
	mustEnqueue("a", KindDiscover, 0)
	mustEnqueue("b", KindRediscover, 2)
	mustEnqueue("c", KindDiscover, 2)
	mustEnqueue("d", KindDiscover, 1)
	got := q.PopBatch(0)
	want := []string{"b", "c", "d", "a"} // priority desc, seq asc
	for i, j := range got {
		if string(j.Annotation) != want[i] {
			t.Fatalf("drain order %v, want %v", ids(got), want)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue not empty after full pop: %d", q.Len())
	}
}

func TestQueueCoalescing(t *testing.T) {
	q := New(0)
	now := time.Now()
	first, _, _ := q.Enqueue(annID("a"), KindDiscover, 0, now)
	// Same annotation again: coalesces, upgrades kind+priority, keeps seq.
	j, changed, err := q.Enqueue(annID("a"), KindRediscover, 3, now)
	if err != nil || !changed {
		t.Fatalf("coalescing upgrade: changed=%v err=%v", changed, err)
	}
	if j.Seq != first.Seq || j.Priority != 3 || j.Kind != KindRediscover {
		t.Fatalf("coalesced job = %+v, want seq=%d prio=3 kind=rediscover", j, first.Seq)
	}
	// A weaker duplicate changes nothing — no WAL record needed.
	if _, changed, _ := q.Enqueue(annID("a"), KindDiscover, 1, now); changed {
		t.Fatal("weaker duplicate reported a state change")
	}
	if q.Len() != 1 {
		t.Fatalf("coalescing created extra jobs: len=%d", q.Len())
	}
	c := q.Counters()
	if c.Enqueued != 1 || c.Coalesced != 2 {
		t.Fatalf("counters = %+v, want Enqueued=1 Coalesced=2", c)
	}
}

func TestQueueBackpressure(t *testing.T) {
	q := New(2)
	now := time.Now()
	q.Enqueue(annID("a"), KindDiscover, 0, now)
	q.Enqueue(annID("b"), KindDiscover, 0, now)
	if _, _, err := q.Enqueue(annID("c"), KindDiscover, 0, now); !errors.Is(err, ErrFull) {
		t.Fatalf("enqueue beyond cap: err=%v, want ErrFull", err)
	}
	// Coalescing a queued annotation never trips the cap.
	if _, _, err := q.Enqueue(annID("a"), KindRediscover, 1, now); err != nil {
		t.Fatalf("coalesce at cap: %v", err)
	}
	// Force (replay) bypasses the cap.
	q.Force(Job{Annotation: annID("c"), Kind: KindDiscover, Seq: 99})
	if q.Len() != 3 {
		t.Fatalf("forced job not admitted: len=%d", q.Len())
	}
	if q.NextSeq() != 100 {
		t.Fatalf("nextSeq = %d, want 100 (past forced seq)", q.NextSeq())
	}
	if q.Counters().Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", q.Counters().Dropped)
	}
}

func TestQueueRequeueAndDone(t *testing.T) {
	q := New(0)
	now := time.Now()
	q.Enqueue(annID("a"), KindDiscover, 0, now)
	q.Enqueue(annID("b"), KindRediscover, 0, now)
	jobs := q.PopBatch(0)
	// Drain cancelled: jobs go back with their original sequence.
	q.Requeue(jobs)
	if got := ids(q.Jobs()); got[0] != "a" || got[1] != "b" {
		t.Fatalf("requeue lost order: %v", got)
	}
	q.MarkDone(annID("a"))
	if q.Len() != 1 || q.Counters().Done != 1 {
		t.Fatalf("done bookkeeping: len=%d counters=%+v", q.Len(), q.Counters())
	}
	if !q.Remove(annID("b")) || q.Len() != 0 {
		t.Fatal("remove failed")
	}
}

func annID(s string) annotation.ID { return annotation.ID(s) }

func ids(jobs []Job) []string {
	out := make([]string, len(jobs))
	for i, j := range jobs {
		out[i] = string(j.Annotation)
	}
	return out
}
