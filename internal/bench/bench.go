// Package bench implements the experiment harness that regenerates every
// table and figure of the paper's evaluation (§8). Each FigNN function
// runs the corresponding experiment and returns a printable table with the
// same rows/series the paper reports; bench_test.go wraps them in
// testing.B benchmarks and cmd/nebulactl exposes them on the command line.
// Measured results are recorded in EXPERIMENTS.md.
package bench

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"nebula/internal/workload"
)

// BenchEnv is the measurement-environment header written into benchmark
// JSON artifacts, so a recorded number is never read without knowing the
// machine shape (in particular GOMAXPROCS — parallel and shard scaling
// results are meaningless without it).
type BenchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// CurrentBenchEnv captures the running process's environment.
func CurrentBenchEnv() BenchEnv {
	return BenchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// Table is a printable experiment result.
type Table struct {
	// Title identifies the experiment ("Figure 12(a) ...").
	Title string
	// Header names the columns.
	Header []string
	// Rows are the result rows, formatted.
	Rows [][]string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	printRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	fmt.Fprintln(w, strings.Join(sep, "  "))
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// WriteCSV renders the table as RFC-4180 CSV (header row first). The title
// is emitted as a `# comment` line so concatenated experiment outputs stay
// self-describing.
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the table as a JSON object with title, header, and
// rows, one object per call (callers concatenate into a JSON-lines file).
func (t *Table) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(struct {
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
	}{Title: t.Title, Header: t.Header, Rows: t.Rows})
}

// WriteMarkdown renders the table as a GitHub-flavoured markdown table with
// the title as a heading — the format EXPERIMENTS.md embeds directly.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
		return err
	}
	row := func(cells []string) error {
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		return err
	}
	if err := row(t.Header); err != nil {
		return err
	}
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.Rows {
		if err := row(r); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Write renders the table in the requested format: "text" (default),
// "csv", "json", or "markdown".
func (t *Table) Write(w io.Writer, format string) error {
	switch format {
	case "", "text":
		t.Print(w)
		return nil
	case "csv":
		return t.WriteCSV(w)
	case "json":
		return t.WriteJSON(w)
	case "markdown", "md":
		return t.WriteMarkdown(w)
	default:
		return fmt.Errorf("bench: unknown output format %q (text|csv|json|markdown)", format)
	}
}

// Env is a prepared experimental environment: one generated dataset.
type Env struct {
	// Name is the dataset label (D_small / D_mid / D_large).
	Name string
	// Dataset is the generated data.
	Dataset *workload.Dataset
}

// DatasetSizes enumerates the three dataset labels in growth order.
var DatasetSizes = []string{"small", "mid", "large"}

var (
	envMu    sync.Mutex
	envCache = map[string]*Env{}
)

// LoadEnv generates (or returns the cached) dataset of the given size.
// Sizes: "tiny", "small", "mid", "large". Generation is deterministic in
// the seed, and environments are cached per (size, seed) for the lifetime
// of the process because benchmarks reuse them heavily. The cached dataset
// is shared: callers must not mutate it (use FreshEnv to get a private
// copy to grow an engine on).
func LoadEnv(size string, seed int64) (*Env, error) {
	key := fmt.Sprintf("%s/%d", size, seed)
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[key]; ok {
		return e, nil
	}
	e, err := FreshEnv(size, seed)
	if err != nil {
		return nil, err
	}
	envCache[key] = e
	return e, nil
}

// FreshEnv generates a private, uncached dataset of the given size —
// byte-identical to what LoadEnv would cache (generation is deterministic
// in the seed) but safe for callers that mutate it, such as the serving
// load test inserting workload annotations into the store.
func FreshEnv(size string, seed int64) (*Env, error) {
	var cfg workload.Config
	switch size {
	case "tiny":
		cfg = workload.TinyConfig(seed)
	case "small":
		cfg = workload.SmallConfig(seed)
	case "mid":
		cfg = workload.MidConfig(seed)
	case "large":
		cfg = workload.LargeConfig(seed)
	default:
		return nil, fmt.Errorf("bench: unknown dataset size %q (tiny|small|mid|large)", size)
	}
	ds, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Env{Name: "D_" + size, Dataset: ds}, nil
}

// fmtDur renders a duration in milliseconds with 3 decimals.
func fmtMs(ns int64) string { return fmt.Sprintf("%.3f", float64(ns)/1e6) }

// fmtF renders a float with 3 decimals.
func fmtF(f float64) string { return fmt.Sprintf("%.3f", f) }

// fmtI renders an int.
func fmtI(n int) string { return fmt.Sprintf("%d", n) }
