package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func tinyEnv(t testing.TB) *Env {
	t.Helper()
	env, err := LoadEnv("tiny", 42)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestLoadEnvCachesAndValidates(t *testing.T) {
	a := tinyEnv(t)
	b := tinyEnv(t)
	if a != b {
		t.Error("env not cached")
	}
	if _, err := LoadEnv("gigantic", 1); err == nil {
		t.Error("unknown size should fail")
	}
	if a.Name != "D_tiny" {
		t.Errorf("name = %q", a.Name)
	}
}

func TestTablePrint(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"a", "longcolumn"},
		Rows:   [][]string{{"1", "2"}, {"333333", "4"}},
	}
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "longcolumn") {
		t.Errorf("print output: %q", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 { // title+head+sep+2 rows
		t.Errorf("unexpected line count:\n%s", out)
	}
}

func TestFig11Tables(t *testing.T) {
	env := tinyEnv(t)
	a := Fig11a(env)
	if len(a.Rows) != len(Epsilons)*4 {
		t.Errorf("fig11a rows = %d", len(a.Rows))
	}
	b := Fig11b(env)
	// Query counts must not increase with ε within a workload class.
	counts := map[string]map[float64]float64{}
	for i, row := range b.Rows {
		eps := Epsilons[i/4]
		if counts[row[0]] == nil {
			counts[row[0]] = map[float64]float64{}
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		counts[row[0]][eps] = v
	}
	for wl, byEps := range counts {
		if byEps[0.4] < byEps[0.6] || byEps[0.6] < byEps[0.8] {
			t.Errorf("%s: query counts not monotone in eps: %v", wl, byEps)
		}
	}
	c := Fig11c(env)
	// ε=0.6 must have zero query false negatives (the paper's finding our
	// default depends on).
	for i, row := range c.Rows {
		eps := Epsilons[i/4]
		if eps == 0.6 && row[3] != "0.000" {
			t.Errorf("fig11c: eps=0.6 FN%% = %s for %s", row[3], row[0])
		}
	}
}

func TestFig12AndFig13Tables(t *testing.T) {
	env := tinyEnv(t)
	a := Fig12a([]*Env{env}, false)
	if len(a.Rows) != 4 {
		t.Errorf("fig12a rows = %d", len(a.Rows))
	}
	// Naive measured on L^50, n/a elsewhere.
	if a.Rows[0][2] == "n/a" || a.Rows[1][2] != "n/a" {
		t.Errorf("naive columns: %v / %v", a.Rows[0], a.Rows[1])
	}
	b := Fig12b([]*Env{env}, false)
	// Naive must return far more tuples than Nebula on L^50.
	naive, err := strconv.ParseFloat(b.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	n06, err := strconv.ParseFloat(b.Rows[0][3], 64)
	if err != nil {
		t.Fatal(err)
	}
	if naive <= n06*3 {
		t.Errorf("naive %.1f tuples vs nebula %.1f — expected noisy baseline", naive, n06)
	}
	c := Fig13([]*Env{env})
	if len(c.Rows) != 4 {
		t.Errorf("fig13 rows = %d", len(c.Rows))
	}
}

func TestFig14Tables(t *testing.T) {
	env := tinyEnv(t)
	a := Fig14a(env)
	if len(a.Rows) != len(Fig14Deltas) {
		t.Errorf("fig14a rows = %d", len(a.Rows))
	}
	b := Fig14b(env)
	// Spreading must produce no more tuples than full search, and K must be
	// monotone.
	for _, row := range b.Rows {
		full, _ := strconv.ParseFloat(row[1], 64)
		k2, _ := strconv.ParseFloat(row[2], 64)
		k3, _ := strconv.ParseFloat(row[3], 64)
		k4, _ := strconv.ParseFloat(row[4], 64)
		if k2 > full || k4 > full {
			t.Errorf("spreading produced more than full search: %v", row)
		}
		if k2 > k3+1e-9 || k3 > k4+1e-9 {
			t.Errorf("tuples not monotone in K: %v", row)
		}
	}
}

func TestFig15Tables(t *testing.T) {
	env := tinyEnv(t)
	a, err := Fig15a(env, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Rows) != 8 {
		t.Errorf("fig15a rows = %d", len(a.Rows))
	}
	b := Fig15b(env)
	if len(b.Rows) != 8 {
		t.Errorf("fig15b rows = %d", len(b.Rows))
	}
	// In the no-expert configuration M_F must be 0 everywhere.
	for _, row := range b.Rows {
		if row[3] != "0.000" {
			t.Errorf("fig15b M_F non-zero: %v", row)
		}
	}
	n := NaiveAssessment(env)
	if len(n.Rows) != 1 {
		t.Errorf("naive assessment rows = %d", len(n.Rows))
	}
	// The naive manual effort dwarfs any Nebula configuration.
	naiveMF, _ := strconv.ParseFloat(n.Rows[0][2], 64)
	nebulaMF, _ := strconv.ParseFloat(a.Rows[0][3], 64)
	if naiveMF <= nebulaMF*5 {
		t.Errorf("naive M_F %.1f vs nebula %.1f — expected a large gap", naiveMF, nebulaMF)
	}
}

func TestHopProfileTable(t *testing.T) {
	env := tinyEnv(t)
	tab := HopProfileTable(env)
	if len(tab.Rows) < 2 {
		t.Fatalf("profile rows = %d", len(tab.Rows))
	}
	// Coverage column is non-decreasing.
	prev := 0.0
	for _, row := range tab.Rows {
		if row[0] == "unreachable" {
			continue
		}
		c, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if c < prev {
			t.Errorf("coverage decreasing: %v", tab.Rows)
		}
		prev = c
	}
}

func TestAblationTables(t *testing.T) {
	env := tinyEnv(t)
	a := AblationContextAdjustment(env)
	if len(a.Rows) != 8 {
		t.Errorf("context ablation rows = %d", len(a.Rows))
	}
	b := AblationFocalAdjustment(env)
	if len(b.Rows) != 2 {
		t.Errorf("focal ablation rows = %d", len(b.Rows))
	}
	// The focal adjustment should not hurt F_N under no-expert bounds.
	fnAdj, _ := strconv.ParseFloat(b.Rows[0][1], 64)
	fnOff, _ := strconv.ParseFloat(b.Rows[1][1], 64)
	if fnAdj > fnOff+0.15 {
		t.Errorf("focal adjustment degraded F_N: %f vs %f", fnAdj, fnOff)
	}
}

func TestTuneBoundsForEnv(t *testing.T) {
	env := tinyEnv(t)
	b, err := TuneBoundsForEnv(env, 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("invalid tuned bounds: %v", err)
	}
}

func TestAblationSearchTechnique(t *testing.T) {
	env := tinyEnv(t)
	tab := AblationSearchTechnique(env)
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Both techniques should achieve useful recall on this clean fixture.
	for _, row := range tab.Rows {
		rec, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if rec < 0.5 {
			t.Errorf("%s/%s recall = %f", row[0], row[1], rec)
		}
	}
}

func TestWorkloadSummaryTable(t *testing.T) {
	env := tinyEnv(t)
	tab := WorkloadSummary(env)
	if len(tab.Rows) != 12 { // 4 sizes × 3 classes
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// The L^50 × L7-10 cell is empty (the paper's footnote substitution).
	for _, row := range tab.Rows {
		if row[0] == "L^50" && row[1] == "L7-10" && row[2] != "0" {
			t.Errorf("L^50/L7-10 should be empty: %v", row)
		}
	}
	total := 0
	for _, row := range tab.Rows {
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 60 {
		t.Errorf("total workload annotations = %d, want 60", total)
	}
}

func TestTableWriteFormats(t *testing.T) {
	env := tinyEnv(t)
	tab := WorkloadSummary(env)
	var buf bytes.Buffer
	if err := tab.Write(&buf, "csv"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "# Figure 18") {
		t.Errorf("csv output: %q", buf.String()[:40])
	}
	buf.Reset()
	if err := tab.Write(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"title"`) {
		t.Error("json output missing title")
	}
	buf.Reset()
	if err := tab.Write(&buf, "text"); err != nil || buf.Len() == 0 {
		t.Error("text output failed")
	}
	if err := tab.Write(&buf, "yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}
