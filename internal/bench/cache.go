package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"nebula"
)

// CacheResult records the cold-vs-warm comparison of the multi-level
// result cache at one dataset size: every workload annotation is
// discovered once against cold caches, then the same sweep is repeated and
// the best warm time kept. Identical reports whether the warm runs and a
// caching-disabled control engine all rendered byte-identical candidates —
// the cache must change latency, never output.
type CacheResult struct {
	Dataset     string `json:"dataset"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Annotations int    `json:"annotations"`
	WarmRounds  int    `json:"warm_rounds"`
	ColdNS      int64  `json:"cold_ns"`
	WarmNS      int64  `json:"warm_ns"`
	// Speedup is ColdNS / WarmNS.
	Speedup float64 `json:"speedup"`
	// WarmHits/WarmMisses/HitRate are deltas across the warm phase,
	// summed over all four cache layers.
	WarmHits   int64   `json:"warm_hits"`
	WarmMisses int64   `json:"warm_misses"`
	HitRate    float64 `json:"hit_rate"`
	// Per-layer warm-phase hit deltas.
	ScanHits      int64 `json:"scan_hits"`
	QueryHits     int64 `json:"query_hits"`
	MappingHits   int64 `json:"mapping_hits"`
	DiscoveryHits int64 `json:"discovery_hits"`
	// CacheBytes is the occupancy after the warm phase; CacheMaxBytes the
	// configured ceiling (summed over layers).
	CacheBytes    int64 `json:"cache_bytes"`
	CacheMaxBytes int64 `json:"cache_max_bytes"`
	Identical     bool  `json:"identical"`
}

// cacheBenchEngine builds an engine over a private dataset, seeds the
// workload annotations, and returns the engine with the annotation IDs.
func cacheBenchEngine(size string, seed int64, disabled bool, maxBytes int64) (*nebula.Engine, []nebula.AnnotationID, string, error) {
	env, err := FreshEnv(size, seed)
	if err != nil {
		return nil, nil, "", err
	}
	ds := env.Dataset
	opts := nebula.DefaultOptions()
	opts.Cache.Disabled = disabled
	if maxBytes > 0 {
		opts.Cache.MaxBytes = maxBytes
	}
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		return nil, nil, "", err
	}
	ids := make([]nebula.AnnotationID, 0, len(ds.Workload))
	for _, spec := range ds.Workload {
		if err := engine.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			return nil, nil, "", fmt.Errorf("bench: seed annotation %s: %w", spec.Ann.ID, err)
		}
		ids = append(ids, spec.Ann.ID)
	}
	return engine, ids, env.Name, nil
}

// renderCacheDiscovery folds one run into the identity rendering: the
// candidates, their order, confidences, evidence, and the query count —
// everything the cache must preserve. Cost counters are excluded by
// design: stats account actual work, and a cache hit does less of it.
func renderCacheDiscovery(b *strings.Builder, id nebula.AnnotationID, d *nebula.Discovery) {
	fmt.Fprintf(b, "%s q=%d:", id, len(d.Queries))
	for _, c := range d.Candidates {
		fmt.Fprintf(b, " %s=%.9f[%s]", c.Tuple.ID, c.Confidence, strings.Join(c.Evidence, ","))
	}
	b.WriteByte('\n')
}

// cachePass discovers every annotation once, returning the sweep's wall
// clock and its identity rendering.
func cachePass(engine *nebula.Engine, ids []nebula.AnnotationID) (time.Duration, string, error) {
	var b strings.Builder
	start := time.Now()
	for _, id := range ids {
		d, err := engine.Discover(id)
		if err != nil {
			return 0, "", fmt.Errorf("bench: discover %s: %w", id, err)
		}
		renderCacheDiscovery(&b, id, d)
	}
	return time.Since(start), b.String(), nil
}

// RunCacheBench measures the multi-level result cache at each requested
// dataset size: one cold sweep over the workload annotations, warmRounds
// repeated sweeps (best time kept), hit-rate and occupancy deltas from the
// engine's cache counters, and a byte-identity check against a
// caching-disabled control engine over the identical dataset.
func RunCacheBench(sizes []string, seed int64, warmRounds int, maxBytes int64) ([]CacheResult, error) {
	if warmRounds < 1 {
		warmRounds = 1
	}
	var out []CacheResult
	for _, size := range sizes {
		engine, ids, name, err := cacheBenchEngine(size, seed, false, maxBytes)
		if err != nil {
			return nil, err
		}
		coldTime, coldRender, err := cachePass(engine, ids)
		if err != nil {
			return nil, err
		}
		afterCold := engine.CacheStats()

		warmBest := time.Duration(0)
		warmRender := ""
		for r := 0; r < warmRounds; r++ {
			t, rendered, err := cachePass(engine, ids)
			if err != nil {
				return nil, err
			}
			if warmBest == 0 || t < warmBest {
				warmBest = t
			}
			warmRender = rendered
		}
		afterWarm := engine.CacheStats()

		// The control engine re-runs the identical workload with caching
		// off: generation is deterministic in the seed, so its rendering
		// must match both the cold and the warm sweeps byte for byte.
		control, controlIDs, _, err := cacheBenchEngine(size, seed, true, maxBytes)
		if err != nil {
			return nil, err
		}
		_, controlRender, err := cachePass(control, controlIDs)
		if err != nil {
			return nil, err
		}

		warmTotals, coldTotals := afterWarm.Totals(), afterCold.Totals()
		hits := warmTotals.Hits - coldTotals.Hits
		misses := warmTotals.Misses - coldTotals.Misses
		res := CacheResult{
			Dataset:       name,
			GOMAXPROCS:    runtime.GOMAXPROCS(0),
			Annotations:   len(ids),
			WarmRounds:    warmRounds,
			ColdNS:        coldTime.Nanoseconds(),
			WarmNS:        warmBest.Nanoseconds(),
			WarmHits:      hits,
			WarmMisses:    misses,
			ScanHits:      afterWarm.Scan.Hits - afterCold.Scan.Hits,
			QueryHits:     afterWarm.Query.Hits - afterCold.Query.Hits,
			MappingHits:   afterWarm.Mapping.Hits - afterCold.Mapping.Hits,
			DiscoveryHits: afterWarm.Discovery.Hits - afterCold.Discovery.Hits,
			CacheBytes:    warmTotals.Bytes,
			CacheMaxBytes: warmTotals.MaxBytes,
			Identical:     warmRender == coldRender && controlRender == coldRender,
		}
		if warmBest > 0 {
			res.Speedup = float64(coldTime) / float64(warmBest)
		}
		if hits+misses > 0 {
			res.HitRate = float64(hits) / float64(hits+misses)
		}
		out = append(out, res)
	}
	return out, nil
}

// CacheTable renders cache benchmark results as a printable table.
func CacheTable(results []CacheResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Result cache — cold vs warm discovery sweeps (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Header: []string{"dataset", "annotations", "cold-ms", "warm-ms", "speedup",
			"hit-rate", "disc-hits", "bytes", "max-bytes", "identical"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmtI(r.Annotations), fmtMs(r.ColdNS), fmtMs(r.WarmNS),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%.1f%%", 100*r.HitRate),
			fmt.Sprintf("%d", r.DiscoveryHits), fmt.Sprintf("%d", r.CacheBytes),
			fmt.Sprintf("%d", r.CacheMaxBytes), fmt.Sprintf("%v", r.Identical),
		})
	}
	return t
}

// WriteCacheJSON writes the results as indented JSON (the BENCH_cache.json
// artifact).
func WriteCacheJSON(w io.Writer, results []CacheResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
