package bench

import (
	"fmt"
	"strings"
	"time"

	"nebula/internal/discovery"
	"nebula/internal/keyword"
	"nebula/internal/relational"
	"nebula/internal/sigmap"
	"nebula/internal/verification"
	"nebula/internal/workload"
)

// AblationContextAdjustment isolates the §5.2.2 context-based weight
// adjustment: query quality (Figure 11c criteria) with the adjustment
// enabled vs disabled (β1 = β2 = β3 = 0).
func AblationContextAdjustment(env *Env) *Table {
	t := &Table{
		Title:  "Ablation — context-based weight adjustment (" + env.Name + ", eps=0.6)",
		Header: []string{"workload", "variant", "avg_queries", "FP_pct", "FN_pct"},
	}
	for _, size := range workload.AnnotationSizes {
		for _, enabled := range []bool{true, false} {
			specs := env.Dataset.WorkloadSet(size, workload.RefClass{})
			var totalQueries, fpQueries, refs, missed int
			for _, spec := range specs {
				gen := sigmap.NewGenerator(env.Dataset.Meta, 0.6)
				if !enabled {
					gen.Beta1, gen.Beta2, gen.Beta3 = 0, 0, 0
				}
				queries, _ := gen.Generate(spec.Ann.Body)
				totalQueries += len(queries)
				truth := map[string]bool{}
				for _, kw := range spec.RefKeywords {
					truth[strings.ToLower(kw)] = true
				}
				covered := map[string]bool{}
				for _, q := range queries {
					isTP := false
					for _, k := range q.Keywords {
						if truth[strings.ToLower(k.Text)] {
							isTP = true
							covered[strings.ToLower(k.Text)] = true
						}
					}
					if !isTP {
						fpQueries++
					}
				}
				refs += len(spec.RefKeywords)
				for _, kw := range spec.RefKeywords {
					if !covered[strings.ToLower(kw)] {
						missed++
					}
				}
			}
			variant := "adjusted"
			if !enabled {
				variant = "no-adjust"
			}
			fpPct, fnPct := 0.0, 0.0
			if totalQueries > 0 {
				fpPct = 100 * float64(fpQueries) / float64(totalQueries)
			}
			if refs > 0 {
				fnPct = 100 * float64(missed) / float64(refs)
			}
			t.Rows = append(t.Rows, []string{
				"L^" + fmtI(size), variant,
				fmtF(float64(totalQueries) / float64(max(1, len(specs)))),
				fmtF(fpPct), fmtF(fnPct),
			})
		}
	}
	return t
}

// AblationFocalAdjustment isolates the §6.2 focal-based confidence
// adjustment: assessment quality with the ACG reward enabled vs disabled,
// under the no-expert bounds where ranking quality matters most.
func AblationFocalAdjustment(env *Env) *Table {
	ds := env.Dataset
	bounds := verification.Bounds{Lower: 0.5, Upper: 0.5}
	t := &Table{
		Title:  "Ablation — focal-based confidence adjustment (" + env.Name + ", eps=0.6, bounds [0.5,0.5])",
		Header: []string{"variant", "F_N", "F_P", "M_F", "M_H"},
	}
	for _, enabled := range []bool{true, false} {
		specs := ds.WorkloadSet(Fig15Size, workload.RefClass{})
		var per []verification.Assessment
		for _, spec := range specs {
			gen := sigmap.NewGenerator(ds.Meta, 0.6)
			queries, _ := gen.Generate(spec.Ann.Body)
			focal := spec.Focal(1)
			d := discovery.New(ds.DB, ds.Meta, ds.Graph)
			cands, _, err := d.IdentifyRelatedTuples(queries, focal, discovery.Options{
				Shared:          true,
				FocalAdjustment: enabled,
			})
			if err != nil {
				panic(err)
			}
			oracle := verification.NewIdealTupleOracle(spec.Ann.ID, spec.Related)
			per = append(per, verification.Assess(spec.Ann.ID, cands, bounds, oracle,
				len(spec.Related), len(focal)))
		}
		a := verification.Average(per)
		variant := "focal-adjusted"
		if !enabled {
			variant = "no-focal"
		}
		t.Rows = append(t.Rows, []string{variant, fmtF(a.FN), fmtF(a.FP), fmtF(a.MF), fmtF(a.MH)})
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// AblationSearchTechnique compares the two pluggable keyword-search
// techniques (§4's black box): the metadata approach of [7] against a
// DBXplorer-style pre-built symbol table. Reported per L^m: average
// execution time, candidates, and recall of the hidden ground truth. The
// symbol table's one-off pre-processing time is reported in the title row.
func AblationSearchTechnique(env *Env) *Table {
	ds := env.Dataset

	prepStart := time.Now()
	symbolEngine := keyword.NewSymbolTableEngine(ds.DB)
	prep := time.Since(prepStart)

	t := &Table{
		Title: fmt.Sprintf("Ablation — search technique (%s, eps=0.6; symbol-table preprocessing %s, %d tokens)",
			env.Name, prep.Round(time.Millisecond), symbolEngine.Symbols()),
		Header: []string{"workload", "technique", "time_ms", "avg_candidates", "recall"},
	}
	techniques := []struct {
		name     string
		searcher func(db *relational.Database) keyword.Searcher
	}{
		{name: "metadata", searcher: nil},
		{name: "symboltable", searcher: func(db *relational.Database) keyword.Searcher {
			if db == ds.DB {
				return symbolEngine
			}
			return keyword.NewSymbolTableEngine(db)
		}},
	}
	for _, size := range workload.AnnotationSizes {
		specs := ds.WorkloadSet(size, workload.RefClass{})
		for _, tech := range techniques {
			d := discovery.New(ds.DB, ds.Meta, ds.Graph)
			d.NewSearcher = tech.searcher
			var dur time.Duration
			var totalCands, hiddenFound, hiddenTotal int
			for _, spec := range specs {
				gen := sigmap.NewGenerator(ds.Meta, 0.6)
				qs, _ := gen.Generate(spec.Ann.Body)
				focal := spec.Focal(1)
				start := time.Now()
				cands, _, err := d.IdentifyRelatedTuples(qs, focal, discovery.Options{Shared: true})
				if err != nil {
					panic(err)
				}
				dur += time.Since(start)
				totalCands += len(cands)
				hidden := map[relational.TupleID]bool{}
				for _, h := range spec.Hidden(1) {
					hidden[h] = true
					hiddenTotal++
				}
				for _, c := range cands {
					if hidden[c.Tuple.ID] {
						hiddenFound++
					}
				}
			}
			n := len(specs)
			recall := 0.0
			if hiddenTotal > 0 {
				recall = float64(hiddenFound) / float64(hiddenTotal)
			}
			t.Rows = append(t.Rows, []string{
				"L^" + fmtI(size), tech.name,
				fmtMs((dur / time.Duration(max(1, n))).Nanoseconds()),
				fmtF(float64(totalCands) / float64(max(1, n))),
				fmtF(recall),
			})
		}
	}
	return t
}
