package bench

import (
	"strings"
	"time"

	"nebula/internal/sigmap"
	"nebula/internal/workload"
)

// Epsilons are the cutoff thresholds evaluated in Figure 11.
var Epsilons = []float64{0.4, 0.6, 0.8}

// fig11Run holds the aggregated Stage-1 measurements for one (L^m, ε)
// cell, averaged over the cell's annotations as the paper does.
type fig11Run struct {
	size    int
	epsilon float64

	mapGen     time.Duration
	contextAdj time.Duration
	queryGen   time.Duration
	queries    float64

	falsePositivePct float64
	falseNegativePct float64
}

// runFig11 executes query generation for every workload annotation of each
// size class under one ε and aggregates the measurements.
func runFig11(env *Env, epsilon float64) []fig11Run {
	var out []fig11Run
	for _, size := range workload.AnnotationSizes {
		specs := env.Dataset.WorkloadSet(size, workload.RefClass{})
		run := fig11Run{size: size, epsilon: epsilon}
		var totalQueries, fpQueries, refs, missedRefs int
		for _, spec := range specs {
			gen := sigmap.NewGenerator(env.Dataset.Meta, epsilon)
			queries, stats := gen.Generate(spec.Ann.Body)
			run.mapGen += stats.MapGeneration
			run.contextAdj += stats.ContextAdjustment
			run.queryGen += stats.QueryGeneration
			totalQueries += len(queries)

			// Judge the queries against the generator's ground truth
			// (Figure 11c): a query is a true positive iff one of its value
			// keywords is an embedded reference keyword; an embedded
			// reference is missed iff no query carries its keyword.
			truth := make(map[string]bool, len(spec.RefKeywords))
			for _, kw := range spec.RefKeywords {
				truth[strings.ToLower(kw)] = true
			}
			covered := make(map[string]bool)
			for _, q := range queries {
				isTP := false
				for _, k := range q.Keywords {
					if truth[strings.ToLower(k.Text)] {
						isTP = true
						covered[strings.ToLower(k.Text)] = true
					}
				}
				if !isTP {
					fpQueries++
				}
			}
			refs += len(spec.RefKeywords)
			for _, kw := range spec.RefKeywords {
				if !covered[strings.ToLower(kw)] {
					missedRefs++
				}
			}
		}
		n := time.Duration(len(specs))
		if n > 0 {
			run.mapGen /= n
			run.contextAdj /= n
			run.queryGen /= n
			run.queries = float64(totalQueries) / float64(len(specs))
		}
		if totalQueries > 0 {
			run.falsePositivePct = 100 * float64(fpQueries) / float64(totalQueries)
		}
		if refs > 0 {
			run.falseNegativePct = 100 * float64(missedRefs) / float64(refs)
		}
		out = append(out, run)
	}
	return out
}

// Fig11a reproduces Figure 11(a): the query-generation time split into the
// three phases (signature-map generation, overlay + context adjustment,
// query generation), per L^m and ε.
func Fig11a(env *Env) *Table {
	t := &Table{
		Title:  "Figure 11(a) — Query generation time by phase (" + env.Name + ")",
		Header: []string{"workload", "epsilon", "maps_ms", "context_ms", "queries_ms", "total_ms"},
	}
	for _, eps := range Epsilons {
		for _, run := range runFig11(env, eps) {
			total := run.mapGen + run.contextAdj + run.queryGen
			t.Rows = append(t.Rows, []string{
				"L^" + fmtI(run.size), fmtF(run.epsilon),
				fmtMs(run.mapGen.Nanoseconds()), fmtMs(run.contextAdj.Nanoseconds()),
				fmtMs(run.queryGen.Nanoseconds()), fmtMs(total.Nanoseconds()),
			})
		}
	}
	return t
}

// Fig11b reproduces Figure 11(b): the number of generated keyword queries
// per L^m and ε.
func Fig11b(env *Env) *Table {
	t := &Table{
		Title:  "Figure 11(b) — Number of generated keyword queries (" + env.Name + ")",
		Header: []string{"workload", "epsilon", "avg_queries"},
	}
	for _, eps := range Epsilons {
		for _, run := range runFig11(env, eps) {
			t.Rows = append(t.Rows, []string{
				"L^" + fmtI(run.size), fmtF(run.epsilon), fmtF(run.queries),
			})
		}
	}
	return t
}

// Fig11c reproduces Figure 11(c): the percentage of generated queries that
// are not embedded references (false positives) and of embedded references
// not captured by any query (false negatives).
func Fig11c(env *Env) *Table {
	t := &Table{
		Title:  "Figure 11(c) — Query false positives / false negatives % (" + env.Name + ")",
		Header: []string{"workload", "epsilon", "FP_pct", "FN_pct"},
	}
	for _, eps := range Epsilons {
		for _, run := range runFig11(env, eps) {
			t.Rows = append(t.Rows, []string{
				"L^" + fmtI(run.size), fmtF(run.epsilon),
				fmtF(run.falsePositivePct), fmtF(run.falseNegativePct),
			})
		}
	}
	return t
}
