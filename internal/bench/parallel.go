package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"nebula/internal/keyword"
	"nebula/internal/sigmap"
)

// ParallelResult records one sequential-vs-parallel comparison of the
// keyword executor over the same query batch. SequentialNS/ParallelNS are
// the best (minimum) wall-clock times observed across the measurement
// rounds; Identical reports whether the parallel run's rendered results —
// tuples, order, confidences, producing queries, degradations — matched
// the sequential run byte for byte (it must: parallelism changes
// scheduling, never output).
type ParallelResult struct {
	Dataset      string  `json:"dataset"`
	GOMAXPROCS   int     `json:"gomaxprocs"`
	Workers      int     `json:"workers"`
	Shared       bool    `json:"shared"`
	Queries      int     `json:"queries"`
	SequentialNS int64   `json:"sequential_ns"`
	ParallelNS   int64   `json:"parallel_ns"`
	Speedup      float64 `json:"speedup"`
	Identical    bool    `json:"identical"`
}

// parallelBatch generates the benchmark's query batch: every workload
// annotation of the dataset contributes its Stage-1 keyword queries, with
// IDs prefixed by the annotation so they stay unique across the batch.
func parallelBatch(env *Env) []keyword.Query {
	ds := env.Dataset
	gen := sigmap.NewGenerator(ds.Meta, 0.6)
	var batch []keyword.Query
	for _, spec := range ds.Workload {
		queries, _ := gen.Generate(spec.Ann.Body)
		for _, q := range queries {
			q.ID = string(spec.Ann.ID) + "/" + q.ID
			batch = append(batch, q)
		}
	}
	return batch
}

// renderResults folds an executor result map into a canonical string for
// byte-identity comparison. Iteration follows the batch order, so the
// rendering is deterministic; the scheduling-only ExecStats fields
// (Workers, ParallelBatches) are deliberately excluded.
func renderResults(batch []keyword.Query, res map[string][]keyword.Result, stats keyword.ExecStats) string {
	var b strings.Builder
	for _, q := range batch {
		fmt.Fprintf(&b, "%s:", q.ID)
		for _, r := range res[q.ID] {
			fmt.Fprintf(&b, " %v=%.9f@%s", r.Tuple.ID, r.Confidence, r.Query)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "stats: sq=%d shared=%d scanned=%d returned=%d degraded=%v\n",
		stats.StructuredQueries, stats.SharedQueries, stats.TuplesScanned,
		stats.TuplesReturned, stats.Degraded)
	return b.String()
}

// measureBatch runs the batch `rounds` times at the given worker count and
// returns the best wall-clock time plus the rendering of the last run.
func measureBatch(eng *keyword.Engine, batch []keyword.Query, shared bool, workers, rounds int) (time.Duration, string, error) {
	best := time.Duration(0)
	var rendered string
	for r := 0; r < rounds; r++ {
		start := time.Now()
		res, stats, err := eng.ExecuteBatchContext(context.Background(), batch, shared, keyword.Limits{MaxWorkers: workers})
		elapsed := time.Since(start)
		if err != nil {
			return 0, "", fmt.Errorf("bench: parallel batch (workers=%d): %w", workers, err)
		}
		if best == 0 || elapsed < best {
			best = elapsed
		}
		rendered = renderResults(batch, res, stats)
	}
	return best, rendered, nil
}

// RunParallelBench compares sequential and parallel execution of the same
// keyword-query batch for every requested worker count, on both the
// isolated and the §6 shared execution strategies. Each comparison also
// verifies byte-identity of the results.
func RunParallelBench(env *Env, workerCounts []int, rounds int) ([]ParallelResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	batch := parallelBatch(env)
	eng := keyword.NewEngine(env.Dataset.DB, env.Dataset.Meta)
	var out []ParallelResult
	for _, shared := range []bool{false, true} {
		seqTime, seqRender, err := measureBatch(eng, batch, shared, 1, rounds)
		if err != nil {
			return nil, err
		}
		for _, w := range workerCounts {
			parTime, parRender, err := measureBatch(eng, batch, shared, w, rounds)
			if err != nil {
				return nil, err
			}
			res := ParallelResult{
				Dataset:      env.Name,
				GOMAXPROCS:   runtime.GOMAXPROCS(0),
				Workers:      w,
				Shared:       shared,
				Queries:      len(batch),
				SequentialNS: seqTime.Nanoseconds(),
				ParallelNS:   parTime.Nanoseconds(),
				Identical:    parRender == seqRender,
			}
			if parTime > 0 {
				res.Speedup = float64(seqTime) / float64(parTime)
			}
			out = append(out, res)
		}
	}
	return out, nil
}

// ParallelTable renders benchmark results as a printable table.
func ParallelTable(results []ParallelResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Parallel ExecuteBatch — sequential vs worker pool (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Header: []string{"dataset", "shared", "queries", "workers", "sequential-ms", "parallel-ms", "speedup", "identical"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmt.Sprintf("%v", r.Shared), fmtI(r.Queries), fmtI(r.Workers),
			fmtMs(r.SequentialNS), fmtMs(r.ParallelNS),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%v", r.Identical),
		})
	}
	return t
}

// parallelJSON is the BENCH_parallel.json document: the measurement
// environment header followed by the result rows.
type parallelJSON struct {
	Env     BenchEnv         `json:"env"`
	Results []ParallelResult `json:"results"`
}

// WriteParallelJSON writes the results with the environment header as
// indented JSON (the BENCH_parallel.json artifact).
func WriteParallelJSON(w io.Writer, results []ParallelResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(parallelJSON{Env: CurrentBenchEnv(), Results: results})
}
