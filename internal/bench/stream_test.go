package bench

import (
	"strings"
	"testing"
)

// TestStreamBenchIdentity runs the streaming bench at the tiny scale and
// asserts its core contract: the async pipeline with interleaved mutations
// converges byte-identical to synchronous from-scratch discovery, and the
// mutations actually exercised change-data-capture (re-discoveries > 0 —
// a zero here would mean the bench silently stopped measuring CDC).
func TestStreamBenchIdentity(t *testing.T) {
	r, err := RunStreamBench("tiny", 42, 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Identical {
		t.Fatalf("streaming state diverged from synchronous control: %+v", r)
	}
	if r.Rediscoveries == 0 {
		t.Fatalf("no CDC re-discoveries triggered: %+v", r)
	}
	if r.Drains == 0 || r.Done == 0 {
		t.Fatalf("pipeline did no work: %+v", r)
	}
	var sb strings.Builder
	StreamTable([]*StreamResult{r}).Print(&sb)
	if !strings.Contains(sb.String(), "true") {
		t.Fatalf("table rendering missing identical=true:\n%s", sb.String())
	}
	var jb strings.Builder
	if err := WriteStreamJSON(&jb, []*StreamResult{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jb.String(), `"identical": true`) {
		t.Fatalf("JSON rendering missing identical flag:\n%s", jb.String())
	}
}
