package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"nebula"
	"nebula/internal/workload"
)

// StoreResult records one restart mode of the disk-backed index benchmark.
// The scenario: an engine indexes a dataset, checkpoints (which in disk
// mode flushes the index tail into mmap-friendly segment files paired with
// the snapshot's generation), and shuts down. The benchmark then restarts
// from that snapshot twice — heap mode re-tokenizes the whole database on
// the first discovery, disk mode maps the segment files back in and only
// verifies the rows each lookup touches — and runs the same discovery
// sweep. The identity phase proves the substrate changed only where the
// postings live, never what discovery returns.
type StoreResult struct {
	Dataset string `json:"dataset"`
	// Mode is "heap" (postings rebuilt into Go maps at first use) or
	// "disk" (postings adopted from the segment directory).
	Mode string `json:"mode"`
	// Annotations is how many workload annotations the sweep discovers.
	Annotations int `json:"annotations"`
	// RestoreNS is snapshot load + engine construction (in disk mode this
	// includes opening the segment directory and verifying the manifest).
	RestoreNS int64 `json:"restore_ns"`
	// FirstDiscoverNS is the first post-restart discovery — where heap
	// mode pays the deferred full re-index and disk mode only verifies the
	// rows its lookups touch.
	FirstDiscoverNS int64 `json:"first_discover_ns"`
	// StartupNS (= RestoreNS + FirstDiscoverNS) is the restart cost: time
	// from opening the snapshot to the first discovery answer.
	StartupNS int64 `json:"startup_ns"`
	// SweepNS is the steady-state sweep over the remaining annotations
	// after the first answer (index warm in both modes).
	SweepNS int64 `json:"sweep_ns"`
	// HeapBytes is live Go heap (runtime.ReadMemStats.HeapAlloc after a
	// forced GC) with a restarted, index-resident engine deliberately kept
	// live — the process-memory cost of the substrate, measured in a
	// dedicated restore so no benchmark bookkeeping is in scope. Segment
	// postings live in mapped files, not on the heap, so disk mode should
	// sit below heap mode by roughly the in-heap index size.
	HeapBytes uint64 `json:"heap_bytes"`
	// Segments/SegmentPostings/SegmentBytes describe the on-disk store
	// after restart (zero in heap mode).
	Segments        int    `json:"segments"`
	SegmentPostings uint64 `json:"segment_postings"`
	SegmentBytes    int64  `json:"segment_bytes"`
	// Speedup is heap-mode StartupNS over this row's (1.0 for the heap
	// row) — how much faster this substrate gets back to answering.
	Speedup float64 `json:"speedup"`
	// Identical reports the discovery sweep rendered byte-for-byte equal
	// to the heap-mode control.
	Identical bool `json:"identical"`
}

// storeMetaSeed seeds the NebulaMeta rebuild on BOTH restore paths —
// identical configuration is a precondition of the identity phase.
const storeMetaSeed = 11

// storeBenchOptions is the engine configuration for both modes: symbol
// table search (the technique the disk substrate backs), caching off so
// every discovery does the full index work being measured.
func storeBenchOptions(dir string) nebula.Options {
	opts := nebula.DefaultOptions()
	opts.SearchTechnique = nebula.TechniqueSymbolTable
	opts.Cache = nebula.CacheConfig{Disabled: true}
	opts.Store = nebula.StoreConfig{Dir: dir}
	return opts
}

// storeRestart is one measured restart: restore from the snapshot, sweep
// every stored annotation through discovery, render the results.
type storeRestart struct {
	restoreNS   int64
	firstNS     int64
	sweepNS     int64
	annotations int
	render      string
	stats       nebula.StoreStats
}

// runStoreRestart restores the snapshot at snapPath under opts and runs
// the discovery sweep, timing the two phases separately.
func runStoreRestart(snapPath string, opts nebula.Options) (storeRestart, error) {
	var run storeRestart
	f, err := os.Open(snapPath)
	if err != nil {
		return run, err
	}
	defer f.Close()
	start := time.Now()
	engine, err := nebula.RestoreEngine(f, func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(storeMetaSeed)))
	}, opts)
	if err != nil {
		return run, err
	}
	run.restoreNS = time.Since(start).Nanoseconds()
	if opts.Store.Enabled() {
		defer engine.CloseStore()
	}

	ids := engine.Store().IDs()
	run.annotations = len(ids)
	var b strings.Builder
	discover := func(id nebula.AnnotationID) error {
		d, err := engine.Discover(id)
		if err != nil {
			return fmt.Errorf("bench: store: discover %s: %w", id, err)
		}
		fmt.Fprintf(&b, "%s:", id)
		for _, c := range d.Candidates {
			fmt.Fprintf(&b, " %v=%.9f", c.Tuple.ID, c.Confidence)
		}
		b.WriteByte('\n')
		return nil
	}
	// The first discovery is timed alone: it carries heap mode's deferred
	// full re-index, which is exactly the restart cost being compared.
	start = time.Now()
	if err := discover(ids[0]); err != nil {
		return run, err
	}
	run.firstNS = time.Since(start).Nanoseconds()
	start = time.Now()
	for _, id := range ids[1:] {
		if err := discover(id); err != nil {
			return run, err
		}
	}
	run.sweepNS = time.Since(start).Nanoseconds()
	run.render = b.String()
	run.stats = engine.StoreStats()
	return run, nil
}

// runStoreMem restores a second time purely to measure resident heap.
// The index substrate is fully resident after the first discovery (heap
// mode builds the whole in-heap table then; disk mode maps segments at
// open), so one probe suffices. The engine is explicitly kept live across
// the measurement — otherwise the GC is free to collect it after its last
// use and the number measures nothing. Mapped segment bytes do not appear
// here by design: they are file-backed pages, not Go heap.
func runStoreMem(snapPath string, opts nebula.Options) (uint64, error) {
	f, err := os.Open(snapPath)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	engine, err := nebula.RestoreEngine(f, func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(storeMetaSeed)))
	}, opts)
	if err != nil {
		return 0, err
	}
	ids := engine.Store().IDs()
	if len(ids) > 0 {
		if _, err := engine.Discover(ids[0]); err != nil {
			return 0, fmt.Errorf("bench: store: mem probe: %w", err)
		}
	}
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	resident := ms.HeapAlloc
	runtime.KeepAlive(engine)
	if opts.Store.Enabled() {
		if err := engine.CloseStore(); err != nil {
			return 0, err
		}
	}
	return resident, nil
}

// RunStoreBench builds the snapshot + segment directory under dir, then
// measures a heap-mode and a disk-mode restart from the same snapshot.
// The disk row's Identical must be true: adopting mapped segments instead
// of re-indexing must never change a discovery.
func RunStoreBench(size string, seed int64, dir string) ([]StoreResult, error) {
	env, err := FreshEnv(size, seed)
	if err != nil {
		return nil, err
	}
	ds := env.Dataset
	storeDir := filepath.Join(dir, "segments")
	snapPath := filepath.Join(dir, "state.nebsnap")

	// Build phase: index the workload in disk mode and checkpoint, pairing
	// the snapshot with a flushed segment generation.
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, storeBenchOptions(storeDir))
	if err != nil {
		return nil, err
	}
	specs := streamWorkload(env)
	if len(specs) == 0 {
		return nil, fmt.Errorf("bench: store: empty workload")
	}
	for _, spec := range specs {
		if err := engine.AddAnnotation(spec.ann, spec.focal); err != nil {
			return nil, fmt.Errorf("bench: store: add %s: %w", spec.ann.ID, err)
		}
	}
	// The first discovery triggers the full re-index into the tail; the
	// snapshot then flushes that tail into segments.
	if _, err := engine.Discover(specs[0].ann.ID); err != nil {
		return nil, fmt.Errorf("bench: store: prime: %w", err)
	}
	if err := engine.SaveSnapshotFile(snapPath); err != nil {
		return nil, fmt.Errorf("bench: store: snapshot: %w", err)
	}
	if st := engine.StoreStats(); st.Store.Segments == 0 || st.Store.Seq == 0 {
		return nil, fmt.Errorf("bench: store: snapshot flushed no segments: %+v", st)
	}
	if err := engine.CloseStore(); err != nil {
		return nil, fmt.Errorf("bench: store: close: %w", err)
	}

	heap, err := runStoreRestart(snapPath, storeBenchOptions(""))
	if err != nil {
		return nil, err
	}
	disk, err := runStoreRestart(snapPath, storeBenchOptions(storeDir))
	if err != nil {
		return nil, err
	}
	if disk.stats.FullPending {
		return nil, fmt.Errorf("bench: store: disk restart did not adopt the segments: %+v", disk.stats)
	}
	// Identity is decided before the memory runs so the multi-MB renders
	// can be released and not pollute the resident-heap numbers.
	identical := disk.render != "" && disk.render == heap.render
	heap.render, disk.render = "", ""
	heapMem, err := runStoreMem(snapPath, storeBenchOptions(""))
	if err != nil {
		return nil, err
	}
	diskMem, err := runStoreMem(snapPath, storeBenchOptions(storeDir))
	if err != nil {
		return nil, err
	}

	dataset := "D_" + size
	rows := []StoreResult{
		{
			Dataset: dataset, Mode: "heap", Annotations: heap.annotations,
			RestoreNS: heap.restoreNS, FirstDiscoverNS: heap.firstNS,
			StartupNS: heap.restoreNS + heap.firstNS, SweepNS: heap.sweepNS,
			HeapBytes: heapMem,
			Speedup:   1.0, Identical: true,
		},
		{
			Dataset: dataset, Mode: "disk", Annotations: disk.annotations,
			RestoreNS: disk.restoreNS, FirstDiscoverNS: disk.firstNS,
			StartupNS: disk.restoreNS + disk.firstNS, SweepNS: disk.sweepNS,
			HeapBytes:       diskMem,
			Segments:        disk.stats.Store.Segments,
			SegmentPostings: disk.stats.Store.Postings,
			SegmentBytes:    disk.stats.Store.SizeBytes,
			Identical:       identical,
		},
	}
	if rows[1].StartupNS > 0 {
		rows[1].Speedup = float64(rows[0].StartupNS) / float64(rows[1].StartupNS)
	}
	return rows, nil
}

// StoreTable renders the results for terminals.
func StoreTable(results []StoreResult) *Table {
	t := &Table{
		Title:  "Disk-backed index — restart cost by substrate (heap rebuild vs mapped segments)",
		Header: []string{"dataset", "mode", "annotations", "restore-ms", "first-ms", "startup-ms", "sweep-ms", "heap-mb", "segments", "postings", "seg-bytes", "speedup", "identical"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, r.Mode, fmtI(r.Annotations),
			fmtMs(r.RestoreNS), fmtMs(r.FirstDiscoverNS), fmtMs(r.StartupNS), fmtMs(r.SweepNS),
			fmt.Sprintf("%.2f", float64(r.HeapBytes)/(1<<20)),
			fmtI(r.Segments), fmt.Sprintf("%d", r.SegmentPostings), fmt.Sprintf("%d", r.SegmentBytes),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%v", r.Identical),
		})
	}
	return t
}

// storeJSON is the BENCH_store.json document.
type storeJSON struct {
	Env     BenchEnv      `json:"env"`
	Results []StoreResult `json:"results"`
}

// WriteStoreJSON emits the results (with the environment header) for
// BENCH_store.json.
func WriteStoreJSON(w io.Writer, results []StoreResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(storeJSON{Env: CurrentBenchEnv(), Results: results})
}
