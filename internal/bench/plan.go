package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"time"

	"nebula/internal/discovery"
	"nebula/internal/keyword"
	"nebula/internal/relational"
	"nebula/internal/sigmap"
)

// PlanResult records one planning-off vs planning-on comparison of
// end-to-end discovery (Stage 1 queries pre-generated, Stage 2 timed) over
// the full workload at one top-k. ExhaustiveNS/PlannedNS are the best
// (minimum) wall-clock times across the measurement rounds; Identical
// reports whether the planned runs' candidates — tuples, confidences,
// rank order, evidence — matched the exhaustive top-k byte for byte (the
// planner's exactness contract).
type PlanResult struct {
	Dataset           string  `json:"dataset"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	Annotations       int     `json:"annotations"`
	TopK              int     `json:"topk"`
	Queries           int     `json:"queries"`
	ExecutedQueries   int     `json:"executed_queries"`
	PrunedQueries     int     `json:"pruned_queries"`
	ScannedExhaustive int     `json:"scanned_exhaustive"`
	ScannedPlanned    int     `json:"scanned_planned"`
	ExhaustiveNS      int64   `json:"exhaustive_ns"`
	PlannedNS         int64   `json:"planned_ns"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"identical"`
}

// planJob is one workload annotation's discovery input.
type planJob struct {
	queries []keyword.Query
	focal   []relational.TupleID
}

// planJobs pre-generates Stage 1 for every workload annotation so the
// benchmark times Stage 2 — the stage planning changes — in isolation.
func planJobs(env *Env) []planJob {
	ds := env.Dataset
	gen := sigmap.NewGenerator(ds.Meta, 0.6)
	jobs := make([]planJob, 0, len(ds.Workload))
	for _, spec := range ds.Workload {
		queries, _ := gen.Generate(spec.Ann.Body)
		for i := range queries {
			queries[i].ID = string(spec.Ann.ID) + "/" + queries[i].ID
		}
		jobs = append(jobs, planJob{queries: queries, focal: spec.Focal(1)})
	}
	return jobs
}

// planReferenceJobs composes the identifier-dense annotation class the
// planner targets: each annotation lists the primary-key identifiers of
// tuples in its focal tuple's ACG neighborhood — the paper's motivating
// curation pattern, a note enumerating the genes and proteins it covers.
// Every reference resolves through an index probe, so the index wave alone
// pins the top-k and the trailing table scans (the alternate column
// probes of each identifier) are provably redundant — the case top-k
// pruning exists for. The stock workload's fuzzy by-name references, in
// contrast, are only discoverable by scanning, and the planner correctly
// refuses to prune those passes.
func planReferenceJobs(env *Env, refs int) []planJob {
	ds := env.Dataset
	gen := sigmap.NewGenerator(ds.Meta, 0.6)
	jobs := make([]planJob, 0, len(ds.Workload))
	for _, spec := range ds.Workload {
		focal := spec.Focal(1)
		if len(focal) == 0 {
			continue
		}
		var b strings.Builder
		n := 0
		for _, id := range append([]relational.TupleID{focal[0]}, ds.Graph.Neighbors(focal[0])...) {
			table := strings.ToLower(id.Table)
			if table != "gene" {
				continue
			}
			row, ok := ds.DB.Lookup(id)
			if !ok {
				continue
			}
			pk, ok := row.Get(row.Schema().PrimaryKey)
			if !ok {
				continue
			}
			fmt.Fprintf(&b, "%s %s. ", table, pk.Str())
			if n++; n == refs {
				break
			}
		}
		if n < refs {
			continue
		}
		queries, _ := gen.Generate(b.String())
		for i := range queries {
			queries[i].ID = string(spec.Ann.ID) + "/refs/" + queries[i].ID
		}
		jobs = append(jobs, planJob{queries: queries, focal: focal})
	}
	return jobs
}

// planSweepStats aggregates one full-workload discovery sweep.
type planSweepStats struct {
	rendered string
	queries  int
	executed int
	pruned   int
	scanned  int
}

// runPlanSweep runs every job through discovery with the given options and
// renders the candidates canonically. Each sweep uses a fresh, uncached
// discoverer so the exhaustive and planned modes are compared equally cold.
func runPlanSweep(env *Env, jobs []planJob, plan bool, topK int) (time.Duration, planSweepStats, error) {
	ds := env.Dataset
	d := discovery.New(ds.DB, ds.Meta, ds.Graph)
	d.Uncached = true
	var agg planSweepStats
	var b strings.Builder
	start := time.Now()
	for ji, job := range jobs {
		opts := discovery.Options{
			Shared: true, FocalAdjustment: true, Plan: plan, TopK: topK,
		}
		cands, stats, err := d.IdentifyRelatedTuples(job.queries, job.focal, opts)
		if err != nil {
			return 0, agg, fmt.Errorf("bench: plan sweep (job %d, plan=%v): %w", ji, plan, err)
		}
		fmt.Fprintf(&b, "%d:", ji)
		for _, c := range cands {
			fmt.Fprintf(&b, " %v=%.9f[%s]", c.Tuple.ID, c.Confidence, strings.Join(c.Evidence, ","))
		}
		b.WriteByte('\n')
		agg.queries += len(job.queries)
		agg.scanned += stats.Exec.TuplesScanned
		if stats.Plan != nil {
			agg.executed += stats.Plan.Executed
			agg.pruned += stats.Plan.Pruned
		} else {
			agg.executed += len(job.queries)
		}
	}
	elapsed := time.Since(start)
	agg.rendered = b.String()
	return elapsed, agg, nil
}

// planRefsPerAnnotation is how many primary-key identifiers each
// reference-dense benchmark annotation embeds.
const planRefsPerAnnotation = 16

// RunPlanBench compares exhaustive top-k discovery (planning off) against
// planned top-k discovery (planning on), for every requested k, and
// verifies the exactness contract on every comparison. Two workloads run:
// the stock fuzzy-reference workload (where sound pruning is rarely
// possible — the row demonstrates the planner never trades exactness for
// speed) and the identifier-dense reference workload (the planner's
// target class, where the index wave pins the top-k and the scan waves
// are pruned).
func RunPlanBench(env *Env, topKs []int, rounds int) ([]PlanResult, error) {
	var out []PlanResult
	for _, set := range []struct {
		name string
		jobs []planJob
	}{
		{env.Name + "-workload", planJobs(env)},
		{env.Name + "-refs", planReferenceJobs(env, planRefsPerAnnotation)},
	} {
		rs, err := runPlanSet(env, set.name, set.jobs, topKs, rounds)
		if err != nil {
			return nil, err
		}
		out = append(out, rs...)
	}
	return out, nil
}

func runPlanSet(env *Env, name string, jobs []planJob, topKs []int, rounds int) ([]PlanResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	var out []PlanResult
	for _, k := range topKs {
		var exhaustBest, planBest time.Duration
		var exhaustStats, planStats planSweepStats
		for r := 0; r < rounds; r++ {
			t, st, err := runPlanSweep(env, jobs, false, k)
			if err != nil {
				return nil, err
			}
			if exhaustBest == 0 || t < exhaustBest {
				exhaustBest = t
			}
			exhaustStats = st
			t, st, err = runPlanSweep(env, jobs, true, k)
			if err != nil {
				return nil, err
			}
			if planBest == 0 || t < planBest {
				planBest = t
			}
			planStats = st
		}
		res := PlanResult{
			Dataset:           name,
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			Annotations:       len(jobs),
			TopK:              k,
			Queries:           planStats.queries,
			ExecutedQueries:   planStats.executed,
			PrunedQueries:     planStats.pruned,
			ScannedExhaustive: exhaustStats.scanned,
			ScannedPlanned:    planStats.scanned,
			ExhaustiveNS:      exhaustBest.Nanoseconds(),
			PlannedNS:         planBest.Nanoseconds(),
			Identical:         planStats.rendered == exhaustStats.rendered,
		}
		if planBest > 0 {
			res.Speedup = float64(exhaustBest) / float64(planBest)
		}
		out = append(out, res)
	}
	return out, nil
}

// PlanTable renders plan benchmark results as a printable table.
func PlanTable(results []PlanResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Cost-based planner — exhaustive vs planned top-k discovery (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Header: []string{"dataset", "topk", "queries", "executed", "pruned",
			"scanned-off", "scanned-on", "exhaustive-ms", "planned-ms", "speedup", "identical"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmtI(r.TopK), fmtI(r.Queries), fmtI(r.ExecutedQueries), fmtI(r.PrunedQueries),
			fmtI(r.ScannedExhaustive), fmtI(r.ScannedPlanned),
			fmtMs(r.ExhaustiveNS), fmtMs(r.PlannedNS),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%v", r.Identical),
		})
	}
	return t
}

// WritePlanJSON writes the results as indented JSON (the BENCH_plan.json
// artifact).
func WritePlanJSON(w io.Writer, results []PlanResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
