package bench

import (
	"fmt"

	"nebula/internal/workload"
)

// WorkloadSummary reproduces Figure 18's content as a table: the dataset's
// table cardinalities and the workload mixture — for each L^m × L_{i-j}
// cell, the annotation count, average body bytes, and average embedded
// references. The L^50 × L_{7-10} cell shows the substitution the paper's
// footnote describes.
func WorkloadSummary(env *Env) *Table {
	ds := env.Dataset
	t := &Table{
		Title: fmt.Sprintf("Figure 18 — Dataset and workload composition (%s: %d genes, %d proteins, %d publications; ACG %d nodes / %d edges)",
			env.Name,
			ds.DB.MustTable("Gene").Len(),
			ds.DB.MustTable("Protein").Len(),
			ds.DB.MustTable("Publication").Len(),
			ds.Graph.Nodes(), ds.Graph.Edges()),
		Header: []string{"size_class", "ref_class", "annotations", "avg_bytes", "avg_refs"},
	}
	for _, size := range workload.AnnotationSizes {
		for _, rc := range workload.RefClasses {
			specs := ds.WorkloadSet(size, rc)
			var bytes, refs int
			for _, s := range specs {
				bytes += len(s.Ann.Body)
				refs += len(s.Related)
			}
			n := len(specs)
			avgB, avgR := 0.0, 0.0
			if n > 0 {
				avgB = float64(bytes) / float64(n)
				avgR = float64(refs) / float64(n)
			}
			t.Rows = append(t.Rows, []string{
				"L^" + fmtI(size), rc.String(), fmtI(n), fmtF(avgB), fmtF(avgR),
			})
		}
	}
	return t
}
