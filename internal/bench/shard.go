package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"nebula"
)

// ShardResult records one shard count's run of the sharding benchmark: a
// timed mixed write+discover workload (concurrent writers inserting
// annotations while discovery requests stream over a warm result cache),
// plus a sequential identity phase proving the shard count changed only
// contention and cache residency, never output.
//
// The mechanism under test: a single-shard engine invalidates EVERY cached
// discovery on EVERY annotation mutation (one global mutation epoch), while
// an N-shard engine stamps annotation-local discoveries with their home
// shard's epoch — a write homed elsewhere leaves them live. In a mixed
// workload most discoveries survive most writes, so throughput scales with
// the shard count even on a single core (the win is work avoided, not
// threads added).
type ShardResult struct {
	Dataset string `json:"dataset"`
	Shards  int    `json:"shards"`
	Workers int    `json:"workers"`
	// Readers is the warm annotation pool the discover side cycles over.
	Readers int `json:"readers"`
	// Writes and Discovers count the timed phase's operations.
	Writes    int `json:"writes"`
	Discovers int `json:"discovers"`
	// CacheHits is how many timed-phase discoveries were served from the
	// discovery cache — the direct measure of invalidation granularity.
	CacheHits int64 `json:"cache_hits"`
	TotalNS   int64 `json:"total_ns"`
	// OpsPerSec is (Writes+Discovers)/elapsed — mixed mutation+discovery
	// throughput.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Speedup is this row's OpsPerSec over the 1-shard row's.
	Speedup float64 `json:"speedup"`
	// Identical reports the sequential identity phase: a scripted workload
	// (sync and async adds, ingest drains, relational mutations, cached and
	// re-run discoveries) rendered byte-for-byte equal to the 1-shard
	// control.
	Identical bool `json:"identical"`
}

// shardBenchOptions is the engine configuration both phases run under:
// caching on, annotation-local discovery (no focal adjustment, spreading,
// or stability gate — the configuration whose cached results live in
// per-shard epoch domains), WAL off.
func shardBenchOptions(n int) nebula.Options {
	opts := nebula.DefaultOptions()
	opts.Shards = n
	opts.FocalAdjustment = false
	opts.Spreading = false
	opts.RequireStableACG = false
	return opts
}

// shardWriteAnnotation builds the i-th timed-phase write: a synthetic
// annotation whose FNV-hashed ID lands it on an arbitrary shard.
func shardWriteAnnotation(i int) *nebula.Annotation {
	return &nebula.Annotation{
		ID:     nebula.AnnotationID(fmt.Sprintf("shard-bench-w%d", i)),
		Author: "bench",
		Body:   fmt.Sprintf("shard bench writer annotation %d", i),
		Kind:   "bench",
	}
}

// runShardTimed measures the mixed workload at one shard count: `workers`
// goroutines split `writes` AddAnnotation calls, each write followed by
// `discovers` cached DiscoverRequest calls cycling over the warm reader
// pool. Returns elapsed wall clock and the discovery-cache hits observed.
func runShardTimed(size string, seed int64, n, workers, writes, discovers, readers int) (time.Duration, int64, int, error) {
	env, err := FreshEnv(size, seed)
	if err != nil {
		return 0, 0, 0, err
	}
	ds := env.Dataset
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, shardBenchOptions(n))
	if err != nil {
		return 0, 0, 0, err
	}
	specs := streamWorkload(env)
	if len(specs) == 0 {
		return 0, 0, 0, fmt.Errorf("bench: shard: empty workload")
	}
	if readers > len(specs) {
		readers = len(specs)
	}
	pool := specs[:readers]
	for _, spec := range pool {
		if err := engine.AddAnnotation(spec.ann, spec.focal); err != nil {
			return 0, 0, 0, fmt.Errorf("bench: shard: reader %s: %w", spec.ann.ID, err)
		}
	}
	// Warm the discovery cache so the timed loop starts from full residency.
	for _, spec := range pool {
		if _, err := engine.Discover(spec.ann.ID); err != nil {
			return 0, 0, 0, fmt.Errorf("bench: shard: warm %s: %w", spec.ann.ID, err)
		}
	}
	hitsBefore := engine.CacheStats().Discovery.Hits

	errCh := make(chan error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < writes; i += workers {
				ann := shardWriteAnnotation(i)
				attach := []nebula.TupleID{pool[i%len(pool)].focal[0]}
				if err := engine.AddAnnotation(ann, attach); err != nil {
					errCh <- fmt.Errorf("bench: shard: write %s: %w", ann.ID, err)
					return
				}
				for j := 0; j < discovers; j++ {
					id := pool[(i*discovers+j)%len(pool)].ann.ID
					if _, err := engine.Discover(id); err != nil {
						errCh <- fmt.Errorf("bench: shard: discover %s: %w", id, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, 0, 0, err
	default:
	}
	hits := engine.CacheStats().Discovery.Hits - hitsBefore
	return elapsed, hits, readers, nil
}

// runShardIdentity runs the scripted sequential workload at one shard count
// and renders everything shard-count independence promises: every stored
// annotation discovered twice (the second probe exercises the per-shard
// cache epoch — a stale hit would surface here as divergent candidates),
// then the full attachment and pending-task state. The rendering includes
// no stats or timings, only results.
func runShardIdentity(size string, seed int64, n int) (string, error) {
	env, err := FreshEnv(size, seed)
	if err != nil {
		return "", err
	}
	ds := env.Dataset
	opts := shardBenchOptions(n)
	opts.Ingest = nebula.IngestConfig{Enabled: true, QueueCap: 4 * (ds.Store.Len() + len(ds.Workload) + 1)}
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		return "", err
	}
	specs := streamWorkload(env)
	if len(specs) == 0 {
		return "", fmt.Errorf("bench: shard: empty workload")
	}
	ctx := context.Background()
	// Mixed admission: synchronous adds with queued discoveries interleaved
	// with async adds, drained every four submissions — the cross-shard
	// ordered-acquisition paths (drain) interleaving with single-shard ones
	// (add, enqueue).
	for i, spec := range specs {
		if i%2 == 0 {
			if err := engine.AddAnnotation(spec.ann, spec.focal); err != nil {
				return "", fmt.Errorf("bench: shard: identity add %s: %w", spec.ann.ID, err)
			}
			if _, err := engine.EnqueueDiscovery(spec.ann.ID, 0); err != nil {
				return "", fmt.Errorf("bench: shard: identity enqueue %s: %w", spec.ann.ID, err)
			}
		} else {
			if _, err := engine.AddAnnotationAsync(spec.ann, spec.focal, 0); err != nil {
				return "", fmt.Errorf("bench: shard: identity async %s: %w", spec.ann.ID, err)
			}
		}
		if (i+1)%4 == 0 {
			if _, err := engine.DrainIngest(ctx, 0); err != nil {
				return "", fmt.Errorf("bench: shard: identity drain: %w", err)
			}
		}
	}
	// Relational mutations drive change-data-capture re-discoveries and move
	// the database epoch under the cached discoveries.
	for i, mut := range streamMutations(specs, 8) {
		mut := mut
		err := engine.MutateDB(func(db *nebula.Database) error {
			return db.MustTable(mut.table).UpdateByKey(mut.key, mut.column, mut.value)
		})
		if err != nil {
			return "", fmt.Errorf("bench: shard: identity mutate %s/%s: %w", mut.table, mut.key, err)
		}
		if (i+1)%4 == 0 {
			if _, err := engine.DrainIngest(ctx, 0); err != nil {
				return "", fmt.Errorf("bench: shard: identity drain: %w", err)
			}
		}
	}
	if _, err := engine.FlushIngest(ctx); err != nil {
		return "", fmt.Errorf("bench: shard: identity flush: %w", err)
	}
	var b strings.Builder
	for _, id := range engine.Store().IDs() {
		for pass := 0; pass < 2; pass++ {
			d, err := engine.Discover(id)
			if err != nil {
				return "", fmt.Errorf("bench: shard: identity discover %s: %w", id, err)
			}
			fmt.Fprintf(&b, "%s#%d:", id, pass)
			for _, c := range d.Candidates {
				fmt.Fprintf(&b, " %v=%.9f", c.Tuple.ID, c.Confidence)
			}
			b.WriteByte('\n')
		}
	}
	b.WriteString(renderStreamState(engine))
	return b.String(), nil
}

// RunShardBench measures the sharded engine at every requested shard count.
// Every row's Identical must be true — partitioning the synchronization
// domain must never change what the engine computes — and OpsPerSec should
// grow with the shard count as cached discoveries survive unrelated writes.
func RunShardBench(size string, seed int64, shardCounts []int, workers, writes, discovers, readers int) ([]ShardResult, error) {
	control, err := runShardIdentity(size, seed, 1)
	if err != nil {
		return nil, err
	}
	var out []ShardResult
	var base float64
	for _, n := range shardCounts {
		elapsed, hits, pool, err := runShardTimed(size, seed, n, workers, writes, discovers, readers)
		if err != nil {
			return nil, err
		}
		render := control
		if n != 1 {
			if render, err = runShardIdentity(size, seed, n); err != nil {
				return nil, err
			}
		}
		ops := writes + writes*discovers
		res := ShardResult{
			Dataset:   "D_" + size,
			Shards:    n,
			Workers:   workers,
			Readers:   pool,
			Writes:    writes,
			Discovers: writes * discovers,
			CacheHits: hits,
			TotalNS:   elapsed.Nanoseconds(),
			Identical: render == control,
		}
		if elapsed > 0 {
			res.OpsPerSec = float64(ops) / elapsed.Seconds()
		}
		if n == 1 {
			base = res.OpsPerSec
		}
		if base > 0 {
			res.Speedup = res.OpsPerSec / base
		}
		out = append(out, res)
	}
	return out, nil
}

// ShardTable renders the results for terminals.
func ShardTable(results []ShardResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Sharded engine — mixed write+discover throughput by shard count (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Header: []string{"dataset", "shards", "workers", "writes", "discovers",
			"cache-hits", "total-ms", "ops/sec", "speedup", "identical"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmtI(r.Shards), fmtI(r.Workers), fmtI(r.Writes), fmtI(r.Discovers),
			fmt.Sprintf("%d", r.CacheHits), fmtMs(r.TotalNS),
			fmt.Sprintf("%.0f", r.OpsPerSec), fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprintf("%v", r.Identical),
		})
	}
	return t
}

// shardJSON is the BENCH_shard.json document: the measurement environment
// header followed by one row per shard count.
type shardJSON struct {
	Env     BenchEnv      `json:"env"`
	Results []ShardResult `json:"results"`
}

// WriteShardJSON emits the results (with the environment header) for
// BENCH_shard.json.
func WriteShardJSON(w io.Writer, results []ShardResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(shardJSON{Env: CurrentBenchEnv(), Results: results})
}
