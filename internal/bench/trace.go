package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"nebula"
)

// TraceResult records the cost of request-scoped tracing: the same
// discovery sweep with tracing off and on, over a caching-disabled engine
// so every run pays the full pipeline. Identical reports whether both
// sweeps rendered byte-identical candidates — tracing is observe-only, so
// any divergence is a bug, not a measurement artifact.
type TraceResult struct {
	Dataset     string  `json:"dataset"`
	Annotations int     `json:"annotations"`
	Rounds      int     `json:"rounds"`
	OffNS       int64   `json:"off_ns"`
	OnNS        int64   `json:"on_ns"`
	OverheadPct float64 `json:"overhead_pct"`
	Spans       int     `json:"spans"`
	Identical   bool    `json:"identical"`
}

// tracePass discovers every annotation once with the given per-request
// trace setting, returning the sweep's wall clock, its identity rendering,
// and the span count of the last traced run (0 untraced).
func tracePass(engine *nebula.Engine, ids []nebula.AnnotationID, traced bool) (time.Duration, string, int, error) {
	var b strings.Builder
	spans := 0
	req := nebula.RequestOptions{Trace: traced}
	start := time.Now()
	for _, id := range ids {
		d, err := engine.DiscoverRequest(context.Background(), id, req)
		if err != nil {
			return 0, "", 0, fmt.Errorf("bench: trace discover %s: %w", id, err)
		}
		renderCacheDiscovery(&b, id, d)
		if d.Trace != nil {
			spans = d.Trace.SpanCount()
		}
	}
	return time.Since(start), b.String(), spans, nil
}

// RunTraceBench measures tracing overhead on the discovery sweep: rounds
// passes with tracing off and rounds with it on (best time each), plus the
// byte-identity check between the two renderings. Caching is disabled so
// warm passes cannot short-circuit the work being measured.
func RunTraceBench(size string, seed int64, rounds int) (TraceResult, error) {
	if rounds < 1 {
		rounds = 1
	}
	engine, ids, name, err := cacheBenchEngine(size, seed, true, 0)
	if err != nil {
		return TraceResult{}, err
	}
	var offBest, onBest time.Duration
	var offRender, onRender string
	spans := 0
	for r := 0; r < rounds; r++ {
		offT, offR, _, err := tracePass(engine, ids, false)
		if err != nil {
			return TraceResult{}, err
		}
		onT, onR, n, err := tracePass(engine, ids, true)
		if err != nil {
			return TraceResult{}, err
		}
		if offBest == 0 || offT < offBest {
			offBest = offT
		}
		if onBest == 0 || onT < onBest {
			onBest = onT
		}
		offRender, onRender, spans = offR, onR, n
	}
	res := TraceResult{
		Dataset:     name,
		Annotations: len(ids),
		Rounds:      rounds,
		OffNS:       offBest.Nanoseconds(),
		OnNS:        onBest.Nanoseconds(),
		Spans:       spans,
		Identical:   offRender == onRender,
	}
	if offBest > 0 {
		res.OverheadPct = 100 * (float64(onBest)/float64(offBest) - 1)
	}
	return res, nil
}

// TraceTable renders the trace benchmark as a printable table.
func TraceTable(r TraceResult) *Table {
	t := &Table{
		Title:  "Request-scoped tracing — discovery sweep, caching disabled",
		Header: []string{"dataset", "annotations", "off-ms", "on-ms", "overhead", "spans", "identical"},
	}
	t.Rows = append(t.Rows, []string{
		r.Dataset, fmtI(r.Annotations),
		fmtMs(r.OffNS), fmtMs(r.OnNS),
		fmt.Sprintf("%.1f%%", r.OverheadPct), fmtI(r.Spans), fmt.Sprintf("%v", r.Identical),
	})
	return t
}

// WriteTraceJSON writes the result as indented JSON (the BENCH_trace.json
// artifact).
func WriteTraceJSON(w io.Writer, r TraceResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
