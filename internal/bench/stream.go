package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"nebula"
	"nebula/internal/relational"
)

// StreamResult records one streaming-ingest run: the full workload submitted
// through the async path with drains interleaved, a round of tuple mutations
// driving change-data-capture re-discoveries, and a final convergence flush.
// Identical reports whether the converged annotation state — attachments and
// pending verification tasks, VIDs excluded — is byte-identical to a control
// engine that ran the same annotations synchronously over the same final
// database state. Async must change WHEN discovery happens, never WHAT it
// produces.
type StreamResult struct {
	Dataset     string `json:"dataset"`
	Annotations int    `json:"annotations"`
	Mutations   int    `json:"mutations"`
	DrainEvery  int    `json:"drain_every"`
	// Queue-side counters at the end of the run.
	Enqueued      uint64 `json:"enqueued"`
	Coalesced     uint64 `json:"coalesced"`
	Rediscoveries uint64 `json:"rediscoveries"`
	Done          uint64 `json:"done"`
	Drains        uint64 `json:"drains"`
	// MeanFreshnessMS is the mean enqueue→attached latency over every
	// completed job — the streaming pipeline's staleness bound.
	MeanFreshnessMS float64 `json:"mean_freshness_ms"`
	TotalNS         int64   `json:"total_ns"`
	Identical       bool    `json:"identical"`
}

// streamMutation is one recorded tuple update, replayed verbatim against the
// control engine so both engines converge on the same database state.
type streamMutation struct {
	table  string
	key    string
	column string
	value  relational.Value
}

// streamMutations derives the mutation schedule deterministically from the
// workload: round-robin over the annotation specs, updating the first focal
// tuple of each — rows guaranteed to carry attachments, so every mutation
// lands inside some annotation's CDC neighborhood.
func streamMutations(specs []streamSpec, count int) []streamMutation {
	muts := make([]streamMutation, 0, count)
	for m := 0; m < count; m++ {
		spec := specs[m%len(specs)]
		t := spec.focal[0]
		var mut streamMutation
		switch t.Table {
		case "Gene":
			mut = streamMutation{t.Table, t.Key, "Length", relational.Int(int64(500 + m))}
		case "Protein":
			mut = streamMutation{t.Table, t.Key, "PType", relational.String(fmt.Sprintf("enzyme-m%d", m))}
		default:
			continue
		}
		muts = append(muts, mut)
	}
	return muts
}

type streamSpec struct {
	ann   *nebula.Annotation
	focal []nebula.TupleID
}

// streamWorkload snapshots the generated workload's annotations and focal
// sets; both engines consume this copy so neither run mutates the other's
// inputs.
func streamWorkload(env *Env) []streamSpec {
	specs := make([]streamSpec, 0, len(env.Dataset.Workload))
	for _, s := range env.Dataset.Workload {
		specs = append(specs, streamSpec{ann: s.Ann, focal: s.Focal(1)})
	}
	return specs
}

// renderStreamState folds the engine's converged annotation state into the
// identity rendering: per annotation — every annotation in the store, base
// publications included, because CDC re-discovers whatever is attached near
// a mutation — every attachment (tuple, column, type, confidence) in store
// order, then every pending verification task (annotation, tuple,
// confidence, evidence) in creation order. VIDs are excluded by design — the
// streaming engine consumed sequence numbers on intermediate drains the
// control never ran, and VIDs identify tasks, they are not annotation state.
func renderStreamState(engine *nebula.Engine) string {
	var b strings.Builder
	for _, id := range engine.Store().IDs() {
		fmt.Fprintf(&b, "%s:", id)
		for _, att := range engine.Store().Attachments(id, -1) {
			fmt.Fprintf(&b, " %s/%s.%s:%d=%.9f", att.Tuple.Table, att.Tuple.Key, att.Column, att.Type, att.Confidence)
		}
		b.WriteByte('\n')
	}
	b.WriteString("tasks:\n")
	for _, t := range engine.PendingTasks() {
		fmt.Fprintf(&b, " %s %s/%s %.9f [%s]\n", t.Annotation, t.Tuple.Table, t.Tuple.Key, t.Confidence, strings.Join(t.Evidence, ","))
	}
	return b.String()
}

// streamEngine builds an engine over a private dataset copy, with or without
// the ingest subsystem.
func streamEngine(size string, seed int64, async bool) (*nebula.Engine, *Env, error) {
	env, err := FreshEnv(size, seed)
	if err != nil {
		return nil, nil, err
	}
	ds := env.Dataset
	opts := nebula.DefaultOptions()
	if async {
		// Headroom above every annotation the run can queue (the workload
		// plus the dataset's base publications, which CDC re-discovers too):
		// the bench must measure the pipeline, not trip its own backpressure.
		opts.Ingest = nebula.IngestConfig{Enabled: true, QueueCap: 4 * (ds.Store.Len() + len(ds.Workload) + 1)}
	}
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		return nil, nil, err
	}
	return engine, env, nil
}

// RunStreamBench measures the streaming proactive pipeline at one dataset
// size. The streaming engine submits every workload annotation through
// AddAnnotationAsync with a drain every drainEvery submissions, applies
// `mutations` tuple updates through MutateDB (each triggering K-hop CDC
// re-queues, drained on the same cadence), then re-enqueues everything and
// flushes to convergence. The control engine applies the identical mutations
// to its own dataset copy first, then runs the same annotations through the
// synchronous AddAnnotation + ProcessBatch path — from-scratch discovery over
// the final database state. Identical is the byte-identity of the two
// converged states.
func RunStreamBench(size string, seed int64, mutations, drainEvery int) (*StreamResult, error) {
	if drainEvery < 1 {
		drainEvery = 1
	}
	ctx := context.Background()

	engine, env, err := streamEngine(size, seed, true)
	if err != nil {
		return nil, err
	}
	specs := streamWorkload(env)
	if len(specs) == 0 {
		return nil, fmt.Errorf("bench: stream: empty workload")
	}
	muts := streamMutations(specs, mutations)

	start := time.Now()
	// Phase 1 — async submission with interleaved drains.
	for i, spec := range specs {
		if _, err := engine.AddAnnotationAsync(spec.ann, spec.focal, 0); err != nil {
			return nil, fmt.Errorf("bench: stream: submit %s: %w", spec.ann.ID, err)
		}
		if (i+1)%drainEvery == 0 {
			if _, err := engine.DrainIngest(ctx, 0); err != nil {
				return nil, fmt.Errorf("bench: stream: drain: %w", err)
			}
		}
	}
	// Phase 2 — tuple mutations driving CDC re-discovery, same drain cadence.
	for i, mut := range muts {
		mut := mut
		err := engine.MutateDB(func(db *nebula.Database) error {
			return db.MustTable(mut.table).UpdateByKey(mut.key, mut.column, mut.value)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: stream: mutate %s/%s: %w", mut.table, mut.key, err)
		}
		if (i+1)%drainEvery == 0 {
			if _, err := engine.DrainIngest(ctx, 0); err != nil {
				return nil, fmt.Errorf("bench: stream: drain: %w", err)
			}
		}
	}
	// Phase 3 — convergence: drain the CDC tail, then re-discover every
	// stored annotation (base publications included — CDC touched them too)
	// over the final database state so the streaming engine's answer is
	// comparable to a from-scratch synchronous run.
	if _, err := engine.FlushIngest(ctx); err != nil {
		return nil, fmt.Errorf("bench: stream: flush: %w", err)
	}
	allIDs := engine.Store().IDs()
	for _, id := range allIDs {
		if _, err := engine.EnqueueDiscovery(id, 0); err != nil {
			return nil, fmt.Errorf("bench: stream: re-enqueue %s: %w", id, err)
		}
	}
	if _, err := engine.FlushIngest(ctx); err != nil {
		return nil, fmt.Errorf("bench: stream: final flush: %w", err)
	}
	elapsed := time.Since(start)
	stats := engine.IngestStats()
	streamRender := renderStreamState(engine)

	// Control — synchronous discovery from scratch over the final state.
	control, _, err := streamEngine(size, seed, false)
	if err != nil {
		return nil, err
	}
	for _, mut := range muts {
		mut := mut
		err := control.MutateDB(func(db *nebula.Database) error {
			return db.MustTable(mut.table).UpdateByKey(mut.key, mut.column, mut.value)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: stream: control mutate: %w", err)
		}
	}
	for _, spec := range specs {
		if err := control.AddAnnotation(spec.ann, spec.focal); err != nil {
			return nil, fmt.Errorf("bench: stream: control submit %s: %w", spec.ann.ID, err)
		}
	}
	// Process the whole store in insertion order — the same order the
	// streaming engine's convergence pass drained.
	for _, r := range control.ProcessBatch(control.Store().IDs()) {
		if r.Err != nil {
			return nil, fmt.Errorf("bench: stream: control process %s: %w", r.ID, r.Err)
		}
	}
	controlRender := renderStreamState(control)

	return &StreamResult{
		Dataset:         env.Name,
		Annotations:     len(specs),
		Mutations:       len(muts),
		DrainEvery:      drainEvery,
		Enqueued:        stats.Enqueued,
		Coalesced:       stats.Coalesced,
		Rediscoveries:   stats.Rediscoveries,
		Done:            stats.Done,
		Drains:          stats.Drains,
		MeanFreshnessMS: stats.MeanFreshnessMS,
		TotalNS:         elapsed.Nanoseconds(),
		Identical:       streamRender == controlRender,
	}, nil
}

// StreamTable renders the result for terminals.
func StreamTable(results []*StreamResult) *Table {
	t := &Table{
		Title: "Streaming ingest — async pipeline vs synchronous from-scratch control",
		Header: []string{"dataset", "annotations", "mutations", "enqueued", "coalesced",
			"rediscoveries", "drains", "freshness-ms", "total-ms", "identical"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmtI(r.Annotations), fmtI(r.Mutations),
			fmt.Sprintf("%d", r.Enqueued), fmt.Sprintf("%d", r.Coalesced),
			fmt.Sprintf("%d", r.Rediscoveries), fmt.Sprintf("%d", r.Drains),
			fmt.Sprintf("%.2f", r.MeanFreshnessMS), fmtMs(r.TotalNS),
			fmt.Sprintf("%v", r.Identical),
		})
	}
	return t
}

// WriteStreamJSON emits the results for BENCH_stream.json.
func WriteStreamJSON(w io.Writer, results []*StreamResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
