package bench

import (
	"time"
)

// Fig14 parameters: the distortion degrees and spreading radii of §8.2.
var (
	Fig14Deltas = []int{1, 2, 3}
	Fig14Ks     = []int{2, 3, 4}
	// Fig14Size is the annotation set used (L^100, "an average-size set").
	Fig14Size = 100
	// Fig14Epsilon is the cutoff used (0.6, "as it has zero false
	// negatives").
	Fig14Epsilon = 0.6
)

// Fig14a reproduces Figure 14(a): execution time of the focal-spreading
// approximate search across Δ and K, against the basic (full database, no
// sharing) search and the sharing-enabled search as reference lines.
func Fig14a(env *Env) *Table {
	t := &Table{
		Title: "Figure 14(a) — Focal-spreading execution time (" + env.Name +
			", eps=0.6, L^100; ms avg/annotation)",
		Header: []string{"delta", "basic_full", "shared_full", "K=2", "K=3", "K=4",
			"speedup_vs_basic(K=3)", "speedup_vs_shared(K=3)"},
	}
	basic := runNebulaExec(env, Fig14Size, Fig14Epsilon, false, false, 1, 0)
	shared := runNebulaExec(env, Fig14Size, Fig14Epsilon, true, false, 1, 0)
	for _, delta := range Fig14Deltas {
		times := map[int]time.Duration{}
		for _, k := range Fig14Ks {
			m := runNebulaExec(env, Fig14Size, Fig14Epsilon, false, true, delta, k)
			times[k] = m.avgTime
		}
		t.Rows = append(t.Rows, []string{
			fmtI(delta),
			fmtMs(basic.avgTime.Nanoseconds()),
			fmtMs(shared.avgTime.Nanoseconds()),
			fmtMs(times[2].Nanoseconds()), fmtMs(times[3].Nanoseconds()), fmtMs(times[4].Nanoseconds()),
			speedup(basic.avgTime, times[3]),
			speedup(shared.avgTime, times[3]),
		})
	}
	return t
}

// Fig14b reproduces Figure 14(b): the number of produced candidate tuples
// under focal spreading across Δ and K, with the full-search count as the
// reference.
func Fig14b(env *Env) *Table {
	t := &Table{
		Title: "Figure 14(b) — Focal-spreading produced tuples (" + env.Name +
			", eps=0.6, L^100; avg/annotation)",
		Header: []string{"delta", "full_search", "K=2", "K=3", "K=4"},
	}
	full := runNebulaExec(env, Fig14Size, Fig14Epsilon, false, false, 1, 0)
	for _, delta := range Fig14Deltas {
		cells := []string{fmtI(delta), fmtF(full.avgTuple)}
		for _, k := range Fig14Ks {
			m := runNebulaExec(env, Fig14Size, Fig14Epsilon, false, true, delta, k)
			cells = append(cells, fmtF(m.avgTuple))
		}
		t.Rows = append(t.Rows, cells)
	}
	return t
}

// HopProfileTable reproduces the Figure 7-style metadata profile: it
// processes the workload through full-database discovery, records each
// accepted prediction's hop distance from its annotation's focal, and
// prints the resulting histogram with cumulative coverage — the guidance
// used to pick K.
func HopProfileTable(env *Env) *Table {
	ds := env.Dataset
	profile := buildHopProfile(env)
	t := &Table{
		Title:  "Figure 7 — Hop-distance metadata profile (" + env.Name + ")",
		Header: []string{"hops", "count", "coverage"},
	}
	for h := 0; h <= profile.MaxHops(); h++ {
		t.Rows = append(t.Rows, []string{
			fmtI(h), fmtI(profile.Bucket(h)), fmtF(profile.CoverageAt(h)),
		})
	}
	t.Rows = append(t.Rows, []string{"unreachable", fmtI(profile.Unreachable()), ""})
	_ = ds
	return t
}
