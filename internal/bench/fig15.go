package bench

import (
	"fmt"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/discovery"
	"nebula/internal/relational"
	"nebula/internal/sigmap"
	"nebula/internal/verification"
	"nebula/internal/workload"
)

// Fig15Size is the annotation set of the verification experiments (L^100).
const Fig15Size = 100

// fig15Config is one of the eight x-axis configurations of Figure 15.
type fig15Config struct {
	label     string
	epsilon   float64
	spreading bool
	delta     int
	k         int
}

// fig15Configs reproduces the paper's eight configurations: the basic
// algorithm under the two cutoffs, plus six focal-spreading variants over
// (Δ, K).
var fig15Configs = []fig15Config{
	{label: "Nebula-0.6", epsilon: 0.6, delta: 1},
	{label: "Nebula-0.8", epsilon: 0.8, delta: 1},
	{label: "Focal D1,K2", epsilon: 0.6, spreading: true, delta: 1, k: 2},
	{label: "Focal D1,K3", epsilon: 0.6, spreading: true, delta: 1, k: 3},
	{label: "Focal D1,K4", epsilon: 0.6, spreading: true, delta: 1, k: 4},
	{label: "Focal D3,K2", epsilon: 0.6, spreading: true, delta: 3, k: 2},
	{label: "Focal D3,K3", epsilon: 0.6, spreading: true, delta: 3, k: 3},
	{label: "Focal D3,K4", epsilon: 0.6, spreading: true, delta: 3, k: 4},
}

// discoverCandidates runs Stage 1 + 2 for one annotation spec under one
// configuration, with focal adjustment on (the full pipeline).
func discoverCandidates(env *Env, spec *workload.AnnotationSpec, cfg fig15Config) ([]discovery.Candidate, []relational.TupleID) {
	ds := env.Dataset
	gen := sigmap.NewGenerator(ds.Meta, cfg.epsilon)
	queries, _ := gen.Generate(spec.Ann.Body)
	focal := spec.Focal(cfg.delta)
	d := discovery.New(ds.DB, ds.Meta, ds.Graph)
	cands, _, err := d.IdentifyRelatedTuples(queries, focal, discovery.Options{
		Shared:          true,
		FocalAdjustment: true,
		Spreading:       cfg.spreading,
		K:               cfg.k,
	})
	if err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return cands, focal
}

// assessConfig averages the Definition 7.2 criteria over the L^100
// annotations for one configuration and bounds.
func assessConfig(env *Env, cfg fig15Config, bounds verification.Bounds) verification.Assessment {
	specs := env.Dataset.WorkloadSet(Fig15Size, workload.RefClass{})
	var per []verification.Assessment
	for _, spec := range specs {
		cands, focal := discoverCandidates(env, spec, cfg)
		oracle := verification.NewIdealTupleOracle(spec.Ann.ID, spec.Related)
		per = append(per, verification.Assess(spec.Ann.ID, cands, bounds, oracle,
			len(spec.Related), len(focal)))
	}
	return verification.Average(per)
}

// TuneBoundsForEnv runs the Figure 9 BoundsSetting algorithm over a
// training subset of the base publications using the full-search Nebula-0.6
// pipeline, returning the chosen bounds.
func TuneBoundsForEnv(env *Env, trainingSize int) (verification.Bounds, error) {
	ds := env.Dataset
	var training []verification.TrainingExample
	for _, spec := range ds.TrainingSet(trainingSize) {
		training = append(training, verification.TrainingExample{
			Annotation: spec.Ann,
			Ideal:      spec.Related,
		})
	}
	discover := func(a *annotation.Annotation, focal []relational.TupleID) ([]discovery.Candidate, error) {
		gen := sigmap.NewGenerator(ds.Meta, 0.6)
		queries, _ := gen.Generate(a.Body)
		d := discovery.New(ds.DB, ds.Meta, ds.Graph)
		cands, _, err := d.IdentifyRelatedTuples(queries, focal, discovery.Options{
			Shared:          true,
			FocalAdjustment: true,
		})
		return cands, err
	}
	bounds, _, err := verification.BoundsSetting(training, discover, verification.DefaultBoundsConfig())
	return bounds, err
}

// Fig15a reproduces Figure 15(a): the four assessment criteria for the
// eight configurations, under bounds selected by the adaptive BoundsSetting
// algorithm (tune=true) or the paper's reported (0.32, 0.86) (tune=false).
func Fig15a(env *Env, tune bool) (*Table, error) {
	bounds := verification.Bounds{Lower: 0.32, Upper: 0.86}
	if tune {
		b, err := TuneBoundsForEnv(env, 100)
		if err != nil {
			return nil, err
		}
		bounds = b
	}
	t := &Table{
		Title: fmt.Sprintf("Figure 15(a) — Assessment with bounds [%.2f, %.2f] (%s, L^100)",
			bounds.Lower, bounds.Upper, env.Name),
		Header: []string{"config", "F_N", "F_P", "M_F", "M_H"},
	}
	for _, cfg := range fig15Configs {
		a := assessConfig(env, cfg, bounds)
		t.Rows = append(t.Rows, []string{cfg.label, fmtF(a.FN), fmtF(a.FP), fmtF(a.MF), fmtF(a.MH)})
	}
	return t, nil
}

// Fig15b reproduces Figure 15(b): the extreme no-expert configuration with
// β_lower = β_upper = 0.5 — every prediction decided automatically.
func Fig15b(env *Env) *Table {
	bounds := verification.Bounds{Lower: 0.5, Upper: 0.5}
	t := &Table{
		Title:  "Figure 15(b) — Assessment with bounds [0.50, 0.50], no experts (" + env.Name + ", L^100)",
		Header: []string{"config", "F_N", "F_P", "M_F", "M_H"},
	}
	for _, cfg := range fig15Configs {
		a := assessConfig(env, cfg, bounds)
		t.Rows = append(t.Rows, []string{cfg.label, fmtF(a.FN), fmtF(a.FP), fmtF(a.MF), fmtF(a.MH)})
	}
	return t
}

// NaiveAssessment reproduces the §8.2 spot check: the assessment factors of
// the Naive approach on the L^50 set — the paper reports {0, 0.93, 318427,
// 1.6e-5}, i.e. an enormous manual effort with a negligible hit ratio.
func NaiveAssessment(env *Env) *Table {
	ds := env.Dataset
	bounds := verification.Bounds{Lower: 0.32, Upper: 0.86}
	specs := ds.WorkloadSet(50, workload.RefClass{})
	d := discovery.New(ds.DB, ds.Meta, ds.Graph)
	var per []verification.Assessment
	for _, spec := range specs {
		focal := spec.Focal(1)
		cands, _ := d.NaiveIdentify(spec.Ann.Body, focal)
		oracle := verification.NewIdealTupleOracle(spec.Ann.ID, spec.Related)
		per = append(per, verification.Assess(spec.Ann.ID, cands, bounds, oracle,
			len(spec.Related), len(focal)))
	}
	a := verification.Average(per)
	return &Table{
		Title:  "Naive assessment spot check (" + env.Name + ", L^50)",
		Header: []string{"F_N", "F_P", "M_F", "M_H"},
		Rows:   [][]string{{fmtF(a.FN), fmtF(a.FP), fmtF(a.MF), fmt.Sprintf("%.2e", a.MH)}},
	}
}

// buildHopProfile measures, for every workload annotation, the hop distance
// of each correctly predicted tuple from the annotation's focal — the
// Figure 7 profile-update protocol, run with the ground-truth oracle
// standing in for the acceptance decision.
func buildHopProfile(env *Env) *acg.Profile {
	ds := env.Dataset
	profile := acg.NewProfile()
	cfg := fig15Config{epsilon: 0.6, delta: 1}
	for _, spec := range ds.Workload {
		cands, focal := discoverCandidates(env, spec, cfg)
		truth := verification.NewIdealTupleOracle(spec.Ann.ID, spec.Related)
		for _, c := range cands {
			if !truth.IsRelated(spec.Ann.ID, c.Tuple.ID) {
				continue
			}
			hops, reachable := ds.Graph.HopsToAny(c.Tuple.ID, focal)
			profile.Record(hops, reachable)
		}
	}
	return profile
}
