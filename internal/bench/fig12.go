package bench

import (
	"fmt"
	"time"

	"nebula/internal/discovery"
	"nebula/internal/sigmap"
	"nebula/internal/workload"
)

// NebulaEpsilons are the two production cutoffs compared from Figure 12 on
// (the 0.4 threshold is excluded there, as in the paper).
var NebulaEpsilons = []float64{0.6, 0.8}

// execMeasurement aggregates one (dataset, L^m, config) cell.
type execMeasurement struct {
	config   string
	dataset  string
	size     int
	avgTime  time.Duration
	avgTuple float64
	avgQexec float64
}

// runNebulaExec measures keyword-query execution for one ε over one size
// class, averaged across its annotations. shared toggles multi-query
// sharing; delta/k (when spreading) select the focal-spreading variant.
func runNebulaExec(env *Env, size int, epsilon float64, shared, spreading bool, delta, k int) execMeasurement {
	ds := env.Dataset
	specs := ds.WorkloadSet(size, workload.RefClass{})
	d := discovery.New(ds.DB, ds.Meta, ds.Graph)
	m := execMeasurement{dataset: env.Name, size: size}
	var totalTime time.Duration
	var totalTuples, totalQueries int
	for _, spec := range specs {
		gen := sigmap.NewGenerator(ds.Meta, epsilon)
		queries, _ := gen.Generate(spec.Ann.Body)
		focal := spec.Focal(delta)
		start := time.Now()
		cands, stats, err := d.IdentifyRelatedTuples(queries, focal, discovery.Options{
			Shared:    shared,
			Spreading: spreading,
			K:         k,
		})
		if err != nil {
			panic(fmt.Sprintf("bench: %v", err)) // fixture invariant violated
		}
		totalTime += time.Since(start)
		totalTuples += len(cands)
		totalQueries += stats.Exec.StructuredQueries
	}
	n := len(specs)
	if n > 0 {
		m.avgTime = totalTime / time.Duration(n)
		m.avgTuple = float64(totalTuples) / float64(n)
		m.avgQexec = float64(totalQueries) / float64(n)
	}
	return m
}

// runNaiveExec measures the §4 baseline over one size class.
func runNaiveExec(env *Env, size int) execMeasurement {
	ds := env.Dataset
	specs := ds.WorkloadSet(size, workload.RefClass{})
	d := discovery.New(ds.DB, ds.Meta, ds.Graph)
	m := execMeasurement{config: "Naive", dataset: env.Name, size: size}
	var totalTime time.Duration
	var totalTuples int
	for _, spec := range specs {
		start := time.Now()
		cands, _ := d.NaiveIdentify(spec.Ann.Body, spec.Focal(1))
		totalTime += time.Since(start)
		totalTuples += len(cands)
	}
	if n := len(specs); n > 0 {
		m.avgTime = totalTime / time.Duration(n)
		m.avgTuple = float64(totalTuples) / float64(n)
	}
	return m
}

// Fig12a reproduces Figure 12(a): total execution time of the keyword
// queries for Naive vs Nebula-0.6 vs Nebula-0.8 across datasets and L^m
// sets (no sharing: queries execute in isolation, the paper's default).
// The naive baseline runs only on the smallest annotation set of each
// dataset when full=false — the paper itself could not execute it beyond
// L^50.
func Fig12a(envs []*Env, fullNaive bool) *Table {
	t := &Table{
		Title:  "Figure 12(a) — Keyword-query execution time (ms, avg/annotation)",
		Header: []string{"dataset", "workload", "Naive", "Nebula-0.6", "Nebula-0.8"},
	}
	for _, env := range envs {
		for _, size := range workload.AnnotationSizes {
			naive := "n/a"
			if size == 50 || fullNaive {
				naive = fmtMs(runNaiveExec(env, size).avgTime.Nanoseconds())
			}
			n06 := runNebulaExec(env, size, 0.6, false, false, 1, 0)
			n08 := runNebulaExec(env, size, 0.8, false, false, 1, 0)
			t.Rows = append(t.Rows, []string{
				env.Name, "L^" + fmtI(size), naive,
				fmtMs(n06.avgTime.Nanoseconds()), fmtMs(n08.avgTime.Nanoseconds()),
			})
		}
	}
	return t
}

// Fig12b reproduces Figure 12(b): the number of produced candidate tuples
// for the same configurations.
func Fig12b(envs []*Env, fullNaive bool) *Table {
	t := &Table{
		Title:  "Figure 12(b) — Produced candidate tuples (avg/annotation)",
		Header: []string{"dataset", "workload", "Naive", "Nebula-0.6", "Nebula-0.8"},
	}
	for _, env := range envs {
		for _, size := range workload.AnnotationSizes {
			naive := "n/a"
			if size == 50 || fullNaive {
				naive = fmtF(runNaiveExec(env, size).avgTuple)
			}
			n06 := runNebulaExec(env, size, 0.6, false, false, 1, 0)
			n08 := runNebulaExec(env, size, 0.8, false, false, 1, 0)
			t.Rows = append(t.Rows, []string{
				env.Name, "L^" + fmtI(size), naive,
				fmtF(n06.avgTuple), fmtF(n08.avgTuple),
			})
		}
	}
	return t
}

// Fig13 reproduces Figure 13: the speedup of shared multi-query execution
// over isolated execution, for Nebula-0.6 and Nebula-0.8.
func Fig13(envs []*Env) *Table {
	t := &Table{
		Title: "Figure 13 — Multi-query shared execution (ms, avg/annotation)",
		Header: []string{"dataset", "workload",
			"Nebula-0.6", "Nebula-0.6-shared", "speedup-0.6",
			"Nebula-0.8", "Nebula-0.8-shared", "speedup-0.8"},
	}
	for _, env := range envs {
		for _, size := range workload.AnnotationSizes {
			iso06 := runNebulaExec(env, size, 0.6, false, false, 1, 0)
			sh06 := runNebulaExec(env, size, 0.6, true, false, 1, 0)
			iso08 := runNebulaExec(env, size, 0.8, false, false, 1, 0)
			sh08 := runNebulaExec(env, size, 0.8, true, false, 1, 0)
			t.Rows = append(t.Rows, []string{
				env.Name, "L^" + fmtI(size),
				fmtMs(iso06.avgTime.Nanoseconds()), fmtMs(sh06.avgTime.Nanoseconds()),
				speedup(iso06.avgTime, sh06.avgTime),
				fmtMs(iso08.avgTime.Nanoseconds()), fmtMs(sh08.avgTime.Nanoseconds()),
				speedup(iso08.avgTime, sh08.avgTime),
			})
		}
	}
	return t
}

func speedup(base, opt time.Duration) string {
	if opt <= 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", float64(base)/float64(opt))
}
