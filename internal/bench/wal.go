package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"nebula"
	"nebula/internal/wal"
)

// WALBenchResult records the mutation cost of one durability mode:
// the same concurrent annotation-insert workload with no WAL (baseline),
// with group-committed fsyncs, and with an fsync per append. The sync
// counters show WHY group commit wins — absorbed syncs are fsyncs that
// concurrent committers shared instead of serializing on.
type WALBenchResult struct {
	Mode         string  `json:"mode"` // "off", "group", "always", "none"
	Writers      int     `json:"writers"`
	Mutations    int     `json:"mutations"`
	TotalNS      int64   `json:"total_ns"`
	PerOpNS      int64   `json:"per_op_ns"`
	OverheadPct  float64 `json:"overhead_pct"` // vs the no-WAL baseline
	Syncs        int64   `json:"syncs"`
	SyncAbsorbed int64   `json:"syncs_absorbed"`
	SyncNS       int64   `json:"sync_ns"`
	Records      int64   `json:"records"`
	WALBytes     int64   `json:"wal_bytes"`
}

// walBenchPass runs the concurrent mutation workload against one engine:
// writers goroutines insert their share of uniquely-named annotations,
// each attached to an existing gene, through the full commit path (append
// + group sync when a WAL is attached).
func walBenchPass(engine *nebula.Engine, writers, mutations int) (time.Duration, error) {
	genes := engine.DB().MustTable("Gene").Rows()
	if len(genes) == 0 {
		return 0, fmt.Errorf("bench: wal: dataset has no genes")
	}
	var wg sync.WaitGroup
	errCh := make(chan error, writers)
	start := time.Now()
	for w := 0; w < writers; w++ {
		share := mutations / writers
		if w < mutations%writers {
			share++
		}
		wg.Add(1)
		go func(w, share int) {
			defer wg.Done()
			for i := 0; i < share; i++ {
				n := w*1_000_000 + i
				a := &nebula.Annotation{
					ID:     nebula.AnnotationID(fmt.Sprintf("walbench-%d", n)),
					Author: "bench",
					Body:   fmt.Sprintf("wal bench mutation %d", n),
					Kind:   "comment",
				}
				target := genes[n%len(genes)].ID
				if err := engine.AddAnnotation(a, []nebula.TupleID{target}); err != nil {
					errCh <- err
					return
				}
			}
		}(w, share)
	}
	wg.Wait()
	elapsed := time.Since(start)
	select {
	case err := <-errCh:
		return 0, err
	default:
	}
	return elapsed, nil
}

// RunWALBench measures WAL mutation overhead across durability modes. Each
// mode gets a private engine over an identical dataset and a fresh log
// directory; "off" (no WAL attached) anchors the overhead percentages.
func RunWALBench(size string, seed int64, writers, mutations int) ([]WALBenchResult, error) {
	if writers < 1 {
		writers = 1
	}
	if mutations < writers {
		mutations = writers
	}
	modes := []struct {
		name string
		sync wal.SyncMode
		wal  bool
	}{
		{"off", 0, false},
		{"none", wal.SyncNone, true},
		{"group", wal.SyncGroup, true},
		{"always", wal.SyncAlways, true},
	}
	var results []WALBenchResult
	var baselineNS int64
	for _, m := range modes {
		env, err := FreshEnv(size, seed)
		if err != nil {
			return nil, err
		}
		ds := env.Dataset
		engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, nebula.DefaultOptions())
		if err != nil {
			return nil, err
		}
		if m.wal {
			dir, err := os.MkdirTemp("", "nebula-walbench")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			l, err := wal.Open(dir, wal.Options{Sync: m.sync})
			if err != nil {
				return nil, err
			}
			engine.AttachWAL(l)
		}
		elapsed, err := walBenchPass(engine, writers, mutations)
		if err != nil {
			return nil, err
		}
		res := WALBenchResult{
			Mode:      m.name,
			Writers:   writers,
			Mutations: mutations,
			TotalNS:   elapsed.Nanoseconds(),
			PerOpNS:   elapsed.Nanoseconds() / int64(mutations),
		}
		if m.wal {
			st := engine.WALStats()
			res.Syncs = int64(st.Log.Syncs)
			res.SyncAbsorbed = int64(st.Log.SyncAbsorbed)
			res.SyncNS = st.Log.SyncNanos
			res.Records = int64(st.Log.Appended)
			res.WALBytes = int64(st.Log.AppendedBytes)
			if err := engine.CloseWAL(); err != nil {
				return nil, err
			}
		}
		if m.name == "off" {
			baselineNS = res.TotalNS
		}
		if baselineNS > 0 {
			res.OverheadPct = 100 * float64(res.TotalNS-baselineNS) / float64(baselineNS)
		}
		results = append(results, res)
	}
	return results, nil
}

// WALTable renders the comparison for terminals.
func WALTable(results []WALBenchResult) *Table {
	t := &Table{
		Title:  "WAL mutation overhead — concurrent annotation inserts per durability mode",
		Header: []string{"mode", "writers", "mutations", "total-ms", "per-op-µs", "overhead", "syncs", "absorbed", "fsync-ms"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Mode, fmtI(r.Writers), fmtI(r.Mutations),
			fmtMs(r.TotalNS), fmt.Sprintf("%.1f", float64(r.PerOpNS)/1e3),
			fmt.Sprintf("%+.1f%%", r.OverheadPct),
			fmt.Sprintf("%d", r.Syncs), fmt.Sprintf("%d", r.SyncAbsorbed),
			fmtMs(r.SyncNS),
		})
	}
	return t
}

// WriteWALJSON emits the results for BENCH_wal.json.
func WriteWALJSON(w io.Writer, results []WALBenchResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
