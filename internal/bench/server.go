package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nebula"
	"nebula/internal/server"
)

// ServerResult records one concurrency level of the serving-layer load
// test: a fixed number of discovery requests fired at nebulad's handler
// from N concurrent clients. Latency percentiles cover the requests that
// completed with 200; Rejected counts the typed 429 backpressure responses
// (the admission gate shedding load), which is a correct outcome under
// saturation, not an error.
type ServerResult struct {
	Dataset       string  `json:"dataset"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Concurrency   int     `json:"concurrency"`
	MaxInFlight   int     `json:"max_inflight"`
	QueueDepth    int     `json:"queue_depth"`
	Requests      int     `json:"requests"`
	OK            int     `json:"ok"`
	Rejected      int     `json:"rejected"`
	Errors        int     `json:"errors"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         int64   `json:"p50_ns"`
	P99NS         int64   `json:"p99_ns"`
	TotalNS       int64   `json:"total_ns"`
	// CacheHits/CacheMisses/CacheHitRate are the engine's cache-counter
	// deltas across this level (all layers summed); CacheBytes is the
	// occupancy when the level finished. Levels after the first run warm,
	// so their throughput reflects the cache-backed serving path.
	CacheHits    int64   `json:"cache_hits"`
	CacheMisses  int64   `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheBytes   int64   `json:"cache_bytes"`
}

// ServerBenchConfig parameterizes RunServerBench.
type ServerBenchConfig struct {
	// Levels are the client concurrency levels to measure.
	Levels []int
	// Requests is the total number of discovery requests per level.
	Requests int
	// MaxInFlight / QueueDepth configure the admission gate under test.
	MaxInFlight int
	QueueDepth  int
}

// DefaultServerBenchConfig exercises an uncontended and a saturated level
// against a deliberately small queue, so the second level demonstrates
// load shedding rather than unbounded queueing.
func DefaultServerBenchConfig() ServerBenchConfig {
	return ServerBenchConfig{
		Levels:      []int{4, 32},
		Requests:    200,
		MaxInFlight: 4,
		QueueDepth:  8,
	}
}

// RunServerBench stands up the serving layer over a freshly generated
// dataset's engine (in-process, via httptest) and measures discovery round
// trips at each concurrency level. The workload annotations are inserted
// once, then the clients cycle over them so every request is a real
// Stage 1–2 run. The dataset is private (FreshEnv, not the LoadEnv cache)
// because seeding the engine mutates its store.
func RunServerBench(size string, seed int64, cfg ServerBenchConfig) ([]ServerResult, error) {
	if cfg.Requests < 1 {
		cfg.Requests = 1
	}
	env, err := FreshEnv(size, seed)
	if err != nil {
		return nil, err
	}
	ds := env.Dataset
	engine, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, nebula.DefaultOptions())
	if err != nil {
		return nil, err
	}
	ids := make([]string, 0, len(ds.Workload))
	for _, spec := range ds.Workload {
		if err := engine.AddAnnotation(spec.Ann, spec.Focal(1)); err != nil {
			return nil, fmt.Errorf("bench: seed annotation %s: %w", spec.Ann.ID, err)
		}
		ids = append(ids, string(spec.Ann.ID))
	}
	srv, err := server.New(server.Config{
		Engine:      engine,
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		Logf:        func(string, ...any) {},
	})
	if err != nil {
		return nil, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var out []ServerResult
	for _, level := range cfg.Levels {
		before := engine.CacheStats().Totals()
		res, err := runServerLevel(ts.URL, ids, level, cfg)
		if err != nil {
			return nil, err
		}
		after := engine.CacheStats().Totals()
		res.CacheHits = after.Hits - before.Hits
		res.CacheMisses = after.Misses - before.Misses
		if d := res.CacheHits + res.CacheMisses; d > 0 {
			res.CacheHitRate = float64(res.CacheHits) / float64(d)
		}
		res.CacheBytes = after.Bytes
		res.Dataset = env.Name
		out = append(out, res)
	}
	return out, nil
}

// runServerLevel fires cfg.Requests discovery requests from `level`
// concurrent clients and aggregates the outcome.
func runServerLevel(baseURL string, ids []string, level int, cfg ServerBenchConfig) (ServerResult, error) {
	client := &http.Client{Timeout: 60 * time.Second, Transport: &http.Transport{
		MaxIdleConnsPerHost: level,
	}}
	defer client.CloseIdleConnections()

	var (
		next      atomic.Int64
		ok        atomic.Int64
		rejected  atomic.Int64
		errored   atomic.Int64
		latMu     sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	next.Store(-1)
	start := time.Now()
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= cfg.Requests {
					return
				}
				body, _ := json.Marshal(map[string]any{"id": ids[i%len(ids)]})
				t0 := time.Now()
				resp, err := client.Post(baseURL+"/v1/discover", "application/json", bytes.NewReader(body))
				elapsed := time.Since(t0)
				if err != nil {
					errored.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					latMu.Lock()
					latencies = append(latencies, elapsed)
					latMu.Unlock()
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					rejected.Add(1)
				default:
					errored.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	total := time.Since(start)

	res := ServerResult{
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Concurrency: level,
		MaxInFlight: cfg.MaxInFlight,
		QueueDepth:  cfg.QueueDepth,
		Requests:    cfg.Requests,
		OK:          int(ok.Load()),
		Rejected:    int(rejected.Load()),
		Errors:      int(errored.Load()),
		TotalNS:     total.Nanoseconds(),
	}
	if total > 0 {
		res.ThroughputRPS = float64(res.OK) / total.Seconds()
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50NS = latencies[percentileIndex(len(latencies), 50)].Nanoseconds()
		res.P99NS = latencies[percentileIndex(len(latencies), 99)].Nanoseconds()
	}
	return res, nil
}

// percentileIndex maps a percentile onto a sorted slice index.
func percentileIndex(n, pct int) int {
	i := n*pct/100 - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// ServerTable renders load-test results as a printable table.
func ServerTable(results []ServerResult) *Table {
	t := &Table{
		Title: fmt.Sprintf("Serving layer — discovery round trips under concurrency (GOMAXPROCS=%d)",
			runtime.GOMAXPROCS(0)),
		Header: []string{"dataset", "conc", "inflight", "queue", "requests", "ok", "rejected", "errors", "rps", "p50-ms", "p99-ms", "cache-hit%"},
	}
	for _, r := range results {
		t.Rows = append(t.Rows, []string{
			r.Dataset, fmtI(r.Concurrency), fmtI(r.MaxInFlight), fmtI(r.QueueDepth),
			fmtI(r.Requests), fmtI(r.OK), fmtI(r.Rejected), fmtI(r.Errors),
			fmt.Sprintf("%.1f", r.ThroughputRPS), fmtMs(r.P50NS), fmtMs(r.P99NS),
			fmt.Sprintf("%.1f", 100*r.CacheHitRate),
		})
	}
	return t
}

// WriteServerJSON writes the results as indented JSON (the
// BENCH_server.json artifact).
func WriteServerJSON(w io.Writer, results []ServerResult) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}
