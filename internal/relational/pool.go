package relational

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// runTasks executes n tasks on up to workers goroutines. Tasks are handed
// out through an atomic counter, so faster workers steal the remaining
// load; every task must write only to its own result slots. With workers
// <= 1 the tasks run inline on the calling goroutine — the exact
// sequential path, no goroutines, no synchronization.
//
// A panicking task does not kill the process from a worker goroutine: the
// first panic value is captured and re-raised on the calling goroutine
// after the pool drains, so callers see the same panic-on-my-stack
// behavior as the sequential path (and the engine's public boundary can
// convert it to ErrInternal).
// hitBufPool recycles the per-segment match buffers of SelectMulti's
// shared passes; without it every batch re-grows one slice per segment
// from nil. Buffers are cleared before going back so they do not pin
// deleted rows.
var hitBufPool = sync.Pool{New: func() any {
	buf := make([]hit, 0, 512)
	return &buf
}}

func getHitBuf() []hit {
	return (*hitBufPool.Get().(*[]hit))[:0]
}

func putHitBuf(buf []hit) {
	if cap(buf) == 0 {
		return
	}
	for i := range buf {
		buf[i] = hit{}
	}
	buf = buf[:0]
	hitBufPool.Put(&buf)
}

func runTasks(n, workers int, task func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					task(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("relational: worker panic: %v", panicked))
	}
}
