package relational

import "fmt"

// Subset materializes a mini database containing only the tuples identified
// by ids. Each tuple keeps the schema of its own table, exactly as §6.3
// describes the focal-spreading miniDB: "Each tuple in miniDB will follow
// the schema of its own table, and thus creating a materialized mini version
// of the original database."
//
// Unknown ids are skipped silently: the ACG may reference tuples deleted
// from the database since the graph edge was recorded.
func (db *Database) Subset(ids []TupleID) (*Database, error) {
	mini := NewDatabase()
	for _, id := range ids {
		src, ok := db.Table(id.Table)
		if !ok {
			continue
		}
		row, ok := src.GetByKey(id.Key)
		if !ok {
			continue
		}
		dst, ok := mini.Table(id.Table)
		if !ok {
			// Copy the schema by value so the mini database owns its own
			// validated copy (colIndex caches are rebuilt on Validate).
			schemaCopy := *src.schema
			schemaCopy.colIndex = nil
			var err error
			dst, err = mini.CreateTable(&schemaCopy)
			if err != nil {
				return nil, fmt.Errorf("subset: %w", err)
			}
		}
		if _, dup := dst.GetByKey(id.Key); dup {
			continue
		}
		// The row comes from a table with an identical, already-validated
		// schema, so the arity/type checks of Insert are redundant; the
		// fast path shares the value slice and skips them. Spreading
		// materializes a miniDB per annotation, so this path is hot.
		dst.insertValidated(row)
	}
	return mini, nil
}
