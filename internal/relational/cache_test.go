package relational

import (
	"fmt"
	"testing"
)

// scanQuery is the unindexed probe the scan-cache tests reuse: Seq has no
// index in the fixture, so every cold execution walks the Gene table — the
// only access path the cache memoizes (indexed probes are already cheap).
func scanQuery() Query {
	return Query{Table: "Gene", Predicates: []Predicate{
		{Column: "Seq", Op: OpPrefix, Operand: String("TG")},
	}}
}

// renderRows folds a result set into a comparable string.
func renderRows(rows []*Row) string {
	s := ""
	for _, r := range rows {
		s += string(r.ID.Key) + ";"
	}
	return s
}

// TestScanCacheHitMissInvalidate pins the epoch protocol at the substrate:
// a repeat Select is a hit that reports zero scanned tuples, and any write
// to the table (insert, delete, update) makes the next Select recompute
// against current data.
func TestScanCacheHitMissInvalidate(t *testing.T) {
	db := testDB(t)
	db.EnableScanCache(1 << 20)

	cold, coldStats, err := db.Select(scanQuery())
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheHits != 0 || coldStats.TuplesScanned == 0 {
		t.Fatalf("cold select stats %+v, want a real scan with no hits", coldStats)
	}
	warm, warmStats, err := db.Select(scanQuery())
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.CacheHits != 1 {
		t.Errorf("warm select CacheHits = %d, want 1", warmStats.CacheHits)
	}
	if warmStats.TuplesScanned != 0 {
		t.Errorf("warm select scanned %d tuples; hits must report zero actual work", warmStats.TuplesScanned)
	}
	if renderRows(warm) != renderRows(cold) {
		t.Errorf("cached rows diverged: %s vs %s", renderRows(warm), renderRows(cold))
	}

	gene := db.MustTable("Gene")
	if _, err := gene.Insert([]Value{
		String("JW0100"), String("newG"), Int(500), String("TGAA"), String("F1"),
	}); err != nil {
		t.Fatal(err)
	}
	after, stats, err := db.Select(scanQuery())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Error("select after insert served a stale cache hit")
	}
	if len(after) != len(cold)+1 {
		t.Errorf("select after insert returned %d rows, want %d", len(after), len(cold)+1)
	}

	if !gene.Delete(String("JW0100")) {
		t.Fatal("delete failed")
	}
	after, stats, err = db.Select(scanQuery())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Error("select after delete served a stale cache hit")
	}
	if renderRows(after) != renderRows(cold) {
		t.Errorf("rows after insert+delete diverged from original: %s vs %s", renderRows(after), renderRows(cold))
	}

	if err := gene.Update(String("JW0013"), "Seq", String("AAAA")); err != nil {
		t.Fatal(err)
	}
	after, stats, err = db.Select(scanQuery())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Error("select after update served a stale cache hit")
	}
	if len(after) != len(cold)-1 {
		t.Errorf("select after update returned %d rows, want %d", len(after), len(cold)-1)
	}

	cs := db.ScanCacheStats()
	if cs.Invalidations < 2 {
		t.Errorf("scan cache recorded %d invalidations, want >= 2", cs.Invalidations)
	}
}

// TestScanCacheDisabledByDefault: without EnableScanCache the substrate
// never caches and never counts.
func TestScanCacheDisabledByDefault(t *testing.T) {
	db := testDB(t)
	for i := 0; i < 2; i++ {
		_, stats, err := db.Select(scanQuery())
		if err != nil {
			t.Fatal(err)
		}
		if stats.CacheHits != 0 {
			t.Fatalf("run %d: CacheHits = %d on an uncached database", i, stats.CacheHits)
		}
	}
	if s := db.ScanCacheStats(); s.Hits != 0 || s.Misses != 0 || s.Entries != 0 {
		t.Errorf("uncached database reported stats %+v", s)
	}
}

// TestScanCacheUncachedBypass: SelectUncached does real work and leaves
// the cache counters untouched even on a warm cache.
func TestScanCacheUncachedBypass(t *testing.T) {
	db := testDB(t)
	db.EnableScanCache(1 << 20)
	if _, _, err := db.Select(scanQuery()); err != nil { // warm
		t.Fatal(err)
	}
	before := db.ScanCacheStats()
	_, stats, err := db.SelectUncached(scanQuery())
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 || stats.TuplesScanned == 0 {
		t.Errorf("SelectUncached stats %+v, want a real scan with no hits", stats)
	}
	after := db.ScanCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Errorf("SelectUncached moved cache counters: %+v -> %+v", before, after)
	}
}

// TestSelectMultiCacheIdentity: the batched path serves hits after a warm-up
// and stays byte-identical to the uncached batch across worker counts.
func TestSelectMultiCacheIdentity(t *testing.T) {
	db := testDB(t)
	db.EnableScanCache(1 << 20)
	batch := []Query{
		scanQuery(),
		{Table: "Gene", Predicates: []Predicate{{Column: "Family", Op: OpEq, Operand: String("F3")}}},
		scanQuery(), // duplicate: shared execution folds it
		{Table: "Protein", Predicates: []Predicate{{Column: "PType", Op: OpEq, Operand: String("motor")}}},
	}
	render := func(sets [][]*Row) string {
		s := ""
		for i, rows := range sets {
			s += fmt.Sprintf("%d:%s\n", i, renderRows(rows))
		}
		return s
	}
	want, _, err := db.SelectMultiUncached(batch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := db.SelectMulti(batch); err != nil { // warm
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		got, stats, err := db.SelectMultiWorkers(batch, workers)
		if err != nil {
			t.Fatal(err)
		}
		if render(got) != render(want) {
			t.Errorf("workers=%d: cached batch diverged\ngot:  %s\nwant: %s", workers, render(got), render(want))
		}
		if stats.CacheHits == 0 {
			t.Errorf("workers=%d: warm batch reported no cache hits", workers)
		}
	}
}
