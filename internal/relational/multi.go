package relational

import (
	"fmt"
	"runtime"
	"strings"
)

// minSegmentRows is the smallest slice of a shared table pass worth handing
// to its own worker; below it the scheduling overhead dominates the scan.
const minSegmentRows = 256

// hit records one row matching one query during a shared table pass.
type hit struct {
	qi int
	r  *Row
}

// SelectMulti executes a batch of queries, sharing table scans: queries
// against the same table that lack a usable index are all evaluated in a
// single pass over the table, instead of one scan each. Queries with an
// index access path execute individually (index lookups are already cheap
// and share nothing). Results align with the input order.
//
// This is the substrate-level half of the paper's §6 shared multi-query
// execution: the keyword executor detects identical structured queries by
// fingerprint, and SelectMulti shares the physical scans of the distinct
// remainder.
func (db *Database) SelectMulti(queries []Query) ([][]*Row, SelectStats, error) {
	return db.selectMultiWorkers(queries, 1, true)
}

// SelectMultiWorkers is SelectMulti with a worker pool: the per-table scan
// groups are split into row segments and partitioned — together with the
// individual indexed lookups — across up to workers goroutines
// (workers <= 0 selects runtime.GOMAXPROCS; larger values clamp to
// GOMAXPROCS, since oversubscribing scan segments only adds scheduling
// overhead). Results and stats are merged in the sequential order (indexed
// queries first, then tables in first-seen order, then row order), so the
// output is byte-identical to SelectMulti whatever the worker count;
// workers == 1 runs everything inline on the calling goroutine.
func (db *Database) SelectMultiWorkers(queries []Query, workers int) ([][]*Row, SelectStats, error) {
	return db.selectMultiWorkers(queries, workers, true)
}

// SelectMultiUncached is SelectMultiWorkers bypassing the scan cache; see
// SelectUncached for when that matters.
func (db *Database) SelectMultiUncached(queries []Query, workers int) ([][]*Row, SelectStats, error) {
	return db.selectMultiWorkers(queries, workers, false)
}

func (db *Database) selectMultiWorkers(queries []Query, workers int, useCache bool) ([][]*Row, SelectStats, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if mp := runtime.GOMAXPROCS(0); workers > mp {
		workers = mp
	}
	results := make([][]*Row, len(queries))
	var stats SelectStats

	// Partition (sequential, deterministic): indexed queries run directly;
	// scan queries group by table, checking the scan cache first — a hit
	// fills its result slot immediately and drops out of the shared pass.
	// Validation errors surface here, before any execution, in input order.
	type scanItem struct {
		idx int
		q   Query
	}
	type cacheFill struct {
		idx   int
		key   string
		epoch uint64
	}
	var indexed []scanItem
	var fills []cacheFill // scan-query misses to Put after the merge
	scansByTable := make(map[string][]scanItem)
	var tableOrder []string
	caching := useCache && db.scanCache != nil
	for i, q := range queries {
		t, ok := db.Table(q.Table)
		if !ok {
			return nil, stats, fmt.Errorf("select: unknown table %q", q.Table)
		}
		for _, p := range q.Predicates {
			if _, ok := t.schema.ColumnIndex(p.Column); !ok {
				return nil, stats, fmt.Errorf("select: table %s has no column %q", q.Table, p.Column)
			}
		}
		if _, _, ok := db.accessPath(t, q); ok {
			indexed = append(indexed, scanItem{idx: i, q: q})
			continue
		}
		if caching {
			key, epoch := q.Fingerprint(), t.Epoch()
			if rows, ok := db.scanCache.Get(key, epoch); ok {
				results[i] = rows
				stats.CacheHits++
				stats.TuplesReturned += len(rows)
				continue
			}
			fills = append(fills, cacheFill{idx: i, key: key, epoch: epoch})
		}
		key := strings.ToLower(q.Table)
		if _, seen := scansByTable[key]; !seen {
			tableOrder = append(tableOrder, key)
		}
		scansByTable[key] = append(scansByTable[key], scanItem{idx: i, q: q})
	}

	// One shared pass per table answers every scan query. Single-predicate
	// equality queries — the overwhelmingly common shape the keyword
	// executor generates — are folded into per-column hash probes: the
	// row's cell value is hashed once and matched against all operands
	// simultaneously, so the per-row cost is O(probed columns), not
	// O(queries). Everything else falls back to per-query evaluation
	// within the same pass.
	type probe struct {
		colIdx int
		byKey  map[string][]int // operand key -> query indexes
	}
	type tablePass struct {
		t        *Table
		probes   []*probe
		residual []scanItem
	}
	passes := make([]*tablePass, len(tableOrder))
	for pi, key := range tableOrder {
		items := scansByTable[key]
		t := db.tables[key]
		pass := &tablePass{t: t}
		probeByCol := make(map[int]*probe)
		for _, item := range items {
			if len(item.q.Predicates) == 1 && item.q.Predicates[0].Op == OpEq {
				ci, _ := t.schema.ColumnIndex(item.q.Predicates[0].Column)
				p, ok := probeByCol[ci]
				if !ok {
					p = &probe{colIdx: ci, byKey: make(map[string][]int)}
					probeByCol[ci] = p
					pass.probes = append(pass.probes, p)
				}
				k := item.q.Predicates[0].Operand.Key()
				p.byKey[k] = append(p.byKey[k], item.idx)
				continue
			}
			pass.residual = append(pass.residual, item)
		}
		passes[pi] = pass
	}

	// Task list: one task per indexed query, then one per row segment of
	// each table pass. Every task writes only its own slot, so the pool
	// needs no locking and the merge below fixes the deterministic order.
	// Match buffers come from a sync.Pool and go back after the merge, so
	// steady-state batches stop re-growing per-segment slices.
	type segment struct {
		pass   *tablePass
		lo, hi int
		hits   []hit
	}
	var segments []*segment
	segsByPass := make([][]*segment, len(passes))
	for pi, pass := range passes {
		n := pass.t.Len()
		size := n
		if workers > 1 {
			size = (n + workers - 1) / workers
			if size < minSegmentRows {
				size = minSegmentRows
			}
		}
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			seg := &segment{pass: pass, lo: lo, hi: hi, hits: getHitBuf()}
			segments = append(segments, seg)
			segsByPass[pi] = append(segsByPass[pi], seg)
		}
	}
	idxRows := make([][]*Row, len(indexed))
	idxStats := make([]SelectStats, len(indexed))
	runTasks(len(indexed)+len(segments), workers, func(ti int) {
		if ti < len(indexed) {
			// Validation above guarantees these cannot error.
			rows, st, _ := db.selectQuery(indexed[ti].q, useCache)
			idxRows[ti], idxStats[ti] = rows, st
			return
		}
		seg := segments[ti-len(indexed)]
		for _, r := range seg.pass.t.rows[seg.lo:seg.hi] {
			for _, p := range seg.pass.probes {
				for _, qi := range p.byKey[r.Values[p.colIdx].Key()] {
					seg.hits = append(seg.hits, hit{qi: qi, r: r})
				}
			}
			for _, item := range seg.pass.residual {
				match := true
				for _, pred := range item.q.Predicates {
					if !pred.Matches(r) {
						match = false
						break
					}
				}
				if match {
					seg.hits = append(seg.hits, hit{qi: item.idx, r: r})
				}
			}
		}
	})

	// Merge in the fixed sequential order.
	for ti, item := range indexed {
		results[item.idx] = idxRows[ti]
		stats.Add(idxStats[ti])
	}
	for pi, pass := range passes {
		stats.TuplesScanned += pass.t.Len()
		for _, seg := range segsByPass[pi] {
			for _, h := range seg.hits {
				results[h.qi] = append(results[h.qi], h.r)
				stats.TuplesReturned++
			}
		}
	}
	for _, seg := range segments {
		putHitBuf(seg.hits)
	}
	for _, f := range fills {
		rows := results[f.idx]
		db.scanCache.Put(f.key, f.epoch, rows[:len(rows):len(rows)], scanEntryCost(f.key, len(rows)))
	}
	return results, stats, nil
}
