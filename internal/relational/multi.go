package relational

import (
	"fmt"
	"strings"
)

// SelectMulti executes a batch of queries, sharing table scans: queries
// against the same table that lack a usable index are all evaluated in a
// single pass over the table, instead of one scan each. Queries with an
// index access path execute individually (index lookups are already cheap
// and share nothing). Results align with the input order.
//
// This is the substrate-level half of the paper's §6 shared multi-query
// execution: the keyword executor detects identical structured queries by
// fingerprint, and SelectMulti shares the physical scans of the distinct
// remainder.
func (db *Database) SelectMulti(queries []Query) ([][]*Row, SelectStats, error) {
	results := make([][]*Row, len(queries))
	var stats SelectStats

	// Partition: indexed queries run directly; scan queries group by table.
	type scanItem struct {
		idx int
		q   Query
	}
	scansByTable := make(map[string][]scanItem)
	var tableOrder []string
	for i, q := range queries {
		t, ok := db.Table(q.Table)
		if !ok {
			return nil, stats, fmt.Errorf("select: unknown table %q", q.Table)
		}
		for _, p := range q.Predicates {
			if _, ok := t.schema.ColumnIndex(p.Column); !ok {
				return nil, stats, fmt.Errorf("select: table %s has no column %q", q.Table, p.Column)
			}
		}
		if _, _, indexed := db.accessPath(t, q); indexed {
			rows, st, err := db.Select(q)
			if err != nil {
				return nil, stats, err
			}
			stats.Add(st)
			results[i] = rows
			continue
		}
		key := strings.ToLower(q.Table)
		if _, seen := scansByTable[key]; !seen {
			tableOrder = append(tableOrder, key)
		}
		scansByTable[key] = append(scansByTable[key], scanItem{idx: i, q: q})
	}

	// One shared pass per table answers every scan query. Single-predicate
	// equality queries — the overwhelmingly common shape the keyword
	// executor generates — are folded into per-column hash probes: the
	// row's cell value is hashed once and matched against all operands
	// simultaneously, so the per-row cost is O(probed columns), not
	// O(queries). Everything else falls back to per-query evaluation
	// within the same pass.
	for _, key := range tableOrder {
		items := scansByTable[key]
		t := db.tables[key]

		type probe struct {
			colIdx int
			byKey  map[string][]int // operand key -> query indexes
		}
		var probes []*probe
		probeByCol := make(map[int]*probe)
		var residual []scanItem
		for _, item := range items {
			if len(item.q.Predicates) == 1 && item.q.Predicates[0].Op == OpEq {
				ci, _ := t.schema.ColumnIndex(item.q.Predicates[0].Column)
				p, ok := probeByCol[ci]
				if !ok {
					p = &probe{colIdx: ci, byKey: make(map[string][]int)}
					probeByCol[ci] = p
					probes = append(probes, p)
				}
				k := item.q.Predicates[0].Operand.Key()
				p.byKey[k] = append(p.byKey[k], item.idx)
				continue
			}
			residual = append(residual, item)
		}

		stats.TuplesScanned += t.Len()
		for _, r := range t.rows {
			for _, p := range probes {
				for _, qi := range p.byKey[r.Values[p.colIdx].Key()] {
					results[qi] = append(results[qi], r)
					stats.TuplesReturned++
				}
			}
			for _, item := range residual {
				match := true
				for _, pred := range item.q.Predicates {
					if !pred.Matches(r) {
						match = false
						break
					}
				}
				if match {
					results[item.idx] = append(results[item.idx], r)
					stats.TuplesReturned++
				}
			}
		}
	}
	return results, stats, nil
}
