package relational

import (
	"fmt"
	"strings"
)

// JoinedRow is one output row of an FK–PK equijoin.
type JoinedRow struct {
	// Left and Right are the contributing tuples.
	Left, Right *Row
}

// Join executes an FK–PK equijoin between the two selections: the join
// condition is resolved automatically from the foreign-key relationship
// between the tables (left→right or right→left; if both tables declare FKs
// to each other, left→right wins). The smaller filtered side is hashed and
// the other side probes it.
func (db *Database) Join(left, right Query) ([]JoinedRow, SelectStats, error) {
	var stats SelectStats
	lt, ok := db.Table(left.Table)
	if !ok {
		return nil, stats, fmt.Errorf("join: unknown table %q", left.Table)
	}
	rt, ok := db.Table(right.Table)
	if !ok {
		return nil, stats, fmt.Errorf("join: unknown table %q", right.Table)
	}

	// Resolve the FK relationship and which side holds the FK column.
	fkOnLeft, fkColumn := true, ""
	for _, fk := range lt.schema.ForeignKeys {
		if strings.EqualFold(fk.RefTable, rt.schema.Name) {
			fkColumn = fk.Column
			break
		}
	}
	if fkColumn == "" {
		for _, fk := range rt.schema.ForeignKeys {
			if strings.EqualFold(fk.RefTable, lt.schema.Name) {
				fkOnLeft, fkColumn = false, fk.Column
				break
			}
		}
	}
	if fkColumn == "" {
		return nil, stats, fmt.Errorf("join: no FK–PK relationship between %s and %s",
			lt.schema.Name, rt.schema.Name)
	}

	leftRows, st, err := db.Select(left)
	if err != nil {
		return nil, stats, err
	}
	stats.Add(st)
	rightRows, st, err := db.Select(right)
	if err != nil {
		return nil, stats, err
	}
	stats.Add(st)

	var out []JoinedRow
	if fkOnLeft {
		// left.fkColumn = right.PK: hash right by PK key.
		byPK := make(map[string]*Row, len(rightRows))
		for _, r := range rightRows {
			byPK[r.ID.Key] = r
		}
		for _, l := range leftRows {
			v, ok := l.Get(fkColumn)
			if !ok {
				continue
			}
			if r, hit := byPK[v.Key()]; hit {
				out = append(out, JoinedRow{Left: l, Right: r})
			}
		}
	} else {
		// right.fkColumn = left.PK: hash right by FK value, probe with
		// left PKs (a left tuple may join many right tuples).
		byFK := make(map[string][]*Row, len(rightRows))
		for _, r := range rightRows {
			v, ok := r.Get(fkColumn)
			if !ok {
				continue
			}
			byFK[v.Key()] = append(byFK[v.Key()], r)
		}
		for _, l := range leftRows {
			for _, r := range byFK[l.ID.Key] {
				out = append(out, JoinedRow{Left: l, Right: r})
			}
		}
	}
	stats.TuplesReturned = len(out)
	return out, stats, nil
}
