package relational

import (
	"fmt"
	"strings"

	"nebula/internal/cache"
)

// Database is a set of tables plus the FK–PK relationship graph between
// them. Mutations are single-threaded (Nebula's engine serializes them
// under its write lock); concurrent read-only Selects are safe, and the
// optional scan cache is internally synchronized.
type Database struct {
	tables map[string]*Table
	order  []string // creation order, for deterministic iteration
	// scanCache, when enabled, memoizes full-scan query results keyed by
	// the query fingerprint at the owning table's epoch. nil = disabled.
	scanCache *cache.LRU[[]*Row]
	// rowHook observes committed row mutations on every table (current
	// and future) once installed; see SetRowMutationHook.
	rowHook func(RowMutation)
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{tables: make(map[string]*Table)}
}

// CreateTable validates the schema and registers an empty table. Foreign
// keys may reference tables created later; ValidateForeignKeys checks them
// once the catalog is complete.
func (db *Database) CreateTable(s *Schema) (*Table, error) {
	if _, dup := db.tables[strings.ToLower(s.Name)]; dup {
		return nil, fmt.Errorf("table %q already exists", s.Name)
	}
	t, err := newTable(s)
	if err != nil {
		return nil, err
	}
	t.onMutate = db.rowHook
	db.tables[strings.ToLower(s.Name)] = t
	db.order = append(db.order, s.Name)
	return t, nil
}

// SetRowMutationHook installs (or, with nil, removes) an observer for
// committed row mutations across all tables, including tables created
// later. The hook runs synchronously inside Insert/Delete/Update; the
// engine uses it to write-ahead-log raw MutateDB row operations. Callers
// must ensure mutations are serialized while a hook is installed (the
// engine's write lock already does).
func (db *Database) SetRowMutationHook(hook func(RowMutation)) {
	db.rowHook = hook
	for _, name := range db.order {
		db.tables[strings.ToLower(name)].onMutate = hook
	}
}

// Table returns the named table (case-insensitive).
func (db *Database) Table(name string) (*Table, bool) {
	t, ok := db.tables[strings.ToLower(name)]
	return t, ok
}

// MustTable returns the named table, panicking if absent. For use after the
// catalog has been validated.
func (db *Database) MustTable(name string) *Table {
	t, ok := db.Table(name)
	if !ok {
		panic(fmt.Sprintf("relational: no table %q", name))
	}
	return t
}

// TableNames returns table names in creation order.
func (db *Database) TableNames() []string {
	out := make([]string, len(db.order))
	copy(out, db.order)
	return out
}

// TotalRows returns the number of tuples across all tables.
func (db *Database) TotalRows() int {
	n := 0
	for _, name := range db.order {
		n += db.tables[strings.ToLower(name)].Len()
	}
	return n
}

// ValidateForeignKeys verifies that every declared FK references an
// existing table's primary key.
func (db *Database) ValidateForeignKeys() error {
	for _, name := range db.order {
		t := db.tables[strings.ToLower(name)]
		for _, fk := range t.schema.ForeignKeys {
			ref, ok := db.Table(fk.RefTable)
			if !ok {
				return fmt.Errorf("table %s: FK %s references unknown table %q", name, fk.Column, fk.RefTable)
			}
			if !strings.EqualFold(ref.schema.PrimaryKey, fk.RefColumn) {
				return fmt.Errorf("table %s: FK %s must reference %s's primary key %q, not %q",
					name, fk.Column, fk.RefTable, ref.schema.PrimaryKey, fk.RefColumn)
			}
		}
	}
	return nil
}

// EnableScanCache attaches a byte-bounded LRU memoizing full-scan query
// results. Entries are keyed by (query fingerprint, table epoch), so any
// Insert/Delete/Update on a table invalidates its cached row sets. Safe
// to call again to replace (and implicitly clear) the cache.
func (db *Database) EnableScanCache(maxBytes int64) {
	db.scanCache = cache.New[[]*Row](maxBytes)
}

// ScanCacheStats reports the scan cache's counters (zeros when the cache
// is disabled).
func (db *Database) ScanCacheStats() cache.Stats { return db.scanCache.Stats() }

// SetScanCacheLimit resizes the scan cache budget, evicting as needed.
// No-op when the cache is disabled.
func (db *Database) SetScanCacheLimit(maxBytes int64) { db.scanCache.SetMaxBytes(maxBytes) }

// Epoch sums all table epochs plus the table count, producing a single
// counter that moves whenever any data in the database changes (row
// mutations or table creation). Upper layers fold it into their own
// cache keys.
func (db *Database) Epoch() uint64 {
	e := uint64(len(db.order))
	for _, name := range db.order {
		e += db.tables[strings.ToLower(name)].Epoch()
	}
	return e
}

// Lookup resolves a TupleID to its row.
func (db *Database) Lookup(id TupleID) (*Row, bool) {
	t, ok := db.Table(id.Table)
	if !ok {
		return nil, false
	}
	return t.GetByKey(id.Key)
}

// Select executes a structured query. It picks the most selective access
// path available (hash index for equality, inverted index for token
// containment) and filters the remaining predicates. The returned Stats
// report how many tuples were touched, which the benchmarks use as the
// machine-independent cost measure.
func (db *Database) Select(q Query) ([]*Row, SelectStats, error) {
	return db.selectQuery(q, true)
}

// SelectUncached executes a structured query bypassing the scan cache
// (neither consulting nor populating it). The keyword layer uses it when
// a scan budget is in force — budget truncation points depend on actual
// scan counts — and for per-request cache opt-out.
func (db *Database) SelectUncached(q Query) ([]*Row, SelectStats, error) {
	return db.selectQuery(q, false)
}

func (db *Database) selectQuery(q Query, useCache bool) ([]*Row, SelectStats, error) {
	var stats SelectStats
	t, ok := db.Table(q.Table)
	if !ok {
		return nil, stats, fmt.Errorf("select: unknown table %q", q.Table)
	}
	for _, p := range q.Predicates {
		if _, ok := t.schema.ColumnIndex(p.Column); !ok {
			return nil, stats, fmt.Errorf("select: table %s has no column %q", q.Table, p.Column)
		}
	}

	candidates, drove, usedIndex := db.accessPath(t, q)

	// Only full scans are worth memoizing: indexed accesses are already
	// near the cost of a cache probe. Stats report actual work done, so a
	// hit contributes zero scanned tuples.
	var key string
	var epoch uint64
	cacheable := useCache && !usedIndex && db.scanCache != nil
	if cacheable {
		key, epoch = q.Fingerprint(), t.Epoch()
		if rows, ok := db.scanCache.Get(key, epoch); ok {
			stats.CacheHits = 1
			stats.TuplesReturned = len(rows)
			return rows, stats, nil
		}
	}

	stats.IndexUsed = usedIndex
	stats.TuplesScanned = len(candidates)

	var out []*Row
	for _, r := range candidates {
		ok := true
		for i, p := range q.Predicates {
			if i == drove {
				continue // already satisfied by the access path
			}
			if !p.Matches(r) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, r)
		}
	}
	stats.TuplesReturned = len(out)
	if cacheable {
		db.scanCache.Put(key, epoch, out[:len(out):len(out)], scanEntryCost(key, len(out)))
	}
	return out, stats, nil
}

// scanEntryCost approximates the memory held by one scan-cache entry:
// the key string, row-pointer slice, and bookkeeping overhead. Rows
// themselves are shared with the table (Update is copy-on-write on
// row.Values, and every mutation bumps the epoch), so they are not
// charged.
func scanEntryCost(key string, rows int) int64 {
	return int64(len(key)) + 96 + 8*int64(rows)
}

// accessPath chooses the driving predicate. It returns the candidate rows,
// the index of the predicate satisfied by the access path (-1 for full
// scan), and whether an index drove the access.
func (db *Database) accessPath(t *Table, q Query) (rows []*Row, drove int, usedIndex bool) {
	best := -1
	var bestRows []*Row
	for i, p := range q.Predicates {
		key := strings.ToLower(p.Column)
		switch p.Op {
		case OpEq:
			if ix, ok := t.hash[key]; ok {
				c := ix.lookup(p.Operand)
				if best == -1 || len(c) < len(bestRows) {
					best, bestRows = i, c
				}
			}
		case OpContainsToken:
			if ix, ok := t.inverted[key]; ok {
				c := ix.lookup(strings.ToLower(p.Operand.Str()))
				if best == -1 || len(c) < len(bestRows) {
					best, bestRows = i, c
				}
			}
		}
	}
	if best >= 0 {
		return bestRows, best, true
	}
	return t.rows, -1, false
}

// SelectStats reports the cost of one Select. Stats account actual work:
// a query answered from the scan cache counts its returned tuples and a
// cache hit, but zero scanned tuples.
type SelectStats struct {
	// TuplesScanned counts candidate tuples examined.
	TuplesScanned int
	// TuplesReturned counts tuples satisfying all predicates.
	TuplesReturned int
	// IndexUsed reports whether an index drove the access path.
	IndexUsed bool
	// CacheHits counts queries answered from the scan cache.
	CacheHits int
}

// Add accumulates another stats record (used when summing query batches).
func (s *SelectStats) Add(o SelectStats) {
	s.TuplesScanned += o.TuplesScanned
	s.TuplesReturned += o.TuplesReturned
	s.IndexUsed = s.IndexUsed || o.IndexUsed
	s.CacheHits += o.CacheHits
}

// Related follows FK–PK edges one hop in both directions from a row: the
// rows its foreign keys reference, and the rows in other tables whose
// foreign keys reference it. The keyword search layer uses this to produce
// "meaningful related tuples" (§6.1) without re-deriving join semantics.
func (db *Database) Related(r *Row) []*Row {
	var out []*Row
	// Outgoing: this row's FKs.
	for _, fk := range r.schema.ForeignKeys {
		ref, ok := db.Table(fk.RefTable)
		if !ok {
			continue
		}
		v, ok := r.Get(fk.Column)
		if !ok {
			continue
		}
		if target, ok := ref.GetByPK(v); ok {
			out = append(out, target)
		}
	}
	// Incoming: other tables whose FK column equals this row's PK.
	pk := r.MustGet(r.schema.PrimaryKey)
	for _, name := range db.order {
		t := db.tables[strings.ToLower(name)]
		for _, fk := range t.schema.ForeignKeys {
			if !strings.EqualFold(fk.RefTable, r.schema.Name) {
				continue
			}
			matches, _ := t.LookupEqual(fk.Column, pk)
			out = append(out, matches...)
		}
	}
	return out
}
