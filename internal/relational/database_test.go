package relational

import (
	"fmt"
	"testing"
)

// testDB builds the paper's running example: Gene and Protein tables plus a
// Publication table, with the paper's FK topology.
func testDB(t testing.TB) *Database {
	t.Helper()
	db := NewDatabase()
	gene := &Schema{
		Name: "Gene",
		Columns: []Column{
			{Name: "GID", Type: TypeString},
			{Name: "Name", Type: TypeString, Indexed: true},
			{Name: "Length", Type: TypeInt},
			{Name: "Seq", Type: TypeString},
			{Name: "Family", Type: TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	}
	protein := &Schema{
		Name: "Protein",
		Columns: []Column{
			{Name: "PID", Type: TypeString},
			{Name: "PName", Type: TypeString, Indexed: true},
			{Name: "PType", Type: TypeString},
			{Name: "GeneID", Type: TypeString, Indexed: true},
		},
		PrimaryKey:  "PID",
		ForeignKeys: []ForeignKey{{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"}},
	}
	pub := &Schema{
		Name: "Publication",
		Columns: []Column{
			{Name: "PubID", Type: TypeString},
			{Name: "Title", Type: TypeString, FullText: true},
			{Name: "Abstract", Type: TypeString, FullText: true},
		},
		PrimaryKey: "PubID",
	}
	for _, s := range []*Schema{gene, protein, pub} {
		if _, err := db.CreateTable(s); err != nil {
			t.Fatalf("CreateTable(%s): %v", s.Name, err)
		}
	}
	if err := db.ValidateForeignKeys(); err != nil {
		t.Fatalf("ValidateForeignKeys: %v", err)
	}

	genes := [][]Value{
		{String("JW0013"), String("grpC"), Int(1130), String("TGCT"), String("F1")},
		{String("JW0014"), String("groP"), Int(1916), String("GGTT"), String("F6")},
		{String("JW0015"), String("insL"), Int(1112), String("GGCT"), String("F1")},
		{String("JW0018"), String("nhaA"), Int(1166), String("CGTT"), String("F1")},
		{String("JW0019"), String("yaaB"), Int(905), String("TGTG"), String("F3")},
		{String("JW0012"), String("yaaI"), Int(404), String("TTCG"), String("F1")},
		{String("JW0027"), String("namE"), Int(658), String("GTTT"), String("F4")},
	}
	gt := db.MustTable("Gene")
	for _, g := range genes {
		if _, err := gt.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	pt := db.MustTable("Protein")
	proteins := [][]Value{
		{String("P00001"), String("G-Actin"), String("structural"), String("JW0013")},
		{String("P00002"), String("Myosin"), String("motor"), String("JW0014")},
	}
	for _, p := range proteins {
		if _, err := pt.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	pubT := db.MustTable("Publication")
	if _, err := pubT.Insert([]Value{
		String("PUB1"),
		String("A study of gene yaaB"),
		String("The article references gene names yaaB and yaaI and protein G-Actin."),
	}); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateTableErrors(t *testing.T) {
	db := NewDatabase()
	if _, err := db.CreateTable(&Schema{Name: "T"}); err == nil {
		t.Error("no columns should fail")
	}
	if _, err := db.CreateTable(&Schema{
		Name:    "T",
		Columns: []Column{{Name: "A", Type: TypeString}},
	}); err == nil {
		t.Error("missing PK should fail")
	}
	if _, err := db.CreateTable(&Schema{
		Name:       "T",
		Columns:    []Column{{Name: "A", Type: TypeString}, {Name: "a", Type: TypeInt}},
		PrimaryKey: "A",
	}); err == nil {
		t.Error("duplicate (case-insensitive) column should fail")
	}
	if _, err := db.CreateTable(&Schema{
		Name:       "T",
		Columns:    []Column{{Name: "A", Type: TypeInt, FullText: true}},
		PrimaryKey: "A",
	}); err == nil {
		t.Error("full-text on int column should fail")
	}
	ok := &Schema{
		Name:       "T",
		Columns:    []Column{{Name: "A", Type: TypeString}},
		PrimaryKey: "A",
	}
	if _, err := db.CreateTable(ok); err != nil {
		t.Fatalf("valid schema rejected: %v", err)
	}
	if _, err := db.CreateTable(&Schema{
		Name:       "t",
		Columns:    []Column{{Name: "A", Type: TypeString}},
		PrimaryKey: "A",
	}); err == nil {
		t.Error("duplicate table (case-insensitive) should fail")
	}
}

func TestForeignKeyValidation(t *testing.T) {
	db := NewDatabase()
	_, err := db.CreateTable(&Schema{
		Name:        "Child",
		Columns:     []Column{{Name: "ID", Type: TypeString}, {Name: "Ref", Type: TypeString}},
		PrimaryKey:  "ID",
		ForeignKeys: []ForeignKey{{Column: "Ref", RefTable: "Missing", RefColumn: "X"}},
	})
	if err != nil {
		t.Fatalf("forward FK reference should be allowed at create time: %v", err)
	}
	if err := db.ValidateForeignKeys(); err == nil {
		t.Error("dangling FK should fail validation")
	}
}

func TestInsertAndLookup(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	if gt.Len() != 7 {
		t.Fatalf("gene count = %d", gt.Len())
	}
	r, ok := gt.GetByPK(String("JW0013"))
	if !ok || r.MustGet("Name").Str() != "grpC" {
		t.Fatalf("GetByPK failed: %v %v", r, ok)
	}
	// case-insensitive PK lookup
	if _, ok := gt.GetByPK(String("jw0013")); !ok {
		t.Error("PK lookup should be case-insensitive")
	}
	if _, err := gt.Insert([]Value{String("JW0013"), String("x"), Int(1), String("A"), String("F9")}); err == nil {
		t.Error("duplicate PK should fail")
	}
	if _, err := gt.Insert([]Value{String("JW9999"), String("x"), String("oops"), String("A"), String("F9")}); err == nil {
		t.Error("type mismatch should fail")
	}
	if _, err := gt.Insert([]Value{String("JW9999")}); err == nil {
		t.Error("arity mismatch should fail")
	}
}

func TestDelete(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	if !gt.Delete(String("JW0027")) {
		t.Fatal("delete existing failed")
	}
	if gt.Delete(String("JW0027")) {
		t.Fatal("double delete succeeded")
	}
	if gt.Len() != 6 {
		t.Fatalf("len after delete = %d", gt.Len())
	}
	rows, _ := gt.LookupEqual("Name", String("namE"))
	if len(rows) != 0 {
		t.Error("index not cleaned after delete")
	}
}

func TestLookupEqualWithAndWithoutIndex(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	rows, indexed := gt.LookupEqual("Family", String("F1"))
	if !indexed || len(rows) != 4 {
		t.Fatalf("indexed Family=F1: %d rows indexed=%v", len(rows), indexed)
	}
	rows, indexed = gt.LookupEqual("Seq", String("TGCT"))
	if indexed || len(rows) != 1 {
		t.Fatalf("scan Seq=TGCT: %d rows indexed=%v", len(rows), indexed)
	}
	// case-insensitivity of equality
	rows, _ = gt.LookupEqual("Name", String("GRPC"))
	if len(rows) != 1 {
		t.Errorf("case-insensitive lookup failed: %d", len(rows))
	}
}

func TestLookupToken(t *testing.T) {
	db := testDB(t)
	pt := db.MustTable("Publication")
	rows := pt.LookupToken("Abstract", "yaaB")
	if len(rows) != 1 {
		t.Fatalf("token yaaB: %d rows", len(rows))
	}
	rows = pt.LookupToken("Abstract", "yaa")
	if len(rows) != 0 {
		t.Error("partial token must not match")
	}
	// fallback scan path on a non-indexed column
	gt := db.MustTable("Gene")
	rows = gt.LookupToken("Seq", "TGCT")
	if len(rows) != 1 {
		t.Errorf("scan token: %d rows", len(rows))
	}
}

func TestSelect(t *testing.T) {
	db := testDB(t)
	rows, stats, err := db.Select(Query{
		Table:      "Gene",
		Predicates: []Predicate{{Column: "Family", Op: OpEq, Operand: String("F1")}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 || !stats.IndexUsed {
		t.Fatalf("rows=%d stats=%+v", len(rows), stats)
	}
	// Conjunction filtering
	rows, _, err = db.Select(Query{
		Table: "Gene",
		Predicates: []Predicate{
			{Column: "Family", Op: OpEq, Operand: String("F1")},
			{Column: "Name", Op: OpEq, Operand: String("grpC")},
		},
	})
	if err != nil || len(rows) != 1 {
		t.Fatalf("conjunction: rows=%d err=%v", len(rows), err)
	}
	// Unknown table / column errors
	if _, _, err = db.Select(Query{Table: "Nope"}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, _, err = db.Select(Query{Table: "Gene",
		Predicates: []Predicate{{Column: "Nope", Op: OpEq, Operand: String("x")}}}); err == nil {
		t.Error("unknown column should fail")
	}
	// Full scan path
	rows, stats, err = db.Select(Query{
		Table:      "Gene",
		Predicates: []Predicate{{Column: "Seq", Op: OpPrefix, Operand: String("TG")}},
	})
	if err != nil || stats.IndexUsed {
		t.Fatalf("prefix should scan: %+v err=%v", stats, err)
	}
	if len(rows) != 2 { // TGCT, TGTG
		t.Fatalf("prefix rows=%d", len(rows))
	}
}

func TestSelectStatsAdd(t *testing.T) {
	a := SelectStats{TuplesScanned: 3, TuplesReturned: 1}
	a.Add(SelectStats{TuplesScanned: 5, TuplesReturned: 2, IndexUsed: true})
	if a.TuplesScanned != 8 || a.TuplesReturned != 3 || !a.IndexUsed {
		t.Errorf("Add: %+v", a)
	}
}

func TestRelated(t *testing.T) {
	db := testDB(t)
	pt := db.MustTable("Protein")
	actin, _ := pt.GetByPK(String("P00001"))
	related := db.Related(actin)
	if len(related) != 1 || related[0].ID.Table != "Gene" {
		t.Fatalf("protein->gene related: %v", related)
	}
	gt := db.MustTable("Gene")
	grpC, _ := gt.GetByPK(String("JW0013"))
	related = db.Related(grpC)
	if len(related) != 1 || related[0].ID.Table != "Protein" {
		t.Fatalf("gene->protein related: %v", related)
	}
}

func TestLookupByTupleID(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	r, _ := gt.GetByPK(String("JW0019"))
	got, ok := db.Lookup(r.ID)
	if !ok || got != r {
		t.Fatal("Lookup by TupleID failed")
	}
	if _, ok := db.Lookup(TupleID{Table: "Gene", Key: "s:nope"}); ok {
		t.Error("lookup of missing key should fail")
	}
	if _, ok := db.Lookup(TupleID{Table: "Nope", Key: "s:x"}); ok {
		t.Error("lookup of missing table should fail")
	}
}

func TestSubset(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	pt := db.MustTable("Protein")
	g1, _ := gt.GetByPK(String("JW0013"))
	g2, _ := gt.GetByPK(String("JW0019"))
	p1, _ := pt.GetByPK(String("P00001"))
	mini, err := db.Subset([]TupleID{g1.ID, g2.ID, p1.ID, g1.ID /* dup */, {Table: "Gene", Key: "s:missing"}})
	if err != nil {
		t.Fatal(err)
	}
	if mini.TotalRows() != 3 {
		t.Fatalf("mini rows = %d, want 3", mini.TotalRows())
	}
	mg := mini.MustTable("Gene")
	if mg.Len() != 2 {
		t.Fatalf("mini genes = %d", mg.Len())
	}
	// The mini table keeps its own schema and indexes work.
	rows, _ := mg.LookupEqual("Name", String("grpC"))
	if len(rows) != 1 {
		t.Error("mini index lookup failed")
	}
	// Mutating the mini DB must not affect the original.
	mg.Delete(String("JW0013"))
	if _, ok := gt.GetByPK(String("JW0013")); !ok {
		t.Error("subset deletion leaked to original")
	}
}

func TestDistinctCount(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	if got := gt.DistinctCount("Family"); got != 4 { // F1 F6 F3 F4
		t.Errorf("DistinctCount(Family) = %d, want 4", got)
	}
	if got := gt.DistinctCount("Seq"); got != 7 { // scan path
		t.Errorf("DistinctCount(Seq) = %d, want 7", got)
	}
	if got := gt.DistinctCount("Nope"); got != 0 {
		t.Errorf("DistinctCount(unknown) = %d, want 0", got)
	}
}

func TestQueryFingerprint(t *testing.T) {
	q1 := Query{Table: "Gene", Predicates: []Predicate{
		{Column: "Name", Op: OpEq, Operand: String("yaaB")},
		{Column: "Family", Op: OpEq, Operand: String("F3")},
	}}
	q2 := Query{Table: "gene", Predicates: []Predicate{
		{Column: "family", Op: OpEq, Operand: String("f3")},
		{Column: "name", Op: OpEq, Operand: String("YAAB")},
	}}
	if q1.Fingerprint() != q2.Fingerprint() {
		t.Error("fingerprints should be order- and case-insensitive")
	}
	q3 := Query{Table: "Gene", Predicates: []Predicate{
		{Column: "Name", Op: OpEq, Operand: String("yaaI")},
	}}
	if q1.Fingerprint() == q3.Fingerprint() {
		t.Error("different queries must differ")
	}
}

func TestPredicateString(t *testing.T) {
	p := Predicate{Column: "Name", Op: OpEq, Operand: String("yaaB")}
	if p.String() != `Name = "yaaB"` {
		t.Errorf("Predicate.String() = %q", p.String())
	}
	q := Query{Table: "Gene", Predicates: []Predicate{p}}
	want := `SELECT * FROM Gene WHERE Name = "yaaB"`
	if q.String() != want {
		t.Errorf("Query.String() = %q", q.String())
	}
	if (Query{Table: "Gene"}).String() != "SELECT * FROM Gene" {
		t.Error("empty-predicate query string wrong")
	}
}

func TestTableNamesOrderDeterministic(t *testing.T) {
	db := testDB(t)
	names := db.TableNames()
	want := []string{"Gene", "Protein", "Publication"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("TableNames = %v", names)
	}
}

func TestUpdate(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	// Update an indexed column: the index follows.
	if err := gt.Update(String("JW0013"), "Family", String("F9")); err != nil {
		t.Fatal(err)
	}
	rows, _ := gt.LookupEqual("Family", String("F9"))
	if len(rows) != 1 || rows[0].MustGet("GID").Str() != "JW0013" {
		t.Fatalf("index not updated: %v", rows)
	}
	rows, _ = gt.LookupEqual("Family", String("F1"))
	for _, r := range rows {
		if r.MustGet("GID").Str() == "JW0013" {
			t.Error("stale index entry for old value")
		}
	}
	// Update a full-text column: inverted index follows.
	pt := db.MustTable("Publication")
	if err := pt.Update(String("PUB1"), "Abstract", String("completely new words here")); err != nil {
		t.Fatal(err)
	}
	if rows := pt.LookupToken("Abstract", "yaaB"); len(rows) != 0 {
		t.Error("stale inverted entry")
	}
	if rows := pt.LookupToken("Abstract", "completely"); len(rows) != 1 {
		t.Error("new inverted entry missing")
	}
	// No-op update is accepted.
	if err := gt.Update(String("JW0013"), "Family", String("F9")); err != nil {
		t.Fatal(err)
	}
	// Errors: missing tuple, missing column, PK update, type mismatch.
	if err := gt.Update(String("NOPE"), "Family", String("F1")); err == nil {
		t.Error("missing tuple accepted")
	}
	if err := gt.Update(String("JW0013"), "Nope", String("x")); err == nil {
		t.Error("missing column accepted")
	}
	if err := gt.Update(String("JW0013"), "GID", String("JW9999")); err == nil {
		t.Error("PK update accepted")
	}
	if err := gt.Update(String("JW0013"), "Length", String("notanint")); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestUpdateDoesNotLeakIntoSubset(t *testing.T) {
	db := testDB(t)
	gt := db.MustTable("Gene")
	r, _ := gt.GetByPK(String("JW0013"))
	mini, err := db.Subset([]TupleID{r.ID})
	if err != nil {
		t.Fatal(err)
	}
	if err := gt.Update(String("JW0013"), "Family", String("F8")); err != nil {
		t.Fatal(err)
	}
	mr, _ := mini.MustTable("Gene").GetByPK(String("JW0013"))
	if mr.MustGet("Family").Str() != "F1" {
		t.Errorf("update leaked into materialized subset: %v", mr)
	}
}

func TestJoin(t *testing.T) {
	db := testDB(t)
	// Protein has FK -> Gene: protein side left.
	out, stats, err := db.Join(
		Query{Table: "Protein"},
		Query{Table: "Gene"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("joined rows = %d, want 2", len(out))
	}
	for _, jr := range out {
		fk := jr.Left.MustGet("GeneID").Str()
		pk := jr.Right.MustGet("GID").Str()
		if fk != pk {
			t.Errorf("join mismatch: %s vs %s", fk, pk)
		}
	}
	if stats.TuplesReturned != 2 {
		t.Errorf("stats = %+v", stats)
	}
	// Reverse order: the FK is on the right side now.
	out, _, err = db.Join(Query{Table: "Gene"}, Query{Table: "Protein"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("reversed join rows = %d", len(out))
	}
	for _, jr := range out {
		if jr.Left.ID.Table != "Gene" || jr.Right.ID.Table != "Protein" {
			t.Errorf("sides swapped: %v / %v", jr.Left.ID, jr.Right.ID)
		}
	}
	// Predicates restrict both sides.
	out, _, err = db.Join(
		Query{Table: "Protein", Predicates: []Predicate{{Column: "PType", Op: OpEq, Operand: String("motor")}}},
		Query{Table: "Gene", Predicates: []Predicate{{Column: "Family", Op: OpEq, Operand: String("F6")}}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Left.MustGet("PName").Str() != "Myosin" {
		t.Fatalf("filtered join = %v", out)
	}
	// Errors.
	if _, _, err := db.Join(Query{Table: "Gene"}, Query{Table: "Publication"}); err == nil {
		t.Error("unrelated tables should fail")
	}
	if _, _, err := db.Join(Query{Table: "Nope"}, Query{Table: "Gene"}); err == nil {
		t.Error("unknown left table should fail")
	}
	if _, _, err := db.Join(Query{Table: "Gene"}, Query{Table: "Nope"}); err == nil {
		t.Error("unknown right table should fail")
	}
}
