package relational

import (
	"math/rand"
	"testing"
)

func TestSelectMultiMatchesSelect(t *testing.T) {
	db := testDB(t)
	queries := []Query{
		{Table: "Gene", Predicates: []Predicate{{Column: "Family", Op: OpEq, Operand: String("F1")}}},
		{Table: "Gene", Predicates: []Predicate{{Column: "Seq", Op: OpEq, Operand: String("TGCT")}}},   // scan
		{Table: "Gene", Predicates: []Predicate{{Column: "Seq", Op: OpEq, Operand: String("GGTT")}}},   // scan, same column
		{Table: "Gene", Predicates: []Predicate{{Column: "Seq", Op: OpPrefix, Operand: String("TG")}}}, // residual scan
		{Table: "Protein", Predicates: []Predicate{{Column: "PType", Op: OpEq, Operand: String("motor")}}},
		{Table: "Gene", Predicates: []Predicate{ // multi-predicate residual
			{Column: "Seq", Op: OpPrefix, Operand: String("T")},
			{Column: "Family", Op: OpEq, Operand: String("F1")},
		}},
	}
	multi, _, err := db.SelectMulti(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		single, _, err := db.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(single) != len(multi[i]) {
			t.Fatalf("query %d: multi %d rows, single %d", i, len(multi[i]), len(single))
		}
		seen := map[TupleID]bool{}
		for _, r := range single {
			seen[r.ID] = true
		}
		for _, r := range multi[i] {
			if !seen[r.ID] {
				t.Fatalf("query %d: multi returned %v not in single results", i, r.ID)
			}
		}
	}
}

func TestSelectMultiSharesScans(t *testing.T) {
	db := testDB(t)
	// Three scan queries on the same non-indexed column: one table pass.
	queries := []Query{
		{Table: "Gene", Predicates: []Predicate{{Column: "Seq", Op: OpEq, Operand: String("TGCT")}}},
		{Table: "Gene", Predicates: []Predicate{{Column: "Seq", Op: OpEq, Operand: String("GGTT")}}},
		{Table: "Gene", Predicates: []Predicate{{Column: "Seq", Op: OpEq, Operand: String("TTCG")}}},
	}
	_, stats, err := db.SelectMulti(queries)
	if err != nil {
		t.Fatal(err)
	}
	geneRows := db.MustTable("Gene").Len()
	if stats.TuplesScanned != geneRows {
		t.Errorf("scanned %d, want one shared pass of %d", stats.TuplesScanned, geneRows)
	}
	// Individually they scan 3×.
	var individual SelectStats
	for _, q := range queries {
		_, st, err := db.Select(q)
		if err != nil {
			t.Fatal(err)
		}
		individual.Add(st)
	}
	if individual.TuplesScanned != 3*geneRows {
		t.Errorf("individual scanned %d, want %d", individual.TuplesScanned, 3*geneRows)
	}
}

func TestSelectMultiErrors(t *testing.T) {
	db := testDB(t)
	if _, _, err := db.SelectMulti([]Query{{Table: "Missing"}}); err == nil {
		t.Error("unknown table should fail")
	}
	if _, _, err := db.SelectMulti([]Query{{
		Table:      "Gene",
		Predicates: []Predicate{{Column: "Nope", Op: OpEq, Operand: String("x")}},
	}}); err == nil {
		t.Error("unknown column should fail")
	}
	out, _, err := db.SelectMulti(nil)
	if err != nil || len(out) != 0 {
		t.Error("empty batch should be a no-op")
	}
}

// TestSelectMultiRandomEquivalence is a property test: for random batches
// of queries over the fixture, SelectMulti is result-equivalent to Select.
func TestSelectMultiRandomEquivalence(t *testing.T) {
	db := testDB(t)
	rng := rand.New(rand.NewSource(99))
	// Candidate predicate generators.
	operands := map[string][]string{
		"Gene/GID":          {"JW0013", "JW0019", "nope"},
		"Gene/Name":         {"grpC", "yaaB", "zzz"},
		"Gene/Family":       {"F1", "F3", "F9"},
		"Gene/Seq":          {"TGCT", "AAAA", "TGTG"},
		"Protein/PName":     {"G-Actin", "Myosin", "x"},
		"Protein/PType":     {"motor", "structural", "q"},
		"Publication/Title": {"study", "gene"},
	}
	keys := make([]string, 0, len(operands))
	for k := range operands {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(6)
		queries := make([]Query, n)
		for i := range queries {
			key := keys[rng.Intn(len(keys))]
			var table, col string
			for j := 0; j < len(key); j++ {
				if key[j] == '/' {
					table, col = key[:j], key[j+1:]
				}
			}
			ops := operands[key]
			op := OpEq
			if rng.Intn(4) == 0 {
				op = OpPrefix
			}
			queries[i] = Query{Table: table, Predicates: []Predicate{{
				Column: col, Op: op, Operand: String(ops[rng.Intn(len(ops))]),
			}}}
		}
		multi, _, err := db.SelectMulti(queries)
		if err != nil {
			t.Fatal(err)
		}
		for i, q := range queries {
			single, _, err := db.Select(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(single) != len(multi[i]) {
				t.Fatalf("trial %d query %d (%v): multi %d vs single %d",
					trial, i, q, len(multi[i]), len(single))
			}
		}
	}
}
