package relational

import (
	"fmt"
	"reflect"
	"testing"
)

// detMultiDB builds two tables big enough that the shared passes split into
// several row segments, with one indexed and several unindexed columns.
func detMultiDB(t testing.TB, rows int) *Database {
	t.Helper()
	db := NewDatabase()
	for _, s := range []*Schema{
		{
			Name: "Gene",
			Columns: []Column{
				{Name: "GID", Type: TypeString, Indexed: true},
				{Name: "Family", Type: TypeString},
				{Name: "Length", Type: TypeInt},
			},
			PrimaryKey: "GID",
		},
		{
			Name: "Protein",
			Columns: []Column{
				{Name: "PID", Type: TypeString, Indexed: true},
				{Name: "PType", Type: TypeString},
			},
			PrimaryKey: "PID",
		},
	} {
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	gt, pt := db.MustTable("Gene"), db.MustTable("Protein")
	for i := 0; i < rows; i++ {
		if _, err := gt.Insert([]Value{
			String(fmt.Sprintf("JW%05d", i)),
			String(fmt.Sprintf("F%d", i%17)),
			Int(int64(i % 900)),
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := pt.Insert([]Value{
			String(fmt.Sprintf("P%05d", i)),
			String(fmt.Sprintf("T%d", i%5)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// detMultiQueries mixes indexed lookups, single-predicate scans (hash-probe
// path), and multi-predicate scans (residual path) over both tables,
// including duplicates.
func detMultiQueries(n int) []Query {
	qs := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			qs = append(qs, Query{Table: "Gene", Predicates: []Predicate{
				{Column: "Family", Op: OpEq, Operand: String(fmt.Sprintf("F%d", i%17))}}})
		case 1:
			qs = append(qs, Query{Table: "Gene", Predicates: []Predicate{
				{Column: "GID", Op: OpEq, Operand: String(fmt.Sprintf("JW%05d", (i*13)%300))}}})
		case 2: // multi-predicate over unindexed columns: the residual path
			qs = append(qs, Query{Table: "Gene", Predicates: []Predicate{
				{Column: "Family", Op: OpEq, Operand: String(fmt.Sprintf("F%d", i%7))},
				{Column: "Length", Op: OpEq, Operand: Int(int64(i % 900))}}})
		default:
			qs = append(qs, Query{Table: "Protein", Predicates: []Predicate{
				{Column: "PType", Op: OpEq, Operand: String(fmt.Sprintf("T%d", i%5))}}})
		}
	}
	return qs
}

// TestSelectMultiWorkersDeterministic checks that SelectMultiWorkers is
// byte-identical to SelectMulti — same row slices in the same order, same
// stats — at every worker count, including counts far beyond the segment
// supply.
func TestSelectMultiWorkersDeterministic(t *testing.T) {
	db := detMultiDB(t, 2000)
	qs := detMultiQueries(40)
	baseRows, baseStats, err := db.SelectMulti(qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 3, 7, 64} {
		rows, stats, err := db.SelectMultiWorkers(qs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(rows, baseRows) {
			t.Errorf("workers=%d: result rows diverged from sequential", workers)
		}
		if stats != baseStats {
			t.Errorf("workers=%d: stats = %+v, want %+v", workers, stats, baseStats)
		}
	}
}

// TestSelectMultiWorkersValidation checks that validation errors surface
// identically whatever the worker count.
func TestSelectMultiWorkersValidation(t *testing.T) {
	db := detMultiDB(t, 10)
	bad := []Query{{Table: "Nope"}}
	for _, workers := range []int{1, 4} {
		if _, _, err := db.SelectMultiWorkers(bad, workers); err == nil {
			t.Errorf("workers=%d: no error for unknown table", workers)
		}
	}
	bad = []Query{{Table: "Gene", Predicates: []Predicate{{Column: "Nope", Op: OpEq, Operand: String("x")}}}}
	for _, workers := range []int{1, 4} {
		if _, _, err := db.SelectMultiWorkers(bad, workers); err == nil {
			t.Errorf("workers=%d: no error for unknown column", workers)
		}
	}
}

// TestRunTasksPanicPropagates pins the pool contract: a worker panic is
// re-raised on the calling goroutine (so the engine's public boundary can
// convert it to ErrInternal) instead of crashing the process.
func TestRunTasksPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("worker panic was swallowed")
		}
	}()
	runTasks(8, 4, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}
