package relational

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a table.
type Column struct {
	// Name is the physical column name (often abbreviated, e.g. "GID").
	Name string
	// Type is the column's value type.
	Type Type
	// Indexed requests a hash index on exact values.
	Indexed bool
	// FullText requests an inverted token index (string columns only);
	// keyword search over long text columns requires it.
	FullText bool
}

// ForeignKey declares that Column references RefTable.RefColumn (which must
// be RefTable's primary key).
type ForeignKey struct {
	Column    string
	RefTable  string
	RefColumn string
}

// Schema is the definition of one table.
type Schema struct {
	// Name is the table name.
	Name string
	// Columns in declaration order.
	Columns []Column
	// PrimaryKey is the name of the primary-key column. Required: Nebula's
	// annotation attachments and tuple identities are keyed by (table, PK).
	PrimaryKey string
	// ForeignKeys declared on this table.
	ForeignKeys []ForeignKey

	colIndex map[string]int
}

// Validate checks internal consistency and builds lookup structures. It is
// called by Database.CreateTable; calling it twice is harmless.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("schema: empty table name")
	}
	if len(s.Columns) == 0 {
		return fmt.Errorf("schema %s: no columns", s.Name)
	}
	s.colIndex = make(map[string]int, len(s.Columns))
	for i, c := range s.Columns {
		if c.Name == "" {
			return fmt.Errorf("schema %s: column %d has empty name", s.Name, i)
		}
		key := strings.ToLower(c.Name)
		if _, dup := s.colIndex[key]; dup {
			return fmt.Errorf("schema %s: duplicate column %q", s.Name, c.Name)
		}
		if c.FullText && c.Type != TypeString {
			return fmt.Errorf("schema %s: column %q: full-text index requires string type", s.Name, c.Name)
		}
		s.colIndex[key] = i
	}
	if s.PrimaryKey == "" {
		return fmt.Errorf("schema %s: primary key required", s.Name)
	}
	if _, ok := s.colIndex[strings.ToLower(s.PrimaryKey)]; !ok {
		return fmt.Errorf("schema %s: primary key %q is not a column", s.Name, s.PrimaryKey)
	}
	for _, fk := range s.ForeignKeys {
		if _, ok := s.colIndex[strings.ToLower(fk.Column)]; !ok {
			return fmt.Errorf("schema %s: foreign key on unknown column %q", s.Name, fk.Column)
		}
	}
	return nil
}

// ColumnIndex returns the position of the named column (case-insensitive)
// and whether it exists.
func (s *Schema) ColumnIndex(name string) (int, bool) {
	if s.colIndex == nil {
		_ = s.Validate()
	}
	i, ok := s.colIndex[strings.ToLower(name)]
	return i, ok
}

// Column returns the column definition by name.
func (s *Schema) Column(name string) (Column, bool) {
	i, ok := s.ColumnIndex(name)
	if !ok {
		return Column{}, false
	}
	return s.Columns[i], true
}

// ColumnNames returns the column names in declaration order.
func (s *Schema) ColumnNames() []string {
	out := make([]string, len(s.Columns))
	for i, c := range s.Columns {
		out[i] = c.Name
	}
	return out
}

// TupleID identifies a tuple globally and stably: table name plus the
// canonical key form of its primary-key value. Annotation attachments, ACG
// nodes, and verification tasks all refer to tuples by TupleID.
type TupleID struct {
	Table string
	Key   string
}

func (id TupleID) String() string { return id.Table + "/" + id.Key }

// Row is a stored tuple.
type Row struct {
	// ID is the tuple's stable identity.
	ID TupleID
	// Values are the cell values in schema column order.
	Values []Value

	schema *Schema
}

// Schema returns the schema of the table the row belongs to.
func (r *Row) Schema() *Schema { return r.schema }

// Get returns the value of the named column.
func (r *Row) Get(column string) (Value, bool) {
	i, ok := r.schema.ColumnIndex(column)
	if !ok {
		return Value{}, false
	}
	return r.Values[i], true
}

// MustGet returns the value of the named column, panicking on unknown
// columns. Use in code paths where the column name was already validated.
func (r *Row) MustGet(column string) Value {
	v, ok := r.Get(column)
	if !ok {
		panic(fmt.Sprintf("relational: table %s has no column %q", r.schema.Name, column))
	}
	return v
}

func (r *Row) String() string {
	parts := make([]string, len(r.Values))
	for i, v := range r.Values {
		parts[i] = r.schema.Columns[i].Name + "=" + v.Str()
	}
	return r.ID.String() + "{" + strings.Join(parts, ", ") + "}"
}
