package relational

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// RowMutationKind classifies one observed row mutation.
type RowMutationKind int

const (
	// RowInsert is an Insert.
	RowInsert RowMutationKind = iota + 1
	// RowDelete is a Delete/DeleteByKey.
	RowDelete
	// RowUpdate is a single-column Update that changed the stored value.
	RowUpdate
)

// RowMutation describes one committed row change, as delivered to a
// mutation hook (see Database.SetRowMutationHook). It carries everything a
// write-ahead log needs to replay the change deterministically.
type RowMutation struct {
	Kind  RowMutationKind
	Table string
	// Key is the tuple's canonical primary-key form (TupleID.Key).
	Key string
	// Values is the full inserted row (RowInsert only).
	Values []Value
	// Column and Value are the updated column and its new value
	// (RowUpdate only).
	Column string
	Value  Value
}

// Table stores the rows of one relation together with its indexes.
type Table struct {
	schema   *Schema
	rows     []*Row
	byPK     map[string]*Row
	hash     map[string]*hashIndex     // lower(column) -> index
	inverted map[string]*invertedIndex // lower(column) -> index
	pkCol    int
	// epoch counts mutations (Insert/Delete/Update). Cached query results
	// are keyed by it, so any change to the stored rows invalidates them.
	// Atomic so concurrent readers (discoveries under the engine's read
	// lock, /metrics scrapes) never race a write-locked mutation.
	epoch atomic.Uint64
	// onMutate, when non-nil, observes every committed Insert/Delete/
	// Update — the engine's WAL capture point for raw row operations. It
	// runs synchronously inside the mutation, which the engine already
	// serializes under its write lock. Subset/miniDB copies never carry a
	// hook (insertValidated bypasses it by design: materialized views are
	// derived state, not history).
	onMutate func(RowMutation)
}

func newTable(s *Schema) (*Table, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pk, _ := s.ColumnIndex(s.PrimaryKey)
	t := &Table{
		schema:   s,
		byPK:     make(map[string]*Row),
		hash:     make(map[string]*hashIndex),
		inverted: make(map[string]*invertedIndex),
		pkCol:    pk,
	}
	for _, c := range s.Columns {
		key := strings.ToLower(c.Name)
		if c.Indexed || strings.EqualFold(c.Name, s.PrimaryKey) {
			t.hash[key] = newHashIndex()
		}
		if c.FullText {
			t.inverted[key] = newInvertedIndex()
		}
	}
	return t, nil
}

// Schema returns the table definition.
func (t *Table) Schema() *Schema { return t.schema }

// Name returns the table name.
func (t *Table) Name() string { return t.schema.Name }

// Len returns the number of stored rows.
func (t *Table) Len() int { return len(t.rows) }

// Epoch returns the table's mutation counter. It advances on every
// Insert, Delete, and Update; cache entries derived from this table's
// rows carry the epoch they were computed at and are invalidated when
// it moves.
func (t *Table) Epoch() uint64 { return t.epoch.Load() }

// Insert adds a tuple. Values must match the schema's column count and
// types; the primary key must be unique.
func (t *Table) Insert(values []Value) (*Row, error) {
	if len(values) != len(t.schema.Columns) {
		return nil, fmt.Errorf("table %s: insert with %d values, schema has %d columns",
			t.schema.Name, len(values), len(t.schema.Columns))
	}
	for i, v := range values {
		if v.Kind() != t.schema.Columns[i].Type {
			return nil, fmt.Errorf("table %s: column %s expects %v, got %v",
				t.schema.Name, t.schema.Columns[i].Name, t.schema.Columns[i].Type, v.Kind())
		}
	}
	pkKey := values[t.pkCol].Key()
	if _, dup := t.byPK[pkKey]; dup {
		return nil, fmt.Errorf("table %s: duplicate primary key %v", t.schema.Name, values[t.pkCol])
	}
	row := &Row{
		ID:     TupleID{Table: t.schema.Name, Key: pkKey},
		Values: values,
		schema: t.schema,
	}
	t.rows = append(t.rows, row)
	t.byPK[pkKey] = row
	t.indexRow(row)
	t.epoch.Add(1)
	if t.onMutate != nil {
		t.onMutate(RowMutation{Kind: RowInsert, Table: t.schema.Name, Key: pkKey, Values: values})
	}
	return row, nil
}

// insertValidated adds a copy of a row from another table with the same
// (validated) schema, skipping arity/type/duplicate checks. Callers must
// guarantee schema identity and PK uniqueness; Database.Subset does.
func (t *Table) insertValidated(src *Row) *Row {
	row := &Row{ID: src.ID, Values: src.Values, schema: t.schema}
	t.rows = append(t.rows, row)
	t.byPK[src.ID.Key] = row
	t.indexRow(row)
	t.epoch.Add(1)
	return row
}

func (t *Table) indexRow(row *Row) {
	for i, c := range t.schema.Columns {
		key := strings.ToLower(c.Name)
		if ix, ok := t.hash[key]; ok {
			ix.add(row.Values[i], row)
		}
		if ix, ok := t.inverted[key]; ok {
			ix.add(row.Values[i].Str(), row)
		}
	}
}

// Delete removes the tuple with the given primary-key value. It reports
// whether a row was removed.
func (t *Table) Delete(pk Value) bool { return t.DeleteByKey(pk.Key()) }

// DeleteByKey removes the tuple with the given canonical primary-key form
// (the Key component of a TupleID). It reports whether a row was removed.
func (t *Table) DeleteByKey(key string) bool {
	row, ok := t.byPK[key]
	if !ok {
		return false
	}
	delete(t.byPK, key)
	for i, r := range t.rows {
		if r == row {
			t.rows = append(t.rows[:i:i], t.rows[i+1:]...)
			break
		}
	}
	for i, c := range t.schema.Columns {
		key := strings.ToLower(c.Name)
		if ix, ok := t.hash[key]; ok {
			ix.remove(row.Values[i], row)
		}
		if ix, ok := t.inverted[key]; ok {
			ix.remove(row.Values[i].Str(), row)
		}
	}
	t.epoch.Add(1)
	if t.onMutate != nil {
		t.onMutate(RowMutation{Kind: RowDelete, Table: t.schema.Name, Key: key})
	}
	return true
}

// Update replaces the value of one column of the tuple identified by pk,
// maintaining the column's hash/inverted indexes. Updating the primary-key
// column is rejected: tuple identities (TupleID) are referenced by
// annotations, the ACG, and verification tasks — re-keying a tuple is a
// delete + insert at the application layer.
func (t *Table) Update(pk Value, column string, value Value) error {
	return t.UpdateByKey(pk.Key(), column, value)
}

// UpdateByKey is Update addressed by the canonical primary-key form (the
// Key component of a TupleID) — the WAL-replay entry point, where only the
// recorded canonical key is available, not the original typed value.
func (t *Table) UpdateByKey(key string, column string, value Value) error {
	row, ok := t.byPK[key]
	if !ok {
		return fmt.Errorf("table %s: no tuple with %s = %v", t.schema.Name, t.schema.PrimaryKey, key)
	}
	ci, ok := t.schema.ColumnIndex(column)
	if !ok {
		return fmt.Errorf("table %s: no column %q", t.schema.Name, column)
	}
	if ci == t.pkCol {
		return fmt.Errorf("table %s: primary key updates are not supported (delete and re-insert)", t.schema.Name)
	}
	col := t.schema.Columns[ci]
	if value.Kind() != col.Type {
		return fmt.Errorf("table %s: column %s expects %v, got %v", t.schema.Name, col.Name, col.Type, value.Kind())
	}
	old := row.Values[ci]
	if old.Equal(value) {
		return nil
	}
	ixKey := strings.ToLower(col.Name)
	if ix, ok := t.hash[ixKey]; ok {
		ix.remove(old, row)
	}
	if ix, ok := t.inverted[ixKey]; ok {
		ix.remove(old.Str(), row)
	}
	// Rows share value slices with miniDB copies (Subset); copy-on-write
	// keeps materialized views unaffected by later updates.
	values := make([]Value, len(row.Values))
	copy(values, row.Values)
	values[ci] = value
	row.Values = values
	if ix, ok := t.hash[ixKey]; ok {
		ix.add(value, row)
	}
	if ix, ok := t.inverted[ixKey]; ok {
		ix.add(value.Str(), row)
	}
	t.epoch.Add(1)
	if t.onMutate != nil {
		t.onMutate(RowMutation{Kind: RowUpdate, Table: t.schema.Name, Key: key, Column: col.Name, Value: value})
	}
	return nil
}

// GetByPK returns the tuple with the given primary-key value.
func (t *Table) GetByPK(pk Value) (*Row, bool) {
	r, ok := t.byPK[pk.Key()]
	return r, ok
}

// GetByKey returns the tuple whose canonical PK key equals key (the Key
// component of a TupleID).
func (t *Table) GetByKey(key string) (*Row, bool) {
	r, ok := t.byPK[key]
	return r, ok
}

// Rows returns the stored rows in insertion order. The returned slice must
// not be mutated.
func (t *Table) Rows() []*Row { return t.rows }

// LookupEqual returns rows whose column equals v, using the hash index when
// present and a scan otherwise. The second result reports whether an index
// was used (the keyword executor accounts scanned-tuple costs with it).
func (t *Table) LookupEqual(column string, v Value) ([]*Row, bool) {
	key := strings.ToLower(column)
	if ix, ok := t.hash[key]; ok {
		return ix.lookup(v), true
	}
	ci, ok := t.schema.ColumnIndex(column)
	if !ok {
		return nil, false
	}
	var out []*Row
	for _, r := range t.rows {
		if r.Values[ci].EqualFold(v) {
			out = append(out, r)
		}
	}
	return out, false
}

// LookupToken returns rows whose full-text-indexed column contains the
// (lower-cased) token. Columns without a full-text index fall back to a
// scan with tokenized matching.
func (t *Table) LookupToken(column, token string) []*Row {
	key := strings.ToLower(column)
	if ix, ok := t.inverted[key]; ok {
		return ix.lookup(strings.ToLower(token))
	}
	ci, ok := t.schema.ColumnIndex(column)
	if !ok {
		return nil
	}
	needle := strings.ToLower(token)
	var out []*Row
	for _, r := range t.rows {
		if containsToken(r.Values[ci].Str(), needle) {
			out = append(out, r)
		}
	}
	return out
}

func containsToken(text, lowerTok string) bool {
	lt := strings.ToLower(text)
	idx := 0
	for {
		i := strings.Index(lt[idx:], lowerTok)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(lowerTok)
		beforeOK := start == 0 || !isWordByte(lt[start-1])
		afterOK := end == len(lt) || !isWordByte(lt[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b >= 'A' && b <= 'Z'
}

// DistinctCount returns the number of distinct values in the column when a
// hash index exists; otherwise it computes it with a scan.
func (t *Table) DistinctCount(column string) int {
	key := strings.ToLower(column)
	if ix, ok := t.hash[key]; ok {
		return ix.distinct()
	}
	ci, ok := t.schema.ColumnIndex(column)
	if !ok {
		return 0
	}
	seen := make(map[string]struct{})
	for _, r := range t.rows {
		seen[r.Values[ci].Key()] = struct{}{}
	}
	return len(seen)
}
