package relational

import (
	"nebula/internal/textutil"
)

// hashIndex maps canonical value keys to the rows holding that value in one
// column. Row order within a bucket follows insertion order, which keeps
// scans deterministic.
type hashIndex struct {
	buckets map[string][]*Row
}

func newHashIndex() *hashIndex {
	return &hashIndex{buckets: make(map[string][]*Row)}
}

func (ix *hashIndex) add(v Value, r *Row) {
	k := v.Key()
	ix.buckets[k] = append(ix.buckets[k], r)
}

func (ix *hashIndex) remove(v Value, r *Row) {
	k := v.Key()
	rows := ix.buckets[k]
	for i, candidate := range rows {
		if candidate == r {
			ix.buckets[k] = append(rows[:i:i], rows[i+1:]...)
			break
		}
	}
	if len(ix.buckets[k]) == 0 {
		delete(ix.buckets, k)
	}
}

func (ix *hashIndex) lookup(v Value) []*Row {
	return ix.buckets[v.Key()]
}

// distinct returns the number of distinct values in the indexed column —
// used by keyword mapping to estimate selectivity.
func (ix *hashIndex) distinct() int { return len(ix.buckets) }

// invertedIndex maps lower-cased tokens to the rows whose indexed column
// contains that token. It powers keyword containment queries over text
// columns (publication titles/abstracts).
type invertedIndex struct {
	postings map[string][]*Row
}

func newInvertedIndex() *invertedIndex {
	return &invertedIndex{postings: make(map[string][]*Row)}
}

func (ix *invertedIndex) add(text string, r *Row) {
	seen := make(map[string]struct{})
	for _, tok := range textutil.Tokenize(text) {
		if _, dup := seen[tok.Lower]; dup {
			continue
		}
		seen[tok.Lower] = struct{}{}
		ix.postings[tok.Lower] = append(ix.postings[tok.Lower], r)
	}
}

func (ix *invertedIndex) remove(text string, r *Row) {
	seen := make(map[string]struct{})
	for _, tok := range textutil.Tokenize(text) {
		if _, dup := seen[tok.Lower]; dup {
			continue
		}
		seen[tok.Lower] = struct{}{}
		rows := ix.postings[tok.Lower]
		for i, candidate := range rows {
			if candidate == r {
				ix.postings[tok.Lower] = append(rows[:i:i], rows[i+1:]...)
				break
			}
		}
		if len(ix.postings[tok.Lower]) == 0 {
			delete(ix.postings, tok.Lower)
		}
	}
}

func (ix *invertedIndex) lookup(token string) []*Row {
	return ix.postings[token]
}
