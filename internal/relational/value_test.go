package relational

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	s := String("hello")
	if s.Kind() != TypeString || s.Str() != "hello" {
		t.Errorf("String value broken: %+v", s)
	}
	i := Int(42)
	if i.Kind() != TypeInt || i.AsInt() != 42 || i.Str() != "42" {
		t.Errorf("Int value broken: %+v", i)
	}
	f := Float(2.5)
	if f.Kind() != TypeFloat || f.AsFloat() != 2.5 || f.Str() != "2.5" {
		t.Errorf("Float value broken: %+v", f)
	}
	if Int(7).AsFloat() != 7.0 {
		t.Error("AsFloat should convert ints")
	}
}

func TestValueEquality(t *testing.T) {
	if !String("a").Equal(String("a")) {
		t.Error("equal strings not Equal")
	}
	if String("a").Equal(String("A")) {
		t.Error("Equal should be case-sensitive")
	}
	if !String("a").EqualFold(String("A")) {
		t.Error("EqualFold should ignore case")
	}
	if Int(1).Equal(Float(1)) {
		t.Error("cross-kind values must not be Equal")
	}
	if Int(1).EqualFold(String("1")) {
		t.Error("cross-kind values must not be EqualFold")
	}
}

func TestValueKeyDistinguishesKinds(t *testing.T) {
	keys := map[string]bool{}
	for _, v := range []Value{Int(1), Float(1), String("1")} {
		if keys[v.Key()] {
			t.Fatalf("key collision for %v", v)
		}
		keys[v.Key()] = true
	}
	if String("ABC").Key() != String("abc").Key() {
		t.Error("string keys should be case-insensitive")
	}
}

func TestParseValue(t *testing.T) {
	v, err := ParseValue(TypeInt, " 42 ")
	if err != nil || v.AsInt() != 42 {
		t.Errorf("ParseValue int: %v %v", v, err)
	}
	v, err = ParseValue(TypeFloat, "3.25")
	if err != nil || v.AsFloat() != 3.25 {
		t.Errorf("ParseValue float: %v %v", v, err)
	}
	v, err = ParseValue(TypeString, "free text")
	if err != nil || v.Str() != "free text" {
		t.Errorf("ParseValue string: %v %v", v, err)
	}
	if _, err = ParseValue(TypeInt, "notanumber"); err == nil {
		t.Error("expected parse error")
	}
}

func TestCoercibleTo(t *testing.T) {
	if !CoercibleTo(TypeInt, "1130") || CoercibleTo(TypeInt, "yaaB") {
		t.Error("CoercibleTo(TypeInt) wrong")
	}
	if !CoercibleTo(TypeString, "anything") {
		t.Error("everything coerces to string")
	}
	if !CoercibleTo(TypeFloat, "1.5") || CoercibleTo(TypeFloat, "JW0014") {
		t.Error("CoercibleTo(TypeFloat) wrong")
	}
}

// Property: round-tripping an int through Str/ParseValue is the identity.
func TestIntRoundTripProperty(t *testing.T) {
	f := func(i int64) bool {
		v, err := ParseValue(TypeInt, Int(i).Str())
		return err == nil && v.AsInt() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTypeString(t *testing.T) {
	if TypeString.String() != "string" || TypeInt.String() != "int" || TypeFloat.String() != "float" {
		t.Error("Type.String() wrong")
	}
}
