// Package relational implements the in-memory relational database substrate
// that Nebula runs against. The paper's prototype is built on top of a
// conventional RDBMS; this package supplies the pieces the annotation
// pipeline actually depends on: typed schemas with primary and foreign keys,
// tuple storage with stable tuple identities, hash and inverted-text
// indexes, predicate scans, and FK–PK join traversal.
//
// The engine is deliberately not a SQL parser: queries are built
// programmatically (see Query and Predicate), which is how the keyword
// search layer (internal/keyword) consumes it — it generates structured
// queries directly, the way Bergamaschi et al.'s configurations map to SQL.
package relational

import (
	"fmt"
	"strconv"
	"strings"
)

// Type enumerates the column types supported by the engine.
type Type int

const (
	// TypeString holds free text or identifiers.
	TypeString Type = iota
	// TypeInt holds 64-bit signed integers.
	TypeInt
	// TypeFloat holds 64-bit floats.
	TypeFloat
)

func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	case TypeFloat:
		return "float"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Value is a typed cell value. The zero Value is the empty string.
type Value struct {
	kind Type
	i    int64
	f    float64
	s    string
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: TypeString, s: s} }

// Int constructs an int Value.
func Int(i int64) Value { return Value{kind: TypeInt, i: i} }

// Float constructs a float Value.
func Float(f float64) Value { return Value{kind: TypeFloat, f: f} }

// Kind returns the value's type.
func (v Value) Kind() Type { return v.kind }

// Str returns the string payload; for non-string values it returns the
// canonical textual rendering.
func (v Value) Str() string {
	switch v.kind {
	case TypeString:
		return v.s
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	default:
		return ""
	}
}

// AsInt returns the integer payload (0 for other kinds).
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the float payload, converting ints.
func (v Value) AsFloat() float64 {
	if v.kind == TypeInt {
		return float64(v.i)
	}
	return v.f
}

// Equal reports exact equality of kind and payload.
func (v Value) Equal(o Value) bool { return v == o }

// EqualFold reports equality ignoring string case.
func (v Value) EqualFold(o Value) bool {
	if v.kind == TypeString && o.kind == TypeString {
		return strings.EqualFold(v.s, o.s)
	}
	return v == o
}

// Key returns a canonical string form usable as a map key; distinct values
// of different kinds never collide.
func (v Value) Key() string {
	switch v.kind {
	case TypeString:
		return "s:" + strings.ToLower(v.s)
	case TypeInt:
		return "i:" + strconv.FormatInt(v.i, 10)
	default:
		return "f:" + strconv.FormatFloat(v.f, 'g', -1, 64)
	}
}

func (v Value) String() string { return v.Str() }

// ParseValue converts raw text into a Value of the requested type.
func ParseValue(t Type, raw string) (Value, error) {
	switch t {
	case TypeString:
		return String(raw), nil
	case TypeInt:
		i, err := strconv.ParseInt(strings.TrimSpace(raw), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse int %q: %w", raw, err)
		}
		return Int(i), nil
	case TypeFloat:
		f, err := strconv.ParseFloat(strings.TrimSpace(raw), 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse float %q: %w", raw, err)
		}
		return Float(f), nil
	default:
		return Value{}, fmt.Errorf("unknown type %v", t)
	}
}

// CoercibleTo reports whether raw text could be parsed as type t. The
// Value-Map generator uses this for its data-type compatibility check
// (factor 1 of d(w,c) in §5.2.1).
func CoercibleTo(t Type, raw string) bool {
	_, err := ParseValue(t, raw)
	return err == nil
}
