package relational

import (
	"fmt"
	"strings"
)

// Op is a predicate comparison operator.
type Op int

const (
	// OpEq matches rows whose column equals the operand (case-insensitive
	// for strings, matching the paper's keyword-to-value semantics).
	OpEq Op = iota
	// OpContainsToken matches rows whose (text) column contains the operand
	// as a whole token.
	OpContainsToken
	// OpPrefix matches rows whose string rendering starts with the operand
	// (case-insensitive).
	OpPrefix
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpContainsToken:
		return "CONTAINS"
	case OpPrefix:
		return "PREFIX"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Predicate is a single column comparison.
type Predicate struct {
	Column  string
	Op      Op
	Operand Value
}

func (p Predicate) String() string {
	return fmt.Sprintf("%s %s %q", p.Column, p.Op, p.Operand.Str())
}

// Matches evaluates the predicate against a row.
func (p Predicate) Matches(r *Row) bool {
	v, ok := r.Get(p.Column)
	if !ok {
		return false
	}
	switch p.Op {
	case OpEq:
		return v.EqualFold(p.Operand)
	case OpContainsToken:
		return containsToken(v.Str(), strings.ToLower(p.Operand.Str()))
	case OpPrefix:
		return strings.HasPrefix(strings.ToLower(v.Str()), strings.ToLower(p.Operand.Str()))
	default:
		return false
	}
}

// Query is a structured single-table selection with conjunctive predicates.
// The keyword search layer generates these the way Bergamaschi et al.'s
// configurations generate SQL.
type Query struct {
	Table      string
	Predicates []Predicate
}

func (q Query) String() string {
	if len(q.Predicates) == 0 {
		return "SELECT * FROM " + q.Table
	}
	parts := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		parts[i] = p.String()
	}
	return "SELECT * FROM " + q.Table + " WHERE " + strings.Join(parts, " AND ")
}

// Fingerprint returns a canonical identity for the query used by the shared
// multi-query executor to detect identical sub-queries across keyword
// queries (§6's shared execution optimization).
func (q Query) Fingerprint() string {
	parts := make([]string, len(q.Predicates))
	for i, p := range q.Predicates {
		parts[i] = strings.ToLower(p.Column) + "\x00" + p.Op.String() + "\x00" + p.Operand.Key()
	}
	// Conjunction order is irrelevant: sort for canonical form.
	sortStrings(parts)
	return strings.ToLower(q.Table) + "\x01" + strings.Join(parts, "\x01")
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
