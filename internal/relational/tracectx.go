package relational

import (
	"context"

	"nebula/internal/trace"
)

// Context-carrying variants of the Select family. They exist for one
// reason: request-scoped tracing. When the context carries a trace span the
// scan is wrapped in a child span recording the table and the scan-cost
// counters; when it does not, each variant immediately delegates to its
// plain counterpart — the untraced hot path pays one nil comparison and
// zero allocations. The context is NOT consulted for cancellation here:
// cancellation granularity stays at the keyword layer's per-query /
// per-chunk checks, so traced and untraced runs interrupt at identical
// points.

// SelectContext is Select, wrapped in a "scan:<table>" span when ctx is
// being traced.
func (db *Database) SelectContext(ctx context.Context, q Query) ([]*Row, SelectStats, error) {
	parent := trace.FromContext(ctx)
	if parent == nil {
		return db.Select(q)
	}
	span := parent.StartChild("scan:" + q.Table)
	rows, st, err := db.Select(q)
	finishScanSpan(span, st)
	return rows, st, err
}

// SelectUncachedContext is SelectUncached, traced like SelectContext.
func (db *Database) SelectUncachedContext(ctx context.Context, q Query) ([]*Row, SelectStats, error) {
	parent := trace.FromContext(ctx)
	if parent == nil {
		return db.SelectUncached(q)
	}
	span := parent.StartChild("scan:" + q.Table)
	rows, st, err := db.SelectUncached(q)
	finishScanSpan(span, st)
	return rows, st, err
}

// SelectMultiWorkersContext is SelectMultiWorkers, wrapped in one
// "scan-multi" span covering the whole batch (the batch shares physical
// scans, so per-query attribution inside it would be fiction).
func (db *Database) SelectMultiWorkersContext(ctx context.Context, queries []Query, workers int) ([][]*Row, SelectStats, error) {
	parent := trace.FromContext(ctx)
	if parent == nil {
		return db.SelectMultiWorkers(queries, workers)
	}
	span := parent.StartChild("scan-multi")
	span.AddInt("queries", len(queries))
	sets, st, err := db.SelectMultiWorkers(queries, workers)
	finishScanSpan(span, st)
	return sets, st, err
}

// SelectMultiUncachedContext is SelectMultiUncached, traced like
// SelectMultiWorkersContext.
func (db *Database) SelectMultiUncachedContext(ctx context.Context, queries []Query, workers int) ([][]*Row, SelectStats, error) {
	parent := trace.FromContext(ctx)
	if parent == nil {
		return db.SelectMultiUncached(queries, workers)
	}
	span := parent.StartChild("scan-multi")
	span.AddInt("queries", len(queries))
	sets, st, err := db.SelectMultiUncached(queries, workers)
	finishScanSpan(span, st)
	return sets, st, err
}

func finishScanSpan(span *trace.Span, st SelectStats) {
	if !span.Enabled() {
		return
	}
	span.AddInt("tuples_scanned", st.TuplesScanned)
	span.AddInt("tuples_returned", st.TuplesReturned)
	if st.CacheHits > 0 {
		span.AddInt("cache_hits", st.CacheHits)
	}
	if st.IndexUsed {
		span.Add("index_used", 1)
	}
	span.End()
}
