// Package trace is Nebula's request-scoped span tree: a zero-dependency
// attribution layer that records where one discovery request spends its
// time (parse → map → generate → execute → rank → verify) and what each
// stage cost (tuples scanned, cache hits, queries planned).
//
// Design constraints, in order:
//
//  1. Observe-only. A span records; it never influences control flow, so
//     results with tracing on are byte-identical to tracing off.
//  2. Free when off. Every Span method is a nil-receiver no-op, and
//     StartSpan on a context with no tracer returns (nil, ctx) unchanged —
//     the disabled hot path performs zero allocations.
//  3. Bounded. Depth and per-span child count are capped; overflow is
//     counted (DroppedChildren), never grown, so a pathological request
//     cannot turn its own trace into a memory problem.
//
// Timings use the monotonic clock carried by time.Time; snapshots report
// offsets from the root span's start, so a tree is self-consistent even
// when the wall clock steps.
package trace

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Bounds on the tree. MaxDepth counts the root as depth 1; a span at
// MaxDepth refuses children. MaxChildren bounds each span's direct
// children; further StartChild calls return nil and are counted.
const (
	MaxDepth    = 8
	MaxChildren = 64
)

// Span is one timed node of the tree. All methods are safe on a nil
// receiver (the disabled-tracing case) and safe for concurrent use —
// parallel workers may add children or counters to a shared parent.
type Span struct {
	name  string
	start time.Time
	depth int

	mu       sync.Mutex
	end      time.Time
	counters map[string]int64
	children []*Span
	dropped  int
}

// New starts a root span. The caller owns it: End it when the request
// finishes, then Snapshot it for serialization.
func New(name string) *Span {
	return &Span{name: name, start: time.Now(), depth: 1}
}

// StartChild starts a child span. On a nil receiver, at MaxDepth, or when
// the receiver already has MaxChildren children it returns nil (a no-op
// span); dropped children are counted in the parent's snapshot.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	if s.depth >= MaxDepth {
		s.mu.Lock()
		s.dropped++
		s.mu.Unlock()
		return nil
	}
	child := &Span{name: name, start: time.Now(), depth: s.depth + 1}
	s.mu.Lock()
	if len(s.children) >= MaxChildren {
		s.dropped++
		s.mu.Unlock()
		return nil
	}
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// End stops the span's clock. Idempotent; a span never Ended is closed at
// snapshot time.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Add accumulates a named counter on the span (tuples_scanned,
// cache_hits, …). No-op on nil.
func (s *Span) Add(counter string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]int64)
	}
	s.counters[counter] += n
	s.mu.Unlock()
}

// AddInt is Add for the int-typed stats counters the pipeline produces.
func (s *Span) AddInt(counter string, n int) { s.Add(counter, int64(n)) }

// Enabled reports whether the span records anything — the guard callers
// use before doing work (string formatting, stats copies) that only
// matters when tracing is on.
func (s *Span) Enabled() bool { return s != nil }

// ctxKey carries the current span through a context.
type ctxKey struct{}

// WithSpan returns a context carrying s as the current span. Passing a
// nil span returns ctx unchanged, keeping the disabled path free.
func WithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the current span, or nil when the request is not
// being traced. The nil result is itself a usable no-op span.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan starts a child of the context's current span and returns it
// together with a context carrying the child. When the context has no
// tracer it returns (nil, ctx) unchanged — zero allocations, the
// contract the disabled hot path depends on.
func StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	parent := FromContext(ctx)
	if parent == nil {
		return nil, ctx
	}
	child := parent.StartChild(name)
	if child == nil {
		return nil, ctx
	}
	return child, WithSpan(ctx, child)
}

// Node is the serializable snapshot of one span: offsets are nanoseconds
// from the root span's start, durations are monotonic-clock intervals.
type Node struct {
	Name            string           `json:"name"`
	StartNS         int64            `json:"start_ns"`
	DurationNS      int64            `json:"duration_ns"`
	Counters        map[string]int64 `json:"counters,omitempty"`
	DroppedChildren int              `json:"dropped_children,omitempty"`
	Children        []*Node          `json:"children,omitempty"`
}

// Snapshot converts the span tree into its serializable form. Call it
// after End; a still-open span (or child) is closed at the snapshot
// instant. Nil receiver yields nil.
func (s *Span) Snapshot() *Node {
	if s == nil {
		return nil
	}
	return s.snapshot(s.start, time.Now())
}

func (s *Span) snapshot(rootStart, now time.Time) *Node {
	s.mu.Lock()
	end := s.end
	if end.IsZero() {
		end = now
	}
	n := &Node{
		Name:            s.name,
		StartNS:         s.start.Sub(rootStart).Nanoseconds(),
		DurationNS:      end.Sub(s.start).Nanoseconds(),
		DroppedChildren: s.dropped,
	}
	if len(s.counters) > 0 {
		n.Counters = make(map[string]int64, len(s.counters))
		for k, v := range s.counters {
			n.Counters[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		n.Children = append(n.Children, c.snapshot(rootStart, now))
	}
	return n
}

// Render writes the tree as an indented text outline — the form the CLI's
// --trace flag and the server's slow-request log print:
//
//	discover                        12.3ms
//	  generate                       1.1ms  queries=9 tokens=57
//	  execute                       10.8ms  tuples_scanned=4211
func (n *Node) Render(w io.Writer) {
	n.render(w, 0)
}

func (n *Node) render(w io.Writer, indent int) {
	if n == nil {
		return
	}
	fmt.Fprintf(w, "%s%-*s %9s", strings.Repeat("  ", indent),
		32-2*indent, n.Name, time.Duration(n.DurationNS).Round(time.Microsecond))
	keys := make([]string, 0, len(n.Counters))
	for k := range n.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %s=%d", k, n.Counters[k])
	}
	if n.DroppedChildren > 0 {
		fmt.Fprintf(w, "  dropped_children=%d", n.DroppedChildren)
	}
	fmt.Fprintln(w)
	for _, c := range n.Children {
		c.render(w, indent+1)
	}
}

// String renders the tree to a string (convenience for logs).
func (n *Node) String() string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	n.Render(&b)
	return b.String()
}

// SpanCount returns the number of nodes in the tree (the bench harness
// reports it as a size sanity check).
func (n *Node) SpanCount() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.SpanCount()
	}
	return total
}
