package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.End()
	s.Add("x", 1)
	s.AddInt("y", 2)
	if s.Enabled() {
		t.Fatal("nil span reported Enabled")
	}
	if c := s.StartChild("child"); c != nil {
		t.Fatalf("nil span produced child %v", c)
	}
	if n := s.Snapshot(); n != nil {
		t.Fatalf("nil span produced snapshot %v", n)
	}
}

func TestSpanTreeBasics(t *testing.T) {
	root := New("root")
	gen := root.StartChild("generate")
	gen.Add("queries", 9)
	gen.Add("queries", 3)
	gen.End()
	exec := root.StartChild("execute")
	exec.AddInt("tuples_scanned", 42)
	exec.End()
	root.End()

	n := root.Snapshot()
	if n == nil || n.Name != "root" {
		t.Fatalf("bad root snapshot: %+v", n)
	}
	if len(n.Children) != 2 {
		t.Fatalf("want 2 children, got %d", len(n.Children))
	}
	if got := n.Children[0].Counters["queries"]; got != 12 {
		t.Fatalf("queries counter = %d, want 12", got)
	}
	if got := n.Children[1].Counters["tuples_scanned"]; got != 42 {
		t.Fatalf("tuples_scanned = %d, want 42", got)
	}
	for _, c := range n.Children {
		if c.DurationNS < 0 {
			t.Fatalf("negative duration in %q", c.Name)
		}
		if c.StartNS < 0 {
			t.Fatalf("child %q starts before root", c.Name)
		}
	}
	if n.SpanCount() != 3 {
		t.Fatalf("SpanCount = %d, want 3", n.SpanCount())
	}
}

func TestSnapshotClosesOpenSpans(t *testing.T) {
	root := New("root")
	root.StartChild("never-ended")
	n := root.Snapshot() // neither root nor child was Ended
	if n.DurationNS < 0 || n.Children[0].DurationNS < 0 {
		t.Fatalf("open spans snapshotted with negative durations: %+v", n)
	}
}

func TestChildLimit(t *testing.T) {
	root := New("root")
	for i := 0; i < MaxChildren; i++ {
		if c := root.StartChild("c"); c == nil {
			t.Fatalf("child %d unexpectedly dropped", i)
		}
	}
	if c := root.StartChild("overflow"); c != nil {
		t.Fatal("child beyond MaxChildren was not dropped")
	}
	n := root.Snapshot()
	if len(n.Children) != MaxChildren {
		t.Fatalf("children = %d, want %d", len(n.Children), MaxChildren)
	}
	if n.DroppedChildren != 1 {
		t.Fatalf("DroppedChildren = %d, want 1", n.DroppedChildren)
	}
}

func TestDepthLimit(t *testing.T) {
	s := New("d1")
	for d := 2; d <= MaxDepth; d++ {
		next := s.StartChild("deeper")
		if next == nil {
			t.Fatalf("span at depth %d unexpectedly dropped", d)
		}
		s = next
	}
	if c := s.StartChild("too-deep"); c != nil {
		t.Fatal("span beyond MaxDepth was not dropped")
	}
	if n := s.Snapshot(); n.DroppedChildren != 1 {
		t.Fatalf("DroppedChildren = %d, want 1", n.DroppedChildren)
	}
}

func TestContextPlumbing(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext on empty ctx = %v", got)
	}
	// StartSpan without a tracer must hand back the same context.
	sp, ctx2 := StartSpan(ctx, "noop")
	if sp != nil || ctx2 != ctx {
		t.Fatalf("disabled StartSpan allocated: span=%v ctx-changed=%v", sp, ctx2 != ctx)
	}
	// WithSpan(nil) is also identity.
	if got := WithSpan(ctx, nil); got != ctx {
		t.Fatal("WithSpan(ctx, nil) changed the context")
	}

	root := New("root")
	ctx = WithSpan(ctx, root)
	if FromContext(ctx) != root {
		t.Fatal("FromContext did not return the installed span")
	}
	child, cctx := StartSpan(ctx, "stage")
	if child == nil || FromContext(cctx) != child {
		t.Fatal("StartSpan did not install the child span")
	}
	child.End()
	root.End()
	if got := len(root.Snapshot().Children); got != 1 {
		t.Fatalf("root has %d children, want 1", got)
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		sp, c := StartSpan(ctx, "hot")
		sp.AddInt("tuples_scanned", 7)
		sp.End()
		_ = c
		FromContext(ctx).Add("more", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocated %.1f allocs/op, want 0", allocs)
	}
}

func TestConcurrentChildrenAndCounters(t *testing.T) {
	root := New("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				c := root.StartChild("worker")
				c.Add("n", 1)
				root.Add("total", 1)
				c.End()
			}
		}()
	}
	wg.Wait()
	root.End()
	n := root.Snapshot()
	if got := n.Counters["total"]; got != 32 {
		t.Fatalf("total = %d, want 32", got)
	}
	if len(n.Children) != 32 {
		t.Fatalf("children = %d, want 32", len(n.Children))
	}
}

func TestRenderAndJSON(t *testing.T) {
	root := New("discover")
	g := root.StartChild("generate")
	g.Add("queries", 4)
	g.End()
	root.End()
	n := root.Snapshot()

	out := n.String()
	if !strings.Contains(out, "discover") || !strings.Contains(out, "generate") {
		t.Fatalf("render missing span names:\n%s", out)
	}
	if !strings.Contains(out, "queries=4") {
		t.Fatalf("render missing counters:\n%s", out)
	}
	if !strings.HasPrefix(strings.Split(out, "\n")[1], "  ") {
		t.Fatalf("child not indented:\n%s", out)
	}

	blob, err := json.Marshal(n)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Node
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Name != "discover" || len(back.Children) != 1 || back.Children[0].Counters["queries"] != 4 {
		t.Fatalf("JSON round trip mangled tree: %+v", back)
	}
	// Empty maps must be omitted, not serialized as {}.
	if strings.Contains(string(blob), `"counters":{}`) {
		t.Fatalf("empty counters serialized: %s", blob)
	}
	var nilNode *Node
	if nilNode.String() != "" || nilNode.SpanCount() != 0 {
		t.Fatal("nil Node helpers not safe")
	}
}
