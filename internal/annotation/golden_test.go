package annotation

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nebula/internal/relational"
)

// update rewrites the golden files under testdata/golden/ instead of
// comparing against them:
//
//	go test ./internal/annotation -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenFixture builds a Gene–Protein database (FK Protein.GeneID →
// Gene.GID) with annotations at every granularity the propagation rules
// distinguish: row-level true, cell-level true, predicted, and one
// annotation attached on both sides of the join.
func goldenFixture(t *testing.T) (*relational.Database, *Store) {
	t.Helper()
	db := relational.NewDatabase()
	gt, err := db.CreateTable(&relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString},
			{Name: "Name", Type: relational.TypeString, Indexed: true},
			{Name: "Family", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := db.CreateTable(&relational.Schema{
		Name: "Protein",
		Columns: []relational.Column{
			{Name: "PID", Type: relational.TypeString},
			{Name: "PName", Type: relational.TypeString},
			{Name: "GeneID", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey:  "PID",
		ForeignKeys: []relational.ForeignKey{{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range [][]relational.Value{
		{relational.String("JW0013"), relational.String("grpC"), relational.String("F1")},
		{relational.String("JW0019"), relational.String("yaaB"), relational.String("F3")},
		{relational.String("JW0012"), relational.String("yaaI"), relational.String("F1")},
	} {
		if _, err := gt.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range [][]relational.Value{
		{relational.String("P1"), relational.String("Actin"), relational.String("JW0013")},
		{relational.String("P2"), relational.String("Tubulin"), relational.String("JW0013")},
		{relational.String("P3"), relational.String("Myosin"), relational.String("JW0019")},
	} {
		if _, err := pt.Insert(r); err != nil {
			t.Fatal(err)
		}
	}

	s := NewStore()
	for _, a := range []*Annotation{
		{ID: "rowAnn", Author: "curator", Body: "row-level note on JW0013", Kind: "comment"},
		{ID: "cellAnn", Author: "curator", Body: "cell note on grpC's Name", Kind: "comment"},
		{ID: "predAnn", Author: "nebula", Body: "predicted relevance", Kind: "flag"},
		{ID: "famAnn", Author: "curator", Body: "family F1 review", Kind: "comment"},
		{ID: "protCell", Author: "curator", Body: "cell note on Actin's PName", Kind: "comment"},
		{ID: "bothSides", Author: "curator", Body: "attached to gene and protein", Kind: "article"},
	} {
		if err := s.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	g13, _ := gt.GetByPK(relational.String("JW0013"))
	g12, _ := gt.GetByPK(relational.String("JW0012"))
	p1, _ := pt.GetByPK(relational.String("P1"))
	p2, _ := pt.GetByPK(relational.String("P2"))
	for _, att := range []Attachment{
		{Annotation: "rowAnn", Tuple: g13.ID, Type: TrueAttachment},
		{Annotation: "cellAnn", Tuple: g13.ID, Column: "Name", Type: TrueAttachment},
		{Annotation: "predAnn", Tuple: g13.ID, Type: PredictedAttachment, Confidence: 0.42},
		{Annotation: "famAnn", Tuple: g13.ID, Column: "Family", Type: PredictedAttachment, Confidence: 0.8},
		{Annotation: "famAnn", Tuple: g12.ID, Column: "Family", Type: TrueAttachment},
		{Annotation: "protCell", Tuple: p1.ID, Column: "PName", Type: TrueAttachment},
		{Annotation: "bothSides", Tuple: g13.ID, Type: PredictedAttachment, Confidence: 0.3},
		{Annotation: "bothSides", Tuple: p2.ID, Type: TrueAttachment},
	} {
		if _, err := s.Attach(att); err != nil {
			t.Fatal(err)
		}
	}
	return db, s
}

func renderPropagated(rows []PropagatedRow) string {
	var b strings.Builder
	for _, pr := range rows {
		fmt.Fprintf(&b, "%s:", pr.Row.ID)
		if len(pr.Annotations) == 0 {
			b.WriteString(" (none)")
		}
		for i, a := range pr.Annotations {
			fmt.Fprintf(&b, " %s[%s]@%.2f", a.ID, a.Kind, pr.Confidences[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func renderJoined(rows []PropagatedJoinRow) string {
	var b strings.Builder
	for _, jr := range rows {
		fmt.Fprintf(&b, "%s ⋈ %s:", jr.Left.ID, jr.Right.ID)
		if len(jr.Annotations) == 0 {
			b.WriteString(" (none)")
		}
		for i, a := range jr.Annotations {
			fmt.Fprintf(&b, " %s[%s]@%.2f", a.ID, a.Kind, jr.Confidences[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// checkGolden compares got against testdata/golden/<name>.golden, or
// rewrites the file when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create it): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after intentional changes)\n--- want\n%s--- got\n%s",
			path, want, got)
	}
}

// TestGoldenPropagateSelection pins the full propagation output of plain
// selections: row-level, cell-level, and predicted attachments over a
// family scan and a point lookup.
func TestGoldenPropagateSelection(t *testing.T) {
	db, s := goldenFixture(t)
	for _, tc := range []struct {
		name string
		q    relational.Query
	}{
		{"select-family-f1", relational.Query{Table: "Gene", Predicates: []relational.Predicate{
			{Column: "Family", Op: relational.OpEq, Operand: relational.String("F1")}}}},
		{"select-all-genes", relational.Query{Table: "Gene"}},
	} {
		out, err := s.PropagateQuery(db, tc.q, nil)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.name, renderPropagated(out))
	}
}

// TestGoldenPropagateProjection pins the projection rule: cell-level
// attachments ride along only when their column is projected; row-level
// and predicted (row-granularity) attachments always do.
func TestGoldenPropagateProjection(t *testing.T) {
	db, s := goldenFixture(t)
	q := relational.Query{Table: "Gene"}
	for _, tc := range []struct {
		name      string
		projected []string
	}{
		{"project-name", []string{"GID", "Name"}},
		{"project-family", []string{"GID", "Family"}},
		{"project-neither-cell", []string{"GID"}},
	} {
		out, err := s.PropagateQuery(db, q, tc.projected)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.name, renderPropagated(out))
	}
}

// TestGoldenPropagateJoin pins join propagation: annotations from either
// contributing tuple reach the joined row, deduplicated with the higher
// confidence winning, and per-side projections gate cell-level edges.
func TestGoldenPropagateJoin(t *testing.T) {
	db, s := goldenFixture(t)
	left := relational.Query{Table: "Protein"}
	right := relational.Query{Table: "Gene"}
	for _, tc := range []struct {
		name                string
		projLeft, projRight []string
	}{
		{"join-all-columns", nil, nil},
		{"join-project-pname", []string{"PID", "PName"}, []string{"GID"}},
		{"join-project-no-cells", []string{"PID"}, []string{"GID"}},
	} {
		out, err := s.PropagateJoin(db, left, right, tc.projLeft, tc.projRight)
		if err != nil {
			t.Fatal(err)
		}
		checkGolden(t, tc.name, renderJoined(out))
	}
}
