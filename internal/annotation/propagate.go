package annotation

import (
	"strings"

	"nebula/internal/relational"
)

// PropagatedRow pairs a query-result tuple with the annotations that
// propagate to it. This is the query-time annotation propagation facility of
// the underlying engine [18]: when users run relational queries, annotations
// attached to the produced tuples (or to the projected cells) ride along
// with the answers.
type PropagatedRow struct {
	// Row is the data tuple from the query result.
	Row *relational.Row
	// Annotations are the annotations propagated to this tuple, in stable
	// (annotation-insertion) order.
	Annotations []*Annotation
	// Confidences aligns with Annotations: the edge weight of the
	// attachment each annotation propagated through.
	Confidences []float64
}

// Propagate computes, for each result row, the annotations that propagate
// to it. projected lists the columns the query projects; an empty slice
// means SELECT * (every attachment propagates). Cell-level attachments
// propagate only when their column is projected; row-level attachments
// always propagate. Predicted attachments propagate with their estimated
// confidence so that downstream consumers can display the uncertainty.
func (s *Store) Propagate(rows []*relational.Row, projected []string) []PropagatedRow {
	projSet := make(map[string]struct{}, len(projected))
	for _, c := range projected {
		projSet[strings.ToLower(c)] = struct{}{}
	}
	out := make([]PropagatedRow, 0, len(rows))
	for _, r := range rows {
		pr := PropagatedRow{Row: r}
		atts := s.byTuple[r.ID]
		// Deterministic order: follow the annotation insertion order.
		for _, id := range s.order {
			for _, att := range atts {
				if att.Annotation != id {
					continue
				}
				if att.Column != "" && len(projSet) > 0 {
					if _, ok := projSet[strings.ToLower(att.Column)]; !ok {
						continue
					}
				}
				pr.Annotations = append(pr.Annotations, s.annotations[att.Annotation])
				pr.Confidences = append(pr.Confidences, att.Confidence)
			}
		}
		out = append(out, pr)
	}
	return out
}

// PropagateQuery runs a structured query against db and propagates
// annotations over its results in one step.
func (s *Store) PropagateQuery(db *relational.Database, q relational.Query, projected []string) ([]PropagatedRow, error) {
	rows, _, err := db.Select(q)
	if err != nil {
		return nil, err
	}
	return s.Propagate(rows, projected), nil
}

// PropagatedJoinRow pairs one joined output row with the annotations that
// propagate to it from either contributing tuple.
type PropagatedJoinRow struct {
	// Left and Right are the contributing tuples.
	Left, Right *relational.Row
	// Annotations propagated from either side, deduplicated, in stable
	// annotation-insertion order.
	Annotations []*Annotation
	// Confidences aligns with Annotations; when an annotation reaches the
	// output row through both sides, the higher edge confidence wins.
	Confidences []float64
}

// PropagateJoin executes the FK–PK equijoin of the two selections and
// propagates annotations over the joined rows: an annotation attached to
// either contributing tuple rides along with the output row — the join
// semantics of query-time propagation in [9]/[18]. projectedLeft and
// projectedRight list the projected columns of each side (empty = all);
// cell-level attachments propagate only when their column is projected on
// their own side.
func (s *Store) PropagateJoin(db *relational.Database, left, right relational.Query, projectedLeft, projectedRight []string) ([]PropagatedJoinRow, error) {
	joined, _, err := db.Join(left, right)
	if err != nil {
		return nil, err
	}
	out := make([]PropagatedJoinRow, 0, len(joined))
	for _, jr := range joined {
		pl := s.Propagate([]*relational.Row{jr.Left}, projectedLeft)[0]
		pr := s.Propagate([]*relational.Row{jr.Right}, projectedRight)[0]
		row := PropagatedJoinRow{Left: jr.Left, Right: jr.Right}
		best := make(map[ID]int)
		add := func(a *Annotation, conf float64) {
			if i, ok := best[a.ID]; ok {
				if conf > row.Confidences[i] {
					row.Confidences[i] = conf
				}
				return
			}
			best[a.ID] = len(row.Annotations)
			row.Annotations = append(row.Annotations, a)
			row.Confidences = append(row.Confidences, conf)
		}
		for i, a := range pl.Annotations {
			add(a, pl.Confidences[i])
		}
		for i, a := range pr.Annotations {
			add(a, pr.Confidences[i])
		}
		out = append(out, row)
	}
	return out, nil
}
