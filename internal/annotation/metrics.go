package annotation

// IdealEdges is the reference edge set E_ideal of Definition 3.1: for every
// annotation, the exact set of tuples it is related to. In experiments it
// comes from the workload generator's ground truth; in production it would
// be (partially) supplied by domain experts.
type IdealEdges map[EdgeKey]struct{}

// QualityMetrics reports how far an annotated database diverges from the
// ideal one (Equations 1 and 2 of §3).
type QualityMetrics struct {
	// FalseNegativeRatio is D.F_N = |E_ideal − E| / |E_ideal|.
	FalseNegativeRatio float64
	// FalsePositiveRatio is D.F_P = |E − E_ideal| / |E|.
	FalsePositiveRatio float64
	// Missing counts edges in E_ideal absent from E.
	Missing int
	// Spurious counts edges in E absent from E_ideal.
	Spurious int
	// IdealEdges is |E_ideal|.
	IdealEdges int
	// ActualEdges is |E|.
	ActualEdges int
}

// Quality computes the §3 quality metrics of the store's current edge set
// against an ideal edge set, using set-difference semantics. An edge counts
// regardless of type: accepted predictions have been promoted to true
// attachments, and pending predictions are still edges of E (dotted lines).
func (s *Store) Quality(ideal IdealEdges) QualityMetrics {
	m := QualityMetrics{IdealEdges: len(ideal), ActualEdges: len(s.edges)}
	for key := range ideal {
		if _, ok := s.edges[key]; !ok {
			m.Missing++
		}
	}
	for key := range s.edges {
		if _, ok := ideal[key]; !ok {
			m.Spurious++
		}
	}
	if m.IdealEdges > 0 {
		m.FalseNegativeRatio = float64(m.Missing) / float64(m.IdealEdges)
	}
	if m.ActualEdges > 0 {
		m.FalsePositiveRatio = float64(m.Spurious) / float64(m.ActualEdges)
	}
	return m
}

// QualityTrueOnly computes the same metrics considering only true
// attachments as E — the state of the database before Nebula's predictions
// are added, which per §3 is guaranteed to have F_P = 0.
func (s *Store) QualityTrueOnly(ideal IdealEdges) QualityMetrics {
	trueEdges := s.TrueEdgeSet()
	m := QualityMetrics{IdealEdges: len(ideal), ActualEdges: len(trueEdges)}
	for key := range ideal {
		if _, ok := trueEdges[key]; !ok {
			m.Missing++
		}
	}
	for key := range trueEdges {
		if _, ok := ideal[key]; !ok {
			m.Spurious++
		}
	}
	if m.IdealEdges > 0 {
		m.FalseNegativeRatio = float64(m.Missing) / float64(m.IdealEdges)
	}
	if m.ActualEdges > 0 {
		m.FalsePositiveRatio = float64(m.Spurious) / float64(m.ActualEdges)
	}
	return m
}
