// Package annotation implements the annotation management substrate Nebula
// is built on (modeled after Eltabakh et al., "Supporting annotations on
// relations", EDBT 2009 — reference [18] of the paper) together with the
// bipartite annotated-database model of the paper's §3.
//
// The substrate provides: annotation storage with stable identifiers,
// attachments at row or cell granularity, bidirectional indexes
// (annotation→tuples and tuple→annotations), promotion of predicted
// attachments to true attachments, and query-time propagation of annotations
// along relational query results.
package annotation

import (
	"fmt"

	"nebula/internal/relational"
)

// ID identifies an annotation.
type ID string

// Annotation is a free-text curation artifact: a comment, a linked article,
// a flag. Its body is arbitrary text; Nebula's pipeline mines it for
// embedded references.
type Annotation struct {
	// ID is the unique annotation identifier.
	ID ID
	// Author records who created the annotation (end user, curator, tool).
	Author string
	// Body is the annotation's free text.
	Body string
	// Kind is an application-defined label ("comment", "article", "flag").
	Kind string
}

// AttachmentType distinguishes the two edge types of Definition 3.1.
type AttachmentType int

const (
	// TrueAttachment is an edge established by an external source (user,
	// admin, curator) or accepted by verification. Confidence is always 1.
	TrueAttachment AttachmentType = iota
	// PredictedAttachment is an edge Nebula proactively discovered; its
	// confidence is the engine's estimate in [0,1).
	PredictedAttachment
)

func (t AttachmentType) String() string {
	if t == TrueAttachment {
		return "true"
	}
	return "predicted"
}

// Attachment is one edge of the bipartite annotated-database graph: it links
// an annotation to a data tuple, optionally narrowed to a single column
// (cell-level annotation, as supported by [18]).
type Attachment struct {
	// Annotation is the annotation-side endpoint.
	Annotation ID
	// Tuple is the data-side endpoint.
	Tuple relational.TupleID
	// Column, when non-empty, narrows the attachment to one cell.
	Column string
	// Type is TrueAttachment or PredictedAttachment.
	Type AttachmentType
	// Confidence is the edge weight e.w ∈ [0,1]; 1 for true attachments.
	Confidence float64
}

// EdgeKey identifies an (annotation, tuple) pair regardless of column or
// type; the §3 graph model and all of the assessment metrics operate at this
// granularity.
type EdgeKey struct {
	Annotation ID
	Tuple      relational.TupleID
}

func (a Attachment) edgeKey() EdgeKey {
	return EdgeKey{Annotation: a.Annotation, Tuple: a.Tuple}
}

func (a Attachment) String() string {
	col := ""
	if a.Column != "" {
		col = "." + a.Column
	}
	return fmt.Sprintf("%s -> %s%s (%s, %.3f)", a.Annotation, a.Tuple, col, a.Type, a.Confidence)
}
