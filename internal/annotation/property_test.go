package annotation

import (
	"fmt"
	"math/rand"
	"testing"

	"nebula/internal/relational"
)

// TestStoreRandomOperationInvariants drives the store with random
// attach/detach/promote sequences and checks the structural invariants
// after every step:
//
//  1. EdgeCount equals the sum of per-annotation attachment counts and the
//     sum of per-tuple attachment counts (the two indexes agree).
//  2. Focal(a) is exactly the true attachments of a.
//  3. True attachments always have confidence 1; predictions are in [0,1).
//  4. Edge() is consistent with both index views.
func TestStoreRandomOperationInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	s := NewStore()
	const nAnn, nTup = 8, 15
	for i := 0; i < nAnn; i++ {
		if err := s.Add(&Annotation{ID: ID(fmt.Sprintf("a%d", i)), Body: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	tup := func(i int) relational.TupleID {
		return relational.TupleID{Table: "T", Key: fmt.Sprintf("s:%d", i)}
	}
	for step := 0; step < 2000; step++ {
		a := ID(fmt.Sprintf("a%d", rng.Intn(nAnn)))
		tu := tup(rng.Intn(nTup))
		switch rng.Intn(4) {
		case 0:
			_, err := s.Attach(Attachment{Annotation: a, Tuple: tu, Type: TrueAttachment})
			if err != nil {
				t.Fatal(err)
			}
		case 1:
			_, err := s.Attach(Attachment{Annotation: a, Tuple: tu,
				Type: PredictedAttachment, Confidence: rng.Float64() * 0.99})
			if err != nil {
				t.Fatal(err)
			}
		case 2:
			s.Detach(a, tu)
		case 3:
			_ = s.Promote(a, tu) // may fail for missing edges; that's fine
		}
		checkStoreInvariants(t, s, nAnn, nTup, step)
	}
}

func checkStoreInvariants(t *testing.T, s *Store, nAnn, nTup, step int) {
	t.Helper()
	tup := func(i int) relational.TupleID {
		return relational.TupleID{Table: "T", Key: fmt.Sprintf("s:%d", i)}
	}
	byAnn, byTup := 0, 0
	for i := 0; i < nAnn; i++ {
		a := ID(fmt.Sprintf("a%d", i))
		atts := s.Attachments(a, -1)
		byAnn += len(atts)
		trueCount := 0
		for _, att := range atts {
			switch att.Type {
			case TrueAttachment:
				trueCount++
				if att.Confidence != 1 {
					t.Fatalf("step %d: true attachment with confidence %f", step, att.Confidence)
				}
			default:
				if att.Confidence < 0 || att.Confidence >= 1 {
					t.Fatalf("step %d: prediction confidence %f", step, att.Confidence)
				}
			}
			// Edge() agrees with the index view.
			if edge, ok := s.Edge(att.Annotation, att.Tuple); !ok || edge != att {
				t.Fatalf("step %d: Edge() disagrees with byAnnotation index", step)
			}
		}
		if len(s.Focal(a)) != trueCount {
			t.Fatalf("step %d: focal size %d != true attachments %d", step, len(s.Focal(a)), trueCount)
		}
	}
	for i := 0; i < nTup; i++ {
		byTup += len(s.TupleAnnotations(tup(i), -1))
	}
	if byAnn != s.EdgeCount() || byTup != s.EdgeCount() {
		t.Fatalf("step %d: index views disagree: byAnn=%d byTup=%d edges=%d",
			step, byAnn, byTup, s.EdgeCount())
	}
}
