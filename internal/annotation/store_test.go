package annotation

import (
	"testing"

	"nebula/internal/relational"
)

func tid(table, key string) relational.TupleID {
	return relational.TupleID{Table: table, Key: "s:" + key}
}

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s := NewStore()
	for _, a := range []*Annotation{
		{ID: "a1", Author: "bob", Body: "article about grpC", Kind: "article"},
		{ID: "a2", Author: "alice", Body: "comment about yaaB", Kind: "comment"},
		{ID: "a3", Author: "carol", Body: "rounded flag", Kind: "flag"},
	} {
		if err := s.Add(a); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddErrors(t *testing.T) {
	s := newTestStore(t)
	if err := s.Add(&Annotation{ID: "a1"}); err == nil {
		t.Error("duplicate ID should fail")
	}
	if err := s.Add(&Annotation{}); err == nil {
		t.Error("empty ID should fail")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestAttachBasics(t *testing.T) {
	s := newTestStore(t)
	g13 := tid("Gene", "jw0013")
	att, err := s.Attach(Attachment{Annotation: "a1", Tuple: g13, Type: TrueAttachment})
	if err != nil {
		t.Fatal(err)
	}
	if att.Confidence != 1 {
		t.Error("true attachment should have confidence 1")
	}
	if _, err := s.Attach(Attachment{Annotation: "zzz", Tuple: g13, Type: TrueAttachment}); err == nil {
		t.Error("unknown annotation should fail")
	}
	if _, err := s.Attach(Attachment{Annotation: "a1", Tuple: g13, Type: PredictedAttachment, Confidence: 1.5}); err == nil {
		t.Error("out-of-range prediction confidence should fail")
	}
	if s.EdgeCount() != 1 {
		t.Errorf("EdgeCount = %d", s.EdgeCount())
	}
}

func TestAttachUpgradeSemantics(t *testing.T) {
	s := newTestStore(t)
	g := tid("Gene", "jw0019")
	// Prediction first...
	if _, err := s.Attach(Attachment{Annotation: "a2", Tuple: g, Type: PredictedAttachment, Confidence: 0.4}); err != nil {
		t.Fatal(err)
	}
	// ...lower-confidence prediction does not downgrade
	att, _ := s.Attach(Attachment{Annotation: "a2", Tuple: g, Type: PredictedAttachment, Confidence: 0.2})
	if att.Confidence != 0.4 {
		t.Errorf("confidence downgraded to %f", att.Confidence)
	}
	// ...higher-confidence prediction upgrades
	att, _ = s.Attach(Attachment{Annotation: "a2", Tuple: g, Type: PredictedAttachment, Confidence: 0.7})
	if att.Confidence != 0.7 {
		t.Errorf("confidence not upgraded: %f", att.Confidence)
	}
	// ...true attachment wins over everything
	att, _ = s.Attach(Attachment{Annotation: "a2", Tuple: g, Type: TrueAttachment})
	if att.Type != TrueAttachment || att.Confidence != 1 {
		t.Errorf("true attachment did not win: %+v", att)
	}
	// ...and cannot be demoted back to a prediction
	att, _ = s.Attach(Attachment{Annotation: "a2", Tuple: g, Type: PredictedAttachment, Confidence: 0.1})
	if att.Type != TrueAttachment {
		t.Error("true attachment demoted")
	}
	if s.EdgeCount() != 1 {
		t.Errorf("duplicate edges created: %d", s.EdgeCount())
	}
}

func TestDetach(t *testing.T) {
	s := newTestStore(t)
	g := tid("Gene", "jw0013")
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g, Type: TrueAttachment})
	if !s.Detach("a1", g) {
		t.Fatal("detach failed")
	}
	if s.Detach("a1", g) {
		t.Fatal("double detach succeeded")
	}
	if len(s.TupleAnnotations(g, -1)) != 0 || len(s.Attachments("a1", -1)) != 0 {
		t.Error("indexes not cleaned")
	}
}

func TestPromote(t *testing.T) {
	s := newTestStore(t)
	g := tid("Gene", "jw0014")
	_, _ = s.Attach(Attachment{Annotation: "a2", Tuple: g, Type: PredictedAttachment, Confidence: 0.6})
	if err := s.Promote("a2", g); err != nil {
		t.Fatal(err)
	}
	att, _ := s.Edge("a2", g)
	if att.Type != TrueAttachment || att.Confidence != 1 {
		t.Errorf("promotion failed: %+v", att)
	}
	if err := s.Promote("a2", tid("Gene", "nope")); err == nil {
		t.Error("promote of missing edge should fail")
	}
}

func TestFocal(t *testing.T) {
	s := newTestStore(t)
	g1, g2, g3 := tid("Gene", "jw0013"), tid("Gene", "jw0014"), tid("Gene", "jw0019")
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g1, Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g2, Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g3, Type: PredictedAttachment, Confidence: 0.5})
	focal := s.Focal("a1")
	if len(focal) != 2 {
		t.Fatalf("focal = %v", focal)
	}
	for _, f := range focal {
		if f == g3 {
			t.Error("predicted attachment leaked into focal")
		}
	}
}

func TestAttachmentsFilter(t *testing.T) {
	s := newTestStore(t)
	g := tid("Gene", "jw0013")
	p := tid("Protein", "p00001")
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g, Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: p, Type: PredictedAttachment, Confidence: 0.3})
	if n := len(s.Attachments("a1", -1)); n != 2 {
		t.Errorf("all = %d", n)
	}
	if n := len(s.Attachments("a1", TrueAttachment)); n != 1 {
		t.Errorf("true = %d", n)
	}
	if n := len(s.Attachments("a1", PredictedAttachment)); n != 1 {
		t.Errorf("predicted = %d", n)
	}
}

func TestAnnotatedTuplesSorted(t *testing.T) {
	s := newTestStore(t)
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: tid("Protein", "p2"), Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "a2", Tuple: tid("Gene", "g9"), Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "a3", Tuple: tid("Gene", "g1"), Type: TrueAttachment})
	tuples := s.AnnotatedTuples()
	if len(tuples) != 3 {
		t.Fatalf("tuples = %v", tuples)
	}
	if tuples[0].Table != "Gene" || tuples[0].Key != "s:g1" || tuples[2].Table != "Protein" {
		t.Errorf("not sorted: %v", tuples)
	}
}

func TestQualityMetrics(t *testing.T) {
	s := newTestStore(t)
	g1, g2, g3 := tid("Gene", "g1"), tid("Gene", "g2"), tid("Gene", "g3")
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g1, Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g2, Type: PredictedAttachment, Confidence: 0.8})

	ideal := IdealEdges{
		{Annotation: "a1", Tuple: g1}: {},
		{Annotation: "a1", Tuple: g3}: {},
	}
	m := s.Quality(ideal)
	// E = {g1, g2}, E_ideal = {g1, g3}: one missing (g3), one spurious (g2).
	if m.Missing != 1 || m.Spurious != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.FalseNegativeRatio != 0.5 || m.FalsePositiveRatio != 0.5 {
		t.Errorf("ratios = %+v", m)
	}

	// True-only view: no predictions => F_P must be 0 (per §3).
	m2 := s.QualityTrueOnly(ideal)
	if m2.FalsePositiveRatio != 0 {
		t.Errorf("true-only F_P = %f, want 0", m2.FalsePositiveRatio)
	}
	if m2.FalseNegativeRatio != 0.5 {
		t.Errorf("true-only F_N = %f, want 0.5", m2.FalseNegativeRatio)
	}
}

func TestQualityEmptySets(t *testing.T) {
	s := NewStore()
	m := s.Quality(IdealEdges{})
	if m.FalseNegativeRatio != 0 || m.FalsePositiveRatio != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
}

func TestAttachmentString(t *testing.T) {
	a := Attachment{Annotation: "a1", Tuple: tid("Gene", "g1"), Type: TrueAttachment, Confidence: 1}
	if a.String() == "" {
		t.Error("empty String()")
	}
	b := Attachment{Annotation: "a1", Tuple: tid("Gene", "g1"), Column: "Name", Type: PredictedAttachment, Confidence: 0.5}
	if b.String() == a.String() {
		t.Error("cell-level attachment should render differently")
	}
}

func TestDetachTuple(t *testing.T) {
	s := newTestStore(t)
	g := tid("Gene", "g1")
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: g, Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "a2", Tuple: g, Type: PredictedAttachment, Confidence: 0.5})
	_, _ = s.Attach(Attachment{Annotation: "a1", Tuple: tid("Gene", "g2"), Type: TrueAttachment})
	if n := s.DetachTuple(g); n != 2 {
		t.Fatalf("detached %d, want 2", n)
	}
	if len(s.TupleAnnotations(g, -1)) != 0 {
		t.Error("edges remain")
	}
	if _, ok := s.Edge("a1", tid("Gene", "g2")); !ok {
		t.Error("unrelated edge lost")
	}
	if s.DetachTuple(g) != 0 {
		t.Error("second detach should be a no-op")
	}
}
