package annotation

import (
	"testing"

	"nebula/internal/relational"
)

func propagationFixture(t *testing.T) (*relational.Database, *Store) {
	t.Helper()
	db := relational.NewDatabase()
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString},
			{Name: "Name", Type: relational.TypeString, Indexed: true},
			{Name: "Family", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	}
	gt, err := db.CreateTable(gene)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]relational.Value{
		{relational.String("JW0013"), relational.String("grpC"), relational.String("F1")},
		{relational.String("JW0019"), relational.String("yaaB"), relational.String("F3")},
		{relational.String("JW0012"), relational.String("yaaI"), relational.String("F1")},
	}
	for _, r := range rows {
		if _, err := gt.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	s := NewStore()
	_ = s.Add(&Annotation{ID: "rowAnn", Body: "row-level note"})
	_ = s.Add(&Annotation{ID: "cellAnn", Body: "cell-level note on Name"})
	_ = s.Add(&Annotation{ID: "predAnn", Body: "prediction"})
	r13, _ := gt.GetByPK(relational.String("JW0013"))
	_, _ = s.Attach(Attachment{Annotation: "rowAnn", Tuple: r13.ID, Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "cellAnn", Tuple: r13.ID, Column: "Name", Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "predAnn", Tuple: r13.ID, Type: PredictedAttachment, Confidence: 0.42})
	return db, s
}

func TestPropagateSelectStar(t *testing.T) {
	db, s := propagationFixture(t)
	out, err := s.PropagateQuery(db, relational.Query{
		Table:      "Gene",
		Predicates: []relational.Predicate{{Column: "GID", Op: relational.OpEq, Operand: relational.String("JW0013")}},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("rows = %d", len(out))
	}
	// SELECT * propagates row, cell, and predicted annotations.
	if len(out[0].Annotations) != 3 {
		t.Fatalf("annotations = %d, want 3", len(out[0].Annotations))
	}
	// Confidence accompanies each propagated annotation.
	for i, a := range out[0].Annotations {
		if a.ID == "predAnn" && out[0].Confidences[i] != 0.42 {
			t.Errorf("prediction confidence = %f", out[0].Confidences[i])
		}
		if a.ID == "rowAnn" && out[0].Confidences[i] != 1 {
			t.Errorf("true confidence = %f", out[0].Confidences[i])
		}
	}
}

func TestPropagateProjectionFiltersCellAnnotations(t *testing.T) {
	db, s := propagationFixture(t)
	// Project only Family: the cell annotation on Name must not propagate.
	out, err := s.PropagateQuery(db, relational.Query{
		Table:      "Gene",
		Predicates: []relational.Predicate{{Column: "GID", Op: relational.OpEq, Operand: relational.String("JW0013")}},
	}, []string{"Family"})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out[0].Annotations {
		if a.ID == "cellAnn" {
			t.Error("cell annotation propagated despite projection")
		}
	}
	if len(out[0].Annotations) != 2 {
		t.Errorf("annotations = %d, want 2 (row + predicted)", len(out[0].Annotations))
	}
	// Projecting Name keeps it.
	out, _ = s.PropagateQuery(db, relational.Query{
		Table:      "Gene",
		Predicates: []relational.Predicate{{Column: "GID", Op: relational.OpEq, Operand: relational.String("JW0013")}},
	}, []string{"name"}) // case-insensitive
	found := false
	for _, a := range out[0].Annotations {
		if a.ID == "cellAnn" {
			found = true
		}
	}
	if !found {
		t.Error("cell annotation missing when its column is projected")
	}
}

func TestPropagateUnannotatedRows(t *testing.T) {
	db, s := propagationFixture(t)
	out, err := s.PropagateQuery(db, relational.Query{Table: "Gene"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("rows = %d", len(out))
	}
	annotated := 0
	for _, pr := range out {
		if len(pr.Annotations) > 0 {
			annotated++
		}
	}
	if annotated != 1 {
		t.Errorf("annotated rows = %d, want 1", annotated)
	}
}

func TestPropagateQueryError(t *testing.T) {
	db, s := propagationFixture(t)
	if _, err := s.PropagateQuery(db, relational.Query{Table: "Missing"}, nil); err == nil {
		t.Error("expected error for unknown table")
	}
}

func TestPropagateJoin(t *testing.T) {
	db := relational.NewDatabase()
	gt, err := db.CreateTable(&relational.Schema{
		Name:       "Gene",
		Columns:    []relational.Column{{Name: "GID", Type: relational.TypeString}},
		PrimaryKey: "GID",
	})
	if err != nil {
		t.Fatal(err)
	}
	pt, err := db.CreateTable(&relational.Schema{
		Name: "Protein",
		Columns: []relational.Column{
			{Name: "PID", Type: relational.TypeString},
			{Name: "PName", Type: relational.TypeString},
			{Name: "GeneID", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey:  "PID",
		ForeignKeys: []relational.ForeignKey{{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gt.Insert([]relational.Value{relational.String("JW0001")}); err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Insert([]relational.Value{
		relational.String("P1"), relational.String("Actin"), relational.String("JW0001"),
	}); err != nil {
		t.Fatal(err)
	}
	s := NewStore()
	_ = s.Add(&Annotation{ID: "geneAnn", Body: "on the gene"})
	_ = s.Add(&Annotation{ID: "protAnn", Body: "on the protein"})
	_ = s.Add(&Annotation{ID: "cellAnn", Body: "on the protein name cell"})
	_ = s.Add(&Annotation{ID: "both", Body: "attached to both sides"})
	g, _ := gt.GetByPK(relational.String("JW0001"))
	p, _ := pt.GetByPK(relational.String("P1"))
	_, _ = s.Attach(Attachment{Annotation: "geneAnn", Tuple: g.ID, Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "protAnn", Tuple: p.ID, Type: PredictedAttachment, Confidence: 0.6})
	_, _ = s.Attach(Attachment{Annotation: "cellAnn", Tuple: p.ID, Column: "PName", Type: TrueAttachment})
	_, _ = s.Attach(Attachment{Annotation: "both", Tuple: g.ID, Type: PredictedAttachment, Confidence: 0.3})
	_, _ = s.Attach(Attachment{Annotation: "both", Tuple: p.ID, Type: TrueAttachment})

	out, err := s.PropagateJoin(db,
		relational.Query{Table: "Protein"}, relational.Query{Table: "Gene"}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("joined rows = %d", len(out))
	}
	got := map[ID]float64{}
	for i, a := range out[0].Annotations {
		got[a.ID] = out[0].Confidences[i]
	}
	// All four annotations propagate; "both" keeps the higher (true)
	// confidence.
	if len(got) != 4 {
		t.Fatalf("annotations = %v", got)
	}
	if got["both"] != 1 {
		t.Errorf("dedup kept confidence %f, want 1", got["both"])
	}
	if got["protAnn"] != 0.6 || got["geneAnn"] != 1 {
		t.Errorf("confidences = %v", got)
	}

	// Projecting away PName on the protein side drops the cell annotation.
	out, err = s.PropagateJoin(db,
		relational.Query{Table: "Protein"}, relational.Query{Table: "Gene"},
		[]string{"PID"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range out[0].Annotations {
		if a.ID == "cellAnn" {
			t.Error("cell annotation propagated despite projection")
		}
	}

	// Errors surface.
	if _, err := s.PropagateJoin(db, relational.Query{Table: "Nope"},
		relational.Query{Table: "Gene"}, nil, nil); err == nil {
		t.Error("unknown table should fail")
	}
}
