package annotation

import (
	"fmt"
	"sort"
	"sync"

	"nebula/internal/relational"
)

// Store holds annotations and their attachment edges with bidirectional
// indexes. It is the "existing annotation management engine" the Nebula
// prototype is realized on top of.
//
// Synchronization contract: the engine's sharded lock group is the Store's
// primary guard. The only Store mutations reachable while holding a single
// shard lock are Add and Attach (the AddAnnotation/async-ingest path), and
// the only read racing them is Get (async enqueue validation) — those three
// serialize on mu below. Every other method is called exclusively under
// contexts where the caller holds every shard (whole-group write or read
// lock), so they rely on that exclusion and take no internal lock.
type Store struct {
	// mu guards the annotations map, order slice, and edge indexes against
	// the single-shard-locked paths (Add/Attach writes vs Get reads).
	mu sync.RWMutex

	annotations map[ID]*Annotation
	order       []ID // insertion order for deterministic iteration

	// byAnnotation indexes edges from the annotation side.
	byAnnotation map[ID][]*Attachment
	// byTuple indexes edges from the data side.
	byTuple map[relational.TupleID][]*Attachment
	// edges deduplicates (annotation, tuple) pairs.
	edges map[EdgeKey]*Attachment
}

// NewStore returns an empty annotation store.
func NewStore() *Store {
	return &Store{
		annotations:  make(map[ID]*Annotation),
		byAnnotation: make(map[ID][]*Attachment),
		byTuple:      make(map[relational.TupleID][]*Attachment),
		edges:        make(map[EdgeKey]*Attachment),
	}
}

// Add registers an annotation. The ID must be unique.
func (s *Store) Add(a *Annotation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if a.ID == "" {
		return fmt.Errorf("annotation: empty id")
	}
	if _, dup := s.annotations[a.ID]; dup {
		return fmt.Errorf("annotation %q already exists", a.ID)
	}
	s.annotations[a.ID] = a
	s.order = append(s.order, a.ID)
	return nil
}

// Get returns the annotation by ID.
func (s *Store) Get(id ID) (*Annotation, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	a, ok := s.annotations[id]
	return a, ok
}

// Len returns the number of annotations.
func (s *Store) Len() int { return len(s.annotations) }

// EdgeCount returns the number of (annotation, tuple) edges.
func (s *Store) EdgeCount() int { return len(s.edges) }

// IDs returns annotation IDs in insertion order.
func (s *Store) IDs() []ID {
	out := make([]ID, len(s.order))
	copy(out, s.order)
	return out
}

// Attach adds an attachment edge. If an edge between the same annotation and
// tuple already exists, the stronger claim wins: a true attachment replaces
// a predicted one, and a higher-confidence prediction replaces a lower one.
// The annotation must already be registered.
func (s *Store) Attach(att Attachment) (*Attachment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.annotations[att.Annotation]; !ok {
		return nil, fmt.Errorf("attach: unknown annotation %q", att.Annotation)
	}
	if att.Type == TrueAttachment {
		att.Confidence = 1
	} else if att.Confidence < 0 || att.Confidence >= 1 {
		return nil, fmt.Errorf("attach: predicted confidence %f outside [0,1)", att.Confidence)
	}
	key := att.edgeKey()
	if existing, ok := s.edges[key]; ok {
		if existing.Type == TrueAttachment {
			return existing, nil
		}
		if att.Type == TrueAttachment || att.Confidence > existing.Confidence {
			existing.Type = att.Type
			existing.Confidence = att.Confidence
			existing.Column = att.Column
		}
		return existing, nil
	}
	stored := &Attachment{}
	*stored = att
	s.edges[key] = stored
	s.byAnnotation[att.Annotation] = append(s.byAnnotation[att.Annotation], stored)
	s.byTuple[att.Tuple] = append(s.byTuple[att.Tuple], stored)
	return stored, nil
}

// Detach removes the edge between an annotation and a tuple. It reports
// whether an edge was removed.
func (s *Store) Detach(id ID, tuple relational.TupleID) bool {
	key := EdgeKey{Annotation: id, Tuple: tuple}
	att, ok := s.edges[key]
	if !ok {
		return false
	}
	delete(s.edges, key)
	s.byAnnotation[id] = removeAttachment(s.byAnnotation[id], att)
	if len(s.byAnnotation[id]) == 0 {
		delete(s.byAnnotation, id)
	}
	s.byTuple[tuple] = removeAttachment(s.byTuple[tuple], att)
	if len(s.byTuple[tuple]) == 0 {
		delete(s.byTuple, tuple)
	}
	return true
}

func removeAttachment(list []*Attachment, target *Attachment) []*Attachment {
	for i, a := range list {
		if a == target {
			return append(list[:i:i], list[i+1:]...)
		}
	}
	return list
}

// DetachTuple removes every attachment touching the tuple — the
// referential-integrity hook for tuple deletion. It returns the number of
// edges removed.
func (s *Store) DetachTuple(tuple relational.TupleID) int {
	atts := s.byTuple[tuple]
	ids := make([]ID, len(atts))
	for i, att := range atts {
		ids[i] = att.Annotation
	}
	for _, id := range ids {
		s.Detach(id, tuple)
	}
	return len(ids)
}

// Promote converts a predicted edge into a true attachment (confidence 1).
// This is what happens when a verification task is accepted (§7).
func (s *Store) Promote(id ID, tuple relational.TupleID) error {
	att, ok := s.edges[EdgeKey{Annotation: id, Tuple: tuple}]
	if !ok {
		return fmt.Errorf("promote: no edge %s -> %s", id, tuple)
	}
	att.Type = TrueAttachment
	att.Confidence = 1
	return nil
}

// Edge returns the attachment between an annotation and a tuple, if any.
func (s *Store) Edge(id ID, tuple relational.TupleID) (*Attachment, bool) {
	att, ok := s.edges[EdgeKey{Annotation: id, Tuple: tuple}]
	return att, ok
}

// Attachments returns the edges of one annotation, optionally filtered by
// type. Pass -1 to return all.
func (s *Store) Attachments(id ID, filter AttachmentType) []*Attachment {
	var out []*Attachment
	for _, att := range s.byAnnotation[id] {
		if filter < 0 || att.Type == filter {
			out = append(out, att)
		}
	}
	return out
}

// TupleAnnotations returns the edges touching one tuple, optionally
// filtered by type. Pass -1 to return all.
func (s *Store) TupleAnnotations(tuple relational.TupleID, filter AttachmentType) []*Attachment {
	var out []*Attachment
	for _, att := range s.byTuple[tuple] {
		if filter < 0 || att.Type == filter {
			out = append(out, att)
		}
	}
	return out
}

// Focal returns Foc(a) — the tuples the annotation is attached to by true
// attachments (Definition 3.5).
func (s *Store) Focal(id ID) []relational.TupleID {
	var out []relational.TupleID
	for _, att := range s.byAnnotation[id] {
		if att.Type == TrueAttachment {
			out = append(out, att.Tuple)
		}
	}
	return out
}

// AnnotatedTuples returns every tuple that has at least one attachment,
// sorted for determinism.
func (s *Store) AnnotatedTuples() []relational.TupleID {
	out := make([]relational.TupleID, 0, len(s.byTuple))
	for t := range s.byTuple {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// TrueEdgeSet returns the set of (annotation, tuple) pairs connected by true
// attachments — the E of Definition 3.1 restricted to solid edges.
func (s *Store) TrueEdgeSet() map[EdgeKey]struct{} {
	out := make(map[EdgeKey]struct{})
	for key, att := range s.edges {
		if att.Type == TrueAttachment {
			out[key] = struct{}{}
		}
	}
	return out
}
