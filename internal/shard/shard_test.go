package shard

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestHashMatchesStdlibFNV pins the hand-rolled FNV-1a against the stdlib
// implementation: the function is a durability contract (WAL replay and
// snapshot restore recompute shard homes), so it must never drift.
func TestHashMatchesStdlibFNV(t *testing.T) {
	for _, s := range []string{"", "a", "ann-1", "publication/9", "日本語", "a1\x00b2"} {
		h := fnv.New64a()
		h.Write([]byte(s))
		if got, want := Hash(s), h.Sum64(); got != want {
			t.Errorf("Hash(%q) = %d, stdlib fnv-1a = %d", s, got, want)
		}
	}
}

// TestIndexStable pins a few concrete assignments; a change here means every
// existing sharded deployment would re-home its annotations.
func TestIndexStable(t *testing.T) {
	cases := []struct {
		id   string
		n    int
		want int
	}{
		{"ann-1", 1, 0},
		{"ann-1", 0, 0},
		{"ann-1", -3, 0},
		{"ann-1", 4, int(Hash("ann-1") % 4)},
		{"pub-17", 8, int(Hash("pub-17") % 8)},
	}
	for _, c := range cases {
		if got := Index(c.id, c.n); got != c.want {
			t.Errorf("Index(%q, %d) = %d, want %d", c.id, c.n, got, c.want)
		}
	}
}

// TestIndexRange checks every assignment lands in [0, n).
func TestIndexRange(t *testing.T) {
	for n := 1; n <= 16; n++ {
		for i := 0; i < 200; i++ {
			id := fmt.Sprintf("annotation-%d", i)
			got := Index(id, n)
			if got < 0 || got >= n {
				t.Fatalf("Index(%q, %d) = %d out of range", id, n, got)
			}
		}
	}
}

// TestIndexSpread sanity-checks balance: over a few hundred synthetic IDs at
// 8 shards, no shard should be empty (FNV-1a spreads short keys well).
func TestIndexSpread(t *testing.T) {
	counts := make([]int, 8)
	for i := 0; i < 400; i++ {
		counts[Index(fmt.Sprintf("ann-%d", i), 8)]++
	}
	for s, c := range counts {
		if c == 0 {
			t.Errorf("shard %d received no IDs out of 400", s)
		}
	}
}
