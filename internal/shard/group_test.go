package shard

import (
	"sync"
	"testing"
)

// TestGroupSingleShardDegenerates checks the N=1 layout: every ID homes to
// shard 0 and the epoch sum equals shard 0's epoch.
func TestGroupSingleShardDegenerates(t *testing.T) {
	g := NewGroup(0)
	if g.Shards() != 1 {
		t.Fatalf("NewGroup(0) has %d shards, want 1", g.Shards())
	}
	if g.Home("anything") != 0 {
		t.Fatalf("Home on single shard = %d, want 0", g.Home("anything"))
	}
	g.Bump(0)
	g.BumpAll()
	if g.EpochSum() != 2 || g.Epoch(0) != 2 {
		t.Fatalf("epoch = %d / sum %d, want 2 / 2", g.Epoch(0), g.EpochSum())
	}
}

// TestGroupEpochSumShardCountInvariant: the same sequence of per-ID bumps
// yields the same epoch sum at every shard count — the property that keeps
// epoch-derived cache keys identical whatever the partitioning.
func TestGroupEpochSumShardCountInvariant(t *testing.T) {
	ids := []string{"ann-1", "ann-2", "pub-17", "gene-9", "ann-1"}
	var sums []uint64
	for _, n := range []int{1, 2, 4, 8} {
		g := NewGroup(n)
		for _, id := range ids {
			g.Bump(g.Home(id))
		}
		sums = append(sums, g.EpochSum())
	}
	for i := 1; i < len(sums); i++ {
		if sums[i] != sums[0] {
			t.Fatalf("epoch sums diverge across shard counts: %v", sums)
		}
	}
	if sums[0] != uint64(len(ids)) {
		t.Fatalf("epoch sum = %d, want %d", sums[0], len(ids))
	}
}

// TestGroupConcurrentShardMutators runs concurrent per-shard bumps under
// per-shard locks with a whole-group reader interleaved; run with -race
// this pins the lock discipline (shard writers exclude the global reader).
func TestGroupConcurrentShardMutators(t *testing.T) {
	g := NewGroup(4)
	counts := make([]int, 4)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := (w + i) % 4
				g.LockShard(s)
				counts[s]++
				g.Bump(s)
				g.UnlockShard(s)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			g.RLock()
			total := 0
			for s := range counts {
				total += counts[s]
			}
			if total > 8*200 {
				t.Errorf("read %d mutations, more than the %d performed", total, 8*200)
			}
			g.RUnlock()
		}
	}()
	wg.Wait()
	<-done
	if got := g.EpochSum(); got != 8*200 {
		t.Fatalf("epoch sum = %d, want %d", got, 8*200)
	}
}

// TestGroupLockAllExcludesShardWriter: Lock() must not return while any
// shard lock is held.
func TestGroupLockAllExcludesShardWriter(t *testing.T) {
	g := NewGroup(4)
	g.LockShard(2)
	acquired := make(chan struct{})
	go func() {
		g.Lock()
		close(acquired)
		g.Unlock()
	}()
	select {
	case <-acquired:
		t.Fatal("Lock() returned while shard 2 was held")
	default:
	}
	g.UnlockShard(2)
	<-acquired
}
