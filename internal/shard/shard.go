// Package shard assigns annotation identifiers to hash partitions.
//
// The engine partitions its annotation-side state (store, ACG subgraph,
// manual-focal map, mutation epoch) across N shards so that independent
// mutations contend on independent locks and invalidate independent cache
// domains. The assignment must be a pure function of the identifier and the
// shard count — WAL replay, snapshot restore, and every routing decision
// recompute it rather than persisting a directory — so shard membership can
// never drift from the data.
//
// FNV-1a is used for its determinism across platforms and Go versions
// (unlike maphash, which is seeded per process): the same ID maps to the
// same shard in every process that ever replays the same history.
package shard

// offset64 and prime64 are the FNV-1a 64-bit parameters.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Hash returns the FNV-1a 64-bit hash of id.
func Hash(id string) uint64 {
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return h
}

// Index returns the home shard of id among n shards. n < 2 always maps to
// shard 0 (the single-shard legacy layout).
func Index(id string, n int) int {
	if n < 2 {
		return 0
	}
	return int(Hash(id) % uint64(n))
}
