package shard

import (
	"sync"
	"sync/atomic"
)

// Group is the engine's sharded synchronization domain: N readers–writer
// locks plus N mutation-epoch counters, one pair per shard. Annotation-side
// state is partitioned by Index(annotationID, N); an operation touching one
// annotation takes only its home shard's lock, while whole-engine operations
// (discovery reads, snapshot capture, WAL checkpoint, tuple deletion) take
// every lock in ascending index order — the ordered multi-lock acquisition
// that keeps the hierarchy deadlock-free.
//
// With N = 1 a Group degenerates to exactly the engine's historical single
// sync.RWMutex plus single mutation counter, which is what makes the
// sharded engine byte-identical to the legacy one at any shard count.
type Group struct {
	shards []groupShard
}

type groupShard struct {
	mu sync.RWMutex
	// epoch counts the shard's annotation-side mutations. Atomic so the
	// observability surfaces can read it without stopping the world.
	epoch atomic.Uint64
}

// NewGroup returns a Group with n shards; n < 1 selects the single-shard
// legacy layout.
func NewGroup(n int) *Group {
	if n < 1 {
		n = 1
	}
	return &Group{shards: make([]groupShard, n)}
}

// Shards returns the shard count.
func (g *Group) Shards() int { return len(g.shards) }

// Home returns the home shard of an identifier.
func (g *Group) Home(id string) int { return Index(id, len(g.shards)) }

// Lock acquires every shard's lock exclusively, in ascending index order.
// It is the whole-engine write lock: it excludes every reader and every
// single-shard mutator.
func (g *Group) Lock() {
	for i := range g.shards {
		g.shards[i].mu.Lock()
	}
}

// Unlock releases every shard's exclusive lock.
func (g *Group) Unlock() {
	for i := len(g.shards) - 1; i >= 0; i-- {
		g.shards[i].mu.Unlock()
	}
}

// RLock acquires every shard's lock shared, in ascending index order — the
// whole-engine read lock. Readers run concurrently with each other but
// exclude every mutator (each mutator holds at least one shard's lock
// exclusively).
func (g *Group) RLock() {
	for i := range g.shards {
		g.shards[i].mu.RLock()
	}
}

// RUnlock releases every shard's shared lock.
func (g *Group) RUnlock() {
	for i := len(g.shards) - 1; i >= 0; i-- {
		g.shards[i].mu.RUnlock()
	}
}

// LockShard acquires one shard's lock exclusively — the single-shard
// mutation path. Holders of different shards run concurrently; ordered
// acquisition is trivially satisfied because only one shard lock is held.
func (g *Group) LockShard(i int) { g.shards[i].mu.Lock() }

// UnlockShard releases one shard's exclusive lock.
func (g *Group) UnlockShard(i int) { g.shards[i].mu.Unlock() }

// RLockShard acquires one shard's lock shared.
func (g *Group) RLockShard(i int) { g.shards[i].mu.RLock() }

// RUnlockShard releases one shard's shared lock.
func (g *Group) RUnlockShard(i int) { g.shards[i].mu.RUnlock() }

// Bump advances one shard's mutation epoch.
func (g *Group) Bump(i int) { g.shards[i].epoch.Add(1) }

// BumpAll advances every shard's mutation epoch — the global-invalidation
// path for mutations whose effect is not confined to one shard (index
// rebuilds, tuple deletions).
func (g *Group) BumpAll() {
	for i := range g.shards {
		g.shards[i].epoch.Add(1)
	}
}

// Epoch returns one shard's mutation epoch.
func (g *Group) Epoch(i int) uint64 { return g.shards[i].epoch.Load() }

// EpochSum returns the sum of every shard's epoch — the whole-engine
// mutation epoch. For a sequential workload the sum is independent of the
// shard count (every mutation bumps exactly one counter), which keeps
// epoch-derived cache keys identical across shard counts.
func (g *Group) EpochSum() uint64 {
	var sum uint64
	for i := range g.shards {
		sum += g.shards[i].epoch.Load()
	}
	return sum
}
