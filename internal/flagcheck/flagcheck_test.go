package flagcheck

import (
	"strings"
	"testing"
	"time"
)

func TestNonNegative(t *testing.T) {
	if err := NonNegative("parallelism", 0); err != nil {
		t.Errorf("NonNegative(0) = %v, want nil", err)
	}
	if err := NonNegative("parallelism", 4); err != nil {
		t.Errorf("NonNegative(4) = %v, want nil", err)
	}
	err := NonNegative("parallelism", -1)
	if err == nil {
		t.Fatal("NonNegative(-1) = nil, want error")
	}
	if !strings.Contains(err.Error(), "--parallelism") {
		t.Errorf("error %q does not name the flag", err)
	}
}

func TestPositive(t *testing.T) {
	if err := Positive("rounds", 1); err != nil {
		t.Errorf("Positive(1) = %v, want nil", err)
	}
	for _, v := range []int{0, -3} {
		if err := Positive("rounds", v); err == nil {
			t.Errorf("Positive(%d) = nil, want error", v)
		}
	}
}

func TestNonNegativeDuration(t *testing.T) {
	if err := NonNegativeDuration("timeout", 0); err != nil {
		t.Errorf("NonNegativeDuration(0) = %v, want nil", err)
	}
	if err := NonNegativeDuration("timeout", time.Second); err != nil {
		t.Errorf("NonNegativeDuration(1s) = %v, want nil", err)
	}
	if err := NonNegativeDuration("timeout", -time.Second); err == nil {
		t.Error("NonNegativeDuration(-1s) = nil, want error")
	}
}

func TestPort(t *testing.T) {
	cases := []struct {
		port      int
		ephemeral bool
		ok        bool
	}{
		{8080, false, true},
		{1, false, true},
		{65535, false, true},
		{0, true, true},
		{0, false, false},
		{-1, true, false},
		{65536, false, false},
		{70000, true, false},
	}
	for _, c := range cases {
		err := Port("port", c.port, c.ephemeral)
		if (err == nil) != c.ok {
			t.Errorf("Port(%d, ephemeral=%v) = %v, want ok=%v", c.port, c.ephemeral, err, c.ok)
		}
	}
}

func TestAllCollectsEveryViolation(t *testing.T) {
	err := All(
		NonNegative("parallelism", -2),
		Port("port", 99999, false),
		NonNegativeDuration("timeout", -1),
	)
	if err == nil {
		t.Fatal("All with three violations = nil, want error")
	}
	for _, flag := range []string{"--parallelism", "--port", "--timeout"} {
		if !strings.Contains(err.Error(), flag) {
			t.Errorf("joined error %q is missing %s", err, flag)
		}
	}
	if err := All(nil, nil, nil); err != nil {
		t.Errorf("All(nil...) = %v, want nil", err)
	}
}
