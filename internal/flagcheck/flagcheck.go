// Package flagcheck validates the numeric command-line inputs the nebula
// binaries share. The flag package parses syntax; this package enforces the
// semantic ranges — budgets and worker counts cannot be negative, ports
// must be addressable — so nebulactl and nebulad reject bad invocations
// identically, with one error message style, before any work starts.
package flagcheck

import (
	"errors"
	"fmt"
	"time"
)

// NonNegative rejects a negative count flag (budgets, worker counts,
// queue sizes — where zero means "unlimited" or "default").
func NonNegative(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("--%s must be >= 0, got %d", name, v)
	}
	return nil
}

// Positive rejects a zero or negative count flag (sizes where zero has no
// meaning, such as rounds or concurrency levels).
func Positive(name string, v int) error {
	if v <= 0 {
		return fmt.Errorf("--%s must be > 0, got %d", name, v)
	}
	return nil
}

// NonNegativeDuration rejects a negative duration flag (deadlines and
// timeouts — where zero means "none").
func NonNegativeDuration(name string, d time.Duration) error {
	if d < 0 {
		return fmt.Errorf("--%s must be >= 0, got %v", name, d)
	}
	return nil
}

// Port rejects a TCP port outside [1, 65535]. Zero is allowed only when
// ephemeral is set (the OS picks a free port).
func Port(name string, v int, ephemeral bool) error {
	if v == 0 && ephemeral {
		return nil
	}
	if v < 1 || v > 65535 {
		return fmt.Errorf("--%s must be in [1, 65535], got %d", name, v)
	}
	return nil
}

// All combines the checks, reporting every violation at once so a bad
// invocation is fixed in one edit, not one error message at a time.
func All(checks ...error) error {
	return errors.Join(checks...)
}
