package keyword

import (
	"context"
	"strings"

	"nebula/internal/relational"
	"nebula/internal/textutil"
)

// NaiveSearch implements the §4 baseline: the entire annotation body is
// passed as a single keyword query, without any of Nebula's pre-processing.
// Every non-stop-word token is a keyword that may match any column of any
// table, so the search must examine the whole database; any tuple matching
// at least one token qualifies, with confidence proportional to the
// fraction of tokens it matches. This reproduces the baseline's documented
// pathologies: enormous scan cost and an extremely noisy result set.
func (e *Engine) NaiveSearch(text string) ([]Result, ExecStats) {
	rs, stats, _ := e.NaiveSearchContext(context.Background(), text, Limits{})
	return rs, stats
}

// NaiveSearchContext is NaiveSearch under governance. The scan polls ctx
// every scanBatch tuples — the unbounded full-database pass is exactly the
// baseline pathology a deadline must be able to interrupt — and stops when
// the scan budget is spent, recording the truncation in stats.Degraded.
// Partial hits collected before cancellation are returned with ctx's error.
func (e *Engine) NaiveSearchContext(ctx context.Context, text string, lim Limits) ([]Result, ExecStats, error) {
	var stats ExecStats
	gov := governed(ctx, lim)
	tokens := make([]string, 0, 64)
	seen := make(map[string]struct{})
	for _, tok := range textutil.Tokenize(text) {
		if textutil.IsStopword(tok.Lower) {
			continue
		}
		if _, dup := seen[tok.Lower]; dup {
			continue
		}
		seen[tok.Lower] = struct{}{}
		tokens = append(tokens, tok.Lower)
	}
	if len(tokens) == 0 {
		return nil, stats, nil
	}
	stats.StructuredQueries = 1 // one (gigantic) keyword query

	type hit struct {
		row     *relational.Row
		matched int
	}
	var hits []hit
	var scanErr error
	maxMatched := 0
scan:
	for _, tableName := range e.db.TableNames() {
		t := e.db.MustTable(tableName)
		schema := t.Schema()
		for _, row := range t.Rows() {
			if gov && stats.TuplesScanned%scanBatch == 0 {
				if err := ctx.Err(); err != nil {
					scanErr = err
					break scan
				}
				if !lim.Unlimited() && stats.TuplesScanned >= lim.MaxScannedRows {
					stats.Degraded = append(stats.Degraded, degradedScanBudget(stats.TuplesScanned, lim.MaxScannedRows))
					break scan
				}
			}
			stats.TuplesScanned++
			matched := 0
			for _, tok := range tokens {
				if rowMatchesToken(schema, row, tok) {
					matched++
				}
			}
			if matched == 0 {
				continue
			}
			if matched > maxMatched {
				maxMatched = matched
			}
			hits = append(hits, hit{row: row, matched: matched})
		}
	}
	// Confidence model of the black-box search: every produced tuple
	// inherits at least half of the (single, giant) query's confidence for
	// matching one keyword; additional matched keywords raise it toward 1
	// relative to the best-matching tuple. This reproduces the baseline's
	// behaviour in the paper's assessment: almost nothing is confidently
	// rejectable, a few heavily-matching (and mostly wrong) tuples exceed
	// the acceptance bound, and the vast majority lands in the manual
	// verification band.
	out := make([]Result, 0, len(hits))
	for _, h := range hits {
		conf := 0.5
		if maxMatched > 1 {
			conf += 0.5 * float64(h.matched-1) / float64(maxMatched-1)
		}
		out = append(out, Result{Tuple: h.row, Confidence: conf, Query: "naive"})
	}
	stats.TuplesReturned = len(out)
	return out, stats, scanErr
}

// rowMatchesToken reports whether any cell of the row matches the token:
// exact (case-insensitive) equality for short values, token containment for
// text columns.
func rowMatchesToken(schema *relational.Schema, row *relational.Row, lowerTok string) bool {
	for i, col := range schema.Columns {
		v := row.Values[i].Str()
		if strings.EqualFold(v, lowerTok) {
			return true
		}
		if col.FullText && textContainsToken(v, lowerTok) {
			return true
		}
	}
	return false
}

func textContainsToken(text, lowerTok string) bool {
	lt := strings.ToLower(text)
	idx := 0
	for {
		i := strings.Index(lt[idx:], lowerTok)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(lowerTok)
		beforeOK := start == 0 || !isAlnum(lt[start-1])
		afterOK := end == len(lt) || !isAlnum(lt[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isAlnum(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= '0' && b <= '9' || b >= 'A' && b <= 'Z'
}
