package keyword

import (
	"strconv"
	"strings"

	"nebula/internal/cache"
	"nebula/internal/relational"
)

// QueryCache memoizes the keyword layer's two recomputation hot spots
// across ExecuteBatchContext calls (the in-batch fingerprint dedup dies
// at batch end; this survives it):
//
//   - structured-query results: fingerprint → raw row set, keyed by the
//     queried table's epoch. Only the pre-join rows are cached — join
//     projection and FK–PK related expansion are recomputed per fold, so
//     a single table epoch suffices for coherence.
//   - mapper weights: keyword → []mappingOption, keyed by the database
//     epoch (value matches consult column domains).
//
// The cache is owned by the discovery layer's engine and shared across
// per-run keyword engines, but only attached when the search runs over
// the full database — a focal-spreading miniDB would poison keys.
type QueryCache struct {
	results  *cache.LRU[[]*relational.Row]
	mappings *cache.LRU[[]mappingOption]
}

// NewQueryCache builds a QueryCache bounded to approximately maxBytes,
// split 3:1 between result rows and mapper options (options are tiny).
func NewQueryCache(maxBytes int64) *QueryCache {
	if maxBytes < 4 {
		maxBytes = 4
	}
	quarter := maxBytes / 4
	return &QueryCache{
		results:  cache.New[[]*relational.Row](maxBytes - quarter),
		mappings: cache.New[[]mappingOption](quarter),
	}
}

// ResultStats reports the structured-query result cache counters.
func (c *QueryCache) ResultStats() cache.Stats {
	if c == nil {
		return cache.Stats{}
	}
	return c.results.Stats()
}

// MappingStats reports the mapper memoization counters.
func (c *QueryCache) MappingStats() cache.Stats {
	if c == nil {
		return cache.Stats{}
	}
	return c.mappings.Stats()
}

// SetMaxBytes resizes the cache budget with the same 3:1 split.
func (c *QueryCache) SetMaxBytes(maxBytes int64) {
	if c == nil {
		return
	}
	if maxBytes < 4 {
		maxBytes = 4
	}
	quarter := maxBytes / 4
	c.results.SetMaxBytes(maxBytes - quarter)
	c.mappings.SetMaxBytes(quarter)
}

// getResults returns the cached row set for q if present at the queried
// table's current epoch.
func (c *QueryCache) getResults(db *relational.Database, q relational.Query) ([]*relational.Row, bool) {
	t, ok := db.Table(q.Table)
	if !ok {
		return nil, false
	}
	return c.results.Get(q.Fingerprint(), t.Epoch())
}

// putResults stores the row set produced for q at the queried table's
// current epoch. The slice is clipped so callers appending to a cached
// result reallocate instead of corrupting the entry.
func (c *QueryCache) putResults(db *relational.Database, q relational.Query, rows []*relational.Row) {
	t, ok := db.Table(q.Table)
	if !ok {
		return
	}
	fp := q.Fingerprint()
	cost := int64(len(fp)) + 96 + 8*int64(len(rows))
	c.results.Put(fp, t.Epoch(), rows[:len(rows):len(rows)], cost)
}

// mappingKey fingerprints everything keywordOptions depends on besides
// the metadata itself: the keyword and the engine's mapping knobs.
func mappingKey(k Keyword, e *Engine) string {
	var b strings.Builder
	b.Grow(len(k.Text) + len(k.TargetTable) + len(k.TargetColumn) + 48)
	b.WriteString(k.Text)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(int(k.Role)))
	b.WriteByte(0)
	b.WriteString(k.TargetTable)
	b.WriteByte(0)
	b.WriteString(k.TargetColumn)
	b.WriteByte(0)
	b.WriteString(strconv.FormatFloat(k.Weight, 'g', -1, 64))
	b.WriteByte(0)
	b.WriteString(strconv.FormatFloat(e.MinMappingWeight, 'g', -1, 64))
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(e.MaxMappingsPerKeyword))
	return b.String()
}

// getMappings returns the memoized interpretations of k at the current
// database epoch.
func (c *QueryCache) getMappings(e *Engine, k Keyword) ([]mappingOption, bool) {
	return c.mappings.Get(mappingKey(k, e), e.db.Epoch())
}

// putMappings memoizes the interpretations of k.
func (c *QueryCache) putMappings(e *Engine, k Keyword, opts []mappingOption) {
	key := mappingKey(k, e)
	cost := int64(len(key)) + 64 + 48*int64(len(opts))
	c.mappings.Put(key, e.db.Epoch(), opts[:len(opts):len(opts)], cost)
}
