package keyword

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"nebula/internal/meta"
	"nebula/internal/relational"
)

// This file is the keyword-side half of the cost-based planner: it exposes
// the shared-execution machinery of ExecuteBatchContext at fingerprint
// granularity so the discovery planner can execute queries in waves, stop
// early, and still hand back results byte-identical to one exhaustive
// shared batch.
//
// The subtlety the whole design turns on: in a shared batch, the order a
// query's configurations fold in is the first-appearance order of their
// fingerprints ACROSS THE WHOLE BATCH, not the query's own configuration
// order — a fingerprint shared with an earlier query folds earlier. A
// planner that executed query subsets through separate ExecuteBatchContext
// calls would therefore produce per-query result lists in a different
// relative order than the exhaustive run, and the discovery aggregation's
// first-seen tiebreak would drift. PlannedBatch enumerates the global plan
// once, executes fingerprints incrementally (each at most once, however
// many waves touch it), and merges every query against the one global
// fingerprint order.

// QueryEstimate is the planner's per-keyword-query estimate.
type QueryEstimate struct {
	// Cost is the estimated tuples scanned to execute every configuration.
	Cost float64
	// UpperBound bounds the weighted confidence this query can contribute
	// to any single tuple: max configuration confidence × query weight.
	// It is a hard bound, not an estimate — pruning decisions lean on it.
	UpperBound float64
	// Configs is the number of configurations the query maps to.
	Configs int
}

// planNeed mirrors the executor's per-fingerprint consumer record.
type planNeed struct {
	queryIdx  int
	conf      float64
	join      bool
	joinTable string
}

// PlannedBatch is one keyword-query batch with its global shared-execution
// plan enumerated up front. Not safe for concurrent use.
type PlannedBatch struct {
	e  *Engine
	qs []Query

	plans      [][]Configuration
	ordered    []string // fingerprint first-appearance order (the fold order)
	structured map[string]relational.Query
	wanted     map[string][]planNeed
	sharedRefs int

	rowSets  map[string][]*relational.Row // fingerprints executed by waves
	executed map[string]struct{}
	// harvested holds index-driven fingerprints evaluated during
	// completion: exact results obtained from the index buckets at the
	// same cost execution would have paid, kept separate from the
	// wave-executed set so plan stats stay honest.
	harvested map[string][]*relational.Row

	merged map[int][]Result

	// restricted memoizes frontier-restricted evaluations per fingerprint
	// (entries carry unit confidences — scaled per consuming need), valid
	// for restrictedFr only.
	restricted   map[string][]restrictedEntry
	restrictedFr *Frontier

	completionScanned int
}

// NewPlannedBatch enumerates the global shared-execution plan for the
// batch: per-query configurations, the deduplicated fingerprint order, and
// the consumer list per fingerprint — the same plan phase
// ExecuteBatchContext runs, with nothing executed yet.
func (e *Engine) NewPlannedBatch(qs []Query) *PlannedBatch {
	pb := &PlannedBatch{
		e:          e,
		qs:         qs,
		plans:      make([][]Configuration, len(qs)),
		structured: make(map[string]relational.Query),
		wanted:     make(map[string][]planNeed),
		rowSets:    make(map[string][]*relational.Row),
		executed:   make(map[string]struct{}),
		harvested:  make(map[string][]*relational.Row),
		merged:     make(map[int][]Result),
	}
	for qi, q := range qs {
		pb.plans[qi] = e.Configurations(q)
		for _, cfg := range pb.plans[qi] {
			fp := cfg.Structured.Fingerprint()
			if _, seen := pb.wanted[fp]; !seen {
				pb.ordered = append(pb.ordered, fp)
				pb.structured[fp] = cfg.Structured
			} else {
				pb.sharedRefs++
			}
			pb.wanted[fp] = append(pb.wanted[fp], planNeed{
				queryIdx: qi, conf: cfg.Confidence,
				join: cfg.Join, joinTable: cfg.Table,
			})
		}
	}
	return pb
}

// DistinctStructured is the number of distinct structured queries in the
// plan; SharedRefs counts the configuration references deduplicated away.
func (pb *PlannedBatch) DistinctStructured() int { return len(pb.ordered) }

// SharedRefs counts configuration references answered by a fingerprint
// another configuration already introduced (the §6 sharing win).
func (pb *PlannedBatch) SharedRefs() int { return pb.sharedRefs }

// CompletionScanned is the number of tuples touched while completing
// pruned queries (index-bucket harvests plus frontier point evaluations).
func (pb *PlannedBatch) CompletionScanned() int { return pb.completionScanned }

// Estimates derives per-query cost and upper-bound estimates from the
// metadata estimator. Deterministic: catalog statistics only.
func (pb *PlannedBatch) Estimates(est *meta.Estimator) []QueryEstimate {
	out := make([]QueryEstimate, len(pb.qs))
	for qi, q := range pb.qs {
		qe := QueryEstimate{Configs: len(pb.plans[qi])}
		for _, cfg := range pb.plans[qi] {
			if unsatisfiableEq(cfg.Structured) {
				// An unsatisfiable configuration neither executes nor
				// contributes confidence; pricing it would both overstate
				// cost and loosen the upper bound.
				continue
			}
			qe.Cost += est.EstimateSelect(cfg.Structured).Cost
			ub := cfg.Confidence * q.Weight
			if pb.e.IncludeRelated && pb.e.RelatedDiscount > 1 {
				// Defensive: a discount above 1 would let related
				// expansions exceed the direct confidence.
				ub *= pb.e.RelatedDiscount
			}
			if ub > qe.UpperBound {
				qe.UpperBound = ub
			}
		}
		out[qi] = qe
	}
	return out
}

// IndexDriven reports whether the fingerprint's structured query can be
// answered from an index bucket — the same classification the relational
// access path and harvestIndexed use: OpEq against an indexed column or
// the primary key, or a token containment against a full-text column.
// Index-driven fingerprints cost O(bucket) to execute; everything else
// requires a full table scan.
func (pb *PlannedBatch) IndexDriven(fp string) bool {
	sq, ok := pb.structured[fp]
	if !ok {
		return false
	}
	t, ok := pb.e.db.Table(sq.Table)
	if !ok {
		return false
	}
	schema := t.Schema()
	for _, p := range sq.Predicates {
		col, cok := schema.Column(p.Column)
		if !cok {
			continue
		}
		switch p.Op {
		case relational.OpEq:
			if col.Indexed || strings.EqualFold(col.Name, schema.PrimaryKey) {
				return true
			}
		case relational.OpContainsToken:
			if col.FullText {
				return true
			}
		}
	}
	return false
}

// IndexableFingerprints returns the not-yet-executed index-driven
// fingerprints in global order — the planner's cheap first wave.
func (pb *PlannedBatch) IndexableFingerprints() []string {
	var out []string
	for _, fp := range pb.ordered {
		if _, done := pb.executed[fp]; done {
			continue
		}
		if pb.IndexDriven(fp) {
			out = append(out, fp)
		}
	}
	return out
}

// QueryComplete reports whether every fingerprint the query needs has been
// executed — its MergeQuery result is then byte-identical to the
// exhaustive run's.
func (pb *PlannedBatch) QueryComplete(qi int) bool {
	for _, cfg := range pb.plans[qi] {
		if _, done := pb.executed[cfg.Structured.Fingerprint()]; !done {
			return false
		}
	}
	return true
}

// PendingBound bounds what the not-yet-executed fingerprints can add to a
// single tuple's summed weighted confidence, before focal adjustment.
type PendingBound struct {
	// PerTable maps a lowercased produce table to the bound for a tuple
	// of that table. Fingerprints carrying an equality predicate are
	// grouped by (table, column): a tuple satisfies at most one operand
	// of a column, so each group contributes the maximum over operands of
	// the summed gains — the disjointness collapse that makes pruning
	// fire. Fingerprints without an equality predicate, and join
	// consumers (whose produced tuple is reachable from many source
	// rows), contribute their full gains as sums.
	PerTable map[string]float64
	// Total is the plain sum of every pending gain — the conservative
	// bound callers fall back to when related-tuple inclusion lets one
	// produced row spill confidence into other tables.
	Total float64
}

// unsatisfiableEq reports whether the structured query carries two
// equality predicates on the same column with distinct canonical
// operands. No tuple can satisfy both (OpEq matches case-insensitively;
// Key() is the case-folded canonical form), so such a query always
// produces nothing. The mapper already drops these configurations from
// the cross-product at build time (PR 8); this guard keeps the planner's
// pruning bound honest for any batch it did not build itself — crediting
// an unsatisfiable fingerprint's gain can only loosen the bound and delay
// top-k termination, never change results.
func unsatisfiableEq(sq relational.Query) bool {
	var eqCols map[string]string
	for _, p := range sq.Predicates {
		if p.Op != relational.OpEq {
			continue
		}
		col := strings.ToLower(p.Column)
		key := p.Operand.Key()
		if prev, seen := eqCols[col]; seen {
			if prev != key {
				return true
			}
			continue
		}
		if eqCols == nil {
			eqCols = make(map[string]string)
		}
		eqCols[col] = key
	}
	return false
}

// joinCollapsible reports whether every target-table row can relate to at
// most one source-table row: exactly one foreign key on target references
// source, and no foreign key on source references target. Under that shape
// the join productions of disjoint source selections are themselves
// disjoint, so their gains collapse by max like direct equality groups.
func (pb *PlannedBatch) joinCollapsible(source, target string) bool {
	tt, ok := pb.e.db.Table(target)
	if !ok {
		return false
	}
	fks := 0
	for _, fk := range tt.Schema().ForeignKeys {
		if strings.EqualFold(fk.RefTable, source) {
			fks++
		}
	}
	if fks != 1 {
		return false
	}
	st, ok := pb.e.db.Table(source)
	if !ok {
		return false
	}
	for _, fk := range st.Schema().ForeignKeys {
		if strings.EqualFold(fk.RefTable, target) {
			return false
		}
	}
	return true
}

// PendingBound computes the unseen-tuple bound over all not-yet-executed
// fingerprints. Deterministic: configuration confidences, query weights,
// and schema only.
func (pb *PlannedBatch) PendingBound() PendingBound {
	b := PendingBound{PerTable: make(map[string]float64)}
	// eqGroups[table][group][operand] accumulates the gains of the pending
	// fingerprints whose equality predicate — applied directly or through
	// a many-to-one join — has that operand; each group's contribution is
	// the max over operands.
	eqGroups := make(map[string]map[string]map[string]float64)
	add := func(table, group, operand string, g float64) {
		if eqGroups[table] == nil {
			eqGroups[table] = make(map[string]map[string]float64)
		}
		if eqGroups[table][group] == nil {
			eqGroups[table][group] = make(map[string]float64)
		}
		eqGroups[table][group][operand] += g
	}
	for _, fp := range pb.ordered {
		if _, done := pb.executed[fp]; done {
			continue
		}
		sq := pb.structured[fp]
		if unsatisfiableEq(sq) {
			// Execution drops these configurations; their gains must not
			// inflate the bound either.
			continue
		}
		srcTable := strings.ToLower(sq.Table)
		eqCol, eqOperand := "", ""
		for _, p := range sq.Predicates {
			if p.Op == relational.OpEq {
				eqCol = strings.ToLower(p.Column)
				// Key() lowercases string payloads — OpEq matches
				// case-insensitively, so operands differing only in case
				// are NOT disjoint and must share a group slot.
				eqOperand = p.Operand.Key()
				break
			}
		}
		for _, n := range pb.wanted[fp] {
			g := n.conf * pb.qs[n.queryIdx].Weight
			b.Total += g
			if !n.join {
				if eqCol == "" {
					b.PerTable[srcTable] += g
				} else {
					add(srcTable, eqCol, eqOperand, g)
				}
				continue
			}
			target := strings.ToLower(n.joinTable)
			if eqCol != "" && pb.joinCollapsible(sq.Table, n.joinTable) {
				add(target, "join:"+srcTable+":"+eqCol, eqOperand, g)
			} else {
				// A join-produced tuple may be reachable from several
				// matching source rows, one per pending fingerprint, so
				// these gains sum on the target table.
				b.PerTable[target] += g
			}
		}
	}
	for table, groups := range eqGroups {
		for _, ops := range groups {
			best := 0.0
			for _, g := range ops {
				if g > best {
					best = g
				}
			}
			b.PerTable[table] += best
		}
	}
	return b
}

// NextWave returns the not-yet-executed fingerprints of the execution
// table carrying the most pending gain (ties broken by lexicographically
// smaller table name), in global order — one wave costs one shared
// physical pass over that table. Returns nil when nothing is pending.
func (pb *PlannedBatch) NextWave() []string {
	gains := make(map[string]float64)
	for _, fp := range pb.ordered {
		if _, done := pb.executed[fp]; done {
			continue
		}
		table := strings.ToLower(pb.structured[fp].Table)
		for _, n := range pb.wanted[fp] {
			gains[table] += n.conf * pb.qs[n.queryIdx].Weight
		}
	}
	best := ""
	for table, g := range gains {
		if best == "" || g > gains[best] || (g == gains[best] && table < best) {
			best = table
		}
	}
	if best == "" {
		return nil
	}
	var out []string
	for _, fp := range pb.ordered {
		if _, done := pb.executed[fp]; done {
			continue
		}
		if strings.ToLower(pb.structured[fp].Table) == best {
			out = append(out, fp)
		}
	}
	return out
}

// ExecuteFingerprints executes the given not-yet-executed fingerprints,
// in global fingerprint order, honoring the scan budget and cancellation
// exactly like the governed shared path: checks happen at chunk boundaries
// against the deterministic accumulated scan count, so the truncation
// point is byte-identical at any worker count and independent of cache
// state (budgeted runs execute uncached). Returns interrupted=true when
// the budget stopped execution (the Degraded reason is recorded on
// stats); a context or database error comes back as err.
func (pb *PlannedBatch) ExecuteFingerprints(ctx context.Context, reqFps []string, lim Limits, stats *ExecStats) (interrupted bool, err error) {
	want := make(map[string]struct{}, len(reqFps))
	for _, fp := range reqFps {
		want[fp] = struct{}{}
	}
	var fps []string
	for _, fp := range pb.ordered {
		if _, done := pb.executed[fp]; done {
			continue
		}
		if _, ok := want[fp]; ok {
			fps = append(fps, fp)
		}
	}
	gov := governed(ctx, lim)
	workers := lim.Workers()
	if workers > stats.Workers {
		stats.Workers = workers
	}
	cached := !pb.e.Uncached && lim.Unlimited()
	// Ungoverned calls submit all fingerprints as one batch so scan
	// queries against the same table share a single physical pass —
	// the same sharing the exhaustive shared path gets. Governed calls
	// chunk so budget and deadline checks stay responsive.
	chunk := len(fps)
	if gov && chunk > sharedChunk {
		chunk = sharedChunk
	}
	for lo := 0; lo < len(fps); lo += chunk {
		hi := lo + chunk
		if hi > len(fps) {
			hi = len(fps)
		}
		if gov {
			if cerr := ctx.Err(); cerr != nil {
				return false, cerr
			}
			if !lim.Unlimited() && stats.TuplesScanned >= lim.MaxScannedRows {
				stats.Degraded = append(stats.Degraded, degradedScanBudget(stats.TuplesScanned, lim.MaxScannedRows))
				return true, nil
			}
		}
		batch := make([]relational.Query, hi-lo)
		for i := lo; i < hi; i++ {
			batch[i-lo] = pb.structured[fps[i]]
		}
		sets, st, serr := pb.e.dbSelectMulti(ctx, batch, workers, cached)
		if serr != nil {
			return false, fmt.Errorf("shared execute: %w", serr)
		}
		stats.StructuredQueries += len(batch)
		stats.TuplesScanned += st.TuplesScanned
		stats.CacheHits += st.CacheHits
		if workers > 1 {
			stats.ParallelBatches++
		}
		for i := lo; i < hi; i++ {
			pb.rowSets[fps[i]] = sets[i-lo]
			pb.executed[fps[i]] = struct{}{}
		}
	}
	return false, nil
}

// EachProduced calls visit for every (query, tuple, confidence)
// production of one executed fingerprint — join projection and
// related-tuple expansion included, exactly the stream mergeRows folds.
// Callers combine per-query confidences by max (mergeRows' semantics);
// emission order carries no meaning here. A fingerprint that has not
// executed produces nothing.
func (pb *PlannedBatch) EachProduced(fp string, visit func(qi int, row *relational.Row, conf float64)) {
	rows := pb.rowSets[fp]
	if len(rows) == 0 {
		return
	}
	for _, n := range pb.wanted[fp] {
		consumed := rows
		if n.join {
			consumed = pb.e.joinProject(rows, n.joinTable)
		}
		for _, r := range consumed {
			visit(n.queryIdx, r, n.conf)
			if pb.e.IncludeRelated {
				for _, rel := range pb.e.db.Related(r) {
					visit(n.queryIdx, rel, n.conf*pb.e.RelatedDiscount)
				}
			}
		}
	}
}

// MergeQuery folds one query's results from the executed fingerprints, in
// the global fingerprint order — for a fully executed query this is
// byte-identical (tuples, confidences, list order) to the query's slice of
// an exhaustive ExecuteBatchContext run. Results are memoized; fingerprints
// not yet executed contribute nothing (the partial-merge semantics of an
// interrupted run).
func (pb *PlannedBatch) MergeQuery(qi int, stats *ExecStats) []Result {
	if rs, ok := pb.merged[qi]; ok {
		return rs
	}
	byTuple := make(map[relational.TupleID]int)
	var out []Result
	for _, fp := range pb.ordered {
		if _, done := pb.executed[fp]; !done {
			continue
		}
		rows := pb.rowSets[fp]
		for _, n := range pb.wanted[fp] {
			if n.queryIdx != qi {
				continue
			}
			consumed := rows
			if n.join {
				consumed = pb.e.joinProject(rows, n.joinTable)
			}
			stats.TuplesReturned += len(consumed)
			out = pb.e.mergeRows(out, byTuple, consumed, n.conf, pb.qs[qi].ID)
		}
	}
	pb.merged[qi] = out
	return out
}

// Frontier is the set of candidate tuples that could still reach the final
// top-k: completion evaluates pruned queries against exactly these rows.
type Frontier struct {
	db      *relational.Database
	member  map[relational.TupleID]struct{}
	tables  []string // lowercased, sorted
	byTable map[string][]*relational.Row
	pos     map[string]map[relational.TupleID]int // lazily built per table
}

// NewFrontier builds a frontier over rows of db (the searched database).
// Rows are deduplicated and ordered per table by insertion position, so
// frontier iteration is deterministic whatever order rows arrive in.
func NewFrontier(db *relational.Database, rows []*relational.Row) *Frontier {
	f := &Frontier{
		db:      db,
		member:  make(map[relational.TupleID]struct{}, len(rows)),
		byTable: make(map[string][]*relational.Row),
		pos:     make(map[string]map[relational.TupleID]int),
	}
	for _, r := range rows {
		if r == nil {
			continue
		}
		if _, dup := f.member[r.ID]; dup {
			continue
		}
		f.member[r.ID] = struct{}{}
		key := strings.ToLower(r.ID.Table)
		f.byTable[key] = append(f.byTable[key], r)
	}
	// One pass per frontier table orders its (few) rows by scan position
	// and memoizes those positions — without materializing a position map
	// for the whole table, which would dwarf the cost of the pruning this
	// frontier exists to cash in.
	for key, list := range f.byTable {
		f.tables = append(f.tables, key)
		want := make(map[relational.TupleID]*relational.Row, len(list))
		for _, r := range list {
			want[r.ID] = r
		}
		m := make(map[relational.TupleID]int, len(list))
		ordered := make([]*relational.Row, 0, len(list))
		if t, ok := db.Table(key); ok {
			for i, row := range t.Rows() {
				if fr, hit := want[row.ID]; hit {
					m[row.ID] = i
					ordered = append(ordered, fr)
					if len(ordered) == len(list) {
						break
					}
				}
			}
		}
		// Rows absent from the table (deleted since production) keep a
		// deterministic tail position after the stored rows.
		if len(ordered) < len(list) {
			for _, r := range list {
				if _, hit := m[r.ID]; !hit {
					m[r.ID] = len(m) + 1<<30
					ordered = append(ordered, r)
				}
			}
		}
		f.byTable[key] = ordered
		f.pos[key] = m
	}
	sort.Strings(f.tables)
	return f
}

// Size is the number of frontier tuples.
func (f *Frontier) Size() int { return len(f.member) }

func (f *Frontier) tableRows(table string) []*relational.Row {
	return f.byTable[strings.ToLower(table)]
}

// posOf is the row's insertion position in its table — the order a full
// scan visits rows in. Frontier rows are pre-resolved by NewFrontier;
// other rows (join sources reached through a frontier tuple) resolve by a
// linear probe, memoized — there are only ever a handful per completion.
func (f *Frontier) posOf(r *relational.Row) int {
	key := strings.ToLower(r.ID.Table)
	m, ok := f.pos[key]
	if !ok {
		m = make(map[relational.TupleID]int)
		f.pos[key] = m
	}
	if p, hit := m[r.ID]; hit {
		return p
	}
	p := 1 << 30
	if t, tok := f.db.Table(r.ID.Table); tok {
		for i, row := range t.Rows() {
			if row.ID == r.ID {
				p = i
				break
			}
		}
	}
	m[r.ID] = p
	return p
}

// restrictedEntry is one produced (row, confidence) with its position in
// the configuration's emission stream, comparable lexicographically.
type restrictedEntry struct {
	row  *relational.Row
	conf float64
	pos  [3]int
}

func lessPos(a, b [3]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// CompleteQuery computes a pruned query's results restricted to the
// frontier, in the exact relative order an exhaustive shared run would
// have produced them. Index-driven configurations are harvested from
// their buckets in full (exact, and as cheap as executing them); full-scan
// configurations — the expensive ones pruning exists to skip — are point-
// evaluated against frontier rows only. The returned list contains every
// frontier tuple the query produces at its exact confidence; non-frontier
// tuples may be present (from harvested fingerprints) or absent (from
// point-evaluated ones), which is sound because, by construction of the
// frontier, they cannot reach the final top-k.
func (pb *PlannedBatch) CompleteQuery(qi int, fr *Frontier, stats *ExecStats) []Result {
	byTuple := make(map[relational.TupleID]int)
	var out []Result
	qID := pb.qs[qi].ID
	for _, fp := range pb.ordered {
		rows, exact := pb.exactRows(fp)
		for _, n := range pb.wanted[fp] {
			if n.queryIdx != qi {
				continue
			}
			if exact {
				consumed := rows
				if n.join {
					consumed = pb.e.joinProject(rows, n.joinTable)
				}
				stats.TuplesReturned += len(consumed)
				out = pb.e.mergeRows(out, byTuple, consumed, n.conf, qID)
				continue
			}
			entries := pb.restrictedEntries(fp, n, fr)
			stats.TuplesReturned += len(entries)
			for _, ent := range entries {
				conf := ent.conf * n.conf
				if i, ok := byTuple[ent.row.ID]; ok {
					if conf > out[i].Confidence {
						out[i].Confidence = conf
						out[i].Query = qID
					}
					continue
				}
				byTuple[ent.row.ID] = len(out)
				out = append(out, Result{Tuple: ent.row, Confidence: conf, Query: qID})
			}
		}
	}
	return out
}

// exactRows returns the fingerprint's full result rows when they are
// available exactly: already executed by a wave, previously harvested, or
// obtainable from an index bucket right now.
func (pb *PlannedBatch) exactRows(fp string) ([]*relational.Row, bool) {
	if _, done := pb.executed[fp]; done {
		return pb.rowSets[fp], true
	}
	if rows, ok := pb.harvested[fp]; ok {
		return rows, true
	}
	rows, ok := pb.harvestIndexed(pb.structured[fp])
	if ok {
		pb.harvested[fp] = rows
		return rows, true
	}
	return nil, false
}

// harvestIndexed replicates the executor's index access path for one
// structured query when an index can drive it: pick the smallest bucket
// among index-backed predicates (first wins ties, exactly like
// accessPath), then filter the bucket by the remaining predicates in
// bucket order. Costs O(bucket), same as executing the query; returns
// ok=false when no index applies (a full scan would be required).
func (pb *PlannedBatch) harvestIndexed(sq relational.Query) ([]*relational.Row, bool) {
	t, ok := pb.e.db.Table(sq.Table)
	if !ok {
		return nil, false
	}
	schema := t.Schema()
	best := -1
	var bucket []*relational.Row
	for pi, p := range sq.Predicates {
		col, cok := schema.Column(p.Column)
		if !cok {
			continue
		}
		var cand []*relational.Row
		switch p.Op {
		case relational.OpEq:
			if !col.Indexed && !strings.EqualFold(col.Name, schema.PrimaryKey) {
				continue
			}
			cand, _ = t.LookupEqual(p.Column, p.Operand)
		case relational.OpContainsToken:
			if !col.FullText {
				continue
			}
			cand = t.LookupToken(p.Column, p.Operand.Str())
		default:
			continue
		}
		if best == -1 || len(cand) < len(bucket) {
			best = pi
			bucket = cand
		}
	}
	if best == -1 {
		return nil, false
	}
	pb.completionScanned += len(bucket)
	var out []*relational.Row
	for _, r := range bucket {
		keep := true
		for pi, p := range sq.Predicates {
			if pi == best {
				continue
			}
			if !p.Matches(r) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, r)
		}
	}
	return out, true
}

func matchesAll(preds []relational.Predicate, r *relational.Row) bool {
	for _, p := range preds {
		if !p.Matches(r) {
			return false
		}
	}
	return true
}

// restrictedScanEval point-evaluates one full-scan configuration against
// the frontier: which frontier tuples does it produce, at what confidence,
// and in what relative order. Positions encode the configuration's
// emission stream — (scan position, join-projection position, related
// rank) — so sorting reproduces the exact relative order of the frontier
// tuples in the configuration's true result list.
// restrictedEntries returns the frontier-restricted evaluation of one
// fingerprint for a need's production shape, memoized — many queries
// consume the same fingerprint, and the produced rows and positions are
// need-independent. Entry confidences are unit multipliers (1 for direct
// production, RelatedDiscount for related expansion); consumers scale by
// the need's configuration confidence.
func (pb *PlannedBatch) restrictedEntries(fp string, n planNeed, fr *Frontier) []restrictedEntry {
	key := fp
	if n.join {
		key += "\x00" + strings.ToLower(n.joinTable)
	}
	if pb.restrictedFr != fr {
		pb.restrictedFr = fr
		pb.restricted = make(map[string][]restrictedEntry)
	}
	if ents, ok := pb.restricted[key]; ok {
		return ents
	}
	ents := pb.restrictedScanEval(pb.structured[fp], n, fr)
	pb.restricted[key] = ents
	return ents
}

func (pb *PlannedBatch) restrictedScanEval(sq relational.Query, n planNeed, fr *Frontier) []restrictedEntry {
	var entries []restrictedEntry
	produceTable := sq.Table
	if n.join {
		produceTable = n.joinTable
	}
	direct := fr.tableRows(produceTable)
	pb.completionScanned += len(direct)
	for _, frow := range direct {
		if pos, ok := pb.producedPos(sq, n, frow, fr); ok {
			entries = append(entries, restrictedEntry{row: frow, conf: 1, pos: [3]int{pos[0], pos[1], 0}})
		}
	}
	if pb.e.IncludeRelated {
		disc := pb.e.RelatedDiscount
		for _, table := range fr.tables {
			for _, frow := range fr.byTable[table] {
				var best [3]int
				found := false
				for _, pr := range pb.e.db.Related(frow) {
					if !equalFold(pr.ID.Table, produceTable) {
						continue
					}
					pos, ok := pb.producedPos(sq, n, pr, fr)
					if !ok {
						continue
					}
					j := pb.relatedRank(pr, frow)
					if j < 0 {
						continue
					}
					cand := [3]int{pos[0], pos[1], 1 + j}
					if !found || lessPos(cand, best) {
						best, found = cand, true
					}
				}
				if found {
					entries = append(entries, restrictedEntry{row: frow, conf: disc, pos: best})
				}
			}
		}
	}
	sort.SliceStable(entries, func(i, j int) bool { return lessPos(entries[i].pos, entries[j].pos) })
	return entries
}

// producedPos reports whether the configuration's result list contains row
// r, and at which position of the emission stream. Non-join: r matches all
// predicates, position = its scan position. Join: some row of the source
// table related to r matches all predicates; the position is the earliest
// (source scan position, index of r among the source row's related rows in
// the target table) — the order joinProject first emits r.
func (pb *PlannedBatch) producedPos(sq relational.Query, n planNeed, r *relational.Row, fr *Frontier) ([2]int, bool) {
	if !n.join {
		if !equalFold(r.ID.Table, sq.Table) || !matchesAll(sq.Predicates, r) {
			return [2]int{}, false
		}
		return [2]int{fr.posOf(r), 0}, true
	}
	if !equalFold(r.ID.Table, n.joinTable) {
		return [2]int{}, false
	}
	var best [2]int
	found := false
	for _, src := range pb.e.db.Related(r) {
		if !equalFold(src.ID.Table, sq.Table) || !matchesAll(sq.Predicates, src) {
			continue
		}
		ri := pb.joinEmissionIndex(src, r, n.joinTable)
		if ri < 0 {
			continue
		}
		cand := [2]int{fr.posOf(src), ri}
		if !found || cand[0] < best[0] || (cand[0] == best[0] && cand[1] < best[1]) {
			best, found = cand, true
		}
	}
	return best, found
}

// joinEmissionIndex is the position of target within src's related rows
// restricted to the join's target table — the order joinProject walks them.
func (pb *PlannedBatch) joinEmissionIndex(src, target *relational.Row, targetTable string) int {
	idx := 0
	for _, rel := range pb.e.db.Related(src) {
		if !equalFold(rel.ID.Table, targetTable) {
			continue
		}
		if rel.ID == target.ID {
			return idx
		}
		idx++
	}
	return -1
}

// relatedRank is the position of rel within r's related rows (unfiltered)
// — the order mergeRows walks the IncludeRelated expansion.
func (pb *PlannedBatch) relatedRank(r, rel *relational.Row) int {
	for j, cand := range pb.e.db.Related(r) {
		if cand.ID == rel.ID {
			return j
		}
	}
	return -1
}
