package keyword

import (
	"strings"
	"testing"

	"nebula/internal/relational"
)

// TestContradictoryConfigurationsDropped is the regression test for the
// self-contradictory cross-product configurations (ROADMAP item 4
// follow-up): an assignment mapping two keywords with different canonical
// values onto the same column as equality predicates (Name=x AND Name=y)
// is unsatisfiable — it can never produce a tuple but used to execute a
// scan and inflate the planner's pending top-k bound. Such configurations
// must no longer be enumerated; satisfiable cross-products survive.
func TestContradictoryConfigurationsDropped(t *testing.T) {
	_, _, e := fixture(t)
	// Each hinted value keyword also probes the concept's other referencing
	// column at half weight (GID <-> Name), so the raw cross-product holds
	// four assignments: (GID,Name) and (Name,GID) are satisfiable while
	// (GID,GID) and (Name,Name) pin one column to two different values.
	q := Query{ID: "qc", Weight: 1, Keywords: []Keyword{
		{Text: "JW0013", Role: RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.9},
		{Text: "grpC", Role: RoleValue, TargetTable: "Gene", TargetColumn: "Name", Weight: 0.9},
	}}
	cfgs := e.Configurations(q)
	if len(cfgs) != 2 {
		t.Fatalf("configurations = %d, want 2 (contradictory pair dropped): %+v", len(cfgs), cfgs)
	}
	for _, cfg := range cfgs {
		keys := make(map[string]string)
		for _, p := range cfg.Structured.Predicates {
			if p.Op != relational.OpEq {
				continue
			}
			col := strings.ToLower(p.Column)
			if prev, ok := keys[col]; ok && prev != p.Operand.Key() {
				t.Errorf("unsatisfiable configuration survived: %+v", cfg)
			}
			keys[col] = p.Operand.Key()
		}
	}
	// The satisfiable interpretation still finds its tuple.
	rs, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Tuple.ID.Table == "Gene" && r.Tuple.MustGet("GID").Str() == "JW0013" {
			found = true
		}
	}
	if !found {
		t.Fatalf("satisfiable configuration lost: %v", rs)
	}

	// Repeating the same value is redundant, not contradictory: equality
	// matches case-insensitively, so the canonical operand keys agree and
	// the configuration must survive.
	dup := Query{ID: "qd", Weight: 1, Keywords: []Keyword{
		{Text: "grpC", Role: RoleValue, TargetTable: "Gene", TargetColumn: "Name", Weight: 0.9},
		{Text: "GRPC", Role: RoleValue, TargetTable: "Gene", TargetColumn: "Name", Weight: 0.9},
	}}
	dupCfgs := e.Configurations(dup)
	sameCol := false
	for _, cfg := range dupCfgs {
		cols := make(map[string]int)
		for _, p := range cfg.Structured.Predicates {
			cols[strings.ToLower(p.Column)]++
		}
		if cols["name"] == 2 {
			sameCol = true
		}
	}
	if !sameCol {
		t.Errorf("case-folded duplicate value dropped as contradictory: %+v", dupCfgs)
	}
}
