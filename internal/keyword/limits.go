package keyword

import (
	"context"
	"fmt"
	"runtime"
)

// Limits bound one batch execution. The zero value means "unlimited" and
// selects the exact legacy execution paths, so governance is free when off.
type Limits struct {
	// MaxScannedRows stops the executor once this many tuples have been
	// scanned; already-produced results are kept and the truncation is
	// recorded in ExecStats.Degraded. 0 means unlimited.
	MaxScannedRows int
	// MaxWorkers bounds the executor's worker pool. 0 and 1 select the
	// sequential legacy path; n > 1 fans independent structured queries
	// (and row segments of shared scans) across up to n goroutines.
	// Whatever the worker count, results are merged in the deterministic
	// sequential order, so parallel output is byte-identical to sequential
	// — including the truncation point when MaxScannedRows bites.
	MaxWorkers int
}

// Unlimited reports whether the limits impose no scan bound. Parallelism
// is not a bound: MaxWorkers alone does not make an execution governed.
func (l Limits) Unlimited() bool { return l.MaxScannedRows <= 0 }

// Workers resolves the executor's worker count: values below 2 select the
// sequential path. The count is clamped to GOMAXPROCS — a pool wider than
// the scheduler's parallelism only adds goroutine churn (BENCH_parallel
// measured unshared 2-worker runs at 0.80x sequential under GOMAXPROCS=1),
// and results are byte-identical at any worker count anyway.
func (l Limits) Workers() int {
	w := l.MaxWorkers
	if g := runtime.GOMAXPROCS(0); w > g {
		w = g
	}
	if w > 1 {
		return w
	}
	return 1
}

// governed reports whether the executor must take the governed path: either
// a row budget is set or the context can actually be cancelled.
// context.Background() and context.TODO() return a nil Done channel, so an
// ungoverned call is detected exactly and keeps the legacy code path —
// byte-identical output, no extra checks per tuple.
func governed(ctx context.Context, l Limits) bool {
	return ctx.Done() != nil || !l.Unlimited()
}

// scanBatch is the granularity of cancellation checks inside row scans:
// the naive searcher polls ctx.Err() every scanBatch tuples.
const scanBatch = 256

// sharedChunk is the number of distinct structured queries a governed
// shared execution submits per SelectMulti call. Chunking trades a little
// scan sharing for per-tuple-batch cancellation and budget checks between
// chunks; ungoverned runs keep the single-call legacy path.
const sharedChunk = 16

// degradedScanBudget formats the ExecStats.Degraded reason recorded when
// MaxScannedRows truncates an execution.
func degradedScanBudget(scanned, limit int) string {
	return fmt.Sprintf("keyword: scan budget exhausted (%d tuples scanned, limit %d); remaining queries skipped", scanned, limit)
}
