package keyword

import (
	"context"
	"sort"
	"strings"

	"nebula/internal/relational"
	"nebula/internal/textutil"
)

// SymbolTableEngine is a keyword-search technique in the style of
// DBXplorer [5] and similar systems: a pre-processing phase builds a
// symbol table mapping every value token in the database to its
// occurrences (table, column, row); queries are answered purely from that
// index. Compared with the metadata approach it needs no ConceptRefs or
// patterns — but it pays an up-front indexing pass over the whole
// database, goes stale as data changes (call Rebuild), and cannot exploit
// keyword role hints beyond filtering to value keywords.
type SymbolTableEngine struct {
	db *relational.Database
	// symbols maps a lower-cased token to the rows containing it.
	symbols map[string][]symbolHit
	// indexedRows counts rows processed by the pre-processing phase.
	indexedRows int
}

type symbolHit struct {
	row    *relational.Row
	column string
}

// NewSymbolTableEngine runs the pre-processing phase over db and returns
// the ready engine.
func NewSymbolTableEngine(db *relational.Database) *SymbolTableEngine {
	e := &SymbolTableEngine{db: db}
	e.Rebuild()
	return e
}

// Rebuild re-runs the pre-processing phase (required after data changes —
// the documented weakness of index-first techniques).
func (e *SymbolTableEngine) Rebuild() {
	e.symbols = make(map[string][]symbolHit)
	e.indexedRows = 0
	for _, name := range e.db.TableNames() {
		t := e.db.MustTable(name)
		schema := t.Schema()
		for _, row := range t.Rows() {
			e.indexedRows++
			for i, col := range schema.Columns {
				if col.Type != relational.TypeString {
					continue
				}
				v := row.Values[i].Str()
				if col.FullText {
					seen := map[string]struct{}{}
					for _, tok := range textutil.Tokenize(v) {
						if _, dup := seen[tok.Lower]; dup {
							continue
						}
						seen[tok.Lower] = struct{}{}
						e.symbols[tok.Lower] = append(e.symbols[tok.Lower], symbolHit{row: row, column: col.Name})
					}
					continue
				}
				e.symbols[strings.ToLower(v)] = append(e.symbols[strings.ToLower(v)], symbolHit{row: row, column: col.Name})
			}
		}
	}
}

// IndexedRows reports how many rows the pre-processing pass covered.
func (e *SymbolTableEngine) IndexedRows() int { return e.indexedRows }

// Symbols reports the number of distinct indexed tokens.
func (e *SymbolTableEngine) Symbols() int { return len(e.symbols) }

// Database returns the bound database.
func (e *SymbolTableEngine) Database() *relational.Database { return e.db }

// Execute answers one keyword query from the symbol table. Only value
// keywords probe the index (concept keywords carry no value to look up);
// a tuple's confidence is the weight-average of the value keywords it
// matches. When a value keyword carries a column hint, hits on other
// columns are discounted rather than dropped — the index has no schema
// semantics to enforce them with.
func (e *SymbolTableEngine) Execute(q Query) ([]Result, ExecStats, error) {
	return executeSymbolQuery(q, func(term string) []symbolHit { return e.symbols[term] })
}

// executeSymbolQuery answers one keyword query given a term-lookup
// function. It is shared between the heap-resident SymbolTableEngine and
// the disk-backed TieredEngine: the scoring is fully order-independent
// (per-row max credit folded through maps, results sorted at the end), so
// any lookup that yields the same SET of (row, column) hits per term
// produces byte-identical results — the property the tiered store's
// identity gate rests on.
func executeSymbolQuery(q Query, lookup func(term string) []symbolHit) ([]Result, ExecStats, error) {
	var stats ExecStats
	stats.StructuredQueries = 1 // one index probe set

	type agg struct {
		weight float64
		total  float64
	}
	values := 0
	perRow := make(map[relational.TupleID]*agg)
	rows := make(map[relational.TupleID]*relational.Row)
	for _, k := range q.Keywords {
		if k.Role != RoleValue {
			continue
		}
		values++
		w := k.Weight
		if w <= 0 {
			w = 0.5
		}
		hits := lookup(strings.ToLower(k.Text))
		stats.TuplesScanned += len(hits)
		for _, h := range hits {
			credit := w
			if k.TargetColumn != "" && !strings.EqualFold(k.TargetColumn, h.column) {
				credit = w / 2
			}
			a, ok := perRow[h.row.ID]
			if !ok {
				a = &agg{}
				perRow[h.row.ID] = a
				rows[h.row.ID] = h.row
			}
			if credit > a.weight {
				// A row may match the same keyword in several columns;
				// count the best occurrence once per keyword. The per-
				// keyword accumulation happens in `total` below.
				a.weight = credit
			}
		}
		// Fold this keyword's contribution into the running totals.
		for _, a := range perRow {
			a.total += a.weight
			a.weight = 0
		}
	}
	if values == 0 {
		return nil, stats, nil
	}
	out := make([]Result, 0, len(perRow))
	for id, a := range perRow {
		conf := a.total / float64(values)
		if conf > 1 {
			conf = 1
		}
		out = append(out, Result{Tuple: rows[id], Confidence: conf, Query: q.ID})
	}
	sortResults(out)
	stats.TuplesReturned = len(out)
	return out, stats, nil
}

// ExecuteBatch answers a batch. The symbol table has no scan work to
// share; with shared=true identical queries (by structural identity) are
// answered once.
func (e *SymbolTableEngine) ExecuteBatch(qs []Query, shared bool) (map[string][]Result, ExecStats, error) {
	return e.ExecuteBatchContext(context.Background(), qs, shared, Limits{})
}

// ExecuteBatchContext is ExecuteBatch under governance: index probes are
// cheap, so ctx and the scan budget (counting index hits examined) are
// checked between queries. Partial results survive cancellation.
func (e *SymbolTableEngine) ExecuteBatchContext(ctx context.Context, qs []Query, shared bool, lim Limits) (map[string][]Result, ExecStats, error) {
	return executeSymbolBatch(ctx, qs, shared, lim, e.Execute)
}

// executeSymbolBatch is the batch loop shared by the symbol-table
// techniques: per-query governance checks, optional identity sharing, and
// stat accumulation around a single-query exec function.
func executeSymbolBatch(ctx context.Context, qs []Query, shared bool, lim Limits, exec func(Query) ([]Result, ExecStats, error)) (map[string][]Result, ExecStats, error) {
	var stats ExecStats
	gov := governed(ctx, lim)
	results := make(map[string][]Result, len(qs))
	cache := make(map[string][]Result)
	for _, q := range qs {
		if gov {
			if err := ctx.Err(); err != nil {
				return results, stats, err
			}
			if !lim.Unlimited() && stats.TuplesScanned >= lim.MaxScannedRows {
				stats.Degraded = append(stats.Degraded, degradedScanBudget(stats.TuplesScanned, lim.MaxScannedRows))
				return results, stats, nil
			}
		}
		key := ""
		if shared {
			key = queryIdentity(q)
			if rs, ok := cache[key]; ok {
				stats.SharedQueries++
				results[q.ID] = relabel(rs, q.ID)
				continue
			}
		}
		rs, st, err := exec(q)
		if err != nil {
			return nil, stats, err
		}
		stats.Add(st)
		results[q.ID] = rs
		if shared {
			cache[key] = rs
		}
	}
	return results, stats, nil
}

func queryIdentity(q Query) string {
	parts := make([]string, 0, len(q.Keywords))
	for _, k := range q.Keywords {
		if k.Role != RoleValue {
			continue
		}
		parts = append(parts, strings.ToLower(k.Text)+"\x00"+strings.ToLower(k.TargetColumn))
	}
	sortStrings(parts)
	return strings.Join(parts, "\x01")
}

func relabel(rs []Result, queryID string) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = r
		out[i].Query = queryID
	}
	return out
}

// sortResults orders deterministically: descending confidence, then tuple
// identity.
func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Confidence != rs[j].Confidence {
			return rs[i].Confidence > rs[j].Confidence
		}
		return tupleLess(rs[i].Tuple.ID, rs[j].Tuple.ID)
	})
}

func tupleLess(a, b relational.TupleID) bool {
	if a.Table != b.Table {
		return a.Table < b.Table
	}
	return a.Key < b.Key
}

func sortStrings(s []string) { sort.Strings(s) }
