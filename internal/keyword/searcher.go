package keyword

import (
	"context"

	"nebula/internal/relational"
)

// Searcher is the pluggable keyword-search technique beneath Nebula's
// discovery pipeline. The paper uses Bergamaschi et al.'s metadata approach
// "without loss of generality ... any other technique can be used" and
// treats it as a black box; this interface is that box's lid. Engine (the
// metadata approach) and SymbolTableEngine (a DBXplorer-style [5]
// pre-built-index approach) both implement it.
type Searcher interface {
	// Execute runs one keyword query.
	Execute(q Query) ([]Result, ExecStats, error)
	// ExecuteBatch runs a batch of queries; shared enables whatever
	// multi-query optimization the technique supports.
	ExecuteBatch(qs []Query, shared bool) (map[string][]Result, ExecStats, error)
	// ExecuteBatchContext is ExecuteBatch under governance: execution
	// checks ctx at per-query (and, where the technique scans, per-tuple-
	// batch) granularity and stops once lim is exhausted. On cancellation
	// the partial results produced so far are returned together with the
	// context's error; budget truncations are not errors — they return the
	// partial results with the reason appended to ExecStats.Degraded.
	ExecuteBatchContext(ctx context.Context, qs []Query, shared bool, lim Limits) (map[string][]Result, ExecStats, error)
	// Database returns the technique's bound database.
	Database() *relational.Database
}

var (
	_ Searcher = (*Engine)(nil)
	_ Searcher = (*SymbolTableEngine)(nil)
)
