package keyword

import (
	"fmt"
	"testing"

	"nebula/internal/relational"
	"nebula/internal/segment"
)

// tieredFixture builds the shared fixture database with a tiered engine
// over a fresh on-disk store, and wires the row-mutation hook the way
// the engine does in disk mode.
func tieredFixture(t *testing.T) (*relational.Database, *TieredEngine, *segment.Store, string) {
	t.Helper()
	db, _, _ := fixture(t)
	dir := t.TempDir()
	store, err := segment.Open(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store.Close() })
	te := NewTieredEngine(db, store, true)
	db.SetRowMutationHook(func(m relational.RowMutation) {
		te.MarkDirty(relational.TupleID{Table: m.Table, Key: m.Key})
	})
	return db, te, store, dir
}

func tieredQueries() []Query {
	return []Query{
		{ID: "q1", Weight: 1, Keywords: []Keyword{
			{Text: "JW0014", Role: RoleValue, TargetColumn: "GID", Weight: 0.9},
		}},
		{ID: "q2", Weight: 1, Keywords: []Keyword{
			{Text: "regulation", Role: RoleValue, Weight: 0.6},
		}},
		{ID: "q3", Weight: 1, Keywords: []Keyword{
			{Text: "yaaB", Role: RoleValue, TargetColumn: "GID", Weight: 0.8},
		}},
		{ID: "q4", Weight: 1, Keywords: []Keyword{
			{Text: "thrA", Role: RoleValue, Weight: 0.7},
			{Text: "JW0001", Role: RoleValue, TargetColumn: "GID", Weight: 0.9},
		}},
		{ID: "q5", Weight: 1, Keywords: []Keyword{
			{Text: "nosuchterm", Role: RoleValue, Weight: 0.5},
		}},
	}
}

// assertIdentical runs every probe query through both engines and
// requires byte-level agreement: same tuples, confidences, order, and
// the same scan statistics (the tiered path must not even read more).
func assertIdentical(t *testing.T, tiered *TieredEngine, heap *SymbolTableEngine) {
	t.Helper()
	for _, q := range tieredQueries() {
		hr, hs, herr := heap.Execute(q)
		tr, ts, terr := tiered.Execute(q)
		if herr != nil || terr != nil {
			t.Fatalf("%s: errs %v %v", q.ID, herr, terr)
		}
		if len(hr) != len(tr) {
			t.Fatalf("%s: heap %d results, tiered %d", q.ID, len(hr), len(tr))
		}
		for i := range hr {
			if hr[i].Tuple.ID != tr[i].Tuple.ID || hr[i].Confidence != tr[i].Confidence || hr[i].Query != tr[i].Query {
				t.Fatalf("%s[%d]: heap %v/%v tiered %v/%v", q.ID, i,
					hr[i].Tuple.ID, hr[i].Confidence, tr[i].Tuple.ID, tr[i].Confidence)
			}
		}
		if hs.TuplesScanned != ts.TuplesScanned || hs.TuplesReturned != ts.TuplesReturned {
			t.Fatalf("%s: stats heap %+v tiered %+v", q.ID, hs, ts)
		}
	}
}

// TestTieredIdentityFresh: a tiered engine over an empty store (full
// re-index pending) answers byte-identically to the heap engine.
func TestTieredIdentityFresh(t *testing.T) {
	db, te, _, _ := tieredFixture(t)
	assertIdentical(t, te, NewSymbolTableEngine(db))
}

// TestTieredIdentityAfterFlush: flushing the tail into a segment and
// committing must not change a single answer — the postings moved from
// heap to disk, nothing else.
func TestTieredIdentityAfterFlush(t *testing.T) {
	db, te, store, _ := tieredFixture(t)
	payload := te.PrepareFlush()
	if len(payload) == 0 {
		t.Fatal("fixture produced no postings to flush")
	}
	if err := store.Flush(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	te.CommitFlush(payload)
	terms, posts, dirty, pending := te.TailStats()
	if terms != 0 || posts != 0 || dirty != 0 || pending {
		t.Fatalf("tail not drained: terms=%d posts=%d dirty=%d pending=%v", terms, posts, dirty, pending)
	}
	assertIdentical(t, te, NewSymbolTableEngine(db))
}

// TestTieredIdentityUnderMutations: inserts, updates, and deletes after
// a flush are covered by the dirty-row tail (hook-driven), and stale
// segment postings for changed rows are filtered by verification. The
// heap engine is rebuilt from scratch each time — the strongest oracle.
func TestTieredIdentityUnderMutations(t *testing.T) {
	db, te, store, _ := tieredFixture(t)
	payload := te.PrepareFlush()
	if err := store.Flush(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	te.CommitFlush(payload)

	gt := db.MustTable("Gene")
	if _, err := gt.Insert([]relational.Value{
		relational.String("JW0099"), relational.String("newG"),
		relational.Int(500), relational.String("F9"),
	}); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, te, NewSymbolTableEngine(db))

	// Update: the old value's segment posting goes stale, the new value
	// lands in the tail.
	row := gt.Rows()[0]
	if err := gt.UpdateByKey(row.ID.Key, "Name", relational.String("renamedGene")); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, te, NewSymbolTableEngine(db))

	// Delete: every posting for the row (segment or tail) must vanish.
	victim := gt.Rows()[1]
	if !gt.DeleteByKey(victim.ID.Key) {
		t.Fatal("delete failed")
	}
	assertIdentical(t, te, NewSymbolTableEngine(db))
}

// TestTieredIdentityAcrossRestart: flush, reopen the store from disk
// (fresh readers, no full re-index), and verify identity — the restart
// path must serve from segments alone.
func TestTieredIdentityAcrossRestart(t *testing.T) {
	db, te, store, dir := tieredFixture(t)
	payload := te.PrepareFlush()
	if err := store.Flush(1, 0, payload); err != nil {
		t.Fatal(err)
	}
	te.CommitFlush(payload)
	store.Close()

	store2, err := segment.Open(dir, nil, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	if store2.Seq() != 1 {
		t.Fatalf("reopened seq=%d", store2.Seq())
	}
	te2 := NewTieredEngine(db, store2, false)
	db.SetRowMutationHook(func(m relational.RowMutation) {
		te2.MarkDirty(relational.TupleID{Table: m.Table, Key: m.Key})
	})
	assertIdentical(t, te2, NewSymbolTableEngine(db))

	// Post-restart mutations must be picked up through the hook.
	gt := db.MustTable("Gene")
	if _, err := gt.Insert([]relational.Value{
		relational.String("JW0777"), relational.String("postRestart"),
		relational.Int(7), relational.String("F1"),
	}); err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, te2, NewSymbolTableEngine(db))
}

// TestTieredMultiSegmentDedup: the same row flushed in two generations
// (mutated between flushes) appears in two segments; lookups must
// deduplicate by identity and verify against the live value, never
// double-count.
func TestTieredMultiSegmentDedup(t *testing.T) {
	db, te, store, _ := tieredFixture(t)
	gt := db.MustTable("Gene")
	for gen := 0; gen < 3; gen++ {
		row := gt.Rows()[0]
		if err := gt.UpdateByKey(row.ID.Key, "Name", relational.String(fmt.Sprintf("gen%d", gen))); err != nil {
			t.Fatal(err)
		}
		payload := te.PrepareFlush()
		if err := store.Flush(uint64(gen+1), 0, payload); err != nil {
			t.Fatal(err)
		}
		te.CommitFlush(payload)
	}
	if store.Segments() < 2 {
		t.Fatalf("expected multiple segments, got %d", store.Segments())
	}
	assertIdentical(t, te, NewSymbolTableEngine(db))
	// The current name matches exactly once.
	rs, _, err := te.Execute(Query{ID: "q", Weight: 1, Keywords: []Keyword{
		{Text: "gen2", Role: RoleValue, Weight: 0.9},
	}})
	if err != nil || len(rs) != 1 {
		t.Fatalf("gen2 results=%v err=%v", rs, err)
	}
}
