package keyword

import (
	"sort"
	"strings"

	"nebula/internal/meta"
	"nebula/internal/relational"
)

// Configuration captures one possible semantics of a keyword query (the
// "configurations" of [7]): an assignment of every keyword to a concrete
// schema element or column domain, materialized as a structured query with
// a confidence weight. Most configurations are single-table; when the
// concept keywords name one table and the value keywords another, and the
// two are linked by an FK–PK relationship, the configuration is a *join*:
// the structured query runs on the value table and the produced tuples are
// mapped across the relationship into the target table ("the protein of
// gene JW0013"). This is the FK–PK awareness §6.1 attributes to the
// underlying search technique.
type Configuration struct {
	// Table is the table whose tuples the configuration produces.
	Table string
	// Structured is the query to execute (its table differs from Table for
	// join configurations).
	Structured relational.Query
	// Join reports whether the configuration maps results across an FK–PK
	// relationship into Table.
	Join bool
	// Confidence estimates how well the configuration matches the keyword
	// query's intended semantics, in (0,1].
	Confidence float64
}

// joinDiscount is the confidence multiplier for join configurations: a
// cross-table interpretation is plausible but weaker than a direct one.
const joinDiscount = 0.8

// mappingOption is one candidate interpretation of a single keyword.
type mappingOption struct {
	role   Role
	table  string
	column string // for RoleColumn / RoleValue
	weight float64
}

// Configurations enumerates the configurations of a keyword query. Keywords
// carrying upstream hints (TargetTable/TargetColumn) use them directly;
// un-hinted keywords are mapped through NebulaMeta. Only configurations
// with at least one value predicate are returned: a keyword query whose
// keywords are all schema references selects entire tables, which the
// pipeline treats as noise rather than an embedded reference.
func (e *Engine) Configurations(q Query) []Configuration {
	options := make([][]mappingOption, len(q.Keywords))
	for i, k := range q.Keywords {
		options[i] = e.keywordOptions(k)
		if len(options[i]) == 0 {
			// A keyword with no interpretation contributes nothing; give it
			// a single empty option so the cross-product stays non-empty.
			options[i] = []mappingOption{{role: k.Role, weight: 0}}
		}
	}

	var out []Configuration
	assignment := make([]mappingOption, len(q.Keywords))
	var recurse func(i int)
	recurse = func(i int) {
		if len(out) >= e.MaxConfigurations {
			return
		}
		if i == len(q.Keywords) {
			if cfg, ok := e.buildConfiguration(q, assignment); ok {
				out = append(out, cfg)
			}
			return
		}
		for _, opt := range options[i] {
			assignment[i] = opt
			recurse(i + 1)
		}
	}
	recurse(0)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	return out
}

// keywordOptions lists candidate interpretations of one keyword, strongest
// first, capped at MaxMappingsPerKeyword. Derivations are memoized in the
// attached QueryCache (keyed by the database epoch — value matches consult
// column domains); callers must not mutate the returned slice.
func (e *Engine) keywordOptions(k Keyword) []mappingOption {
	if e.Cache == nil || e.Uncached {
		return e.deriveKeywordOptions(k)
	}
	if opts, ok := e.Cache.getMappings(e, k); ok {
		return opts
	}
	opts := e.deriveKeywordOptions(k)
	e.Cache.putMappings(e, k, opts)
	return opts
}

func (e *Engine) deriveKeywordOptions(k Keyword) []mappingOption {
	var opts []mappingOption
	if k.TargetTable != "" {
		// Upstream (signature maps) pinned the mapping: it leads, but the
		// search technique does not fully trust it — a value keyword is
		// also probed against the concept's other referencing columns (a
		// "JW..."-shaped word pinned to Gene.GID might still be a Name).
		// These alternate configurations are exactly the multiple SQL
		// queries per keyword query that [7] generates, and the reason the
		// §6 shared executor has overlapping work to share.
		w := k.Weight
		if w <= 0 {
			w = 0.5
		}
		opts = append(opts, mappingOption{role: k.Role, table: k.TargetTable, column: k.TargetColumn, weight: w})
		if k.Role == RoleValue && k.TargetColumn != "" {
			opts = append(opts, e.alternateValueOptions(k, w)...)
		}
		return opts
	}
	// Derive mappings from NebulaMeta, as [7] does from its metadata.
	for _, m := range e.meta.ConceptMatches(k.Text) {
		if m.Weight < e.MinMappingWeight {
			continue
		}
		role := RoleTable
		if m.Element.Kind == meta.ColumnElement {
			role = RoleColumn
		}
		opts = append(opts, mappingOption{
			role:   role,
			table:  m.Element.Table,
			column: m.Element.Column,
			weight: m.Weight,
		})
	}
	for _, m := range e.meta.ValueMatches(k.Text) {
		if m.Weight < e.MinMappingWeight {
			continue
		}
		opts = append(opts, mappingOption{
			role:   RoleValue,
			table:  m.Column.Table,
			column: m.Column.Column,
			weight: m.Weight,
		})
	}
	sort.SliceStable(opts, func(i, j int) bool { return opts[i].weight > opts[j].weight })
	if len(opts) > e.MaxMappingsPerKeyword {
		opts = opts[:e.MaxMappingsPerKeyword]
	}
	return opts
}

// alternateValueOptions returns probe interpretations of a hinted value
// keyword over the other referencing columns of the same table's concepts,
// at half the hinted weight, capped at two alternates.
func (e *Engine) alternateValueOptions(k Keyword, hintWeight float64) []mappingOption {
	var out []mappingOption
	for _, c := range e.meta.Concepts() {
		if !equalFold(c.Table, k.TargetTable) {
			continue
		}
		for _, col := range c.Columns() {
			if equalFold(col.Column, k.TargetColumn) {
				continue
			}
			colType, ok := e.meta.ColumnType(col)
			if !ok || !relational.CoercibleTo(colType, k.Text) {
				continue
			}
			out = append(out, mappingOption{
				role:   RoleValue,
				table:  col.Table,
				column: col.Column,
				weight: hintWeight / 2,
			})
			if len(out) == 2 {
				return out
			}
		}
	}
	return out
}

// buildConfiguration materializes one assignment into a configuration. The
// assignment must either be table-consistent, or split exactly into concept
// keywords on one table and value keywords on another table linked to it by
// an FK–PK relationship (a join configuration). At least one value
// predicate with positive weight is required.
func (e *Engine) buildConfiguration(q Query, assignment []mappingOption) (Configuration, bool) {
	conceptTable, valueTable := "", ""
	for _, opt := range assignment {
		if opt.table == "" || opt.weight <= 0 {
			continue
		}
		if opt.role == RoleValue {
			if valueTable == "" {
				valueTable = opt.table
			} else if !equalFold(valueTable, opt.table) {
				return Configuration{}, false
			}
		} else {
			if conceptTable == "" {
				conceptTable = opt.table
			} else if !equalFold(conceptTable, opt.table) {
				return Configuration{}, false
			}
		}
	}
	if valueTable == "" {
		return Configuration{}, false
	}
	join := false
	targetTable := valueTable
	if conceptTable != "" && !equalFold(conceptTable, valueTable) {
		// Cross-table: acceptable only across a direct FK–PK link.
		if !e.fkLinked(conceptTable, valueTable) {
			return Configuration{}, false
		}
		join = true
		targetTable = conceptTable
	}
	table := valueTable
	t, ok := e.db.Table(table)
	if !ok {
		return Configuration{}, false
	}

	var preds []relational.Predicate
	totalWeight, n := 0.0, 0
	eqKeys := make(map[string]string) // lowercased column -> operand key of its OpEq predicate
	for i, opt := range assignment {
		if opt.weight <= 0 {
			continue
		}
		totalWeight += opt.weight
		n++
		if opt.role != RoleValue {
			continue // concept keywords select the table, no predicate
		}
		col, ok := t.Schema().Column(opt.column)
		if !ok {
			return Configuration{}, false
		}
		op := relational.OpEq
		if col.FullText {
			op = relational.OpContainsToken
		}
		operand, err := relational.ParseValue(col.Type, q.Keywords[i].Text)
		if err != nil {
			return Configuration{}, false
		}
		if op == relational.OpEq {
			// Two equality predicates on one column with distinct canonical
			// operands (OpEq matches case-insensitively, and Key() is the
			// case-folded canonical form) can never both hold on a tuple, so
			// the configuration is unsatisfiable: it would scan and always
			// produce nothing, and — worse — still count toward the planner's
			// top-k pending upper bound. Drop it from the cross-product.
			// Token-containment predicates are exempt: one text cell can
			// contain both tokens.
			key := strings.ToLower(opt.column)
			if prev, seen := eqKeys[key]; seen {
				if prev != operand.Key() {
					return Configuration{}, false
				}
			} else {
				eqKeys[key] = operand.Key()
			}
		}
		preds = append(preds, relational.Predicate{Column: opt.column, Op: op, Operand: operand})
	}
	if len(preds) == 0 || n == 0 {
		return Configuration{}, false
	}
	conf := totalWeight / float64(n)
	if join {
		conf *= joinDiscount
	}
	tt, ok := e.db.Table(targetTable)
	if !ok {
		return Configuration{}, false
	}
	return Configuration{
		Table:      tt.Name(),
		Structured: relational.Query{Table: t.Name(), Predicates: preds},
		Join:       join,
		Confidence: conf,
	}, true
}

// fkLinked reports whether tables a and b are connected by a direct FK–PK
// relationship in either direction.
func (e *Engine) fkLinked(a, b string) bool {
	ta, okA := e.db.Table(a)
	tb, okB := e.db.Table(b)
	if !okA || !okB {
		return false
	}
	for _, fk := range ta.Schema().ForeignKeys {
		if equalFold(fk.RefTable, b) {
			return true
		}
	}
	for _, fk := range tb.Schema().ForeignKeys {
		if equalFold(fk.RefTable, a) {
			return true
		}
	}
	return false
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}
