package keyword

import (
	"context"
	"testing"
)

// cacheFixture attaches a QueryCache to the determinism fixture's engine,
// mirroring how the discovery layer shares one cache across per-run
// keyword engines.
func cacheFixture(t testing.TB, rows int) *Engine {
	t.Helper()
	e := detFixture(t, rows)
	e.Cache = NewQueryCache(1 << 20)
	return e
}

// TestQueryCacheCrossBatchDeterminism pins the cache's survival contract:
// the in-batch fingerprint dedup dies at batch end, but the QueryCache
// carries results across ExecuteBatchContext calls — and the warm batch
// must stay byte-identical to the cold one on both execution strategies,
// modulo the CacheHits/TuplesScanned counters that account actual work.
func TestQueryCacheCrossBatchDeterminism(t *testing.T) {
	for _, shared := range []bool{false, true} {
		e := cacheFixture(t, 600)
		qs := detQueries(24)
		coldRes, coldStats, err := e.ExecuteBatchContext(context.Background(), qs, shared, Limits{})
		if err != nil {
			t.Fatalf("shared=%t cold: %v", shared, err)
		}
		warmRes, warmStats, err := e.ExecuteBatchContext(context.Background(), qs, shared, Limits{})
		if err != nil {
			t.Fatalf("shared=%t warm: %v", shared, err)
		}
		// The cold batch may already hit on in-batch duplicates (the
		// non-shared path has no shared-executor dedup), but the warm
		// batch must answer strictly more from cache with less scanning.
		if warmStats.CacheHits <= coldStats.CacheHits {
			t.Errorf("shared=%t: warm hits %d, cold hits %d — cache did not survive the batch",
				shared, warmStats.CacheHits, coldStats.CacheHits)
		}
		if warmStats.TuplesScanned >= coldStats.TuplesScanned {
			t.Errorf("shared=%t: warm batch scanned %d tuples, cold scanned %d — hits must shrink actual work",
				shared, warmStats.TuplesScanned, coldStats.TuplesScanned)
		}
		// Render with work counters zeroed on both sides: they
		// legitimately differ between cold and warm; results must not.
		neutral := func(s ExecStats) ExecStats {
			s.CacheHits, s.TuplesScanned, s.TuplesReturned = 0, 0, 0
			return s
		}
		cold := renderBatch(qs, coldRes, neutral(coldStats), nil)
		warm := renderBatch(qs, warmRes, neutral(warmStats), nil)
		if cold != warm {
			t.Errorf("shared=%t: warm batch diverged from cold\ncold: %s\nwarm: %s", shared, cold, warm)
		}
	}
}

// TestQueryCacheInvalidatesOnTableEpoch: a row mutation between batches
// must force re-execution against current data.
func TestQueryCacheInvalidatesOnTableEpoch(t *testing.T) {
	e := cacheFixture(t, 400)
	qs := detQueries(12)
	if _, _, err := e.ExecuteBatch(qs, true); err != nil { // warm
		t.Fatal(err)
	}
	gt := e.db.MustTable("Gene")
	if !gt.DeleteByKey(gt.Rows()[0].ID.Key) {
		t.Fatal("delete failed")
	}
	_, stats, err := e.ExecuteBatch(qs, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Errorf("batch after row delete served %d stale cache hits", stats.CacheHits)
	}
	if stats.TuplesScanned == 0 {
		t.Error("batch after row delete reported no scan work")
	}
}

// TestQueryCacheBudgetBypass: governed executions (any scan/query budget)
// bypass the cache entirely, because truncation points depend on actual
// scan counts — and must neither consult nor poison it.
func TestQueryCacheBudgetBypass(t *testing.T) {
	e := cacheFixture(t, 600)
	qs := detQueries(24)
	if _, _, err := e.ExecuteBatch(qs, true); err != nil { // warm
		t.Fatal(err)
	}
	lim := Limits{MaxScannedRows: 500}
	_, stats, err := e.ExecuteBatchContext(context.Background(), qs, true, lim)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CacheHits != 0 {
		t.Errorf("budgeted batch served %d cache hits; budgets must bypass the cache", stats.CacheHits)
	}

	// The budgeted run must not have poisoned the cache with truncated
	// results: a following unbudgeted batch still matches the original.
	full, fullStats, err := e.ExecuteBatch(qs, true)
	if err != nil {
		t.Fatal(err)
	}
	if fullStats.CacheHits == 0 {
		t.Error("unbudgeted batch after a budgeted one reported no hits")
	}
	base, baseStats, err := func() (map[string][]Result, ExecStats, error) {
		fresh := detFixture(t, 600)
		return fresh.ExecuteBatch(qs, true)
	}()
	if err != nil {
		t.Fatal(err)
	}
	neutral := func(s ExecStats) ExecStats {
		s.CacheHits, s.TuplesScanned, s.TuplesReturned = 0, 0, 0
		return s
	}
	if got, want := renderBatch(qs, full, neutral(fullStats), nil), renderBatch(qs, base, neutral(baseStats), nil); got != want {
		t.Errorf("cache poisoned by budgeted run\ngot:  %s\nwant: %s", got, want)
	}
}
