package keyword

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// runPool executes n tasks on up to workers goroutines. Tasks are handed
// out through an atomic counter; once ctx is cancelled workers stop
// picking up new tasks and the pool drains (tasks already running finish).
// Every task must write only to its own result slots. workers <= 1 runs
// the tasks inline, with the same early exit on cancellation.
//
// A panic inside a worker is captured and re-raised on the calling
// goroutine after the drain, so callers observe the sequential
// panic-on-my-stack behavior and the engine's public boundary can convert
// it to ErrInternal instead of the process dying inside a pool goroutine.
func runPool(ctx context.Context, n, workers int, task func(int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			task(i)
		}
		return
	}
	var (
		next      atomic.Int64
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicked  any
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicOnce.Do(func() { panicked = r })
						}
					}()
					task(i)
				}()
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(fmt.Sprintf("keyword: worker panic: %v", panicked))
	}
}
