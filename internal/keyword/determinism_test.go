package keyword

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"nebula/internal/meta"
	"nebula/internal/relational"
)

// detFixture builds a Gene table large enough that shared scans split into
// multiple row segments, with both indexed (GID) and unindexed (Family)
// access paths, plus the metadata to interpret hinted keywords.
func detFixture(t testing.TB, rows int) *Engine {
	t.Helper()
	db := relational.NewDatabase()
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString, Indexed: true},
			{Name: "Family", Type: relational.TypeString}, // unindexed: forces shared scans
			{Name: "Length", Type: relational.TypeInt},
		},
		PrimaryKey: "GID",
	}
	if _, err := db.CreateTable(gene); err != nil {
		t.Fatal(err)
	}
	gt := db.MustTable("Gene")
	for i := 0; i < rows; i++ {
		_, err := gt.Insert([]relational.Value{
			relational.String(fmt.Sprintf("JW%05d", i)),
			relational.String(fmt.Sprintf("gen%03d", i%97)),
			relational.String(fmt.Sprintf("F%d", i%23)),
			relational.Int(int64(300 + i%1700)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	repo := meta.NewRepository(db, nil)
	if err := repo.AddConcept(&meta.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}, {"Family"}},
	}); err != nil {
		t.Fatal(err)
	}
	return NewEngine(db, repo)
}

// detQueries builds a batch mixing scan-path (Family) and index-path (GID)
// queries, with deliberate duplicates so the shared executor has work to
// dedupe.
func detQueries(n int) []Query {
	qs := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		var k Keyword
		switch i % 3 {
		case 0, 1: // duplicate family probes across the batch
			k = Keyword{Text: fmt.Sprintf("F%d", i%11), Role: RoleValue,
				TargetTable: "Gene", TargetColumn: "Family", Weight: 0.9}
		default:
			k = Keyword{Text: fmt.Sprintf("JW%05d", (i*37)%500), Role: RoleValue,
				TargetTable: "Gene", TargetColumn: "GID", Weight: 0.8}
		}
		qs = append(qs, Query{ID: fmt.Sprintf("q%03d", i), Weight: 1, Keywords: []Keyword{k}})
	}
	return qs
}

// renderBatch folds a batch outcome into one canonical string. The
// scheduling-only stats fields (Workers, ParallelBatches) are zeroed: they
// legitimately differ across worker counts; everything else must not.
func renderBatch(qs []Query, res map[string][]Result, stats ExecStats, err error) string {
	var b strings.Builder
	for _, q := range qs {
		fmt.Fprintf(&b, "%s:", q.ID)
		for _, r := range res[q.ID] {
			fmt.Fprintf(&b, " %v=%.9f@%s", r.Tuple.ID, r.Confidence, r.Query)
		}
		b.WriteByte('\n')
	}
	st := stats
	st.Workers, st.ParallelBatches = 0, 0
	fmt.Fprintf(&b, "stats=%+v err=%v\n", st, err)
	return b.String()
}

// TestExecuteBatchDeterministicAcrossWorkers checks the tentpole contract:
// ExecuteBatchContext output is byte-identical at parallelism 1, 2, 3, and
// 8, on both execution strategies, both ungoverned and under a live
// (uncancelled) context.
func TestExecuteBatchDeterministicAcrossWorkers(t *testing.T) {
	e := detFixture(t, 3000)
	qs := detQueries(48)
	for _, shared := range []bool{false, true} {
		baseRes, baseStats, baseErr := e.ExecuteBatchContext(context.Background(), qs, shared, Limits{})
		if baseErr != nil {
			t.Fatalf("shared=%v: %v", shared, baseErr)
		}
		if shared && baseStats.SharedQueries == 0 {
			t.Fatalf("fixture produced no shared queries; batch does not exercise dedup")
		}
		base := renderBatch(qs, baseRes, baseStats, baseErr)

		// Governed baseline (cancellable context, no budget): the shared
		// path chunks its scans, so its stats legitimately differ from the
		// single-batch ungoverned run — but its results must not.
		govCtx, govCancel := context.WithCancel(context.Background())
		govRes, govStats, govErr := e.ExecuteBatchContext(govCtx, qs, shared, Limits{})
		govCancel()
		if govErr != nil {
			t.Fatalf("shared=%v governed: %v", shared, govErr)
		}
		govBase := renderBatch(qs, govRes, govStats, govErr)
		if onlyResults(base) != onlyResults(govBase) {
			t.Fatalf("shared=%v: governed sequential results differ from ungoverned", shared)
		}

		for _, workers := range []int{2, 3, 8} {
			// Ungoverned parallel.
			res, stats, err := e.ExecuteBatchContext(context.Background(), qs, shared, Limits{MaxWorkers: workers})
			if got := renderBatch(qs, res, stats, err); got != base {
				t.Errorf("shared=%v workers=%d (ungoverned): output diverged\n--- workers=1\n%s--- workers=%d\n%s",
					shared, workers, base, workers, got)
			}
			wantWorkers := workers
			if g := runtime.GOMAXPROCS(0); wantWorkers > g {
				wantWorkers = g
			}
			if wantWorkers < 1 {
				wantWorkers = 1
			}
			if stats.Workers != wantWorkers {
				t.Errorf("shared=%v workers=%d: stats.Workers = %d, want %d", shared, workers, stats.Workers, wantWorkers)
			}
			// Governed parallel: compared against the governed sequential
			// baseline, whose chunking it must reproduce exactly.
			ctx, cancel := context.WithCancel(context.Background())
			res, stats, err = e.ExecuteBatchContext(ctx, qs, shared, Limits{MaxWorkers: workers})
			cancel()
			if got := renderBatch(qs, res, stats, err); got != govBase {
				t.Errorf("shared=%v workers=%d (governed): output diverged\n--- workers=1\n%s--- workers=%d\n%s",
					shared, workers, govBase, workers, got)
			}
		}
	}
}

// TestExecuteBatchDeterministicUnderBudget checks the harder half of the
// contract: when MaxScannedRows truncates the run, the truncation point,
// the partial results, and the Degraded reasons are identical at every
// worker count.
func TestExecuteBatchDeterministicUnderBudget(t *testing.T) {
	e := detFixture(t, 3000)
	qs := detQueries(48)
	for _, shared := range []bool{false, true} {
		for _, budget := range []int{1, 3000, 7000, 50000} {
			lim := Limits{MaxScannedRows: budget}
			baseRes, baseStats, baseErr := e.ExecuteBatchContext(context.Background(), qs, shared, lim)
			if baseErr != nil {
				t.Fatalf("shared=%v budget=%d: %v", shared, budget, baseErr)
			}
			base := renderBatch(qs, baseRes, baseStats, baseErr)
			if budget <= 7000 && len(baseStats.Degraded) == 0 {
				t.Fatalf("shared=%v budget=%d: run was not truncated; test exercises nothing", shared, budget)
			}
			for _, workers := range []int{2, 3, 8} {
				lim := Limits{MaxScannedRows: budget, MaxWorkers: workers}
				res, stats, err := e.ExecuteBatchContext(context.Background(), qs, shared, lim)
				if got := renderBatch(qs, res, stats, err); got != base {
					t.Errorf("shared=%v budget=%d workers=%d: truncated output diverged\n--- workers=1\n%s--- workers=%d\n%s",
						shared, budget, workers, base, workers, got)
				}
			}
		}
	}
}

// TestExecuteBatchCancellationDrains checks that cancelling mid-batch at
// any parallelism returns the typed context error and a consistent prefix:
// every returned result set matches the ungoverned run's for that query.
func TestExecuteBatchCancellationDrains(t *testing.T) {
	e := detFixture(t, 3000)
	qs := detQueries(48)
	full, _, err := e.ExecuteBatch(qs, true)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already cancelled: the batch must drain immediately
		res, _, err := e.ExecuteBatchContext(ctx, qs, true, Limits{MaxWorkers: workers})
		if err != context.Canceled {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		for id, rs := range res {
			if len(rs) > 0 && renderOne(rs) != renderOne(full[id]) {
				t.Errorf("workers=%d: partial results for %s are not a prefix of the full run", workers, id)
			}
		}
	}
}

// onlyResults strips the trailing stats line from a renderBatch string,
// keeping just the per-query result lines.
func onlyResults(rendered string) string {
	if i := strings.LastIndex(rendered, "stats="); i >= 0 {
		return rendered[:i]
	}
	return rendered
}

func renderOne(rs []Result) string {
	var b strings.Builder
	for _, r := range rs {
		fmt.Fprintf(&b, "%v=%.9f@%s ", r.Tuple.ID, r.Confidence, r.Query)
	}
	return b.String()
}

// TestMergeRowsTieKeepsFirstQuery pins the tie rule: when two queries
// produce the same tuple at equal confidence, the result stays attributed
// to the first producer; a strictly higher confidence re-attributes.
func TestMergeRowsTieKeepsFirstQuery(t *testing.T) {
	e := detFixture(t, 10)
	row := e.db.MustTable("Gene").Rows()[0]

	byTuple := make(map[relational.TupleID]int)
	out := e.mergeRows(nil, byTuple, []*relational.Row{row}, 0.5, "first")
	out = e.mergeRows(out, byTuple, []*relational.Row{row}, 0.5, "second")
	if len(out) != 1 {
		t.Fatalf("len(out) = %d", len(out))
	}
	if out[0].Query != "first" || out[0].Confidence != 0.5 {
		t.Errorf("equal-confidence tie re-attributed: got %s@%f, want first@0.5", out[0].Query, out[0].Confidence)
	}

	out = e.mergeRows(out, byTuple, []*relational.Row{row}, 0.9, "third")
	if out[0].Query != "third" || out[0].Confidence != 0.9 {
		t.Errorf("higher confidence did not re-attribute: got %s@%f, want third@0.9", out[0].Query, out[0].Confidence)
	}
}
