package keyword

import (
	"context"
	"strings"
	"sync"

	"nebula/internal/relational"
	"nebula/internal/segment"
	"nebula/internal/textutil"
)

// TieredEngine is the disk-backed variant of the symbol-table technique:
// immutable mmap'd segments (owned by a segment.Store) hold the bulk of
// the inverted index, and a small in-heap tail absorbs everything that
// changed since the last flush. Exactness does not depend on segments
// being fresh — every posting, segment or tail, is re-verified against
// the live row at lookup time, and rows mutated since the last flush are
// re-indexed into the tail before any probe. The result is byte-identical
// to a freshly rebuilt SymbolTableEngine (the two share executeSymbolQuery
// and the verification guarantees the same hit set per term).
type TieredEngine struct {
	db    *relational.Database
	store *segment.Store

	mu sync.RWMutex
	// tail maps a term to the postings added since the last flush.
	tail map[string]map[tailKey]struct{}
	// dirty lists rows mutated since their last (re-)indexing; they are
	// absorbed into the tail before the next probe or flush.
	dirty map[relational.TupleID]struct{}
	// pendingAll forces a full re-index of the database into the tail:
	// set on a fresh/mismatched store before the first flush covers the
	// current contents.
	pendingAll bool

	absorbedRows int
	tailPostings int
}

type tailKey struct {
	id     relational.TupleID
	column string
}

// NewTieredEngine binds the tiered index to db and store. When the store
// carries no usable segments for the current snapshot generation (fresh
// directory, or a boundary mismatch the caller resolved with Reset), pass
// fullPending=true so the whole database is re-indexed into the tail and
// the next flush rebuilds the segment set.
func NewTieredEngine(db *relational.Database, store *segment.Store, fullPending bool) *TieredEngine {
	return &TieredEngine{
		db:         db,
		store:      store,
		tail:       map[string]map[tailKey]struct{}{},
		dirty:      map[relational.TupleID]struct{}{},
		pendingAll: fullPending,
	}
}

// Database returns the bound database.
func (t *TieredEngine) Database() *relational.Database { return t.db }

// Store returns the underlying segment store.
func (t *TieredEngine) Store() *segment.Store { return t.store }

// MarkDirty records that the row changed (insert, delete, or update) and
// must be re-indexed into the tail before the next probe. Called from the
// engine's row-mutation hook, synchronously inside committed mutations —
// including WAL replay, which is how replayed-but-not-flushed rows regain
// index coverage after a restart.
func (t *TieredEngine) MarkDirty(id relational.TupleID) {
	t.mu.Lock()
	t.dirty[id] = struct{}{}
	t.mu.Unlock()
}

// MarkAllPending schedules a full re-index of the database into the tail.
func (t *TieredEngine) MarkAllPending() {
	t.mu.Lock()
	t.pendingAll = true
	t.mu.Unlock()
}

// Absorb re-indexes every pending dirty row into the tail. The engine
// calls it from RefreshSearchIndex (where the heap engine re-gobs the
// whole index, the tiered engine touches only what changed) and before
// flushes; Execute also self-absorbs lazily.
func (t *TieredEngine) Absorb() {
	t.mu.Lock()
	t.absorbLocked()
	t.mu.Unlock()
}

func (t *TieredEngine) absorbLocked() {
	if t.pendingAll {
		t.tail = map[string]map[tailKey]struct{}{}
		t.dirty = map[relational.TupleID]struct{}{}
		t.tailPostings = 0
		for _, name := range t.db.TableNames() {
			tb := t.db.MustTable(name)
			for _, row := range tb.Rows() {
				t.indexRowLocked(row)
				t.absorbedRows++
			}
		}
		t.pendingAll = false
		return
	}
	if len(t.dirty) == 0 {
		return
	}
	for id := range t.dirty {
		t.removeRowLocked(id)
		if row, ok := t.db.Lookup(id); ok {
			t.indexRowLocked(row)
		}
		t.absorbedRows++
	}
	t.dirty = map[relational.TupleID]struct{}{}
}

// indexRowLocked adds the row's current terms to the tail — the same
// extraction the heap engine's Rebuild performs: full-text columns yield
// per-value-deduplicated tokens, other string columns their whole
// lower-cased value.
func (t *TieredEngine) indexRowLocked(row *relational.Row) {
	tb, ok := t.db.Table(row.ID.Table)
	if !ok {
		return
	}
	schema := tb.Schema()
	for i, col := range schema.Columns {
		if col.Type != relational.TypeString {
			continue
		}
		v := row.Values[i].Str()
		if col.FullText {
			seen := map[string]struct{}{}
			for _, tok := range textutil.Tokenize(v) {
				if _, dup := seen[tok.Lower]; dup {
					continue
				}
				seen[tok.Lower] = struct{}{}
				t.addTailLocked(tok.Lower, tailKey{id: row.ID, column: col.Name})
			}
			continue
		}
		t.addTailLocked(strings.ToLower(v), tailKey{id: row.ID, column: col.Name})
	}
}

func (t *TieredEngine) addTailLocked(term string, k tailKey) {
	set := t.tail[term]
	if set == nil {
		set = map[tailKey]struct{}{}
		t.tail[term] = set
	}
	if _, dup := set[k]; !dup {
		set[k] = struct{}{}
		t.tailPostings++
	}
}

// removeRowLocked drops every tail posting for the row. Linear in the
// tail size; the tail is small by design (everything since last flush).
func (t *TieredEngine) removeRowLocked(id relational.TupleID) {
	for term, set := range t.tail {
		for k := range set {
			if k.id == id {
				delete(set, k)
				t.tailPostings--
			}
		}
		if len(set) == 0 {
			delete(t.tail, term)
		}
	}
}

// verify re-checks that the term still occurs in the row's column. This
// is what lets immutable segments serve a mutable database exactly: a
// stale posting (row deleted, value changed) simply fails verification.
func (t *TieredEngine) verify(k tailKey, term string) (*relational.Row, bool) {
	row, ok := t.db.Lookup(k.id)
	if !ok {
		return nil, false
	}
	tb, ok := t.db.Table(k.id.Table)
	if !ok {
		return nil, false
	}
	schema := tb.Schema()
	for i, col := range schema.Columns {
		if col.Type != relational.TypeString || col.Name != k.column {
			continue
		}
		v := row.Values[i].Str()
		if col.FullText {
			for _, tok := range textutil.Tokenize(v) {
				if tok.Lower == term {
					return row, true
				}
			}
			return nil, false
		}
		if strings.ToLower(v) == term {
			return row, true
		}
		return nil, false
	}
	return nil, false
}

// lookupLocked merges segment and tail postings for term, deduplicates by
// (table, key, column), and verifies each survivor against the live row.
// Caller holds t.mu (read suffices: nothing here mutates the tail).
func (t *TieredEngine) lookupLocked(term string) []symbolHit {
	posts := t.store.Lookup(term, nil)
	var hits []symbolHit
	seen := make(map[tailKey]struct{}, len(posts)+len(t.tail[term]))
	for _, p := range posts {
		k := tailKey{id: relational.TupleID{Table: p.Table, Key: p.Key}, column: p.Column}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if row, ok := t.verify(k, term); ok {
			hits = append(hits, symbolHit{row: row, column: k.column})
		}
	}
	for k := range t.tail[term] {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		if row, ok := t.verify(k, term); ok {
			hits = append(hits, symbolHit{row: row, column: k.column})
		}
	}
	return hits
}

// Execute implements Searcher.
func (t *TieredEngine) Execute(q Query) ([]Result, ExecStats, error) {
	t.ensureAbsorbed()
	t.mu.RLock()
	defer t.mu.RUnlock()
	return executeSymbolQuery(q, t.lookupLocked)
}

// ensureAbsorbed takes the write lock only when there is pending work.
func (t *TieredEngine) ensureAbsorbed() {
	t.mu.RLock()
	pending := t.pendingAll || len(t.dirty) > 0
	t.mu.RUnlock()
	if pending {
		t.Absorb()
	}
}

// ExecuteBatch implements Searcher.
func (t *TieredEngine) ExecuteBatch(qs []Query, shared bool) (map[string][]Result, ExecStats, error) {
	return t.ExecuteBatchContext(context.Background(), qs, shared, Limits{})
}

// ExecuteBatchContext implements Searcher with the same governance
// behavior as the heap engine.
func (t *TieredEngine) ExecuteBatchContext(ctx context.Context, qs []Query, shared bool, lim Limits) (map[string][]Result, ExecStats, error) {
	return executeSymbolBatch(ctx, qs, shared, lim, t.Execute)
}

// PrepareFlush absorbs pending rows and snapshots the whole tail as a
// flush payload. The caller writes it to a segment (outside the engine
// lock) and, on success, calls CommitFlush with the same payload. Between
// the two calls the tail keeps serving — new mutations only mark rows
// dirty, so the snapshot stays a consistent lower bound of the tail.
func (t *TieredEngine) PrepareFlush() map[string][]segment.Posting {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.absorbLocked()
	if len(t.tail) == 0 {
		return nil
	}
	out := make(map[string][]segment.Posting, len(t.tail))
	for term, set := range t.tail {
		ps := make([]segment.Posting, 0, len(set))
		for k := range set {
			ps = append(ps, segment.Posting{Table: k.id.Table, Column: k.column, Key: k.id.Key})
		}
		out[term] = ps
	}
	return out
}

// CommitFlush removes the flushed postings from the tail: they are now
// served from the new segment. A posting re-added for a row dirtied
// during the flush I/O has the same identity as its flushed twin, so
// dropping it here is safe — the segment copy verifies against the live
// row exactly the same way.
func (t *TieredEngine) CommitFlush(flushed map[string][]segment.Posting) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for term, ps := range flushed {
		set := t.tail[term]
		if set == nil {
			continue
		}
		for _, p := range ps {
			k := tailKey{id: relational.TupleID{Table: p.Table, Key: p.Key}, column: p.Column}
			if _, ok := set[k]; ok {
				delete(set, k)
				t.tailPostings--
			}
		}
		if len(set) == 0 {
			delete(t.tail, term)
		}
	}
}

// TailStats reports the tail's current size: distinct terms, postings,
// rows awaiting absorption, and whether a full re-index is pending.
func (t *TieredEngine) TailStats() (terms, postings, dirtyRows int, fullPending bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.tail), t.tailPostings, len(t.dirty), t.pendingAll
}

var _ Searcher = (*TieredEngine)(nil)
