package keyword

import (
	"testing"

	"nebula/internal/relational"
)

func symbolEngine(t *testing.T) (*relational.Database, *SymbolTableEngine) {
	t.Helper()
	db, _, _ := fixture(t)
	return db, NewSymbolTableEngine(db)
}

func TestSymbolTablePreprocessing(t *testing.T) {
	db, e := symbolEngine(t)
	if e.IndexedRows() != db.TotalRows() {
		t.Errorf("indexed %d rows, want %d", e.IndexedRows(), db.TotalRows())
	}
	if e.Symbols() == 0 {
		t.Fatal("no symbols indexed")
	}
	if e.Database() != db {
		t.Error("Database() wrong")
	}
}

func TestSymbolTableExecute(t *testing.T) {
	_, e := symbolEngine(t)
	q := Query{ID: "q1", Weight: 1, Keywords: []Keyword{
		{Text: "gene", Role: RoleTable, TargetTable: "Gene", Weight: 1},
		{Text: "JW0014", Role: RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.9},
	}}
	rs, stats, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Tuple.MustGet("GID").Str() != "JW0014" {
		t.Fatalf("results = %v", rs)
	}
	if rs[0].Confidence != 0.9 {
		t.Errorf("confidence = %f", rs[0].Confidence)
	}
	if stats.TuplesReturned != 1 {
		t.Errorf("stats = %+v", stats)
	}
}

func TestSymbolTableFindsFullTextTokens(t *testing.T) {
	_, e := symbolEngine(t)
	// "regulation" occurs only inside the publication abstract.
	q := Query{ID: "q2", Weight: 1, Keywords: []Keyword{
		{Text: "regulation", Role: RoleValue, Weight: 0.6},
	}}
	rs, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Tuple.ID.Table != "Publication" {
		t.Fatalf("results = %v", rs)
	}
}

func TestSymbolTableColumnHintDiscount(t *testing.T) {
	_, e := symbolEngine(t)
	// yaaB exists in Gene.Name; a hint pointing at GID halves the credit.
	hinted := Query{ID: "q", Weight: 1, Keywords: []Keyword{
		{Text: "yaaB", Role: RoleValue, TargetColumn: "GID", Weight: 0.8},
	}}
	rs, _, err := e.Execute(hinted)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("hinted mismatch should still return discounted hits")
	}
	foundConf := 0.0
	for _, r := range rs {
		if r.Tuple.ID.Table == "Gene" {
			foundConf = r.Confidence
		}
	}
	if foundConf != 0.4 {
		t.Errorf("discounted confidence = %f, want 0.4", foundConf)
	}
}

func TestSymbolTableConceptOnlyQueryIsEmpty(t *testing.T) {
	_, e := symbolEngine(t)
	q := Query{ID: "q", Weight: 1, Keywords: []Keyword{
		{Text: "gene", Role: RoleTable, Weight: 1},
	}}
	rs, _, err := e.Execute(q)
	if err != nil || rs != nil {
		t.Errorf("concept-only query: %v %v", rs, err)
	}
}

func TestSymbolTableBatchSharing(t *testing.T) {
	_, e := symbolEngine(t)
	q := func(id string) Query {
		return Query{ID: id, Weight: 1, Keywords: []Keyword{
			{Text: "JW0014", Role: RoleValue, TargetColumn: "GID", Weight: 0.9},
		}}
	}
	qs := []Query{q("a"), q("b")}
	res, stats, err := e.ExecuteBatch(qs, true)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SharedQueries != 1 {
		t.Errorf("shared = %d", stats.SharedQueries)
	}
	if len(res["a"]) != 1 || len(res["b"]) != 1 {
		t.Fatalf("results = %v", res)
	}
	if res["b"][0].Query != "b" {
		t.Error("relabeling failed")
	}
	// Unshared path executes both.
	_, stats, err = e.ExecuteBatch(qs, false)
	if err != nil || stats.SharedQueries != 0 || stats.StructuredQueries != 2 {
		t.Errorf("unshared stats = %+v err=%v", stats, err)
	}
}

func TestSymbolTableRebuildAfterDataChange(t *testing.T) {
	db, e := symbolEngine(t)
	gt := db.MustTable("Gene")
	if _, err := gt.Insert([]relational.Value{
		relational.String("JW0099"), relational.String("newG"),
		relational.Int(500), relational.String("F9"),
	}); err != nil {
		t.Fatal(err)
	}
	q := Query{ID: "q", Weight: 1, Keywords: []Keyword{
		{Text: "JW0099", Role: RoleValue, TargetColumn: "GID", Weight: 0.9},
	}}
	rs, _, _ := e.Execute(q)
	if len(rs) != 0 {
		t.Fatal("stale index should miss the new row")
	}
	e.Rebuild()
	rs, _, _ = e.Execute(q)
	if len(rs) != 1 {
		t.Fatalf("rebuilt index missed the new row: %v", rs)
	}
}
