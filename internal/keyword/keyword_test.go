package keyword

import (
	"testing"

	"nebula/internal/meta"
	"nebula/internal/relational"
)

// fixture builds the running-example database with NebulaMeta populated the
// way §8.1 describes (concepts Gene and Protein; ID and Name referencing
// columns; regex patterns over Gene.GID and Gene.Name).
func fixture(t testing.TB) (*relational.Database, *meta.Repository, *Engine) {
	t.Helper()
	db := relational.NewDatabase()
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString, Indexed: true},
			{Name: "Length", Type: relational.TypeInt},
			{Name: "Family", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	}
	protein := &relational.Schema{
		Name: "Protein",
		Columns: []relational.Column{
			{Name: "PID", Type: relational.TypeString, Indexed: true},
			{Name: "PName", Type: relational.TypeString, Indexed: true},
			{Name: "PType", Type: relational.TypeString},
			{Name: "GeneID", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey:  "PID",
		ForeignKeys: []relational.ForeignKey{{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"}},
	}
	pub := &relational.Schema{
		Name: "Publication",
		Columns: []relational.Column{
			{Name: "PubID", Type: relational.TypeString},
			{Name: "Abstract", Type: relational.TypeString, FullText: true},
		},
		PrimaryKey: "PubID",
	}
	for _, s := range []*relational.Schema{gene, protein, pub} {
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	gt := db.MustTable("Gene")
	for _, g := range [][]relational.Value{
		{relational.String("JW0013"), relational.String("grpC"), relational.Int(1130), relational.String("F1")},
		{relational.String("JW0014"), relational.String("groP"), relational.Int(1916), relational.String("F6")},
		{relational.String("JW0019"), relational.String("yaaB"), relational.Int(905), relational.String("F3")},
		{relational.String("JW0012"), relational.String("yaaI"), relational.Int(404), relational.String("F1")},
	} {
		if _, err := gt.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	pt := db.MustTable("Protein")
	if _, err := pt.Insert([]relational.Value{
		relational.String("P00001"), relational.String("G-Actin"),
		relational.String("structural"), relational.String("JW0013"),
	}); err != nil {
		t.Fatal(err)
	}
	pubT := db.MustTable("Publication")
	if _, err := pubT.Insert([]relational.Value{
		relational.String("PUB1"), relational.String("study of yaaB and G-Actin regulation"),
	}); err != nil {
		t.Fatal(err)
	}

	repo := meta.NewRepository(db, nil)
	for _, c := range []*meta.Concept{
		{Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}}},
		{Name: "Protein", Table: "Protein", ReferencedBy: [][]string{{"PID"}, {"PName", "PType"}}},
	} {
		if err := repo.AddConcept(c); err != nil {
			t.Fatal(err)
		}
	}
	if err := repo.SetPattern(meta.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		t.Fatal(err)
	}
	if err := repo.SetPattern(meta.ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`); err != nil {
		t.Fatal(err)
	}
	return db, repo, NewEngine(db, repo)
}

func TestExecuteTypeTwoMatch(t *testing.T) {
	_, _, e := fixture(t)
	// "gene JW0014" — a Type-2 match (table + value).
	q := Query{ID: "q1", Weight: 1, Keywords: []Keyword{
		{Text: "gene", Role: RoleTable},
		{Text: "JW0014", Role: RoleValue},
	}}
	rs, stats, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 {
		t.Fatalf("results = %v", rs)
	}
	if rs[0].Tuple.MustGet("GID").Str() != "JW0014" {
		t.Errorf("wrong tuple: %v", rs[0].Tuple)
	}
	if rs[0].Confidence <= 0 || rs[0].Confidence > 1 {
		t.Errorf("confidence = %f", rs[0].Confidence)
	}
	if stats.StructuredQueries == 0 {
		t.Error("no structured queries executed")
	}
}

func TestExecuteValueByName(t *testing.T) {
	_, _, e := fixture(t)
	q := Query{ID: "q2", Weight: 1, Keywords: []Keyword{
		{Text: "gene", Role: RoleTable},
		{Text: "yaaB", Role: RoleValue},
	}}
	rs, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range rs {
		if r.Tuple.MustGet("Name").Str() == "yaaB" {
			found = true
		}
	}
	if !found {
		t.Fatalf("yaaB gene not found: %v", rs)
	}
}

func TestExecuteWithHints(t *testing.T) {
	_, _, e := fixture(t)
	// Pinned mapping straight to Gene.GID, as the signature maps produce.
	q := Query{ID: "q3", Weight: 1, Keywords: []Keyword{
		{Text: "gene", Role: RoleTable, TargetTable: "Gene", Weight: 1},
		{Text: "JW0019", Role: RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.95},
	}}
	rs, stats, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Tuple.MustGet("GID").Str() != "JW0019" {
		t.Fatalf("results = %v", rs)
	}
	// The hinted configuration leads, plus alternate value probes over the
	// concept's other referencing columns (here: Gene.Name).
	if stats.StructuredQueries < 1 || stats.StructuredQueries > 3 {
		t.Errorf("structured queries = %d, want 1..3", stats.StructuredQueries)
	}
	cfgs := e.Configurations(q)
	if len(cfgs) == 0 || cfgs[0].Structured.Predicates[0].Column != "GID" {
		t.Errorf("hinted configuration not ranked first: %v", cfgs)
	}
}

func TestConfigurationsRequireValuePredicate(t *testing.T) {
	_, _, e := fixture(t)
	q := Query{ID: "q4", Weight: 1, Keywords: []Keyword{
		{Text: "gene", Role: RoleTable},
		{Text: "name", Role: RoleColumn},
	}}
	if cfgs := e.Configurations(q); len(cfgs) != 0 {
		t.Errorf("concept-only query produced configurations: %v", cfgs)
	}
}

func TestJoinConfiguration(t *testing.T) {
	_, _, e := fixture(t)
	// "protein JW0013": the concept names Protein, the value belongs to
	// Gene.GID, and Protein —FK→ Gene. The engine builds a join
	// configuration producing the protein(s) of that gene.
	q := Query{ID: "q5", Weight: 1, Keywords: []Keyword{
		{Text: "protein", Role: RoleTable, TargetTable: "Protein", Weight: 1},
		{Text: "JW0013", Role: RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.9},
	}}
	cfgs := e.Configurations(q)
	joins := 0
	for _, cfg := range cfgs {
		if cfg.Join {
			joins++
			if cfg.Table != "Protein" || cfg.Structured.Table != "Gene" {
				t.Errorf("join shape wrong: %+v", cfg)
			}
		}
	}
	if joins == 0 {
		t.Fatalf("no join configuration: %v", cfgs)
	}
	rs, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var protein *Result
	for i := range rs {
		if rs[i].Tuple.ID.Table == "Protein" {
			protein = &rs[i]
		}
	}
	if protein == nil {
		t.Fatalf("join produced no protein: %v", rs)
	}
	if protein.Tuple.MustGet("PName").Str() != "G-Actin" {
		t.Errorf("wrong protein: %v", protein.Tuple)
	}
	// Join results are discounted below a same-confidence direct match.
	if protein.Confidence >= 0.9 {
		t.Errorf("join confidence %f not discounted", protein.Confidence)
	}
	// The shared path yields the same results.
	shared, _, err := e.ExecuteBatch([]Query{q}, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(shared[q.ID]) != len(rs) {
		t.Errorf("shared join results differ: %d vs %d", len(shared[q.ID]), len(rs))
	}
}

func TestCrossTableWithoutFKIsRejected(t *testing.T) {
	db, repo, _ := fixture(t)
	// Publication has no FK relationship with Gene: a publication-concept +
	// gene-value assignment stays invalid.
	if err := repo.AddConcept(&meta.Concept{
		Name: "Publication", Table: "Publication", ReferencedBy: [][]string{{"Abstract"}},
	}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, repo)
	q := Query{ID: "q", Weight: 1, Keywords: []Keyword{
		{Text: "publication", Role: RoleTable, TargetTable: "Publication", Weight: 1},
		{Text: "JW0013", Role: RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.9},
	}}
	for _, cfg := range e.Configurations(q) {
		if cfg.Join && cfg.Table == "Publication" {
			t.Errorf("unlinked cross-table configuration accepted: %+v", cfg)
		}
	}
}

func TestExecuteFullTextConfiguration(t *testing.T) {
	db, repo, _ := fixture(t)
	if err := repo.AddConcept(&meta.Concept{
		Name: "Publication", Table: "Publication", ReferencedBy: [][]string{{"Abstract"}},
	}); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(db, repo)
	q := Query{ID: "q6", Weight: 1, Keywords: []Keyword{
		{Text: "publication", Role: RoleTable, TargetTable: "Publication", Weight: 1},
		{Text: "regulation", Role: RoleValue, TargetTable: "Publication", TargetColumn: "Abstract", Weight: 0.8},
	}}
	rs, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 1 || rs[0].Tuple.ID.Table != "Publication" {
		t.Fatalf("full-text results = %v", rs)
	}
}

func TestIncludeRelatedExpansion(t *testing.T) {
	_, _, e := fixture(t)
	e.IncludeRelated = true
	q := Query{ID: "q7", Weight: 1, Keywords: []Keyword{
		{Text: "gene", Role: RoleTable, TargetTable: "Gene", Weight: 1},
		{Text: "JW0013", Role: RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.95},
	}}
	rs, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	var geneConf, protConf float64
	for _, r := range rs {
		switch r.Tuple.ID.Table {
		case "Gene":
			geneConf = r.Confidence
		case "Protein":
			protConf = r.Confidence
		}
	}
	if protConf == 0 {
		t.Fatalf("related protein not included: %v", rs)
	}
	if protConf >= geneConf {
		t.Errorf("related tuple confidence %f not discounted vs %f", protConf, geneConf)
	}
}

func TestExecuteBatchSharedMatchesIsolated(t *testing.T) {
	_, _, e := fixture(t)
	qs := []Query{
		{ID: "a", Weight: 1, Keywords: []Keyword{
			{Text: "gene", Role: RoleTable},
			{Text: "JW0014", Role: RoleValue},
		}},
		{ID: "b", Weight: 0.9, Keywords: []Keyword{
			{Text: "gene", Role: RoleTable},
			{Text: "JW0014", Role: RoleValue},
		}},
		{ID: "c", Weight: 0.8, Keywords: []Keyword{
			{Text: "gene", Role: RoleTable},
			{Text: "yaaI", Role: RoleValue},
		}},
	}
	iso, isoStats, err := e.ExecuteBatch(qs, false)
	if err != nil {
		t.Fatal(err)
	}
	sh, shStats, err := e.ExecuteBatch(qs, true)
	if err != nil {
		t.Fatal(err)
	}
	// Same logical results per query.
	for _, q := range qs {
		if len(iso[q.ID]) != len(sh[q.ID]) {
			t.Errorf("query %s: isolated %d results, shared %d", q.ID, len(iso[q.ID]), len(sh[q.ID]))
		}
		isoSet := map[relational.TupleID]float64{}
		for _, r := range iso[q.ID] {
			isoSet[r.Tuple.ID] = r.Confidence
		}
		for _, r := range sh[q.ID] {
			if c, ok := isoSet[r.Tuple.ID]; !ok || c != r.Confidence {
				t.Errorf("query %s: tuple %v mismatch (shared %f, isolated %f)", q.ID, r.Tuple.ID, r.Confidence, c)
			}
		}
	}
	// Sharing must reduce executed structured queries: a and b are identical.
	if shStats.StructuredQueries >= isoStats.StructuredQueries {
		t.Errorf("sharing executed %d queries, isolated %d", shStats.StructuredQueries, isoStats.StructuredQueries)
	}
	if shStats.SharedQueries == 0 {
		t.Error("no shared queries counted")
	}
}

func TestNaiveSearchIsNoisy(t *testing.T) {
	db, _, e := fixture(t)
	text := "From the exp, it seems this gene is correlated to JW0014 of grpC and structural family F1"
	rs, stats := e.NaiveSearch(text)
	// Naive scans the entire database...
	if stats.TuplesScanned != db.TotalRows() {
		t.Errorf("scanned %d, want %d", stats.TuplesScanned, db.TotalRows())
	}
	// ...and returns far more tuples than the two real references.
	if len(rs) < 3 {
		t.Errorf("naive returned %d tuples; expected noisy result", len(rs))
	}
	for _, r := range rs {
		if r.Confidence <= 0 || r.Confidence > 1 {
			t.Errorf("confidence out of range: %f", r.Confidence)
		}
		if r.Query != "naive" {
			t.Errorf("query label = %q", r.Query)
		}
	}
}

func TestNaiveSearchEmptyText(t *testing.T) {
	_, _, e := fixture(t)
	rs, stats := e.NaiveSearch("the of and")
	if len(rs) != 0 || stats.TuplesScanned != 0 {
		t.Errorf("stop-word-only text produced work: %v %+v", rs, stats)
	}
}

func TestExecStatsAdd(t *testing.T) {
	a := ExecStats{StructuredQueries: 1, SharedQueries: 2, TuplesScanned: 3, TuplesReturned: 4}
	a.Add(ExecStats{StructuredQueries: 10, SharedQueries: 20, TuplesScanned: 30, TuplesReturned: 40})
	if a.StructuredQueries != 11 || a.SharedQueries != 22 || a.TuplesScanned != 33 || a.TuplesReturned != 44 {
		t.Errorf("Add: %+v", a)
	}
}

func TestRoleString(t *testing.T) {
	if RoleValue.String() != "value" || RoleTable.String() != "table" || RoleColumn.String() != "column" {
		t.Error("Role.String wrong")
	}
	q := Query{ID: "x", Weight: 0.5, Keywords: []Keyword{{Text: "gene"}, {Text: "JW0001"}}}
	if q.String() == "" {
		t.Error("Query.String empty")
	}
}
