package keyword

import (
	"testing"

	"nebula/internal/meta"
	"nebula/internal/relational"
)

// contradictoryBatch hand-builds a PlannedBatch containing one
// satisfiable fingerprint (low gain) and one self-contradictory
// same-column equality cross-product fingerprint (high gain). The mapper
// drops such configurations at build time, so the only way to regression-
// test the bound layer's own guard is to inject one past it — exactly
// what a batch built by other means could contain.
func contradictoryBatch(t *testing.T) (*PlannedBatch, float64, float64) {
	t.Helper()
	_, _, e := fixture(t)

	sat := relational.Query{Table: "Gene", Predicates: []relational.Predicate{
		{Column: "Name", Op: relational.OpEq, Operand: relational.String("thrA")},
	}}
	contra := relational.Query{Table: "Gene", Predicates: []relational.Predicate{
		{Column: "Name", Op: relational.OpEq, Operand: relational.String("thrA")},
		{Column: "Name", Op: relational.OpEq, Operand: relational.String("yaaB")},
	}}

	const satGain, contraGain = 0.2, 0.9
	q := Query{ID: "q", Weight: 1}
	cfgs := []Configuration{
		{Table: "Gene", Structured: sat, Confidence: satGain},
		{Table: "Gene", Structured: contra, Confidence: contraGain},
	}
	pb := &PlannedBatch{
		e:          e,
		qs:         []Query{q},
		plans:      [][]Configuration{cfgs},
		structured: map[string]relational.Query{},
		wanted:     map[string][]planNeed{},
		rowSets:    map[string][]*relational.Row{},
		executed:   map[string]struct{}{},
		harvested:  map[string][]*relational.Row{},
		merged:     map[int][]Result{},
	}
	for _, cfg := range cfgs {
		fp := cfg.Structured.Fingerprint()
		pb.ordered = append(pb.ordered, fp)
		pb.structured[fp] = cfg.Structured
		pb.wanted[fp] = append(pb.wanted[fp], planNeed{queryIdx: 0, conf: cfg.Confidence})
	}
	return pb, satGain, contraGain
}

// TestUnsatisfiableEq pins the predicate classifier: same column with
// distinct canonical operands is contradictory; same operand (even with
// different case), different columns, and token containment are not.
func TestUnsatisfiableEq(t *testing.T) {
	eq := func(col, v string) relational.Predicate {
		return relational.Predicate{Column: col, Op: relational.OpEq, Operand: relational.String(v)}
	}
	cases := []struct {
		name  string
		preds []relational.Predicate
		want  bool
	}{
		{"distinct operands same column", []relational.Predicate{eq("Name", "a"), eq("Name", "b")}, true},
		{"same operand twice", []relational.Predicate{eq("Name", "a"), eq("Name", "a")}, false},
		{"case-folded operands collide", []relational.Predicate{eq("Name", "ThrA"), eq("Name", "thra")}, false},
		{"different columns", []relational.Predicate{eq("Name", "a"), eq("GID", "b")}, false},
		{"column case-insensitive", []relational.Predicate{eq("Name", "a"), eq("NAME", "b")}, true},
		{"tokens exempt", []relational.Predicate{
			{Column: "Abstract", Op: relational.OpContainsToken, Operand: relational.String("a")},
			{Column: "Abstract", Op: relational.OpContainsToken, Operand: relational.String("b")},
		}, false},
		{"no predicates", nil, false},
	}
	for _, tc := range cases {
		if got := unsatisfiableEq(relational.Query{Table: "Gene", Predicates: tc.preds}); got != tc.want {
			t.Errorf("%s: unsatisfiableEq=%v want %v", tc.name, got, tc.want)
		}
	}
}

// TestPendingBoundExcludesContradictoryConfigs: the pending bound must
// not credit a fingerprint execution would drop. The concrete prune this
// buys: a held candidate at confidence 0.5 is safe to emit iff the bound
// is below 0.5 — the satisfiable gain (0.2) is, the naive sum including
// the contradictory fingerprint (1.1) is not. Before the fix the bound
// was the naive sum and the prune could not fire.
func TestPendingBoundExcludesContradictoryConfigs(t *testing.T) {
	pb, satGain, contraGain := contradictoryBatch(t)
	b := pb.PendingBound()

	naive := satGain + contraGain
	if b.Total >= naive {
		t.Fatalf("Total=%v did not tighten below naive sum %v", b.Total, naive)
	}
	if b.Total != satGain {
		t.Fatalf("Total=%v want exactly the satisfiable gain %v", b.Total, satGain)
	}
	if got := b.PerTable["gene"]; got != satGain {
		t.Fatalf("PerTable[gene]=%v want %v", got, satGain)
	}
	// The prune decision itself: a candidate at 0.5 beats everything
	// pending under the fixed bound, but not under the naive one.
	const held = 0.5
	if !(b.Total < held) {
		t.Fatalf("prune cannot fire: bound %v >= held %v", b.Total, held)
	}
	if naive < held {
		t.Fatal("test is vacuous: naive bound would also have pruned")
	}

	// Executing the satisfiable fingerprint drains the bound to zero —
	// the contradictory one must not keep it alive.
	pb.executed[pb.ordered[0]] = struct{}{}
	if rest := pb.PendingBound(); rest.Total != 0 || len(rest.PerTable) != 0 {
		t.Fatalf("after executing the satisfiable fingerprint: %+v", rest)
	}
}

// TestEstimatesExcludeContradictoryConfigs: per-query cost and upper
// bound skip unsatisfiable configurations (they never execute), while
// Configs still reports the raw plan size.
func TestEstimatesExcludeContradictoryConfigs(t *testing.T) {
	pb, satGain, _ := contradictoryBatch(t)
	_, repo, _ := fixture(t)
	est := pb.Estimates(meta.NewEstimator(repo))
	if len(est) != 1 {
		t.Fatalf("estimates = %v", est)
	}
	if est[0].UpperBound != satGain {
		t.Fatalf("UpperBound=%v want %v (contradictory config's 0.9 must not win)", est[0].UpperBound, satGain)
	}
	if est[0].Configs != 2 {
		t.Fatalf("Configs=%d want raw plan size 2", est[0].Configs)
	}

	satOnly := &PlannedBatch{e: pb.e, qs: pb.qs, plans: [][]Configuration{pb.plans[0][:1]}}
	want := satOnly.Estimates(meta.NewEstimator(repo))
	if est[0].Cost != want[0].Cost {
		t.Fatalf("Cost=%v want the satisfiable-only cost %v", est[0].Cost, want[0].Cost)
	}
}
