package keyword

import (
	"context"
	"fmt"

	"nebula/internal/meta"
	"nebula/internal/relational"
	"nebula/internal/trace"
)

// Engine executes keyword queries against a database using NebulaMeta for
// keyword-to-schema mapping.
type Engine struct {
	db   *relational.Database
	meta *meta.Repository

	// MaxMappingsPerKeyword caps candidate interpretations per keyword.
	MaxMappingsPerKeyword int
	// MaxConfigurations caps configurations per query.
	MaxConfigurations int
	// MinMappingWeight discards keyword interpretations weaker than this
	// when deriving mappings from metadata (hinted mappings are exempt).
	MinMappingWeight float64
	// IncludeRelated, when set, expands each matched tuple with its direct
	// FK–PK neighbors at RelatedDiscount of the tuple's confidence.
	IncludeRelated bool
	// RelatedDiscount is the confidence multiplier for related tuples.
	RelatedDiscount float64
	// Cache, when non-nil, memoizes structured-query results and mapper
	// weights across batches. The discovery layer attaches its shared
	// QueryCache here — only for searches over the full database, never
	// for a focal-spreading miniDB.
	Cache *QueryCache
	// Uncached disables all result caching for this engine's executions,
	// including the database's scan cache. Set under scan budgets (budget
	// truncation points depend on actual scan counts) and per-request
	// cache opt-out.
	Uncached bool
}

// NewEngine builds a keyword search engine over db. The repository supplies
// the metadata; it may be bound to a different (larger) database with the
// same schema — the focal-spreading search exploits exactly that by running
// the engine over a miniDB while keeping the full database's metadata.
func NewEngine(db *relational.Database, repo *meta.Repository) *Engine {
	return &Engine{
		db:                    db,
		meta:                  repo,
		MaxMappingsPerKeyword: 3,
		MaxConfigurations:     16,
		MinMappingWeight:      0.3,
		RelatedDiscount:       0.4,
	}
}

// Database returns the engine's bound database.
func (e *Engine) Database() *relational.Database { return e.db }

// Execute runs one keyword query: it enumerates configurations, executes
// each configuration's structured query, and returns the union of produced
// tuples. A tuple satisfying several configurations keeps the highest
// confidence (the engine's "internal criteria", §6.1).
func (e *Engine) Execute(q Query) ([]Result, ExecStats, error) {
	return e.execute(context.Background(), q, !e.Uncached)
}

func (e *Engine) execute(ctx context.Context, q Query, cached bool) ([]Result, ExecStats, error) {
	var stats ExecStats
	configs := e.Configurations(q)
	// No size hint: most keyword queries produce zero or a handful of
	// tuples, and an unhinted map defers bucket allocation until first use.
	byTuple := make(map[relational.TupleID]int)
	var out []Result
	for _, cfg := range configs {
		rows, st, err := e.dbSelect(ctx, cfg.Structured, cached)
		if err != nil {
			return nil, stats, fmt.Errorf("execute %s: %w", q.ID, err)
		}
		stats.StructuredQueries++
		stats.TuplesScanned += st.TuplesScanned
		stats.CacheHits += st.CacheHits
		if cfg.Join {
			rows = e.joinProject(rows, cfg.Table)
		}
		stats.TuplesReturned += len(rows)
		out = e.mergeRows(out, byTuple, rows, cfg.Confidence, q.ID)
	}
	return out, stats, nil
}

// dbSelect answers one structured query, going through the query cache
// when caching is allowed for this execution.
func (e *Engine) dbSelect(ctx context.Context, q relational.Query, cached bool) ([]*relational.Row, relational.SelectStats, error) {
	if !cached {
		return e.db.SelectUncachedContext(ctx, q)
	}
	if e.Cache == nil {
		return e.db.SelectContext(ctx, q)
	}
	if rows, ok := e.Cache.getResults(e.db, q); ok {
		return rows, relational.SelectStats{TuplesReturned: len(rows), CacheHits: 1}, nil
	}
	rows, st, err := e.db.SelectContext(ctx, q)
	if err == nil {
		e.Cache.putResults(e.db, q, rows)
	}
	return rows, st, err
}

// dbSelectMulti answers a batch of structured queries: cached entries
// fill their slots directly, the remainder executes through the shared
// multi-query path, and fresh results populate the cache.
func (e *Engine) dbSelectMulti(ctx context.Context, batch []relational.Query, workers int, cached bool) ([][]*relational.Row, relational.SelectStats, error) {
	if !cached {
		return e.db.SelectMultiUncachedContext(ctx, batch, workers)
	}
	if e.Cache == nil {
		return e.db.SelectMultiWorkersContext(ctx, batch, workers)
	}
	sets := make([][]*relational.Row, len(batch))
	var stats relational.SelectStats
	var missIdx []int
	var miss []relational.Query
	for i, q := range batch {
		if rows, ok := e.Cache.getResults(e.db, q); ok {
			sets[i] = rows
			stats.CacheHits++
			stats.TuplesReturned += len(rows)
			continue
		}
		missIdx = append(missIdx, i)
		miss = append(miss, q)
	}
	if len(miss) > 0 {
		msets, st, err := e.db.SelectMultiWorkersContext(ctx, miss, workers)
		if err != nil {
			return nil, stats, err
		}
		stats.Add(st)
		for j, i := range missIdx {
			sets[i] = msets[j]
			e.Cache.putResults(e.db, batch[i], msets[j])
		}
	}
	return sets, stats, nil
}

// joinProject maps rows across their FK–PK relationships into the target
// table — the result-assembly half of a join configuration.
func (e *Engine) joinProject(rows []*relational.Row, targetTable string) []*relational.Row {
	var out []*relational.Row
	seen := make(map[relational.TupleID]struct{})
	for _, r := range rows {
		for _, rel := range e.db.Related(r) {
			if !equalFold(rel.ID.Table, targetTable) {
				continue
			}
			if _, dup := seen[rel.ID]; dup {
				continue
			}
			seen[rel.ID] = struct{}{}
			out = append(out, rel)
		}
	}
	return out
}

// mergeRows folds rows produced at the given confidence into the result
// set, applying the optional FK–PK related expansion. When a tuple is
// produced again at a strictly higher confidence, the result is
// re-attributed to the producing query; an equal confidence keeps the
// first query ID, so ties resolve deterministically to the earliest
// producer whatever order later configurations arrive in.
func (e *Engine) mergeRows(out []Result, byTuple map[relational.TupleID]int, rows []*relational.Row, conf float64, queryID string) []Result {
	add := func(r *relational.Row, c float64) {
		if i, ok := byTuple[r.ID]; ok {
			if c > out[i].Confidence {
				out[i].Confidence = c
				out[i].Query = queryID
			}
			return
		}
		byTuple[r.ID] = len(out)
		out = append(out, Result{Tuple: r, Confidence: c, Query: queryID})
	}
	for _, r := range rows {
		add(r, conf)
		if e.IncludeRelated {
			for _, rel := range e.db.Related(r) {
				add(rel, conf*e.RelatedDiscount)
			}
		}
	}
	return out
}

// ExecuteBatch runs a set of keyword queries (all generated from one
// annotation). With shared=false every query executes in isolation, exactly
// as Execute would. With shared=true the executor applies the §6 shared
// multi-query optimization: identical structured queries across the batch
// (detected by fingerprint) execute only once, and the result rows are
// distributed to every (query, configuration) that needed them.
func (e *Engine) ExecuteBatch(qs []Query, shared bool) (map[string][]Result, ExecStats, error) {
	return e.ExecuteBatchContext(context.Background(), qs, shared, Limits{})
}

// ExecuteBatchContext is ExecuteBatch under governance: between queries —
// and between structured-query chunks on the shared path — the executor
// checks ctx and the scan budget. Cancellation returns the results
// completed so far together with the context's error; a spent scan budget
// stops execution, keeps the partial results, and records the reason in
// ExecStats.Degraded. An ungoverned call (background context, zero Limits)
// takes the exact legacy path.
//
// Limits.MaxWorkers > 1 executes independent work concurrently: distinct
// queries on the unshared path, structured-query chunks on the governed
// shared path, and row segments of the shared scans on the ungoverned one.
// Execution order is the only thing that changes — results are folded in
// the sequential order afterwards, applying the exact sequential
// cancellation and budget rules, so output (tuples, confidences, Degraded
// reasons, truncation point) is byte-identical at any worker count. Only
// the scheduling fields of ExecStats (Workers, ParallelBatches) differ.
func (e *Engine) ExecuteBatchContext(ctx context.Context, qs []Query, shared bool, lim Limits) (map[string][]Result, ExecStats, error) {
	var stats ExecStats
	results := make(map[string][]Result, len(qs))
	gov := governed(ctx, lim)
	workers := lim.Workers()
	stats.Workers = workers
	// A scan budget forces uncached execution: budget truncation points
	// depend on actual scan counts, and a cache hit scans nothing.
	cached := !e.Uncached && lim.Unlimited()
	if !shared {
		if workers > 1 {
			return e.executeUnsharedParallel(ctx, qs, lim, gov, workers, cached)
		}
		for _, q := range qs {
			if gov {
				if err := ctx.Err(); err != nil {
					return results, stats, err
				}
				if !lim.Unlimited() && stats.TuplesScanned >= lim.MaxScannedRows {
					stats.Degraded = append(stats.Degraded, degradedScanBudget(stats.TuplesScanned, lim.MaxScannedRows))
					return results, stats, nil
				}
			}
			rs, st, err := e.execute(ctx, q, cached)
			if err != nil {
				return results, stats, err
			}
			stats.Add(st)
			results[q.ID] = rs
		}
		return results, stats, nil
	}

	// Plan: enumerate configurations for each query up front.
	pspan, _ := trace.StartSpan(ctx, "plan")
	type need struct {
		queryIdx  int
		conf      float64
		join      bool
		joinTable string
	}
	plans := make([][]Configuration, len(qs))
	wanted := make(map[string][]need) // fingerprint -> consumers
	ordered := make([]string, 0)      // deterministic execution order
	structured := make(map[string]relational.Query)
	for qi, q := range qs {
		if gov {
			if err := ctx.Err(); err != nil {
				return results, stats, err
			}
		}
		plans[qi] = e.Configurations(q)
		for _, cfg := range plans[qi] {
			fp := cfg.Structured.Fingerprint()
			if _, seen := wanted[fp]; !seen {
				ordered = append(ordered, fp)
				structured[fp] = cfg.Structured
			} else {
				stats.SharedQueries++
			}
			wanted[fp] = append(wanted[fp], need{
				queryIdx: qi, conf: cfg.Confidence,
				join: cfg.Join, joinTable: cfg.Table,
			})
		}
	}
	if pspan.Enabled() {
		pspan.AddInt("keyword_queries", len(qs))
		pspan.AddInt("distinct_structured", len(ordered))
		pspan.AddInt("shared_structured", stats.SharedQueries)
		pspan.End()
	}

	// Execute the distinct structured queries: identical queries were
	// deduplicated above, and SelectMulti shares the physical scans of the
	// remainder (one pass per table for all scan queries). Ungoverned runs
	// submit everything in one batch; governed runs chunk the batch so
	// cancellation and the scan budget are honored mid-execution.
	rowSets := make([][]*relational.Row, len(ordered))
	executed := len(ordered) // fingerprints actually executed
	var cancelErr error
	switch {
	case workers > 1 && !gov:
		// Ungoverned parallel: one batch, segment-parallel shared scans.
		if len(ordered) > 0 {
			batch := make([]relational.Query, len(ordered))
			for i, fp := range ordered {
				batch[i] = structured[fp]
			}
			sets, st, err := e.dbSelectMulti(ctx, batch, workers, cached)
			if err != nil {
				return results, stats, fmt.Errorf("shared execute: %w", err)
			}
			copy(rowSets, sets)
			stats.StructuredQueries += len(batch)
			stats.TuplesScanned += st.TuplesScanned
			stats.CacheHits += st.CacheHits
			stats.ParallelBatches++
		}
	case workers > 1:
		// Governed parallel: chunks execute optimistically in waves of
		// `workers`, then fold in chunk order applying the exact sequential
		// cancellation/budget rule before each chunk. Per-chunk scan counts
		// are deterministic, so the prefix sums — and therefore the
		// truncation point and Degraded reasons — match workers == 1; at
		// most workers-1 chunks of speculative work are discarded.
		type chunkOut struct {
			sets [][]*relational.Row
			st   relational.SelectStats
			err  error
			done bool
		}
		nChunks := (len(ordered) + sharedChunk - 1) / sharedChunk
		outs := make([]chunkOut, nChunks)
		runChunk := func(ci int) {
			lo := ci * sharedChunk
			hi := lo + sharedChunk
			if hi > len(ordered) {
				hi = len(ordered)
			}
			batch := make([]relational.Query, hi-lo)
			for i := lo; i < hi; i++ {
				batch[i-lo] = structured[ordered[i]]
			}
			outs[ci].sets, outs[ci].st, outs[ci].err = e.dbSelectMulti(ctx, batch, 1, cached)
			outs[ci].done = true
		}
		stop := false
		for waveLo := 0; waveLo < nChunks && !stop; waveLo += workers {
			waveHi := waveLo + workers
			if waveHi > nChunks {
				waveHi = nChunks
			}
			runPool(ctx, waveHi-waveLo, workers, func(i int) { runChunk(waveLo + i) })
			stats.ParallelBatches++
			for ci := waveLo; ci < waveHi; ci++ {
				lo := ci * sharedChunk
				if err := ctx.Err(); err != nil {
					executed = lo
					cancelErr = err
					stop = true
					break
				}
				if !lim.Unlimited() && stats.TuplesScanned >= lim.MaxScannedRows {
					executed = lo
					stats.Degraded = append(stats.Degraded, degradedScanBudget(stats.TuplesScanned, lim.MaxScannedRows))
					stop = true
					break
				}
				if !outs[ci].done {
					// The pool skips tasks after a cancellation observed
					// mid-wave; ctx is live here, so run the chunk inline.
					runChunk(ci)
				}
				if outs[ci].err != nil {
					return results, stats, fmt.Errorf("shared execute: %w", outs[ci].err)
				}
				copy(rowSets[lo:lo+len(outs[ci].sets)], outs[ci].sets)
				stats.StructuredQueries += len(outs[ci].sets)
				stats.TuplesScanned += outs[ci].st.TuplesScanned
				stats.CacheHits += outs[ci].st.CacheHits
			}
		}
	default:
		chunk := len(ordered)
		if gov && chunk > sharedChunk {
			chunk = sharedChunk
		}
		for lo := 0; lo < len(ordered); lo += chunk {
			hi := lo + chunk
			if hi > len(ordered) {
				hi = len(ordered)
			}
			if gov {
				if err := ctx.Err(); err != nil {
					executed = lo
					cancelErr = err
					break
				}
				if !lim.Unlimited() && stats.TuplesScanned >= lim.MaxScannedRows {
					executed = lo
					stats.Degraded = append(stats.Degraded, degradedScanBudget(stats.TuplesScanned, lim.MaxScannedRows))
					break
				}
			}
			batch := make([]relational.Query, hi-lo)
			for i := lo; i < hi; i++ {
				batch[i-lo] = structured[ordered[i]]
			}
			sets, st, err := e.dbSelectMulti(ctx, batch, 1, cached)
			if err != nil {
				return results, stats, fmt.Errorf("shared execute: %w", err)
			}
			copy(rowSets[lo:hi], sets)
			stats.StructuredQueries += len(batch)
			stats.TuplesScanned += st.TuplesScanned
			stats.CacheHits += st.CacheHits
		}
	}

	mspan, _ := trace.StartSpan(ctx, "merge")
	byTuple := make([]map[relational.TupleID]int, len(qs))
	merged := make([][]Result, len(qs))
	for i := range byTuple {
		byTuple[i] = make(map[relational.TupleID]int)
	}
	for i, fp := range ordered[:executed] {
		rows := rowSets[i]
		for _, n := range wanted[fp] {
			consumed := rows
			if n.join {
				consumed = e.joinProject(rows, n.joinTable)
			}
			stats.TuplesReturned += len(consumed)
			merged[n.queryIdx] = e.mergeRows(merged[n.queryIdx], byTuple[n.queryIdx], consumed, n.conf, qs[n.queryIdx].ID)
		}
	}
	for qi, q := range qs {
		results[q.ID] = merged[qi]
	}
	if mspan.Enabled() {
		mspan.AddInt("tuples_returned", stats.TuplesReturned)
		mspan.End()
	}
	return results, stats, cancelErr
}

// executeUnsharedParallel is the unshared path with a worker pool: queries
// execute optimistically in waves of `workers`, and the fold applies the
// sequential governance rules (context first, then scan budget) in query
// order before consuming each result. The accumulated TuplesScanned at each
// fold step equals the sequential prefix sum, so partial results under a
// spent budget — and the Degraded reason recording it — are identical to
// the workers == 1 path.
func (e *Engine) executeUnsharedParallel(ctx context.Context, qs []Query, lim Limits, gov bool, workers int, cached bool) (map[string][]Result, ExecStats, error) {
	var stats ExecStats
	stats.Workers = workers
	results := make(map[string][]Result, len(qs))
	type qOut struct {
		rs   []Result
		st   ExecStats
		err  error
		done bool
	}
	outs := make([]qOut, len(qs))
	run := func(i int) {
		outs[i].rs, outs[i].st, outs[i].err = e.execute(ctx, qs[i], cached)
		outs[i].done = true
	}
	for waveLo := 0; waveLo < len(qs); waveLo += workers {
		waveHi := waveLo + workers
		if waveHi > len(qs) {
			waveHi = len(qs)
		}
		runPool(ctx, waveHi-waveLo, workers, func(i int) { run(waveLo + i) })
		stats.ParallelBatches++
		for i := waveLo; i < waveHi; i++ {
			if gov {
				if err := ctx.Err(); err != nil {
					return results, stats, err
				}
				if !lim.Unlimited() && stats.TuplesScanned >= lim.MaxScannedRows {
					stats.Degraded = append(stats.Degraded, degradedScanBudget(stats.TuplesScanned, lim.MaxScannedRows))
					return results, stats, nil
				}
			}
			if !outs[i].done {
				run(i)
			}
			if outs[i].err != nil {
				return results, stats, outs[i].err
			}
			stats.Add(outs[i].st)
			results[qs[i].ID] = outs[i].rs
		}
	}
	return results, stats, nil
}
