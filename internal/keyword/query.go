// Package keyword implements keyword search over the relational substrate,
// in the role the paper assigns to Bergamaschi et al.'s metadata approach
// (reference [7]): each keyword is mapped — using the NebulaMeta metadata —
// to schema elements or column value domains; consistent combinations of
// mappings form configurations; each configuration yields a structured
// query with a confidence weight; executing the queries produces candidate
// tuples that inherit their query's confidence.
//
// The package also provides the two execution-strategy extremes the paper
// evaluates: the Naive baseline of §4 (the entire annotation text as one
// keyword query) and the shared multi-query executor of §6 (common
// structured sub-queries across a batch are executed once).
package keyword

import (
	"fmt"
	"strings"

	"nebula/internal/relational"
)

// Role describes what a keyword inside a query was mapped to by the
// signature-map stage. The executor uses roles to decide which keywords
// carry predicates (values) and which only select the target concept
// (table/column names).
type Role int

const (
	// RoleValue marks a keyword believed to be a database value.
	RoleValue Role = iota
	// RoleTable marks a keyword believed to reference a table name.
	RoleTable
	// RoleColumn marks a keyword believed to reference a column name.
	RoleColumn
)

func (r Role) String() string {
	switch r {
	case RoleValue:
		return "value"
	case RoleTable:
		return "table"
	case RoleColumn:
		return "column"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Keyword is one keyword of a query together with its role hint. Hints are
// optional (the Naive baseline has none): the mapper falls back to deriving
// mappings from NebulaMeta when TargetTable/TargetColumn are empty.
type Keyword struct {
	// Text is the keyword as extracted from the annotation.
	Text string
	// Role is the mapped role.
	Role Role
	// TargetTable is the mapped table (when known).
	TargetTable string
	// TargetColumn is the mapped column (for RoleColumn and RoleValue when
	// the signature map pinned the value to a column domain).
	TargetColumn string
	// Weight is the mapping weight assigned upstream, in (0,1].
	Weight float64
}

// Query is a keyword search query: a small set of keywords that together
// identify database tuples (2–3 keywords for Type-1/2/3 matches of §5.2.2).
type Query struct {
	// ID distinguishes queries generated from the same annotation.
	ID string
	// Keywords of the query.
	Keywords []Keyword
	// Weight is the query's overall weight q.weight ∈ (0,1], the normalized
	// sum of its keywords' mapping weights (§5.2.3).
	Weight float64
}

func (q Query) String() string {
	parts := make([]string, len(q.Keywords))
	for i, k := range q.Keywords {
		parts[i] = k.Text
	}
	return fmt.Sprintf("%s{%s w=%.2f}", q.ID, strings.Join(parts, " "), q.Weight)
}

// Result is one candidate tuple produced by executing a keyword query.
type Result struct {
	// Tuple is the matched data tuple.
	Tuple *relational.Row
	// Confidence is the engine's internal confidence for this tuple in
	// [0,1] (the query's weight is applied later, by the discovery stage,
	// per Figure 5 lines 3–5).
	Confidence float64
	// Query is the ID of the keyword query that produced the tuple.
	Query string
}

// ExecStats aggregates execution cost counters. Wall-clock times are taken
// by callers; these counters are the machine-independent cost measures.
type ExecStats struct {
	// StructuredQueries is the number of structured queries executed
	// against the database.
	StructuredQueries int
	// SharedQueries is the number of structured queries whose execution
	// was avoided by the shared executor (duplicates of an executed one).
	SharedQueries int
	// TuplesScanned totals candidate tuples examined by the substrate.
	TuplesScanned int
	// TuplesReturned totals tuples produced (before deduplication).
	TuplesReturned int
	// Workers is the size of the worker pool the execution ran with
	// (1 = the sequential legacy path). A scheduling property, not a cost:
	// results are byte-identical whatever its value.
	Workers int
	// ParallelBatches counts the waves of concurrently executed work the
	// parallel path dispatched (0 on the sequential path). Like Workers it
	// describes scheduling, not results.
	ParallelBatches int
	// CacheHits counts structured queries answered from a result cache
	// (the keyword layer's query cache or the substrate's scan cache)
	// instead of being executed. Cached queries contribute zero to
	// TuplesScanned: stats account actual work.
	CacheHits int
	// Degraded lists human-readable reasons the execution deviated from
	// the full, unbounded run (budget truncations, cancelled scans).
	// Empty for a complete run.
	Degraded []string
}

// Add accumulates another stats record. The scheduling fields do not sum:
// Workers keeps the widest pool seen, ParallelBatches accumulates.
func (s *ExecStats) Add(o ExecStats) {
	s.StructuredQueries += o.StructuredQueries
	s.SharedQueries += o.SharedQueries
	s.TuplesScanned += o.TuplesScanned
	s.TuplesReturned += o.TuplesReturned
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.ParallelBatches += o.ParallelBatches
	s.CacheHits += o.CacheHits
	s.Degraded = append(s.Degraded, o.Degraded...)
}
