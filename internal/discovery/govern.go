package discovery

// This file holds the pipeline's governance layer: typed
// cancellation/budget errors, transient-error classification, and the
// retry-with-capped-backoff policy the discoverer applies to the keyword
// searcher. The paper's pipeline is unbounded (the Naive baseline alone
// emits ~318k candidate tuples for one L^50 workload, §8.2); a serving
// deployment needs every run to be interruptible and every shortcut it
// takes to be observable.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCancelled reports a discovery run interrupted by caller cancellation.
// The partial candidates produced before the interrupt are returned
// alongside it; errors.Is(err, ErrCancelled) matches.
var ErrCancelled = errors.New("discovery: run cancelled")

// ErrBudgetExceeded reports a discovery run stopped by its wall-clock
// budget (a context deadline). Partial candidates are returned alongside
// it; errors.Is(err, ErrBudgetExceeded) matches.
var ErrBudgetExceeded = errors.New("discovery: wall-clock budget exceeded")

// wrapCtxErr converts a context error observed mid-pipeline into the
// pipeline's typed errors, preserving the original cause for errors.Is.
func wrapCtxErr(err error) error {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrBudgetExceeded, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCancelled, err)
	default:
		return err
	}
}

// transienter is the self-classification contract for searcher errors: an
// error advertising Transient() == true is worth retrying (a flaky index
// node, an injected fault); anything else is treated as persistent.
type transienter interface{ Transient() bool }

// IsTransient reports whether err (or an error in its chain) advertises
// itself as transient.
func IsTransient(err error) bool {
	var t transienter
	return errors.As(err, &t) && t.Transient()
}

// RetryPolicy controls the discoverer's handling of transient searcher
// errors: up to MaxRetries re-attempts with exponential backoff starting
// at BaseDelay and capped at MaxDelay. The zero value disables retries —
// the legacy behavior.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure.
	MaxRetries int
	// BaseDelay is the first backoff; each subsequent retry doubles it.
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 defaults to 16×BaseDelay.
	MaxDelay time.Duration
}

// backoff returns the delay before re-attempt number retry (1-based).
func (p RetryPolicy) backoff(retry int) time.Duration {
	d := p.BaseDelay
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < retry; i++ {
		d *= 2
	}
	ceiling := p.MaxDelay
	if ceiling <= 0 {
		ceiling = 16 * p.BaseDelay
		if ceiling <= 0 {
			ceiling = 16 * time.Millisecond
		}
	}
	if d > ceiling {
		d = ceiling
	}
	return d
}

// do runs attempt, retrying transient errors per the policy. Context
// errors are never retried (the caller is gone or out of time), and the
// backoff sleep itself respects ctx. It returns the retry count actually
// spent and the final error.
func (p RetryPolicy) do(ctx context.Context, attempt func() error) (int, error) {
	err := attempt()
	retries := 0
	for err != nil && retries < p.MaxRetries && IsTransient(err) && ctx.Err() == nil {
		retries++
		t := time.NewTimer(p.backoff(retries))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return retries, ctx.Err()
		}
		err = attempt()
	}
	return retries, err
}
