package discovery

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nebula/internal/keyword"
	"nebula/internal/meta"
	"nebula/internal/relational"
)

// update rewrites the golden files under testdata/golden/ instead of
// comparing against them:
//
//	go test ./internal/discovery -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/golden/<name>.golden, or
// rewrites the file when -update is set.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update to create it): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s (run with -update after intentional changes)\n--- want\n%s--- got\n%s",
			path, want, got)
	}
}

// fpLabel renders a structured-query fingerprint's control-byte separators
// readably: '\x01' joins table and predicates, '\x00' joins a predicate's
// column, operator, and operand.
func fpLabel(fp string) string {
	fp = strings.ReplaceAll(fp, "\x01", " ")
	return strings.ReplaceAll(fp, "\x00", ":")
}

// TestGoldenPlanOrdering pins the planner's static decisions for fixed
// workload fixtures: the per-query cost/upper-bound estimates the metadata
// estimator derives, the index-driven first wave, and the full sequence of
// scan waves NextWave schedules (most pending gain first, ties to the
// lexicographically smaller table). Any change to estimator math, sharing,
// or wave ordering shows up here as a diff against the checked-in golden.
func TestGoldenPlanOrdering(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		db, repo, _ := planFixture(t, seed, 60, 40)
		rng := rand.New(rand.NewSource(seed * 101))
		queries := planQueries(rng, 24)

		engine := keyword.NewEngine(db, repo)
		pb := engine.NewPlannedBatch(queries)
		est := meta.NewEstimator(repo)

		var b strings.Builder
		fmt.Fprintf(&b, "queries=%d distinct=%d shared-refs=%d\n",
			len(queries), pb.DistinctStructured(), pb.SharedRefs())
		b.WriteString("estimates:\n")
		for qi, qe := range pb.Estimates(est) {
			fmt.Fprintf(&b, "  %s w=%.4f cost=%.2f ub=%.4f configs=%d\n",
				queries[qi].ID, queries[qi].Weight, qe.Cost, qe.UpperBound, qe.Configs)
		}

		var stats keyword.ExecStats
		wave := 0
		run := func(label string, fps []string) {
			fmt.Fprintf(&b, "wave %d (%s): %d fingerprints\n", wave, label, len(fps))
			for _, fp := range fps {
				idx := " scan"
				if pb.IndexDriven(fp) {
					idx = "index"
				}
				fmt.Fprintf(&b, "  [%s] %s\n", idx, fpLabel(fp))
			}
			if _, err := pb.ExecuteFingerprints(context.Background(), fps, keyword.Limits{}, &stats); err != nil {
				t.Fatalf("seed=%d wave %d: %v", seed, wave, err)
			}
			wave++
		}
		if fps := pb.IndexableFingerprints(); len(fps) > 0 {
			run("index-driven", fps)
		}
		for {
			fps := pb.NextWave()
			if len(fps) == 0 {
				break
			}
			table := strings.SplitN(fps[0], "\x01", 2)[0]
			run("scan "+table, fps)
		}
		checkGolden(t, fmt.Sprintf("plan-ordering-seed%d", seed), b.String())
	}
}

// TestGoldenPlanPruneDecisions pins the planner's runtime decisions for
// fixed workload fixtures: how many queries executed versus pruned, the
// wave count, the completion frontier size, the per-query skip audit
// records, and the final top-k candidates. The candidates are additionally
// asserted byte-identical to the exhaustive run — the golden file pins the
// decisions, the comparison pins the exactness contract.
func TestGoldenPlanPruneDecisions(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		db, repo, g := planFixture(t, seed, 60, 40)
		rng := rand.New(rand.NewSource(seed * 101))
		queries := planQueries(rng, 24)
		focal := []relational.TupleID{planGID(rng.Intn(60))}

		opts := Options{Shared: true, FocalAdjustment: true, TopK: 3, Plan: true}
		d := New(db, repo, g)
		planned, stats, err := d.IdentifyRelatedTuples(queries, focal, opts)
		if err != nil {
			t.Fatalf("seed=%d planned: %v", seed, err)
		}
		if stats.Plan == nil || !stats.Plan.Enabled {
			t.Fatalf("seed=%d: planner did not run: %+v", seed, stats.Plan)
		}
		exactOpts := opts
		exactOpts.Plan = false
		exact, _, err := New(db, repo, g).IdentifyRelatedTuples(queries, focal, exactOpts)
		if err != nil {
			t.Fatalf("seed=%d exhaustive: %v", seed, err)
		}
		if got, want := renderPlanCands(planned), renderPlanCands(exact); got != want {
			t.Fatalf("seed=%d: planned top-k diverged from exhaustive\n--- exhaustive\n%s--- planned\n%s",
				seed, want, got)
		}

		var b strings.Builder
		fmt.Fprintf(&b, "topk=%d queries=%d executed=%d pruned=%d waves=%d frontier=%d\n",
			stats.Plan.TopK, stats.Plan.Queries, stats.Plan.Executed, stats.Plan.Pruned,
			stats.Plan.Waves, stats.Plan.Frontier)
		for _, s := range stats.Plan.Skipped {
			fmt.Fprintf(&b, "skipped: %s\n", s)
		}
		b.WriteString("candidates:\n")
		b.WriteString(renderPlanCands(planned))
		checkGolden(t, fmt.Sprintf("plan-prune-seed%d", seed), b.String())
	}
}
