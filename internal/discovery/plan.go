package discovery

import (
	"fmt"
	"sort"
	"strings"

	"context"

	"nebula/internal/acg"
	"nebula/internal/keyword"
	"nebula/internal/meta"
	"nebula/internal/relational"
	"nebula/internal/trace"
)

// This file is the discovery-side half of the cost-based planner (ROADMAP
// open item 4): order the batch's structured queries by access cost —
// index-driven fingerprints first, then full-scan fingerprints grouped
// into per-table waves that each cost one shared physical pass — maintain
// the running k-th best adjusted attachment confidence, and stop once the
// pending scans cannot lift any tuple into the top k. The focal-adjustment
// math of §6.2 supplies the upper bounds: a tuple's final confidence is
// its summed weighted confidence times a per-tuple factor Π(1+w) over
// focal edges, so Fmax — the factor using each focal's best edge — bounds
// every tuple's factor, and PendingBound (per produce table, with
// same-column equality predicates collapsed by disjointness) bounds what
// the pending scans could still add to one tuple.
//
// The exactness contract: for the tuples that reach the final top k, a
// pruned run returns exactly what the exhaustive run would — same
// confidences, same evidence, same order. Pruned queries are not dropped;
// they are completed against the frontier (the tuples that could still
// reach the top k), which costs index lookups and point evaluations
// instead of full scans. With planning off, or k at or above the exhaustive
// candidate count, output is byte-identical to the legacy path.

// PlanStats reports the planner's decisions for one discovery run — the
// Degraded-adjacent audit record for pruning. A pruned run is not listed
// in Stats.Degraded (its top-k output is exact); this struct is how it
// stays auditable.
type PlanStats struct {
	// Enabled reports whether the planner actually ran. When planning was
	// requested but ineligible, Enabled is false and Reason says why.
	Enabled bool `json:"enabled"`
	// Reason explains an ineligible planning request.
	Reason string `json:"reason,omitempty"`
	// TopK is the requested attachment count.
	TopK int `json:"topk"`
	// Queries is the total number of generated keyword queries.
	Queries int `json:"queries"`
	// Executed counts queries whose structured queries all executed —
	// their results are byte-identical to the exhaustive run's.
	Executed int `json:"executed"`
	// Pruned counts queries with at least one scan fingerprint skipped by
	// early termination (completed against the frontier instead).
	Pruned int `json:"pruned"`
	// Waves counts execution calls: the index-driven wave plus one wave
	// per table whose scans had to run before the bound closed.
	Waves int `json:"waves"`
	// Frontier is the size of the completion frontier when pruning fired.
	Frontier int `json:"frontier"`
	// CompletionScanned counts tuples touched completing pruned queries
	// (index-bucket harvests plus frontier point evaluations); it is also
	// folded into the run's TuplesScanned so planned and exhaustive scan
	// counts compare honestly.
	CompletionScanned int `json:"completion_scanned,omitempty"`
	// Truncated counts candidates cut by the final top-k truncation.
	Truncated int `json:"truncated,omitempty"`
	// Interrupted reports that a scan budget stopped the planned execution.
	// Budgeted runs are planner-ineligible (they fall back to the governed
	// shared path so truncation accounting matches), so this can no longer
	// fire from the discovery entry points; it is kept defensively for
	// direct PlannedBatch users.
	Interrupted bool `json:"interrupted,omitempty"`
	// Skipped records one line per pruned query: its ID, upper bound, and
	// estimated cost — the audit trail of what the planner decided not to
	// execute.
	Skipped []string `json:"skipped,omitempty"`
}

// planIneligible reports why a planning request cannot use the planner, or
// "" when it can. The planner replicates the shared executor's global
// fingerprint fold order, so it requires shared execution and the default
// metadata engine; top-k pruning is meaningless without a k. A scan budget
// is also ineligible: the planner executes fingerprints in wave order, so
// a budget would truncate at a different point — with a different scanned
// count in its Degraded reason — than the governed shared path's global
// fold order. Budgeted runs therefore fall back to the governed path,
// keeping truncation accounting and Degraded reporting identical whether
// planning was requested or not.
func planIneligible(opts Options, customSearcher bool) string {
	switch {
	case opts.TopK <= 0:
		return "planning requires TOPK > 0"
	case !opts.Shared:
		return "planning requires shared execution"
	case customSearcher:
		return "planning requires the default metadata search engine"
	case opts.MaxScannedRows > 0:
		return "planning requires an unlimited scan budget; budgeted runs use the governed shared path"
	}
	return ""
}

// focalAdjuster mirrors the §6.2 adjustment multiplicatively: the "adjust
// focal" stage computes conf += w×conf per qualifying focal edge (or path),
// which is conf × Π(1+w). factor(id) is that product for one tuple; fmax
// bounds it over all tuples using each focal's strongest edge (or path).
type focalAdjuster struct {
	enabled bool
	direct  bool
	graph   *acg.Graph
	focal   []relational.TupleID
	paths   []map[relational.TupleID]float64 // per focal, AdjustmentHops > 1
	fmax    float64
	cache   map[relational.TupleID]float64
}

func newFocalAdjuster(graph *acg.Graph, focal []relational.TupleID, opts Options) *focalAdjuster {
	fa := &focalAdjuster{fmax: 1, cache: make(map[relational.TupleID]float64)}
	if !opts.FocalAdjustment || graph == nil {
		return fa
	}
	fa.enabled = true
	fa.graph = graph
	fa.focal = focal
	if opts.AdjustmentHops > 1 {
		for _, f := range focal {
			weights := graph.PathWeights(f, opts.AdjustmentHops)
			fa.paths = append(fa.paths, weights)
			best := 0.0
			for _, w := range weights {
				if w > best {
					best = w
				}
			}
			fa.fmax *= 1 + best
		}
		return fa
	}
	fa.direct = true
	for _, f := range focal {
		best := 0.0
		for _, nb := range graph.Neighbors(f) {
			if w := graph.Weight(f, nb); w > best {
				best = w
			}
		}
		fa.fmax *= 1 + best
	}
	return fa
}

// factor is the tuple's exact §6.2 multiplier.
func (fa *focalAdjuster) factor(id relational.TupleID) float64 {
	if !fa.enabled {
		return 1
	}
	if v, ok := fa.cache[id]; ok {
		return v
	}
	f := 1.0
	if fa.direct {
		for _, fc := range fa.focal {
			if w := fa.graph.Weight(id, fc); w > 0 {
				f *= 1 + w
			}
		}
	} else {
		for _, weights := range fa.paths {
			if w := weights[id]; w > 0 {
				f *= 1 + w
			}
		}
	}
	fa.cache[id] = f
	return f
}

// fmaxOver bounds factor(id) over the tuples of one table that are NOT in
// seen. Factors exceed 1 only inside the focal tuples' graph
// neighborhoods — a finite, enumerable set — so the product of each focal
// tuple's best unseen same-table weight bounds every unseen tuple's
// factor. This is what lets the planner terminate when the high-factor
// tuples are all already found: the global fmax would keep counting them.
func (fa *focalAdjuster) fmaxOver(table string, seen map[relational.TupleID]float64) float64 {
	if !fa.enabled {
		return 1
	}
	out := 1.0
	if fa.direct {
		for _, f := range fa.focal {
			best := 0.0
			for _, nb := range fa.graph.Neighbors(f) {
				if !strings.EqualFold(nb.Table, table) {
					continue
				}
				if _, ok := seen[nb]; ok {
					continue
				}
				if w := fa.graph.Weight(f, nb); w > best {
					best = w
				}
			}
			out *= 1 + best
		}
		return out
	}
	for _, weights := range fa.paths {
		best := 0.0
		for id, w := range weights {
			if !strings.EqualFold(id.Table, table) {
				continue
			}
			if _, ok := seen[id]; ok {
				continue
			}
			if w > best {
				best = w
			}
		}
		out *= 1 + best
	}
	return out
}

// kthAdjusted is the k-th best focal-adjusted confidence among the raw
// (summed, unnormalized) confidences accumulated so far. Callers ensure
// len(raw) >= k >= 1.
func kthAdjusted(raw map[relational.TupleID]float64, fa *focalAdjuster, k int) float64 {
	vals := make([]float64, 0, len(raw))
	for id, c := range raw {
		vals = append(vals, c*fa.factor(id))
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(vals)))
	if k > len(vals) {
		k = len(vals)
	}
	return vals[k-1]
}

// planExecute runs the planned execution loop and returns per-query
// results equivalent — for every tuple that can reach the final top k —
// to an exhaustive shared ExecuteBatchContext run. ps is filled with the
// planner's decisions; the returned error is the raw execution error
// (context or database), classified by the caller exactly like the legacy
// path's.
//
// The plan orders work by confidence-per-cost at the physical level:
// index-driven structured queries (O(bucket) each) execute first, then
// full-scan fingerprints one table-wave at a time — all scan queries
// against one table share a single physical pass, so a wave costs one
// scan whatever its width. Between waves the planner compares the pending
// bound (PendingBound's per-table disjointness-collapsed sums, times
// Fmax) against the running k-th best adjusted confidence; once no
// pending scan can lift any tuple into the top k, the remaining
// fingerprints are pruned and their queries completed against the
// frontier.
func (d *Discoverer) planExecute(ctx context.Context, engine *keyword.Engine, queries []keyword.Query, focal []relational.TupleID, opts Options, lim keyword.Limits, stats *Stats, ps *PlanStats) (map[string][]keyword.Result, error) {
	// Plan: enumerate the global shared plan and the per-query estimates.
	// Everything here reads catalog statistics and configuration
	// confidences only — never scan counts or cache state — so the plan
	// is identical at any worker count.
	pspan, _ := trace.StartSpan(ctx, "plan")
	pb := engine.NewPlannedBatch(queries)
	ests := pb.Estimates(meta.NewEstimator(d.meta))
	fa := newFocalAdjuster(d.graph, focal, opts)
	stats.Exec.SharedQueries += pb.SharedRefs()
	indexFps := pb.IndexableFingerprints()
	if pspan.Enabled() {
		pspan.AddInt("keyword_queries", len(queries))
		pspan.AddInt("distinct_structured", pb.DistinctStructured())
		pspan.AddInt("shared_structured", pb.SharedRefs())
		pspan.AddInt("index_structured", len(indexFps))
		pspan.End()
	}

	// Incremental confidence state: raw holds each non-focal tuple's
	// summed weighted confidence over the executed fingerprints, with
	// mergeRows' per-query max semantics replicated through perQ.
	focalSet := make(map[relational.TupleID]struct{}, len(focal))
	for _, f := range focal {
		focalSet[f] = struct{}{}
	}
	raw := make(map[relational.TupleID]float64)
	rowOf := make(map[relational.TupleID]*relational.Row)
	perQ := make([]map[relational.TupleID]float64, len(queries))
	apply := func(fps []string) {
		for _, fp := range fps {
			pb.EachProduced(fp, func(qi int, row *relational.Row, conf float64) {
				if _, isFocal := focalSet[row.ID]; isFocal {
					return
				}
				m := perQ[qi]
				if m == nil {
					m = make(map[relational.TupleID]float64)
					perQ[qi] = m
				}
				if conf > m[row.ID] {
					raw[row.ID] += (conf - m[row.ID]) * queries[qi].Weight
					m[row.ID] = conf
					if _, ok := rowOf[row.ID]; !ok {
						rowOf[row.ID] = row
					}
				}
			})
		}
	}

	// relatedSpill is the confidence a pending production anywhere can
	// spill into an arbitrary table via related-tuple expansion.
	relatedSpill := func(b keyword.PendingBound) float64 {
		if engine.IncludeRelated && engine.RelatedDiscount > 0 {
			return engine.RelatedDiscount * b.Total
		}
		return 0
	}

	espan, ectx := trace.StartSpan(ctx, "execute")
	terminated := false
	var execErr error
	var bound keyword.PendingBound
	runWave := func(fps []string) bool {
		if len(fps) == 0 {
			return true
		}
		interrupted, err := pb.ExecuteFingerprints(ectx, fps, lim, &stats.Exec)
		apply(fps)
		ps.Waves++
		if err != nil {
			execErr = err
			return false
		}
		if interrupted {
			ps.Interrupted = true
			return false
		}
		return true
	}
	if runWave(indexFps) {
		for {
			wave := pb.NextWave()
			if wave == nil {
				break
			}
			if len(raw) >= opts.TopK {
				bound = pb.PendingBound()
				spill := relatedSpill(bound)
				lk := kthAdjusted(raw, fa, opts.TopK)
				// Strict inequalities: a pending scan that could exactly
				// tie the k-th confidence must still run, so ties never
				// depend on the plan order. Each table's pending bound is
				// scaled by the best focal factor still achievable by a
				// tuple of that table the waves have not produced;
				// related-tuple spill can land in any table, so it is
				// checked against the unrestricted fmax.
				prune := true
				for t, v := range bound.PerTable {
					if (v+spill)*fa.fmaxOver(t, raw) >= lk {
						prune = false
						break
					}
				}
				if prune && spill > 0 && spill*fa.fmax >= lk {
					prune = false
				}
				if prune {
					terminated = true
					break
				}
			}
			if !runWave(wave) {
				break
			}
		}
	}
	executedQueries := 0
	for qi := range queries {
		if pb.QueryComplete(qi) {
			executedQueries++
		}
	}
	ps.Executed = executedQueries
	if espan.Enabled() {
		espan.AddInt("keyword_queries", len(queries))
		espan.AddInt("executed_queries", executedQueries)
		espan.AddInt("waves", ps.Waves)
		espan.AddInt("structured_queries", stats.Exec.StructuredQueries)
		espan.AddInt("tuples_scanned", stats.Exec.TuplesScanned)
		espan.AddInt("cache_hits", stats.Exec.CacheHits)
		espan.End()
	}

	results := make(map[string][]keyword.Result, len(queries))
	if !terminated {
		// Clean finish, budget interruption, or error: merge every query
		// over the fingerprints that did execute — the same partial-merge
		// semantics as an interrupted legacy shared run.
		for qi, q := range queries {
			results[q.ID] = pb.MergeQuery(qi, &stats.Exec)
		}
		return results, execErr
	}

	// Prune: the pending scans cannot lift any unseen tuple into the top
	// k. Complete the affected queries against the frontier — the seen
	// tuples whose confidence upper bound still reaches the running k-th
	// best — so every tuple that can end up in the top k gets its exact
	// confidence and evidence.
	prspan, _ := trace.StartSpan(ctx, "prune")
	lk := kthAdjusted(raw, fa, opts.TopK)
	var frontRows []*relational.Row
	for id, c := range raw {
		g := bound.PerTable[strings.ToLower(id.Table)] + relatedSpill(bound)
		if fa.factor(id)*(c+g) >= lk {
			frontRows = append(frontRows, rowOf[id])
		}
	}
	fr := keyword.NewFrontier(engine.Database(), frontRows)
	for qi, q := range queries {
		if pb.QueryComplete(qi) {
			results[q.ID] = pb.MergeQuery(qi, &stats.Exec)
			continue
		}
		results[q.ID] = pb.CompleteQuery(qi, fr, &stats.Exec)
		ps.Skipped = append(ps.Skipped, fmt.Sprintf(
			"%s: ub=%.4f cost=%.0f", q.ID, ests[qi].UpperBound, ests[qi].Cost))
	}
	ps.Pruned = len(queries) - executedQueries
	ps.Frontier = fr.Size()
	ps.CompletionScanned = pb.CompletionScanned()
	stats.Exec.TuplesScanned += pb.CompletionScanned()
	if prspan.Enabled() {
		prspan.AddInt("pruned_queries", ps.Pruned)
		prspan.AddInt("frontier", ps.Frontier)
		prspan.AddInt("completion_scanned", pb.CompletionScanned())
		prspan.End()
	}
	return results, nil
}
