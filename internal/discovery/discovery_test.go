package discovery

import (
	"errors"
	"fmt"
	"testing"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/keyword"
	"nebula/internal/meta"
	"nebula/internal/relational"
)

// fixture builds a gene table with 20 genes, metadata, and an ACG where
// genes 0..4 form a connected cluster around gene 0.
func fixture(t testing.TB) (*relational.Database, *meta.Repository, *acg.Graph) {
	t.Helper()
	db := relational.NewDatabase()
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	}
	gt, err := db.CreateTable(gene)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := gt.Insert([]relational.Value{
			relational.String(fmt.Sprintf("JW%04d", i)),
			relational.String(fmt.Sprintf("gen%c", 'A'+i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	repo := meta.NewRepository(db, nil)
	if err := repo.AddConcept(&meta.Concept{
		Name: "Gene", Table: "Gene", ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.SetPattern(meta.ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		t.Fatal(err)
	}
	g := acg.New(0, 0)
	// Chain 0-1-2-3-4 in the ACG.
	for i := 0; i < 4; i++ {
		g.AddAnnotation(annotation.ID(fmt.Sprintf("link%d", i)), []relational.TupleID{gid(i), gid(i + 1)})
	}
	return db, repo, g
}

func gid(i int) relational.TupleID {
	return relational.TupleID{Table: "Gene", Key: fmt.Sprintf("s:jw%04d", i)}
}

func queries(ids ...string) []keyword.Query {
	out := make([]keyword.Query, len(ids))
	for i, id := range ids {
		out[i] = keyword.Query{
			ID:     fmt.Sprintf("q%d", i+1),
			Weight: 1,
			Keywords: []keyword.Keyword{
				{Text: "gene", Role: keyword.RoleTable, TargetTable: "Gene", Weight: 1},
				{Text: id, Role: keyword.RoleValue, TargetTable: "Gene", TargetColumn: "GID", Weight: 0.9},
			},
		}
	}
	return out
}

func TestIdentifyBasic(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	cands, stats, err := d.IdentifyRelatedTuples(queries("JW0002", "JW0007"), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if stats.SearchedDB != db.TotalRows() {
		t.Errorf("searched %d, want full DB %d", stats.SearchedDB, db.TotalRows())
	}
	for _, c := range cands {
		if c.Confidence <= 0 || c.Confidence > 1 {
			t.Errorf("confidence = %f", c.Confidence)
		}
		if len(c.Evidence) == 0 {
			t.Error("missing evidence")
		}
	}
}

func TestIdentifyEmptyQueries(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	cands, _, err := d.IdentifyRelatedTuples(nil, nil, Options{})
	if err != nil || cands != nil {
		t.Errorf("empty queries: %v %v", cands, err)
	}
}

func TestIdentifyExcludesFocal(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	cands, _, err := d.IdentifyRelatedTuples(queries("JW0002"), []relational.TupleID{gid(2)}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("focal tuple not excluded: %v", cands)
	}
}

func TestIdentifyMultiQueryReward(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	// JW0002 appears in two queries, JW0007 in one: the duplicated tuple
	// must rank first after normalization (conf 1.0).
	qs := queries("JW0002", "JW0007", "JW0002")
	cands, _, err := d.IdentifyRelatedTuples(qs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %v", cands)
	}
	if cands[0].Tuple.MustGet("GID").Str() != "JW0002" || cands[0].Confidence != 1 {
		t.Errorf("rewarded tuple not first: %+v", cands[0])
	}
	if cands[1].Confidence >= cands[0].Confidence {
		t.Error("single-query tuple should rank below")
	}
	if len(cands[0].Evidence) != 2 {
		t.Errorf("evidence = %v", cands[0].Evidence)
	}
}

func TestFocalAdjustmentBoostsConnectedTuples(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	focal := []relational.TupleID{gid(0)}
	// JW0001 is a direct ACG neighbor of the focal; JW0007 is unrelated.
	qs := queries("JW0001", "JW0007")

	base, _, err := d.IdentifyRelatedTuples(qs, focal, Options{})
	if err != nil {
		t.Fatal(err)
	}
	adj, _, err := d.IdentifyRelatedTuples(qs, focal, Options{FocalAdjustment: true})
	if err != nil {
		t.Fatal(err)
	}
	baseConf := map[string]float64{}
	for _, c := range base {
		baseConf[c.Tuple.MustGet("GID").Str()] = c.Confidence
	}
	adjConf := map[string]float64{}
	for _, c := range adj {
		adjConf[c.Tuple.MustGet("GID").Str()] = c.Confidence
	}
	// Without adjustment both have equal confidence; with it, the
	// ACG-connected tuple stays at 1 and the unrelated one drops.
	if baseConf["JW0001"] != baseConf["JW0007"] {
		t.Fatalf("baseline should tie: %v", baseConf)
	}
	if adjConf["JW0001"] != 1 {
		t.Errorf("connected tuple conf = %f", adjConf["JW0001"])
	}
	if adjConf["JW0007"] >= adjConf["JW0001"] {
		t.Errorf("unconnected tuple not demoted: %v", adjConf)
	}
}

func TestMultiHopFocalAdjustment(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	focal := []relational.TupleID{gid(0)}
	// JW0002 is 2 ACG hops from the focal (0-1-2), JW0007 is disconnected.
	qs := queries("JW0002", "JW0007")

	direct, _, err := d.IdentifyRelatedTuples(qs, focal, Options{FocalAdjustment: true})
	if err != nil {
		t.Fatal(err)
	}
	multi, _, err := d.IdentifyRelatedTuples(qs, focal, Options{FocalAdjustment: true, AdjustmentHops: 3})
	if err != nil {
		t.Fatal(err)
	}
	conf := func(cands []Candidate, id string) float64 {
		for _, c := range cands {
			if c.Tuple.MustGet("GID").Str() == id {
				return c.Confidence
			}
		}
		t.Fatalf("candidate %s missing", id)
		return 0
	}
	// Direct-only adjustment cannot distinguish a 2-hop neighbor from a
	// disconnected tuple; the multi-hop extension can.
	if conf(direct, "JW0002") != conf(direct, "JW0007") {
		t.Errorf("direct adjustment should tie: %f vs %f",
			conf(direct, "JW0002"), conf(direct, "JW0007"))
	}
	if conf(multi, "JW0002") <= conf(multi, "JW0007") {
		t.Errorf("multi-hop adjustment should separate: %f vs %f",
			conf(multi, "JW0002"), conf(multi, "JW0007"))
	}
}

func TestSpreadingRestrictsSearch(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	focal := []relational.TupleID{gid(0)}
	qs := queries("JW0001", "JW0004", "JW0007")

	cands, stats, err := d.IdentifyRelatedTuples(qs, focal, Options{Spreading: true, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.MiniDBUsed {
		t.Fatal("miniDB not used")
	}
	// K=2 neighborhood of gene 0 = {0,1,2}: searched DB is 3 tuples.
	if stats.SearchedDB != 3 {
		t.Errorf("searched = %d, want 3", stats.SearchedDB)
	}
	got := map[string]bool{}
	for _, c := range cands {
		got[c.Tuple.MustGet("GID").Str()] = true
	}
	if !got["JW0001"] {
		t.Error("in-neighborhood tuple missed")
	}
	if got["JW0004"] || got["JW0007"] {
		t.Errorf("out-of-neighborhood tuples found: %v", got)
	}
	// Candidates resolve to rows of the full database.
	for _, c := range cands {
		orig, ok := db.Lookup(c.Tuple.ID)
		if !ok || orig != c.Tuple {
			t.Error("candidate row is not from the primary database")
		}
	}
}

func TestSpreadingRequiresStableACG(t *testing.T) {
	db, repo, _ := fixture(t)
	// A fresh, never-stable graph.
	g := acg.New(10, 0.1)
	g.AddAnnotation("a", []relational.TupleID{gid(0), gid(1)})
	d := New(db, repo, g)
	_, stats, err := d.IdentifyRelatedTuples(queries("JW0007"), []relational.TupleID{gid(0)},
		Options{Spreading: true, K: 2, RequireStable: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MiniDBUsed {
		t.Error("spreading used despite unstable ACG")
	}
	if stats.SearchedDB != db.TotalRows() {
		t.Error("should have fallen back to full search")
	}
}

func TestSpreadingWithoutGraphFails(t *testing.T) {
	db, repo, _ := fixture(t)
	d := New(db, repo, nil)
	_, _, err := d.IdentifyRelatedTuples(queries("JW0001"), nil, Options{Spreading: true, K: 1})
	if err == nil {
		t.Error("expected error without ACG")
	}
}

func TestSharedExecutionSameCandidates(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	qs := queries("JW0001", "JW0001", "JW0005")
	iso, isoStats, err := d.IdentifyRelatedTuples(qs, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sh, shStats, err := d.IdentifyRelatedTuples(qs, nil, Options{Shared: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(iso) != len(sh) {
		t.Fatalf("isolated %d vs shared %d candidates", len(iso), len(sh))
	}
	for i := range iso {
		if iso[i].Tuple.ID != sh[i].Tuple.ID || iso[i].Confidence != sh[i].Confidence {
			t.Errorf("candidate %d differs: %+v vs %+v", i, iso[i], sh[i])
		}
	}
	if shStats.Exec.StructuredQueries >= isoStats.Exec.StructuredQueries {
		t.Error("sharing did not reduce executed queries")
	}
}

func TestSpamGuard(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	// 15 distinct references over a 20-tuple database: 75% coverage.
	ids := make([]string, 15)
	for i := range ids {
		ids[i] = fmt.Sprintf("JW%04d", i)
	}
	qs := queries(ids...)
	cands, _, err := d.IdentifyRelatedTuples(qs, nil, Options{SpamFraction: 0.5})
	if !errors.Is(err, ErrSpamAnnotation) {
		t.Fatalf("expected ErrSpamAnnotation, got %v", err)
	}
	var spam *SpamError
	if !errors.As(err, &spam) {
		t.Fatalf("expected *SpamError, got %T", err)
	}
	if spam.Candidates != 15 || spam.DatabaseRows != 20 || spam.Fraction != 0.5 {
		t.Errorf("spam error counts wrong: %+v", spam)
	}
	if len(cands) != 15 {
		t.Errorf("candidates should still be returned for inspection: %d", len(cands))
	}
	// Guard disabled by default.
	if _, _, err := d.IdentifyRelatedTuples(qs, nil, Options{}); err != nil {
		t.Fatalf("disabled guard errored: %v", err)
	}
	// Normal annotations pass.
	if _, _, err := d.IdentifyRelatedTuples(queries("JW0001"), nil, Options{SpamFraction: 0.5}); err != nil {
		t.Fatalf("normal annotation flagged: %v", err)
	}
}

func TestNaiveIdentify(t *testing.T) {
	db, repo, g := fixture(t)
	d := New(db, repo, g)
	cands, stats := d.NaiveIdentify("the gene JW0003 interacts with genA somehow", []relational.TupleID{gid(3)})
	if stats.Exec.TuplesScanned != db.TotalRows() {
		t.Errorf("naive scanned %d", stats.Exec.TuplesScanned)
	}
	for _, c := range cands {
		if c.Tuple.ID == gid(3) {
			t.Error("focal not excluded from naive results")
		}
	}
	// genA should be found.
	found := false
	for _, c := range cands {
		if c.Tuple.MustGet("Name").Str() == "genA" {
			found = true
		}
	}
	if !found {
		t.Errorf("genA missing from naive results: %v", cands)
	}
}
