package discovery

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/keyword"
	"nebula/internal/meta"
	"nebula/internal/relational"
)

// planFixture builds a randomized two-table database (Gene ← Protein via
// FK), metadata with samples, and a random ACG. The shape is adversarial
// for the planner: indexed (GID, GeneID), full-text (Desc), and unindexed
// scan columns (Name, Family, PName) all appear, values collide across
// rows, and annotations wire random focal edges.
func planFixture(t testing.TB, seed int64, genes, prots int) (*relational.Database, *meta.Repository, *acg.Graph) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := relational.NewDatabase()
	geneSchema := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString},
			{Name: "Family", Type: relational.TypeString},
			{Name: "Desc", Type: relational.TypeString, FullText: true},
		},
		PrimaryKey: "GID",
	}
	protSchema := &relational.Schema{
		Name: "Protein",
		Columns: []relational.Column{
			{Name: "PID", Type: relational.TypeString, Indexed: true},
			{Name: "GeneID", Type: relational.TypeString, Indexed: true},
			{Name: "PName", Type: relational.TypeString},
		},
		PrimaryKey: "PID",
		ForeignKeys: []relational.ForeignKey{
			{Column: "GeneID", RefTable: "Gene", RefColumn: "GID"},
		},
	}
	gt, err := db.CreateTable(geneSchema)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := db.CreateTable(protSchema)
	if err != nil {
		t.Fatal(err)
	}
	words := []string{"kinase", "helicase", "transport", "binding", "repair", "membrane", "stress", "motility"}
	for i := 0; i < genes; i++ {
		desc := fmt.Sprintf("%s %s protein", words[rng.Intn(len(words))], words[rng.Intn(len(words))])
		if _, err := gt.Insert([]relational.Value{
			relational.String(fmt.Sprintf("JW%04d", i)),
			relational.String(fmt.Sprintf("gen%c", 'A'+rng.Intn(12))),
			relational.String(fmt.Sprintf("F%d", rng.Intn(5))),
			relational.String(desc),
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < prots; i++ {
		if _, err := pt.Insert([]relational.Value{
			relational.String(fmt.Sprintf("P%04d", i)),
			relational.String(fmt.Sprintf("JW%04d", rng.Intn(genes))),
			relational.String(fmt.Sprintf("prot%c", 'A'+rng.Intn(8))),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.ValidateForeignKeys(); err != nil {
		t.Fatal(err)
	}
	repo := meta.NewRepository(db, nil)
	if err := repo.AddConcept(&meta.Concept{
		Name: "Gene", Table: "Gene",
		ReferencedBy: [][]string{{"GID"}, {"Name"}, {"Family"}, {"Desc"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := repo.AddConcept(&meta.Concept{
		Name: "Protein", Table: "Protein",
		ReferencedBy: [][]string{{"PID"}, {"PName"}, {"GeneID"}},
	}); err != nil {
		t.Fatal(err)
	}
	for _, ref := range []meta.ColumnRef{
		{Table: "Gene", Column: "Family"},
		{Table: "Gene", Column: "Desc"},
		{Table: "Protein", Column: "PName"},
	} {
		repo.DrawSample(ref, 16, rng)
	}
	g := acg.New(0, 0)
	for i := 0; i < genes/2; i++ {
		a := rng.Intn(genes)
		b := rng.Intn(genes)
		if a == b {
			continue
		}
		g.AddAnnotation(annotation.ID(fmt.Sprintf("link%d", i)),
			[]relational.TupleID{planGID(a), planGID(b)})
	}
	return db, repo, g
}

func planGID(i int) relational.TupleID {
	return relational.TupleID{Table: "Gene", Key: fmt.Sprintf("s:jw%04d", i)}
}

// planQueries generates a randomized batch: a few heavy high-weight probes
// and a long tail of light ones — the distribution pruning exists for.
func planQueries(rng *rand.Rand, n int) []keyword.Query {
	words := []string{"kinase", "helicase", "transport", "binding", "repair", "membrane", "stress", "motility", "ghost", "absent"}
	out := make([]keyword.Query, 0, n)
	for i := 0; i < n; i++ {
		var k keyword.Keyword
		switch rng.Intn(5) {
		case 0:
			k = keyword.Keyword{Text: fmt.Sprintf("F%d", rng.Intn(6)), Role: keyword.RoleValue,
				TargetTable: "Gene", TargetColumn: "Family", Weight: 0.9}
		case 1:
			k = keyword.Keyword{Text: fmt.Sprintf("gen%c", 'A'+rng.Intn(14)), Role: keyword.RoleValue,
				TargetTable: "Gene", TargetColumn: "Name", Weight: 0.8}
		case 2:
			k = keyword.Keyword{Text: fmt.Sprintf("JW%04d", rng.Intn(40)), Role: keyword.RoleValue,
				TargetTable: "Gene", TargetColumn: "GID", Weight: 0.95}
		case 3:
			k = keyword.Keyword{Text: words[rng.Intn(len(words))], Role: keyword.RoleValue,
				TargetTable: "Gene", TargetColumn: "Desc", Weight: 0.7}
		default:
			k = keyword.Keyword{Text: fmt.Sprintf("prot%c", 'A'+rng.Intn(10)), Role: keyword.RoleValue,
				TargetTable: "Protein", TargetColumn: "PName", Weight: 0.75}
		}
		// Heavy head, light tail: most of the batch cannot move the top k.
		w := 0.05 + 0.1*rng.Float64()
		if i < 4 {
			w = 0.7 + 0.3*rng.Float64()
		}
		out = append(out, keyword.Query{ID: fmt.Sprintf("q%02d", i), Weight: w, Keywords: []keyword.Keyword{k}})
	}
	return out
}

// renderPlanCands folds a candidate list into one canonical string:
// identity, confidence to 12 decimals, and the full evidence list.
func renderPlanCands(cs []Candidate) string {
	var b strings.Builder
	for _, c := range cs {
		fmt.Fprintf(&b, "%v %.12f %s\n", c.Tuple.ID, c.Confidence, strings.Join(c.Evidence, ","))
	}
	return b.String()
}

// TestPlanTopKMatchesExhaustive is the prune-soundness property: across
// randomized datasets, seeds, and option variants, a planned top-k run
// returns byte-identical candidates (tuples, confidences, rank order,
// evidence) to the exhaustive run truncated to k, and never fewer than
// min(k, total). The test also requires pruning to actually fire across
// the sweep — a vacuously exact planner proves nothing.
func TestPlanTopKMatchesExhaustive(t *testing.T) {
	variants := []struct {
		name string
		mod  func(*Options)
	}{
		{"base", func(*Options) {}},
		{"focal", func(o *Options) { o.FocalAdjustment = true }},
		{"hops2", func(o *Options) { o.FocalAdjustment = true; o.AdjustmentHops = 2 }},
		{"workers4", func(o *Options) { o.MaxWorkers = 4 }},
	}
	prunedRuns := 0
	for seed := int64(1); seed <= 6; seed++ {
		db, repo, g := planFixture(t, seed, 60, 40)
		rng := rand.New(rand.NewSource(seed * 101))
		queries := planQueries(rng, 24)
		focal := []relational.TupleID{planGID(rng.Intn(60)), planGID(rng.Intn(60))}
		for _, v := range variants {
			for _, k := range []int{1, 3, 7} {
				opts := Options{Shared: true, TopK: k}
				v.mod(&opts)
				d := New(db, repo, g)
				full, _, err := d.IdentifyRelatedTuples(queries, focal, func() Options {
					o := opts
					o.TopK = 0
					return o
				}())
				if err != nil {
					t.Fatalf("seed=%d %s k=%d exhaustive: %v", seed, v.name, k, err)
				}
				exact, _, err := d.IdentifyRelatedTuples(queries, focal, opts)
				if err != nil {
					t.Fatalf("seed=%d %s k=%d exhaustive topk: %v", seed, v.name, k, err)
				}
				planned, stats, err := d.IdentifyRelatedTuples(queries, focal, func() Options {
					o := opts
					o.Plan = true
					return o
				}())
				if err != nil {
					t.Fatalf("seed=%d %s k=%d planned: %v", seed, v.name, k, err)
				}
				if stats.Plan == nil || !stats.Plan.Enabled {
					t.Fatalf("seed=%d %s k=%d: planner did not run: %+v", seed, v.name, k, stats.Plan)
				}
				if got, want := renderPlanCands(planned), renderPlanCands(exact); got != want {
					t.Fatalf("seed=%d %s k=%d: planned top-k diverged from exhaustive\n--- exhaustive\n%s--- planned (pruned=%d frontier=%d)\n%s",
						seed, v.name, k, want, stats.Plan.Pruned, stats.Plan.Frontier, got)
				}
				min := k
				if len(full) < min {
					min = len(full)
				}
				if len(planned) < min {
					t.Fatalf("seed=%d %s k=%d: %d attachments, want at least min(k,total)=%d",
						seed, v.name, k, len(planned), min)
				}
				if stats.Plan.Pruned > 0 {
					prunedRuns++
				}
				if stats.Plan.Executed+stats.Plan.Pruned != len(queries) {
					t.Errorf("seed=%d %s k=%d: executed %d + pruned %d != %d queries",
						seed, v.name, k, stats.Plan.Executed, stats.Plan.Pruned, len(queries))
				}
				if len(stats.Plan.Skipped) != stats.Plan.Pruned {
					t.Errorf("seed=%d %s k=%d: %d skip records for %d pruned queries",
						seed, v.name, k, len(stats.Plan.Skipped), stats.Plan.Pruned)
				}
			}
		}
	}
	if prunedRuns == 0 {
		t.Fatal("pruning never fired across the property sweep; the test exercises nothing")
	}
	t.Logf("pruning fired in %d runs", prunedRuns)
}

// TestPlanIncludeRelatedMatchesExhaustive covers the related-row expansion
// path of completion separately: IncludeRelated rewrites both the merge
// fold and the restricted frontier evaluation.
func TestPlanIncludeRelatedMatchesExhaustive(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		db, repo, g := planFixture(t, seed, 40, 60)
		rng := rand.New(rand.NewSource(seed * 77))
		queries := planQueries(rng, 20)
		d := New(db, repo, g)
		d.IncludeRelated = true
		opts := Options{Shared: true, FocalAdjustment: true, TopK: 5}
		exact, _, err := d.IdentifyRelatedTuples(queries, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		opts.Plan = true
		planned, stats, err := d.IdentifyRelatedTuples(queries, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := renderPlanCands(planned), renderPlanCands(exact); got != want {
			t.Fatalf("seed=%d: IncludeRelated planned run diverged (pruned=%d)\n--- exhaustive\n%s--- planned\n%s",
				seed, stats.Plan.Pruned, want, got)
		}
	}
}

// TestPlanExactWhenKCoversAll pins the exactness contract's boundary: with
// k at or above the exhaustive candidate count, a planned run's full
// output is byte-identical to the legacy path's (not just the top k).
func TestPlanExactWhenKCoversAll(t *testing.T) {
	db, repo, g := planFixture(t, 9, 50, 30)
	rng := rand.New(rand.NewSource(9))
	queries := planQueries(rng, 24)
	d := New(db, repo, g)
	opts := Options{Shared: true, FocalAdjustment: true}
	full, _, err := d.IdentifyRelatedTuples(queries, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Plan = true
	opts.TopK = len(full) + 10
	planned, stats, err := d.IdentifyRelatedTuples(queries, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderPlanCands(planned), renderPlanCands(full); got != want {
		t.Fatalf("k >= total: planned output not byte-identical (pruned=%d)\n--- legacy\n%s--- planned\n%s",
			stats.Plan.Pruned, want, got)
	}
}

// TestPlanDeterministicAcrossWorkers is the planner's determinism suite:
// planned output — candidates and every plan decision — is byte-identical
// at worker counts 1/2/4/8, with and without a shared result cache, and
// with and without a scan budget.
func TestPlanDeterministicAcrossWorkers(t *testing.T) {
	db, repo, g := planFixture(t, 3, 60, 40)
	rng := rand.New(rand.NewSource(3))
	queries := planQueries(rng, 24)
	focal := []relational.TupleID{planGID(7)}
	for _, cached := range []bool{false, true} {
		for _, budget := range []int{0, 2000} {
			var cache *keyword.QueryCache
			if cached {
				cache = keyword.NewQueryCache(1 << 20)
			}
			run := func(workers int) (string, string) {
				d := New(db, repo, g)
				d.Cache = cache
				cands, stats, err := d.IdentifyRelatedTuples(queries, focal, Options{
					Shared: true, FocalAdjustment: true, Plan: true, TopK: 5,
					MaxScannedRows: budget, MaxWorkers: workers,
				})
				if err != nil {
					t.Fatalf("cached=%v budget=%d workers=%d: %v", cached, budget, workers, err)
				}
				return renderPlanCands(cands), fmt.Sprintf("%+v degraded=%v", *stats.Plan, stats.Degraded)
			}
			baseCands, basePlan := run(1)
			for _, workers := range []int{2, 4, 8} {
				cands, plan := run(workers)
				if cands != baseCands {
					t.Errorf("cached=%v budget=%d workers=%d: candidates diverged\n--- workers=1\n%s--- workers=%d\n%s",
						cached, budget, workers, baseCands, workers, cands)
				}
				if plan != basePlan {
					t.Errorf("cached=%v budget=%d workers=%d: plan decisions diverged\n--- workers=1\n%s\n--- workers=%d\n%s",
						cached, budget, workers, basePlan, workers, plan)
				}
			}
		}
	}
}

// TestPlanCacheIdenticalToCold checks that a warm shared cache changes no
// planned output: the planner's decisions read estimates and confidence
// bounds only, never cache state.
func TestPlanCacheIdenticalToCold(t *testing.T) {
	db, repo, g := planFixture(t, 5, 60, 40)
	rng := rand.New(rand.NewSource(5))
	queries := planQueries(rng, 24)
	run := func(cache *keyword.QueryCache) string {
		d := New(db, repo, g)
		d.Cache = cache
		cands, stats, err := d.IdentifyRelatedTuples(queries, nil, Options{
			Shared: true, FocalAdjustment: true, Plan: true, TopK: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return renderPlanCands(cands) + fmt.Sprintf("%+v", *stats.Plan)
	}
	cold := run(nil)
	cache := keyword.NewQueryCache(1 << 20)
	first := run(cache)
	warm := run(cache) // second pass over a populated cache
	if first != cold || warm != cold {
		t.Errorf("cache state changed planned output\n--- cold\n%s\n--- cache first\n%s\n--- cache warm\n%s", cold, first, warm)
	}
}

// TestPlanIneligibleFallsBack checks that an ineligible planning request
// runs the legacy path unchanged and records why it could not plan.
func TestPlanIneligibleFallsBack(t *testing.T) {
	db, repo, g := planFixture(t, 2, 30, 20)
	rng := rand.New(rand.NewSource(2))
	queries := planQueries(rng, 12)
	cases := []struct {
		name string
		opts Options
		want string
	}{
		{"no-topk", Options{Shared: true, Plan: true}, "planning requires TOPK > 0"},
		{"unshared", Options{Plan: true, TopK: 5}, "planning requires shared execution"},
	}
	for _, tc := range cases {
		d := New(db, repo, g)
		legacy := tc.opts
		legacy.Plan = false
		want, _, err := d.IdentifyRelatedTuples(queries, nil, legacy)
		if err != nil {
			t.Fatal(err)
		}
		got, stats, err := d.IdentifyRelatedTuples(queries, nil, tc.opts)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Plan == nil || stats.Plan.Enabled || stats.Plan.Reason != tc.want {
			t.Errorf("%s: Plan = %+v, want disabled with reason %q", tc.name, stats.Plan, tc.want)
		}
		if renderPlanCands(got) != renderPlanCands(want) {
			t.Errorf("%s: fallback output differs from legacy", tc.name)
		}
	}
	// A custom searcher is the third ineligibility.
	d := New(db, repo, g)
	d.NewSearcher = func(sdb *relational.Database) keyword.Searcher { return keyword.NewEngine(sdb, repo) }
	_, stats, err := d.IdentifyRelatedTuples(queries, nil, Options{Shared: true, Plan: true, TopK: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Plan == nil || stats.Plan.Enabled || stats.Plan.Reason == "" {
		t.Errorf("custom searcher: Plan = %+v, want disabled with a reason", stats.Plan)
	}
}

// TestPlanBudgetFallsBackGoverned checks the governed-path accounting fix:
// a scan budget makes planning ineligible, so a budgeted Plan=true run
// executes the governed shared path — byte-identical candidates AND
// byte-identical Degraded reasons (same truncation point, same scanned
// count) as the same run with Plan=false. Before this, the planner
// truncated budgets in wave order, reporting a different scanned count
// than the legacy fold order.
func TestPlanBudgetFallsBackGoverned(t *testing.T) {
	db, repo, g := planFixture(t, 4, 60, 40)
	rng := rand.New(rand.NewSource(4))
	queries := planQueries(rng, 24)
	for _, budget := range []int{100, 1000} {
		d := New(db, repo, g)
		legacy, legacyStats, err := d.IdentifyRelatedTuples(queries, nil, Options{
			Shared: true, TopK: 5, MaxScannedRows: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		planned, stats, err := d.IdentifyRelatedTuples(queries, nil, Options{
			Shared: true, Plan: true, TopK: 5, MaxScannedRows: budget,
		})
		if err != nil {
			t.Fatal(err)
		}
		if stats.Plan == nil || stats.Plan.Enabled || !strings.Contains(stats.Plan.Reason, "scan budget") {
			t.Fatalf("budget=%d: Plan = %+v, want disabled with a scan-budget reason", budget, stats.Plan)
		}
		if stats.Plan.Interrupted {
			t.Errorf("budget=%d: fallback run set Plan.Interrupted", budget)
		}
		if budget == 100 && len(legacyStats.Degraded) == 0 {
			t.Fatalf("budget=%d: governed run recorded no Degraded reason", budget)
		}
		if got, want := fmt.Sprintf("%v", stats.Degraded), fmt.Sprintf("%v", legacyStats.Degraded); got != want {
			t.Errorf("budget=%d: Degraded reasons diverge\n--- plan off\n%s\n--- plan on\n%s", budget, want, got)
		}
		if got, want := renderPlanCands(planned), renderPlanCands(legacy); got != want {
			t.Errorf("budget=%d: budgeted planned output not byte-identical to governed path\n--- plan off\n%s--- plan on\n%s",
				budget, want, got)
		}
	}
}
