// Package discovery implements Stage 2 of Nebula (§6): executing the
// keyword queries generated from an annotation, combining and weighting the
// produced tuples (IdentifyRelatedTuples, Figure 5), adjusting confidences
// with the annotation's focal through the ACG (§6.2), and the approximate
// focal-spreading search that restricts execution to a miniDB of the
// focal's K-hop neighborhood (§6.3).
package discovery

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"nebula/internal/acg"
	"nebula/internal/keyword"
	"nebula/internal/meta"
	"nebula/internal/relational"
	"nebula/internal/trace"
)

// ErrSpamAnnotation flags an annotation whose discovered candidates cover
// an implausible share of the database. The paper assumes spam-like
// annotations ("an annotation that references all (or most) data tuples")
// do not exist and cites click-spam detection [26] for handling them; this
// guard is the minimal defense a production deployment needs: such
// annotations are surfaced to the caller for quarantine instead of
// flooding the verification pipeline. The candidates are still returned
// alongside the error for inspection. The concrete error is a *SpamError
// carrying the counts quarantine tooling needs; errors.Is against this
// sentinel matches it.
var ErrSpamAnnotation = errors.New("discovery: annotation references an implausible share of the database")

// SpamError is the concrete spam-guard error: it records how many
// candidates the annotation produced against how large a database, so
// quarantine tooling can log and threshold without re-running discovery.
type SpamError struct {
	// Candidates is the number of candidate tuples discovered.
	Candidates int
	// DatabaseRows is the total tuple count of the database searched.
	DatabaseRows int
	// Fraction is the configured SpamFraction threshold that tripped.
	Fraction float64
}

func (e *SpamError) Error() string {
	return fmt.Sprintf("%v: %d candidates over %d tuples (threshold %.2f)",
		ErrSpamAnnotation, e.Candidates, e.DatabaseRows, e.Fraction)
}

// Is makes errors.Is(err, ErrSpamAnnotation) match a *SpamError.
func (e *SpamError) Is(target error) bool { return target == ErrSpamAnnotation }

// Candidate is one predicted attachment: a tuple the annotation is believed
// to reference, with Nebula's confidence and the supporting evidence.
type Candidate struct {
	// Tuple is the candidate data tuple (a row of the full database).
	Tuple *relational.Row
	// Confidence is the normalized confidence in [0,1].
	Confidence float64
	// Evidence lists the IDs of the keyword queries that produced the
	// tuple — the v.evidence reported to verifying experts (§7).
	Evidence []string
}

// Options control the execution strategy.
type Options struct {
	// Shared enables the multi-query shared execution of §6.
	Shared bool
	// FocalAdjustment enables the ACG-based confidence adjustment of §6.2.
	FocalAdjustment bool
	// AdjustmentHops extends the focal adjustment to shortest paths of up
	// to this many hops, multiplying the in-between edge weights (the §6.2
	// extension). 0 or 1 keeps the paper's default of direct edges only —
	// the semantically stronger choice, which the paper prefers to avoid
	// overfitting.
	AdjustmentHops int
	// Spreading enables the approximate focal-based spreading search of
	// §6.3: only the K-hop ACG neighborhood of the focal is searched.
	Spreading bool
	// K is the spreading radius in hops.
	K int
	// RequireStable restricts spreading to a stable ACG (Definition 6.1);
	// when the graph is unstable the search falls back to the full
	// database, as the paper prescribes.
	RequireStable bool
	// SpamFraction, when positive, raises ErrSpamAnnotation if the
	// candidate set exceeds this fraction of the database's tuples.
	SpamFraction float64
	// MaxScannedRows stops keyword execution once this many tuples have
	// been searched; the run degrades to the results produced so far. 0
	// means unlimited.
	MaxScannedRows int
	// MaxCandidates truncates the final candidate list to the N strongest
	// predictions. 0 means unlimited.
	MaxCandidates int
	// MaxWorkers bounds the keyword executor's worker pool. 0 and 1 select
	// the sequential legacy path; n > 1 executes independent keyword work
	// concurrently while keeping results byte-identical to sequential.
	MaxWorkers int
	// Retry is applied to transient searcher errors (see RetryPolicy).
	// The zero value disables retries.
	Retry RetryPolicy
	// Plan enables the cost-based planner: queries execute in estimated
	// confidence-per-cost order and stop early once the pending queries
	// cannot change the top TopK attachments. Requires TopK > 0, shared
	// execution, and the default search engine; an ineligible request
	// falls back to the legacy path and records why in Stats.Plan. The
	// top-k output of a planned run is byte-identical to the exhaustive
	// run's.
	Plan bool
	// TopK, when positive, truncates the final candidate list to the
	// strongest k attachments (before MaxCandidates). It is also the k
	// the planner's early termination maintains.
	TopK int
}

// Stats reports the cost of one discovery run.
type Stats struct {
	// Exec aggregates the keyword executor's counters.
	Exec keyword.ExecStats
	// SearchedDB is the number of tuples in the database actually
	// searched: the full database, or the miniDB under spreading.
	SearchedDB int
	// MiniDBUsed reports whether spreading built and used a miniDB.
	MiniDBUsed bool
	// Candidates is the number of candidates produced.
	Candidates int
	// Retries counts searcher re-attempts spent on transient errors.
	Retries int
	// Degraded lists every way this run deviated from the full, unbounded
	// pipeline: budget truncations, cancelled scans, the unstable-ACG
	// spreading fallback, retried transient faults. Empty means the run
	// is exactly what the paper's algorithm would have produced. Callers
	// routing candidates into verification must treat a non-empty list as
	// "do not auto-accept".
	Degraded []string
	// Plan reports the planner's decisions when planning was requested
	// (nil otherwise). A pruned run is not degraded — its top-k output is
	// exact — but Plan.Skipped keeps every skip auditable.
	Plan *PlanStats
}

// degrade appends a reason to the run's degradation record.
func (s *Stats) degrade(reason string) { s.Degraded = append(s.Degraded, reason) }

// Discoverer runs the discovery pipeline against one database.
type Discoverer struct {
	db    *relational.Database
	meta  *meta.Repository
	graph *acg.Graph

	// Engine configuration applied to the keyword engines it builds.
	IncludeRelated bool
	// NewSearcher overrides the keyword-search technique. It is invoked
	// with the database to search (the full database, or the spreading
	// miniDB) and must return a ready technique. Nil selects the default
	// metadata-approach engine. Note that pre-processing techniques (e.g.
	// keyword.SymbolTableEngine) pay their indexing pass on every miniDB
	// under spreading — the metadata approach is the natural companion of
	// the spreading search.
	NewSearcher func(db *relational.Database) keyword.Searcher
	// Cache, when non-nil, is attached to the keyword engines this run
	// builds — but only for searches over the full database. A spreading
	// miniDB shares fingerprints with the full database while holding a
	// subset of its rows, so caching its results would poison the keys.
	Cache *keyword.QueryCache
	// Uncached disables all result caching for this run's searches (set
	// under scan budgets and per-request cache opt-out).
	Uncached bool
}

// New builds a Discoverer. graph may be nil when neither focal adjustment
// nor spreading will be requested.
func New(db *relational.Database, repo *meta.Repository, graph *acg.Graph) *Discoverer {
	return &Discoverer{db: db, meta: repo, graph: graph}
}

// IdentifyRelatedTuples implements Figure 5 with the §6.2/§6.3 extensions:
// execute every keyword query (over the full database, or over the focal's
// K-hop miniDB when spreading applies), weight each produced tuple by its
// query's weight, reward tuples produced by multiple queries by summing
// their confidences, apply the focal-based adjustment, and normalize
// relative to the maximum confidence. Tuples already in the focal are
// excluded: Definition 3.4 asks for the *other* related tuples.
func (d *Discoverer) IdentifyRelatedTuples(queries []keyword.Query, focal []relational.TupleID, opts Options) ([]Candidate, Stats, error) {
	return d.IdentifyRelatedTuplesContext(context.Background(), queries, focal, opts)
}

// IdentifyRelatedTuplesContext is IdentifyRelatedTuples under governance:
// ctx is checked at per-query (and per-tuple-batch) granularity inside the
// keyword executor, the Options budgets bound the work, and transient
// searcher errors are retried per Options.Retry. On cancellation or
// deadline the candidates aggregated from the partial execution are
// returned together with a typed ErrCancelled/ErrBudgetExceeded; budget
// truncations are not errors and only mark the run degraded. Every
// deviation from the unbounded pipeline is listed in Stats.Degraded.
func (d *Discoverer) IdentifyRelatedTuplesContext(ctx context.Context, queries []keyword.Query, focal []relational.TupleID, opts Options) ([]Candidate, Stats, error) {
	var stats Stats
	if len(queries) == 0 {
		return nil, stats, nil
	}
	if err := ctx.Err(); err != nil {
		// The deadline can fire between query generation and execution;
		// an interrupted run always reports why it is partial.
		stats.degrade(fmt.Sprintf("discovery: interrupted before execution (%v)", err))
		return nil, stats, wrapCtxErr(err)
	}

	// Choose the search database: full, or the spreading miniDB.
	searchDB := d.db
	if opts.Spreading {
		if d.graph == nil {
			return nil, stats, fmt.Errorf("discovery: spreading requires an ACG")
		}
		if !opts.RequireStable || d.graph.Stable() {
			ids := d.graph.Neighborhood(focal, opts.K)
			mini, err := d.db.Subset(ids)
			if err != nil {
				return nil, stats, fmt.Errorf("discovery: %w", err)
			}
			searchDB = mini
			stats.MiniDBUsed = true
		} else {
			// The paper prescribes this fallback (Definition 6.1) but a
			// production operator must be able to see it: the run pays a
			// full-database search the caller asked to avoid.
			stats.degrade(fmt.Sprintf(
				"discovery: ACG unstable; spreading (K=%d) fell back to full-database search", opts.K))
		}
	}
	stats.SearchedDB = searchDB.TotalRows()

	var searcher keyword.Searcher
	if d.NewSearcher != nil {
		searcher = d.NewSearcher(searchDB)
	} else {
		engine := keyword.NewEngine(searchDB, d.meta)
		engine.IncludeRelated = d.IncludeRelated
		engine.Uncached = d.Uncached
		if searchDB == d.db {
			engine.Cache = d.Cache
		}
		searcher = engine
	}

	// Step 1 — execute the queries; incorporate each query's weight.
	// With planning eligible, the planner orders queries by estimated
	// confidence-per-cost and stops early once the pending queries cannot
	// change the top-k attachments. Otherwise the legacy path executes
	// everything, with transient searcher faults retried with capped
	// backoff. Either way a surviving context error degrades the run to
	// whatever the partial execution produced.
	lim := keyword.Limits{MaxScannedRows: opts.MaxScannedRows, MaxWorkers: opts.MaxWorkers}
	var results map[string][]keyword.Result
	var err error
	usePlan := false
	if opts.Plan {
		reason := planIneligible(opts, d.NewSearcher != nil)
		stats.Plan = &PlanStats{TopK: opts.TopK, Queries: len(queries), Reason: reason}
		usePlan = reason == ""
	}
	if usePlan {
		engine := searcher.(*keyword.Engine) // eligibility requires the default engine
		stats.Plan.Enabled = true
		results, err = d.planExecute(ctx, engine, queries, focal, opts, lim, &stats, stats.Plan)
	} else {
		espan, ectx := trace.StartSpan(ctx, "execute")
		var retries int
		retries, err = opts.Retry.do(ctx, func() error {
			var attemptErr error
			var st keyword.ExecStats
			results, st, attemptErr = searcher.ExecuteBatchContext(ectx, queries, opts.Shared, lim)
			stats.Exec.Add(st)
			return attemptErr
		})
		if espan.Enabled() {
			espan.AddInt("keyword_queries", len(queries))
			espan.AddInt("structured_queries", stats.Exec.StructuredQueries)
			espan.AddInt("tuples_scanned", stats.Exec.TuplesScanned)
			espan.AddInt("tuples_returned", stats.Exec.TuplesReturned)
			espan.AddInt("cache_hits", stats.Exec.CacheHits)
			espan.AddInt("retries", retries)
			espan.End()
		}
		stats.Retries = retries
		if retries > 0 {
			stats.degrade(fmt.Sprintf("discovery: %d transient searcher error(s) retried", retries))
		}
	}
	var execErr error
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Cancelled or out of budget: aggregate the partial results
			// below and surface the typed error with them.
			execErr = wrapCtxErr(err)
			stats.degrade(fmt.Sprintf("discovery: execution interrupted (%v); candidates are partial", err))
		} else {
			return nil, stats, fmt.Errorf("discovery: search failed: %w", err)
		}
	}
	stats.Degraded = append(stats.Degraded, stats.Exec.Degraded...)

	aspan, _ := trace.StartSpan(ctx, "aggregate")
	type agg struct {
		conf     float64
		evidence []string
	}
	focalSet := make(map[relational.TupleID]struct{}, len(focal))
	for _, f := range focal {
		focalSet[f] = struct{}{}
	}
	byTuple := make(map[relational.TupleID]*agg)
	var order []relational.TupleID // first-seen order for determinism
	for _, q := range queries {
		for _, r := range results[q.ID] {
			if _, isFocal := focalSet[r.Tuple.ID]; isFocal {
				continue
			}
			weighted := r.Confidence * q.Weight
			a, ok := byTuple[r.Tuple.ID]
			if !ok {
				a = &agg{}
				byTuple[r.Tuple.ID] = a
				order = append(order, r.Tuple.ID)
			}
			// Step 2 — group by tuple, summing confidences across queries.
			a.conf += weighted
			a.evidence = append(a.evidence, q.ID)
		}
	}

	if aspan.Enabled() {
		aspan.AddInt("distinct_tuples", len(order))
		aspan.End()
	}

	// §6.2 — focal-based confidence adjustment: for each direct ACG edge
	// e(t, f) to a focal tuple, t.conf += e.weight × t.conf. With
	// AdjustmentHops > 1, the reward extends to multi-hop shortest paths
	// using the product of the in-between edge weights.
	if opts.FocalAdjustment && d.graph != nil {
		jspan, _ := trace.StartSpan(ctx, "adjust_focal")
		if opts.AdjustmentHops > 1 {
			for _, f := range focal {
				weights := d.graph.PathWeights(f, opts.AdjustmentHops)
				for id, a := range byTuple {
					if w := weights[id]; w > 0 {
						a.conf += w * a.conf
					}
				}
			}
		} else {
			for id, a := range byTuple {
				for _, f := range focal {
					if w := d.graph.Weight(id, f); w > 0 {
						a.conf += w * a.conf
					}
				}
			}
		}
		jspan.End()
	}

	// Step 3 — normalize relative to the maximum confidence.
	rspan, _ := trace.StartSpan(ctx, "rank")
	maxConf := 0.0
	for _, a := range byTuple {
		if a.conf > maxConf {
			maxConf = a.conf
		}
	}
	out := make([]Candidate, 0, len(byTuple))
	for _, id := range order {
		a := byTuple[id]
		conf := 0.0
		if maxConf > 0 {
			conf = a.conf / maxConf
		}
		// Resolve the tuple in the full database so callers always hold
		// rows of the primary store, even under spreading.
		row, ok := d.db.Lookup(id)
		if !ok {
			continue
		}
		out = append(out, Candidate{Tuple: row, Confidence: conf, Evidence: a.evidence})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	// Top-k selection is the semantics the caller asked for, not a budget
	// degradation: with planning on, only the top k are guaranteed exact.
	if opts.TopK > 0 && len(out) > opts.TopK {
		if stats.Plan != nil {
			stats.Plan.Truncated = len(out) - opts.TopK
		}
		out = out[:opts.TopK]
	}
	if opts.MaxCandidates > 0 && len(out) > opts.MaxCandidates {
		stats.degrade(fmt.Sprintf(
			"discovery: candidate budget truncated %d candidates to the strongest %d", len(out), opts.MaxCandidates))
		out = out[:opts.MaxCandidates]
	}
	stats.Candidates = len(out)
	if rspan.Enabled() {
		rspan.AddInt("candidates", len(out))
		rspan.End()
	}
	if execErr != nil {
		return out, stats, execErr
	}
	if opts.SpamFraction > 0 && float64(len(out)) > opts.SpamFraction*float64(d.db.TotalRows()) {
		return out, stats, &SpamError{
			Candidates:   len(out),
			DatabaseRows: d.db.TotalRows(),
			Fraction:     opts.SpamFraction,
		}
	}
	return out, stats, nil
}

// NaiveIdentify runs the §4 baseline end to end: the annotation body is one
// giant keyword query over the full database, and the produced tuples keep
// the naive engine's confidence (no grouping reward, no focal adjustment —
// the baseline has none of Nebula's context).
func (d *Discoverer) NaiveIdentify(body string, focal []relational.TupleID) ([]Candidate, Stats) {
	out, stats, _ := d.NaiveIdentifyContext(context.Background(), body, focal, Options{})
	return out, stats
}

// NaiveIdentifyContext is NaiveIdentify under governance: the baseline's
// full-database scan — its defining pathology — polls ctx per tuple batch
// and honors Options.MaxScannedRows/MaxCandidates. Partial results come
// back with a typed ErrCancelled/ErrBudgetExceeded on interruption.
func (d *Discoverer) NaiveIdentifyContext(ctx context.Context, body string, focal []relational.TupleID, opts Options) ([]Candidate, Stats, error) {
	var stats Stats
	engine := keyword.NewEngine(d.db, d.meta)
	nspan, _ := trace.StartSpan(ctx, "naive_scan")
	rs, execStats, err := engine.NaiveSearchContext(ctx, body, keyword.Limits{MaxScannedRows: opts.MaxScannedRows})
	if nspan.Enabled() {
		nspan.AddInt("tuples_scanned", execStats.TuplesScanned)
		nspan.AddInt("tuples_returned", execStats.TuplesReturned)
		nspan.End()
	}
	stats.Exec = execStats
	stats.Degraded = append(stats.Degraded, execStats.Degraded...)
	var execErr error
	if err != nil {
		execErr = wrapCtxErr(err)
		stats.degrade(fmt.Sprintf("discovery: naive scan interrupted (%v); candidates are partial", err))
	}
	stats.SearchedDB = d.db.TotalRows()
	focalSet := make(map[relational.TupleID]struct{}, len(focal))
	for _, f := range focal {
		focalSet[f] = struct{}{}
	}
	out := make([]Candidate, 0, len(rs))
	for _, r := range rs {
		if _, isFocal := focalSet[r.Tuple.ID]; isFocal {
			continue
		}
		out = append(out, Candidate{Tuple: r.Tuple, Confidence: r.Confidence, Evidence: []string{"naive"}})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Confidence > out[j].Confidence })
	if opts.MaxCandidates > 0 && len(out) > opts.MaxCandidates {
		stats.degrade(fmt.Sprintf(
			"discovery: candidate budget truncated %d candidates to the strongest %d", len(out), opts.MaxCandidates))
		out = out[:opts.MaxCandidates]
	}
	stats.Candidates = len(out)
	return out, stats, execErr
}
