package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"nebula"
	"nebula/internal/snapshot"
)

// ---- JSON wire types -------------------------------------------------------

type errorResponse struct {
	Error  string `json:"error"`
	Reason string `json:"reason"`
}

type annotationRequest struct {
	ID       string   `json:"id"`
	Author   string   `json:"author,omitempty"`
	Body     string   `json:"body"`
	Kind     string   `json:"kind,omitempty"`
	AttachTo []string `json:"attach_to"` // "Table/Key" tuple references
}

type discoverRequest struct {
	ID      string                `json:"id"`
	Options nebula.RequestOptions `json:"options"`
}

type batchRequest struct {
	IDs     []string              `json:"ids"`
	Process bool                  `json:"process,omitempty"`
	Options nebula.RequestOptions `json:"options"`
}

type verdictRequest struct{} // accept/reject carry the VID in the path

// asyncAnnotationRequest is annotationRequest plus a drain priority for the
// queued discovery job.
type asyncAnnotationRequest struct {
	ID       string   `json:"id"`
	Author   string   `json:"author,omitempty"`
	Body     string   `json:"body"`
	Kind     string   `json:"kind,omitempty"`
	AttachTo []string `json:"attach_to"`
	Priority int      `json:"priority,omitempty"`
}

type ingestJobJSON struct {
	Annotation string `json:"annotation"`
	Kind       string `json:"kind"`
	Priority   int    `json:"priority"`
	Seq        uint64 `json:"seq"`
	WaitingMS  int64  `json:"waiting_ms"`
}

type ingestStatusResponse struct {
	Stats nebula.IngestStats `json:"stats"`
	Jobs  []ingestJobJSON    `json:"jobs"`
	// Shards reports the engine's hash-partitioned synchronization domain:
	// how queued work and annotation state distribute across shards.
	Shards nebula.ShardStats `json:"shards"`
	// Segments reports the disk-backed index substrate (segment files,
	// flush/compaction counters, in-heap tail). Enabled false when the
	// engine runs the pure in-heap index.
	Segments nebula.StoreStats `json:"segments"`
}

type ingestFlushRequest struct {
	// Max bounds the jobs drained; 0 or absent flushes the whole queue.
	Max int `json:"max,omitempty"`
}

type ingestFlushResponse struct {
	Popped   int `json:"popped"`
	Drained  int `json:"drained"`
	Requeued int `json:"requeued"`
	Skipped  int `json:"skipped"`
	Failed   int `json:"failed"`
}

type snapshotRequest struct {
	Path string `json:"path,omitempty"`
}

type candidateJSON struct {
	Tuple      string   `json:"tuple"`
	Confidence float64  `json:"confidence"`
	Evidence   []string `json:"evidence,omitempty"`
}

type statsJSON struct {
	Queries           int  `json:"queries"`
	SearchedDB        int  `json:"searched_db"`
	MiniDBUsed        bool `json:"minidb_used,omitempty"`
	StructuredQueries int  `json:"structured_queries"`
	SharedQueries     int  `json:"shared_queries"`
	TuplesScanned     int  `json:"tuples_scanned"`
	Workers           int  `json:"workers,omitempty"`
	ParallelBatches   int  `json:"parallel_batches,omitempty"`
	Retries           int  `json:"retries,omitempty"`
	CacheHits         int  `json:"cache_hits,omitempty"`
	// Plan reports the cost-based planner's decisions when planning was
	// requested for the run.
	Plan *nebula.PlanStats `json:"plan,omitempty"`
}

type taskJSON struct {
	VID        int64    `json:"vid"`
	Annotation string   `json:"annotation"`
	Tuple      string   `json:"tuple"`
	Confidence float64  `json:"confidence"`
	Evidence   []string `json:"evidence,omitempty"`
}

type outcomeJSON struct {
	Accepted []taskJSON `json:"accepted"`
	Pending  []taskJSON `json:"pending"`
	Rejected []taskJSON `json:"rejected"`
}

// discoverResponse reports one run. Degraded lists every governance
// shortcut the run took; Partial+Error mark a run interrupted by its
// deadline or cancellation (the candidates are the partial prefix). A
// degraded or partial run is therefore always distinguishable from a clean
// success by the response body alone.
type discoverResponse struct {
	ID         string          `json:"id"`
	Candidates []candidateJSON `json:"candidates"`
	Degraded   []string        `json:"degraded,omitempty"`
	Partial    bool            `json:"partial,omitempty"`
	Error      string          `json:"error,omitempty"`
	Stats      statsJSON       `json:"stats"`
	Outcome    *outcomeJSON    `json:"outcome,omitempty"`
	// Trace is the request's span tree, present only when the client set
	// options.trace. Tracing is observe-only: the rest of the response is
	// byte-identical with and without it.
	Trace *nebula.TraceNode `json:"trace,omitempty"`
}

type batchResponse struct {
	Results []discoverResponse `json:"results"`
}

type pendingResponse struct {
	Tasks []taskJSON `json:"tasks"`
}

type snapshotResponse struct {
	Path        string `json:"path"`
	Bytes       int64  `json:"bytes,omitempty"`
	Annotations int    `json:"annotations,omitempty"`
	Tuples      int    `json:"tuples,omitempty"`
}

type healthResponse struct {
	Status   string `json:"status"`
	Queued   int    `json:"queued"`
	InFlight int    `json:"inflight"`
}

// ---- helpers ---------------------------------------------------------------

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, reason, msg string) {
	writeJSON(w, code, errorResponse{Error: msg, Reason: reason})
}

// decodeJSON parses a request body, answering 400 on malformed or
// unexpected input. It reports whether decoding succeeded.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad_json", fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

// parseTupleID parses the wire form "Table/Key" (the String() rendering of
// a TupleID; keys may themselves contain slashes).
func parseTupleID(s string) (nebula.TupleID, error) {
	table, key, ok := strings.Cut(s, "/")
	if !ok || table == "" || key == "" {
		return nebula.TupleID{}, fmt.Errorf("tuple reference %q is not Table/Key", s)
	}
	return nebula.TupleID{Table: table, Key: key}, nil
}

func candidatesJSON(cands []nebula.Candidate) []candidateJSON {
	out := make([]candidateJSON, len(cands))
	for i, c := range cands {
		out[i] = candidateJSON{
			Tuple:      c.Tuple.ID.String(),
			Confidence: c.Confidence,
			Evidence:   c.Evidence,
		}
	}
	return out
}

func tasksJSON(tasks []*nebula.VerificationTask) []taskJSON {
	out := make([]taskJSON, len(tasks))
	for i, t := range tasks {
		out[i] = taskJSON{
			VID:        t.VID,
			Annotation: string(t.Annotation),
			Tuple:      t.Tuple.String(),
			Confidence: t.Confidence,
			Evidence:   t.Evidence,
		}
	}
	return out
}

func outcomeToJSON(o nebula.VerificationOutcome) *outcomeJSON {
	return &outcomeJSON{
		Accepted: tasksJSON(o.Accepted),
		Pending:  tasksJSON(o.Pending),
		Rejected: tasksJSON(o.Rejected),
	}
}

// discoveryToJSON renders a (possibly partial) run. runErr is the typed
// pipeline error, nil for a clean run.
func discoveryToJSON(id string, disc *nebula.Discovery, runErr error) discoverResponse {
	resp := discoverResponse{ID: id, Candidates: []candidateJSON{}}
	if disc != nil {
		resp.Candidates = candidatesJSON(disc.Candidates)
		resp.Degraded = disc.Degraded()
		resp.Trace = disc.Trace
		resp.Stats = statsJSON{
			Queries:           len(disc.Queries),
			SearchedDB:        disc.ExecStats.SearchedDB,
			MiniDBUsed:        disc.ExecStats.MiniDBUsed,
			StructuredQueries: disc.ExecStats.Exec.StructuredQueries,
			SharedQueries:     disc.ExecStats.Exec.SharedQueries,
			TuplesScanned:     disc.ExecStats.Exec.TuplesScanned,
			Workers:           disc.ExecStats.Exec.Workers,
			ParallelBatches:   disc.ExecStats.Exec.ParallelBatches,
			Retries:           disc.ExecStats.Retries,
			CacheHits:         disc.ExecStats.Exec.CacheHits,
			Plan:              disc.ExecStats.Plan,
		}
	}
	switch {
	case runErr == nil:
	case errors.Is(runErr, nebula.ErrBudgetExceeded):
		resp.Partial = true
		resp.Error = "budget_exceeded"
	case errors.Is(runErr, nebula.ErrCancelled):
		resp.Partial = true
		resp.Error = "cancelled"
	case errors.Is(runErr, nebula.ErrSpamAnnotation):
		resp.Error = "spam_annotation"
	case errors.Is(runErr, nebula.ErrInternal):
		resp.Error = "internal"
	default:
		resp.Error = runErr.Error()
	}
	return resp
}

// classifyRun maps a pipeline error to the metrics outcome.
func classifyRun(err error) runOutcome {
	switch {
	case err == nil:
		return runOK
	case errors.Is(err, nebula.ErrBudgetExceeded):
		return runBudgetExceeded
	case errors.Is(err, nebula.ErrCancelled):
		return runCancelled
	case errors.Is(err, nebula.ErrInternal):
		return runInternalError
	default:
		return runOK
	}
}

// observeDiscovery folds one run into the metrics registry.
func (s *Server) observeDiscovery(disc *nebula.Discovery, err error) {
	if disc == nil {
		s.metrics.observeRun(nil, classifyRun(err), nebula.DiscoveryStats{}.Exec, nil)
		return
	}
	s.metrics.observeRun(disc.Degraded(), classifyRun(err), disc.ExecStats.Exec, disc.ExecStats.Plan)
}

// ---- handlers --------------------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.admission.state()
	resp := healthResponse{Status: "ok", Queued: queued, InFlight: inflight}
	code := http.StatusOK
	if s.admission.isDraining() {
		// A draining replica must fail its health check so load balancers
		// stop routing to it, while /metrics stays scrapable.
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	queued, inflight := s.admission.state()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.metrics.render(w, queued, inflight, s.admission.isDraining())
	renderCacheMetrics(w, s.Engine().CacheStats())
	renderWALMetrics(w, s.Engine().WALStats(), snapshot.DirSyncFailures())
	renderIngestMetrics(w, s.Engine().IngestStats())
	renderShardMetrics(w, s.Engine().ShardStats())
	renderSegmentMetrics(w, s.Engine().StoreStats())
}

// handleAddAnnotation implements Stage 0 over the wire: insert an
// annotation with its true attachments.
func (s *Server) handleAddAnnotation(w http.ResponseWriter, r *http.Request) {
	var req annotationRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == "" || req.Body == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "id and body are required")
		return
	}
	attach := make([]nebula.TupleID, 0, len(req.AttachTo))
	for _, ref := range req.AttachTo {
		t, err := parseTupleID(ref)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_tuple", err.Error())
			return
		}
		attach = append(attach, t)
	}
	err := s.Engine().AddAnnotation(&nebula.Annotation{
		ID:     nebula.AnnotationID(req.ID),
		Author: req.Author,
		Body:   req.Body,
		Kind:   req.Kind,
	}, attach)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "rejected", err.Error())
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": req.ID})
}

// handleAddAnnotationAsync is the streaming submit path: the annotation and
// a queued discovery job become durable together, and discovery itself runs
// on a later drain. Accepted submissions answer 202 with the job's queue
// position; a full queue answers 429 with Retry-After — the ingest
// backpressure contract.
func (s *Server) handleAddAnnotationAsync(w http.ResponseWriter, r *http.Request) {
	var req asyncAnnotationRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == "" || req.Body == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "id and body are required")
		return
	}
	attach := make([]nebula.TupleID, 0, len(req.AttachTo))
	for _, ref := range req.AttachTo {
		t, err := parseTupleID(ref)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_tuple", err.Error())
			return
		}
		attach = append(attach, t)
	}
	eng := s.Engine()
	adm, err := eng.AddAnnotationAsync(&nebula.Annotation{
		ID:     nebula.AnnotationID(req.ID),
		Author: req.Author,
		Body:   req.Body,
		Kind:   req.Kind,
	}, attach, req.Priority)
	switch {
	case err == nil:
		// Position and depth come from the admission itself, not a second
		// IngestStats read: between enqueue and a post-hoc read, concurrent
		// submissions or drains could have moved the queue, and the 202
		// would report a state this job was never actually in.
		writeJSON(w, http.StatusAccepted, map[string]any{
			"id":             req.ID,
			"seq":            adm.Seq,
			"priority":       adm.Priority,
			"queue_position": adm.Position,
			"queue_depth":    adm.Depth,
			"coalesced":      adm.Coalesced,
		})
	case errors.Is(err, nebula.ErrIngestQueueFull):
		s.metrics.observeRejection("ingest_queue_full")
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, "ingest_queue_full", err.Error())
	case errors.Is(err, nebula.ErrIngestDisabled):
		writeError(w, http.StatusConflict, "ingest_disabled", err.Error())
	default:
		writeError(w, http.StatusUnprocessableEntity, "rejected", err.Error())
	}
}

// handleIngestStatus reports the queue state and its lifetime counters.
func (s *Server) handleIngestStatus(w http.ResponseWriter, r *http.Request) {
	eng := s.Engine()
	resp := ingestStatusResponse{
		Stats:    eng.IngestStats(),
		Jobs:     []ingestJobJSON{},
		Shards:   eng.ShardStats(),
		Segments: eng.StoreStats(),
	}
	now := time.Now()
	for _, j := range eng.IngestJobs() {
		resp.Jobs = append(resp.Jobs, ingestJobJSON{
			Annotation: string(j.Annotation),
			Kind:       j.Kind.String(),
			Priority:   j.Priority,
			Seq:        j.Seq,
			WaitingMS:  now.Sub(j.EnqueuedAt).Milliseconds(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleIngestFlush drains queued jobs synchronously — the operator's
// "make it fresh now" verb. Max bounds one batch; 0 flushes everything.
func (s *Server) handleIngestFlush(w http.ResponseWriter, r *http.Request) {
	var req ingestFlushRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	eng := s.Engine()
	var (
		res nebula.IngestDrainResult
		err error
	)
	if req.Max > 0 {
		res, err = eng.DrainIngest(r.Context(), req.Max)
	} else {
		res, err = eng.FlushIngest(r.Context())
	}
	switch {
	case err == nil:
	case errors.Is(err, nebula.ErrIngestDisabled):
		writeError(w, http.StatusConflict, "ingest_disabled", err.Error())
		return
	case errors.Is(err, nebula.ErrCancelled), errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Interrupted flush: unprocessed jobs are back in the queue; report
		// what completed.
	default:
		writeError(w, http.StatusInternalServerError, "flush_failed", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ingestFlushResponse{
		Popped:   res.Popped,
		Drained:  res.Drained,
		Requeued: res.Requeued,
		Skipped:  res.Skipped,
		Failed:   res.Failed,
	})
}

// runDiscover is the shared core of the three single-annotation endpoints.
func (s *Server) runDiscover(w http.ResponseWriter, r *http.Request, kind string) {
	var req discoverRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.ID == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "id is required")
		return
	}
	if err := req.Options.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_options", err.Error())
		return
	}
	eng := s.Engine()
	id := nebula.AnnotationID(req.ID)
	// When the slow-request log is armed, force tracing so a slow run's
	// span tree is available post hoc. Tracing is observe-only, so the
	// engine's answer is unchanged; clientTrace remembers whether the
	// trace may also appear in the response.
	clientTrace := req.Options.Trace
	if s.cfg.SlowRequestThreshold > 0 {
		req.Options.Trace = true
	}
	var (
		disc    *nebula.Discovery
		outcome nebula.VerificationOutcome
		err     error
	)
	switch kind {
	case "discover":
		disc, err = eng.DiscoverRequest(r.Context(), id, req.Options)
	case "naive":
		disc, err = eng.NaiveDiscoverRequest(r.Context(), id, req.Options)
	case "process":
		disc, outcome, err = eng.ProcessRequest(r.Context(), id, req.Options)
	}
	if disc != nil && disc.Trace != nil {
		if rec, ok := w.(*statusRecorder); ok {
			rec.trace = disc.Trace
		}
		if !clientTrace {
			disc.Trace = nil
		}
	}
	s.observeDiscovery(disc, err)
	switch {
	case err == nil:
		resp := discoveryToJSON(req.ID, disc, nil)
		if kind == "process" {
			resp.Outcome = outcomeToJSON(outcome)
		}
		writeJSON(w, http.StatusOK, resp)
	case errors.Is(err, nebula.ErrUnknownAnnotation):
		writeError(w, http.StatusNotFound, "unknown_annotation", err.Error())
	case errors.Is(err, nebula.ErrBudgetExceeded), errors.Is(err, nebula.ErrCancelled):
		// Governed interruption is not a server failure: the partial
		// results ship with HTTP 200 and the body says why they are
		// partial, mirroring the CLI's degraded-run reporting.
		writeJSON(w, http.StatusOK, discoveryToJSON(req.ID, disc, err))
	case errors.Is(err, nebula.ErrSpamAnnotation):
		writeJSON(w, http.StatusUnprocessableEntity, discoveryToJSON(req.ID, disc, err))
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	s.runDiscover(w, r, "discover")
}

func (s *Server) handleNaiveDiscover(w http.ResponseWriter, r *http.Request) {
	s.runDiscover(w, r, "naive")
}

func (s *Server) handleProcess(w http.ResponseWriter, r *http.Request) {
	s.runDiscover(w, r, "process")
}

func (s *Server) handleDiscoverBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if len(req.IDs) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "ids is required")
		return
	}
	if err := req.Options.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, "bad_options", err.Error())
		return
	}
	ids := make([]nebula.AnnotationID, len(req.IDs))
	for i, id := range req.IDs {
		ids[i] = nebula.AnnotationID(id)
	}
	eng := s.Engine()
	var results []nebula.BatchResult
	if req.Process {
		results = eng.ProcessBatchRequest(r.Context(), ids, req.Options)
	} else {
		results = eng.DiscoverBatchRequest(r.Context(), ids, req.Options)
	}
	resp := batchResponse{Results: make([]discoverResponse, len(results))}
	for i, res := range results {
		s.observeDiscovery(res.Discovery, res.Err)
		one := discoveryToJSON(string(res.ID), res.Discovery, res.Err)
		if errors.Is(res.Err, nebula.ErrUnknownAnnotation) {
			one.Error = "unknown_annotation"
		}
		if req.Process && res.Err == nil {
			one.Outcome = outcomeToJSON(res.Outcome)
		}
		resp.Results[i] = one
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePending(w http.ResponseWriter, r *http.Request) {
	eng := s.Engine()
	var tasks []*nebula.VerificationTask
	if r.URL.Query().Get("order") == "priority" {
		tasks = eng.PendingTasksByPriority()
	} else {
		tasks = eng.PendingTasks()
	}
	writeJSON(w, http.StatusOK, pendingResponse{Tasks: tasksJSON(tasks)})
}

// handleVerdict resolves one pending verification task — the wire form of
// the extended SQL `Verify/Reject Attachement <vid>` commands.
func (s *Server) handleVerdict(accept bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		vid, err := strconv.ParseInt(r.PathValue("vid"), 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_vid", fmt.Sprintf("vid %q is not an integer", r.PathValue("vid")))
			return
		}
		eng := s.Engine()
		if accept {
			err = eng.VerifyAttachment(vid)
		} else {
			err = eng.RejectAttachment(vid)
		}
		if err != nil {
			writeError(w, http.StatusNotFound, "unknown_task", err.Error())
			return
		}
		verdict := "rejected"
		if accept {
			verdict = "accepted"
		}
		writeJSON(w, http.StatusOK, map[string]any{"vid": vid, "verdict": verdict})
	}
}

func (s *Server) handleSnapshotSave(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	path := req.Path
	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no_path", "no snapshot path given or configured")
		return
	}
	eng := s.Engine()
	if err := eng.SaveSnapshotFile(path); err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot_failed", err.Error())
		return
	}
	s.metrics.observeSnapshot(false)
	resp := snapshotResponse{
		Path:        path,
		Annotations: eng.Store().Len(),
		Tuples:      eng.DB().TotalRows(),
	}
	if info, err := os.Stat(path); err == nil {
		resp.Bytes = info.Size()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSnapshotLoad(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	path := req.Path
	if path == "" {
		path = s.cfg.SnapshotPath
	}
	if path == "" {
		writeError(w, http.StatusBadRequest, "no_path", "no snapshot path given or configured")
		return
	}
	f, err := os.Open(path)
	if err != nil {
		writeError(w, http.StatusNotFound, "no_snapshot", err.Error())
		return
	}
	defer f.Close()
	restored, err := nebula.RestoreEngine(f, s.cfg.ConfigureMeta, s.Engine().Options())
	if err != nil {
		if errors.Is(err, nebula.ErrSnapshotCorrupt) {
			writeError(w, http.StatusUnprocessableEntity, "snapshot_corrupt", err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, "restore_failed", err.Error())
		return
	}
	s.setEngine(restored)
	s.metrics.observeSnapshot(true)
	writeJSON(w, http.StatusOK, snapshotResponse{
		Path:        path,
		Annotations: restored.Store().Len(),
		Tuples:      restored.DB().TotalRows(),
	})
}
