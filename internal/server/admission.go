package server

import (
	"context"
	"errors"
	"sync"
)

// Typed admission errors; the HTTP layer maps them to backpressure status
// codes (429 for load shedding the client should retry, 503 for a server
// that is going away).
var (
	// ErrQueueFull reports that the bounded admission queue is at capacity:
	// the server is saturated and the request was shed without queuing.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining reports a server in graceful shutdown: in-flight work is
	// finishing, new work is refused.
	ErrDraining = errors.New("server: draining")
	// ErrConnLimit reports a single connection exceeding its in-flight
	// request allowance.
	ErrConnLimit = errors.New("server: per-connection in-flight limit")
)

// admission is the server's bounded work queue. Requests first occupy a
// queue position (bounded by queueDepth — beyond it they are shed with
// ErrQueueFull, never buffered), then wait for one of maxInFlight execution
// slots. A per-connection ceiling stops one chatty client from occupying
// the whole queue. Draining flips the gate atomically: requests admitted
// before the flip complete normally, later ones get ErrDraining, and
// drain() blocks until the in-flight count reaches zero.
type admission struct {
	slots chan struct{} // execution slots, buffered to maxInFlight

	mu         sync.Mutex
	queued     int
	queueDepth int
	maxPerConn int
	perConn    map[string]int
	inflight   int
	draining   bool
	idle       chan struct{} // closed when draining and inflight hits 0

	metrics *metrics
}

func newAdmission(maxInFlight, queueDepth, maxPerConn int, m *metrics) *admission {
	return &admission{
		slots:      make(chan struct{}, maxInFlight),
		queueDepth: queueDepth,
		maxPerConn: maxPerConn,
		perConn:    make(map[string]int),
		metrics:    m,
	}
}

// acquire admits one request for the given connection key, blocking (under
// ctx) for an execution slot. On success the caller MUST release(connKey)
// when the request finishes.
func (a *admission) acquire(ctx context.Context, connKey string) error {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return ErrDraining
	}
	if a.maxPerConn > 0 && a.perConn[connKey] >= a.maxPerConn {
		a.mu.Unlock()
		return ErrConnLimit
	}
	if a.queued >= a.queueDepth {
		a.mu.Unlock()
		return ErrQueueFull
	}
	a.queued++
	a.perConn[connKey]++
	a.metrics.observeAdmission(a.queued)
	a.mu.Unlock()

	select {
	case a.slots <- struct{}{}:
	case <-ctx.Done():
		a.mu.Lock()
		a.queued--
		a.decConn(connKey)
		a.mu.Unlock()
		return ctx.Err()
	}

	a.mu.Lock()
	a.queued--
	if a.draining {
		// Drain began while this request waited for a slot; it was never
		// admitted, so it must not extend the drain.
		a.decConn(connKey)
		a.mu.Unlock()
		<-a.slots
		return ErrDraining
	}
	a.inflight++
	a.mu.Unlock()
	return nil
}

// decConn drops a connection's in-flight count, reaping zero entries so the
// map does not grow with every client that ever connected. Callers hold mu.
func (a *admission) decConn(connKey string) {
	if a.perConn[connKey]--; a.perConn[connKey] <= 0 {
		delete(a.perConn, connKey)
	}
}

// release returns an execution slot after a request finishes.
func (a *admission) release(connKey string) {
	<-a.slots
	a.mu.Lock()
	a.inflight--
	a.decConn(connKey)
	if a.inflight == 0 && a.draining && a.idle != nil {
		close(a.idle)
		a.idle = nil
	}
	a.mu.Unlock()
}

// startDrain flips the admission gate: every acquire from now on fails with
// ErrDraining. Idempotent.
func (a *admission) startDrain() {
	a.mu.Lock()
	a.draining = true
	a.mu.Unlock()
}

// drain blocks until every admitted request has released its slot, or ctx
// expires. Callers should startDrain first; drain does it defensively.
func (a *admission) drain(ctx context.Context) error {
	a.mu.Lock()
	a.draining = true
	if a.inflight == 0 {
		a.mu.Unlock()
		return nil
	}
	if a.idle == nil {
		a.idle = make(chan struct{})
	}
	idle := a.idle
	a.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// isDraining reports whether the gate has flipped.
func (a *admission) isDraining() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.draining
}

// state reports the current queue depth and in-flight count (for /healthz
// and /metrics gauges).
func (a *admission) state() (queued, inflight int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued, a.inflight
}
