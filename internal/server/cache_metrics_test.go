package server_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"nebula"
	"nebula/internal/server"
	"nebula/internal/workload"
)

// TestMetricsCacheSeries checks the cache observability surface: per-layer
// hit/miss/occupancy gauges on /metrics, the request-level cache bypass,
// and the per-response cache_hits stat.
func TestMetricsCacheSeries(t *testing.T) {
	f := newFixture(t, nil)
	id := f.addWorkloadAnnotation(t, 0)

	if v := f.metric(t, "nebula_cache_enabled"); v != 1 {
		t.Fatalf("nebula_cache_enabled = %v, want 1 under default options", v)
	}

	// Cold then warm: the second discover is a discovery-layer hit.
	for i := 0; i < 2; i++ {
		if status, body := f.post(t, "/v1/discover", map[string]any{"id": id}); status != http.StatusOK {
			t.Fatalf("discover %d status %d: %s", i, status, body)
		}
	}
	if v := f.metric(t, `nebula_cache_hits_total{layer="discovery"}`); v < 1 {
		t.Errorf(`nebula_cache_hits_total{layer="discovery"} = %v, want >= 1`, v)
	}
	if v := f.metric(t, `nebula_cache_misses_total{layer="discovery"}`); v < 1 {
		t.Errorf(`nebula_cache_misses_total{layer="discovery"} = %v, want >= 1`, v)
	}
	if v := f.metric(t, `nebula_cache_bytes{layer="discovery"}`); v <= 0 {
		t.Errorf(`nebula_cache_bytes{layer="discovery"} = %v, want > 0 after a stored run`, v)
	}
	if v := f.metric(t, "nebula_exec_cache_hits_total"); v < 1 {
		t.Errorf("nebula_exec_cache_hits_total = %v, want >= 1", v)
	}
	for _, layer := range []string{"scan", "query", "mapping"} {
		if v := f.metric(t, `nebula_cache_max_bytes{layer="`+layer+`"}`); v <= 0 {
			t.Errorf("layer %s missing from /metrics (max_bytes = %v)", layer, v)
		}
	}

	// The warm response reports its hit; a cache:"off" request must not.
	status, body := f.post(t, "/v1/discover", map[string]any{"id": id})
	if status != http.StatusOK {
		t.Fatalf("warm discover status %d: %s", status, body)
	}
	var warm struct {
		Stats struct {
			CacheHits int `json:"cache_hits"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if warm.Stats.CacheHits == 0 {
		t.Error("warm discover response did not report cache_hits")
	}

	before := f.eng.CacheStats().Discovery.Hits
	status, body = f.post(t, "/v1/discover", map[string]any{
		"id": id, "options": map[string]any{"cache": "off"},
	})
	if status != http.StatusOK {
		t.Fatalf("cache-off discover status %d: %s", status, body)
	}
	if got := f.eng.CacheStats().Discovery.Hits; got != before {
		t.Errorf(`options.cache:"off" request hit the discovery cache (hits %d -> %d)`, before, got)
	}

	// A cache-disabled engine advertises that state on /metrics.
	off := newFixture(t, func(_ *workload.Dataset, o *nebula.Options, _ *server.Config) {
		o.Cache.Disabled = true
	})
	if v := off.metric(t, "nebula_cache_enabled"); v != 0 {
		t.Errorf("nebula_cache_enabled = %v on a cache-disabled engine, want 0", v)
	}
}
