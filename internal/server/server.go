// Package server is nebulad's concurrent HTTP/JSON serving layer over one
// nebula.Engine. It owns the production concerns the library deliberately
// does not: admission control through a bounded work queue with typed
// 429/503 backpressure, global and per-connection in-flight limits,
// per-request panic isolation, live /healthz and /metrics endpoints, and a
// graceful drain that finishes accepted work and persists a checksummed
// snapshot before the process exits.
//
// Request lifecycle: every work endpoint passes through the admission gate
// (queue position → execution slot), then maps its JSON body onto the
// engine's serializable RequestOptions surface and calls the corresponding
// context-aware engine method. Discovery endpoints run under the engine's
// read lock, so the serving layer fans concurrent discoveries over one
// engine; mutating endpoints (process, verify/reject, annotation inserts)
// serialize on its write lock.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"math"
	"net/http"
	"os"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"nebula"
	"nebula/internal/meta"
)

// Config parameterizes a Server. The zero value of every field selects a
// sensible default (see the field comments).
type Config struct {
	// Engine is the annotation engine to serve. Required.
	Engine *nebula.Engine
	// MaxInFlight bounds the requests executing concurrently across all
	// connections. Default 8.
	MaxInFlight int
	// QueueDepth bounds the requests waiting for an execution slot; beyond
	// it new work is shed with 429. Default 64.
	QueueDepth int
	// MaxPerConn bounds one connection's queued+executing requests
	// (0 = no per-connection limit).
	MaxPerConn int
	// RequestTimeout caps one request's wall clock (0 = none). Individual
	// requests may still set tighter deadlines via options.deadline_ms.
	RequestTimeout time.Duration
	// SnapshotPath, when non-empty, is where the drain sequence persists
	// the engine state (checksummed, atomic) during Shutdown, and the
	// default path for POST /v1/snapshot/save.
	SnapshotPath string
	// ConfigureMeta rebuilds the NebulaMeta repository for a database
	// restored by POST /v1/snapshot/load. Defaults to an empty repository
	// with the built-in lexicon (matching nebulactl's snapshot command).
	ConfigureMeta func(*nebula.Database) (*nebula.MetaRepository, error)
	// Logf receives one line per lifecycle event (start, drain, snapshot).
	// Defaults to log.Printf; use a no-op in tests.
	Logf func(format string, args ...any)
	// Logger receives structured request logs: one Debug record per
	// completed request and a Warn record (with the request's span tree
	// inlined) for requests slower than SlowRequestThreshold. Defaults to
	// a text handler on stderr at Info level, so per-request Debug records
	// are free unless an operator opts into them.
	Logger *slog.Logger
	// SlowRequestThreshold turns on the slow-request log: discovery
	// endpoints force request-scoped tracing (observe-only — responses are
	// unchanged unless the client asked for the trace), and any request at
	// or over the threshold logs at Warn with its span tree. 0 disables.
	SlowRequestThreshold time.Duration
}

// Server is the HTTP serving layer. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg       Config
	admission *admission
	metrics   *metrics
	mux       *http.ServeMux

	engMu  sync.RWMutex
	engine *nebula.Engine // swapped by POST /v1/snapshot/load
}

// New builds a Server over cfg.Engine.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ConfigureMeta == nil {
		cfg.ConfigureMeta = func(db *nebula.Database) (*nebula.MetaRepository, error) {
			return meta.NewRepository(db, nil), nil
		}
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	s := &Server{
		cfg:     cfg,
		engine:  cfg.Engine,
		metrics: newMetrics(),
	}
	s.admission = newAdmission(cfg.MaxInFlight, cfg.QueueDepth, cfg.MaxPerConn, s.metrics)
	s.mux = http.NewServeMux()
	s.routes()
	return s, nil
}

// Engine returns the currently served engine (it changes only when
// POST /v1/snapshot/load installs a restored one).
func (s *Server) Engine() *nebula.Engine {
	s.engMu.RLock()
	defer s.engMu.RUnlock()
	return s.engine
}

// setEngine installs a restored engine. Requests already executing keep the
// engine pointer they loaded — both stay valid; the swap only routes new
// work.
func (s *Server) setEngine(e *nebula.Engine) {
	s.engMu.Lock()
	defer s.engMu.Unlock()
	s.engine = e
}

// Handler returns the root handler, ready for http.Server or httptest.
func (s *Server) Handler() http.Handler { return s.mux }

func (s *Server) routes() {
	// Liveness endpoints stay outside the admission gate: they must answer
	// while the queue is full and while the server drains.
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)

	s.work("POST /v1/annotations", s.handleAddAnnotation)
	s.work("POST /v1/annotations/async", s.handleAddAnnotationAsync)
	s.work("GET /v1/ingest", s.handleIngestStatus)
	s.work("POST /v1/ingest/flush", s.handleIngestFlush)
	s.work("POST /v1/discover", s.handleDiscover)
	s.work("POST /v1/discover/naive", s.handleNaiveDiscover)
	s.work("POST /v1/discover/batch", s.handleDiscoverBatch)
	s.work("POST /v1/process", s.handleProcess)
	s.work("GET /v1/pending", s.handlePending)
	s.work("POST /v1/pending/{vid}/accept", s.handleVerdict(true))
	s.work("POST /v1/pending/{vid}/reject", s.handleVerdict(false))
	s.work("POST /v1/snapshot/save", s.handleSnapshotSave)
	s.work("POST /v1/snapshot/load", s.handleSnapshotLoad)
}

// work registers a handler behind the admission gate, the panic barrier,
// and the request metrics. The endpoint label for metrics is the route
// pattern without the method, so path wildcards do not explode label
// cardinality.
func (s *Server) work(pattern string, h http.HandlerFunc) {
	endpoint := pattern
	if _, path, ok := cutMethod(pattern); ok {
		endpoint = path
	}
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if p := recover(); p != nil {
				// One poisoned request must not take down the serving
				// process; surface it as a 500 on its own connection.
				s.metrics.observePanic()
				s.cfg.Logf("server: panic on %s: %v\n%s", endpoint, p, debug.Stack())
				if !rec.wrote {
					writeError(rec, http.StatusInternalServerError, "internal", "internal error")
				}
			}
			elapsed := time.Since(start)
			s.metrics.observeRequest(endpoint, rec.code, elapsed)
			s.logRequest(endpoint, r, rec, elapsed)
		}()

		ctx := r.Context()
		if s.cfg.RequestTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		connKey := r.RemoteAddr
		if err := s.admission.acquire(ctx, connKey); err != nil {
			s.reject(rec, err)
			return
		}
		defer s.admission.release(connKey)
		h(rec, r)
	})
}

// logRequest emits the structured request record: Debug for ordinary
// requests (invisible under the default Info handler), Warn — with the
// request's span tree inlined, when discovery captured one — for requests
// at or over the slow-request threshold.
func (s *Server) logRequest(endpoint string, r *http.Request, rec *statusRecorder, elapsed time.Duration) {
	slow := s.cfg.SlowRequestThreshold > 0 && elapsed >= s.cfg.SlowRequestThreshold
	if !slow && !s.cfg.Logger.Enabled(r.Context(), slog.LevelDebug) {
		return
	}
	attrs := []any{
		slog.String("method", r.Method),
		slog.String("endpoint", endpoint),
		slog.Int("status", rec.code),
		slog.Duration("elapsed", elapsed),
		slog.String("conn", r.RemoteAddr),
	}
	if !slow {
		s.cfg.Logger.Debug("request", attrs...)
		return
	}
	attrs = append(attrs, slog.Duration("threshold", s.cfg.SlowRequestThreshold))
	if rec.trace != nil {
		attrs = append(attrs, slog.String("trace", "\n"+rec.trace.String()))
	}
	s.cfg.Logger.Warn("slow request", attrs...)
}

// cutMethod splits "METHOD /path" route patterns.
func cutMethod(pattern string) (method, path string, ok bool) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == ' ' {
			return pattern[:i], pattern[i+1:], true
		}
	}
	return "", pattern, false
}

// retryAfterSeconds derives the Retry-After header from live admission
// state instead of a constant: the current queue backlog times the recent
// mean request latency approximates when a slot will actually be free,
// clamped to [1, 30] seconds. With no latency history yet (cold server)
// the floor of 1 second applies — dishonest optimism only until the first
// requests complete.
func (s *Server) retryAfterSeconds() string {
	queued, _ := s.admission.state()
	mean := s.metrics.recentMeanLatency()
	est := int(math.Ceil(float64(queued+1) * mean))
	if est < 1 {
		est = 1
	}
	if est > 30 {
		est = 30
	}
	return strconv.Itoa(est)
}

// reject maps an admission error to its typed backpressure response.
func (s *Server) reject(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDraining):
		s.metrics.observeRejection("draining")
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusServiceUnavailable, "draining", "server is draining; retry against another replica")
	case errors.Is(err, ErrQueueFull):
		s.metrics.observeRejection("queue_full")
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, "queue_full", "admission queue full; retry with backoff")
	case errors.Is(err, ErrConnLimit):
		s.metrics.observeRejection("conn_limit")
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		writeError(w, http.StatusTooManyRequests, "conn_limit", "per-connection in-flight limit reached")
	default:
		// The client abandoned the request while queued; nobody is
		// listening, but complete the exchange for the access log.
		s.metrics.observeRejection("client_gone")
		writeError(w, 499, "client_gone", err.Error())
	}
}

// Shutdown drains the server gracefully: the admission gate flips (new work
// is refused with 503), accepted requests run to completion (bounded by
// ctx), and — when a snapshot path is configured — the engine state is
// persisted with the checksummed atomic writer. It returns the drain error
// or the snapshot error, if any; on drain timeout the snapshot is still
// attempted so a slow request cannot cost the state file.
func (s *Server) Shutdown(ctx context.Context) error {
	s.cfg.Logf("server: drain started")
	s.admission.startDrain()
	drainErr := s.admission.drain(ctx)
	if drainErr == nil {
		s.cfg.Logf("server: drain complete")
	} else {
		s.cfg.Logf("server: drain interrupted: %v", drainErr)
	}
	if eng := s.Engine(); eng.IngestEnabled() {
		// Flush queued discovery jobs before the final snapshot so accepted
		// async submissions leave as attachments, not as queue entries. The
		// WAL makes unflushed jobs crash-safe regardless; this is about not
		// handing the next boot a backlog. Bounded by the same ctx as the
		// drain — on timeout the remaining jobs stay queued (and durable).
		res, err := eng.FlushIngest(ctx)
		if err != nil && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			s.cfg.Logf("server: ingest flush: %v", err)
		} else {
			s.cfg.Logf("server: ingest flushed (%d drained, %d requeued)", res.Drained, res.Requeued)
		}
	}
	if s.cfg.SnapshotPath != "" {
		if err := s.Engine().SaveSnapshotFile(s.cfg.SnapshotPath); err != nil {
			return fmt.Errorf("server: drain snapshot: %w", err)
		}
		s.cfg.Logf("server: snapshot written to %s", s.cfg.SnapshotPath)
	}
	return drainErr
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool { return s.admission.isDraining() }

// statusRecorder captures the response code for metrics, plus the request
// trace (stashed by the discovery handlers) for the slow-request log.
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
	trace *nebula.TraceNode
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.wrote = true
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	r.wrote = true
	return r.ResponseWriter.Write(b)
}
