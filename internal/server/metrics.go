package server

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"nebula"
	"nebula/internal/keyword"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond index hits to multi-second governed scans.
var latencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram (cumulative counts are
// computed at render time, so observation is a single index increment).
type histogram struct {
	counts []int64 // one per bucket, plus a final +Inf slot
	sum    float64
	total  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets)+1)}
}

func (h *histogram) observe(seconds float64) {
	h.counts[sort.SearchFloat64s(latencyBuckets, seconds)]++
	h.sum += seconds
	h.total++
}

// runOutcome classifies one engine run for the counters.
type runOutcome int

const (
	runOK runOutcome = iota
	runBudgetExceeded
	runCancelled
	runInternalError
)

// recentLatencyWindow sizes the ring of recently completed request
// durations backing the Retry-After estimate: large enough to smooth one
// odd request, small enough that the estimate tracks load shifts.
const recentLatencyWindow = 32

// metrics is the server's counter registry. Everything is guarded by one
// mutex — the serving path touches it a handful of times per request, which
// is noise next to a discovery run.
type metrics struct {
	mu sync.Mutex

	requests  map[string]int64 // "endpoint code" → count
	latencies map[string]*histogram
	rejected  map[string]int64 // reason → count

	// recentLat is a ring of the last completed request durations in
	// seconds (recentIdx = next write slot, recentN = valid entries).
	recentLat [recentLatencyWindow]float64
	recentIdx int
	recentN   int

	queueDepthPeak int
	admittedTotal  int64

	degradedRuns   int64
	budgetExceeded int64
	cancelledRuns  int64
	internalErrors int64
	panics         int64

	execWorkersMax  int
	parallelBatches int64
	structuredQs    int64
	sharedQs        int64
	tuplesScanned   int64
	cacheHits       int64

	planRuns        int64
	planPrunedQs    int64
	planExecutedQs  int64
	planWaves       int64
	planInterrupted int64

	snapshotSaves int64
	snapshotLoads int64
}

func newMetrics() *metrics {
	return &metrics{
		requests:  make(map[string]int64),
		latencies: make(map[string]*histogram),
		rejected:  make(map[string]int64),
	}
}

func (m *metrics) observeRequest(endpoint string, code int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[fmt.Sprintf("%s %d", endpoint, code)]++
	h := m.latencies[endpoint]
	if h == nil {
		h = newHistogram()
		m.latencies[endpoint] = h
	}
	h.observe(elapsed.Seconds())
	// Shed requests (429/503) finish in microseconds; folding them into the
	// ring would collapse the mean exactly when the server is overloaded and
	// the Retry-After estimate matters most. Only served work counts.
	if code != 429 && code != 503 {
		m.recentLat[m.recentIdx] = elapsed.Seconds()
		m.recentIdx = (m.recentIdx + 1) % recentLatencyWindow
		if m.recentN < recentLatencyWindow {
			m.recentN++
		}
	}
}

// recentMeanLatency is the mean duration of the last completed requests
// (up to recentLatencyWindow of them), or 0 with no history yet. It feeds
// the Retry-After estimate: queue position times this mean approximates
// how long a shed client would have waited.
func (m *metrics) recentMeanLatency() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recentN == 0 {
		return 0
	}
	sum := 0.0
	for i := 0; i < m.recentN; i++ {
		sum += m.recentLat[i]
	}
	return sum / float64(m.recentN)
}

func (m *metrics) observeRejection(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected[reason]++
}

// observeAdmission records one pass through the admission queue; depth is
// the queue occupancy the request saw on entry.
func (m *metrics) observeAdmission(depth int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.admittedTotal++
	if depth > m.queueDepthPeak {
		m.queueDepthPeak = depth
	}
}

// observeRun folds one discovery/process outcome into the run counters:
// degraded-but-complete runs, budget-interrupted runs, and cancellations
// stay distinguishable from clean successes.
func (m *metrics) observeRun(degraded []string, outcome runOutcome, stats keyword.ExecStats, plan *nebula.PlanStats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(degraded) > 0 {
		m.degradedRuns++
	}
	switch outcome {
	case runBudgetExceeded:
		m.budgetExceeded++
	case runCancelled:
		m.cancelledRuns++
	case runInternalError:
		m.internalErrors++
	}
	if stats.Workers > m.execWorkersMax {
		m.execWorkersMax = stats.Workers
	}
	m.parallelBatches += int64(stats.ParallelBatches)
	m.structuredQs += int64(stats.StructuredQueries)
	m.sharedQs += int64(stats.SharedQueries)
	m.tuplesScanned += int64(stats.TuplesScanned)
	m.cacheHits += int64(stats.CacheHits)
	if plan != nil && plan.Enabled {
		m.planRuns++
		m.planPrunedQs += int64(plan.Pruned)
		m.planExecutedQs += int64(plan.Executed)
		m.planWaves += int64(plan.Waves)
		if plan.Interrupted {
			m.planInterrupted++
		}
	}
}

func (m *metrics) observePanic() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panics++
}

func (m *metrics) observeSnapshot(load bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if load {
		m.snapshotLoads++
	} else {
		m.snapshotSaves++
	}
}

// render writes the registry in the Prometheus text exposition format.
// Output is sorted so scrapes (and tests) see a stable document.
func (m *metrics) render(w io.Writer, queued, inflight int, draining bool) {
	m.mu.Lock()
	defer m.mu.Unlock()

	fmt.Fprintf(w, "# TYPE nebula_requests_total counter\n")
	for _, k := range sortedKeys(m.requests) {
		endpoint, code, _ := strings.Cut(k, " ")
		fmt.Fprintf(w, "nebula_requests_total{endpoint=%q,code=%q} %d\n", endpoint, code, m.requests[k])
	}

	fmt.Fprintf(w, "# TYPE nebula_rejected_total counter\n")
	for _, reason := range sortedKeys(m.rejected) {
		fmt.Fprintf(w, "nebula_rejected_total{reason=%q} %d\n", reason, m.rejected[reason])
	}

	fmt.Fprintf(w, "# TYPE nebula_queue_depth gauge\nnebula_queue_depth %d\n", queued)
	fmt.Fprintf(w, "# TYPE nebula_queue_depth_peak gauge\nnebula_queue_depth_peak %d\n", m.queueDepthPeak)
	fmt.Fprintf(w, "# TYPE nebula_inflight gauge\nnebula_inflight %d\n", inflight)
	fmt.Fprintf(w, "# TYPE nebula_draining gauge\nnebula_draining %d\n", boolGauge(draining))
	fmt.Fprintf(w, "# TYPE nebula_admitted_total counter\nnebula_admitted_total %d\n", m.admittedTotal)

	fmt.Fprintf(w, "# TYPE nebula_runs_degraded_total counter\nnebula_runs_degraded_total %d\n", m.degradedRuns)
	fmt.Fprintf(w, "# TYPE nebula_runs_budget_exceeded_total counter\nnebula_runs_budget_exceeded_total %d\n", m.budgetExceeded)
	fmt.Fprintf(w, "# TYPE nebula_runs_cancelled_total counter\nnebula_runs_cancelled_total %d\n", m.cancelledRuns)
	fmt.Fprintf(w, "# TYPE nebula_runs_internal_error_total counter\nnebula_runs_internal_error_total %d\n", m.internalErrors)
	fmt.Fprintf(w, "# TYPE nebula_panics_total counter\nnebula_panics_total %d\n", m.panics)

	fmt.Fprintf(w, "# TYPE nebula_exec_workers_max gauge\nnebula_exec_workers_max %d\n", m.execWorkersMax)
	fmt.Fprintf(w, "# TYPE nebula_exec_parallel_batches_total counter\nnebula_exec_parallel_batches_total %d\n", m.parallelBatches)
	fmt.Fprintf(w, "# TYPE nebula_exec_structured_queries_total counter\nnebula_exec_structured_queries_total %d\n", m.structuredQs)
	fmt.Fprintf(w, "# TYPE nebula_exec_shared_queries_total counter\nnebula_exec_shared_queries_total %d\n", m.sharedQs)
	fmt.Fprintf(w, "# TYPE nebula_exec_tuples_scanned_total counter\nnebula_exec_tuples_scanned_total %d\n", m.tuplesScanned)
	fmt.Fprintf(w, "# TYPE nebula_exec_cache_hits_total counter\nnebula_exec_cache_hits_total %d\n", m.cacheHits)

	fmt.Fprintf(w, "# TYPE nebula_plan_runs_total counter\nnebula_plan_runs_total %d\n", m.planRuns)
	fmt.Fprintf(w, "# TYPE nebula_plan_pruned_queries_total counter\nnebula_plan_pruned_queries_total %d\n", m.planPrunedQs)
	fmt.Fprintf(w, "# TYPE nebula_plan_executed_queries_total counter\nnebula_plan_executed_queries_total %d\n", m.planExecutedQs)
	fmt.Fprintf(w, "# TYPE nebula_plan_waves_total counter\nnebula_plan_waves_total %d\n", m.planWaves)
	fmt.Fprintf(w, "# TYPE nebula_plan_interrupted_total counter\nnebula_plan_interrupted_total %d\n", m.planInterrupted)

	fmt.Fprintf(w, "# TYPE nebula_snapshot_saves_total counter\nnebula_snapshot_saves_total %d\n", m.snapshotSaves)
	fmt.Fprintf(w, "# TYPE nebula_snapshot_loads_total counter\nnebula_snapshot_loads_total %d\n", m.snapshotLoads)

	fmt.Fprintf(w, "# TYPE nebula_request_seconds histogram\n")
	for _, endpoint := range sortedKeys(m.latencies) {
		h := m.latencies[endpoint]
		var cum int64
		for i, le := range latencyBuckets {
			cum += h.counts[i]
			fmt.Fprintf(w, "nebula_request_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", endpoint, le, cum)
		}
		cum += h.counts[len(latencyBuckets)]
		fmt.Fprintf(w, "nebula_request_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", endpoint, cum)
		fmt.Fprintf(w, "nebula_request_seconds_sum{endpoint=%q} %g\n", endpoint, h.sum)
		fmt.Fprintf(w, "nebula_request_seconds_count{endpoint=%q} %d\n", endpoint, h.total)
	}
}

// renderCacheMetrics writes the engine's live cache-layer series: per-layer
// hit/miss/eviction/invalidation counters plus occupancy gauges. The layer
// label ranges over scan (relational), query (keyword results), mapping
// (keyword→schema memos), and discovery (whole-pipeline). Unlike the
// counters above these read straight from the engine, so a snapshot load
// (fresh engine, cold caches) legitimately resets them.
func renderCacheMetrics(w io.Writer, cs nebula.CacheStats) {
	fmt.Fprintf(w, "# TYPE nebula_cache_enabled gauge\nnebula_cache_enabled %d\n", boolGauge(cs.Enabled))
	layers := []struct {
		name string
		s    nebula.CacheCounters
	}{
		{"scan", cs.Scan},
		{"query", cs.Query},
		{"mapping", cs.Mapping},
		{"discovery", cs.Discovery},
	}
	emit := func(series, typ string, value func(nebula.CacheCounters) int64) {
		fmt.Fprintf(w, "# TYPE %s %s\n", series, typ)
		for _, l := range layers {
			fmt.Fprintf(w, "%s{layer=%q} %d\n", series, l.name, value(l.s))
		}
	}
	emit("nebula_cache_hits_total", "counter", func(s nebula.CacheCounters) int64 { return s.Hits })
	emit("nebula_cache_misses_total", "counter", func(s nebula.CacheCounters) int64 { return s.Misses })
	emit("nebula_cache_evictions_total", "counter", func(s nebula.CacheCounters) int64 { return s.Evictions })
	emit("nebula_cache_invalidations_total", "counter", func(s nebula.CacheCounters) int64 { return s.Invalidations })
	emit("nebula_cache_entries", "gauge", func(s nebula.CacheCounters) int64 { return int64(s.Entries) })
	emit("nebula_cache_bytes", "gauge", func(s nebula.CacheCounters) int64 { return s.Bytes })
	emit("nebula_cache_max_bytes", "gauge", func(s nebula.CacheCounters) int64 { return s.MaxBytes })
}

// renderWALMetrics writes the engine's durability series: append/sync
// counters and fsync latency from the write-ahead log, checkpoint counts,
// the boot-time replay summary, and the snapshot layer's directory-sync
// failure counter (satellite of the same durability story: a dir-sync
// failure means a just-renamed snapshot may not survive a crash). All
// series render even without a WAL attached, so dashboards do not break
// on a WAL-less deployment — nebula_wal_attached distinguishes the modes.
func renderWALMetrics(w io.Writer, ws nebula.WALStats, dirSyncFailures int64) {
	fmt.Fprintf(w, "# TYPE nebula_wal_attached gauge\nnebula_wal_attached %d\n", boolGauge(ws.Attached))
	fmt.Fprintf(w, "# TYPE nebula_wal_appended_records_total counter\nnebula_wal_appended_records_total %d\n", ws.Log.Appended)
	fmt.Fprintf(w, "# TYPE nebula_wal_appended_bytes_total counter\nnebula_wal_appended_bytes_total %d\n", ws.Log.AppendedBytes)
	fmt.Fprintf(w, "# TYPE nebula_wal_durable_records counter\nnebula_wal_durable_records %d\n", ws.Log.Durable)
	fmt.Fprintf(w, "# TYPE nebula_wal_syncs_total counter\nnebula_wal_syncs_total %d\n", ws.Log.Syncs)
	fmt.Fprintf(w, "# TYPE nebula_wal_syncs_absorbed_total counter\nnebula_wal_syncs_absorbed_total %d\n", ws.Log.SyncAbsorbed)
	fmt.Fprintf(w, "# TYPE nebula_wal_sync_seconds_total counter\nnebula_wal_sync_seconds_total %g\n", float64(ws.Log.SyncNanos)/1e9)
	fmt.Fprintf(w, "# TYPE nebula_wal_rotations_total counter\nnebula_wal_rotations_total %d\n", ws.Log.Rotations)
	fmt.Fprintf(w, "# TYPE nebula_wal_active_segment gauge\nnebula_wal_active_segment %d\n", ws.Log.ActiveSegment)
	fmt.Fprintf(w, "# TYPE nebula_wal_checkpoints_total counter\nnebula_wal_checkpoints_total %d\n", ws.Checkpoints)
	fmt.Fprintf(w, "# TYPE nebula_wal_replay_records counter\nnebula_wal_replay_records %d\n", ws.Replay.Records)
	fmt.Fprintf(w, "# TYPE nebula_wal_replay_seconds gauge\nnebula_wal_replay_seconds %g\n", ws.Replay.Duration.Seconds())
	fmt.Fprintf(w, "# TYPE nebula_wal_replay_corrupt_tail gauge\nnebula_wal_replay_corrupt_tail %d\n", boolGauge(ws.Replay.CorruptTail))
	fmt.Fprintf(w, "# TYPE nebula_wal_replay_discarded_bytes gauge\nnebula_wal_replay_discarded_bytes %d\n", ws.Replay.DiscardedBytes)
	fmt.Fprintf(w, "# TYPE nebula_snapshot_dirsync_failures_total counter\nnebula_snapshot_dirsync_failures_total %d\n", dirSyncFailures)
}

// renderIngestMetrics writes the streaming-ingest series: queue depth and
// lag, admission/coalescing/drop counters, drain outcomes, and the
// enqueue→attached freshness aggregate. Like the cache series these read
// straight from the engine, so a snapshot load resets them with it.
func renderIngestMetrics(w io.Writer, is nebula.IngestStats) {
	fmt.Fprintf(w, "# TYPE nebula_ingest_enabled gauge\nnebula_ingest_enabled %d\n", boolGauge(is.Enabled))
	fmt.Fprintf(w, "# TYPE nebula_ingest_queue_depth gauge\nnebula_ingest_queue_depth %d\n", is.QueueDepth)
	fmt.Fprintf(w, "# TYPE nebula_ingest_queue_cap gauge\nnebula_ingest_queue_cap %d\n", is.QueueCap)
	fmt.Fprintf(w, "# TYPE nebula_ingest_oldest_wait_seconds gauge\nnebula_ingest_oldest_wait_seconds %g\n", float64(is.OldestWaitMS)/1e3)
	fmt.Fprintf(w, "# TYPE nebula_ingest_enqueued_total counter\nnebula_ingest_enqueued_total %d\n", is.Enqueued)
	fmt.Fprintf(w, "# TYPE nebula_ingest_coalesced_total counter\nnebula_ingest_coalesced_total %d\n", is.Coalesced)
	fmt.Fprintf(w, "# TYPE nebula_ingest_dropped_total counter\nnebula_ingest_dropped_total %d\n", is.Dropped)
	fmt.Fprintf(w, "# TYPE nebula_ingest_rediscoveries_total counter\nnebula_ingest_rediscoveries_total %d\n", is.Rediscoveries)
	fmt.Fprintf(w, "# TYPE nebula_ingest_done_total counter\nnebula_ingest_done_total %d\n", is.Done)
	fmt.Fprintf(w, "# TYPE nebula_ingest_drains_total counter\nnebula_ingest_drains_total %d\n", is.Drains)
	fmt.Fprintf(w, "# TYPE nebula_ingest_requeued_total counter\nnebula_ingest_requeued_total %d\n", is.Requeued)
	fmt.Fprintf(w, "# TYPE nebula_ingest_skipped_total counter\nnebula_ingest_skipped_total %d\n", is.Skipped)
	fmt.Fprintf(w, "# TYPE nebula_ingest_failed_total counter\nnebula_ingest_failed_total %d\n", is.Failed)
	fmt.Fprintf(w, "# TYPE nebula_ingest_freshness_seconds_sum counter\nnebula_ingest_freshness_seconds_sum %g\n", is.MeanFreshnessMS*float64(is.FreshnessJobs)/1e3)
	fmt.Fprintf(w, "# TYPE nebula_ingest_freshness_seconds_count counter\nnebula_ingest_freshness_seconds_count %d\n", is.FreshnessJobs)
}

// renderSegmentMetrics writes the disk-backed index series: live segment
// counts and sizes, flush/compaction/fallback counters, and the in-heap
// tail the segments have not absorbed yet. All zero (enabled 0) when the
// engine runs the pure in-heap index.
func renderSegmentMetrics(w io.Writer, ss nebula.StoreStats) {
	fmt.Fprintf(w, "# TYPE nebula_segment_enabled gauge\nnebula_segment_enabled %d\n", boolGauge(ss.Enabled))
	fmt.Fprintf(w, "# TYPE nebula_segment_files gauge\nnebula_segment_files %d\n", ss.Store.Segments)
	fmt.Fprintf(w, "# TYPE nebula_segment_terms gauge\nnebula_segment_terms %d\n", ss.Store.Terms)
	fmt.Fprintf(w, "# TYPE nebula_segment_postings gauge\nnebula_segment_postings %d\n", ss.Store.Postings)
	fmt.Fprintf(w, "# TYPE nebula_segment_size_bytes gauge\nnebula_segment_size_bytes %d\n", ss.Store.SizeBytes)
	fmt.Fprintf(w, "# TYPE nebula_segment_generation gauge\nnebula_segment_generation %d\n", ss.Store.Seq)
	fmt.Fprintf(w, "# TYPE nebula_segment_tail_terms gauge\nnebula_segment_tail_terms %d\n", ss.TailTerms)
	fmt.Fprintf(w, "# TYPE nebula_segment_tail_postings gauge\nnebula_segment_tail_postings %d\n", ss.TailPostings)
	fmt.Fprintf(w, "# TYPE nebula_segment_dirty_rows gauge\nnebula_segment_dirty_rows %d\n", ss.DirtyRows)
	fmt.Fprintf(w, "# TYPE nebula_segment_full_pending gauge\nnebula_segment_full_pending %d\n", boolGauge(ss.FullPending))
	fmt.Fprintf(w, "# TYPE nebula_segment_flushes_total counter\nnebula_segment_flushes_total %d\n", ss.Store.Flushes)
	fmt.Fprintf(w, "# TYPE nebula_segment_flushed_postings_total counter\nnebula_segment_flushed_postings_total %d\n", ss.Store.FlushedPostings)
	fmt.Fprintf(w, "# TYPE nebula_segment_compactions_total counter\nnebula_segment_compactions_total %d\n", ss.Store.Compactions)
	fmt.Fprintf(w, "# TYPE nebula_segment_compact_errors_total counter\nnebula_segment_compact_errors_total %d\n", ss.Store.CompactErrors)
	fmt.Fprintf(w, "# TYPE nebula_segment_replaced_total counter\nnebula_segment_replaced_total %d\n", ss.Store.SegmentsReplaced)
	fmt.Fprintf(w, "# TYPE nebula_segment_manifest_fallbacks_total counter\nnebula_segment_manifest_fallbacks_total %d\n", ss.Store.Fallbacks)
	fmt.Fprintf(w, "# TYPE nebula_segment_resets_total counter\nnebula_segment_resets_total %d\n", ss.Store.Resets)
	fmt.Fprintf(w, "# TYPE nebula_segment_lookups_total counter\nnebula_segment_lookups_total %d\n", ss.Store.Lookups)
}

// renderShardMetrics writes the sharding series: the configured shard
// count plus per-shard gauges for homed annotations, their attachment
// edges, the distinct rows those edges touch, and the shard's mutation
// counter. Single-shard engines render one shard owning everything, so
// dashboards work unchanged across deployments.
func renderShardMetrics(w io.Writer, ss nebula.ShardStats) {
	fmt.Fprintf(w, "# TYPE nebula_shards gauge\nnebula_shards %d\n", ss.Shards)
	emit := func(series, typ string, value func(nebula.ShardStat) int64) {
		fmt.Fprintf(w, "# TYPE %s %s\n", series, typ)
		for _, s := range ss.PerShard {
			fmt.Fprintf(w, "%s{shard=\"%d\"} %d\n", series, s.Shard, value(s))
		}
	}
	emit("nebula_shard_annotations", "gauge", func(s nebula.ShardStat) int64 { return int64(s.Annotations) })
	emit("nebula_shard_attachments", "gauge", func(s nebula.ShardStat) int64 { return int64(s.Attachments) })
	emit("nebula_shard_rows", "gauge", func(s nebula.ShardStat) int64 { return int64(s.Tuples) })
	emit("nebula_shard_mutations_total", "counter", func(s nebula.ShardStat) int64 { return int64(s.Mutations) })
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
