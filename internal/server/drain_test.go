package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"nebula"
	"nebula/internal/server"
	"nebula/internal/workload"
)

// TestGracefulDrain is the shutdown acceptance test: with slow discoveries
// in flight, Shutdown must (1) complete every accepted request with 200,
// (2) refuse new work with 503, and (3) persist a checksummed snapshot
// that restores — and whose restored state re-saves byte-identically.
func TestGracefulDrain(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "drain.snapshot")
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		opts.SearcherFactory = latencyFactory(ds, 300*time.Millisecond)
		cfg.MaxInFlight = 4
		cfg.SnapshotPath = snapPath
	})
	id := f.addWorkloadAnnotation(t, 0)

	// Launch slow in-flight discoveries.
	const inFlight = 3
	statuses := make([]int, inFlight)
	var wg sync.WaitGroup
	for i := 0; i < inFlight; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _ := json.Marshal(map[string]any{"id": id})
			resp, err := http.Post(f.ts.URL+"/v1/discover", "application/json", bytes.NewReader(payload))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}(i)
	}
	// Let the requests reach the engine before the drain flips the gate.
	time.Sleep(100 * time.Millisecond)

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- f.srv.Shutdown(ctx)
	}()
	// Wait for the gate to flip, then probe: new work must get a typed 503
	// and the health check must fail so load balancers route away.
	deadline := time.Now().Add(5 * time.Second)
	for !f.srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	payload, _ := json.Marshal(map[string]any{"id": id})
	resp, err := http.Post(f.ts.URL+"/v1/discover", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	rejBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("discover while draining: status %d (%s), want 503", resp.StatusCode, rejBody)
	}
	var rej struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(rejBody, &rej); err != nil || rej.Reason != "draining" {
		t.Errorf("draining rejection body %s, want reason=draining", rejBody)
	}
	if status, _ := f.get(t, "/healthz"); status != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", status)
	}

	wg.Wait()
	for i, s := range statuses {
		if s != http.StatusOK {
			t.Errorf("in-flight request %d finished with %d, want 200 (accepted work must not be dropped)", i, s)
		}
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The drain snapshot must restore, and the restored engine must re-save
	// byte-identically — proof the persisted state is complete and the
	// capture is deterministic.
	original, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatalf("drain snapshot missing: %v", err)
	}
	fh, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	restored, err := nebula.RestoreEngine(fh, func(db *nebula.Database) (*nebula.MetaRepository, error) {
		return workload.BuildMeta(db, rand.New(rand.NewSource(11)))
	}, nebula.DefaultOptions())
	if err != nil {
		t.Fatalf("drain snapshot does not restore: %v", err)
	}
	if restored.Store().Len() != f.eng.Store().Len() {
		t.Errorf("restored %d annotations, engine had %d", restored.Store().Len(), f.eng.Store().Len())
	}
	resaved := filepath.Join(t.TempDir(), "resave.snapshot")
	if err := restored.SaveSnapshotFile(resaved); err != nil {
		t.Fatal(err)
	}
	roundTrip, err := os.ReadFile(resaved)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(original, roundTrip) {
		t.Errorf("restore→re-save changed the snapshot (%d vs %d bytes); capture is not deterministic",
			len(original), len(roundTrip))
	}
}

// TestShutdownIdleServer drains with nothing in flight: immediate, snapshot
// still written.
func TestShutdownIdleServer(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "idle.snapshot")
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		cfg.SnapshotPath = snapPath
	})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("idle drain snapshot missing: %v", err)
	}
	// Shutdown again is a no-op that must not error or rewrite state.
	if err := f.srv.Shutdown(ctx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestDrainTimeoutStillSnapshots pins the contract that a hung request
// cannot cost the state file: drain times out, Shutdown reports the
// timeout, but the snapshot is written anyway.
func TestDrainTimeoutStillSnapshots(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "timeout.snapshot")
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		opts.SearcherFactory = latencyFactory(ds, 2*time.Second)
		cfg.SnapshotPath = snapPath
	})
	id := f.addWorkloadAnnotation(t, 0)

	done := make(chan struct{})
	go func() {
		defer close(done)
		payload, _ := json.Marshal(map[string]any{"id": id})
		resp, err := http.Post(f.ts.URL+"/v1/discover", "application/json", bytes.NewReader(payload))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	time.Sleep(100 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := f.srv.Shutdown(ctx)
	if err == nil {
		t.Error("Shutdown returned nil despite a hung request; want the drain timeout")
	}
	if _, statErr := os.Stat(snapPath); statErr != nil {
		t.Errorf("snapshot missing after drain timeout: %v", statErr)
	}
	<-done // let the slow request finish before the test server closes
}
