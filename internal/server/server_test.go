package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"nebula"
	"nebula/internal/faultinject"
	"nebula/internal/keyword"
	"nebula/internal/server"
	"nebula/internal/workload"
)

// fixture is one serving stack under test: a tiny deterministic dataset,
// the engine over it, the server, and an httptest listener.
type fixture struct {
	ds  *workload.Dataset
	eng *nebula.Engine
	srv *server.Server
	ts  *httptest.Server
}

// newFixture builds the stack. mutate (optional) adjusts the engine options
// and server config before construction — tests use it to install fault
// injection and shrink the admission gate.
func newFixture(t testing.TB, mutate func(*workload.Dataset, *nebula.Options, *server.Config)) *fixture {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	opts := nebula.DefaultOptions()
	cfg := server.Config{Logf: func(string, ...any) {}}
	if mutate != nil {
		mutate(ds, &opts, &cfg)
	}
	eng, err := nebula.NewWithState(ds.DB, ds.Meta, ds.Store, ds.Graph, opts)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return &fixture{ds: ds, eng: eng, srv: srv, ts: ts}
}

// latencyFactory wraps the default metadata searcher with an injected
// per-batch delay, making discovery wall-clock controllable from tests.
func latencyFactory(ds *workload.Dataset, d time.Duration) func(*nebula.Database) nebula.KeywordSearcher {
	return func(db *nebula.Database) nebula.KeywordSearcher {
		return faultinject.Wrap(keyword.NewEngine(db, ds.Meta), faultinject.Config{Latency: d})
	}
}

// addWorkloadAnnotation inserts workload spec i over the wire and returns
// its ID.
func (f *fixture) addWorkloadAnnotation(t testing.TB, i int) string {
	t.Helper()
	spec := f.ds.Workload[i]
	var focal []string
	for _, tid := range spec.Focal(1) {
		focal = append(focal, tid.String())
	}
	id := fmt.Sprintf("%s-t%d", spec.Ann.ID, i)
	status, body := f.post(t, "/v1/annotations", map[string]any{
		"id": id, "body": spec.Ann.Body, "attach_to": focal,
	})
	if status != http.StatusCreated {
		t.Fatalf("add annotation: status %d: %s", status, body)
	}
	return id
}

// post sends a JSON body and returns (status, responseBody).
func (f *fixture) post(t testing.TB, path string, body any) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	return f.postRaw(t, path, payload)
}

func (f *fixture) postRaw(t testing.TB, path string, payload []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(f.ts.URL+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

func (f *fixture) get(t testing.TB, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(f.ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, raw
}

// metric scrapes /metrics and returns the value of the first sample line
// matching the pattern (a literal prefix), or -1 when absent.
func (f *fixture) metric(t testing.TB, prefix string) float64 {
	t.Helper()
	status, body := f.get(t, "/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("metric line %q: %v", line, err)
			}
			return v
		}
	}
	return -1
}

func TestHealthz(t *testing.T) {
	f := newFixture(t, nil)
	status, body := f.get(t, "/healthz")
	if status != http.StatusOK {
		t.Fatalf("healthz status %d", status)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Errorf("status %q, want ok", health.Status)
	}
}

func TestDiscoverRoundTrip(t *testing.T) {
	f := newFixture(t, nil)
	id := f.addWorkloadAnnotation(t, 0)

	status, body := f.post(t, "/v1/discover", map[string]any{"id": id})
	if status != http.StatusOK {
		t.Fatalf("discover status %d: %s", status, body)
	}
	var resp struct {
		ID         string `json:"id"`
		Candidates []struct {
			Tuple      string  `json:"tuple"`
			Confidence float64 `json:"confidence"`
		} `json:"candidates"`
		Partial bool `json:"partial"`
		Stats   struct {
			Queries       int `json:"queries"`
			TuplesScanned int `json:"tuples_scanned"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ID != id || resp.Partial {
		t.Errorf("resp id=%q partial=%v, want id=%q partial=false", resp.ID, resp.Partial, id)
	}
	if resp.Stats.Queries == 0 {
		t.Error("no keyword queries generated")
	}
	for _, c := range resp.Candidates {
		if c.Confidence <= 0 || c.Confidence > 1 {
			t.Errorf("candidate %s confidence %v outside (0,1]", c.Tuple, c.Confidence)
		}
	}

	// The naive baseline must answer for the same annotation.
	status, body = f.post(t, "/v1/discover/naive", map[string]any{"id": id})
	if status != http.StatusOK {
		t.Fatalf("naive discover status %d: %s", status, body)
	}
}

func TestMalformedJSONRejected(t *testing.T) {
	f := newFixture(t, nil)
	for _, path := range []string{
		"/v1/annotations", "/v1/discover", "/v1/discover/naive",
		"/v1/discover/batch", "/v1/process", "/v1/snapshot/save", "/v1/snapshot/load",
	} {
		status, body := f.postRaw(t, path, []byte(`{"id": 'not json'`))
		if status != http.StatusBadRequest {
			t.Errorf("%s with malformed JSON: status %d (%s), want 400", path, status, body)
		}
		var errResp struct {
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(body, &errResp); err != nil || errResp.Reason != "bad_json" {
			t.Errorf("%s error body %s, want reason bad_json", path, body)
		}
	}
	// Unknown fields are rejected too — a misspelled option must not be
	// silently ignored.
	status, _ := f.post(t, "/v1/discover", map[string]any{"id": "x", "optionz": 1})
	if status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", status)
	}
}

func TestUnknownAnnotation404(t *testing.T) {
	f := newFixture(t, nil)
	status, body := f.post(t, "/v1/discover", map[string]any{"id": "no-such-annotation"})
	if status != http.StatusNotFound {
		t.Fatalf("status %d (%s), want 404", status, body)
	}
}

func TestInvalidRequestOptionsRejected(t *testing.T) {
	f := newFixture(t, nil)
	id := f.addWorkloadAnnotation(t, 0)
	status, body := f.post(t, "/v1/discover", map[string]any{
		"id": id, "options": map[string]any{"parallelism": -2},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("negative parallelism: status %d (%s), want 400", status, body)
	}
	status, _ = f.post(t, "/v1/discover", map[string]any{
		"id": id, "options": map[string]any{"deadline_ms": -5},
	})
	if status != http.StatusBadRequest {
		t.Fatalf("negative deadline: status %d, want 400", status)
	}
}

func TestBatchDiscoverMixedResults(t *testing.T) {
	f := newFixture(t, nil)
	id := f.addWorkloadAnnotation(t, 0)
	status, body := f.post(t, "/v1/discover/batch", map[string]any{
		"ids": []string{id, "missing-annotation"},
	})
	if status != http.StatusOK {
		t.Fatalf("batch status %d: %s", status, body)
	}
	var resp struct {
		Results []struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	if resp.Results[0].Error != "" {
		t.Errorf("known annotation errored: %q", resp.Results[0].Error)
	}
	if resp.Results[1].Error != "unknown_annotation" {
		t.Errorf("unknown annotation error %q, want unknown_annotation", resp.Results[1].Error)
	}
}

func TestProcessPendingAndVerdicts(t *testing.T) {
	f := newFixture(t, nil)
	// Process every workload annotation until one yields pending tasks.
	for i := range f.ds.Workload {
		id := f.addWorkloadAnnotation(t, i)
		status, body := f.post(t, "/v1/process", map[string]any{"id": id})
		if status != http.StatusOK {
			t.Fatalf("process status %d: %s", status, body)
		}
		var resp struct {
			Outcome struct {
				Pending []struct {
					VID int64 `json:"vid"`
				} `json:"pending"`
			} `json:"outcome"`
		}
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Outcome.Pending) == 0 {
			continue
		}

		status, body = f.get(t, "/v1/pending")
		if status != http.StatusOK {
			t.Fatalf("pending status %d", status)
		}
		var pending struct {
			Tasks []struct {
				VID   int64  `json:"vid"`
				Tuple string `json:"tuple"`
			} `json:"tasks"`
		}
		if err := json.Unmarshal(body, &pending); err != nil {
			t.Fatal(err)
		}
		if len(pending.Tasks) == 0 {
			t.Fatal("process reported pending tasks but /v1/pending is empty")
		}

		vid := pending.Tasks[0].VID
		status, body = f.post(t, fmt.Sprintf("/v1/pending/%d/accept", vid), map[string]any{})
		if status != http.StatusOK {
			t.Fatalf("accept status %d: %s", status, body)
		}
		// Accepting twice must 404: the task left the pending set.
		status, _ = f.post(t, fmt.Sprintf("/v1/pending/%d/accept", vid), map[string]any{})
		if status != http.StatusNotFound {
			t.Errorf("double accept status %d, want 404", status)
		}
		if len(pending.Tasks) > 1 {
			vid2 := pending.Tasks[1].VID
			status, _ = f.post(t, fmt.Sprintf("/v1/pending/%d/reject", vid2), map[string]any{})
			if status != http.StatusOK {
				t.Errorf("reject status %d, want 200", status)
			}
		}
		status, _ = f.post(t, "/v1/pending/999999/accept", map[string]any{})
		if status != http.StatusNotFound {
			t.Errorf("bogus vid status %d, want 404", status)
		}
		status, _ = f.post(t, "/v1/pending/not-a-vid/reject", map[string]any{})
		if status != http.StatusBadRequest {
			t.Errorf("non-integer vid status %d, want 400", status)
		}
		return
	}
	t.Skip("no workload annotation yielded pending tasks under default bounds")
}

// TestBudgetDeadlineDegradedRun drives a discovery into its deadline: the
// response must be HTTP 200 with the partial results clearly marked, and
// the run must surface in the budget-exceeded and degraded counters.
func TestBudgetDeadlineDegradedRun(t *testing.T) {
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		opts.SearcherFactory = latencyFactory(ds, 150*time.Millisecond)
	})
	id := f.addWorkloadAnnotation(t, 0)

	status, body := f.post(t, "/v1/discover", map[string]any{
		"id": id, "options": map[string]any{"deadline_ms": 30},
	})
	if status != http.StatusOK {
		t.Fatalf("deadline run status %d (%s), want 200 with partial results", status, body)
	}
	var resp struct {
		Partial  bool     `json:"partial"`
		Error    string   `json:"error"`
		Degraded []string `json:"degraded"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Partial || resp.Error != "budget_exceeded" {
		t.Errorf("partial=%v error=%q, want partial=true error=budget_exceeded", resp.Partial, resp.Error)
	}
	if len(resp.Degraded) == 0 {
		t.Error("degraded reasons empty; the deadline interruption must be listed")
	}
	if n := f.metric(t, "nebula_runs_budget_exceeded_total"); n < 1 {
		t.Errorf("nebula_runs_budget_exceeded_total = %v, want >= 1", n)
	}
	if n := f.metric(t, "nebula_runs_degraded_total"); n < 1 {
		t.Errorf("nebula_runs_degraded_total = %v, want >= 1", n)
	}
}

// TestQueueFullSheds429 saturates a one-slot, one-queue-position server
// with slow discoveries and checks the overflow is shed with typed 429s.
func TestQueueFullSheds429(t *testing.T) {
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		opts.SearcherFactory = latencyFactory(ds, 300*time.Millisecond)
		cfg.MaxInFlight = 1
		cfg.QueueDepth = 1
	})
	id := f.addWorkloadAnnotation(t, 0)

	const clients = 8
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload, _ := json.Marshal(map[string]any{"id": id})
			resp, err := http.Post(f.ts.URL+"/v1/discover", "application/json", bytes.NewReader(payload))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				t.Error("429 without Retry-After header")
			}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for _, s := range statuses {
		switch s {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
		}
	}
	if ok == 0 {
		t.Error("no request completed")
	}
	if shed == 0 {
		t.Errorf("no request shed with 429 (statuses %v); the bounded queue did not shed", statuses)
	}
	if n := f.metric(t, `nebula_rejected_total{reason="queue_full"}`); n < 1 {
		t.Errorf("queue_full rejection counter = %v, want >= 1", n)
	}
}

// TestRetryAfterScalesWithLoad checks the Retry-After header is derived
// from live admission state, not hardcoded: after slow requests establish a
// latency history, a shed client on a deep queue is told to wait roughly
// queue-backlog × mean-latency seconds (≥ 2 here), clamped at 30.
func TestRetryAfterScalesWithLoad(t *testing.T) {
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		opts.SearcherFactory = latencyFactory(ds, 500*time.Millisecond)
		opts.Cache.Disabled = true // every discovery pays the injected latency
		cfg.MaxInFlight = 1
		cfg.QueueDepth = 8
	})
	id := f.addWorkloadAnnotation(t, 0)
	payload, _ := json.Marshal(map[string]any{"id": id})

	// Prime the latency ring with completed slow discoveries so the
	// estimator has history before the overload.
	for i := 0; i < 2; i++ {
		status, body := f.postRaw(t, "/v1/discover", payload)
		if status != http.StatusOK {
			t.Fatalf("priming discover: status %d: %s", status, body)
		}
	}

	// Saturate: 1 executing + 8 queued; the rest shed with 429. Each shed
	// response must carry a Retry-After that reflects the backlog.
	const clients = 16
	retryAfters := make([]string, clients)
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(f.ts.URL+"/v1/discover", "application/json", bytes.NewReader(payload))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfters[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	maxRetry := 0
	for i, s := range statuses {
		if s != http.StatusTooManyRequests {
			continue
		}
		sec, err := strconv.Atoi(retryAfters[i])
		if err != nil {
			t.Fatalf("429 Retry-After %q is not an integer: %v", retryAfters[i], err)
		}
		if sec < 1 || sec > 30 {
			t.Errorf("Retry-After = %d, want within [1, 30]", sec)
		}
		if sec > maxRetry {
			maxRetry = sec
		}
	}
	if maxRetry == 0 {
		t.Fatalf("no request shed with 429 (statuses %v)", statuses)
	}
	// With ~500ms mean latency and up to 8 queued, at least one shed
	// response must admit a wait of 2s or more — the old hardcoded "1"
	// fails this.
	if maxRetry < 2 {
		t.Errorf("max Retry-After = %d, want >= 2 (header does not scale with backlog)", maxRetry)
	}
}

// TestDiscoverTraceResponse checks the wire contract of request-scoped
// tracing: options.trace attaches a span tree to the response, its absence
// leaves the response without one, and the traced and untraced responses
// are otherwise byte-identical (tracing is observe-only).
func TestDiscoverTraceResponse(t *testing.T) {
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		// Caching off so both requests run the full pipeline: a cache hit
		// would (correctly) short-circuit the second run — trace is
		// excluded from the cache key — and its stats would reflect no work.
		opts.Cache.Disabled = true
	})
	id := f.addWorkloadAnnotation(t, 0)

	status, plain := f.post(t, "/v1/discover", map[string]any{"id": id})
	if status != http.StatusOK {
		t.Fatalf("untraced discover: status %d: %s", status, plain)
	}
	status, traced := f.post(t, "/v1/discover", map[string]any{
		"id": id, "options": map[string]any{"trace": true},
	})
	if status != http.StatusOK {
		t.Fatalf("traced discover: status %d: %s", status, traced)
	}

	var plainResp, tracedResp map[string]json.RawMessage
	if err := json.Unmarshal(plain, &plainResp); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(traced, &tracedResp); err != nil {
		t.Fatal(err)
	}
	if _, ok := plainResp["trace"]; ok {
		t.Error("untraced response carries a trace object")
	}
	raw, ok := tracedResp["trace"]
	if !ok {
		t.Fatal("traced response has no trace object")
	}
	var root struct {
		Name       string            `json:"name"`
		DurationNS int64             `json:"duration_ns"`
		Children   []json.RawMessage `json:"children"`
	}
	if err := json.Unmarshal(raw, &root); err != nil {
		t.Fatalf("trace object does not decode: %v", err)
	}
	if root.Name != "discover" {
		t.Errorf("trace root = %q, want discover", root.Name)
	}
	if root.DurationNS <= 0 {
		t.Errorf("trace root duration = %d, want > 0", root.DurationNS)
	}
	if len(root.Children) == 0 {
		t.Error("trace root has no child spans; pipeline phases were not instrumented")
	}

	// Everything except the trace must be byte-identical.
	delete(tracedResp, "trace")
	for k, v := range plainResp {
		if got, ok := tracedResp[k]; !ok || !bytes.Equal(got, v) {
			t.Errorf("traced response field %q differs from untraced: %s vs %s", k, got, v)
		}
	}
	if len(tracedResp) != len(plainResp) {
		t.Errorf("traced response has %d fields, untraced %d", len(tracedResp)+1, len(plainResp))
	}
}

// TestSlowRequestLog checks the structured slow-request log: with a zero
// threshold nothing is logged at Warn; with a tiny threshold a discovery
// logs one Warn record with its span tree inlined, while the response stays
// free of the trace the server forced for its own logging.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	mu := &sync.Mutex{}
	locked := &lockedWriter{w: &buf, mu: mu}
	f := newFixture(t, func(ds *workload.Dataset, opts *nebula.Options, cfg *server.Config) {
		cfg.Logger = slog.New(slog.NewTextHandler(locked, nil))
		cfg.SlowRequestThreshold = time.Nanosecond // everything is slow
	})
	id := f.addWorkloadAnnotation(t, 0)
	status, body := f.post(t, "/v1/discover", map[string]any{"id": id})
	if status != http.StatusOK {
		t.Fatalf("discover: status %d: %s", status, body)
	}
	var resp map[string]json.RawMessage
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if _, ok := resp["trace"]; ok {
		t.Error("forced server-side tracing leaked into the response body")
	}
	mu.Lock()
	logged := buf.String()
	mu.Unlock()
	if !strings.Contains(logged, "slow request") {
		t.Fatalf("no slow-request record logged:\n%s", logged)
	}
	if !strings.Contains(logged, "endpoint=/v1/discover") {
		t.Errorf("slow-request record lacks endpoint attr:\n%s", logged)
	}
	if !strings.Contains(logged, "discover") || !strings.Contains(logged, "trace=") {
		t.Errorf("slow-request record lacks the inlined span tree:\n%s", logged)
	}
}

// lockedWriter serializes concurrent slog writes in tests.
type lockedWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (l *lockedWriter) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.w.Write(p)
}

// TestMetricsCounters checks the acceptance-level /metrics contract:
// request counters and queue-depth gauges are non-zero after traffic, and
// the exposition parses as prometheus text lines.
func TestMetricsCounters(t *testing.T) {
	f := newFixture(t, nil)
	id := f.addWorkloadAnnotation(t, 0)
	for i := 0; i < 3; i++ {
		if status, body := f.post(t, "/v1/discover", map[string]any{"id": id}); status != http.StatusOK {
			t.Fatalf("discover status %d: %s", status, body)
		}
	}

	if n := f.metric(t, `nebula_requests_total{endpoint="/v1/discover",code="200"}`); n < 3 {
		t.Errorf("discover request counter = %v, want >= 3", n)
	}
	if n := f.metric(t, "nebula_queue_depth_peak"); n < 1 {
		t.Errorf("nebula_queue_depth_peak = %v, want >= 1 (every admission passes through the queue)", n)
	}
	if n := f.metric(t, "nebula_admitted_total"); n < 4 {
		t.Errorf("nebula_admitted_total = %v, want >= 4", n)
	}
	if n := f.metric(t, "nebula_exec_structured_queries_total"); n < 1 {
		t.Errorf("nebula_exec_structured_queries_total = %v, want >= 1", n)
	}
	if n := f.metric(t, `nebula_request_seconds_count{endpoint="/v1/discover"}`); n < 3 {
		t.Errorf("latency histogram count = %v, want >= 3", n)
	}

	// Every sample line must be "name{labels} value" or "name value".
	_, body := f.get(t, "/metrics")
	sample := regexp.MustCompile(`^[a-z_]+(\{[^}]*\})? -?[0-9.e+-]+$`)
	for _, line := range strings.Split(strings.TrimSpace(string(body)), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sample.MatchString(line) {
			t.Errorf("unparseable metrics line: %q", line)
		}
	}
}

func TestSnapshotSaveLoadEndpoints(t *testing.T) {
	f := newFixture(t, nil)
	id := f.addWorkloadAnnotation(t, 0)
	path := filepath.Join(t.TempDir(), "state.snapshot")

	status, body := f.post(t, "/v1/snapshot/save", map[string]any{"path": path})
	if status != http.StatusOK {
		t.Fatalf("save status %d: %s", status, body)
	}
	var save struct {
		Annotations int   `json:"annotations"`
		Bytes       int64 `json:"bytes"`
	}
	if err := json.Unmarshal(body, &save); err != nil {
		t.Fatal(err)
	}
	if save.Annotations == 0 || save.Bytes == 0 {
		t.Errorf("save reported %d annotations, %d bytes; want both > 0", save.Annotations, save.Bytes)
	}

	status, body = f.post(t, "/v1/snapshot/load", map[string]any{"path": path})
	if status != http.StatusOK {
		t.Fatalf("load status %d: %s", status, body)
	}
	// The restored engine must still serve the annotation saved above.
	status, body = f.post(t, "/v1/discover", map[string]any{"id": id})
	if status != http.StatusOK {
		t.Fatalf("discover after load: status %d: %s", status, body)
	}
	if n := f.metric(t, "nebula_snapshot_saves_total"); n < 1 {
		t.Errorf("snapshot saves counter = %v, want >= 1", n)
	}
	if n := f.metric(t, "nebula_snapshot_loads_total"); n < 1 {
		t.Errorf("snapshot loads counter = %v, want >= 1", n)
	}

	// A corrupted snapshot must be refused with a typed 422, and must not
	// replace the serving engine.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	corrupt := filepath.Join(t.TempDir(), "corrupt.snapshot")
	if err := os.WriteFile(corrupt, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	status, body = f.post(t, "/v1/snapshot/load", map[string]any{"path": corrupt})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt load status %d (%s), want 422", status, body)
	}
	if status, _ = f.post(t, "/v1/discover", map[string]any{"id": id}); status != http.StatusOK {
		t.Error("server stopped serving after refusing a corrupt snapshot")
	}

	status, _ = f.post(t, "/v1/snapshot/load", map[string]any{"path": filepath.Join(t.TempDir(), "missing")})
	if status != http.StatusNotFound {
		t.Errorf("missing snapshot load status %d, want 404", status)
	}
	status, _ = f.post(t, "/v1/snapshot/save", map[string]any{})
	if status != http.StatusBadRequest {
		t.Errorf("save with no path status %d, want 400 (no default configured)", status)
	}
}

// TestConcurrentDiscoverAndSnapshot exercises the engine's reader–writer
// contract through the serving layer: discoveries and snapshot saves run
// concurrently (both read-locked) while annotation inserts interleave
// (write-locked). Run under -race this is the concurrency acceptance test.
func TestConcurrentDiscoverAndSnapshot(t *testing.T) {
	f := newFixture(t, nil)
	ids := []string{
		f.addWorkloadAnnotation(t, 0),
		f.addWorkloadAnnotation(t, 1),
		f.addWorkloadAnnotation(t, 2),
	}
	dir := t.TempDir()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				payload, _ := json.Marshal(map[string]any{"id": ids[(w+i)%len(ids)]})
				resp, err := http.Post(f.ts.URL+"/v1/discover", "application/json", bytes.NewReader(payload))
				if err != nil {
					errs <- err.Error()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Sprintf("discover status %d", resp.StatusCode)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			path := filepath.Join(dir, fmt.Sprintf("snap-%d", i))
			payload, _ := json.Marshal(map[string]any{"path": path})
			resp, err := http.Post(f.ts.URL+"/v1/snapshot/save", "application/json", bytes.NewReader(payload))
			if err != nil {
				errs <- err.Error()
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Sprintf("snapshot status %d", resp.StatusCode)
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
