package server_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"nebula"
	"nebula/internal/server"
	"nebula/internal/workload"
)

// ingestFixture builds the serving stack with the streaming subsystem on.
func ingestFixture(t testing.TB, queueCap int) *fixture {
	t.Helper()
	return newFixture(t, func(_ *workload.Dataset, o *nebula.Options, _ *server.Config) {
		o.Ingest = nebula.IngestConfig{Enabled: true, QueueCap: queueCap}
	})
}

// asyncBody builds the /v1/annotations/async payload for workload spec i.
func asyncBody(f *fixture, i int, priority int) map[string]any {
	spec := f.ds.Workload[i]
	var focal []string
	for _, tid := range spec.Focal(1) {
		focal = append(focal, tid.String())
	}
	return map[string]any{
		"id": fmt.Sprintf("%s-async%d", spec.Ann.ID, i), "body": spec.Ann.Body,
		"attach_to": focal, "priority": priority,
	}
}

// TestIngestAsyncSubmitFlushRoundTrip walks the streaming surface end to
// end over the wire: 202 on submit with the job's queue position, the queue
// status endpoint listing the job, a flush draining it, and the
// nebula_ingest_* metrics reflecting the run.
func TestIngestAsyncSubmitFlushRoundTrip(t *testing.T) {
	f := ingestFixture(t, 0)
	status, body := f.post(t, "/v1/annotations/async", asyncBody(f, 0, 2))
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, body)
	}
	var acc struct {
		ID         string `json:"id"`
		Seq        uint64 `json:"seq"`
		Priority   int    `json:"priority"`
		QueueDepth int    `json:"queue_depth"`
	}
	if err := json.Unmarshal(body, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.QueueDepth != 1 || acc.Priority != 2 {
		t.Fatalf("accepted %+v, want depth 1 priority 2", acc)
	}

	status, body = f.get(t, "/v1/ingest")
	if status != http.StatusOK {
		t.Fatalf("status endpoint %d: %s", status, body)
	}
	var st struct {
		Stats nebula.IngestStats `json:"stats"`
		Jobs  []struct {
			Annotation string `json:"annotation"`
			Kind       string `json:"kind"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if !st.Stats.Enabled || st.Stats.QueueDepth != 1 || len(st.Jobs) != 1 {
		t.Fatalf("queue status %+v jobs=%d, want enabled depth 1 with 1 job", st.Stats, len(st.Jobs))
	}
	if st.Jobs[0].Annotation != acc.ID {
		t.Fatalf("listed job %q, want %q", st.Jobs[0].Annotation, acc.ID)
	}

	status, body = f.post(t, "/v1/ingest/flush", map[string]any{})
	if status != http.StatusOK {
		t.Fatalf("flush status %d: %s", status, body)
	}
	var fl struct {
		Popped  int `json:"popped"`
		Drained int `json:"drained"`
	}
	if err := json.Unmarshal(body, &fl); err != nil {
		t.Fatal(err)
	}
	if fl.Popped != 1 || fl.Drained != 1 {
		t.Fatalf("flush %+v, want popped 1 drained 1", fl)
	}
	if atts := f.eng.Store().Attachments(nebula.AnnotationID(acc.ID), -1); len(atts) == 0 {
		t.Fatal("drained annotation has no attachments")
	}
	if v := f.metric(t, "nebula_ingest_enqueued_total"); v < 1 {
		t.Fatalf("nebula_ingest_enqueued_total = %v, want >= 1", v)
	}
	if v := f.metric(t, "nebula_ingest_queue_depth"); v != 0 {
		t.Fatalf("nebula_ingest_queue_depth = %v after flush, want 0", v)
	}
	if v := f.metric(t, "nebula_ingest_freshness_seconds_count"); v != 1 {
		t.Fatalf("nebula_ingest_freshness_seconds_count = %v, want 1", v)
	}
}

// TestIngestAsyncQueueFull429 asserts the backpressure contract over the
// wire: a full queue answers 429 with a Retry-After hint and nothing is
// stored for the rejected submission.
func TestIngestAsyncQueueFull429(t *testing.T) {
	f := ingestFixture(t, 1)
	if status, body := f.post(t, "/v1/annotations/async", asyncBody(f, 0, 0)); status != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", status, body)
	}
	payload, err := json.Marshal(asyncBody(f, 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(f.ts.URL+"/v1/annotations/async", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second submit status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	rejectedID := nebula.AnnotationID(asyncBody(f, 1, 0)["id"].(string))
	if _, ok := f.eng.Store().Get(rejectedID); ok {
		t.Fatal("rejected submission stored an annotation")
	}
	if v := f.metric(t, "nebula_ingest_dropped_total"); v != 1 {
		t.Fatalf("nebula_ingest_dropped_total = %v, want 1", v)
	}
}

// TestIngestDisabledConflict asserts the async surface answers 409 when the
// engine runs without the streaming subsystem, and the status endpoint
// reports it disabled rather than erroring.
func TestIngestDisabledConflict(t *testing.T) {
	f := newFixture(t, nil)
	if status, body := f.post(t, "/v1/annotations/async", asyncBody(f, 0, 0)); status != http.StatusConflict {
		t.Fatalf("async submit status %d, want 409: %s", status, body)
	}
	if status, body := f.post(t, "/v1/ingest/flush", map[string]any{}); status != http.StatusConflict {
		t.Fatalf("flush status %d, want 409: %s", status, body)
	}
	status, body := f.get(t, "/v1/ingest")
	if status != http.StatusOK {
		t.Fatalf("status endpoint %d: %s", status, body)
	}
	var st struct {
		Stats nebula.IngestStats `json:"stats"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Stats.Enabled {
		t.Fatal("status reports ingest enabled on a disabled engine")
	}
	if v := f.metric(t, "nebula_ingest_enabled"); v != 0 {
		t.Fatalf("nebula_ingest_enabled = %v, want 0", v)
	}
}
