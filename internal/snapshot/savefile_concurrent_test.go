package snapshot

// Regression tests for a review finding: SaveFileFS briefly used one
// fixed ".name.tmp" temp path, so two concurrent savers targeting the
// same snapshot interleaved writes into one inode and could rename a
// corrupt stream over the last good snapshot. Temp names are now unique
// per call.

import (
	"path/filepath"
	"sync"
	"testing"

	"nebula/internal/vfs"
)

// createRecorder records every path handed to Create.
type createRecorder struct {
	vfs.FS
	mu    sync.Mutex
	paths []string
}

func (r *createRecorder) Create(path string) (vfs.File, error) {
	r.mu.Lock()
	r.paths = append(r.paths, path)
	r.mu.Unlock()
	return r.FS.Create(path)
}

func TestSaveFileTempNamesUnique(t *testing.T) {
	_, snap := capture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nebsnap")
	rec := &createRecorder{FS: vfs.OS{}}
	for i := 0; i < 3; i++ {
		if err := SaveFileFS(rec, path, snap); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool)
	for _, p := range rec.paths {
		if p == path {
			t.Fatalf("snapshot written directly to %s, bypassing the temp+rename protocol", p)
		}
		if seen[p] {
			t.Fatalf("temp path %s reused across saves — concurrent savers would share an inode", p)
		}
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Fatalf("recorded %d distinct temp paths, want 3", len(seen))
	}
}

func TestSaveFileConcurrentSaversLeaveLoadableSnapshot(t *testing.T) {
	_, snap := capture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nebsnap")
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = SaveFile(path, snap)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("saver %d: %v", i, err)
		}
	}
	// Whichever rename won, the file at path must be one complete stream.
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatalf("snapshot corrupted by concurrent savers: %v", err)
	}
	if len(loaded.Tables) != len(snap.Tables) {
		t.Error("concurrent save round trip mismatch")
	}
}
