package snapshot

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func encoded(t *testing.T) []byte {
	t.Helper()
	_, snap := capture(t)
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadDetectsTruncation(t *testing.T) {
	data := encoded(t)
	// Every truncation point past the magic must fail loudly; points inside
	// the payload must fail as ErrCorrupt specifically.
	for _, cut := range []int{len(magic) + 3, len(magic) + 16, len(data) / 2, len(data) - 1} {
		_, err := Load(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d loaded successfully", cut, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: error %v is not ErrCorrupt", cut, err)
		}
	}
}

func TestLoadDetectsBitFlips(t *testing.T) {
	data := encoded(t)
	headerLen := len(magic) + 16
	// Flip one bit at several payload offsets; the checksum must catch all.
	for _, off := range []int{headerLen, headerLen + 100, len(data) - 1} {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0x40
		_, err := Load(bytes.NewReader(flipped))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at offset %d: error %v is not ErrCorrupt", off, err)
		}
	}
}

func TestLoadLegacyBareGob(t *testing.T) {
	// Pre-checksum snapshots are bare gob streams; they must still load.
	_, snap := capture(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("legacy stream rejected: %v", err)
	}
	if loaded.Version != FormatVersion || len(loaded.Tables) != len(snap.Tables) {
		t.Error("legacy stream decoded incorrectly")
	}
}

func TestSaveFileRoundTripAndCleanup(t *testing.T) {
	_, snap := capture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nebsnap")
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Tables) != len(snap.Tables) || len(loaded.Attachments) != len(snap.Attachments) {
		t.Error("SaveFile/LoadFile round trip mismatch")
	}
	// Overwrite is atomic and leaves no temp litter behind.
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want only the snapshot", len(entries))
	}
}

func TestSaveFileFailureLeavesTargetUntouched(t *testing.T) {
	_, snap := capture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nebsnap")
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A save into a directory that vanishes mid-flight must not destroy the
	// existing file; simulate with an unwritable temp dir via a bogus path
	// whose parent is a file.
	if err := SaveFile(filepath.Join(path, "child.nebsnap"), snap); err == nil {
		t.Fatal("save under a file path should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save mutated the existing snapshot")
	}
}
