package snapshot

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func encoded(t *testing.T) []byte {
	t.Helper()
	_, snap := capture(t)
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadDetectsTruncation(t *testing.T) {
	data := encoded(t)
	// Every truncation point past the magic must fail loudly; points inside
	// the payload must fail as ErrCorrupt specifically.
	for _, cut := range []int{len(magic) + 3, len(magic) + 16, len(data) / 2, len(data) - 1} {
		_, err := Load(bytes.NewReader(data[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d of %d loaded successfully", cut, len(data))
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation at %d: error %v is not ErrCorrupt", cut, err)
		}
	}
}

func TestLoadDetectsBitFlips(t *testing.T) {
	data := encoded(t)
	headerLen := len(magic) + 16
	// Flip one bit at several payload offsets; the checksum must catch all.
	for _, off := range []int{headerLen, headerLen + 100, len(data) - 1} {
		flipped := append([]byte(nil), data...)
		flipped[off] ^= 0x40
		_, err := Load(bytes.NewReader(flipped))
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("bit flip at offset %d: error %v is not ErrCorrupt", off, err)
		}
	}
}

func TestLoadLegacyBareGob(t *testing.T) {
	// Pre-checksum snapshots are bare gob streams; the explicit LoadLegacy
	// escape hatch must still decode them...
	_, snap := capture(t)
	var legacy bytes.Buffer
	if err := gob.NewEncoder(&legacy).Encode(snap); err != nil {
		t.Fatal(err)
	}
	data := legacy.Bytes()
	loaded, err := LoadLegacy(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("legacy stream rejected by LoadLegacy: %v", err)
	}
	if loaded.Version != FormatVersion || len(loaded.Tables) != len(snap.Tables) {
		t.Error("legacy stream decoded incorrectly")
	}
	// ...while strict Load refuses the same stream as corrupt: silently
	// decoding unverified gob was the integrity hole.
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("strict Load on bare gob: error %v is not ErrCorrupt", err)
	}
}

func TestLoadDetectsCorruptedMagic(t *testing.T) {
	// A modern snapshot whose magic got clobbered must surface as
	// ErrCorrupt on Load — before the fix it fell through to the legacy
	// bare-gob path and was decoded with no integrity check at all.
	data := encoded(t)
	for off := 0; off < len(magic); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		if _, err := Load(bytes.NewReader(mut)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("magic byte %d flipped: error %v is not ErrCorrupt", off, err)
		}
		// LoadLegacy treats it as a legacy candidate, but gob decode of a
		// checksummed header is overwhelmingly garbage — it must error,
		// never hand back a half-decoded snapshot silently. (Any error is
		// acceptable; what matters is that Load above is strict.)
		if loaded, err := LoadLegacy(bytes.NewReader(mut)); err == nil && loaded != nil && len(loaded.Tables) == 0 {
			t.Errorf("magic byte %d flipped: LoadLegacy returned empty snapshot without error", off)
		}
	}
	// Short streams (fewer bytes than the magic) are corrupt too, not legacy.
	if _, err := Load(bytes.NewReader(data[:3])); !errors.Is(err, ErrCorrupt) {
		t.Errorf("3-byte stream: error %v is not ErrCorrupt", err)
	}
}

func TestSaveFileRoundTripAndCleanup(t *testing.T) {
	_, snap := capture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nebsnap")
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Tables) != len(snap.Tables) || len(loaded.Attachments) != len(snap.Attachments) {
		t.Error("SaveFile/LoadFile round trip mismatch")
	}
	// Overwrite is atomic and leaves no temp litter behind.
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, want only the snapshot", len(entries))
	}
}

func TestSaveFileFailureLeavesTargetUntouched(t *testing.T) {
	_, snap := capture(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "state.nebsnap")
	if err := SaveFile(path, snap); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// A save into a directory that vanishes mid-flight must not destroy the
	// existing file; simulate with an unwritable temp dir via a bogus path
	// whose parent is a file.
	if err := SaveFile(filepath.Join(path, "child.nebsnap"), snap); err == nil {
		t.Fatal("save under a file path should fail")
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Error("failed save mutated the existing snapshot")
	}
}
