package snapshot

import (
	"bytes"
	"testing"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/relational"
	"nebula/internal/workload"
)

func capture(t *testing.T) (State, *Snapshot) {
	t.Helper()
	ds, err := workload.Generate(workload.TinyConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	profile := acg.NewProfile()
	profile.Record(1, true)
	profile.Record(2, true)
	profile.Record(0, false)
	st := State{DB: ds.DB, Store: ds.Store, Graph: ds.Graph, Profile: profile}
	snap, err := Capture(st)
	if err != nil {
		t.Fatal(err)
	}
	return st, snap
}

func TestRoundTripThroughGob(t *testing.T) {
	orig, snap := capture(t)
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := loaded.Restore()
	if err != nil {
		t.Fatal(err)
	}

	// Data round-trips: same tables, cardinalities, and cell values.
	if got, want := restored.DB.TotalRows(), orig.DB.TotalRows(); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	for _, name := range orig.DB.TableNames() {
		ot := orig.DB.MustTable(name)
		rt, ok := restored.DB.Table(name)
		if !ok || rt.Len() != ot.Len() {
			t.Fatalf("table %s mismatch", name)
		}
		for i, row := range ot.Rows() {
			rrow := rt.Rows()[i]
			for j, v := range row.Values {
				if !v.Equal(rrow.Values[j]) {
					t.Fatalf("%s row %d col %d: %v != %v", name, i, j, v, rrow.Values[j])
				}
			}
		}
	}

	// Annotations and attachments round-trip.
	if restored.Store.Len() != orig.Store.Len() {
		t.Fatalf("annotations = %d, want %d", restored.Store.Len(), orig.Store.Len())
	}
	if restored.Store.EdgeCount() != orig.Store.EdgeCount() {
		t.Fatalf("edges = %d, want %d", restored.Store.EdgeCount(), orig.Store.EdgeCount())
	}
	for _, id := range orig.Store.IDs() {
		oa, _ := orig.Store.Get(id)
		ra, ok := restored.Store.Get(id)
		if !ok || ra.Body != oa.Body || ra.Kind != oa.Kind {
			t.Fatalf("annotation %s mismatch", id)
		}
	}

	// ACG round-trips: same node/edge counts and weights.
	if restored.Graph.Nodes() != orig.Graph.Nodes() || restored.Graph.Edges() != orig.Graph.Edges() {
		t.Fatalf("graph %d/%d, want %d/%d", restored.Graph.Nodes(), restored.Graph.Edges(),
			orig.Graph.Nodes(), orig.Graph.Edges())
	}
	for id, tuples := range orig.Graph.AttachmentList() {
		for _, a := range tuples {
			for _, b := range tuples {
				if a != b && restored.Graph.Weight(a, b) != orig.Graph.Weight(a, b) {
					t.Fatalf("weight(%v,%v) mismatch", a, b)
				}
			}
		}
		_ = id
	}
	// Stability counters preserved.
	ob, om, oa2, oat, oe, oc, os := orig.Graph.StabilityState()
	rb, rm, ra2, rat, re, rc, rs := restored.Graph.StabilityState()
	if ob != rb || om != rm || oa2 != ra2 || oat != rat || oe != re || oc != rc || os != rs {
		t.Fatal("stability state mismatch")
	}

	// Profile round-trips.
	if restored.Profile.Total() != orig.Profile.Total() ||
		restored.Profile.Unreachable() != orig.Profile.Unreachable() ||
		restored.Profile.Bucket(1) != orig.Profile.Bucket(1) {
		t.Fatal("profile mismatch")
	}
}

func TestCaptureValidation(t *testing.T) {
	if _, err := Capture(State{}); err == nil {
		t.Error("nil state should fail")
	}
}

func TestVersionChecks(t *testing.T) {
	_, snap := capture(t)
	snap.Version = 99
	if _, err := snap.Restore(); err == nil {
		t.Error("version mismatch should fail on Restore")
	}
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf); err == nil {
		t.Error("version mismatch should fail on Load")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a gob stream"))); err == nil {
		t.Error("garbage should fail")
	}
}

func TestRestoredStateIsLive(t *testing.T) {
	// A restored state must accept new work: add an annotation, attach it,
	// grow the graph.
	_, snap := capture(t)
	st, err := snap.Restore()
	if err != nil {
		t.Fatal(err)
	}
	gt := st.DB.MustTable("Gene")
	row := gt.Rows()[0]
	if err := st.Store.Add(&annotation.Annotation{ID: "post-restore", Body: "x"}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Store.Attach(annotation.Attachment{
		Annotation: "post-restore", Tuple: row.ID, Type: annotation.TrueAttachment,
	}); err != nil {
		t.Fatal(err)
	}
	st.Graph.AddAnnotation("post-restore", []relational.TupleID{row.ID})
	if !st.Graph.Contains(row.ID) {
		t.Error("restored graph not live")
	}
	// Indexes were rebuilt: lookups work.
	pk := row.MustGet("GID")
	if _, ok := gt.GetByPK(pk); !ok {
		t.Error("restored index lookup failed")
	}
}
