package snapshot

import (
	"bytes"
	"fmt"
	"testing"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// fuzzRNG is a tiny deterministic generator (splitmix64) so fuzz inputs
// expand into varied-but-reproducible states without math/rand.
type fuzzRNG uint64

func (r *fuzzRNG) next() uint64 {
	*r += 0x9e3779b97f4a7c15
	z := uint64(*r)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *fuzzRNG) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// fuzzState builds a full engine state from the fuzzed primitives: a
// two-table database, an annotation store with true and predicted edges,
// an ACG mirroring the attachments, and a hop-distance profile.
func fuzzState(t *testing.T, rows, anns, batchSize int, mu float64, seed uint64) State {
	t.Helper()
	db := relational.NewDatabase()
	if _, err := db.CreateTable(&relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Family", Type: relational.TypeString},
			{Name: "Length", Type: relational.TypeInt},
			{Name: "Score", Type: relational.TypeFloat},
		},
		PrimaryKey: "GID",
	}); err != nil {
		t.Fatal(err)
	}
	rng := fuzzRNG(seed)
	gt := db.MustTable("Gene")
	tuples := make([]relational.TupleID, 0, rows)
	for i := 0; i < rows; i++ {
		row, err := gt.Insert([]relational.Value{
			relational.String(fmt.Sprintf("JW%05d", i)),
			relational.String(fmt.Sprintf("F%d", rng.intn(7))),
			relational.Int(int64(rng.intn(2000))),
			relational.Float(float64(rng.intn(1000)) / 1000),
		})
		if err != nil {
			t.Fatal(err)
		}
		tuples = append(tuples, row.ID)
	}

	store := annotation.NewStore()
	graph := acg.New(batchSize, mu)
	for i := 0; i < anns; i++ {
		id := annotation.ID(fmt.Sprintf("ann-%d", i))
		if err := store.Add(&annotation.Annotation{
			ID: id, Author: fmt.Sprintf("curator%d", rng.intn(3)),
			Body: fmt.Sprintf("body %d: related to JW%05d", i, rng.intn(rows+1)),
			Kind: []string{"comment", "article", "flag"}[rng.intn(3)],
		}); err != nil {
			t.Fatal(err)
		}
		var attached []relational.TupleID
		for e, n := 0, rng.intn(4); e < n && len(tuples) > 0; e++ {
			att := annotation.Attachment{Annotation: id, Tuple: tuples[rng.intn(len(tuples))]}
			if rng.intn(2) == 0 {
				att.Type = annotation.TrueAttachment
			} else {
				att.Type = annotation.PredictedAttachment
				att.Confidence = float64(rng.intn(999)) / 1000
				if rng.intn(3) == 0 {
					att.Column = "Family"
				}
			}
			if _, err := store.Attach(att); err != nil {
				t.Fatal(err)
			}
			attached = append(attached, att.Tuple)
		}
		graph.AddAnnotation(id, attached)
	}

	profile := acg.NewProfile()
	for i, n := 0, rng.intn(20); i < n; i++ {
		profile.Record(rng.intn(6), rng.intn(5) != 0)
	}
	return State{DB: db, Store: store, Graph: graph, Profile: profile}
}

// FuzzSnapshotRoundTrip drives the snapshot codec from fuzzed primitives:
// the generated state must survive Capture → Save → Load → Restore →
// Capture unchanged, and Load must never panic on the arbitrary raw
// stream (including single-byte corruptions of a valid stream). Extend
// the corpus with `go test -fuzz=FuzzSnapshotRoundTrip ./internal/snapshot`.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(0, 0, 1, 0.1, uint64(0), []byte(nil))
	f.Add(5, 3, 2, 0.25, uint64(42), []byte("not a snapshot"))
	f.Add(40, 12, 10, 0.9, uint64(7), []byte{'N', 'E', 'B', 'S', 'N', 'A', 'P', 0, 1, 2, 3})
	f.Add(1, 30, 1, 0.0, uint64(123456789), []byte{0xff, 0xfe, 0x00})
	f.Add(17, 1, 100, 0.5, uint64(1<<60), []byte("NEBSNAP"))
	f.Fuzz(func(t *testing.T, rows, anns, batchSize int, mu float64, seed uint64, raw []byte) {
		// Arbitrary bytes must never panic either decoder, whatever they
		// hold. LoadLegacy decoding garbage successfully is fine (it accepts
		// any valid gob by design); only panics are bugs here.
		_, _ = Load(bytes.NewReader(raw))
		_, _ = LoadLegacy(bytes.NewReader(raw))

		// Clamp the fuzzed primitives to constructible states. mu outside
		// [0,1) and non-finite values are normalized, not rejected: the
		// stability tracker stores mu verbatim and NaN breaks DeepEqual.
		rows, anns, batchSize = rows&63, anns&31, batchSize&127+1
		if !(mu >= 0 && mu < 1) {
			mu = 0.5
		}
		st := fuzzState(t, rows, anns, batchSize, mu, seed)

		// Equality is checked on the canonical encoded form: gob drops empty
		// slices, so a decoded snapshot legitimately holds nil where the
		// captured one holds []T{} — the bytes are the identity that matters.
		encode := func(label string, s *Snapshot) []byte {
			var buf bytes.Buffer
			if err := Save(&buf, s); err != nil {
				t.Fatalf("Save(%s): %v", label, err)
			}
			return buf.Bytes()
		}
		snap, err := Capture(st)
		if err != nil {
			t.Fatalf("Capture: %v", err)
		}
		wire := encode("captured", snap)
		loaded, err := Load(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("Load: %v", err)
		}
		if !bytes.Equal(encode("loaded", loaded), wire) {
			t.Fatalf("decoded snapshot re-encodes differently\nsaved:  %+v\nloaded: %+v", snap, loaded)
		}

		restored, err := loaded.Restore()
		if err != nil {
			t.Fatalf("Restore: %v", err)
		}
		again, err := Capture(restored)
		if err != nil {
			t.Fatalf("re-Capture: %v", err)
		}
		if !bytes.Equal(encode("recaptured", again), wire) {
			t.Fatalf("round trip not a fixed point\nfirst:  %+v\nsecond: %+v", snap, again)
		}

		// A single flipped byte must surface as an error (ErrCorrupt for
		// payload damage, a decode error otherwise) — never a panic, and
		// never a silently different snapshot.
		if len(wire) > 0 {
			rng := fuzzRNG(seed ^ 0xdecafbad)
			damaged := bytes.Clone(wire)
			pos := rng.intn(len(damaged))
			damaged[pos] ^= byte(1 << rng.intn(8))
			if got, err := Load(bytes.NewReader(damaged)); err == nil && !bytes.Equal(encode("damaged", got), wire) {
				t.Fatalf("bit flip at %d silently altered the snapshot", pos)
			}
		}
	})
}
