// Package snapshot persists and restores Nebula's runtime state: the
// relational data, the annotation store with all attachment edges, the
// Annotations Connectivity Graph (including its stability counters), and
// the hop-distance profile. The format is a gob stream behind a
// checksummed header (magic, version, payload length, CRC32-Castagnoli);
// Load verifies integrity before decoding and rejects anything without the
// magic as ErrCorrupt. Pre-checksum bare-gob state files load only through
// the explicit LoadLegacy escape hatch. SaveFile adds durability: temp
// file + fsync + atomic rename.
//
// The NebulaMeta repository is deliberately NOT part of a snapshot:
// ConceptRefs, equivalent names, ontologies, and value patterns are
// configuration, owned by the application the way schema definitions are —
// re-register them at startup and they stay under version control instead
// of inside opaque state files.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/relational"
	"nebula/internal/vfs"
)

// FormatVersion identifies the on-disk layout; Load rejects mismatches.
const FormatVersion = 1

// magic opens every checksummed snapshot stream. Load rejects streams that
// do not start with it; LoadLegacy accepts them as pre-checksum bare-gob
// snapshots (no integrity verification — explicit opt-in only).
var magic = [8]byte{'N', 'E', 'B', 'S', 'N', 'A', 'P', 0}

// ErrCorrupt reports a snapshot stream whose header is intact but whose
// payload fails integrity verification — it was truncated mid-write or
// bit-flipped at rest. Match with errors.Is.
var ErrCorrupt = errors.New("snapshot: corrupt stream")

// Snapshot is the serializable engine state.
type Snapshot struct {
	Version int

	Tables      []tableDump
	Annotations []annotationDump
	Attachments []attachmentDump

	GraphAttachments []graphAnnDump
	GraphStability   stabilityDump

	ProfileBuckets     []int
	ProfileUnreachable int

	// WALSegment is the checkpoint boundary when the snapshot was written
	// by a WAL-attached engine: the first WAL segment NOT folded into
	// this state. Replay skips segments below it, so a crash between
	// writing the snapshot and pruning the covered segments can never
	// double-apply history. Zero (including in pre-WAL snapshots, where
	// gob leaves the absent field zero) means "replay everything".
	WALSegment uint64

	// StoreSeq is the disk-backed search-index generation the snapshot
	// pairs with: a checkpoint that flushed the index tail into segment
	// files stamps the same sequence into both the snapshot and the
	// segment manifest. On restore, a manifest carrying a different
	// sequence belongs to some other moment in history and is discarded
	// (the index is rebuilt). Zero means the snapshot was written without
	// a disk-backed store (including pre-store snapshots).
	StoreSeq uint64

	// HasBounds/BoundsLower/BoundsUpper carry the engine's active
	// verification thresholds. Bounds are durable configuration state —
	// changes are WAL-logged, and a checkpoint prunes the segments whose
	// records established them, so the snapshot must carry them forward
	// or post-checkpoint replay would route submissions with stale
	// thresholds. HasBounds false (older snapshots) means "keep the
	// constructor's bounds".
	HasBounds   bool
	BoundsLower float64
	BoundsUpper float64

	// Tasks is the pending expert-verification queue, ordered by VID, and
	// NextVID the identifier the next submission will receive. Pending
	// tasks are durable state for the same reason bounds are: a checkpoint
	// prunes the WAL submissions that created them, so a snapshot that
	// dropped the queue would silently lose every task still awaiting an
	// expert at checkpoint time. Older snapshots decode with an empty
	// queue and NextVID zero (the pre-queue behaviour).
	Tasks   []TaskDump
	NextVID int64

	// IngestJobs is the streaming-ingest queue in drain order, and
	// IngestNextSeq its admission counter. Queued jobs are durable for the
	// same checkpoint-prunes-the-WAL reason as Tasks. Older snapshots
	// decode with both empty (ingest predates them).
	IngestJobs    []IngestJobDump
	IngestNextSeq uint64

	// ManualFocal records, per annotation, the tuples a human attached
	// directly (AddAnnotation's attachTo) as opposed to accepted machine
	// predictions — the set a re-discovery retraction must never remove.
	// Empty in older snapshots; restore then falls back to treating every
	// current focal tuple as manual.
	ManualFocal []ManualFocalDump
}

// IngestJobDump is one queued ingest job in serializable form. EnqueuedAt
// is deliberately absent: freshness clocks restart at restore time.
type IngestJobDump struct {
	Annotation string
	Kind       uint8
	Priority   int
	Seq        uint64
}

// ManualFocalDump is one annotation's human-attached tuple list.
type ManualFocalDump struct {
	Annotation string
	Tuples     []TupleDump
}

// TupleDump names one tuple in serializable form.
type TupleDump struct {
	Table, Key string
}

// TaskDump is one pending expert-verification task in serializable form.
// Decision is implicit: only Pending tasks are queued, so only Pending
// tasks are dumped.
type TaskDump struct {
	VID        int64
	Annotation string
	Table, Key string
	Confidence float64
	Evidence   []string
}

type columnDump struct {
	Name     string
	Type     int
	Indexed  bool
	FullText bool
}

type foreignKeyDump struct {
	Column, RefTable, RefColumn string
}

type tableDump struct {
	Name        string
	Columns     []columnDump
	PrimaryKey  string
	ForeignKeys []foreignKeyDump
	Rows        [][]cellDump
}

type cellDump struct {
	Kind int
	Int  int64
	Flt  float64
	Str  string
}

type annotationDump struct {
	ID, Author, Body, Kind string
}

type attachmentDump struct {
	Annotation string
	Table, Key string
	Column     string
	Type       int
	Confidence float64
}

type graphAnnDump struct {
	Annotation string
	Tuples     []tupleDump
}

type tupleDump struct {
	Table, Key string
}

type stabilityDump struct {
	BatchSize                                      int
	Mu                                             float64
	BatchAnnotations, BatchAttachments, BatchEdges int
	BatchesClosed                                  int
	Stable                                         bool
}

// State bundles the live objects a snapshot captures or restores.
type State struct {
	DB      *relational.Database
	Store   *annotation.Store
	Graph   *acg.Graph
	Profile *acg.Profile

	// HasBounds marks BoundsLower/BoundsUpper as meaningful (the engine
	// always sets it; tools capturing bare stores may not).
	HasBounds   bool
	BoundsLower float64
	BoundsUpper float64

	// Tasks/NextVID mirror Snapshot.Tasks: the pending verification queue
	// and its VID counter. Tasks must already be ordered by VID (the
	// engine's PendingTasks guarantees it) so captures are deterministic.
	Tasks   []TaskDump
	NextVID int64

	// IngestJobs/IngestNextSeq mirror Snapshot.IngestJobs; jobs must be
	// supplied in drain order for deterministic captures. ManualFocal must
	// be sorted by annotation ID.
	IngestJobs    []IngestJobDump
	IngestNextSeq uint64
	ManualFocal   []ManualFocalDump
}

// Capture serializes the live state into a Snapshot value.
func Capture(st State) (*Snapshot, error) {
	if st.DB == nil || st.Store == nil {
		return nil, fmt.Errorf("snapshot: nil database or store")
	}
	s := &Snapshot{
		Version:       FormatVersion,
		HasBounds:     st.HasBounds,
		BoundsLower:   st.BoundsLower,
		BoundsUpper:   st.BoundsUpper,
		Tasks:         append([]TaskDump(nil), st.Tasks...),
		NextVID:       st.NextVID,
		IngestJobs:    append([]IngestJobDump(nil), st.IngestJobs...),
		IngestNextSeq: st.IngestNextSeq,
		ManualFocal:   append([]ManualFocalDump(nil), st.ManualFocal...),
	}

	for _, name := range st.DB.TableNames() {
		t := st.DB.MustTable(name)
		schema := t.Schema()
		td := tableDump{Name: schema.Name, PrimaryKey: schema.PrimaryKey}
		for _, c := range schema.Columns {
			td.Columns = append(td.Columns, columnDump{
				Name: c.Name, Type: int(c.Type), Indexed: c.Indexed, FullText: c.FullText,
			})
		}
		for _, fk := range schema.ForeignKeys {
			td.ForeignKeys = append(td.ForeignKeys, foreignKeyDump{
				Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
			})
		}
		for _, r := range t.Rows() {
			row := make([]cellDump, len(r.Values))
			for i, v := range r.Values {
				row[i] = cellDump{Kind: int(v.Kind()), Str: v.Str()}
				switch v.Kind() {
				case relational.TypeInt:
					row[i].Int = v.AsInt()
				case relational.TypeFloat:
					row[i].Flt = v.AsFloat()
				}
			}
			td.Rows = append(td.Rows, row)
		}
		s.Tables = append(s.Tables, td)
	}

	for _, id := range st.Store.IDs() {
		a, _ := st.Store.Get(id)
		s.Annotations = append(s.Annotations, annotationDump{
			ID: string(a.ID), Author: a.Author, Body: a.Body, Kind: a.Kind,
		})
		for _, att := range st.Store.Attachments(id, -1) {
			s.Attachments = append(s.Attachments, attachmentDump{
				Annotation: string(att.Annotation),
				Table:      att.Tuple.Table, Key: att.Tuple.Key,
				Column: att.Column, Type: int(att.Type), Confidence: att.Confidence,
			})
		}
	}

	if st.Graph != nil {
		byAnn := st.Graph.AttachmentList()
		ids := make([]string, 0, len(byAnn))
		for id := range byAnn {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			d := graphAnnDump{Annotation: id}
			for _, t := range byAnn[annotation.ID(id)] {
				d.Tuples = append(d.Tuples, tupleDump{Table: t.Table, Key: t.Key})
			}
			s.GraphAttachments = append(s.GraphAttachments, d)
		}
		bs, mu, ba, batt, be, bc, stable := st.Graph.StabilityState()
		s.GraphStability = stabilityDump{
			BatchSize: bs, Mu: mu,
			BatchAnnotations: ba, BatchAttachments: batt, BatchEdges: be,
			BatchesClosed: bc, Stable: stable,
		}
	}
	if st.Profile != nil {
		s.ProfileBuckets, s.ProfileUnreachable = st.Profile.Counts()
	}
	return s, nil
}

// Restore rebuilds live objects from the snapshot.
func (s *Snapshot) Restore() (State, error) {
	if s.Version != FormatVersion {
		return State{}, fmt.Errorf("snapshot: unsupported version %d (want %d)", s.Version, FormatVersion)
	}
	st := State{
		DB:      relational.NewDatabase(),
		Store:   annotation.NewStore(),
		Graph:   acg.New(s.GraphStability.BatchSize, s.GraphStability.Mu),
		Profile: acg.NewProfile(),
	}
	for _, td := range s.Tables {
		schema := &relational.Schema{Name: td.Name, PrimaryKey: td.PrimaryKey}
		for _, c := range td.Columns {
			schema.Columns = append(schema.Columns, relational.Column{
				Name: c.Name, Type: relational.Type(c.Type), Indexed: c.Indexed, FullText: c.FullText,
			})
		}
		for _, fk := range td.ForeignKeys {
			schema.ForeignKeys = append(schema.ForeignKeys, relational.ForeignKey{
				Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
			})
		}
		t, err := st.DB.CreateTable(schema)
		if err != nil {
			return State{}, fmt.Errorf("snapshot: %w", err)
		}
		for _, row := range td.Rows {
			values := make([]relational.Value, len(row))
			for i, c := range row {
				switch relational.Type(c.Kind) {
				case relational.TypeInt:
					values[i] = relational.Int(c.Int)
				case relational.TypeFloat:
					values[i] = relational.Float(c.Flt)
				default:
					values[i] = relational.String(c.Str)
				}
			}
			if _, err := t.Insert(values); err != nil {
				return State{}, fmt.Errorf("snapshot: %w", err)
			}
		}
	}
	if err := st.DB.ValidateForeignKeys(); err != nil {
		return State{}, fmt.Errorf("snapshot: %w", err)
	}

	for _, ad := range s.Annotations {
		if err := st.Store.Add(&annotation.Annotation{
			ID: annotation.ID(ad.ID), Author: ad.Author, Body: ad.Body, Kind: ad.Kind,
		}); err != nil {
			return State{}, fmt.Errorf("snapshot: %w", err)
		}
	}
	for _, att := range s.Attachments {
		if _, err := st.Store.Attach(annotation.Attachment{
			Annotation: annotation.ID(att.Annotation),
			Tuple:      relational.TupleID{Table: att.Table, Key: att.Key},
			Column:     att.Column,
			Type:       annotation.AttachmentType(att.Type),
			Confidence: att.Confidence,
		}); err != nil {
			return State{}, fmt.Errorf("snapshot: %w", err)
		}
	}

	for _, d := range s.GraphAttachments {
		tuples := make([]relational.TupleID, len(d.Tuples))
		for i, t := range d.Tuples {
			tuples[i] = relational.TupleID{Table: t.Table, Key: t.Key}
		}
		st.Graph.AddAnnotation(annotation.ID(d.Annotation), tuples)
	}
	g := s.GraphStability
	st.Graph.RestoreStabilityState(g.BatchSize, g.Mu, g.BatchAnnotations,
		g.BatchAttachments, g.BatchEdges, g.BatchesClosed, g.Stable)
	st.Profile.RestoreCounts(s.ProfileBuckets, s.ProfileUnreachable)
	st.Tasks = append([]TaskDump(nil), s.Tasks...)
	st.NextVID = s.NextVID
	st.IngestJobs = append([]IngestJobDump(nil), s.IngestJobs...)
	st.IngestNextSeq = s.IngestNextSeq
	st.ManualFocal = append([]ManualFocalDump(nil), s.ManualFocal...)
	return st, nil
}

// castagnoli is the CRC32 polynomial used for payload checksums (the same
// choice as iSCSI/ext4 — better error detection than IEEE and hardware-
// accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Save writes the snapshot in the checksummed format: an 8-byte magic, a
// little-endian uint32 format version, the payload length (uint64) and its
// CRC32-Castagnoli checksum (uint32), then the gob payload. Load verifies
// the checksum before decoding, so truncation and bit rot surface as
// ErrCorrupt instead of a garbage engine state.
func Save(w io.Writer, s *Snapshot) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	header := make([]byte, 0, len(magic)+16)
	header = append(header, magic[:]...)
	header = binary.LittleEndian.AppendUint32(header, FormatVersion)
	header = binary.LittleEndian.AppendUint64(header, uint64(payload.Len()))
	header = binary.LittleEndian.AppendUint32(header, crc32.Checksum(payload.Bytes(), castagnoli))
	if _, err := w.Write(header); err != nil {
		return fmt.Errorf("snapshot: write header: %w", err)
	}
	if _, err := w.Write(payload.Bytes()); err != nil {
		return fmt.Errorf("snapshot: write payload: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save, verifying the payload checksum.
// A stream that does not open with the magic is rejected as ErrCorrupt:
// treating it as a legacy bare-gob snapshot would decode a header-
// corrupted modern snapshot with no integrity verification at all (gob
// happily skips unknown leading bytes often enough to yield garbage
// state). Callers that really hold a pre-checksum state file must opt in
// explicitly via LoadLegacy.
func Load(r io.Reader) (*Snapshot, error) {
	head := make([]byte, len(magic))
	n, err := io.ReadFull(r, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	if n < len(magic) || !bytes.Equal(head, magic[:]) {
		return nil, fmt.Errorf("%w: bad magic (legacy bare-gob streams need LoadLegacy)", ErrCorrupt)
	}
	var fixed [16]byte
	if _, err := io.ReadFull(r, fixed[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header (%v)", ErrCorrupt, err)
	}
	version := binary.LittleEndian.Uint32(fixed[0:4])
	length := binary.LittleEndian.Uint64(fixed[4:12])
	sum := binary.LittleEndian.Uint32(fixed[12:16])
	if version != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", version, FormatVersion)
	}
	// The length field itself may be corrupt, so never trust it for an
	// upfront allocation (a flipped high bit would ask for terabytes):
	// copy incrementally and let the actual stream size bound memory.
	if int64(length) < 0 {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, length)
	}
	var payload bytes.Buffer
	if n, err := io.CopyN(&payload, r, int64(length)); err != nil {
		return nil, fmt.Errorf("%w: truncated payload at %d/%d bytes (%v)", ErrCorrupt, n, length, err)
	}
	if got := crc32.Checksum(payload.Bytes(), castagnoli); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (stored %08x, computed %08x)", ErrCorrupt, sum, got)
	}
	return loadGob(&payload)
}

// LoadLegacy is the explicit escape hatch for state files written before
// the checksummed format existed: a stream without the magic is decoded
// as bare gob, with NO integrity verification. Streams that do carry the
// magic still go through the fully verified Load path, so pointing a
// migration job at a mixed directory is safe. Everything else should use
// Load — a modern snapshot whose header got corrupted must surface as
// ErrCorrupt, not silently decode as gob garbage.
func LoadLegacy(r io.Reader) (*Snapshot, error) {
	head := make([]byte, len(magic))
	n, err := io.ReadFull(r, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("snapshot: read header: %w", err)
	}
	rest := io.MultiReader(bytes.NewReader(head[:n]), r)
	if n == len(magic) && bytes.Equal(head, magic[:]) {
		return Load(rest)
	}
	return loadGob(rest)
}

func loadGob(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", s.Version, FormatVersion)
	}
	return &s, nil
}

// dirSyncFailures counts directory-fsync failures observed by SaveFileFS.
// On filesystems that reject fsync on directories, the atomic rename's
// durability is not guaranteed across power loss; operators should see
// that, not have it silently ignored — the counter is surfaced as
// nebula_snapshot_dirsync_failures_total and each failure is logged once
// through Logf.
var dirSyncFailures atomic.Int64

// DirSyncFailures reports how many directory-sync attempts have failed
// process-wide.
func DirSyncFailures() int64 { return dirSyncFailures.Load() }

// Logf receives one line per noteworthy non-fatal event (currently:
// directory-sync failures). Replaceable for tests and embedders; defaults
// to the standard logger.
var Logf = log.Printf

// SaveFile writes the snapshot to path durably and atomically: the stream
// goes to a temp file in the same directory, is fsynced, and only then
// renamed over path. A crash mid-write leaves the previous snapshot (or
// nothing) at path — never a half-written state file. The containing
// directory is fsynced after the rename so the new name itself survives a
// crash.
func SaveFile(path string, s *Snapshot) error {
	return SaveFileFS(vfs.OS{}, path, s)
}

// tmpSeq disambiguates concurrent temp files within one process; the pid
// in the name handles separate processes.
var tmpSeq atomic.Uint64

// SaveFileFS is SaveFile over an explicit filesystem seam — the hook the
// crash-fault tests use to inject short writes, fsync errors, and rename
// failures into the checkpoint path.
func SaveFileFS(fsys vfs.FS, path string, s *Snapshot) (err error) {
	dir := filepath.Dir(path)
	// The temp name must be unique per call: concurrent saves targeting
	// the same path (SaveSnapshotFile deliberately releases the engine
	// lock before disk I/O) would otherwise interleave writes into one
	// inode and could rename a corrupt stream over the last good snapshot.
	tmpPath := filepath.Join(dir, fmt.Sprintf(".%s.%d.%d.tmp",
		filepath.Base(path), os.Getpid(), tmpSeq.Add(1)))
	tmp, err := fsys.Create(tmpPath)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			fsys.Remove(tmpPath)
		}
	}()
	if err = Save(tmp, s); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("snapshot: fsync: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: close: %w", err)
	}
	if err = fsys.Rename(tmpPath, path); err != nil {
		return fmt.Errorf("snapshot: rename: %w", err)
	}
	if derr := fsys.SyncDir(dir); derr != nil {
		// The rename itself succeeded, so the new snapshot is the one a
		// reader sees — but on a crash before the filesystem flushes its
		// metadata the old name could resurface. Not fatal (the previous
		// snapshot is also valid state), but operators must know their
		// filesystem gives this weaker guarantee.
		dirSyncFailures.Add(1)
		Logf("snapshot: directory sync failed for %s (rename durability not guaranteed on this filesystem): %v", dir, derr)
	}
	return nil
}

// LoadFile reads a snapshot file written by SaveFile, with full integrity
// verification; see Load for the legacy-stream policy.
func LoadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// LoadFileLegacy reads a snapshot file via LoadLegacy: checksummed files
// are verified, pre-checksum bare-gob files are accepted unverified. Meant
// for one-time migration of old state directories.
func LoadFileLegacy(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	return LoadLegacy(f)
}
