// Package snapshot persists and restores Nebula's runtime state: the
// relational data, the annotation store with all attachment edges, the
// Annotations Connectivity Graph (including its stability counters), and
// the hop-distance profile. The format is a gob stream with a version
// header.
//
// The NebulaMeta repository is deliberately NOT part of a snapshot:
// ConceptRefs, equivalent names, ontologies, and value patterns are
// configuration, owned by the application the way schema definitions are —
// re-register them at startup and they stay under version control instead
// of inside opaque state files.
package snapshot

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"nebula/internal/acg"
	"nebula/internal/annotation"
	"nebula/internal/relational"
)

// FormatVersion identifies the on-disk layout; Load rejects mismatches.
const FormatVersion = 1

// Snapshot is the serializable engine state.
type Snapshot struct {
	Version int

	Tables      []tableDump
	Annotations []annotationDump
	Attachments []attachmentDump

	GraphAttachments []graphAnnDump
	GraphStability   stabilityDump

	ProfileBuckets     []int
	ProfileUnreachable int
}

type columnDump struct {
	Name     string
	Type     int
	Indexed  bool
	FullText bool
}

type foreignKeyDump struct {
	Column, RefTable, RefColumn string
}

type tableDump struct {
	Name        string
	Columns     []columnDump
	PrimaryKey  string
	ForeignKeys []foreignKeyDump
	Rows        [][]cellDump
}

type cellDump struct {
	Kind int
	Int  int64
	Flt  float64
	Str  string
}

type annotationDump struct {
	ID, Author, Body, Kind string
}

type attachmentDump struct {
	Annotation string
	Table, Key string
	Column     string
	Type       int
	Confidence float64
}

type graphAnnDump struct {
	Annotation string
	Tuples     []tupleDump
}

type tupleDump struct {
	Table, Key string
}

type stabilityDump struct {
	BatchSize                                      int
	Mu                                             float64
	BatchAnnotations, BatchAttachments, BatchEdges int
	BatchesClosed                                  int
	Stable                                         bool
}

// State bundles the live objects a snapshot captures or restores.
type State struct {
	DB      *relational.Database
	Store   *annotation.Store
	Graph   *acg.Graph
	Profile *acg.Profile
}

// Capture serializes the live state into a Snapshot value.
func Capture(st State) (*Snapshot, error) {
	if st.DB == nil || st.Store == nil {
		return nil, fmt.Errorf("snapshot: nil database or store")
	}
	s := &Snapshot{Version: FormatVersion}

	for _, name := range st.DB.TableNames() {
		t := st.DB.MustTable(name)
		schema := t.Schema()
		td := tableDump{Name: schema.Name, PrimaryKey: schema.PrimaryKey}
		for _, c := range schema.Columns {
			td.Columns = append(td.Columns, columnDump{
				Name: c.Name, Type: int(c.Type), Indexed: c.Indexed, FullText: c.FullText,
			})
		}
		for _, fk := range schema.ForeignKeys {
			td.ForeignKeys = append(td.ForeignKeys, foreignKeyDump{
				Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
			})
		}
		for _, r := range t.Rows() {
			row := make([]cellDump, len(r.Values))
			for i, v := range r.Values {
				row[i] = cellDump{Kind: int(v.Kind()), Str: v.Str()}
				switch v.Kind() {
				case relational.TypeInt:
					row[i].Int = v.AsInt()
				case relational.TypeFloat:
					row[i].Flt = v.AsFloat()
				}
			}
			td.Rows = append(td.Rows, row)
		}
		s.Tables = append(s.Tables, td)
	}

	for _, id := range st.Store.IDs() {
		a, _ := st.Store.Get(id)
		s.Annotations = append(s.Annotations, annotationDump{
			ID: string(a.ID), Author: a.Author, Body: a.Body, Kind: a.Kind,
		})
		for _, att := range st.Store.Attachments(id, -1) {
			s.Attachments = append(s.Attachments, attachmentDump{
				Annotation: string(att.Annotation),
				Table:      att.Tuple.Table, Key: att.Tuple.Key,
				Column: att.Column, Type: int(att.Type), Confidence: att.Confidence,
			})
		}
	}

	if st.Graph != nil {
		byAnn := st.Graph.AttachmentList()
		ids := make([]string, 0, len(byAnn))
		for id := range byAnn {
			ids = append(ids, string(id))
		}
		sort.Strings(ids)
		for _, id := range ids {
			d := graphAnnDump{Annotation: id}
			for _, t := range byAnn[annotation.ID(id)] {
				d.Tuples = append(d.Tuples, tupleDump{Table: t.Table, Key: t.Key})
			}
			s.GraphAttachments = append(s.GraphAttachments, d)
		}
		bs, mu, ba, batt, be, bc, stable := st.Graph.StabilityState()
		s.GraphStability = stabilityDump{
			BatchSize: bs, Mu: mu,
			BatchAnnotations: ba, BatchAttachments: batt, BatchEdges: be,
			BatchesClosed: bc, Stable: stable,
		}
	}
	if st.Profile != nil {
		s.ProfileBuckets, s.ProfileUnreachable = st.Profile.Counts()
	}
	return s, nil
}

// Restore rebuilds live objects from the snapshot.
func (s *Snapshot) Restore() (State, error) {
	if s.Version != FormatVersion {
		return State{}, fmt.Errorf("snapshot: unsupported version %d (want %d)", s.Version, FormatVersion)
	}
	st := State{
		DB:      relational.NewDatabase(),
		Store:   annotation.NewStore(),
		Graph:   acg.New(s.GraphStability.BatchSize, s.GraphStability.Mu),
		Profile: acg.NewProfile(),
	}
	for _, td := range s.Tables {
		schema := &relational.Schema{Name: td.Name, PrimaryKey: td.PrimaryKey}
		for _, c := range td.Columns {
			schema.Columns = append(schema.Columns, relational.Column{
				Name: c.Name, Type: relational.Type(c.Type), Indexed: c.Indexed, FullText: c.FullText,
			})
		}
		for _, fk := range td.ForeignKeys {
			schema.ForeignKeys = append(schema.ForeignKeys, relational.ForeignKey{
				Column: fk.Column, RefTable: fk.RefTable, RefColumn: fk.RefColumn,
			})
		}
		t, err := st.DB.CreateTable(schema)
		if err != nil {
			return State{}, fmt.Errorf("snapshot: %w", err)
		}
		for _, row := range td.Rows {
			values := make([]relational.Value, len(row))
			for i, c := range row {
				switch relational.Type(c.Kind) {
				case relational.TypeInt:
					values[i] = relational.Int(c.Int)
				case relational.TypeFloat:
					values[i] = relational.Float(c.Flt)
				default:
					values[i] = relational.String(c.Str)
				}
			}
			if _, err := t.Insert(values); err != nil {
				return State{}, fmt.Errorf("snapshot: %w", err)
			}
		}
	}
	if err := st.DB.ValidateForeignKeys(); err != nil {
		return State{}, fmt.Errorf("snapshot: %w", err)
	}

	for _, ad := range s.Annotations {
		if err := st.Store.Add(&annotation.Annotation{
			ID: annotation.ID(ad.ID), Author: ad.Author, Body: ad.Body, Kind: ad.Kind,
		}); err != nil {
			return State{}, fmt.Errorf("snapshot: %w", err)
		}
	}
	for _, att := range s.Attachments {
		if _, err := st.Store.Attach(annotation.Attachment{
			Annotation: annotation.ID(att.Annotation),
			Tuple:      relational.TupleID{Table: att.Table, Key: att.Key},
			Column:     att.Column,
			Type:       annotation.AttachmentType(att.Type),
			Confidence: att.Confidence,
		}); err != nil {
			return State{}, fmt.Errorf("snapshot: %w", err)
		}
	}

	for _, d := range s.GraphAttachments {
		tuples := make([]relational.TupleID, len(d.Tuples))
		for i, t := range d.Tuples {
			tuples[i] = relational.TupleID{Table: t.Table, Key: t.Key}
		}
		st.Graph.AddAnnotation(annotation.ID(d.Annotation), tuples)
	}
	g := s.GraphStability
	st.Graph.RestoreStabilityState(g.BatchSize, g.Mu, g.BatchAnnotations,
		g.BatchAttachments, g.BatchEdges, g.BatchesClosed, g.Stable)
	st.Profile.RestoreCounts(s.ProfileBuckets, s.ProfileUnreachable)
	return st, nil
}

// Save writes the snapshot as a gob stream.
func Save(w io.Writer, s *Snapshot) error {
	if err := gob.NewEncoder(w).Encode(s); err != nil {
		return fmt.Errorf("snapshot: encode: %w", err)
	}
	return nil
}

// Load reads a snapshot written by Save.
func Load(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	if s.Version != FormatVersion {
		return nil, fmt.Errorf("snapshot: unsupported version %d (want %d)", s.Version, FormatVersion)
	}
	return &s, nil
}
