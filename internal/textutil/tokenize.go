// Package textutil provides the low-level text analysis primitives used by
// Nebula's annotation processing pipeline: tokenization of free-text
// annotations, stop-word filtering, string similarity measures, and token
// shape classification.
//
// Annotations in Nebula are arbitrary free text (comments, abstracts, whole
// articles). Before signature maps can be built (see internal/sigmap), the
// text must be broken into word tokens that retain their position so that
// influence ranges ("α words to the left and to the right", §5.2.2 of the
// paper) are meaningful.
package textutil

import (
	"strings"
	"unicode"
)

// Token is a single word extracted from an annotation, with enough position
// information to reconstruct context windows over the original text.
type Token struct {
	// Text is the token exactly as it appeared (original case preserved;
	// matching code decides case sensitivity per use).
	Text string
	// Lower is Text lower-cased once, since nearly every consumer needs it.
	Lower string
	// Index is the ordinal position of the token in the token stream.
	Index int
	// Offset is the byte offset of the token's first byte in the input.
	Offset int
}

// Tokenize splits an annotation's text into word tokens. A token is a maximal
// run of letters, digits, and the connector characters '_', '-', '.' appearing
// between alphanumerics (so identifiers such as "JW0014", "G-Actin", and
// "P12345.2" survive as single tokens). Pure punctuation is discarded.
func Tokenize(text string) []Token {
	var tokens []Token
	runes := []rune(text)
	n := len(runes)
	byteOff := 0
	i := 0
	for i < n {
		r := runes[i]
		if !isWordRune(r) {
			byteOff += len(string(r))
			i++
			continue
		}
		start := i
		startOff := byteOff
		for i < n {
			r = runes[i]
			if isWordRune(r) {
				byteOff += len(string(r))
				i++
				continue
			}
			// Connectors stay inside a token only when the next rune
			// continues the word: "G-Actin" is one token, "end-" is not.
			if isConnector(r) && i+1 < n && isWordRune(runes[i+1]) {
				byteOff += len(string(r))
				i++
				continue
			}
			break
		}
		word := string(runes[start:i])
		tokens = append(tokens, Token{
			Text:   word,
			Lower:  strings.ToLower(word),
			Index:  len(tokens),
			Offset: startOff,
		})
	}
	return tokens
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isConnector(r rune) bool {
	return r == '-' || r == '_' || r == '.'
}

// Words returns just the lower-cased token texts, convenient for tests and
// for consumers that do not need positions.
func Words(text string) []string {
	toks := Tokenize(text)
	out := make([]string, len(toks))
	for i, t := range toks {
		out[i] = t.Lower
	}
	return out
}

// stopwords is a compact English stop-word list. Annotations are scientific
// prose; filtering these words keeps signature maps small without risking the
// loss of identifiers (identifiers never collide with stop words).
var stopwords = map[string]struct{}{
	"a": {}, "an": {}, "and": {}, "are": {}, "as": {}, "at": {}, "be": {},
	"but": {}, "by": {}, "for": {}, "from": {}, "has": {}, "have": {},
	"he": {}, "her": {}, "his": {}, "if": {}, "in": {}, "into": {}, "is": {},
	"it": {}, "its": {}, "may": {}, "not": {}, "of": {}, "on": {}, "or": {},
	"our": {}, "she": {}, "so": {}, "some": {}, "such": {}, "than": {},
	"that": {}, "the": {}, "their": {}, "them": {}, "then": {}, "there": {},
	"these": {}, "they": {}, "this": {}, "those": {}, "to": {}, "very": {},
	"was": {}, "we": {}, "were": {}, "which": {}, "while": {}, "who": {},
	"will": {}, "with": {}, "would": {}, "you": {}, "your": {}, "also": {},
	"been": {}, "between": {}, "both": {}, "can": {}, "do": {}, "does": {},
	"each": {}, "how": {}, "i": {}, "more": {}, "most": {}, "no": {},
	"other": {}, "out": {}, "over": {}, "same": {}, "seems": {}, "only": {},
	"under": {}, "up": {}, "what": {}, "when": {}, "where": {},
}

// IsStopword reports whether the (already lower-cased) word is an English
// stop word.
func IsStopword(lower string) bool {
	_, ok := stopwords[lower]
	return ok
}
