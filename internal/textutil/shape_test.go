package textutil

import "testing"

// The shape classifier iterates with `for _, r := range`, which decodes
// whole runes — these tests lock in that multibyte letters are counted as
// letters, not as per-byte ShapeOther noise.
func TestClassifyShapeMultibyte(t *testing.T) {
	cases := map[string]Shape{
		"café":   ShapeWord,       // accented letter is still a letter
		"Café":   ShapeWord,       // leading capital is not interior
		"東京":     ShapeWord,       // CJK runes are letters to unicode.IsLetter
		"naïveB": ShapeIdentifier, // interior capital after a 2-byte rune
		"γ2":     ShapeIdentifier, // greek letter + digit
	}
	for in, want := range cases {
		if got := ClassifyShape(in); got != want {
			t.Errorf("ClassifyShape(%q) = %v, want %v", in, got, want)
		}
	}
}

// hasInteriorUpper ranges by byte offset; this is rune-correct because the
// first rune always starts at offset 0. The multibyte cases pin that down:
// an uppercase rune preceded by a multibyte rune sits at byte offset > 1
// and must still be seen as interior, while a leading uppercase must not.
func TestHasInteriorUpperMultibyte(t *testing.T) {
	cases := map[string]bool{
		"żA":    true,  // 2-byte ż then interior capital at byte offset 2
		"éB":    true,  // same with é
		"Ab":    false, // capital at offset 0 is leading, not interior
		"Éb":    false, // 2-byte leading capital, still offset 0
		"ab":    false,
		"yaaB":  true,
		"東京A":   true, // capital after two 3-byte runes
		"ÉCOLI": true, // second capital is interior even when first is too
	}
	for in, want := range cases {
		if got := hasInteriorUpper(in); got != want {
			t.Errorf("hasInteriorUpper(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLooksLikeIdentifierMultibyte(t *testing.T) {
	if LooksLikeIdentifier("café") {
		t.Error("plain accented word misread as identifier")
	}
	if !LooksLikeIdentifier("γ2") {
		t.Error("greek letter-digit mix not recognized as identifier")
	}
}
