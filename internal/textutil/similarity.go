package textutil

import "strings"

// Levenshtein returns the edit distance (insertions, deletions,
// substitutions) between a and b. It runs in O(len(a)*len(b)) time and
// O(min) space.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	if len(ra) < len(rb) {
		ra, rb = rb, ra
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity maps edit distance into [0,1]: 1 means identical,
// 0 means nothing in common relative to the longer string.
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	d := Levenshtein(a, b)
	return 1 - float64(d)/float64(maxLen)
}

// JaroWinkler returns the Jaro–Winkler similarity in [0,1]. It is the
// measure Nebula uses for matching annotation keywords against column
// samples, where prefixes are highly informative (identifier families share
// prefixes: "JW0013" vs "JW0014").
func JaroWinkler(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	j := jaro(ra, rb)
	if j == 0 {
		return 0
	}
	// Common-prefix bonus, capped at 4 characters, scaling factor 0.1.
	// The prefix is counted in runes, matching jaro: comparing bytes here
	// would truncate the bonus mid-rune on multibyte text ("héllo" vs
	// "héllp" shares a 3-rune prefix, not 0xC3-then-mismatch).
	prefix := 0
	for i := 0; i < len(ra) && i < len(rb) && i < 4; i++ {
		if ra[i] != rb[i] {
			break
		}
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

func jaro(ra, rb []rune) float64 {
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	k := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[k] {
			k++
		}
		if ra[i] != rb[k] {
			transpositions++
		}
		k++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// TrigramJaccard returns the Jaccard similarity of the character trigram
// sets of a and b, in [0,1]. Strings shorter than 3 runes fall back to exact
// comparison. The trigram path is rune-correct: trigrams converts to []rune
// before windowing, so a 3-rune CJK string produces one trigram rather than
// the seven byte-windows its UTF-8 encoding would.
func TrigramJaccard(a, b string) float64 {
	ta := trigrams(strings.ToLower(a))
	tb := trigrams(strings.ToLower(b))
	if len(ta) == 0 || len(tb) == 0 {
		if strings.EqualFold(a, b) {
			return 1
		}
		return 0
	}
	inter := 0
	for g := range ta {
		if _, ok := tb[g]; ok {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]struct{} {
	r := []rune(s)
	if len(r) < 3 {
		return nil
	}
	out := make(map[string]struct{}, len(r)-2)
	for i := 0; i+3 <= len(r); i++ {
		out[string(r[i:i+3])] = struct{}{}
	}
	return out
}
