package textutil

import "unicode"

// Shape is a coarse classification of a token's character composition. The
// Value-Map generator (§5.2.1) uses shapes as a cheap pre-filter before the
// expensive ontology / pattern / sample checks: a purely alphabetic lowercase
// token cannot belong to a numeric column, an all-digit token cannot be a
// table name, etc.
type Shape int

const (
	// ShapeWord is a plain alphabetic word ("gene", "correlated").
	ShapeWord Shape = iota
	// ShapeNumber is an integer or decimal literal ("1130", "3.5").
	ShapeNumber
	// ShapeIdentifier mixes letters and digits or unusual casing
	// ("JW0014", "yaaB", "G-Actin") — the shape of database identifiers.
	ShapeIdentifier
	// ShapeOther covers everything else (rare after tokenization).
	ShapeOther
)

func (s Shape) String() string {
	switch s {
	case ShapeWord:
		return "word"
	case ShapeNumber:
		return "number"
	case ShapeIdentifier:
		return "identifier"
	default:
		return "other"
	}
}

// ClassifyShape determines the Shape of a token.
func ClassifyShape(token string) Shape {
	if token == "" {
		return ShapeOther
	}
	letters, digits, upper, other := 0, 0, 0, 0
	dots := 0
	for _, r := range token {
		switch {
		case unicode.IsLetter(r):
			letters++
			if unicode.IsUpper(r) {
				upper++
			}
		case unicode.IsDigit(r):
			digits++
		case r == '.':
			dots++
		default:
			other++
		}
	}
	switch {
	case digits > 0 && letters == 0 && other == 0 && dots <= 1:
		return ShapeNumber
	case letters > 0 && digits == 0 && other == 0 && dots == 0:
		// Mixed-case interior capitals mark identifiers: "yaaB", "GrpC".
		if hasInteriorUpper(token) {
			return ShapeIdentifier
		}
		return ShapeWord
	case letters > 0 && (digits > 0 || other > 0):
		return ShapeIdentifier
	default:
		return ShapeOther
	}
}

func hasInteriorUpper(token string) bool {
	// i is a byte offset, but the test is still rune-correct: range yields
	// whole runes, the first rune always starts at offset 0, and any rune
	// starting at offset > 0 is interior regardless of how many bytes its
	// predecessors occupied. "żA" (2-byte ż) correctly reports true.
	for i, r := range token {
		if i > 0 && unicode.IsUpper(r) {
			return true
		}
	}
	return false
}

// LooksLikeIdentifier reports whether the token plausibly names a database
// object rather than being ordinary prose: identifiers, numbers, and words
// with interior capitals qualify.
func LooksLikeIdentifier(token string) bool {
	switch ClassifyShape(token) {
	case ShapeIdentifier, ShapeNumber:
		return true
	default:
		return false
	}
}
