package textutil

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Words("From the exp, it seems this gene is correlated to JW0014 of grpC")
	want := []string{"from", "the", "exp", "it", "seems", "this", "gene",
		"is", "correlated", "to", "jw0014", "of", "grpc"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words() = %v, want %v", got, want)
	}
}

func TestTokenizeKeepsConnectedIdentifiers(t *testing.T) {
	cases := map[string][]string{
		"protein G-Actin binds":  {"protein", "g-actin", "binds"},
		"accession P12345.2 ok":  {"accession", "p12345.2", "ok"},
		"snake_case_name":        {"snake_case_name"},
		"trailing dash- here":    {"trailing", "dash", "here"},
		"dots... and ellipsis":   {"dots", "and", "ellipsis"},
		"comma,separated,words":  {"comma", "separated", "words"},
		"(parenthesized JW0001)": {"parenthesized", "jw0001"},
	}
	for in, want := range cases {
		if got := Words(in); !reflect.DeepEqual(got, want) {
			t.Errorf("Words(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Tokenize("  ,.;  "); len(got) != 0 {
		t.Fatalf("Tokenize(punct) = %v, want empty", got)
	}
}

func TestTokenizeIndicesAndOffsets(t *testing.T) {
	toks := Tokenize("gene JW0014 ok")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens, want 3", len(toks))
	}
	for i, tok := range toks {
		if tok.Index != i {
			t.Errorf("token %d has Index %d", i, tok.Index)
		}
	}
	if toks[1].Offset != 5 {
		t.Errorf("JW0014 offset = %d, want 5", toks[1].Offset)
	}
	if toks[1].Text != "JW0014" || toks[1].Lower != "jw0014" {
		t.Errorf("token = %+v", toks[1])
	}
}

func TestTokenizeUnicode(t *testing.T) {
	toks := Tokenize("gène número JW0014")
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %v", len(toks), toks)
	}
	if toks[2].Text != "JW0014" {
		t.Errorf("last token = %q", toks[2].Text)
	}
}

// Property: offsets always point at the token's text within the input.
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Offset < 0 || tok.Offset+len(tok.Text) > len(s) {
				return false
			}
			if s[tok.Offset:tok.Offset+len(tok.Text)] != tok.Text {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: tokens contain no whitespace and are non-empty.
func TestTokenizeNoWhitespaceProperty(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok.Text == "" || strings.ContainsAny(tok.Text, " \t\n") {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "is", "of"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false", w)
		}
	}
	for _, w := range []string{"gene", "jw0014", "protein", ""} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}
