package textutil

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"gene", "gene", 0},
		{"JW0013", "JW0014", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangleProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		s := LevenshteinSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if s := LevenshteinSimilarity("", ""); s != 1 {
		t.Errorf("identical empties = %f, want 1", s)
	}
	if s := LevenshteinSimilarity("gene", "gene"); s != 1 {
		t.Errorf("identical = %f, want 1", s)
	}
}

func TestJaroWinkler(t *testing.T) {
	if s := JaroWinkler("JW0013", "JW0014"); s < 0.9 {
		t.Errorf("JaroWinkler(JW0013,JW0014) = %f, want >= 0.9 (shared prefix)", s)
	}
	if s := JaroWinkler("gene", "zzzz"); s != 0 {
		t.Errorf("disjoint strings = %f, want 0", s)
	}
	if s := JaroWinkler("same", "same"); s != 1 {
		t.Errorf("identical = %f, want 1", s)
	}
	// Prefix bonus: equal Jaro, higher Winkler for shared prefix.
	a := JaroWinkler("prefixed", "prefixxx")
	b := JaroWinkler("xxefired", "xxefihhh")
	if a <= b {
		t.Errorf("prefix bonus not applied: %f <= %f", a, b)
	}
}

func TestJaroWinklerRangeAndSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1.0000001 && s == JaroWinkler(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrigramJaccard(t *testing.T) {
	if s := TrigramJaccard("gene", "gene"); s != 1 {
		t.Errorf("identical = %f", s)
	}
	if s := TrigramJaccard("abcdef", "uvwxyz"); s != 0 {
		t.Errorf("disjoint = %f", s)
	}
	if s := TrigramJaccard("ab", "AB"); s != 1 {
		t.Errorf("short equal-fold = %f, want 1", s)
	}
	if s := TrigramJaccard("ab", "cd"); s != 0 {
		t.Errorf("short different = %f, want 0", s)
	}
	mid := TrigramJaccard("proteins", "protein")
	if mid <= 0.5 || mid >= 1 {
		t.Errorf("near match = %f, want in (0.5,1)", mid)
	}
}

func TestClassifyShape(t *testing.T) {
	cases := map[string]Shape{
		"gene":     ShapeWord,
		"Gene":     ShapeWord,
		"yaaB":     ShapeIdentifier,
		"JW0014":   ShapeIdentifier,
		"G-Actin":  ShapeIdentifier,
		"1130":     ShapeNumber,
		"3.5":      ShapeNumber,
		"P12345.2": ShapeIdentifier,
		"":         ShapeOther,
	}
	for in, want := range cases {
		if got := ClassifyShape(in); got != want {
			t.Errorf("ClassifyShape(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLooksLikeIdentifier(t *testing.T) {
	for _, s := range []string{"JW0014", "yaaB", "1130", "G-Actin"} {
		if !LooksLikeIdentifier(s) {
			t.Errorf("LooksLikeIdentifier(%q) = false", s)
		}
	}
	for _, s := range []string{"gene", "correlated", "the"} {
		if LooksLikeIdentifier(s) {
			t.Errorf("LooksLikeIdentifier(%q) = true", s)
		}
	}
}

func TestShapeString(t *testing.T) {
	names := map[Shape]string{
		ShapeWord: "word", ShapeNumber: "number",
		ShapeIdentifier: "identifier", ShapeOther: "other",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
