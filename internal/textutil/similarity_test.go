package textutil

import (
	"testing"
	"testing/quick"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"gene", "gene", 0},
		{"JW0013", "JW0014", 1},
		{"flaw", "lawn", 2},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetryProperty(t *testing.T) {
	f := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinTriangleProperty(t *testing.T) {
	f := func(a, b, c string) bool {
		return Levenshtein(a, c) <= Levenshtein(a, b)+Levenshtein(b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLevenshteinSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		s := LevenshteinSimilarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	if s := LevenshteinSimilarity("", ""); s != 1 {
		t.Errorf("identical empties = %f, want 1", s)
	}
	if s := LevenshteinSimilarity("gene", "gene"); s != 1 {
		t.Errorf("identical = %f, want 1", s)
	}
}

func TestJaroWinkler(t *testing.T) {
	if s := JaroWinkler("JW0013", "JW0014"); s < 0.9 {
		t.Errorf("JaroWinkler(JW0013,JW0014) = %f, want >= 0.9 (shared prefix)", s)
	}
	if s := JaroWinkler("gene", "zzzz"); s != 0 {
		t.Errorf("disjoint strings = %f, want 0", s)
	}
	if s := JaroWinkler("same", "same"); s != 1 {
		t.Errorf("identical = %f, want 1", s)
	}
	// Prefix bonus: equal Jaro, higher Winkler for shared prefix.
	a := JaroWinkler("prefixed", "prefixxx")
	b := JaroWinkler("xxefired", "xxefihhh")
	if a <= b {
		t.Errorf("prefix bonus not applied: %f <= %f", a, b)
	}
}

func TestJaroWinklerMultibyte(t *testing.T) {
	const eps = 1e-9
	cases := []struct {
		a, b string
		want float64
	}{
		// 4 rune matches of 5, no transpositions, 4-rune prefix:
		// jaro = 13/15, jw = 13/15 + 4*0.1*(2/15).
		{"héllo", "héllp", 13.0/15 + 0.4*(2.0/15)},
		// Regression for the byte-indexed prefix loop: "éé" is 4 bytes, so
		// the old code counted a 4-byte prefix and paid a 0.4 bonus; the
		// correct rune prefix is 2. jaro = 2/3, jw = 2/3 + 2*0.1*(1/3).
		{"ééab", "éécd", 2.0/3 + 0.2*(1.0/3)},
		// CJK: 2 rune matches of 3, 2-rune prefix:
		// jaro = 7/9, jw = 7/9 + 2*0.1*(2/9).
		{"東京都", "東京市", 7.0/9 + 0.2*(2.0/9)},
		{"café", "café", 1},
	}
	for _, c := range cases {
		got := JaroWinkler(c.a, c.b)
		if diff := got - c.want; diff > eps || diff < -eps {
			t.Errorf("JaroWinkler(%q,%q) = %.9f, want %.9f", c.a, c.b, got, c.want)
		}
		if sym := JaroWinkler(c.b, c.a); sym != got {
			t.Errorf("JaroWinkler(%q,%q) = %.9f but reversed = %.9f", c.a, c.b, got, sym)
		}
	}
	// The multibyte score must equal the score of a rune-for-rune ASCII
	// transliteration — the measure sees characters, not encodings.
	if multi, ascii := JaroWinkler("héllo", "héllp"), JaroWinkler("hxllo", "hxllp"); multi != ascii {
		t.Errorf("multibyte %f != ascii transliteration %f", multi, ascii)
	}
}

func TestJaroWinklerRangeAndSymmetry(t *testing.T) {
	f := func(a, b string) bool {
		s := JaroWinkler(a, b)
		return s >= 0 && s <= 1.0000001 && s == JaroWinkler(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTrigramJaccard(t *testing.T) {
	if s := TrigramJaccard("gene", "gene"); s != 1 {
		t.Errorf("identical = %f", s)
	}
	if s := TrigramJaccard("abcdef", "uvwxyz"); s != 0 {
		t.Errorf("disjoint = %f", s)
	}
	if s := TrigramJaccard("ab", "AB"); s != 1 {
		t.Errorf("short equal-fold = %f, want 1", s)
	}
	if s := TrigramJaccard("ab", "cd"); s != 0 {
		t.Errorf("short different = %f, want 0", s)
	}
	mid := TrigramJaccard("proteins", "protein")
	if mid <= 0.5 || mid >= 1 {
		t.Errorf("near match = %f, want in (0.5,1)", mid)
	}
}

func TestTrigramJaccardMultibyte(t *testing.T) {
	// 3 CJK runes form exactly one trigram (9 bytes would form seven
	// byte-windows); 4 runes form two.
	if s := TrigramJaccard("東京都", "東京都"); s != 1 {
		t.Errorf("identical CJK = %f, want 1", s)
	}
	// {東京都} vs {東京都, 京都庁}: intersection 1, union 2.
	if s := TrigramJaccard("東京都", "東京都庁"); s != 0.5 {
		t.Errorf("CJK prefix overlap = %f, want 0.5", s)
	}
	// 2 runes is below the trigram floor even though it is 6 bytes: the
	// exact-comparison fallback applies.
	if s := TrigramJaccard("東京", "東京"); s != 1 {
		t.Errorf("short CJK equal = %f, want 1", s)
	}
	if s := TrigramJaccard("東京", "大阪"); s != 0 {
		t.Errorf("short CJK different = %f, want 0", s)
	}
	if a, b := TrigramJaccard("café au lait", "cafe au lait"), TrigramJaccard("cafe au lait", "café au lait"); a != b {
		t.Errorf("asymmetric: %f != %f", a, b)
	}
}

func TestClassifyShape(t *testing.T) {
	cases := map[string]Shape{
		"gene":     ShapeWord,
		"Gene":     ShapeWord,
		"yaaB":     ShapeIdentifier,
		"JW0014":   ShapeIdentifier,
		"G-Actin":  ShapeIdentifier,
		"1130":     ShapeNumber,
		"3.5":      ShapeNumber,
		"P12345.2": ShapeIdentifier,
		"":         ShapeOther,
	}
	for in, want := range cases {
		if got := ClassifyShape(in); got != want {
			t.Errorf("ClassifyShape(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLooksLikeIdentifier(t *testing.T) {
	for _, s := range []string{"JW0014", "yaaB", "1130", "G-Actin"} {
		if !LooksLikeIdentifier(s) {
			t.Errorf("LooksLikeIdentifier(%q) = false", s)
		}
	}
	for _, s := range []string{"gene", "correlated", "the"} {
		if LooksLikeIdentifier(s) {
			t.Errorf("LooksLikeIdentifier(%q) = true", s)
		}
	}
}

func TestShapeString(t *testing.T) {
	names := map[Shape]string{
		ShapeWord: "word", ShapeNumber: "number",
		ShapeIdentifier: "identifier", ShapeOther: "other",
	}
	for s, want := range names {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
