// Package vfs is the minimal filesystem seam the durability layer is
// written against. Production code uses OS (a thin veneer over the os
// package); the crash-fault tests swap in internal/faultinject's faulty
// implementation to exercise short writes, failed fsyncs, and rename
// failures without a real flaky disk underneath. Only the operations the
// WAL and snapshot writers need are abstracted — this is a seam, not a
// general filesystem API.
package vfs

import (
	"io"
	"os"
)

// File is an open file handle. Durability-relevant operations only:
// sequential writes, fsync, close — the WAL never seeks and never reads
// through the same handle it writes.
type File interface {
	io.Writer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Close releases the handle. It does NOT imply Sync.
	Close() error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem operation set behind the durability layer.
type FS interface {
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path read-only. Reads go through the returned *os.File-
	// compatible reader; replay is read-only and needs no fault surface.
	Open(path string) (io.ReadCloser, error)
	// ReadDir lists the directory entries' names.
	ReadDir(dir string) ([]string, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes path.
	Remove(path string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// SyncDir fsyncs the directory itself, making renames and unlinks in
	// it durable on filesystems that require it.
	SyncDir(dir string) error
	// Stat reports a path's size, or an error if it does not exist.
	Stat(path string) (int64, error)
	// Truncate shortens the file at path to size bytes and fsyncs the
	// result, so the removed suffix cannot resurface after a crash.
	Truncate(path string, size int64) error
}

// OS is the production FS backed by the os package.
type OS struct{}

// Create implements FS.
func (OS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return f, nil
}

// Open implements FS.
func (OS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names, nil
}

// Rename implements FS.
func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove implements FS.
func (OS) Remove(path string) error { return os.Remove(path) }

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Truncate implements FS.
func (OS) Truncate(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	return f.Sync()
}

// Stat implements FS.
func (OS) Stat(path string) (int64, error) {
	info, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return info.Size(), nil
}

var _ FS = OS{}
