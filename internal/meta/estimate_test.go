package meta

import (
	"fmt"
	"math/rand"
	"testing"

	"nebula/internal/relational"
)

// estimatorFixture builds one 40-row table with an indexed category
// column (4 distinct values), an unindexed name column, and a full-text
// description column, plus a drawn sample for the description.
func estimatorFixture(t *testing.T) (*Repository, *Estimator) {
	t.Helper()
	db := relational.NewDatabase()
	tab, err := db.CreateTable(&relational.Schema{
		Name: "Item",
		Columns: []relational.Column{
			{Name: "IID", Type: relational.TypeString},
			{Name: "Cat", Type: relational.TypeString, Indexed: true},
			{Name: "Label", Type: relational.TypeString},
			{Name: "Desc", Type: relational.TypeString, FullText: true},
		},
		PrimaryKey: "IID",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		desc := "common filler"
		if i%4 == 0 {
			desc = "rare marker token"
		}
		if _, err := tab.Insert([]relational.Value{
			relational.String(fmt.Sprintf("I%02d", i)),
			relational.String(fmt.Sprintf("C%d", i%4)),
			relational.String(fmt.Sprintf("label%d", i)),
			relational.String(desc),
		}); err != nil {
			t.Fatal(err)
		}
	}
	repo := NewRepository(db, nil)
	if err := repo.DrawSample(ColumnRef{Table: "Item", Column: "Desc"}, 40, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	return repo, NewEstimator(repo)
}

// TestEstimateSelectIndexedEq: an equality on an indexed 4-distinct-value
// column costs one expected bucket (40/4 = 10 rows), not the full table.
func TestEstimateSelectIndexedEq(t *testing.T) {
	_, est := estimatorFixture(t)
	got := est.EstimateSelect(relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "Cat", Op: relational.OpEq, Operand: relational.String("C1")},
	}})
	if !got.Indexed {
		t.Fatalf("indexed eq not recognized: %+v", got)
	}
	if got.Cost != 10 || got.Rows != 10 {
		t.Fatalf("Cost=%v Rows=%v, want bucket estimate 10 (40 rows / 4 distinct)", got.Cost, got.Rows)
	}
}

// TestEstimateSelectPrimaryKeyEq: a primary-key equality is index-driven
// even without an explicit index flag and estimates a single row.
func TestEstimateSelectPrimaryKeyEq(t *testing.T) {
	_, est := estimatorFixture(t)
	got := est.EstimateSelect(relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "IID", Op: relational.OpEq, Operand: relational.String("I07")},
	}})
	if !got.Indexed {
		t.Fatalf("pk eq not recognized as indexed: %+v", got)
	}
	if got.Cost != 1 || got.Rows != 1 {
		t.Fatalf("Cost=%v Rows=%v, want 1 (40 rows / 40 distinct keys)", got.Cost, got.Rows)
	}
}

// TestEstimateSelectUnindexedEq: an equality on an unindexed column still
// narrows the result estimate but pays the full scan cost.
func TestEstimateSelectUnindexedEq(t *testing.T) {
	_, est := estimatorFixture(t)
	got := est.EstimateSelect(relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "Label", Op: relational.OpEq, Operand: relational.String("label3")},
	}})
	if got.Indexed {
		t.Fatalf("unindexed eq reported indexed: %+v", got)
	}
	if got.Cost != 40 {
		t.Fatalf("Cost=%v, want full scan 40", got.Cost)
	}
	if got.Rows != 1 {
		t.Fatalf("Rows=%v, want 1 (40 rows / 40 distinct labels)", got.Rows)
	}
}

// TestEstimateSelectTokenFromSample: token selectivity comes from the drawn
// sample — "marker" appears in a quarter of the rows, "filler" in the rest;
// a token absent from the sample floors at one expected row instead of
// rounding to zero.
func TestEstimateSelectTokenFromSample(t *testing.T) {
	_, est := estimatorFixture(t)
	marker := est.EstimateSelect(relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "Desc", Op: relational.OpContainsToken, Operand: relational.String("marker")},
	}})
	filler := est.EstimateSelect(relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "Desc", Op: relational.OpContainsToken, Operand: relational.String("filler")},
	}})
	absent := est.EstimateSelect(relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "Desc", Op: relational.OpContainsToken, Operand: relational.String("unicorn")},
	}})
	if !marker.Indexed || !filler.Indexed || !absent.Indexed {
		t.Fatalf("full-text token not recognized as indexed: %+v %+v %+v", marker, filler, absent)
	}
	if marker.Rows != 10 {
		t.Fatalf("marker Rows=%v, want 10 (token in 10 of 40 sampled values)", marker.Rows)
	}
	if filler.Rows != 30 {
		t.Fatalf("filler Rows=%v, want 30", filler.Rows)
	}
	if absent.Rows != 1 || absent.Cost != 1 {
		t.Fatalf("absent token Rows=%v Cost=%v, want the one-row floor", absent.Rows, absent.Cost)
	}
	if marker.Cost >= filler.Cost {
		t.Fatalf("cost ordering lost: rare token %v !< common token %v", marker.Cost, filler.Cost)
	}
}

// TestEstimateSelectPrefixAssumesHalf: prefix predicates have no statistic
// and assume a half-table match at full scan cost.
func TestEstimateSelectPrefixAssumesHalf(t *testing.T) {
	_, est := estimatorFixture(t)
	got := est.EstimateSelect(relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "Label", Op: relational.OpPrefix, Operand: relational.String("lab")},
	}})
	if got.Indexed || got.Cost != 40 || got.Rows != 20 {
		t.Fatalf("got %+v, want unindexed half-table estimate (Cost=40 Rows=20)", got)
	}
}

// TestEstimateSelectUnknownTable: unknown tables estimate to zero — the
// executor rejects them before scanning anything.
func TestEstimateSelectUnknownTable(t *testing.T) {
	_, est := estimatorFixture(t)
	if got := est.EstimateSelect(relational.Query{Table: "Nope"}); got != (SelectEstimate{}) {
		t.Fatalf("unknown table estimated %+v, want zero", got)
	}
}

// TestEstimateSelectDeterministic: estimates read only catalog state, so
// repeated calls agree exactly — the property that keeps planner decisions
// identical across worker counts and cache states.
func TestEstimateSelectDeterministic(t *testing.T) {
	_, est := estimatorFixture(t)
	q := relational.Query{Table: "Item", Predicates: []relational.Predicate{
		{Column: "Cat", Op: relational.OpEq, Operand: relational.String("C2")},
		{Column: "Desc", Op: relational.OpContainsToken, Operand: relational.String("marker")},
	}}
	first := est.EstimateSelect(q)
	for i := 0; i < 5; i++ {
		if got := est.EstimateSelect(q); got != first {
			t.Fatalf("estimate drifted on call %d: %+v != %+v", i, got, first)
		}
	}
}
