// Package meta implements NebulaMeta, the auxiliary metadata repository of
// §5.1: the ConceptRefs system table, equivalent names and synonyms for
// schema elements, per-column ontologies and syntactic value patterns,
// and random column samples. The signature-map generator (internal/sigmap)
// consults it to score how likely an annotation word is part of an embedded
// reference.
package meta

import (
	"fmt"
	"strings"
)

// Concept is one row of the ConceptRefs system table (Figure 3): a key
// domain concept, the table that stores it, and the most probable column
// combinations by which annotations reference instances of the concept.
type Concept struct {
	// Name is the concept's human name ("Gene", "Protein", "Gene Family").
	Name string
	// Table is the database table storing the concept.
	Table string
	// ReferencedBy lists the alternative referencing column sets. Each
	// inner slice is one alternative; a reference may use any single
	// alternative (e.g. Protein is referenced by {PID} or {PName, PType}).
	ReferencedBy [][]string
}

// Validate checks the concept definition for obvious mistakes.
func (c *Concept) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("concept: empty name")
	}
	if c.Table == "" {
		return fmt.Errorf("concept %s: empty table", c.Name)
	}
	if len(c.ReferencedBy) == 0 {
		return fmt.Errorf("concept %s: no referencing columns", c.Name)
	}
	for i, alt := range c.ReferencedBy {
		if len(alt) == 0 {
			return fmt.Errorf("concept %s: referencing alternative %d empty", c.Name, i)
		}
	}
	return nil
}

// CombinationSiblings returns, for a column that participates in
// multi-column referencing alternatives, the other columns of those
// alternatives. For the paper's Protein concept ({PID} | {PName, PType}),
// CombinationSiblings("PName") returns [PType]: a PName value reference is
// stronger when a PType value stands nearby.
func (c *Concept) CombinationSiblings(column string) []ColumnRef {
	var out []ColumnRef
	seen := map[string]struct{}{}
	for _, alt := range c.ReferencedBy {
		if len(alt) < 2 {
			continue
		}
		member := false
		for _, col := range alt {
			if strings.EqualFold(col, column) {
				member = true
			}
		}
		if !member {
			continue
		}
		for _, col := range alt {
			if strings.EqualFold(col, column) {
				continue
			}
			key := strings.ToLower(col)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, ColumnRef{Table: c.Table, Column: col})
		}
	}
	return out
}

// Columns returns the set of distinct columns appearing in any referencing
// alternative, qualified by the concept's table.
func (c *Concept) Columns() []ColumnRef {
	seen := make(map[string]struct{})
	var out []ColumnRef
	for _, alt := range c.ReferencedBy {
		for _, col := range alt {
			key := strings.ToLower(col)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, ColumnRef{Table: c.Table, Column: col})
		}
	}
	return out
}

// ColumnRef names one column of one table.
type ColumnRef struct {
	Table  string
	Column string
}

func (c ColumnRef) String() string { return c.Table + "." + c.Column }

// key returns the canonical lookup form.
func (c ColumnRef) key() string {
	return strings.ToLower(c.Table) + "." + strings.ToLower(c.Column)
}

// ElementKind distinguishes what a concept word maps to.
type ElementKind int

const (
	// TableElement means the word references a table name — rendered as a
	// rectangle in the paper's Figure 4.
	TableElement ElementKind = iota
	// ColumnElement means the word references a column name — a triangle.
	ColumnElement
)

func (k ElementKind) String() string {
	if k == TableElement {
		return "table"
	}
	return "column"
}

// SchemaElement is the target of a concept-word mapping: either a table or
// a specific column.
type SchemaElement struct {
	Kind   ElementKind
	Table  string
	Column string // empty for TableElement
}

func (e SchemaElement) String() string {
	if e.Kind == TableElement {
		return e.Table
	}
	return e.Table + "." + e.Column
}
