package meta

import (
	"math/rand"
	"testing"

	"nebula/internal/relational"
)

// fixture builds the paper's Gene/Protein catalog plus a populated
// NebulaMeta repository.
func fixture(t testing.TB) (*relational.Database, *Repository) {
	t.Helper()
	db := relational.NewDatabase()
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString, Indexed: true},
			{Name: "Length", Type: relational.TypeInt},
			{Name: "Family", Type: relational.TypeString, Indexed: true},
		},
		PrimaryKey: "GID",
	}
	protein := &relational.Schema{
		Name: "Protein",
		Columns: []relational.Column{
			{Name: "PID", Type: relational.TypeString, Indexed: true},
			{Name: "PName", Type: relational.TypeString, Indexed: true},
			{Name: "PType", Type: relational.TypeString},
		},
		PrimaryKey: "PID",
	}
	for _, s := range []*relational.Schema{gene, protein} {
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	gt := db.MustTable("Gene")
	for _, g := range [][]relational.Value{
		{relational.String("JW0013"), relational.String("grpC"), relational.Int(1130), relational.String("F1")},
		{relational.String("JW0014"), relational.String("groP"), relational.Int(1916), relational.String("F6")},
		{relational.String("JW0019"), relational.String("yaaB"), relational.Int(905), relational.String("F3")},
	} {
		if _, err := gt.Insert(g); err != nil {
			t.Fatal(err)
		}
	}
	pt := db.MustTable("Protein")
	if _, err := pt.Insert([]relational.Value{
		relational.String("P00001"), relational.String("G-Actin"), relational.String("structural"),
	}); err != nil {
		t.Fatal(err)
	}

	r := NewRepository(db, nil)
	if err := r.AddConcept(&Concept{
		Name: "Gene", Table: "Gene",
		ReferencedBy: [][]string{{"GID"}, {"Name"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddConcept(&Concept{
		Name: "Protein", Table: "Protein",
		ReferencedBy: [][]string{{"PID"}, {"PName", "PType"}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddConcept(&Concept{
		Name: "Gene Family", Table: "Gene",
		ReferencedBy: [][]string{{"Family"}},
	}); err != nil {
		t.Fatal(err)
	}
	r.AddEquivalentNames("GID", "Gene ID")
	if err := r.SetPattern(ColumnRef{Table: "Gene", Column: "GID"}, `JW[0-9]{4}`); err != nil {
		t.Fatal(err)
	}
	if err := r.SetPattern(ColumnRef{Table: "Gene", Column: "Name"}, `[a-z]{3}[A-Z]`); err != nil {
		t.Fatal(err)
	}
	r.SetOntology(ColumnRef{Table: "Gene", Column: "Family"}, []string{"F1", "F2", "F3", "F4", "F6"})
	return db, r
}

func TestAddConceptValidation(t *testing.T) {
	_, r := fixture(t)
	if err := r.AddConcept(&Concept{Name: "X", Table: "Missing", ReferencedBy: [][]string{{"A"}}}); err == nil {
		t.Error("unknown table should fail")
	}
	if err := r.AddConcept(&Concept{Name: "X", Table: "Gene", ReferencedBy: [][]string{{"Nope"}}}); err == nil {
		t.Error("unknown column should fail")
	}
	if err := r.AddConcept(&Concept{Name: "", Table: "Gene", ReferencedBy: [][]string{{"GID"}}}); err == nil {
		t.Error("empty name should fail")
	}
	if err := r.AddConcept(&Concept{Name: "X", Table: "Gene", ReferencedBy: nil}); err == nil {
		t.Error("no referencing columns should fail")
	}
	if err := r.AddConcept(&Concept{Name: "X", Table: "Gene", ReferencedBy: [][]string{{}}}); err == nil {
		t.Error("empty alternative should fail")
	}
}

func TestTargetColumnsDeduplicated(t *testing.T) {
	_, r := fixture(t)
	cols := r.TargetColumns()
	// GID, Name, PID, PName, PType, Family
	if len(cols) != 6 {
		t.Fatalf("target columns = %v", cols)
	}
}

func TestConceptMatchesExact(t *testing.T) {
	_, r := fixture(t)
	ms := r.ConceptMatches("gene")
	foundTable := false
	for _, m := range ms {
		if m.Element.Kind == TableElement && m.Element.Table == "Gene" {
			foundTable = true
			if m.Weight != WeightExactName {
				t.Errorf("exact table match weight = %f", m.Weight)
			}
		}
	}
	if !foundTable {
		t.Fatalf("no table match for 'gene': %v", ms)
	}
	// Plural matches too.
	if len(r.ConceptMatches("genes")) == 0 {
		t.Error("plural 'genes' should match")
	}
}

func TestConceptMatchesColumnAndEquivalent(t *testing.T) {
	_, r := fixture(t)
	ms := r.ConceptMatches("name")
	foundCol := false
	for _, m := range ms {
		if m.Element.Kind == ColumnElement && m.Element.Column == "Name" {
			foundCol = true
			if m.Weight != WeightExactName {
				t.Errorf("column match weight = %f", m.Weight)
			}
		}
	}
	if !foundCol {
		t.Fatalf("no column match for 'name': %v", ms)
	}
	// Expert equivalent: "id" is a component of "Gene ID" ⇔ GID.
	ms = r.ConceptMatches("id")
	found := false
	for _, m := range ms {
		if m.Element.Kind == ColumnElement && m.Element.Column == "GID" && m.Weight == WeightEquivalentName {
			found = true
		}
	}
	if !found {
		t.Errorf("equivalent-name match missing: %v", ms)
	}
}

func TestConceptMatchesSynonym(t *testing.T) {
	_, r := fixture(t)
	// "locus" is a DefaultLexicon synonym of "gene".
	ms := r.ConceptMatches("locus")
	found := false
	for _, m := range ms {
		if m.Element.Kind == TableElement && m.Element.Table == "Gene" {
			found = true
			if m.Weight != WeightSynonym {
				t.Errorf("synonym weight = %f, want %f", m.Weight, WeightSynonym)
			}
		}
	}
	if !found {
		t.Errorf("synonym match missing: %v", ms)
	}
}

func TestConceptMatchesMultiWordConceptName(t *testing.T) {
	_, r := fixture(t)
	// "family" matches the Family column exactly and the "Gene Family"
	// concept by component.
	ms := r.ConceptMatches("family")
	col := false
	for _, m := range ms {
		if m.Element.Kind == ColumnElement && m.Element.Column == "Family" {
			col = true
		}
	}
	if !col {
		t.Errorf("family column match missing: %v", ms)
	}
}

func TestConceptMatchesNoise(t *testing.T) {
	_, r := fixture(t)
	if ms := r.ConceptMatches("correlated"); len(ms) != 0 {
		t.Errorf("noise word matched: %v", ms)
	}
}

func TestValueMatchesPattern(t *testing.T) {
	_, r := fixture(t)
	ms := r.ValueMatches("JW0014")
	var gid float64
	for _, m := range ms {
		if m.Column.Column == "GID" {
			gid = m.Weight
		}
	}
	if gid < 0.9 {
		t.Errorf("pattern-conforming word scored %f for GID", gid)
	}
	// A non-conforming identifier gets the weak shape-only score on GID:
	// above the loose 0.4 cutoff, below 0.6.
	ms = r.ValueMatches("XX99")
	for _, m := range ms {
		if m.Column.Column == "GID" && (m.Weight != valueShapeOnly) {
			t.Errorf("non-conforming identifier scored %f for GID, want %f", m.Weight, valueShapeOnly)
		}
	}
}

func TestValueMatchesOntology(t *testing.T) {
	_, r := fixture(t)
	ms := r.ValueMatches("F3")
	var fam float64
	for _, m := range ms {
		if m.Column.Column == "Family" {
			fam = m.Weight
		}
	}
	if fam < 0.9 {
		t.Errorf("ontology member scored %f", fam)
	}
	ms = r.ValueMatches("F99")
	for _, m := range ms {
		if m.Column.Column == "Family" && m.Weight > valueBase {
			t.Errorf("ontology non-member scored %f", m.Weight)
		}
	}
}

func TestValueMatchesTypeGate(t *testing.T) {
	_, r := fixture(t)
	// Also register the int column as a target via a new concept.
	if err := r.AddConcept(&Concept{Name: "Gene Length", Table: "Gene", ReferencedBy: [][]string{{"Length"}}}); err != nil {
		t.Fatal(err)
	}
	// "yaaB" cannot be an int.
	for _, m := range r.ValueMatches("yaaB") {
		if m.Column.Column == "Length" {
			t.Errorf("non-numeric word matched int column: %+v", m)
		}
	}
	// "1130" can.
	found := false
	for _, m := range r.ValueMatches("1130") {
		if m.Column.Column == "Length" {
			found = true
		}
	}
	if !found {
		t.Error("numeric word should type-match int column")
	}
}

func TestValueMatchesSampleFallback(t *testing.T) {
	_, r := fixture(t)
	// PName has no ontology/pattern; draw a sample and match against it.
	col := ColumnRef{Table: "Protein", Column: "PName"}
	if err := r.DrawSample(col, 10, rand.New(rand.NewSource(1))); err != nil {
		t.Fatal(err)
	}
	ms := r.ValueMatches("G-Actin")
	var w float64
	for _, m := range ms {
		if m.Column == col {
			w = m.Weight
		}
	}
	if w < 0.9 {
		t.Errorf("exact sample hit scored %f", w)
	}
	// A close-but-not-exact identifier still scores usefully.
	ms = r.ValueMatches("G-Actine")
	for _, m := range ms {
		if m.Column == col && m.Weight <= valueBase {
			t.Errorf("near sample hit scored %f", m.Weight)
		}
	}
}

func TestValueMatchesPlainWordStaysLow(t *testing.T) {
	_, r := fixture(t)
	for _, m := range r.ValueMatches("correlated") {
		if m.Weight >= 0.4 {
			t.Errorf("plain word scored %f on %s", m.Weight, m.Column)
		}
	}
}

func TestDrawSampleDeterminism(t *testing.T) {
	_, r := fixture(t)
	col := ColumnRef{Table: "Gene", Column: "Name"}
	if err := r.DrawSample(col, 2, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	s1, _ := r.Sample(col)
	if err := r.DrawSample(col, 2, rand.New(rand.NewSource(7))); err != nil {
		t.Fatal(err)
	}
	s2, _ := r.Sample(col)
	if len(s1) != 2 || len(s2) != 2 || s1[0] != s2[0] || s1[1] != s2[1] {
		t.Errorf("sampling not deterministic: %v vs %v", s1, s2)
	}
	if err := r.DrawSample(ColumnRef{Table: "Nope", Column: "X"}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown table should fail")
	}
	if err := r.DrawSample(ColumnRef{Table: "Gene", Column: "Nope"}, 2, rand.New(rand.NewSource(1))); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestSetPatternInvalid(t *testing.T) {
	_, r := fixture(t)
	if err := r.SetPattern(ColumnRef{Table: "Gene", Column: "GID"}, `[unclosed`); err == nil {
		t.Error("invalid regexp should fail")
	}
}

func TestLexicon(t *testing.T) {
	l := DefaultLexicon()
	if !l.AreSynonyms("gene", "locus") || !l.AreSynonyms("LOCUS", "Gene") {
		t.Error("synonym lookup failed")
	}
	if l.AreSynonyms("gene", "gene") {
		t.Error("identical words are not synonyms")
	}
	if l.AreSynonyms("gene", "protein") {
		t.Error("unrelated words matched")
	}
	syns := l.Synonyms("gene")
	if len(syns) != 2 {
		t.Errorf("Synonyms(gene) = %v", syns)
	}
	if l.Synonyms("notaword") != nil {
		t.Error("unknown word should have no synonyms")
	}
	l.AddGroup("alpha", "beta")
	if !l.AreSynonyms("alpha", "beta") {
		t.Error("AddGroup failed")
	}
}

func TestElementKindAndColumnRefStrings(t *testing.T) {
	if TableElement.String() != "table" || ColumnElement.String() != "column" {
		t.Error("ElementKind.String wrong")
	}
	e := SchemaElement{Kind: ColumnElement, Table: "Gene", Column: "GID"}
	if e.String() != "Gene.GID" {
		t.Errorf("SchemaElement.String = %q", e.String())
	}
	e2 := SchemaElement{Kind: TableElement, Table: "Gene"}
	if e2.String() != "Gene" {
		t.Errorf("table element String = %q", e2.String())
	}
	if (ColumnRef{Table: "Gene", Column: "GID"}).String() != "Gene.GID" {
		t.Error("ColumnRef.String wrong")
	}
}

func TestRepositoryAccessors(t *testing.T) {
	db, r := fixture(t)
	if r.Database() != db {
		t.Error("Database() wrong")
	}
	if r.Lexicon() == nil {
		t.Error("Lexicon() nil")
	}
	if len(r.Concepts()) != 3 {
		t.Errorf("Concepts = %d", len(r.Concepts()))
	}
	r.SetSample(ColumnRef{Table: "Protein", Column: "PName"}, []string{"G-Actin"})
	if s, ok := r.Sample(ColumnRef{Table: "Protein", Column: "PName"}); !ok || len(s) != 1 {
		t.Error("SetSample/Sample round trip failed")
	}
}

func TestCombinationSiblings(t *testing.T) {
	_, r := fixture(t)
	// Protein is referenced by {PID} or {PName, PType}.
	sibs := r.CombinationSiblings(ColumnRef{Table: "Protein", Column: "PName"})
	if len(sibs) != 1 || sibs[0].Column != "PType" {
		t.Fatalf("siblings of PName = %v", sibs)
	}
	sibs = r.CombinationSiblings(ColumnRef{Table: "Protein", Column: "PType"})
	if len(sibs) != 1 || sibs[0].Column != "PName" {
		t.Fatalf("siblings of PType = %v", sibs)
	}
	// Single-column alternatives have no siblings.
	if sibs := r.CombinationSiblings(ColumnRef{Table: "Protein", Column: "PID"}); len(sibs) != 0 {
		t.Errorf("siblings of PID = %v", sibs)
	}
	if sibs := r.CombinationSiblings(ColumnRef{Table: "Gene", Column: "GID"}); len(sibs) != 0 {
		t.Errorf("siblings of GID = %v", sibs)
	}
	// Unknown table.
	if sibs := r.CombinationSiblings(ColumnRef{Table: "Nope", Column: "X"}); len(sibs) != 0 {
		t.Errorf("siblings of unknown = %v", sibs)
	}
}

func TestColumnSelectivity(t *testing.T) {
	_, r := fixture(t)
	// Gene.GID is unique: selectivity 1.
	if s := r.ColumnSelectivity(ColumnRef{Table: "Gene", Column: "GID"}); s != 1 {
		t.Errorf("GID selectivity = %f", s)
	}
	// Cached value stays stable even after data changes...
	gt := r.Database().MustTable("Gene")
	if _, err := gt.Insert([]relational.Value{
		relational.String("JW0099"), relational.String("aaaZ"),
		relational.Int(1), relational.String("F1"),
	}); err != nil {
		t.Fatal(err)
	}
	if s := r.ColumnSelectivity(ColumnRef{Table: "Gene", Column: "GID"}); s != 1 {
		t.Errorf("cached selectivity changed: %f", s)
	}
	// ...until invalidated (still 1.0 for a unique column, but recomputed).
	r.InvalidateStatistics()
	if s := r.ColumnSelectivity(ColumnRef{Table: "Gene", Column: "GID"}); s != 1 {
		t.Errorf("recomputed selectivity = %f", s)
	}
	// Unknown column: zero.
	if s := r.ColumnSelectivity(ColumnRef{Table: "Nope", Column: "X"}); s != 0 {
		t.Errorf("unknown selectivity = %f", s)
	}
}
