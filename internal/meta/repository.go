package meta

import (
	"fmt"
	"math/rand"
	"regexp"
	"strings"
	"sync"

	"nebula/internal/relational"
)

// Repository is the NebulaMeta metadata store (§5.1). It aggregates the six
// auxiliary information sources the paper enumerates:
//
//  1. lexical knowledge (Lexicon),
//  2. equivalent names for tables/columns supplied by domain experts,
//  3. per-column ontologies (controlled vocabularies),
//  4. per-column syntactic value patterns (regular expressions),
//  5. random samples drawn from columns lacking ontologies/patterns,
//  6. the ConceptRefs table of key concepts and their referencing columns.
type Repository struct {
	db       *relational.Database
	lexicon  *Lexicon
	concepts []*Concept

	equivalents map[string][]string // lower(element name) -> equivalent names
	ontologies  map[string]map[string]struct{}
	patterns    map[string]*regexp.Regexp
	samples     map[string][]string

	statsMu     sync.Mutex
	selectivity map[string]float64 // lower(table.column) -> distinct/rows
}

// NewRepository creates a NebulaMeta repository bound to a database catalog.
// The lexicon may be nil, in which case DefaultLexicon is used.
func NewRepository(db *relational.Database, lexicon *Lexicon) *Repository {
	if lexicon == nil {
		lexicon = DefaultLexicon()
	}
	return &Repository{
		db:          db,
		lexicon:     lexicon,
		equivalents: make(map[string][]string),
		ontologies:  make(map[string]map[string]struct{}),
		patterns:    make(map[string]*regexp.Regexp),
		samples:     make(map[string][]string),
	}
}

// Database returns the bound catalog.
func (r *Repository) Database() *relational.Database { return r.db }

// Lexicon returns the repository's synonym dictionary.
func (r *Repository) Lexicon() *Lexicon { return r.lexicon }

// AddConcept registers a ConceptRefs row. The referenced table and columns
// must exist in the catalog.
func (r *Repository) AddConcept(c *Concept) error {
	if err := c.Validate(); err != nil {
		return err
	}
	t, ok := r.db.Table(c.Table)
	if !ok {
		return fmt.Errorf("concept %s: unknown table %q", c.Name, c.Table)
	}
	for _, alt := range c.ReferencedBy {
		for _, col := range alt {
			if _, ok := t.Schema().ColumnIndex(col); !ok {
				return fmt.Errorf("concept %s: table %s has no column %q", c.Name, c.Table, col)
			}
		}
	}
	r.concepts = append(r.concepts, c)
	return nil
}

// Concepts returns the registered concepts in insertion order.
func (r *Repository) Concepts() []*Concept { return r.concepts }

// TargetColumns returns the distinct columns appearing in any concept's
// referencing alternatives — the columns the Value-Map generator scans.
func (r *Repository) TargetColumns() []ColumnRef {
	seen := make(map[string]struct{})
	var out []ColumnRef
	for _, c := range r.concepts {
		for _, col := range c.Columns() {
			if _, dup := seen[col.key()]; dup {
				continue
			}
			seen[col.key()] = struct{}{}
			out = append(out, col)
		}
	}
	return out
}

// CombinationSiblings aggregates Concept.CombinationSiblings over every
// registered concept of the column's table: the columns that co-reference
// with the given column in some multi-column alternative.
func (r *Repository) CombinationSiblings(col ColumnRef) []ColumnRef {
	var out []ColumnRef
	seen := map[string]struct{}{}
	for _, c := range r.concepts {
		if !strings.EqualFold(c.Table, col.Table) {
			continue
		}
		for _, sib := range c.CombinationSiblings(col.Column) {
			if _, dup := seen[sib.key()]; dup {
				continue
			}
			seen[sib.key()] = struct{}{}
			out = append(out, sib)
		}
	}
	return out
}

// AddEquivalentNames records expert-supplied equivalent names for a schema
// element (a table name or a column name). For example "GID" ⇔ "Gene ID".
func (r *Repository) AddEquivalentNames(element string, equivalents ...string) {
	key := strings.ToLower(element)
	r.equivalents[key] = append(r.equivalents[key], equivalents...)
	// Keep the relation symmetric so "Gene ID" also resolves to "GID".
	for _, eq := range equivalents {
		r.equivalents[strings.ToLower(eq)] = append(r.equivalents[strings.ToLower(eq)], element)
	}
}

// equivalentMatch reports whether word matches an equivalent name of the
// element (either direction, whole-name or single-word component).
func (r *Repository) equivalentMatch(word, element string) bool {
	for _, eq := range r.equivalents[strings.ToLower(element)] {
		if strings.EqualFold(eq, word) {
			return true
		}
		// Multi-word equivalents match if the word equals a component:
		// "id" matches equivalent name "Gene ID".
		for _, part := range strings.Fields(eq) {
			if strings.EqualFold(part, word) {
				return true
			}
		}
	}
	return false
}

// SetOntology attaches a controlled vocabulary to a column. Membership is
// case-insensitive.
func (r *Repository) SetOntology(col ColumnRef, terms []string) {
	set := make(map[string]struct{}, len(terms))
	for _, t := range terms {
		set[strings.ToLower(t)] = struct{}{}
	}
	r.ontologies[col.key()] = set
}

// Ontology returns the vocabulary attached to a column, if any.
func (r *Repository) Ontology(col ColumnRef) (map[string]struct{}, bool) {
	o, ok := r.ontologies[col.key()]
	return o, ok
}

// SetPattern attaches a syntactic value pattern (anchored regular
// expression) to a column, e.g. `JW[0-9]{4}` for Gene.GID.
func (r *Repository) SetPattern(col ColumnRef, pattern string) error {
	re, err := regexp.Compile("^(?:" + pattern + ")$")
	if err != nil {
		return fmt.Errorf("pattern for %s: %w", col, err)
	}
	r.patterns[col.key()] = re
	return nil
}

// Pattern returns the compiled pattern attached to a column, if any.
func (r *Repository) Pattern(col ColumnRef) (*regexp.Regexp, bool) {
	p, ok := r.patterns[col.key()]
	return p, ok
}

// SetSample stores an explicit value sample for a column.
func (r *Repository) SetSample(col ColumnRef, values []string) {
	r.samples[col.key()] = values
}

// Sample returns the stored sample of a column, if any.
func (r *Repository) Sample(col ColumnRef) ([]string, bool) {
	s, ok := r.samples[col.key()]
	return s, ok
}

// DrawSample draws up to n distinct row values uniformly from the column
// and stores them as the column's sample (§5.1, source 5). rng must not be
// nil so that experiments stay deterministic.
func (r *Repository) DrawSample(col ColumnRef, n int, rng *rand.Rand) error {
	t, ok := r.db.Table(col.Table)
	if !ok {
		return fmt.Errorf("sample: unknown table %q", col.Table)
	}
	ci, ok := t.Schema().ColumnIndex(col.Column)
	if !ok {
		return fmt.Errorf("sample: table %s has no column %q", col.Table, col.Column)
	}
	rows := t.Rows()
	if len(rows) == 0 {
		r.samples[col.key()] = nil
		return nil
	}
	// Reservoir sampling keeps the draw uniform without copying the table.
	reservoir := make([]string, 0, n)
	for i, row := range rows {
		v := row.Values[ci].Str()
		if len(reservoir) < n {
			reservoir = append(reservoir, v)
			continue
		}
		if j := rng.Intn(i + 1); j < n {
			reservoir[j] = v
		}
	}
	r.samples[col.key()] = reservoir
	return nil
}

// ColumnSelectivity returns the column's distinct-values/rows ratio, the
// statistic the query generator uses to recognize category-like columns.
// Values are cached after the first computation (which may scan the table);
// call InvalidateStatistics after bulk data changes.
func (r *Repository) ColumnSelectivity(col ColumnRef) float64 {
	key := col.key()
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	if r.selectivity == nil {
		r.selectivity = make(map[string]float64)
	}
	if s, ok := r.selectivity[key]; ok {
		return s
	}
	s := 0.0
	if t, ok := r.db.Table(col.Table); ok && t.Len() > 0 {
		s = float64(t.DistinctCount(col.Column)) / float64(t.Len())
	}
	r.selectivity[key] = s
	return s
}

// InvalidateStatistics drops the cached column statistics so they are
// recomputed against the current data.
func (r *Repository) InvalidateStatistics() {
	r.statsMu.Lock()
	defer r.statsMu.Unlock()
	r.selectivity = nil
}

// ColumnType returns the declared type of a column.
func (r *Repository) ColumnType(col ColumnRef) (relational.Type, bool) {
	t, ok := r.db.Table(col.Table)
	if !ok {
		return 0, false
	}
	c, ok := t.Schema().Column(col.Column)
	if !ok {
		return 0, false
	}
	return c.Type, true
}
