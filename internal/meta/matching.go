package meta

import (
	"strings"

	"nebula/internal/relational"
	"nebula/internal/textutil"
)

// Matching weights for concept words (§5.2.1): exact name matches and
// expert-defined equivalent names score higher than lexicon synonyms.
const (
	// WeightExactName is p(w,c) when w equals the schema element's name.
	WeightExactName = 1.0
	// WeightEquivalentName is p(w,c) when w matches an expert-supplied
	// equivalent name of the element.
	WeightEquivalentName = 0.9
	// WeightSynonym is p(w,c) when w is a lexicon synonym of the element.
	WeightSynonym = 0.6
)

// ConceptMatch is one potential mapping of an annotation word onto a schema
// element mentioned in ConceptRefs, with its estimated weight p(w,c).
type ConceptMatch struct {
	// Element is the matched table or column.
	Element SchemaElement
	// Concept is the ConceptRefs row the element belongs to.
	Concept *Concept
	// Weight is p(w,c) ∈ (0,1].
	Weight float64
}

// ConceptMatches computes every potential concept mapping of a word: the
// Concept-Map generation step. A word may map to several elements (the
// paper: "each of the emphasized words may have multiple potential
// mappings"). Matches are deduplicated per element, keeping the highest
// weight.
func (r *Repository) ConceptMatches(word string) []ConceptMatch {
	best := make(map[string]int) // element key -> index in out
	var out []ConceptMatch
	record := func(el SchemaElement, c *Concept, w float64) {
		if w <= 0 {
			return
		}
		key := el.String()
		if i, ok := best[key]; ok {
			if w > out[i].Weight {
				out[i].Weight = w
				out[i].Concept = c
			}
			return
		}
		best[key] = len(out)
		out = append(out, ConceptMatch{Element: el, Concept: c, Weight: w})
	}
	for _, c := range r.concepts {
		record(SchemaElement{Kind: TableElement, Table: c.Table}, c, r.nameMatch(word, c.Table))
		// The concept name itself may differ from the table name ("Gene
		// Family" lives in table Gene): a match on the concept name also
		// maps the word to the concept's table.
		if !strings.EqualFold(c.Name, c.Table) {
			record(SchemaElement{Kind: TableElement, Table: c.Table}, c, r.nameMatch(word, c.Name))
		}
		for _, col := range c.Columns() {
			record(SchemaElement{Kind: ColumnElement, Table: col.Table, Column: col.Column}, c,
				r.nameMatch(word, col.Column))
		}
	}
	return out
}

// nameMatch scores word against a schema element name using the three-level
// scheme of §5.2.1: exact > equivalent > synonym.
func (r *Repository) nameMatch(word, name string) float64 {
	if equalWord(word, name) {
		return WeightExactName
	}
	if r.equivalentMatch(word, name) {
		return WeightEquivalentName
	}
	if r.lexicon.AreSynonyms(word, name) {
		return WeightSynonym
	}
	// Multi-word concept names ("Gene Family") match on a component word.
	if strings.ContainsAny(name, " _") {
		for _, part := range strings.FieldsFunc(name, func(r rune) bool { return r == ' ' || r == '_' }) {
			if equalWord(word, part) {
				return WeightEquivalentName
			}
		}
	}
	return 0
}

// equalWord compares case-insensitively, tolerating a trailing plural "s"
// on the annotation word ("genes" matches "Gene").
func equalWord(word, name string) bool {
	w, n := strings.ToLower(word), strings.ToLower(name)
	if w == n {
		return true
	}
	if strings.HasSuffix(w, "s") && strings.TrimSuffix(w, "s") == n {
		return true
	}
	if strings.HasSuffix(w, "es") && strings.TrimSuffix(w, "es") == n {
		return true
	}
	return false
}

// ValueMatch is one potential mapping of an annotation word onto a column's
// value domain, with its estimated weight d(w,c).
type ValueMatch struct {
	// Column is the target column.
	Column ColumnRef
	// Weight is d(w,c) ∈ (0,1].
	Weight float64
}

// Value-domain scoring constants. The factors follow §5.2.1's d(w,c): data
// type compatibility is a prerequisite; then ontology membership or pattern
// conformance give strong evidence; columns with neither fall back to
// similarity against the drawn sample.
const (
	valueBase       = 0.10 // type-compatible but no positive evidence
	valueShapeOnly  = 0.45 // identifier-shaped but fails the column's pattern
	valueEvidence   = 0.85 // scale of the strongest positive evidence
	sampleExactSim  = 1.0  // word occurs verbatim in the sample
	sampleMinUseful = 0.55 // similarity below this is treated as noise
)

// ValueMatches computes every potential value mapping of a word over the
// ConceptRefs target columns: the Value-Map generation step.
func (r *Repository) ValueMatches(word string) []ValueMatch {
	var out []ValueMatch
	for _, col := range r.TargetColumns() {
		w := r.valueMatch(word, col)
		if w > 0 {
			out = append(out, ValueMatch{Column: col, Weight: w})
		}
	}
	return out
}

// valueMatch computes d(w,c) for one column.
func (r *Repository) valueMatch(word string, col ColumnRef) float64 {
	colType, ok := r.ColumnType(col)
	if !ok {
		return 0
	}
	// Factor 1 — data type compatibility is a hard prerequisite.
	if !relational.CoercibleTo(colType, word) {
		return 0
	}
	evidence := -1.0
	hasStrongSource := false
	hasOntology := false
	// Factor 2 — ontology membership. An ontology is a closed vocabulary:
	// non-membership is conclusive negative evidence.
	if ont, ok := r.Ontology(col); ok {
		hasStrongSource = true
		hasOntology = true
		if _, member := ont[strings.ToLower(word)]; member {
			evidence = 1.0
		}
	}
	// Factor 3 — syntactic pattern conformance. Patterns describe the
	// *usual* shape of values, so failing one is soft negative evidence.
	if pat, ok := r.Pattern(col); ok {
		hasStrongSource = true
		if pat.MatchString(word) && 1.0 > evidence {
			evidence = 1.0
		}
	}
	// Factor 4 — sample similarity, only when the column has neither an
	// ontology nor a pattern (per the paper).
	if !hasStrongSource {
		if sample, ok := r.Sample(col); ok && len(sample) > 0 {
			sim := bestSampleSimilarity(word, sample)
			if sim >= sampleMinUseful {
				evidence = sim
			}
		}
	}
	if evidence < 0 {
		// No positive evidence. An identifier-shaped word on a column that
		// *does* carry strong sources scores a weak middle value — it is
		// plausibly an identifier in the wrong format (a lab code, a strain
		// name, an accession from another repository). Such words survive a
		// loose cutoff like ε = 0.4 and are precisely the noise the paper's
		// Figure 11(c) attributes to low thresholds. Plain English words
		// stay far below any reasonable ε.
		if textutil.LooksLikeIdentifier(word) {
			if hasStrongSource && !hasOntology {
				return valueShapeOnly
			}
			return valueBase
		}
		return valueBase / 2
	}
	return valueBase + valueEvidence*evidence
}

// bestSampleSimilarity returns the best similarity between word and any
// sampled value, using exact match first and Jaro–Winkler otherwise.
func bestSampleSimilarity(word string, sample []string) float64 {
	best := 0.0
	for _, s := range sample {
		if strings.EqualFold(word, s) {
			return sampleExactSim
		}
		if sim := textutil.JaroWinkler(strings.ToLower(word), strings.ToLower(s)); sim > best {
			best = sim
		}
	}
	return best
}
