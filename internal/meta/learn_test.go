package meta

import (
	"fmt"
	"testing"

	"nebula/internal/annotation"
	"nebula/internal/relational"
)

func learnFixture(t *testing.T) (*relational.Database, *annotation.Store) {
	t.Helper()
	rdb := relationalCatalog(t)
	store := annotation.NewStore()
	gt := rdb.MustTable("Gene")
	// Annotations reference genes by GID or Name inside their bodies; the
	// Length value never appears.
	rows := gt.Rows()
	for i, r := range rows {
		id := annotation.ID(fmt.Sprintf("a%d", i))
		body := fmt.Sprintf("notes about %s known as %s in culture",
			r.MustGet("GID").Str(), r.MustGet("Name").Str())
		if err := store.Add(&annotation.Annotation{ID: id, Body: body}); err != nil {
			t.Fatal(err)
		}
		if _, err := store.Attach(annotation.Attachment{
			Annotation: id, Tuple: r.ID, Type: annotation.TrueAttachment,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return rdb, store
}

// relationalCatalog builds a small standalone Gene table.
func relationalCatalog(t *testing.T) *relational.Database {
	t.Helper()
	db := relational.NewDatabase()
	gene := &relational.Schema{
		Name: "Gene",
		Columns: []relational.Column{
			{Name: "GID", Type: relational.TypeString, Indexed: true},
			{Name: "Name", Type: relational.TypeString},
			{Name: "Length", Type: relational.TypeInt},
		},
		PrimaryKey: "GID",
	}
	gt, err := db.CreateTable(gene)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, err := gt.Insert([]relational.Value{
			relational.String(fmt.Sprintf("JW%04d", i)),
			relational.String(fmt.Sprintf("ge%cA", 'a'+i)),
			relational.Int(int64(1000 + i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func TestLearnConcepts(t *testing.T) {
	db, store := learnFixture(t)
	concepts, supports := LearnConcepts(db, store, DefaultLearnOptions())
	if len(concepts) != 1 || concepts[0].Table != "Gene" {
		t.Fatalf("concepts = %v", concepts)
	}
	cols := map[string]bool{}
	for _, alt := range concepts[0].ReferencedBy {
		cols[alt[0]] = true
	}
	if !cols["GID"] || !cols["Name"] {
		t.Errorf("learned columns = %v", cols)
	}
	if cols["Length"] {
		t.Error("Length should not be a referencing column")
	}
	// Supports are complete and sorted by support within a table.
	if len(supports) < 2 {
		t.Fatalf("supports = %v", supports)
	}
	for _, s := range supports {
		if s.Column.Column == "GID" && s.Support != 1.0 {
			t.Errorf("GID support = %f", s.Support)
		}
	}
	// The learned concept is directly registrable.
	repo := NewRepository(db, nil)
	if err := repo.AddConcept(concepts[0]); err != nil {
		t.Fatalf("learned concept rejected: %v", err)
	}
}

func TestLearnConceptsRespectsMinSupport(t *testing.T) {
	db, store := learnFixture(t)
	opts := DefaultLearnOptions()
	opts.MinSupport = 1.01 // impossible bar
	concepts, supports := LearnConcepts(db, store, opts)
	if len(concepts) != 0 {
		t.Errorf("concepts above impossible bar: %v", concepts)
	}
	if len(supports) == 0 {
		t.Error("support table should still be reported")
	}
}

func TestLearnConceptsMaxAnnotations(t *testing.T) {
	db, store := learnFixture(t)
	opts := DefaultLearnOptions()
	opts.MaxAnnotations = 3
	_, supports := LearnConcepts(db, store, opts)
	for _, s := range supports {
		if s.Attachments > 3 {
			t.Errorf("inspected more than the cap: %+v", s)
		}
	}
}

func TestLearnConceptsEmptyStore(t *testing.T) {
	db := relationalCatalog(t)
	concepts, supports := LearnConcepts(db, annotation.NewStore(), DefaultLearnOptions())
	if len(concepts) != 0 || len(supports) != 0 {
		t.Errorf("empty store learned something: %v %v", concepts, supports)
	}
}
